package cluster

import (
	"testing"

	"dynmds/internal/net"
	"dynmds/internal/sim"
)

// fig2QuickConfig mirrors the Figure 2 quick-scale point used by CI.
func fig2QuickConfig(strategy string) Config {
	cfg := Default()
	cfg.Strategy = strategy
	cfg.NumMDS = 4
	cfg.ClientsPerMDS = 30
	cfg.FS.Users = 100
	cfg.Duration = 10 * sim.Second
	cfg.Warmup = 4 * sim.Second
	return cfg
}

// drain stops every client and runs the engine long past the last
// bounded network hop, so only the perpetual tickers (flushers,
// balancer) remain. Two simulated seconds dwarfs the longest message
// chain (a forwarded request with a disk fetch is a few milliseconds).
func drain(cl *Cluster) {
	for _, c := range cl.Clients {
		c.Stop()
	}
	cl.Eng.RunUntil(cl.Cfg.Duration + 2*sim.Second)
}

// TestMessageConservation checks the fabric's accounting identity for
// every strategy: once the clients stop and in-flight traffic drains,
// every message sent has been delivered exactly once, no pooled
// envelope has leaked, and the request/reply flow balances against the
// clients' own issue/complete counters.
func TestMessageConservation(t *testing.T) {
	for _, s := range Strategies {
		s := s
		t.Run(s, func(t *testing.T) {
			t.Parallel()
			cl, err := New(fig2QuickConfig(s))
			if err != nil {
				t.Fatal(err)
			}
			cl.Run()
			drain(cl)

			if n := cl.Fab.InFlight(); n != 0 {
				t.Errorf("in-flight after drain = %d", n)
			}
			if n := cl.Fab.LiveEnvelopes(); n != 0 {
				t.Errorf("live envelopes after drain = %d", n)
			}
			for c := 0; c < net.NumClasses; c++ {
				cs := cl.Fab.Class(net.Class(c))
				if cs.Sent != cs.Delivered {
					t.Errorf("%s: sent %d != delivered %d",
						net.Class(c), cs.Sent, cs.Delivered)
				}
			}

			// Every issued request crossed the client edge exactly once
			// (retries are disabled), and every one of them was answered
			// with exactly one reply that reached its client.
			var issued, completed uint64
			for _, c := range cl.Clients {
				issued += c.Stats.Issued
				completed += c.Stats.Completed
			}
			req := cl.Fab.Class(net.Request)
			rep := cl.Fab.Class(net.Reply)
			if req.Sent != issued {
				t.Errorf("requests sent %d != issued %d", req.Sent, issued)
			}
			if rep.Sent != req.Sent {
				t.Errorf("replies sent %d != requests sent %d", rep.Sent, req.Sent)
			}
			if completed != rep.Sent {
				t.Errorf("completed %d != replies sent %d", completed, rep.Sent)
			}
		})
	}
}

// TestQueuedInfiniteBandwidthMatchesFixed checks the queued model
// degenerates to the fixed model when serialization delay vanishes: a
// run under each must agree on every headline number and on the
// fabric's totals.
func TestQueuedInfiniteBandwidthMatchesFixed(t *testing.T) {
	fixed := fig2QuickConfig(StratDynamic)
	queued := fixed
	queued.NetModel = net.ModelQueued
	queued.LinkBandwidth = 1e18

	run := func(cfg Config) *Result {
		cl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return cl.Run()
	}
	a, b := run(fixed), run(queued)
	if a.String() != b.String() {
		t.Errorf("results differ:\nfixed:  %s\nqueued: %s", a, b)
	}
	if a.MeasuredOps != b.MeasuredOps {
		t.Errorf("ops: fixed %d, queued %d", a.MeasuredOps, b.MeasuredOps)
	}
	if a.Net.Messages != b.Net.Messages || a.Net.Bytes != b.Net.Bytes {
		t.Errorf("fabric totals: fixed %d msg/%d B, queued %d msg/%d B",
			a.Net.Messages, a.Net.Bytes, b.Net.Messages, b.Net.Bytes)
	}
}

// TestQueuedModelDeterministic checks the queued model at a finite
// bandwidth is itself reproducible run to run.
func TestQueuedModelDeterministic(t *testing.T) {
	cfg := fig2QuickConfig(StratDynamic)
	cfg.NetModel = net.ModelQueued
	cfg.LinkBandwidth = 1e6 // slow enough that queues actually form

	run := func() *Result {
		cl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return cl.Run()
	}
	a, b := run(), run()
	if a.String() != b.String() {
		t.Errorf("queued runs differ:\n%s\n%s", a, b)
	}
	if a.Net != b.Net {
		t.Errorf("fabric stats differ:\n%+v\n%+v", a.Net, b.Net)
	}
	if a.Net.MaxQueueDepth < 2 {
		t.Errorf("max queue depth = %d; expected real queueing at 1 MB/s",
			a.Net.MaxQueueDepth)
	}
}

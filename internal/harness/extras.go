package harness

import (
	"fmt"
	"io"
	"strings"

	"dynmds/internal/cluster"
	"dynmds/internal/metrics"
	"dynmds/internal/plan"
	"dynmds/internal/sim"
)

// Extras returns experiments beyond the paper's figures: the
// scientific-computing workload the paper describes but does not plot,
// and a failover timeline exercising the shared-storage takeover and
// log-driven cache warming of §2.1.2/§4.6.
func Extras() []Experiment {
	return []Experiment{
		{
			ID:    "sci",
			Title: "Extension: scientific-computing workload",
			Description: "Per-strategy throughput under LLNL-style burst phases: " +
				"all clients of a job open the same file (N-to-1) or create in " +
				"the same directory (N-to-N).",
			Run: SciExt,
		},
		{
			ID:    "failover",
			Title: "Extension: MDS failure and recovery",
			Description: "Cluster throughput over time as one node fails (its " +
				"subtrees are reassigned over shared storage) and later recovers " +
				"with a log-warmed cache.",
			Run: FailoverExt,
		},
		{
			ID:    "clients",
			Title: "Extension: open-loop client-count sweep",
			Description: "Flyweight traffic plane scaled across population sizes " +
				"at a constant arrival budget: latency quantiles and structural " +
				"bytes per client as the population grows.",
			Run: ClientsExt,
		},
		{
			ID:    "avail",
			Title: "Extension: availability under fault injection",
			Description: "Per-strategy throughput dip, failure-detection and " +
				"recovery time when one of eight nodes crashes mid-run on a " +
				"deterministic fault schedule.",
			Run: AvailExt,
		},
	}
}

// sciConfig builds the scientific workload run.
func sciConfig(opt Options, strategy string) cluster.Config {
	cfg := cluster.Default()
	cfg.Seed = opt.Seed
	cfg.NetModel = opt.NetModel
	cfg.Strategy = strategy
	cfg.NumMDS = 6
	cfg.ClientsPerMDS = 40
	cfg.FS.Users = 60
	cfg.FS.Projects = 12
	cfg.MDS.CacheCapacity = 2500
	cfg.Workload.Kind = cluster.WorkScientific
	cfg.Workload.PhaseLength = 4 * sim.Second
	cfg.Workload.BurstFraction = 0.5
	cfg.Duration = 24 * sim.Second
	cfg.Warmup = 8 * sim.Second
	if opt.Quick {
		cfg.Duration = 12 * sim.Second
		cfg.Warmup = 4 * sim.Second
	}
	return cfg
}

// SciExt compares strategies under the scientific workload; the shared
// hot files and directories stress traffic control and (for the
// dynamic strategy with directory hashing enabled) oversized-directory
// distribution.
func SciExt(w io.Writer, opt Options) error {
	// Every strategy, plus dynamic again with directory hashing of huge
	// shared dirs.
	variants := append(append([]string(nil), cluster.Strategies...),
		cluster.StratDynamic+"+dirhash")
	p := &plan.Plan{
		Name: "sci",
		Matrix: []plan.Axis{
			{Key: "variant", Values: variants},
		},
		Tweak: func(cfg *cluster.Config, cell plan.Cell, _ plan.Options) {
			v := cell["variant"]
			strategy, hashed := strings.CutSuffix(v, "+dirhash")
			*cfg = sciConfig(opt, strategy)
			if hashed {
				cfg.HashDirThreshold = 256
			}
		},
	}
	runs, err := RunPlan(p, opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Extension: scientific workload (synchronised N-to-1 / N-to-N bursts)")
	tb := metrics.NewTable("strategy", "ops/s/mds", "hit", "fwd", "replications", "writes_absorbed")
	for _, r := range runs {
		tb.AddRow(r.Cell["variant"], r.Res.AvgThroughput,
			fmt.Sprintf("%.3f", r.Res.HitRate),
			fmt.Sprintf("%.4f", r.Res.ForwardFrac),
			int(r.Res.Replications),
			int(r.Res.WritesAbsorbed))
	}
	_, err = io.WriteString(w, tb.String())
	return err
}

// FailoverExt runs the failure/recovery timeline.
func FailoverExt(w io.Writer, opt Options) error {
	cfg := cluster.Default()
	cfg.Seed = opt.Seed
	cfg.NetModel = opt.NetModel
	cfg.Strategy = cluster.StratDynamic
	cfg.NumMDS = 6
	cfg.ClientsPerMDS = 30
	cfg.FS.Users = 150
	cfg.MDS.CacheCapacity = 2500
	cfg.Client.ThinkMean = 15 * sim.Millisecond
	cfg.Client.RetryTimeout = 200 * sim.Millisecond
	cfg.Duration = 30 * sim.Second
	cfg.Warmup = 5 * sim.Second
	failAt, recoverAt := 10*sim.Second, 20*sim.Second
	if opt.Quick {
		cfg.Duration = 18 * sim.Second
		failAt, recoverAt = 6*sim.Second, 12*sim.Second
	}
	cl, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	const victim = 0
	var warmed int
	cl.Eng.At(failAt, func() { _ = cl.FailNode(victim) })
	cl.Eng.At(recoverAt, func() { warmed, _ = cl.RecoverNode(victim) })
	res := cl.Run()

	fmt.Fprintf(w, "Extension: node %d fails at t=%v, recovers at t=%v (cache warmed with %d log records)\n",
		victim, failAt, recoverAt, warmed)
	tb := metrics.NewTable("t(s)", "cluster ops/s", "victim ops/s")
	var retries uint64
	for _, c := range cl.Clients {
		retries += c.Stats.Retries
	}
	buckets := res.RepliesPerNode[0].Len()
	for i := 0; i < buckets; i++ {
		var total float64
		for _, s := range res.RepliesPerNode {
			total += s.Sum(i)
		}
		tb.AddRow(int(res.Bucket.Seconds()*float64(i)),
			int(total/res.Bucket.Seconds()),
			int(res.RepliesPerNode[victim].Sum(i)/res.Bucket.Seconds()))
	}
	if _, err := io.WriteString(w, tb.String()); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "total client retries during the outage: %d\n", retries)
	return err
}

package core

import (
	"sort"

	"dynmds/internal/cache"
	"dynmds/internal/namespace"
	"dynmds/internal/partition"
	"dynmds/internal/sim"
)

// Node is the balancer's view of one MDS. internal/mds implements it.
type Node interface {
	// ID is the node's cluster index.
	ID() int
	// Load returns the node's current load metric — the paper's
	// prototype uses "a weighted combination of node throughput and
	// cache misses" (§5.1).
	Load(now sim.Time) float64
	// Cache exposes the node's metadata cache for popularity surveys
	// and migration.
	Cache() *cache.Cache
	// ImportSubtree installs migrated cache state: the double-commit
	// transfer hands the importer "all active state and cached
	// metadata" so it need not re-read it from disk (§4.3).
	ImportSubtree(root *namespace.Inode, entries []Migrated)
	// EvictSubtree discards the exporter's cached state for the
	// migrated subtree.
	EvictSubtree(root *namespace.Inode)
}

// BalancerConfig tunes the load balancer.
type BalancerConfig struct {
	// Interval between heartbeat/balance rounds.
	Interval sim.Time
	// HighFactor and LowFactor classify nodes: busy if load >
	// mean*HighFactor, available if load < mean*LowFactor.
	HighFactor float64
	LowFactor  float64
	// MinMeanLoad disables balancing while the cluster is nearly idle.
	MinMeanLoad float64
	// MaxMigrationsPerRound bounds churn per heartbeat round.
	MaxMigrationsPerRound int
	// DecisionDelay models the heartbeat exchange (§4.3): load values
	// travel the cluster as messages, so balance decisions act on
	// values this much older than the decision instant. Zero decides
	// synchronously (tests).
	DecisionDelay sim.Time
	// MinSubtreePop avoids migrating cold subtrees that would not move
	// any load.
	MinSubtreePop float64
	// NoRedelegateFirst disables the prefer-imported-trees pass
	// (ablation: the paper argues re-delegating whole imported trees
	// keeps the partition simple).
	NoRedelegateFirst bool

	// Priority, when non-nil, weights an inode's popularity in the
	// balancer's surveys. The paper argues a dynamic distribution "can
	// be predicated on any hierarchical performance metric" — e.g.
	// prioritising active project data over archival homes (§4.3).
	// Subtrees with higher weight look hotter, so they are offloaded
	// to less busy nodes sooner and end up with more dedicated
	// capacity. Return 1 for neutral weight.
	Priority func(*namespace.Inode) float64
}

// DefaultBalancerConfig returns the configuration used by experiments.
func DefaultBalancerConfig() BalancerConfig {
	return BalancerConfig{
		Interval:              5 * sim.Second,
		HighFactor:            1.2,
		LowFactor:             0.9,
		MinMeanLoad:           50,
		MaxMigrationsPerRound: 2,
		MinSubtreePop:         1,
		DecisionDelay:         sim.Millisecond,
	}
}

// Migrated is a by-value snapshot of one cache entry handed across a
// migration. The exporter recycles its *cache.Entry objects into its
// own pool right after EvictSubtree, so importers must never retain
// pointers into the exporter's cache — only the inode and class travel.
type Migrated struct {
	Ino   *namespace.Inode
	Class cache.Class
}

// Migration records one authority transfer, for introspection and tests.
type Migration struct {
	At      sim.Time
	Root    *namespace.Inode
	From    int
	To      int
	Entries int
	// Redelegation marks a whole previously-imported tree handed on,
	// as opposed to a fresh subtree split off a node's workload.
	Redelegation bool
}

// Balancer periodically exchanges heartbeat load information among MDS
// nodes and transfers authority for appropriately popular subtrees from
// busy nodes to non-busy ones (§4.3).
type Balancer struct {
	eng   *sim.Engine
	cfg   BalancerConfig
	dyn   *DynamicSubtree
	nodes []Node

	// imports[root] = node that delegated the subtree here; busy nodes
	// first try to re-delegate entire imported trees to keep the
	// overall partition simple.
	imports map[*namespace.Inode]int

	ticker *sim.Ticker

	// Migrations is the log of executed transfers.
	Migrations []Migration
	// Rounds counts balance invocations; HeartbeatMsgs counts load
	// messages exchanged across the cluster.
	Rounds        uint64
	HeartbeatMsgs uint64
}

// NewBalancer wires a balancer over the cluster's nodes. Call Start to
// begin heartbeats.
func NewBalancer(eng *sim.Engine, cfg BalancerConfig, dyn *DynamicSubtree, nodes []Node) *Balancer {
	return &Balancer{
		eng:     eng,
		cfg:     cfg,
		dyn:     dyn,
		nodes:   nodes,
		imports: make(map[*namespace.Inode]int),
	}
}

// Start begins periodic balancing.
func (b *Balancer) Start() {
	b.ticker = sim.NewTicker(b.eng, b.cfg.Interval, b.Rebalance)
	b.ticker.Start(0)
}

// Stop halts periodic balancing.
func (b *Balancer) Stop() {
	if b.ticker != nil {
		b.ticker.Stop()
	}
}

// Rebalance runs one heartbeat round: every node's load is exchanged
// over the interconnect (§4.3: "the MDS nodes exchange heartbeat
// messages that include a description of their current load level"),
// then — one message delay later — busy nodes migrate subtrees to
// available ones based on the exchanged (now slightly stale) values.
// Exported for tests and manual driving.
func (b *Balancer) Rebalance(now sim.Time) {
	b.Rounds++
	n := len(b.nodes)
	if n < 2 {
		return
	}
	// A failed node sits out the round entirely: it cannot heartbeat, it
	// has no workload left to donate (failover reassigned its subtrees),
	// and — critically — its decayed-to-zero load must not make it look
	// "available", or the balancer would migrate authority onto a dead
	// node and black-hole every request sent there.
	loads := make([]float64, n)
	dead := make([]bool, n)
	alive := 0
	var mean float64
	for i, node := range b.nodes {
		if nodeFailed(node) {
			dead[i] = true
			continue
		}
		loads[i] = node.Load(now)
		mean += loads[i]
		alive++
	}
	if alive < 2 {
		return
	}
	mean /= float64(alive)
	b.HeartbeatMsgs += uint64(alive * (alive - 1))
	if mean < b.cfg.MinMeanLoad {
		return
	}
	if b.cfg.DecisionDelay > 0 {
		b.eng.After(b.cfg.DecisionDelay, func() { b.decide(loads, dead, mean) })
		return
	}
	b.decide(loads, dead, mean)
}

// failer is the optional capability a Node implementation exposes when
// it can be taken down by fault injection or the failover extension.
type failer interface{ Failed() bool }

func nodeFailed(n Node) bool {
	f, ok := n.(failer)
	return ok && f.Failed()
}

// decide applies one round's migration decisions to the exchanged
// load vector. dead nodes (snapshotted with the loads, so the decision
// acts on heartbeat-aged information) are excluded from both sides.
func (b *Balancer) decide(loads []float64, dead []bool, mean float64) {
	// Busy nodes descending, available nodes ascending by load.
	var busy, avail []int
	for i := range b.nodes {
		if dead[i] {
			continue
		}
		switch {
		case loads[i] > mean*b.cfg.HighFactor:
			busy = append(busy, i)
		case loads[i] < mean*b.cfg.LowFactor:
			avail = append(avail, i)
		}
	}
	sort.Slice(busy, func(i, j int) bool { return loads[busy[i]] > loads[busy[j]] })
	sort.Slice(avail, func(i, j int) bool { return loads[avail[i]] < loads[avail[j]] })
	if len(busy) == 0 || len(avail) == 0 {
		return
	}

	migrations := 0
	ai := 0
	for _, src := range busy {
		if migrations >= b.cfg.MaxMigrationsPerRound || ai >= len(avail) {
			break
		}
		dst := avail[ai]
		if b.migrateOne(b.eng.Now(), src, dst, loads[src], loads[src]-mean) {
			migrations++
			ai++
		}
	}
}

// migrateOne picks one subtree on src worth roughly excess load and
// delegates it to dst. Returns whether a migration happened.
func (b *Balancer) migrateOne(now sim.Time, src, dst int, load, excess float64) bool {
	node := b.nodes[src]
	roots := b.dyn.Table.RootsOf(src)
	if len(roots) == 0 {
		return false
	}
	// Survey cached popularity per owned root in one cache pass.
	pops := b.surveyRoots(now, node, roots)
	var nodePop float64
	for _, p := range pops {
		nodePop += p
	}
	if nodePop <= 0 {
		return false
	}
	wantFrac := excess / load
	if wantFrac > 0.5 {
		wantFrac = 0.5 // never hand off more than half a node's work at once
	}
	wantPop := nodePop * wantFrac
	if wantPop < b.cfg.MinSubtreePop {
		return false
	}

	// Pass 1 (keep the partition simple, per §4.3): re-delegate an
	// entire previously imported tree. Among imported roots that would
	// not overshoot badly (<= 2x the target), pick the one closest to
	// the target popularity.
	bestIdx := -1
	var bestDist float64
	for i, r := range roots {
		if b.cfg.NoRedelegateFirst {
			break
		}
		if _, imported := b.imports[r]; !imported {
			continue
		}
		if pops[i] < b.cfg.MinSubtreePop || pops[i] > 2*wantPop {
			continue
		}
		d := abs(pops[i] - wantPop)
		if bestIdx < 0 || d < bestDist {
			bestIdx, bestDist = i, d
		}
	}
	if bestIdx >= 0 {
		b.transfer(now, roots[bestIdx], src, dst, true)
		return true
	}

	// Pass 2: split off part of the node's own workload. Take the
	// busiest owned root; if it fits the target comfortably move it
	// whole, otherwise descend one level and move the child directory
	// closest to the target. If no suitable child exists, fall back to
	// the whole root as long as it does not overshoot badly.
	hot := -1
	for i := range roots {
		if roots[i].Parent() == nil {
			continue // never delegate away "/" itself
		}
		if hot < 0 || pops[i] > pops[hot] {
			hot = i
		}
	}
	if hot < 0 || pops[hot] < b.cfg.MinSubtreePop {
		return false
	}
	root := roots[hot]
	if pops[hot] <= wantPop*1.5 {
		b.transfer(now, root, src, dst, false)
		return true
	}
	if children := b.pickChildren(now, node, root, wantPop); len(children) > 0 {
		for _, c := range children {
			b.transfer(now, c, src, dst, false)
		}
		return true
	}
	if pops[hot] <= 2*wantPop {
		b.transfer(now, root, src, dst, false)
		return true
	}
	return false
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// surveyRoots sums decayed popularity of cached entries per owned root.
func (b *Balancer) surveyRoots(now sim.Time, node Node, roots []*namespace.Inode) []float64 {
	pops := make([]float64, len(roots))
	idx := make(map[*namespace.Inode]int, len(roots))
	for i, r := range roots {
		idx[r] = i
	}
	node.Cache().ForEach(func(e *cache.Entry) {
		p := b.weighted(now, e)
		if p == 0 {
			return
		}
		// Attribute to the nearest owned root at or above the entry.
		for c := e.Ino; c != nil; c = c.Parent() {
			if i, ok := idx[c]; ok {
				pops[i] += p
				return
			}
		}
	})
	return pops
}

// weighted applies the optional priority policy to an entry's
// popularity.
func (b *Balancer) weighted(now sim.Time, e *cache.Entry) float64 {
	p := entryPop(now, e)
	if p != 0 && b.cfg.Priority != nil {
		p *= b.cfg.Priority(e.Ino)
	}
	return p
}

// pickChildren selects child directories of root whose cached subtree
// popularities greedily sum to roughly wantPop. Children that already
// carry their own delegation (they belong to someone else) are skipped.
func (b *Balancer) pickChildren(now sim.Time, node Node, root *namespace.Inode, wantPop float64) []*namespace.Inode {
	childPop := make(map[*namespace.Inode]float64)
	node.Cache().ForEach(func(e *cache.Entry) {
		p := b.weighted(now, e)
		if p == 0 {
			return
		}
		// Find the ancestor that is a direct child of root.
		var prev *namespace.Inode
		for c := e.Ino; c != nil; c = c.Parent() {
			if c == root {
				break
			}
			prev = c
		}
		if prev != nil && prev.Parent() == root && prev.IsDir() {
			if _, taken := b.dyn.Table.Assigned(prev); taken {
				return
			}
			childPop[prev] += p
		}
	})
	// Deterministic order: popularity descending, inode ID tie-break.
	cands := make([]*namespace.Inode, 0, len(childPop))
	for c, p := range childPop {
		if p >= b.cfg.MinSubtreePop {
			cands = append(cands, c)
		}
		_ = p
	}
	sort.Slice(cands, func(i, j int) bool {
		pi, pj := childPop[cands[i]], childPop[cands[j]]
		if pi != pj {
			return pi > pj
		}
		return cands[i].ID < cands[j].ID
	})
	var picked []*namespace.Inode
	var sum float64
	for _, c := range cands {
		if sum >= wantPop {
			break
		}
		picked = append(picked, c)
		sum += childPop[c]
	}
	return picked
}

// entryPop values only authoritative entries: popularity counters live
// on the shared inode, so replica and prefix copies of an item served
// elsewhere must not count as this node's exportable load.
func entryPop(now sim.Time, e *cache.Entry) float64 {
	if e.Class != cache.Auth {
		return 0
	}
	tags := partition.TagsOf(e.Ino)
	if tags.Pop == nil {
		return 0
	}
	return tags.Pop.Value(now)
}

// transfer executes the double-commit authority migration: the subtree
// table is updated, the importer receives the exporter's cached state,
// and the exporter discards it.
func (b *Balancer) transfer(now sim.Time, root *namespace.Inode, src, dst int, redelegation bool) {
	live := b.nodes[src].Cache().EntriesUnder(root)
	entries := make([]Migrated, len(live))
	for i, e := range live {
		entries[i] = Migrated{Ino: e.Ino, Class: e.Class}
	}
	if err := b.dyn.Table.Delegate(root, dst); err != nil {
		return
	}
	b.nodes[dst].ImportSubtree(root, entries)
	b.nodes[src].EvictSubtree(root)
	// Either way the tree is now an import at dst, delegated by src;
	// if dst grows busy it will prefer handing the whole tree onward.
	b.imports[root] = src
	b.Migrations = append(b.Migrations, Migration{
		At:           now,
		Root:         root,
		From:         src,
		To:           dst,
		Entries:      len(entries),
		Redelegation: redelegation,
	})
}

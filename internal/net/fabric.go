package net

import (
	"dynmds/internal/metrics"
	"dynmds/internal/sim"
)

// LinkStats counts one directed link's lifetime traffic.
type LinkStats struct {
	Messages uint64
	Bytes    uint64
	// MaxDepth is the high-water mark of messages simultaneously in
	// flight on the link (its queue depth).
	MaxDepth int
}

// Link is one directed endpoint pair, with its counters and the mutable
// per-link state latency models use.
type Link struct {
	From, To int
	Stats    LinkStats
	// BusyUntil is the queued model's serialization horizon: the time
	// the link finishes transmitting everything accepted so far.
	BusyUntil sim.Time

	depth int // messages currently in flight
}

// ClassStats counts one message class fabric-wide. Every send is either
// eventually delivered or dropped at send time by the fault plane, so
// Sent == Delivered + Dropped once traffic drains.
type ClassStats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	Bytes     uint64
}

// envelope carries one in-flight message: the delivery continuation
// (fn, a, b) rides in the envelope, and the envelope itself is the
// single event payload, so a hop schedules without allocating once the
// pool is warm. Envelopes are owned by the fabric and recycled by the
// delivery dispatch, never while an engine event still references them.
type envelope struct {
	fab   *Fabric
	link  *Link
	class Class
	fn    sim.EventFunc
	a, b  any
}

// Fabric routes every simulated message. It is single-threaded, like
// the engine it schedules on: one fabric per cluster, no locks.
type Fabric struct {
	eng   *sim.Engine
	model LatencyModel
	n     int // MDS endpoints; endpoint n is the client edge
	links []Link
	class [NumClasses]ClassStats
	pool  []*envelope
	live  int        // envelopes checked out of the pool (leak detector)
	plane FaultPlane // nil unless fault injection is active
}

// NewFabric creates a fabric over numMDS node endpoints plus the client
// edge, pricing transit with the given model.
func NewFabric(eng *sim.Engine, numMDS int, model LatencyModel) *Fabric {
	f := &Fabric{eng: eng, model: model, n: numMDS}
	w := numMDS + 1
	f.links = make([]Link, w*w)
	for i := range f.links {
		f.links[i].From, f.links[i].To = i/w, i%w
	}
	return f
}

// ClientEdge returns the endpoint index aggregating the client
// population.
func (f *Fabric) ClientEdge() int { return f.n }

// Model returns the latency model's name.
func (f *Fabric) Model() string { return f.model.Name() }

// SetFaultPlane attaches a fault plane consulted on every Send. Pass
// nil to detach.
func (f *Fabric) SetFaultPlane(p FaultPlane) { f.plane = p }

// Send routes one message of the given class and size from endpoint
// `from` to endpoint `to`; fn(a, b) runs at delivery. It returns the
// delivery time. Counters update at send and delivery, so at any
// instant Sent - Delivered messages are in flight.
func (f *Fabric) Send(c Class, from, to, bytes int, fn sim.EventFunc, a, b any) sim.Time {
	now := f.eng.Now()
	l := &f.links[from*(f.n+1)+to]
	var extra sim.Time
	if f.plane != nil {
		var drop bool
		drop, extra = f.plane.Transit(from, to, now)
		if drop {
			// The message dies at the sender's NIC: it never occupies
			// the link and its continuation never runs. Count it so the
			// conservation identity stays sent == delivered + dropped.
			cs := &f.class[c]
			cs.Sent++
			cs.Dropped++
			cs.Bytes += uint64(bytes)
			return now
		}
	}
	delay := extra + f.model.Delay(l, c, bytes, now)
	l.Stats.Messages++
	l.Stats.Bytes += uint64(bytes)
	l.depth++
	if l.depth > l.Stats.MaxDepth {
		l.Stats.MaxDepth = l.depth
	}
	cs := &f.class[c]
	cs.Sent++
	cs.Bytes += uint64(bytes)
	env := f.getEnv()
	env.link, env.class, env.fn, env.a, env.b = l, c, fn, a, b
	f.eng.AfterCall(delay, deliverEnvelope, env, nil)
	return now + delay
}

// deliverEnvelope completes one hop: release the envelope first, then
// run the continuation (which may immediately send again and reuse it).
func deliverEnvelope(x, _ any) {
	env := x.(*envelope)
	f := env.fab
	env.link.depth--
	f.class[env.class].Delivered++
	fn, a, b := env.fn, env.a, env.b
	f.putEnv(env)
	fn(a, b)
}

func (f *Fabric) getEnv() *envelope {
	f.live++
	if n := len(f.pool); n > 0 {
		env := f.pool[n-1]
		f.pool[n-1] = nil
		f.pool = f.pool[:n-1]
		return env
	}
	return &envelope{fab: f}
}

func (f *Fabric) putEnv(env *envelope) {
	env.link, env.fn, env.a, env.b = nil, nil, nil, nil
	f.live--
	f.pool = append(f.pool, env)
}

// Class returns the fabric-wide counters for one message class.
func (f *Fabric) Class(c Class) ClassStats { return f.class[c] }

// LinkBetween returns the counters of the directed from→to link.
func (f *Fabric) LinkBetween(from, to int) LinkStats {
	return f.links[from*(f.n+1)+to].Stats
}

// InFlight returns the number of messages sent but neither delivered
// nor dropped.
func (f *Fabric) InFlight() int {
	var d int
	for i := range f.class {
		d += int(f.class[i].Sent - f.class[i].Delivered - f.class[i].Dropped)
	}
	return d
}

// LiveEnvelopes returns the number of envelopes checked out of the
// pool; it equals InFlight unless an envelope leaked.
func (f *Fabric) LiveEnvelopes() int { return f.live }

// Stats is the run-level fabric summary surfaced in cluster.Result.
type Stats struct {
	Model    string
	Messages uint64
	Bytes    uint64
	// Dropped counts messages the fault plane killed at send time.
	Dropped uint64
	// MaxQueueDepth is the largest per-link in-flight high-water mark.
	MaxQueueDepth int
	PerClass      [NumClasses]ClassStats
}

// Summary snapshots the fabric's counters.
func (f *Fabric) Summary() Stats {
	s := Stats{Model: f.model.Name(), PerClass: f.class}
	for i := range f.class {
		s.Messages += f.class[i].Sent
		s.Bytes += f.class[i].Bytes
		s.Dropped += f.class[i].Dropped
	}
	for i := range f.links {
		if d := f.links[i].Stats.MaxDepth; d > s.MaxQueueDepth {
			s.MaxQueueDepth = d
		}
	}
	return s
}

// Table renders the per-class counters as an aligned console table. The
// dropped column appears only when the fault plane actually dropped
// something, so fault-free output is unchanged.
func (s *Stats) Table() string {
	if s.Dropped > 0 {
		tb := metrics.NewTable("class", "sent", "delivered", "dropped", "bytes")
		for c := 0; c < NumClasses; c++ {
			cs := s.PerClass[c]
			if cs.Sent == 0 {
				continue
			}
			tb.AddRow(Class(c).String(), int(cs.Sent), int(cs.Delivered),
				int(cs.Dropped), int(cs.Bytes))
		}
		return tb.String()
	}
	tb := metrics.NewTable("class", "sent", "delivered", "bytes")
	for c := 0; c < NumClasses; c++ {
		cs := s.PerClass[c]
		if cs.Sent == 0 {
			continue
		}
		tb.AddRow(Class(c).String(), int(cs.Sent), int(cs.Delivered), int(cs.Bytes))
	}
	return tb.String()
}

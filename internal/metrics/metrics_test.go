package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dynmds/internal/sim"
)

func TestDecayCounterHalfLife(t *testing.T) {
	c := NewDecayCounter(sim.Second)
	c.Add(0, 100)
	if got := c.Value(sim.Second); math.Abs(got-50) > 0.001 {
		t.Fatalf("after one half-life: %v, want 50", got)
	}
	if got := c.Value(2 * sim.Second); math.Abs(got-25) > 0.001 {
		t.Fatalf("after two half-lives: %v, want 25", got)
	}
}

func TestDecayCounterAccumulates(t *testing.T) {
	c := NewDecayCounter(sim.Second)
	c.Add(0, 10)
	c.Add(sim.Second, 10) // old 10 decayed to 5, +10 = 15
	if got := c.Value(sim.Second); math.Abs(got-15) > 0.001 {
		t.Fatalf("value = %v, want 15", got)
	}
}

func TestDecayCounterMonotoneClock(t *testing.T) {
	c := NewDecayCounter(sim.Second)
	c.Add(10*sim.Second, 7)
	// Reading at an earlier time must not inflate the value.
	if got := c.Value(5 * sim.Second); math.Abs(got-7) > 0.001 {
		t.Fatalf("stale read = %v, want 7", got)
	}
}

func TestDecayCounterReset(t *testing.T) {
	c := NewDecayCounter(sim.Second)
	c.Add(0, 42)
	c.Reset(sim.Second)
	if got := c.Value(2 * sim.Second); got != 0 {
		t.Fatalf("after reset = %v", got)
	}
}

// Property: decay never makes a nonnegative counter negative, and decay
// over t1+t2 equals decay over t1 then t2.
func TestDecayComposition(t *testing.T) {
	f := func(a, b uint16, add uint16) bool {
		c1 := NewDecayCounter(sim.Second)
		c1.Add(0, float64(add))
		v1 := c1.Value(sim.Time(a) + sim.Time(b))
		c2 := NewDecayCounter(sim.Second)
		c2.Add(0, float64(add))
		_ = c2.Value(sim.Time(a))
		v2 := c2.Value(sim.Time(a) + sim.Time(b))
		return v1 >= 0 && math.Abs(v1-v2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries(sim.Second)
	s.Observe(0, 1)
	s.Observe(500*sim.Millisecond, 2)
	s.Observe(1500*sim.Millisecond, 10)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Sum(0) != 3 || s.Sum(1) != 10 {
		t.Fatalf("sums = %v %v", s.Sum(0), s.Sum(1))
	}
	if s.Count(0) != 2 {
		t.Fatalf("count = %d", s.Count(0))
	}
	if s.Mean(0) != 1.5 {
		t.Fatalf("mean = %v", s.Mean(0))
	}
	if s.Rate(1) != 10 {
		t.Fatalf("rate = %v", s.Rate(1))
	}
	if s.Sum(99) != 0 || s.Mean(99) != 0 || s.Count(-1) != 0 {
		t.Fatal("out-of-range access not zero")
	}
	if s.BucketStart(3) != 3*sim.Second {
		t.Fatalf("bucket start = %v", s.BucketStart(3))
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("n = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-9 {
		t.Fatalf("mean = %v", w.Mean())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
	// Sample stddev of that set is sqrt(32/7).
	if math.Abs(w.Stddev()-math.Sqrt(32.0/7.0)) > 1e-9 {
		t.Fatalf("stddev = %v", w.Stddev())
	}
	var empty Welford
	if empty.Stddev() != 0 || empty.Mean() != 0 {
		t.Fatal("empty welford not zero")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("mds", "ops/sec")
	tb.AddRow(5, 3210.5)
	tb.AddRow("10", 2800.0)
	out := tb.String()
	if !strings.Contains(out, "mds") || !strings.Contains(out, "3210.50") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines", len(lines))
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]float64{"b": 1, "a": 2, "c": 3}
	k := SortedKeys(m)
	if k[0] != "a" || k[1] != "b" || k[2] != "c" {
		t.Fatalf("keys = %v", k)
	}
}

package core

import (
	"fmt"
	"testing"

	"dynmds/internal/cache"
	"dynmds/internal/namespace"
	"dynmds/internal/partition"
	"dynmds/internal/sim"
)

func buildTree(t *testing.T) (*namespace.Tree, []*namespace.Inode) {
	t.Helper()
	tr := namespace.NewTree()
	home, err := tr.Mkdir(tr.Root, "home")
	if err != nil {
		t.Fatal(err)
	}
	var homes []*namespace.Inode
	for u := 0; u < 8; u++ {
		h, err := tr.Mkdir(home, fmt.Sprintf("u%d", u))
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 10; f++ {
			if _, err := tr.Create(h, fmt.Sprintf("f%d", f)); err != nil {
				t.Fatal(err)
			}
		}
		homes = append(homes, h)
	}
	return tr, homes
}

func TestDynamicSubtreeStrategyFlags(t *testing.T) {
	tr, _ := buildTree(t)
	d := NewDynamicSubtree(4, tr, 2)
	if d.Name() != "DynamicSubtree" {
		t.Fatal("name")
	}
	if !d.DirGranular() || !d.NeedsPathTraversal() || d.ClientComputable() {
		t.Fatal("flags wrong")
	}
	a := d.Authority(tr.Root)
	if a < 0 || a >= 4 {
		t.Fatalf("root authority = %d", a)
	}
}

func TestDynamicDirHashing(t *testing.T) {
	tr, homes := buildTree(t)
	d := NewDynamicSubtree(4, tr, 2)
	d.HashDirThreshold = 8
	dir := homes[0] // has 10 children
	before := d.Authority(dir.Child(0))
	_ = before
	if !d.MaybeHashDir(dir) {
		t.Fatal("big directory not hashed")
	}
	if d.DirsHashed != 1 {
		t.Fatalf("DirsHashed = %d", d.DirsHashed)
	}
	// Entries now spread across nodes by name hash.
	got := map[int]bool{}
	for i := 0; i < dir.NumChildren(); i++ {
		a := d.Authority(dir.Child(i))
		if a < 0 || a >= 4 {
			t.Fatalf("authority out of range")
		}
		got[a] = true
	}
	if len(got) < 2 {
		t.Fatalf("hashed directory entries on %d node(s), want spread", len(got))
	}
	// AuthorityForName consistent with Authority for an existing child.
	c := dir.Child(3)
	if d.AuthorityForName(dir, c.Name()) != d.Authority(c) {
		t.Fatal("AuthorityForName mismatch for hashed dir")
	}
	// Shrink below half the threshold: consolidate.
	for dir.NumChildren() > 3 {
		if err := tr.Remove(dir.Child(0)); err != nil {
			t.Fatal(err)
		}
	}
	if !d.MaybeHashDir(dir) {
		t.Fatal("shrunken directory not consolidated")
	}
	if d.DirsHashed != 0 {
		t.Fatalf("DirsHashed = %d after consolidation", d.DirsHashed)
	}
	// No-ops: threshold disabled or target is a file.
	d2 := NewDynamicSubtree(4, tr, 2)
	if d2.MaybeHashDir(dir) {
		t.Fatal("hashing with disabled threshold")
	}
}

func TestTrafficControlDecisions(t *testing.T) {
	tr, homes := buildTree(t)
	_ = tr
	f := homes[0].Child(0)
	tc := &TrafficControl{Enabled: true, ReplicateThreshold: 10, UnreplicateThreshold: 2}
	pop := partition.Popularity(f, sim.Second)

	now := sim.Time(0)
	// Below threshold: Keep.
	pop.Add(now, 5)
	if d := tc.Decide(now, f); d != Keep {
		t.Fatalf("decision = %v, want Keep", d)
	}
	// Cross threshold: Replicate once.
	pop.Add(now, 10)
	if d := tc.Decide(now, f); d != Replicate {
		t.Fatal("no replicate at threshold")
	}
	if !tc.Replicated(f) {
		t.Fatal("not marked replicated")
	}
	if d := tc.Decide(now, f); d != Keep {
		t.Fatal("replicate repeated")
	}
	// Decay below unreplicate threshold: Consolidate.
	later := now + 10*sim.Second
	if d := tc.Decide(later, f); d != Consolidate {
		t.Fatal("no consolidation after decay")
	}
	if tc.Replicated(f) {
		t.Fatal("still marked replicated")
	}
	if tc.Replications != 1 || tc.Consolidations != 1 {
		t.Fatalf("counters = %d/%d", tc.Replications, tc.Consolidations)
	}
}

func TestTrafficControlDisabledAndNil(t *testing.T) {
	tr, homes := buildTree(t)
	_ = tr
	f := homes[0].Child(0)
	partition.Popularity(f, sim.Second).Add(0, 1e6)
	var nilTC *TrafficControl
	if nilTC.Decide(0, f) != Keep || nilTC.Replicated(f) {
		t.Fatal("nil traffic control acted")
	}
	tc := &TrafficControl{Enabled: false, ReplicateThreshold: 1}
	if tc.Decide(0, f) != Keep || tc.Replicated(f) {
		t.Fatal("disabled traffic control acted")
	}
	// Untouched inode (no Pop counter): Keep.
	g := homes[0].Child(1)
	on := DefaultTrafficControl()
	if on.Decide(0, g) != Keep {
		t.Fatal("decision for untouched inode")
	}
}

// fakeNode implements Node for balancer tests.
type fakeNode struct {
	id              int
	load            float64
	c               *cache.Cache
	imports, evicts int
}

func (f *fakeNode) ID() int                   { return f.id }
func (f *fakeNode) Load(now sim.Time) float64 { return f.load }
func (f *fakeNode) Cache() *cache.Cache       { return f.c }
func (f *fakeNode) ImportSubtree(root *namespace.Inode, entries []Migrated) {
	f.imports++
	for _, e := range entries {
		if _, err := f.c.InsertPath(e.Ino, e.Class, false); err != nil {
			panic(err)
		}
	}
}
func (f *fakeNode) EvictSubtree(root *namespace.Inode) {
	f.evicts++
	f.c.RemoveSubtree(root)
}

func TestBalancerMigratesHotSubtree(t *testing.T) {
	tr, homes := buildTree(t)
	const n = 4
	d := NewDynamicSubtree(n, tr, 2)
	eng := sim.NewEngine()

	nodes := make([]Node, n)
	fakes := make([]*fakeNode, n)
	for i := 0; i < n; i++ {
		fakes[i] = &fakeNode{id: i, load: 100, c: cache.New(10000)}
		nodes[i] = fakes[i]
	}
	// Make node busy: find the node owning homes[0]; load it up and
	// populate its cache with hot entries under two homes it owns.
	src := d.Authority(homes[0])
	fakes[src].load = 1000
	for _, h := range homes {
		if d.Authority(h) != src {
			continue
		}
		for i := 0; i < h.NumChildren(); i++ {
			c := h.Child(i)
			if _, err := fakes[src].c.InsertPath(c, cache.Auth, false); err != nil {
				t.Fatal(err)
			}
			partition.Popularity(c, sim.Second).Add(0, 50)
		}
	}

	cfg := DefaultBalancerConfig()
	cfg.MinMeanLoad = 10
	b := NewBalancer(eng, cfg, d, nodes)
	b.Rebalance(0)
	eng.Run()

	if len(b.Migrations) == 0 {
		t.Fatal("no migration executed")
	}
	m := b.Migrations[0]
	if m.From != src {
		t.Fatalf("migrated from %d, want %d", m.From, src)
	}
	if m.To == src {
		t.Fatal("migrated to itself")
	}
	if fakes[m.To].imports != 1 || fakes[src].evicts == 0 {
		t.Fatal("import/evict not invoked")
	}
	// Authority actually moved.
	if got := d.Authority(m.Root); got != m.To {
		t.Fatalf("authority(%s) = %d, want %d", m.Root, got, m.To)
	}
	// The destination received the cached state.
	if len(fakes[m.To].c.EntriesUnder(m.Root)) == 0 {
		t.Fatal("destination cache empty for migrated subtree")
	}
	if len(fakes[src].c.EntriesUnder(m.Root)) != 0 {
		t.Fatal("source still caches migrated subtree")
	}
}

func TestBalancerIdleClusterDoesNothing(t *testing.T) {
	tr, _ := buildTree(t)
	d := NewDynamicSubtree(2, tr, 2)
	eng := sim.NewEngine()
	nodes := []Node{
		&fakeNode{id: 0, load: 1, c: cache.New(10)},
		&fakeNode{id: 1, load: 0, c: cache.New(10)},
	}
	b := NewBalancer(eng, DefaultBalancerConfig(), d, nodes)
	b.Rebalance(0)
	eng.Run()
	if len(b.Migrations) != 0 {
		t.Fatal("idle cluster migrated")
	}
}

func TestBalancerBalancedClusterDoesNothing(t *testing.T) {
	tr, _ := buildTree(t)
	d := NewDynamicSubtree(2, tr, 2)
	eng := sim.NewEngine()
	nodes := []Node{
		&fakeNode{id: 0, load: 1000, c: cache.New(10)},
		&fakeNode{id: 1, load: 1000, c: cache.New(10)},
	}
	b := NewBalancer(eng, DefaultBalancerConfig(), d, nodes)
	b.Rebalance(0)
	eng.Run()
	if len(b.Migrations) != 0 {
		t.Fatal("balanced cluster migrated")
	}
}

func TestBalancerPrefersRedelegatingImports(t *testing.T) {
	tr, homes := buildTree(t)
	const n = 3
	d := NewDynamicSubtree(n, tr, 2)
	eng := sim.NewEngine()
	fakes := make([]*fakeNode, n)
	nodes := make([]Node, n)
	for i := range fakes {
		fakes[i] = &fakeNode{id: i, load: 100, c: cache.New(10000)}
		nodes[i] = fakes[i]
	}
	cfg := DefaultBalancerConfig()
	cfg.MinMeanLoad = 1
	b := NewBalancer(eng, cfg, d, nodes)

	// Import homes[0] into node 1 by hand, then make node 1 busy with
	// comparable popularity on the imported tree and an owned tree.
	src := d.Authority(homes[0])
	if src == 1 {
		src = (src + 1) % n
		_ = d.Table.Delegate(homes[0], src)
	}
	live := fakes[src].c.EntriesUnder(homes[0])
	entries := make([]Migrated, len(live))
	for i, e := range live {
		entries[i] = Migrated{Ino: e.Ino, Class: e.Class}
	}
	_ = d.Table.Delegate(homes[0], 1)
	fakes[1].ImportSubtree(homes[0], entries)
	b.imports[homes[0]] = src

	// Populate node 1's cache with popularity on the imported tree.
	for i := 0; i < homes[0].NumChildren(); i++ {
		c := homes[0].Child(i)
		if _, err := fakes[1].c.InsertPath(c, cache.Auth, false); err != nil {
			t.Fatal(err)
		}
		partition.Popularity(c, sim.Second).Add(0, 30)
	}
	fakes[1].load = 1000

	b.Rebalance(0)
	eng.Run()
	if len(b.Migrations) == 0 {
		t.Fatal("no migration")
	}
	if !b.Migrations[0].Redelegation {
		t.Fatalf("expected redelegation of imported tree, got %+v", b.Migrations[0])
	}
	if b.Migrations[0].Root != homes[0] {
		t.Fatalf("redelegated %v, want %v", b.Migrations[0].Root, homes[0])
	}
}

func TestBalancerStartStopTicker(t *testing.T) {
	tr, _ := buildTree(t)
	d := NewDynamicSubtree(2, tr, 2)
	eng := sim.NewEngine()
	nodes := []Node{
		&fakeNode{id: 0, load: 0, c: cache.New(10)},
		&fakeNode{id: 1, load: 0, c: cache.New(10)},
	}
	cfg := DefaultBalancerConfig()
	cfg.Interval = sim.Second
	b := NewBalancer(eng, cfg, d, nodes)
	b.Start()
	eng.RunUntil(3500 * sim.Millisecond)
	if b.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", b.Rounds)
	}
	b.Stop()
	eng.RunUntil(10 * sim.Second)
	if b.Rounds != 3 {
		t.Fatalf("rounds after stop = %d", b.Rounds)
	}
}

func TestBalancerPriorityPolicy(t *testing.T) {
	tr, homes := buildTree(t)
	const n = 3
	d := NewDynamicSubtree(n, tr, 2)
	eng := sim.NewEngine()
	fakes := make([]*fakeNode, n)
	nodes := make([]Node, n)
	for i := range fakes {
		fakes[i] = &fakeNode{id: i, load: 100, c: cache.New(10000)}
		nodes[i] = fakes[i]
	}
	// Put two equally popular homes on one busy node; give one of them
	// a 10x priority. The balancer should migrate the prioritised one.
	src := d.Authority(homes[0])
	var owned []*namespace.Inode
	for _, h := range homes {
		if d.Authority(h) == src {
			owned = append(owned, h)
		}
	}
	if len(owned) < 2 {
		t.Skip("hash placed fewer than two homes on one node")
	}
	a, b := owned[0], owned[1]
	for _, h := range []*namespace.Inode{a, b} {
		for i := 0; i < h.NumChildren(); i++ {
			c := h.Child(i)
			if _, err := fakes[src].c.InsertPath(c, cache.Auth, false); err != nil {
				t.Fatal(err)
			}
			partition.Popularity(c, sim.Second).Add(0, 30)
		}
	}
	fakes[src].load = 1000

	cfg := DefaultBalancerConfig()
	cfg.MinMeanLoad = 1
	cfg.Priority = func(ino *namespace.Inode) float64 {
		if ino == b || b.IsAncestorOf(ino) {
			return 10
		}
		return 1
	}
	bal := NewBalancer(eng, cfg, d, nodes)
	bal.Rebalance(0)
	eng.Run()
	if len(bal.Migrations) == 0 {
		t.Fatal("no migration")
	}
	if bal.Migrations[0].Root != b {
		t.Fatalf("migrated %s, want prioritised %s", bal.Migrations[0].Root.Path(), b.Path())
	}
}

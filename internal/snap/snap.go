// Package snap is the serialization codec for endurance checkpoints
// (internal/endure). A snapshot is a sequence of named sections, each a
// length-prefixed byte run of varint-encoded scalars and strings,
// followed by an FNV-64 trailer over everything before it. The codec is
// deliberately tiny: no reflection, no interfaces per field — each
// package that owns mutable simulation state writes its section with
// explicit code, so the set of serialized state is auditable by
// reading the SnapshotTo methods.
//
// Versioning lives one level up (internal/endure's file header); this
// package only guarantees that a section stream written by Writer reads
// back exactly with Reader, and that corruption is caught by the
// checksum before any section is trusted.
package snap

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Writer accumulates sections into a byte buffer.
type Writer struct {
	buf []byte
	// section bookkeeping: start of the current section's length prefix.
	secAt   int
	secName string
}

// NewWriter returns an empty snapshot writer.
func NewWriter() *Writer { return &Writer{} }

// Begin opens a named section. Sections cannot nest.
func (w *Writer) Begin(name string) {
	if w.secName != "" {
		panic("snap: nested section " + name + " inside " + w.secName)
	}
	w.secName = name
	w.String(name)
	// Reserve a fixed 8-byte length slot so we can patch it after End.
	w.secAt = len(w.buf)
	w.buf = append(w.buf, 0, 0, 0, 0, 0, 0, 0, 0)
}

// End closes the current section, patching its length prefix.
func (w *Writer) End() {
	if w.secName == "" {
		panic("snap: End outside section")
	}
	n := len(w.buf) - w.secAt - 8
	binary.LittleEndian.PutUint64(w.buf[w.secAt:], uint64(n))
	w.secName = ""
}

// U64 appends an unsigned varint.
func (w *Writer) U64(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// I64 appends a signed varint (zigzag).
func (w *Writer) I64(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Int appends an int as a signed varint.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool appends a boolean.
func (w *Writer) Bool(v bool) {
	if v {
		w.U64(1)
	} else {
		w.U64(0)
	}
}

// F64 appends a float64 bit-exactly.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Bytes returns the finished snapshot: all sections plus an FNV-64
// checksum trailer. The writer must not be reused after Bytes.
func (w *Writer) Bytes() []byte {
	if w.secName != "" {
		panic("snap: Bytes inside open section " + w.secName)
	}
	h := fnv.New64a()
	h.Write(w.buf)
	var tr [8]byte
	binary.LittleEndian.PutUint64(tr[:], h.Sum64())
	return append(w.buf, tr[:]...)
}

// Reader decodes a snapshot produced by Writer.
type Reader struct {
	buf []byte
	pos int
	end int // current section end; 0 before the first Section call
}

// NewReader validates the checksum trailer and returns a reader over
// the section stream.
func NewReader(b []byte) (*Reader, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("snap: truncated snapshot (%d bytes)", len(b))
	}
	body, tr := b[:len(b)-8], b[len(b)-8:]
	h := fnv.New64a()
	h.Write(body)
	if got, want := h.Sum64(), binary.LittleEndian.Uint64(tr); got != want {
		return nil, fmt.Errorf("snap: checksum mismatch (got %016x want %016x)", got, want)
	}
	return &Reader{buf: body}, nil
}

// Section opens the next section and returns its name. Call after the
// previous section is fully consumed; Section skips any unread
// remainder of the previous section (forward compatibility: a reader
// may ignore trailing fields it does not understand).
func (r *Reader) Section() (string, error) {
	r.pos = r.end // skip unread remainder
	r.end = len(r.buf)
	if r.pos >= len(r.buf) {
		return "", nil // end of stream
	}
	name := r.String()
	if r.pos+8 > len(r.buf) {
		return "", fmt.Errorf("snap: truncated section header %q", name)
	}
	n := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	if uint64(len(r.buf)-r.pos) < n {
		return "", fmt.Errorf("snap: section %q length %d exceeds buffer", name, n)
	}
	r.end = r.pos + int(n)
	return name, nil
}

// U64 reads an unsigned varint. Reads past a section end panic: a
// snapshot section is a trusted, checksummed stream, so a short read
// is a programming error (writer/reader mismatch), not an input error.
func (r *Reader) U64() uint64 {
	v, n := binary.Uvarint(r.buf[r.pos:r.end])
	if n <= 0 {
		panic("snap: varint read past section end")
	}
	r.pos += n
	return v
}

// I64 reads a signed varint.
func (r *Reader) I64() int64 {
	v, n := binary.Varint(r.buf[r.pos:r.end])
	if n <= 0 {
		panic("snap: varint read past section end")
	}
	r.pos += n
	return v
}

// Int reads an int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U64() != 0 }

// F64 reads a bit-exact float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.U64()
	if uint64(r.end-r.pos) < n {
		panic("snap: string read past section end")
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

// Remaining reports unread bytes in the current section.
func (r *Reader) Remaining() int { return r.end - r.pos }

package client

import (
	"math/bits"

	"dynmds/internal/msg"
	"dynmds/internal/namespace"
)

// HintTable is the location-knowledge cache for a whole client
// population: one shared slab of 8-byte slots, W ways per client, open
// addressing with a bounded probe window inside the client's region.
// Compared to the per-client map+FIFO it replaces, it has no per-entry
// allocation, no map header per client, and a deterministic eviction
// rule (overwrite the key's home slot when the probe window is full) —
// the FIFO ring's stale-slot interaction between del and eviction is
// structurally impossible because deletion clears the exact slot.
//
// Each slot packs key|value: key is uint32(ino)+1 (0 marks an empty
// slot; generated trees stay far below 2^32 inodes, enforced on Put),
// the value is the authority id with the replicated bit on top.
type HintTable struct {
	ways  uint32 // slots per client, power of two
	probe uint32 // probe window, min(ways, 4)
	slots []uint64
}

const hintReplicated = 1 << 31

// NewHintTable allocates a table for the given number of clients with
// ways slots each (rounded up to a power of two, minimum 2).
func NewHintTable(clients, ways int) *HintTable {
	if clients < 1 {
		clients = 1
	}
	if ways < 2 {
		ways = 2
	}
	w := uint32(1) << uint(bits.Len32(uint32(ways-1)))
	if w > 1<<20 {
		w = 1 << 20
	}
	p := uint32(4)
	if w < p {
		p = w
	}
	return &HintTable{ways: w, probe: p, slots: make([]uint64, clients*int(w))}
}

// Ways returns the per-client slot count.
func (t *HintTable) Ways() int { return int(t.ways) }

// FootprintBytes returns the slab size in bytes.
func (t *HintTable) FootprintBytes() int64 { return int64(len(t.slots)) * 8 }

// home returns the key's preferred slot offset within a client region.
func (t *HintTable) home(key uint32) uint32 {
	return uint32((uint64(key)*0x9E3779B97F4A7C15)>>40) & (t.ways - 1)
}

// Get looks up the hint for ino in client's region.
func (t *HintTable) Get(client int, ino namespace.InodeID) (authority int, replicated, ok bool) {
	key := uint32(ino) + 1
	base := uint32(client) * t.ways
	start := t.home(key)
	for j := uint32(0); j < t.probe; j++ {
		s := t.slots[base+(start+j)&(t.ways-1)]
		if uint32(s) == key {
			v := uint32(s >> 32)
			return int(v &^ hintReplicated), v&hintReplicated != 0, true
		}
	}
	return 0, false, false
}

// Put records a hint in client's region: refresh in place on a key
// match, fill the first empty slot in the probe window, or — window
// full — overwrite the key's home slot (deterministic eviction).
func (t *HintTable) Put(client int, h msg.Hint) {
	if uint64(h.Ino) >= 1<<32-1 {
		panic("client: inode id exceeds hint-table key range")
	}
	key := uint32(h.Ino) + 1
	v := uint32(h.Authority)
	if h.Replicated {
		v |= hintReplicated
	}
	packed := uint64(v)<<32 | uint64(key)
	base := uint32(client) * t.ways
	start := t.home(key)
	empty := uint32(0xFFFFFFFF)
	for j := uint32(0); j < t.probe; j++ {
		idx := base + (start+j)&(t.ways-1)
		s := t.slots[idx]
		if uint32(s) == key {
			t.slots[idx] = packed
			return
		}
		if s == 0 && empty == 0xFFFFFFFF {
			empty = idx
		}
	}
	if empty != 0xFFFFFFFF {
		t.slots[empty] = packed
		return
	}
	t.slots[base+start] = packed
}

// Del invalidates the hint for ino, if present: the exact slot is
// cleared, so no stale residue can ever interact with later evictions.
func (t *HintTable) Del(client int, ino namespace.InodeID) {
	key := uint32(ino) + 1
	base := uint32(client) * t.ways
	start := t.home(key)
	for j := uint32(0); j < t.probe; j++ {
		idx := base + (start+j)&(t.ways-1)
		if uint32(t.slots[idx]) == key {
			t.slots[idx] = 0
			return
		}
	}
}

// Len counts occupied slots in client's region (tests and figures; not
// a hot path).
func (t *HintTable) Len(client int) int {
	base := uint32(client) * t.ways
	n := 0
	for j := uint32(0); j < t.ways; j++ {
		if t.slots[base+j] != 0 {
			n++
		}
	}
	return n
}

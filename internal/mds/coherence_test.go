package mds

import (
	"fmt"
	"testing"

	"dynmds/internal/msg"
	"dynmds/internal/namespace"
	"dynmds/internal/partition"
	"dynmds/internal/sim"
)

func TestCoherenceUpdatePropagation(t *testing.T) {
	eng := sim.NewEngine()
	cl, tree, strat := buildCluster(t, eng, 3, func(tr *namespace.Tree) partition.Strategy {
		return partition.NewStaticSubtree(3, tr, 2)
	}, true)
	f := lookup(t, tree, "/home/u1/f0")
	auth := strat.Authority(f)

	// Make the file hot so it replicates everywhere.
	for i := 0; i < 10; i++ {
		cl.nodes[auth].Receive(&msg.Request{ID: uint64(i), Op: msg.Open, Target: f})
	}
	eng.Run()
	tags := partition.TagsOf(f)
	if tags.ReplicaSet == 0 {
		t.Fatal("no replica set recorded after replication")
	}
	for i := 0; i < 3; i++ {
		if i != auth && !tags.HasReplica(i) {
			t.Fatalf("node %d missing from replica set", i)
		}
	}

	// An update at the authority pushes coherence to every holder.
	cl.nodes[auth].Receive(&msg.Request{ID: 100, Op: msg.Chmod, Target: f})
	eng.Run()
	if cl.nodes[auth].Stats.CoherenceSent != 2 {
		t.Fatalf("coherence sent = %d, want 2", cl.nodes[auth].Stats.CoherenceSent)
	}
	var recvd uint64
	for i, n := range cl.nodes {
		if i != auth {
			recvd += n.Stats.CoherenceReceived
		}
	}
	if recvd != 2 {
		t.Fatalf("coherence received = %d, want 2", recvd)
	}
}

func TestCoherenceEvictNotice(t *testing.T) {
	eng := sim.NewEngine()
	cl, tree, strat := buildCluster(t, eng, 2, func(tr *namespace.Tree) partition.Strategy {
		return partition.DirHash{N: 2}
	}, false)

	// Find a file whose authority differs from its parent directory's
	// prefix chain owner so serving it installs a remote prefix.
	var served *MDS
	for u := 0; u < 4; u++ {
		f := lookup(t, tree, "/home/u"+string(rune('0'+u))+"/f0")
		a := strat.Authority(f)
		cl.nodes[a].Receive(&msg.Request{ID: uint64(u), Op: msg.Open, Target: f})
		served = cl.nodes[a]
	}
	eng.Run()
	_ = served
	totalRemote := cl.nodes[0].Stats.RemoteFetches + cl.nodes[1].Stats.RemoteFetches
	if totalRemote == 0 {
		t.Skip("hash layout put every prefix local; nothing to evict")
	}

	// Force eviction of everything by filling the caches well past
	// capacity with fresh records; replica holders must notify
	// authorities as their replicas fall out.
	dir := lookup(t, tree, "/home/u3")
	for i := 0; i < 2*cl.nodes[0].Cache().Cap(); i++ {
		n, err := tree.Create(dir, fmt.Sprintf("spam%d", i))
		if err != nil {
			t.Fatal(err)
		}
		for _, node := range cl.nodes {
			node.Cache().InsertDetached(n, 0, false)
		}
	}
	eng.Run()
	sent := cl.nodes[0].Stats.EvictNoticesSent + cl.nodes[1].Stats.EvictNoticesSent
	if sent == 0 {
		t.Fatal("no eviction notices despite replica evictions")
	}
}

func TestCoherenceNoTrafficForUnreplicated(t *testing.T) {
	eng := sim.NewEngine()
	cl, tree, _ := buildCluster(t, eng, 1, func(tr *namespace.Tree) partition.Strategy {
		return partition.NewStaticSubtree(1, tr, 2)
	}, false)
	m := cl.nodes[0]
	f := lookup(t, tree, "/home/u0/f0")
	m.Receive(&msg.Request{ID: 1, Op: msg.Chmod, Target: f})
	eng.Run()
	if m.Stats.CoherenceSent != 0 {
		t.Fatalf("coherence sent for unreplicated item: %d", m.Stats.CoherenceSent)
	}
}

func TestUnlinkWhileOpenRetainsRecord(t *testing.T) {
	eng := sim.NewEngine()
	cl, tree, _ := buildCluster(t, eng, 1, func(tr *namespace.Tree) partition.Strategy {
		return partition.NewStaticSubtree(1, tr, 2)
	}, false)
	m := cl.nodes[0]
	f := lookup(t, tree, "/home/u0/f0")

	m.Receive(&msg.Request{ID: 1, Op: msg.Open, Target: f})
	eng.Run()
	m.Receive(&msg.Request{ID: 2, Op: msg.Unlink, Target: f})
	eng.Run()
	// Gone from the namespace, retained as an orphan in the cache.
	if _, err := tree.Lookup("/home/u0/f0"); err == nil {
		t.Fatal("unlink did not remove the name")
	}
	if m.Stats.OrphansRetained != 1 {
		t.Fatalf("orphans retained = %d", m.Stats.OrphansRetained)
	}
	if !m.Cache().Contains(f.ID) {
		t.Fatal("open-orphan evicted from cache")
	}
	// The close reaps it.
	m.Receive(&msg.Request{ID: 3, Op: msg.Close, Target: f})
	eng.Run()
	if m.Stats.OrphansReaped != 1 {
		t.Fatalf("orphans reaped = %d", m.Stats.OrphansReaped)
	}
	if m.Cache().Contains(f.ID) {
		t.Fatal("orphan record survived the last close")
	}
}

func TestUnlinkClosedFileReapsImmediately(t *testing.T) {
	eng := sim.NewEngine()
	cl, tree, _ := buildCluster(t, eng, 1, func(tr *namespace.Tree) partition.Strategy {
		return partition.NewStaticSubtree(1, tr, 2)
	}, false)
	m := cl.nodes[0]
	f := lookup(t, tree, "/home/u1/f0")
	m.Receive(&msg.Request{ID: 1, Op: msg.Open, Target: f})
	m.Receive(&msg.Request{ID: 2, Op: msg.Close, Target: f})
	eng.Run()
	m.Receive(&msg.Request{ID: 3, Op: msg.Unlink, Target: f})
	eng.Run()
	if m.Stats.OrphansRetained != 0 {
		t.Fatal("closed file retained as orphan")
	}
	if m.Cache().Contains(f.ID) {
		t.Fatal("unlinked record still cached")
	}
}

func TestDirObjectAccounting(t *testing.T) {
	eng := sim.NewEngine()
	cl, tree, _ := buildCluster(t, eng, 1, func(tr *namespace.Tree) partition.Strategy {
		return partition.NewStaticSubtree(1, tr, 2)
	}, false)
	m := cl.nodes[0]
	if m.Store().Dirs == nil {
		t.Skip("dir-object modelling disabled in test config")
	}
	dir := lookup(t, tree, "/home/u2")
	m.Receive(&msg.Request{ID: 1, Op: msg.Create, Target: dir, NewName: "obj1"})
	m.Receive(&msg.Request{ID: 2, Op: msg.Create, Target: dir, NewName: "obj2"})
	eng.Run()
	obj, ok := m.Store().Dirs.Object(dir.ID)
	if !ok {
		t.Fatal("no directory object materialised")
	}
	if obj.Len() != 2 {
		t.Fatalf("object has %d entries", obj.Len())
	}
	if m.Store().Dirs.NodesWritten == 0 {
		t.Fatal("no write amplification accounted")
	}
	// Snapshot, then unlink: the snapshot preserves the old contents.
	snap := m.Store().Dirs.Snapshot(dir.ID)
	f := lookup(t, tree, "/home/u2/obj1")
	m.Receive(&msg.Request{ID: 3, Op: msg.Unlink, Target: f})
	eng.Run()
	if obj.Len() != 1 {
		t.Fatalf("live object has %d entries after unlink", obj.Len())
	}
	if snap.Len() != 2 {
		t.Fatalf("snapshot lost entries: %d", snap.Len())
	}
	if _, ok := snap.Get("obj1"); !ok {
		t.Fatal("snapshot missing unlinked entry")
	}
}

func TestDirObjectSkippedForScatteredLayouts(t *testing.T) {
	eng := sim.NewEngine()
	cl, tree, _ := buildCluster(t, eng, 1, func(tr *namespace.Tree) partition.Strategy {
		return partition.FileHash{N: 1}
	}, false)
	m := cl.nodes[0]
	dir := lookup(t, tree, "/home/u2")
	m.Receive(&msg.Request{ID: 1, Op: msg.Create, Target: dir, NewName: "scattered"})
	eng.Run()
	if m.Store().Dirs != nil && m.Store().Dirs.Len() != 0 {
		t.Fatal("per-inode layout materialised directory objects")
	}
}

package partition

import (
	"fmt"

	"dynmds/internal/metrics"
	"dynmds/internal/namespace"
	"dynmds/internal/sim"
	"dynmds/internal/snap"
)

// Checkpoint codec for the subtree table and the per-inode tag blocks.
// Authority memos (AuthEpoch/Auth) ARE serialized: although they look
// like a cache, they are behavioral state. A rename moves an inode
// without bumping the table epoch, so a memo written before the rename
// keeps answering with the old authority until the next delegation
// change — and every node honors it. Rebuilding memos on restore would
// resolve the *current* ancestor chain and steer forwards differently
// than the uninterrupted run.

// SnapshotTable serializes the table's assignments and epoch.
func (t *SubtreeTable) SnapshotTable(w *snap.Writer) {
	w.Int(t.n)
	w.U64(t.epoch)
	w.Int(len(t.assign))
	for mds := 0; mds < t.n; mds++ {
		for _, root := range t.RootsOf(mds) {
			w.U64(uint64(root.ID))
			w.Int(mds)
		}
	}
}

// RestoreTable replaces the table's assignments with the snapshot's.
// The built table may already carry an initial partition (construction
// reapplies it); it is discarded — the snapshot is authoritative.
func (t *SubtreeTable) RestoreTable(r *snap.Reader, tree *namespace.Tree) error {
	if n := r.Int(); n != t.n {
		return fmt.Errorf("partition: snapshot table for %d nodes, built for %d", n, t.n)
	}
	epoch := r.U64()
	t.assign = make(map[*namespace.Inode]int)
	for i := range t.byMDS {
		t.byMDS[i] = make(map[*namespace.Inode]bool)
	}
	na := r.Int()
	for i := 0; i < na; i++ {
		id := namespace.InodeID(r.U64())
		mds := r.Int()
		root, ok := tree.ByID(id)
		if !ok {
			return fmt.Errorf("partition: snapshot delegates unresolvable inode %d", id)
		}
		t.assign[root] = mds
		t.byMDS[mds][root] = true
	}
	t.epoch = epoch
	return nil
}

// tagsLive reports whether a tag block carries any restorable state.
func tagsLive(tg *Tags) bool {
	return tg.Pop != nil || tg.FwdPop != nil || tg.ReplicatedAll ||
		tg.LHDirEpoch != 0 || tg.LHApplied != 0 || tg.HashedDir ||
		tg.ReplicaSet != 0 || tg.UnflushedWriters != 0 ||
		tg.AuthEpoch != 0 || tg.Auth != 0
}

// SnapshotTags serializes every live tag block, in deterministic tree
// walk order. Destroyed inodes are unreachable and therefore excluded —
// their tags can no longer influence the run.
func SnapshotTags(w *snap.Writer, tree *namespace.Tree) {
	count := 0
	tree.Walk(func(n *namespace.Inode) bool {
		if tg, ok := n.Aux.(*Tags); ok && tagsLive(tg) {
			count++
		}
		return true
	})
	w.Int(count)
	tree.Walk(func(n *namespace.Inode) bool {
		tg, ok := n.Aux.(*Tags)
		if !ok || !tagsLive(tg) {
			return true
		}
		w.U64(uint64(n.ID))
		if tg.Pop != nil {
			w.Bool(true)
			v, last := tg.Pop.State()
			w.F64(v)
			w.I64(int64(last))
		} else {
			w.Bool(false)
		}
		if tg.FwdPop != nil {
			w.Bool(true)
			v, last := tg.FwdPop.State()
			w.F64(v)
			w.I64(int64(last))
		} else {
			w.Bool(false)
		}
		w.Bool(tg.ReplicatedAll)
		w.U64(tg.LHDirEpoch)
		w.U64(tg.LHApplied)
		w.Bool(tg.HashedDir)
		w.U64(tg.ReplicaSet)
		w.U64(tg.UnflushedWriters)
		w.U64(tg.AuthEpoch)
		w.Int(tg.Auth)
		return true
	})
}

// RestoreTags applies serialized tag blocks onto the restored tree.
// popHalfLife and fwdHalfLife recreate the decay counters with the same
// half-lives the run's config would.
func RestoreTags(r *snap.Reader, tree *namespace.Tree, popHalfLife, fwdHalfLife sim.Time) error {
	// Clear any memo written between construction and restore (e.g. a
	// sharded setup's wholesale Memoize pass) so post-restore memo state
	// is exactly the serialized state, nothing more.
	tree.Walk(func(n *namespace.Inode) bool {
		if tg, ok := n.Aux.(*Tags); ok {
			tg.AuthEpoch, tg.Auth = 0, 0
		}
		return true
	})
	n := r.Int()
	for i := 0; i < n; i++ {
		id := namespace.InodeID(r.U64())
		ino, ok := tree.ByID(id)
		if !ok {
			return fmt.Errorf("partition: snapshot tags name unresolvable inode %d", id)
		}
		tg := TagsOf(ino)
		if r.Bool() {
			tg.Pop = metrics.NewDecayCounter(popHalfLife)
			v := r.F64()
			last := sim.Time(r.I64())
			tg.Pop.SetState(v, last)
		}
		if r.Bool() {
			tg.FwdPop = metrics.NewDecayCounter(fwdHalfLife)
			v := r.F64()
			last := sim.Time(r.I64())
			tg.FwdPop.SetState(v, last)
		}
		tg.ReplicatedAll = r.Bool()
		tg.LHDirEpoch = r.U64()
		tg.LHApplied = r.U64()
		tg.HashedDir = r.Bool()
		tg.ReplicaSet = r.U64()
		tg.UnflushedWriters = r.U64()
		tg.AuthEpoch = r.U64()
		tg.Auth = r.Int()
	}
	return nil
}

package chaos

import (
	"strings"
	"testing"

	"dynmds/internal/client"
	"dynmds/internal/cluster"
	"dynmds/internal/dirstore"
	"dynmds/internal/namespace"
	"dynmds/internal/partition"
	"dynmds/internal/sim"
	"dynmds/internal/workload"
)

// tinyConfig is a fast small-scale run for checker tests.
func tinyConfig(strategy, faults string) cluster.Config {
	cfg := cluster.Default()
	cfg.Strategy = strategy
	cfg.NumMDS = 3
	cfg.ClientsPerMDS = 10
	cfg.FS.Users = 30
	cfg.MDS.CacheCapacity = 500
	cfg.MDS.Storage.LogCapacity = 500
	cfg.Duration = 4 * sim.Second
	cfg.Warmup = 1 * sim.Second
	cfg.Faults = faults
	return cfg
}

func runDrained(t *testing.T, cfg cluster.Config) (*cluster.Cluster, Baseline) {
	t.Helper()
	cl, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := Capture(cl)
	cl.Run()
	cl.Drain()
	return cl, base
}

// TestFsckCleanRuns: fault-free and lightly faulted runs across all
// strategies pass the whole catalogue.
func TestFsckCleanRuns(t *testing.T) {
	for _, s := range cluster.Strategies {
		s := s
		t.Run(s, func(t *testing.T) {
			t.Parallel()
			cl, base := runDrained(t, tinyConfig(s, ""))
			if err := Fsck(cl, base); err != nil {
				t.Errorf("fault-free run: %v", err)
			}
		})
	}
}

// TestFsckFaultyRun: a crash with failover and recovery, plus drops,
// still satisfies every invariant after the drain.
func TestFsckFaultyRun(t *testing.T) {
	for _, s := range []string{cluster.StratDynamic, cluster.StratDirHash} {
		s := s
		t.Run(s, func(t *testing.T) {
			t.Parallel()
			cl, base := runDrained(t, tinyConfig(s, "crash@1500ms-2500ms:mds1,drop@0.02:all"))
			if err := Fsck(cl, base); err != nil {
				t.Errorf("faulty run: %v", err)
			}
		})
	}
}

// TestFsckCrashWithoutRecovery: a node that dies for good must end the
// run with no delegated roots (dynamic strategy failover).
func TestFsckCrashWithoutRecovery(t *testing.T) {
	cl, base := runDrained(t, tinyConfig(cluster.StratDynamic, "crash@1500ms:mds2"))
	if err := Fsck(cl, base); err != nil {
		t.Errorf("unrecovered crash: %v", err)
	}
}

// TestFsckOpenLoopFaultsWithLeases composes the three planes that must
// coexist: the open-loop population (with its boxed retry-escalation
// cache armed by the fault schedule), a lossy faulted fabric, and the
// lease plane with fan-out. Drops force retries; recalls ride the same
// lossy fabric; the checker must still find conservation intact and no
// lease dangling.
func TestFsckOpenLoopFaultsWithLeases(t *testing.T) {
	cfg := tinyConfig(cluster.StratDynamic, "drop@0.02:all")
	cfg.FS.Users = 40
	cfg.OpenLoop = &client.PopulationConfig{
		Clients: 600,
		Rate:    3,
		Tenant:  workload.TenantConfig{Tenants: 8, TenantSkew: 1, FileSkew: 1, WorkingSet: 32},
	}
	cfg.Lease.Enabled = true
	cfg.Lease.Fanout = true
	cfg.Lease.GrantPopularity = 0.01
	cfg.Lease.Duration = sim.Second
	cfg.Acts = []cluster.ActConfig{
		{Name: "crowd", From: sim.Second, To: 3 * sim.Second, RateMul: 2,
			MixStat: 90, MixReaddir: 10, FileSkew: -1,
			Hotspot: "/home/u0000", HotFrac: 0.7},
		{Name: "churn", From: 3 * sim.Second, To: 4 * sim.Second,
			MixStat: 50, MixChmod: 30, MixCreate: 20, FileSkew: -1},
	}
	cl, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := Capture(cl)
	res := cl.Run()
	cl.Drain()
	if res.LeaseGrants == 0 || res.LeaseHits == 0 {
		t.Fatalf("lease plane idle: %d grants, %d hits", res.LeaseGrants, res.LeaseHits)
	}
	if res.PopRetries == 0 {
		t.Fatal("2% drops produced no population retries")
	}
	if err := Fsck(cl, base); err != nil {
		t.Errorf("open-loop + faults + leases: %v", err)
	}
}

// TestFsckDetectsPlantedViolations corrupts a clean run's state in
// three independent ways and checks each is caught and reported.
func TestFsckDetectsPlantedViolations(t *testing.T) {
	t.Run("replica-bits-out-of-range", func(t *testing.T) {
		cl, base := runDrained(t, tinyConfig(cluster.StratDynamic, ""))
		partition.TagsOf(cl.Tree().Root).ReplicaSet |= 1 << 40
		err := Fsck(cl, base)
		if err == nil || !strings.Contains(err.Error(), "replica set") {
			t.Errorf("planted out-of-range replica bit not caught: %v", err)
		}
	})
	t.Run("unflushed-write-on-live-node", func(t *testing.T) {
		cl, base := runDrained(t, tinyConfig(cluster.StratDynamic, ""))
		partition.TagsOf(cl.Tree().Root).UnflushedWriters |= 1
		err := Fsck(cl, base)
		if err == nil || !strings.Contains(err.Error(), "unflushed write") {
			t.Errorf("planted stale unflushed-writer bit not caught: %v", err)
		}
	})
	t.Run("dirstore-kind-mismatch", func(t *testing.T) {
		cl, base := runDrained(t, tinyConfig(cluster.StratStatic, ""))
		// Record the root directory as a file under a bogus name.
		cl.Nodes[0].Store().Dirs.Insert(cl.Tree().Root.ID, dirstore.Record{
			Name: "fsck-bogus", Ino: cl.Tree().Root.ID, Kind: namespace.File,
		})
		err := Fsck(cl, base)
		if err == nil || !strings.Contains(err.Error(), "kind") {
			t.Errorf("planted kind mismatch not caught: %v", err)
		}
	})
	t.Run("dead-node-owning-roots", func(t *testing.T) {
		cl, base := runDrained(t, tinyConfig(cluster.StratDynamic, "crash@1500ms:mds2"))
		// Hand a subtree back to the dead node behind failover's back.
		if err := cl.Dyn.Table.Delegate(cl.Tree().Root, 2); err != nil {
			t.Fatal(err)
		}
		err := Fsck(cl, base)
		if err == nil || !strings.Contains(err.Error(), "failover") {
			t.Errorf("planted dead-owner delegation not caught: %v", err)
		}
	})
}

// TestFsckDeterministic: the checker itself must not perturb state in a
// way that changes a second invocation's verdict.
func TestFsckDeterministic(t *testing.T) {
	cl, base := runDrained(t, tinyConfig(cluster.StratDynamic, "crash@1500ms-2500ms:mds1"))
	if err := Fsck(cl, base); err != nil {
		t.Fatalf("first pass: %v", err)
	}
	if err := Fsck(cl, base); err != nil {
		t.Errorf("second pass differs: %v", err)
	}
}

// TestFsckOverlappingWindows: rules whose windows overlap or abut — two
// lags on intersecting windows, a slow window starting the instant a
// crash window ends, a partition inside the outage — compose without
// breaking any invariant. (Windows are half-open, so "adjacent" means
// zero overlap.)
func TestFsckOverlappingWindows(t *testing.T) {
	sched := "crash@1s-2s:mds1," +
		"lag@1s-2s:mds1+10ms,lag@1500ms-2500ms:all+5ms," +
		"slow@2s-3s:mds1x3,partition@1800ms-2200ms:{0|1.2}"
	for _, s := range []string{cluster.StratDynamic, cluster.StratFileHash} {
		s := s
		t.Run(s, func(t *testing.T) {
			t.Parallel()
			cl, base := runDrained(t, tinyConfig(s, sched))
			if err := Fsck(cl, base); err != nil {
				t.Errorf("overlapping windows: %v", err)
			}
		})
	}
}

// TestFsckPartitionNamesCrashedNode: a partition rule that names a node
// already dead (crashed earlier, never recovered) is a no-op for that
// node's traffic but must not confuse the fault plane or the checker.
func TestFsckPartitionNamesCrashedNode(t *testing.T) {
	cl, base := runDrained(t, tinyConfig(cluster.StratDynamic,
		"crash@1200ms:mds2,partition@1500ms-2500ms:{0.1|2}"))
	if err := Fsck(cl, base); err != nil {
		t.Errorf("partition over a dead node: %v", err)
	}
	if len(cl.Failures) != 1 || cl.Failures[0].Node != 2 {
		t.Fatalf("crash not injected: %+v", cl.Failures)
	}
}

// TestFsckRecoverWithoutCrash: a stray recovery of a node that never
// failed — a shape the shrinker produces when it drops a crash but
// keeps its paired recovery — is harmless (the recovery re-warms the
// cache of a live node).
func TestFsckRecoverWithoutCrash(t *testing.T) {
	cl, base := runDrained(t, tinyConfig(cluster.StratDynamic, "recover@2s:mds1"))
	if err := Fsck(cl, base); err != nil {
		t.Errorf("stray recovery: %v", err)
	}
	if len(cl.Recoveries) != 1 {
		t.Fatalf("recovery not injected: %+v", cl.Recoveries)
	}
}

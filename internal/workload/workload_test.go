package workload

import (
	"testing"

	"dynmds/internal/fsgen"
	"dynmds/internal/msg"
	"dynmds/internal/namespace"
	"dynmds/internal/sim"
)

func genSnapshot(t *testing.T) *fsgen.Snapshot {
	t.Helper()
	cfg := fsgen.Default()
	cfg.Users = 10
	snap, err := fsgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func region(snap *fsgen.Snapshot, i int) Region {
	return Region{
		Home:   snap.Homes[i%len(snap.Homes)],
		Shared: []*namespace.Inode{snap.System, snap.Projects[0]},
	}
}

func TestGeneralProducesValidOps(t *testing.T) {
	snap := genSnapshot(t)
	g := NewGeneral(0, DefaultGeneralConfig(), region(snap, 0))
	r := sim.NewRNG(1)
	counts := make(map[msg.Op]int)
	for i := 0; i < 5000; i++ {
		op, ok := g.Next(sim.Time(i)*sim.Millisecond, r)
		if !ok {
			continue
		}
		if op.Target == nil {
			t.Fatal("nil target")
		}
		if (op.Op == msg.Create || op.Op == msg.Mkdir) && op.NewName == "" {
			t.Fatal("create without name")
		}
		if op.Op == msg.Rename && op.DstDir == nil {
			t.Fatal("rename without destination")
		}
		counts[op.Op]++
	}
	// Stats dominate; open/close pairs match approximately; every op
	// type occurs in 5000 draws.
	if counts[msg.Stat] < counts[msg.Create] {
		t.Fatalf("mix inverted: %v", counts)
	}
	if counts[msg.Open] == 0 || counts[msg.Close] == 0 {
		t.Fatal("no open/close")
	}
	d := counts[msg.Open] - counts[msg.Close]
	if d < -1 || d > 1 {
		t.Fatalf("open/close unpaired: %d vs %d", counts[msg.Open], counts[msg.Close])
	}
	for _, op := range []msg.Op{msg.Readdir, msg.Create, msg.Unlink, msg.Mkdir, msg.Chmod, msg.Rename} {
		if counts[op] == 0 {
			t.Fatalf("op %v never generated: %v", op, counts)
		}
	}
}

func TestGeneralLocality(t *testing.T) {
	snap := genSnapshot(t)
	cfg := DefaultGeneralConfig()
	cfg.PShared = 0 // pure local workload
	g := NewGeneral(0, cfg, region(snap, 0))
	r := sim.NewRNG(2)
	home := snap.Homes[0]
	for i := 0; i < 2000; i++ {
		op, ok := g.Next(0, r)
		if !ok {
			continue
		}
		n := op.Target
		if n != home && !home.IsAncestorOf(n) {
			t.Fatalf("op %v escaped region: %s", op.Op, n.Path())
		}
	}
}

func TestGeneralSharedAccesses(t *testing.T) {
	snap := genSnapshot(t)
	cfg := DefaultGeneralConfig()
	cfg.PShared = 0.5
	g := NewGeneral(0, cfg, region(snap, 0))
	r := sim.NewRNG(3)
	shared := 0
	for i := 0; i < 1000; i++ {
		op, ok := g.Next(0, r)
		if !ok {
			continue
		}
		if !inRegion(op.Target, snap.Homes[0]) {
			shared++
		}
	}
	if shared < 100 {
		t.Fatalf("shared accesses = %d, want many", shared)
	}
}

func TestReaddirFollowedByStats(t *testing.T) {
	snap := genSnapshot(t)
	cfg := DefaultGeneralConfig()
	cfg.Mix = Mix{Readdir: 1} // only readdirs
	g := NewGeneral(0, cfg, region(snap, 0))
	r := sim.NewRNG(4)
	var ops []Op
	for i := 0; i < 50; i++ {
		op, ok := g.Next(0, r)
		if ok {
			ops = append(ops, op)
		}
	}
	// After each readdir of a non-empty dir, a run of stats follows.
	statsAfter := false
	for i := 1; i < len(ops); i++ {
		if ops[i-1].Op == msg.Readdir && ops[i].Op == msg.Stat {
			statsAfter = true
		}
	}
	if !statsAfter {
		t.Fatal("no stat runs after readdir")
	}
}

func TestShiftScenario(t *testing.T) {
	snap := genSnapshot(t)
	newHome := snap.Homes[5]
	g := NewGeneral(7, DefaultGeneralConfig(), region(snap, 0))
	s := NewShift(g, 10*sim.Second, []*namespace.Inode{newHome}, true)
	r := sim.NewRNG(5)

	// Before the shift: ops stay in the old region (modulo shared).
	op, ok := s.Next(sim.Second, r)
	if !ok {
		t.Fatal("no op before shift")
	}
	_ = op
	// After the shift: first op is the private mkdir in the new home.
	op, ok = s.Next(11*sim.Second, r)
	if !ok || op.Op != msg.Mkdir || op.Target != newHome {
		t.Fatalf("first post-shift op = %+v", op)
	}
	// Until the mkdir is visible, stats of the new home.
	op, _ = s.Next(11*sim.Second, r)
	if op.Op != msg.Stat || op.Target != newHome {
		t.Fatalf("pre-dir op = %+v", op)
	}
	// Simulate the mkdir completing.
	d, err := snap.Tree.Mkdir(newHome, "mig7")
	if err != nil {
		t.Fatal(err)
	}
	creates, inRegionOps := 0, 0
	for i := 0; i < 60; i++ {
		op, ok := s.Next(12*sim.Second, r)
		if !ok {
			continue
		}
		if op.Op == msg.Create {
			creates++
			if op.Target != d {
				t.Fatalf("create outside private dir: %s", op.Target.Path())
			}
			// Apply it so later stats can find files.
			if _, err := snap.Tree.Create(d, op.NewName); err != nil {
				t.Fatal(err)
			}
		}
		if op.Target == newHome || newHome.IsAncestorOf(op.Target) {
			inRegionOps++
		}
	}
	if creates < 20 {
		t.Fatalf("creates = %d, want create-heavy stream", creates)
	}
	if inRegionOps < 50 {
		t.Fatalf("in-region ops = %d, want nearly all", inRegionOps)
	}
	// Non-migrating clients never shift.
	g2 := NewGeneral(8, DefaultGeneralConfig(), region(snap, 1))
	s2 := NewShift(g2, 10*sim.Second, []*namespace.Inode{newHome}, false)
	for i := 0; i < 100; i++ {
		op, ok := s2.Next(20*sim.Second, r)
		if ok && op.Op == msg.Mkdir && op.Target == newHome {
			t.Fatal("non-migrating client shifted")
		}
	}
}

func TestFlashCrowdScenario(t *testing.T) {
	snap := genSnapshot(t)
	target := snap.Projects[0].Child(0)
	g := NewGeneral(0, DefaultGeneralConfig(), region(snap, 0))
	f := NewFlashCrowd(g, 8*sim.Second, 2*sim.Second, target)
	r := sim.NewRNG(6)

	// During the crowd, all ops hit the target.
	hits := 0
	for i := 0; i < 100; i++ {
		op, ok := f.Next(9*sim.Second, r)
		if !ok {
			continue
		}
		if op.Target != target {
			t.Fatalf("crowd op elsewhere: %s", op.Target.Path())
		}
		hits++
	}
	if hits == 0 {
		t.Fatal("no crowd ops")
	}
	// After the crowd, back to normal (not pinned to the target).
	other := 0
	for i := 0; i < 100; i++ {
		op, ok := f.Next(15*sim.Second, r)
		if ok && op.Target != target {
			other++
		}
	}
	if other == 0 {
		t.Fatal("workload stuck on flash target after crowd")
	}
}

func TestScientificPhases(t *testing.T) {
	snap := genSnapshot(t)
	job := snap.Projects[1]
	g := NewGeneral(3, DefaultGeneralConfig(), region(snap, 3))
	s := NewScientific(g, job, 10*sim.Second, 0.3)
	r := sim.NewRNG(7)

	// Phase 0 burst (t in [0, 3s)): N-to-1 on a job file.
	op, ok := s.Next(sim.Second, r)
	if !ok {
		t.Fatal("no op in burst")
	}
	if op.Target.Parent() != job {
		t.Fatalf("N-to-1 target not in job dir: %s", op.Target.Path())
	}
	// Phase 1 burst (t in [10s, 13s)): N-to-N creates in the job dir.
	op, ok = s.Next(11*sim.Second, r)
	if !ok || op.Op != msg.Create || op.Target != job {
		t.Fatalf("N-to-N op = %+v", op)
	}
	// Quiet part: local work, not the job dir.
	quiet := 0
	for i := 0; i < 50; i++ {
		op, ok := s.Next(9*sim.Second, r)
		if ok && op.Target != job && op.Target.Parent() != job {
			quiet++
		}
	}
	if quiet == 0 {
		t.Fatal("no quiet-phase local work")
	}
}

func TestValidRejectsUnlinked(t *testing.T) {
	snap := genSnapshot(t)
	var f *namespace.Inode
	for _, c := range snap.Homes[0].Children() {
		if !c.IsDir() {
			f = c
			break
		}
	}
	if f == nil {
		t.Skip("home has no files")
	}
	if !valid(Op{Op: msg.Stat, Target: f}) {
		t.Fatal("live target rejected")
	}
	// Simulate the inode being unlinked: Parent becomes nil.
	if err := snap.Tree.Remove(f); err != nil {
		t.Fatal(err)
	}
	if valid(Op{Op: msg.Stat, Target: f}) {
		t.Fatal("unlinked target accepted")
	}
}

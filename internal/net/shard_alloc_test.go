package net

import (
	"testing"

	"dynmds/internal/sim"
)

type mailCounter struct{ n int }

func mailBump(a, _ any) { a.(*mailCounter).n++ }

// TestCrossShardMailAllocFree pins the cross-shard hot path: once the
// mailbox slices, envelope pools, and destination heaps have grown to
// their high-water marks, a send → DrainMail merge → delivery cycle
// allocates nothing. The sender queues a by-value entry, the barrier
// attaches a pooled destination-shard envelope, and the dispatch
// recycles it — the PR-1 zero-alloc property survives sharding.
func TestCrossShardMailAllocFree(t *testing.T) {
	e0, e1 := sim.NewEngine(), sim.NewEngine()
	fab := NewFabric(sim.NewEngine(), 2, Fixed{Net: sim.Millisecond, Fwd: sim.Millisecond})
	fab.Shard(2, []int{0, 1}, []*sim.Engine{e0, e1})
	c := &mailCounter{}

	cycle := func(n int) {
		for i := 0; i < n; i++ {
			fab.Send(Forward, 0, 1, Bytes(Forward), mailBump, c, nil)
			fab.Send(Forward, 1, 0, Bytes(Forward), mailBump, c, nil)
		}
		fab.DrainMail()
		horizon := e0.Now() + 2*sim.Millisecond
		e0.RunUntil(horizon)
		e1.RunUntil(horizon)
	}
	cycle(256) // warmup: grow mailboxes, pools, and heaps

	allocs := testing.AllocsPerRun(500, func() { cycle(16) })
	if allocs > 0 {
		t.Fatalf("cross-shard mail cycle allocated %.2f times per 32 messages, want 0", allocs)
	}
	if c.n == 0 {
		t.Fatal("cross-shard deliveries never ran")
	}
	if n := fab.PendingMail(); n != 0 {
		t.Fatalf("pending mail after drain = %d", n)
	}
	if fab.InFlight() != 0 || fab.LiveEnvelopes() != 0 {
		t.Fatalf("in flight = %d, live = %d after drain", fab.InFlight(), fab.LiveEnvelopes())
	}
}

// Benchmarks regenerating each paper figure's headline metrics, plus
// ablations of the design choices DESIGN.md calls out. Every benchmark
// runs a complete deterministic simulation per iteration and reports
// the figure's metric via b.ReportMetric, so `go test -bench=.` doubles
// as a compact reproduction of the evaluation:
//
//   - Fig2: average per-MDS throughput per strategy (simops/s/mds)
//   - Fig3: prefix-inode share of the cache (prefix_pct)
//   - Fig4: hit rate at small and large caches (hitrate)
//   - Fig5: post-shift average throughput, dynamic vs static
//   - Fig6: post-shift forwarded-request fraction (fwd_frac)
//   - Fig7: reply rate while a flash crowd is absorbed (replies/s)
package dynmds_test

import (
	"fmt"
	"testing"

	"dynmds/internal/cluster"
	"dynmds/internal/namespace"
	"dynmds/internal/partition"
	"dynmds/internal/sim"
)

// scaling is the Figure 2/3 configuration at a benchable size.
func scaling(strategy string, n int) cluster.Config {
	cfg := cluster.Default()
	cfg.Strategy = strategy
	cfg.NumMDS = n
	cfg.ClientsPerMDS = 40
	cfg.FS.Users = 25 * n
	cfg.MDS.CacheCapacity = 2500
	cfg.MDS.Storage.LogCapacity = 2500
	cfg.Duration = 10 * sim.Second
	cfg.Warmup = 4 * sim.Second
	return cfg
}

func runCfg(b *testing.B, cfg cluster.Config) *cluster.Result {
	b.Helper()
	cl, err := cluster.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	res := cl.Run()
	if res.MeasuredOps == 0 {
		b.Fatal("simulation produced no operations")
	}
	return res
}

func benchFig2(b *testing.B, strategy string) {
	var last *cluster.Result
	for i := 0; i < b.N; i++ {
		last = runCfg(b, scaling(strategy, 8))
	}
	b.ReportMetric(last.AvgThroughput, "simops/s/mds")
	b.ReportMetric(last.HitRate, "hitrate")
}

func BenchmarkFig2_StaticSubtree(b *testing.B)  { benchFig2(b, cluster.StratStatic) }
func BenchmarkFig2_DynamicSubtree(b *testing.B) { benchFig2(b, cluster.StratDynamic) }
func BenchmarkFig2_DirHash(b *testing.B)        { benchFig2(b, cluster.StratDirHash) }
func BenchmarkFig2_LazyHybrid(b *testing.B)     { benchFig2(b, cluster.StratLazyHybrid) }
func BenchmarkFig2_FileHash(b *testing.B)       { benchFig2(b, cluster.StratFileHash) }

func benchFig3(b *testing.B, strategy string) {
	var last *cluster.Result
	for i := 0; i < b.N; i++ {
		last = runCfg(b, scaling(strategy, 8))
	}
	b.ReportMetric(100*last.PrefixFrac, "prefix_pct")
}

func BenchmarkFig3_StaticSubtree(b *testing.B)  { benchFig3(b, cluster.StratStatic) }
func BenchmarkFig3_DynamicSubtree(b *testing.B) { benchFig3(b, cluster.StratDynamic) }
func BenchmarkFig3_DirHash(b *testing.B)        { benchFig3(b, cluster.StratDirHash) }
func BenchmarkFig3_FileHash(b *testing.B)       { benchFig3(b, cluster.StratFileHash) }

func benchFig4(b *testing.B, strategy string, cacheFrac float64) {
	cfg := scaling(strategy, 8)
	// Cache sized as a fraction of total metadata per node.
	probe, err := cluster.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	per := int(cacheFrac * float64(probe.Snap.Tree.Len()) / float64(cfg.NumMDS))
	if per < 64 {
		per = 64
	}
	cfg.MDS.CacheCapacity = per
	cfg.MDS.Storage.LogCapacity = per
	var last *cluster.Result
	for i := 0; i < b.N; i++ {
		last = runCfg(b, cfg)
	}
	b.ReportMetric(last.HitRate, "hitrate")
}

func BenchmarkFig4_StaticSubtree_SmallCache(b *testing.B) {
	benchFig4(b, cluster.StratStatic, 0.05)
}
func BenchmarkFig4_StaticSubtree_BigCache(b *testing.B) {
	benchFig4(b, cluster.StratStatic, 0.6)
}
func BenchmarkFig4_FileHash_SmallCache(b *testing.B) {
	benchFig4(b, cluster.StratFileHash, 0.05)
}
func BenchmarkFig4_FileHash_BigCache(b *testing.B) {
	benchFig4(b, cluster.StratFileHash, 0.6)
}
func BenchmarkFig4_LazyHybrid_BigCache(b *testing.B) {
	benchFig4(b, cluster.StratLazyHybrid, 0.6)
}

// shift is the Figure 5/6 workload-evolution configuration.
func shift(strategy string) cluster.Config {
	cfg := cluster.Default()
	cfg.Strategy = strategy
	cfg.NumMDS = 6
	cfg.ClientsPerMDS = 30
	cfg.FS.Users = 150
	cfg.MDS.CacheCapacity = 2500
	cfg.Client.ThinkMean = 15 * sim.Millisecond
	cfg.Client.KnownCap = 512
	cfg.Workload.Kind = cluster.WorkShift
	cfg.Workload.ShiftTime = 8 * sim.Second
	cfg.Workload.ShiftFraction = 0.5
	cfg.Duration = 24 * sim.Second
	cfg.Warmup = 4 * sim.Second
	if cfg.Balancer != nil {
		bal := *cfg.Balancer
		bal.Interval = 2 * sim.Second
		cfg.Balancer = &bal
	}
	return cfg
}

// postShiftStats aggregates throughput and forward fraction after the
// workload shift settles (final third of the run).
func postShiftStats(res *cluster.Result, cfg cluster.Config) (avgTput, fwdFrac float64) {
	start := int((cfg.Duration * 2 / 3) / cfg.SeriesBucket)
	end := int(cfg.Duration / cfg.SeriesBucket)
	var replies, forwards, arrivals float64
	for i := start; i < end; i++ {
		for _, s := range res.RepliesPerNode {
			replies += s.Sum(i)
		}
		forwards += res.Forwards.Sum(i)
		arrivals += res.Arrivals.Sum(i)
	}
	window := (cfg.Duration / 3).Seconds()
	avgTput = replies / window / float64(cfg.NumMDS)
	if arrivals > 0 {
		fwdFrac = forwards / arrivals
	}
	return avgTput, fwdFrac
}

func benchFig5(b *testing.B, strategy string) {
	cfg := shift(strategy)
	var tput float64
	var migrations int
	for i := 0; i < b.N; i++ {
		res := runCfg(b, cfg)
		tput, _ = postShiftStats(res, cfg)
		migrations = res.Migrations
	}
	b.ReportMetric(tput, "simops/s/mds")
	b.ReportMetric(float64(migrations), "migrations")
}

func BenchmarkFig5_DynamicSubtree(b *testing.B) { benchFig5(b, cluster.StratDynamic) }
func BenchmarkFig5_StaticSubtree(b *testing.B)  { benchFig5(b, cluster.StratStatic) }

func benchFig6(b *testing.B, strategy string) {
	cfg := shift(strategy)
	var frac float64
	for i := 0; i < b.N; i++ {
		res := runCfg(b, cfg)
		_, frac = postShiftStats(res, cfg)
	}
	b.ReportMetric(frac, "fwd_frac")
}

func BenchmarkFig6_DynamicSubtree(b *testing.B) { benchFig6(b, cluster.StratDynamic) }
func BenchmarkFig6_StaticSubtree(b *testing.B)  { benchFig6(b, cluster.StratStatic) }

// flash is the Figure 7 configuration at a benchable client count.
func flash(trafficOn bool) cluster.Config {
	cfg := cluster.Default()
	cfg.Strategy = cluster.StratDynamic
	cfg.NumMDS = 8
	cfg.ClientsPerMDS = 250
	cfg.FS.Users = 100
	cfg.MDS.CacheCapacity = 4000
	cfg.Client.ThinkMean = 20 * sim.Millisecond
	cfg.Workload.Kind = cluster.WorkFlashCrowd
	cfg.Workload.FlashTime = 8 * sim.Second
	cfg.Workload.FlashDuration = 2 * sim.Second
	cfg.Duration = 10 * sim.Second
	cfg.Warmup = 4 * sim.Second
	cfg.SeriesBucket = 20 * sim.Millisecond
	cfg.Balancer = nil
	if !trafficOn {
		cfg.Traffic = nil
	}
	return cfg
}

func benchFig7(b *testing.B, trafficOn bool) {
	cfg := flash(trafficOn)
	var rate float64
	for i := 0; i < b.N; i++ {
		res := runCfg(b, cfg)
		// Cluster reply rate over the last half-second of the crowd.
		start := int(sim.FromSeconds(9.5) / cfg.SeriesBucket)
		end := int(sim.FromSeconds(10.0) / cfg.SeriesBucket)
		var sum float64
		for i := start; i < end; i++ {
			for _, s := range res.RepliesPerNode {
				sum += s.Sum(i)
			}
		}
		rate = sum / 0.5
	}
	b.ReportMetric(rate, "replies/s")
}

func BenchmarkFig7_TrafficControlOff(b *testing.B) { benchFig7(b, false) }
func BenchmarkFig7_TrafficControlOn(b *testing.B)  { benchFig7(b, true) }

// --- Ablations -----------------------------------------------------------

// noEmbed wraps the static subtree strategy with embedded-inode
// directory storage disabled: same partition, per-inode I/O.
type noEmbed struct{ *partition.StaticSubtree }

func (noEmbed) DirGranular() bool { return false }

var _ partition.Strategy = noEmbed{}

// BenchmarkAblation_EmbeddedInodes contrasts subtree partitioning with
// and without directory-granular storage (§4.5): the partition is
// identical, only the storage layout and prefetch differ.
func BenchmarkAblation_EmbeddedInodes_On(b *testing.B) {
	benchFig2(b, cluster.StratStatic)
}

func BenchmarkAblation_EmbeddedInodes_Off(b *testing.B) {
	cfg := scaling(cluster.StratStatic, 8)
	cfg.MakeStrategy = func(n int, tree *namespace.Tree) partition.Strategy {
		return noEmbed{partition.NewStaticSubtree(n, tree, cfg.PartitionDepth)}
	}
	var last *cluster.Result
	for i := 0; i < b.N; i++ {
		last = runCfg(b, cfg)
	}
	b.ReportMetric(last.AvgThroughput, "simops/s/mds")
	b.ReportMetric(last.HitRate, "hitrate")
}

// BenchmarkAblation_PrefetchPosition contrasts inserting prefetched
// siblings near the LRU tail (the paper's choice, §4.5) against the hot
// MRU end.
func BenchmarkAblation_PrefetchNearTail(b *testing.B) {
	benchFig2(b, cluster.StratStatic)
}

func BenchmarkAblation_PrefetchHot(b *testing.B) {
	var last *cluster.Result
	for i := 0; i < b.N; i++ {
		cfg := scaling(cluster.StratStatic, 8)
		cfg.MDS.PrefetchHot = true
		last = runCfg(b, cfg)
	}
	b.ReportMetric(last.AvgThroughput, "simops/s/mds")
	b.ReportMetric(last.HitRate, "hitrate")
}

// BenchmarkAblation_RedelegateFirst contrasts the balancer's
// keep-the-partition-simple pass (§4.3) against naive splitting.
func BenchmarkAblation_RedelegateFirst_On(b *testing.B) {
	benchFig5(b, cluster.StratDynamic)
}

func BenchmarkAblation_RedelegateFirst_Off(b *testing.B) {
	cfg := shift(cluster.StratDynamic)
	bal := *cfg.Balancer
	bal.NoRedelegateFirst = true
	cfg.Balancer = &bal
	var tput float64
	var delegations int
	for i := 0; i < b.N; i++ {
		cl, err := cluster.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res := cl.Run()
		tput, _ = postShiftStats(res, cfg)
		delegations = cl.Dyn.Table.NumDelegations()
	}
	b.ReportMetric(tput, "simops/s/mds")
	b.ReportMetric(float64(delegations), "delegations")
}

// BenchmarkAblation_ReplicationThreshold probes traffic-control
// sensitivity: a very high threshold behaves like no traffic control.
func BenchmarkAblation_ReplicationThreshold(b *testing.B) {
	for _, thr := range []float64{100, 1e9} {
		thr := thr
		b.Run(benchName(thr), func(b *testing.B) {
			cfg := flash(true)
			tc := *cfg.Traffic
			tc.ReplicateThreshold = thr
			tc.UnreplicateThreshold = thr / 10
			cfg.Traffic = &tc
			var rate float64
			for i := 0; i < b.N; i++ {
				res := runCfg(b, cfg)
				start := int(sim.FromSeconds(9.5) / cfg.SeriesBucket)
				end := int(sim.FromSeconds(10.0) / cfg.SeriesBucket)
				var sum float64
				for j := start; j < end; j++ {
					for _, s := range res.RepliesPerNode {
						sum += s.Sum(j)
					}
				}
				rate = sum / 0.5
			}
			b.ReportMetric(rate, "replies/s")
		})
	}
}

func benchName(thr float64) string {
	if thr < 500 {
		return "default"
	}
	return "never"
}

// BenchmarkAblation_DynamicDirHashing enables hashing of oversized
// directories (§4.3) under the scientific N-to-N create workload, where
// one shared directory becomes huge and hot.
func BenchmarkAblation_DynamicDirHashing(b *testing.B) {
	for _, thr := range []int{0, 256} {
		thr := thr
		name := "off"
		if thr > 0 {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := cluster.Default()
			cfg.Strategy = cluster.StratDynamic
			cfg.NumMDS = 6
			cfg.ClientsPerMDS = 40
			cfg.FS.Users = 60
			cfg.Workload.Kind = cluster.WorkScientific
			cfg.Workload.PhaseLength = 4 * sim.Second
			cfg.Workload.BurstFraction = 0.5
			cfg.HashDirThreshold = thr
			cfg.Duration = 16 * sim.Second
			cfg.Warmup = 4 * sim.Second
			var last *cluster.Result
			for i := 0; i < b.N; i++ {
				last = runCfg(b, cfg)
			}
			b.ReportMetric(last.AvgThroughput, "simops/s/mds")
		})
	}
}

// BenchmarkAblation_SharedOSDPool contrasts node-local metadata disks
// with the shared OSD pool (§2.1.3): the pool adds replication write
// costs but spreads read load over many spindles.
func BenchmarkAblation_SharedOSDPool(b *testing.B) {
	for _, osds := range []int{0, 16, 48} {
		osds := osds
		name := "local"
		if osds > 0 {
			name = fmt.Sprintf("osds%d", osds)
		}
		b.Run(name, func(b *testing.B) {
			cfg := scaling(cluster.StratDynamic, 8)
			cfg.OSDs = osds
			var last *cluster.Result
			for i := 0; i < b.N; i++ {
				last = runCfg(b, cfg)
			}
			b.ReportMetric(last.AvgThroughput, "simops/s/mds")
		})
	}
}

// BenchmarkAblation_PreemptiveReplication measures the flash-crowd
// recovery benefit of §5.4's suggested improvement: flooded
// non-authoritative nodes pull replicas without waiting for the
// authority's push. The metric is the cluster reply rate over the
// first 300 ms after impact — higher means faster recovery.
func BenchmarkAblation_PreemptiveReplication(b *testing.B) {
	for _, pre := range []bool{false, true} {
		pre := pre
		name := "off"
		if pre {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := flash(true)
			tc := *cfg.Traffic
			if pre {
				tc.PreemptiveThreshold = 50
			}
			cfg.Traffic = &tc
			var rate float64
			for i := 0; i < b.N; i++ {
				res := runCfg(b, cfg)
				start := int(sim.FromSeconds(8.1) / cfg.SeriesBucket)
				end := int(sim.FromSeconds(8.4) / cfg.SeriesBucket)
				var sum float64
				for j := start; j < end; j++ {
					for _, s := range res.RepliesPerNode {
						sum += s.Sum(j)
					}
				}
				rate = sum / 0.3
			}
			b.ReportMetric(rate, "replies/s")
		})
	}
}

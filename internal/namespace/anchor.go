package namespace

// AnchorTable is the paper's global table for locating multiply-linked
// inodes (§4.5). With inodes embedded in directories there is no global
// inode table, so an inode reached through a secondary hard link cannot
// be found by ID — unless it is "anchored": the table maps the inode's ID
// to its containing directory's ID, and contains the same mapping for
// each ancestor directory, with a reference count of anchored items
// nested beneath. An anchored inode is located by recursively resolving
// containing directories; the counts keep the table populated only with
// the directories that are actually needed (unlike C-FFS, which must
// include all directories).
type AnchorTable struct {
	parentOf map[InodeID]InodeID // anchored inode -> containing dir
	refs     map[InodeID]int     // anchored descendants per directory
}

// NewAnchorTable returns an empty table.
func NewAnchorTable() *AnchorTable {
	return &AnchorTable{
		parentOf: make(map[InodeID]InodeID),
		refs:     make(map[InodeID]int),
	}
}

// Len returns the number of anchored inodes (excluding ancestor-only
// entries).
func (a *AnchorTable) Len() int { return len(a.parentOf) }

// Anchored reports whether the inode is present in the table.
func (a *AnchorTable) Anchored(id InodeID) bool {
	_, ok := a.parentOf[id]
	return ok
}

// Resolve walks the table upward from id, returning the chain of
// directory IDs from the inode's parent to the highest anchored
// ancestor, and whether id was anchored at all.
func (a *AnchorTable) Resolve(id InodeID) ([]InodeID, bool) {
	p, ok := a.parentOf[id]
	if !ok {
		return nil, false
	}
	chain := []InodeID{p}
	for {
		next, ok := a.parentOf[p]
		if !ok {
			break
		}
		chain = append(chain, next)
		p = next
	}
	return chain, true
}

// Add anchors n (an inode whose NLink just rose above 1). Ancestor
// directories gain references; already-anchored prefixes are shared.
func (a *AnchorTable) Add(t *Tree, n *Inode) {
	if a.Anchored(n.ID) {
		return
	}
	if n.parent == nil {
		return
	}
	a.parentOf[n.ID] = n.parent.ID
	a.addRefChain(n.parent)
}

func (a *AnchorTable) addRefChain(dir *Inode) {
	for d := dir; d != nil; d = d.parent {
		a.refs[d.ID]++
		if a.refs[d.ID] > 1 {
			return // chain above is already referenced
		}
		if d.parent != nil {
			if _, ok := a.parentOf[d.ID]; !ok {
				a.parentOf[d.ID] = d.parent.ID
			} else {
				return
			}
		}
	}
}

func (a *AnchorTable) releaseRefChain(dirID InodeID) {
	id := dirID
	for {
		a.refs[id]--
		if a.refs[id] > 0 {
			return
		}
		delete(a.refs, id)
		next, ok := a.parentOf[id]
		delete(a.parentOf, id)
		if !ok {
			return
		}
		id = next
	}
}

// Unlink updates the table when one link to an anchored inode is removed
// but others remain: the inode stays anchored (its location is
// unchanged; secondary-name bookkeeping is aggregate).
func (a *AnchorTable) Unlink(t *Tree, n *Inode) {
	if n.NLink <= 1 {
		// Last extra link gone: the inode no longer needs anchoring.
		a.Drop(t, n)
	}
}

// Drop removes n from the table entirely, releasing ancestor references.
func (a *AnchorTable) Drop(t *Tree, n *Inode) {
	p, ok := a.parentOf[n.ID]
	if !ok {
		return
	}
	delete(a.parentOf, n.ID)
	a.releaseRefChain(p)
}

// Moved updates the table after n was renamed/moved: the table "is easily
// modified when directories are moved around the hierarchy" — only the
// moved subtree root's entry changes.
func (a *AnchorTable) Moved(t *Tree, n *Inode) {
	if _, ok := a.parentOf[n.ID]; !ok {
		return
	}
	old := a.parentOf[n.ID]
	if n.parent == nil {
		delete(a.parentOf, n.ID)
		a.releaseRefChain(old)
		return
	}
	a.parentOf[n.ID] = n.parent.ID
	a.addRefChain(n.parent)
	a.releaseRefChain(old)
}

package workload

import (
	"fmt"

	"dynmds/internal/msg"
	"dynmds/internal/namespace"
	"dynmds/internal/sim"
)

// Shift wraps a General generator and implements the Figure 5/6
// workload-evolution scenario: at ShiftTime the client (if selected)
// migrates its region of activity to new portions of the hierarchy all
// served by a single MDS, creating files in a private directory and
// exploring the rest of the new region.
type Shift struct {
	*General
	// ShiftTime is when migrating clients move.
	ShiftTime sim.Time
	// NewRegion lists the subtrees (all owned by one node at shift
	// time) the migrating clients converge on.
	NewRegion []*namespace.Inode
	// Migrate selects whether this client participates in the shift.
	Migrate bool

	myHome    *namespace.Inode
	shifted   bool
	madeDir   bool
	dirName   string
	myDir     *namespace.Inode
	createSeq int
}

// NewShift builds the scenario around a general generator.
func NewShift(g *General, shiftTime sim.Time, newRegion []*namespace.Inode, migrate bool) *Shift {
	return &Shift{General: g, ShiftTime: shiftTime, NewRegion: newRegion, Migrate: migrate}
}

// Next implements Generator.
func (s *Shift) Next(now sim.Time, r *sim.RNG) (Op, bool) {
	if !s.Migrate || now < s.ShiftTime || len(s.NewRegion) == 0 {
		return s.General.Next(now, r)
	}
	if !s.shifted {
		s.shifted = true
		s.myHome = s.NewRegion[s.client%len(s.NewRegion)]
		s.SetRegion(s.myHome)
	}
	// First establish a private directory in the new region.
	if !s.madeDir {
		s.madeDir = true
		s.dirName = fmt.Sprintf("mig%d", s.client)
		return Op{Op: msg.Mkdir, Target: s.myHome, NewName: s.dirName}, true
	}
	if s.myDir == nil {
		// mkdir still in flight (or failed); hammer the new region with
		// stats meanwhile.
		if d, ok := s.myHome.LookupChild(s.dirName); ok {
			s.myDir = d
		} else {
			return Op{Op: msg.Stat, Target: s.myHome}, true
		}
	}
	// Create-heavy activity in the new region, with reads of recently
	// created files (fresh data is what gets re-read) and exploratory
	// reads across the whole new region (each newly visited subtree
	// must be discovered — the client-ignorance cost Figure 6
	// measures; under dynamic balancing the subtrees also keep moving).
	s.createSeq++
	if s.createSeq%8 == 7 {
		d := descend(s.NewRegion[r.Pick(len(s.NewRegion))], r, 4)
		if f := pickFile(d, r); f != nil {
			return Op{Op: msg.Stat, Target: f}, true
		}
		return Op{Op: msg.Readdir, Target: d}, true
	}
	if s.createSeq%4 == 0 && s.createSeq > 1 {
		j := s.createSeq - 1 - r.Pick(min(s.createSeq-1, 32))
		if f, ok := s.myDir.LookupChild(fmt.Sprintf("n%d", j)); ok {
			return Op{Op: msg.Stat, Target: f}, true
		}
		return Op{Op: msg.Stat, Target: s.myDir}, true
	}
	return Op{Op: msg.Create, Target: s.myDir, NewName: fmt.Sprintf("n%d", s.createSeq)}, true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// FlashCrowd wraps a General generator and implements the Figure 7
// scenario: at FlashTime every client suddenly requests the same file
// and keeps hitting it for Duration.
type FlashCrowd struct {
	*General
	FlashTime sim.Time
	Duration  sim.Time
	Target    *namespace.Inode

	opened bool
}

// NewFlashCrowd builds the scenario around a general generator.
func NewFlashCrowd(g *General, at, duration sim.Time, target *namespace.Inode) *FlashCrowd {
	return &FlashCrowd{General: g, FlashTime: at, Duration: duration, Target: target}
}

// Next implements Generator.
func (f *FlashCrowd) Next(now sim.Time, r *sim.RNG) (Op, bool) {
	if now < f.FlashTime || now >= f.FlashTime+f.Duration {
		return f.General.Next(now, r)
	}
	if !f.opened {
		f.opened = true
		return Op{Op: msg.Open, Target: f.Target}, true
	}
	// Sustained interest: stats and re-opens of the same file.
	if r.Float64() < 0.5 {
		return Op{Op: msg.Stat, Target: f.Target}, true
	}
	return Op{Op: msg.Open, Target: f.Target}, true
}

// Scientific models the LLNL-style checkpoint workload: clients belong
// to a job; the job cycles through phases. In an N-to-1 phase all
// clients of the job open/stat one shared file; in an N-to-N phase each
// client creates files in the shared job directory; between bursts
// clients do quiet local work.
type Scientific struct {
	*General
	// Job is the shared project directory.
	Job *namespace.Inode
	// PhaseLength is the duration of each phase.
	PhaseLength sim.Time
	// BurstFraction is the fraction of each phase spent bursting.
	BurstFraction float64

	seq       int
	writeSize int64
}

// NewScientific builds the generator. The General provides the quiet
// local work between bursts.
func NewScientific(g *General, job *namespace.Inode, phase sim.Time, burst float64) *Scientific {
	return &Scientific{General: g, Job: job, PhaseLength: phase, BurstFraction: burst}
}

// phase returns the phase index and the position within it.
func (s *Scientific) phase(now sim.Time) (int, float64) {
	if s.PhaseLength <= 0 {
		return 0, 0
	}
	idx := int(now / s.PhaseLength)
	pos := float64(now%s.PhaseLength) / float64(s.PhaseLength)
	return idx, pos
}

// Next implements Generator.
func (s *Scientific) Next(now sim.Time, r *sim.RNG) (Op, bool) {
	idx, pos := s.phase(now)
	if pos >= s.BurstFraction {
		return s.General.Next(now, r) // quiet part of the phase
	}
	if idx%2 == 0 {
		// N-to-1: everyone hits the same per-phase file of the job —
		// opens, stats, and shared-write size updates (the GPFS-style
		// concurrent-writer pattern, §4.2).
		n := s.Job.NumChildren()
		if n == 0 {
			return s.General.Next(now, r)
		}
		target := s.Job.Child(idx % n)
		switch x := r.Float64(); {
		case x < 0.4:
			return Op{Op: msg.Stat, Target: target}, true
		case x < 0.7:
			s.writeSize += int64(1 + r.Intn(1<<20))
			return Op{Op: msg.Write, Target: target, Size: s.writeSize}, true
		default:
			return Op{Op: msg.Open, Target: target}, true
		}
	}
	// N-to-N: everyone creates its own files in the shared directory.
	s.seq++
	return Op{Op: msg.Create, Target: s.Job, NewName: fmt.Sprintf("ckpt%d_%d_%d", s.client, idx, s.seq)}, true
}

package harness

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"dynmds/internal/chaos"
	"dynmds/internal/cluster"
	"dynmds/internal/fault"
	"dynmds/internal/sim"
)

// ChaosOptions parameterises a seeded fuzz budget: Schedules generated
// schedules (chaos.Generate, runs 0..Schedules-1 off Seed), each run
// against every strategy, each finished run checked by chaos.Fsck.
// The whole budget is a pure function of the options: the same options
// always produce the same report.
type ChaosOptions struct {
	Seed      int64
	Schedules int     // generated schedules; 0 means 25
	Intensity float64 // generator intensity; 0 means 1

	Strategies []string // nil means cluster.Strategies
	NetModel   string   // "" means the fixed model

	// NumMDS and Duration shape the generated schedules and the runs
	// they are injected into; 0 means 4 nodes / 5 simulated seconds.
	NumMDS   int
	Duration sim.Time

	// ShrinkBudget caps predicate evaluations (= full re-runs) per
	// shrunk failure; 0 means 120. MaxShrinks caps how many failures
	// are shrunk at all (the rest keep their original schedule);
	// 0 means 4.
	ShrinkBudget int
	MaxShrinks   int

	// Shards > 1 runs every cell on the sharded executor (fault
	// schedules force its single-goroutine windowed mode, so verdicts
	// stay deterministic); 0 or 1 uses the serial engine.
	Shards int
}

func (o *ChaosOptions) defaults() {
	if o.Schedules <= 0 {
		o.Schedules = 25
	}
	if o.Intensity <= 0 {
		o.Intensity = 1
	}
	if len(o.Strategies) == 0 {
		o.Strategies = cluster.Strategies
	}
	if o.NumMDS <= 0 {
		o.NumMDS = 4
	}
	if o.Duration <= 0 {
		o.Duration = 5 * sim.Second
	}
	if o.ShrinkBudget <= 0 {
		o.ShrinkBudget = 120
	}
	if o.MaxShrinks <= 0 {
		o.MaxShrinks = 4
	}
}

// ChaosFailure records one (schedule, strategy) cell that failed
// simfsck, plus the shrunk minimal repro when the shrinker ran.
type ChaosFailure struct {
	Schedule int    `json:"schedule"`
	Strategy string `json:"strategy"`
	Faults   string `json:"faults"`
	Error    string `json:"error"`

	OrigRules   int    `json:"orig_rules"`
	Shrunk      string `json:"shrunk_faults,omitempty"`
	ShrunkRules int    `json:"shrunk_rules"`
	ShrinkEvals int    `json:"shrink_evals"`
	Replay      string `json:"replay,omitempty"`
	shrunk      bool
}

// ChaosReport summarises a fuzz budget.
type ChaosReport struct {
	Seed       int64          `json:"seed"`
	Schedules  int            `json:"schedules"`
	Strategies []string       `json:"strategies"`
	Intensity  float64        `json:"intensity"`
	Runs       int            `json:"runs"`
	Passed     int            `json:"passed"`
	Failed     int            `json:"failed"`
	RulesTotal int            `json:"rules_total"`
	Failures   []ChaosFailure `json:"failures,omitempty"`
}

// String renders the human-readable summary mdsim prints.
func (r *ChaosReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: seed=%d schedules=%d strategies=%d runs=%d passed=%d failed=%d rules=%d\n",
		r.Seed, r.Schedules, len(r.Strategies), r.Runs, r.Passed, r.Failed, r.RulesTotal)
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "FAIL schedule=%d strategy=%s rules=%d\n  faults: %s\n  %s\n",
			f.Schedule, f.Strategy, f.OrigRules, f.Faults,
			strings.ReplaceAll(f.Error, "\n", "\n  "))
		if f.shrunk {
			if f.Shrunk == "" {
				fmt.Fprintf(&b, "  shrunk to the empty schedule in %d evals — fails without faults\n", f.ShrinkEvals)
			} else {
				fmt.Fprintf(&b, "  shrunk %d -> %d rules in %d evals: %s\n",
					f.OrigRules, f.ShrunkRules, f.ShrinkEvals, f.Shrunk)
			}
			fmt.Fprintf(&b, "  replay: %s\n", f.Replay)
		}
	}
	return b.String()
}

// chaosConfig builds the run configuration for one cell. It deviates
// from cluster.Default only in fields mdsim exposes as flags, so every
// failure replays exactly from the CLI line ChaosReport emits.
func chaosConfig(opt ChaosOptions, strategy, faults string) cluster.Config {
	cfg := cluster.Default()
	cfg.Strategy = strategy
	cfg.Seed = opt.Seed
	cfg.NumMDS = opt.NumMDS
	cfg.ClientsPerMDS = 10
	cfg.FS.Users = 30
	cfg.MDS.CacheCapacity = 500
	cfg.MDS.Storage.LogCapacity = 500
	cfg.Duration = opt.Duration
	cfg.Warmup = sim.Second
	cfg.NetModel = opt.NetModel
	cfg.Faults = faults
	cfg.Shards = opt.Shards
	return cfg
}

// replayCommand renders the CLI line that reproduces one cell.
func replayCommand(cfg cluster.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "mdsim -strategy %s -mds %d -clients %d -users %d -cache %d -dur %g -warmup %g -seed %d",
		cfg.Strategy, cfg.NumMDS, cfg.ClientsPerMDS, cfg.FS.Users,
		cfg.MDS.CacheCapacity, cfg.Duration.Seconds(), cfg.Warmup.Seconds(), cfg.Seed)
	if cfg.NetModel != "" {
		fmt.Fprintf(&b, " -net-model %s", cfg.NetModel)
	}
	if cfg.Shards > 1 {
		fmt.Fprintf(&b, " -shards %d", cfg.Shards)
	}
	if cfg.Faults != "" {
		fmt.Fprintf(&b, " -faults '%s'", cfg.Faults)
	}
	return b.String()
}

// chaosCell runs one configuration to completion, drains it, and
// returns the simfsck verdict (nil = clean). Shares the process-wide
// namespace snapshot with every other cell of the budget: all cells use
// the same FS config and seed.
func chaosCell(cfg cluster.Config) (violation, setup error) {
	if SnapshotSharing() && cfg.Snapshot == nil {
		key := cfg.FS
		key.Seed = cfg.Seed
		snap, _, err := sharedSnapshot(key)
		if err != nil {
			return nil, err
		}
		cfg.Snapshot = snap
	}
	cl, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	base := chaos.Capture(cl)
	cl.Run()
	cl.Drain()
	return chaos.Fsck(cl, base), nil
}

// Chaos runs the fuzz budget: Schedules generated schedules, each
// against every strategy, on the sweep worker pool. Every failing cell
// is recorded; the first MaxShrinks failures are shrunk to minimal
// repros. The returned error covers setup problems only — invariant
// violations land in the report.
func Chaos(opt ChaosOptions) (*ChaosReport, error) {
	opt.defaults()
	scheds := make([]*fault.Schedule, opt.Schedules)
	texts := make([]string, opt.Schedules)
	rules := 0
	for i := range scheds {
		scheds[i] = chaos.Generate(chaos.GenConfig{
			Seed: opt.Seed, Run: i,
			NumMDS: opt.NumMDS, Duration: opt.Duration,
			Intensity: opt.Intensity,
		})
		texts[i] = scheds[i].String()
		rules += scheds[i].NumRules()
	}

	// The grid runs in parallel like Sweep; each cell is an independent
	// single-threaded simulation, so parallelism cannot change verdicts.
	type cell struct{ violation, err error }
	nStrat := len(opt.Strategies)
	cells := make([]cell, opt.Schedules*nStrat)
	var wg sync.WaitGroup
	sem := make(chan struct{}, SweepWorkers())
	for i := 0; i < opt.Schedules; i++ {
		for j, strat := range opt.Strategies {
			idx := i*nStrat + j
			cfg := chaosConfig(opt, strat, texts[i])
			sem <- struct{}{}
			wg.Add(1)
			go func(idx int, cfg cluster.Config) {
				defer wg.Done()
				defer func() { <-sem }()
				cells[idx].violation, cells[idx].err = chaosCell(cfg)
			}(idx, cfg)
		}
	}
	wg.Wait()

	var setupErrs []error
	rep := &ChaosReport{
		Seed:       opt.Seed,
		Schedules:  opt.Schedules,
		Strategies: opt.Strategies,
		Intensity:  opt.Intensity,
		Runs:       len(cells),
		RulesTotal: rules,
	}
	for i := 0; i < opt.Schedules; i++ {
		for j, strat := range opt.Strategies {
			c := cells[i*nStrat+j]
			if c.err != nil {
				setupErrs = append(setupErrs, fmt.Errorf("chaos schedule %d strategy %s: %w", i, strat, c.err))
				continue
			}
			if c.violation == nil {
				rep.Passed++
				continue
			}
			rep.Failed++
			rep.Failures = append(rep.Failures, ChaosFailure{
				Schedule:  i,
				Strategy:  strat,
				Faults:    texts[i],
				Error:     c.violation.Error(),
				OrigRules: scheds[i].NumRules(),
			})
		}
	}
	if err := errors.Join(setupErrs...); err != nil {
		return nil, err
	}

	for fi := range rep.Failures {
		if fi >= opt.MaxShrinks {
			break
		}
		f := &rep.Failures[fi]
		fails := func(s *fault.Schedule) bool {
			violation, err := chaosCell(chaosConfig(opt, f.Strategy, s.String()))
			return err == nil && violation != nil
		}
		minS, evals := ShrinkSchedule(scheds[f.Schedule], fails, opt.ShrinkBudget)
		f.shrunk = true
		f.Shrunk = minS.String()
		f.ShrunkRules = minS.NumRules()
		f.ShrinkEvals = evals
		f.Replay = replayCommand(chaosConfig(opt, f.Strategy, f.Shrunk))
	}
	return rep, nil
}

// ShrinkSchedule minimises a failing fault schedule: it repeatedly
// applies reductions — drop a whole rule, halve a rule's window, drop a
// partition-group member — keeping a candidate only if fails still
// returns true, until a fixed point or the evaluation budget (<= 0
// means 200) is exhausted. The candidate order is deterministic, so a
// deterministic predicate always yields the same minimum. The result is
// valid whenever the input was: reductions never widen windows, empty a
// partition group, or invent node indices. Returns the shrunk schedule
// and the number of predicate evaluations spent.
func ShrinkSchedule(s *fault.Schedule, fails func(*fault.Schedule) bool, budget int) (*fault.Schedule, int) {
	if budget <= 0 {
		budget = 200
	}
	evals := 0
	try := func(c *fault.Schedule) bool {
		if evals >= budget {
			return false
		}
		evals++
		return fails(c)
	}
	cur := s.Clone()
	for changed := true; changed && evals < budget; {
		changed = false
		// Pass 1: drop whole rules, one at a time. Greedy left-to-right:
		// after a successful drop the same index holds the next rule.
		for i := 0; i < cur.NumRules(); i++ {
			if cand := dropRule(cur, i); try(cand) {
				cur = cand
				changed = true
				i--
			}
		}
		// Pass 2: halve windows toward their start — recoveries move
		// toward their crash, lag/slow/partition windows shrink. Shorter
		// windows mean fewer affected messages, hence simpler repros.
		for i := range cur.Recovers {
			if cand, ok := halveRecovery(cur, i); ok && try(cand) {
				cur = cand
				changed = true
			}
		}
		for i := range cur.Lags {
			mid, ok := midpoint(cur.Lags[i].From, cur.Lags[i].To)
			if !ok {
				continue
			}
			cand := cur.Clone()
			cand.Lags[i].To = mid
			if try(cand) {
				cur = cand
				changed = true
			}
		}
		for i := range cur.Slows {
			mid, ok := midpoint(cur.Slows[i].From, cur.Slows[i].To)
			if !ok {
				continue
			}
			cand := cur.Clone()
			cand.Slows[i].To = mid
			if try(cand) {
				cur = cand
				changed = true
			}
		}
		for i := range cur.Partitions {
			mid, ok := midpoint(cur.Partitions[i].From, cur.Partitions[i].To)
			if !ok {
				continue
			}
			cand := cur.Clone()
			cand.Partitions[i].To = mid
			if try(cand) {
				cur = cand
				changed = true
			}
		}
		// Pass 3: reduce the nodes a partition involves, one group
		// member at a time (groups stay non-empty).
		for i := range cur.Partitions {
			for _, side := range []int{0, 1} {
				group := cur.Partitions[i].A
				if side == 1 {
					group = cur.Partitions[i].B
				}
				for m := 0; m < len(group) && len(group) > 1; m++ {
					cand := cur.Clone()
					g := append([]int(nil), group[:m]...)
					g = append(g, group[m+1:]...)
					if side == 0 {
						cand.Partitions[i].A = g
					} else {
						cand.Partitions[i].B = g
					}
					if try(cand) {
						cur = cand
						group = g
						changed = true
						m--
					}
				}
			}
		}
	}
	return cur, evals
}

// dropRule clones the schedule minus rule idx, indexing across the
// rule slices in struct order (crash, recover, drop, lag, slow,
// partition) — the same order NumRules counts.
func dropRule(s *fault.Schedule, idx int) *fault.Schedule {
	c := s.Clone()
	for _, sl := range []struct {
		n   int
		cut func(i int)
	}{
		{len(c.Crashes), func(i int) { c.Crashes = append(c.Crashes[:i], c.Crashes[i+1:]...) }},
		{len(c.Recovers), func(i int) { c.Recovers = append(c.Recovers[:i], c.Recovers[i+1:]...) }},
		{len(c.Drops), func(i int) { c.Drops = append(c.Drops[:i], c.Drops[i+1:]...) }},
		{len(c.Lags), func(i int) { c.Lags = append(c.Lags[:i], c.Lags[i+1:]...) }},
		{len(c.Slows), func(i int) { c.Slows = append(c.Slows[:i], c.Slows[i+1:]...) }},
		{len(c.Partitions), func(i int) { c.Partitions = append(c.Partitions[:i], c.Partitions[i+1:]...) }},
	} {
		if idx < sl.n {
			sl.cut(idx)
			return c
		}
		idx -= sl.n
	}
	return c // idx out of range: unchanged clone (callers stay in range)
}

// halveRecovery moves recovery i to the midpoint between its node's
// latest preceding crash and its current time, shortening the outage's
// tail. Returns ok=false when there is no room to move.
func halveRecovery(s *fault.Schedule, i int) (*fault.Schedule, bool) {
	rec := s.Recovers[i]
	crashAt := sim.Time(-1)
	for _, ev := range s.Crashes {
		if ev.Node == rec.Node && ev.At < rec.At && ev.At > crashAt {
			crashAt = ev.At
		}
	}
	if crashAt < 0 {
		return nil, false
	}
	mid, ok := midpoint(crashAt, rec.At)
	if !ok {
		return nil, false
	}
	c := s.Clone()
	c.Recovers[i].At = mid
	return c, true
}

// midpoint returns the millisecond-rounded midpoint of [from, to),
// ok=false when the window is already too narrow to halve.
func midpoint(from, to sim.Time) (sim.Time, bool) {
	mid := from + (to-from)/2
	mid -= mid % sim.Millisecond
	if mid <= from || mid >= to {
		return 0, false
	}
	return mid, true
}

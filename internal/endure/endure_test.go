package endure

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynmds/internal/client"
	"dynmds/internal/cluster"
	"dynmds/internal/sim"
	"dynmds/internal/snap"
)

// testOptions is a small endurance configuration: a 4-node cluster
// under an open-loop churn population, three checkpoints over an 8s
// horizon. The arrival budget (~400 ops/s aggregate) stays well under
// service capacity so every quiesce drains.
func testOptions(shards int, faults string) Options {
	cfg := cluster.Default()
	cfg.Seed = 42
	cfg.NumMDS = 4
	cfg.ClientsPerMDS = 40
	cfg.Shards = shards
	cfg.Faults = faults
	cfg.Duration = sim.FromSeconds(8)
	cfg.Warmup = sim.FromSeconds(1)
	cfg.OpenLoop = &client.PopulationConfig{Clients: 20000, Rate: 0.02}
	return Options{Cluster: cfg, Every: sim.FromSeconds(2.5)}
}

// TestRestoreBitIdentity is the endurance plane's core determinism
// claim: a run saved at a checkpoint and restored finishes with a
// digest bit-identical to the uninterrupted run — at the serial and
// sharded engine configurations, and under an active fault schedule.
func TestRestoreBitIdentity(t *testing.T) {
	cases := []struct {
		name   string
		shards int
		faults string
	}{
		{"serial", 0, ""},
		{"sharded-K4", 4, ""},
		{"serial-faults", 0, "crash@3s-4s:mds1,crash@5s-5.6s:mds3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := Run(testOptions(tc.shards, tc.faults))
			if err != nil {
				t.Fatal(err)
			}

			saved := testOptions(tc.shards, tc.faults)
			saved.Dir = t.TempDir()
			savedRes, err := Run(saved)
			if err != nil {
				t.Fatal(err)
			}
			if savedRes.Digest != ref.Digest {
				t.Fatalf("checkpoint writing perturbed the run:\n  plain %s\n  saved %s",
					ref.Digest, savedRes.Digest)
			}

			for ck := 0; ck < len(savedRes.Rows)-1; ck++ {
				restored, err := Restore(testOptions(tc.shards, tc.faults),
					snapshotPath(saved.Dir, ck))
				if err != nil {
					t.Fatalf("restore from ck-%03d: %v", ck, err)
				}
				if restored.Digest != ref.Digest {
					t.Errorf("restored from ck-%03d diverged:\n  plain    %s\n  restored %s",
						ck, ref.Digest, restored.Digest)
				}
				// The restored curve must agree with the uninterrupted
				// run's rows for the checkpoints it replays.
				tail := ref.Rows[ck+1:]
				if len(restored.Rows) != len(tail) {
					t.Fatalf("restored rows = %d, want %d", len(restored.Rows), len(tail))
				}
				for i := range tail {
					got, want := restored.Rows[i], tail[i]
					got.Path, want.Path = "", ""
					if got != want {
						t.Errorf("row %d differs:\n  plain    %+v\n  restored %+v", i, want, got)
					}
				}
			}
		})
	}
}

// TestCompactTombstonesDigestInvariant pins the claim in the aging
// layer: swapping the tombstone map for the dense bitset is purely
// representational, so a run that compacts mid-flight is bit-identical
// to one that never does.
func TestCompactTombstonesDigestInvariant(t *testing.T) {
	unfixed := testOptions(0, "")
	unfixed.CompactAt = -1
	a, err := Run(unfixed)
	if err != nil {
		t.Fatal(err)
	}
	fixed := testOptions(0, "")
	fixed.CompactAt = 1 // any tombstone triggers compaction at the first checkpoint
	b, err := Run(fixed)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("compaction changed the run:\n  off %s\n  on  %s", a.Digest, b.Digest)
	}
	if last := a.Rows[len(a.Rows)-1]; last.Compacted {
		t.Error("CompactAt=-1 run still compacted")
	}
	if last := b.Rows[len(b.Rows)-1]; !last.Compacted {
		t.Error("CompactAt=1 run never compacted")
	}
}

// TestInstants pins the checkpoint cadence: multiples of every up to
// the horizon, the horizon itself always last, and a penultimate
// multiple inside the quiesce drain of the horizon dropped (the two
// checkpoints would overlap).
func TestInstants(t *testing.T) {
	s := sim.FromSeconds
	eq := func(got, want []sim.Time) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if got := Instants(s(2.5), s(8)); !eq(got, []sim.Time{s(2.5), s(5), s(8)}) {
		t.Errorf("Instants(2.5s, 8s) = %v", got)
	}
	if got := Instants(s(2.5), s(6)); !eq(got, []sim.Time{s(2.5), s(6)}) {
		t.Errorf("Instants(2.5s, 6s) = %v (the 5s multiple sits inside the drain before 6s)", got)
	}
	if got := Instants(s(3), s(6)); !eq(got, []sim.Time{s(3), s(6)}) {
		t.Errorf("Instants(3s, 6s) = %v (the 6s multiple is the horizon)", got)
	}
	drainS := cluster.QuiesceDrain.Seconds()
	if got := Instants(s(3), s(6)+cluster.QuiesceDrain/2); !eq(got, []sim.Time{s(3), s(6) + cluster.QuiesceDrain/2}) {
		t.Errorf("Instants(3s, 6s+%.1gs/2) = %v (penultimate multiple inside the drain must drop)", drainS, got)
	}
}

// TestValidateSnapshot covers the fail-fast usage errors: shard-count,
// config, and version mismatches, corruption, and restoring from the
// final checkpoint are all rejected without running any simulation.
func TestValidateSnapshot(t *testing.T) {
	opt := testOptions(0, "")
	opt.Dir = t.TempDir()
	if _, err := Run(opt); err != nil {
		t.Fatal(err)
	}
	first := snapshotPath(opt.Dir, 0)

	if err := ValidateSnapshot(testOptions(0, ""), first); err != nil {
		t.Fatalf("matching config rejected: %v", err)
	}
	// The fault schedule is deliberately exempt (shrinking replays
	// snapshots under reduced schedules).
	if err := ValidateSnapshot(testOptions(0, "crash@3s-4s:mds1"), first); err != nil {
		t.Fatalf("differing fault schedule rejected: %v", err)
	}

	if err := ValidateSnapshot(testOptions(4, ""), first); err == nil ||
		!strings.Contains(err.Error(), "shards") {
		t.Errorf("shard mismatch: %v", err)
	}
	other := testOptions(0, "")
	other.Cluster.Seed = 43
	if err := ValidateSnapshot(other, first); err == nil ||
		!strings.Contains(err.Error(), "config hash") {
		t.Errorf("config mismatch: %v", err)
	}
	late := testOptions(0, "")
	final := snapshotPath(opt.Dir, 2)
	if err := ValidateSnapshot(late, final); err == nil ||
		!strings.Contains(err.Error(), "final checkpoint") {
		t.Errorf("final-checkpoint restore: %v", err)
	}
	badCadence := testOptions(0, "")
	badCadence.Every = sim.FromSeconds(3)
	if err := ValidateSnapshot(badCadence, first); err == nil ||
		!strings.Contains(err.Error(), "cadence") {
		t.Errorf("cadence mismatch: %v", err)
	}

	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x01
	corrupt := filepath.Join(t.TempDir(), "corrupt.snap")
	if err := os.WriteFile(corrupt, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ValidateSnapshot(testOptions(0, ""), corrupt); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupt snapshot: %v", err)
	}
}

// TestSnapshotVersionRejected: a future-format file is refused before
// any post-version field is decoded.
func TestSnapshotVersionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.snap")
	data := futureVersionSnapshot()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := decodeHeader(data); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("future version: %v", err)
	}
	if err := ValidateSnapshot(testOptions(0, ""), path); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("ValidateSnapshot future version: %v", err)
	}
}

// futureVersionSnapshot fabricates a checksummed snapshot whose format
// version is one past this build's.
func futureVersionSnapshot() []byte {
	w := snap.NewWriter()
	w.Begin("endure")
	w.Int(SnapshotVersion + 1)
	w.End()
	return w.Bytes()
}

// TestSoakDeterminism: the rolling soak derives its schedule and
// outcome purely from (config, seed) — two invocations agree exactly,
// and the schedule carries the requested crash/recover cycles.
func TestSoakDeterminism(t *testing.T) {
	run := func() *SoakReport {
		rep, err := Soak(SoakOptions{Base: testOptions(0, ""), Seed: 7, Cycles: 3})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Schedule == "" || a.Schedule != b.Schedule {
		t.Fatalf("soak schedules differ:\n  %s\n  %s", a.Schedule, b.Schedule)
	}
	if got := strings.Count(a.Schedule, "crash@"); got != 3 {
		t.Errorf("schedule has %d crash cycles, want 3: %s", got, a.Schedule)
	}
	if a.Failure != nil {
		t.Fatalf("soak failed: %+v", a.Failure)
	}
	if a.Result.Digest != b.Result.Digest {
		t.Fatalf("soak digests differ:\n  %s\n  %s", a.Result.Digest, b.Result.Digest)
	}
}

// TestReproLine: shrink repro lines must be replayable as-is — they
// carry the open-loop population, the schedule, and the checkpoint
// snapshot the shrink restarted from.
func TestReproLine(t *testing.T) {
	opt := testOptions(0, "")
	line := reproLine(&opt, "crash@3s-4s:mds1", "/tmp/soak/ck-001.snap")
	for _, want := range []string{
		"-open-loop 20000", "-open-rate 0.02", "-endure", "-checkpoint-every 2.5",
		`-faults "crash@3s-4s:mds1"`, `-restore "/tmp/soak/ck-001.snap"`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("repro line missing %q: %s", want, line)
		}
	}
}

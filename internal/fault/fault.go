// Package fault is the deterministic fault injector. A Schedule — parsed
// from a compact DSL or built programmatically — describes scheduled and
// probabilistic faults against a simulated cluster: MDS crashes and
// recoveries at virtual times, per-link message drop probabilities,
// windowed latency spikes, slow-node service-time scaling, and network
// partitions between MDS groups. A Plane binds a schedule to a seeded
// RNG stream and implements net.FaultPlane, so the message fabric
// consults it on every send.
//
// Determinism contract: the plane is driven only by virtual time and its
// own seeded stream, and it never consumes randomness for a message no
// positive-probability rule matches. The same seed plus the same
// schedule therefore reproduces a run bit-identically, and an empty (or
// zero-probability) schedule is bit-identical to running with no plane
// attached at all.
//
// Schedule DSL — comma-separated events, each `kind@spec:target`:
//
//	crash@30s:mds3            crash node 3 at t=30s (stays down)
//	crash@30s-45s:mds3        crash at 30s, recover at 45s
//	recover@45s:mds3          recover node 3 at t=45s
//	drop@0.01:link2-5         drop 1% of messages between nodes 2 and 5
//	drop@0.05:mds1            ... on any link touching node 1
//	drop@0.02:client          ... on the client edge (requests/replies)
//	drop@0.001:all            ... on every link
//	lag@10s-20s:mds2+2ms      +2ms on links touching node 2 during 10-20s
//	slow@10s-20s:mds2x4       node 2 serves CPU/disk 4x slower in 10-20s
//	partition@60s-90s:{0-3|4-7}   drop traffic between groups {0..3} and
//	                              {4..7} during 60-90s (ranges or single
//	                              indices joined by '.', e.g. {0.2|1.3-5})
//
// Times accept s/ms/us suffixes (bare numbers mean seconds); windows are
// `from-to` and are half-open [from, to).
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"dynmds/internal/sim"
)

// Selector kinds for link-matching rules.
const (
	selAll    = iota // every link
	selNode          // any link touching one MDS endpoint
	selClient        // any link touching the client edge
	selPair          // both directions between two MDS endpoints
)

// LinkSel selects a set of directed links symmetrically (a rule on
// "link2-5" applies to 2→5 and 5→2).
type LinkSel struct {
	kind int
	a, b int
}

// Matches reports whether the directed link from→to is selected, given
// the fabric's client-edge endpoint index.
func (s LinkSel) Matches(from, to, clientEdge int) bool {
	switch s.kind {
	case selAll:
		return true
	case selNode:
		return from == s.a || to == s.a
	case selClient:
		return from == clientEdge || to == clientEdge
	default: // selPair
		return (from == s.a && to == s.b) || (from == s.b && to == s.a)
	}
}

func (s LinkSel) String() string {
	switch s.kind {
	case selAll:
		return "all"
	case selNode:
		return fmt.Sprintf("mds%d", s.a)
	case selClient:
		return "client"
	default:
		return fmt.Sprintf("link%d-%d", s.a, s.b)
	}
}

// NodeEvent schedules a crash or recovery of one MDS at a virtual time.
type NodeEvent struct {
	At   sim.Time
	Node int
}

// DropRule drops each matching message independently with probability P
// for the whole run.
type DropRule struct {
	Sel LinkSel
	P   float64
}

// LagRule adds Extra transit latency to matching messages sent during
// [From, To).
type LagRule struct {
	Sel      LinkSel
	From, To sim.Time
	Extra    sim.Time
}

// SlowWindow scales one node's CPU and disk service times by Factor
// during [From, To).
type SlowWindow struct {
	From, To sim.Time
	Node     int
	Factor   float64
}

// Partition drops every message between group A and group B (either
// direction) during [From, To). The client edge is never partitioned.
type Partition struct {
	From, To sim.Time
	A, B     []int
}

// Schedule is a full parsed fault schedule.
type Schedule struct {
	Crashes    []NodeEvent
	Recovers   []NodeEvent
	Drops      []DropRule
	Lags       []LagRule
	Slows      []SlowWindow
	Partitions []Partition

	src string
}

// NumRules counts the schedule's individual rules. The chaos shrinker
// uses this as its size metric: a shrunk repro must never be larger than
// the schedule it came from.
func (s *Schedule) NumRules() int {
	if s == nil {
		return 0
	}
	return len(s.Crashes) + len(s.Recovers) + len(s.Drops) +
		len(s.Lags) + len(s.Slows) + len(s.Partitions)
}

// Clone returns a deep copy that shares no slices with s, so shrinker
// candidates can be mutated freely.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{
		Crashes:  append([]NodeEvent(nil), s.Crashes...),
		Recovers: append([]NodeEvent(nil), s.Recovers...),
		Drops:    append([]DropRule(nil), s.Drops...),
		Lags:     append([]LagRule(nil), s.Lags...),
		Slows:    append([]SlowWindow(nil), s.Slows...),
		src:      s.src,
	}
	for _, p := range s.Partitions {
		c.Partitions = append(c.Partitions, Partition{
			From: p.From, To: p.To,
			A: append([]int(nil), p.A...),
			B: append([]int(nil), p.B...),
		})
	}
	return c
}

// Empty reports whether the schedule contains no events at all.
func (s *Schedule) Empty() bool {
	return s == nil || (len(s.Crashes) == 0 && len(s.Recovers) == 0 &&
		len(s.Drops) == 0 && len(s.Lags) == 0 && len(s.Slows) == 0 &&
		len(s.Partitions) == 0)
}

// Source returns the DSL string the schedule was parsed from.
func (s *Schedule) Source() string { return s.src }

// SelAll selects every link.
func SelAll() LinkSel { return LinkSel{kind: selAll} }

// SelClient selects any link touching the client edge.
func SelClient() LinkSel { return LinkSel{kind: selClient} }

// SelNode selects any link touching MDS n.
func SelNode(n int) LinkSel { return LinkSel{kind: selNode, a: n} }

// SelPair selects both directions between MDS a and MDS b.
func SelPair(a, b int) LinkSel { return LinkSel{kind: selPair, a: a, b: b} }

// String renders the schedule in canonical DSL form: events in struct
// order (crashes, recovers, drops, lags, slows, partitions), each time
// in the largest unit that represents it exactly, floats in shortest
// round-trip form, partition groups as '.'-joined single indices. The
// output parses back — via ParseSchedule — into a structurally
// identical schedule (the round-trip property is tested), so
// programmatically built or shrunk schedules can be replayed verbatim
// with `mdsim -faults`.
func (s *Schedule) String() string {
	if s.Empty() {
		return ""
	}
	var parts []string
	for _, e := range s.Crashes {
		parts = append(parts, fmt.Sprintf("crash@%s:mds%d", fmtTime(e.At), e.Node))
	}
	for _, e := range s.Recovers {
		parts = append(parts, fmt.Sprintf("recover@%s:mds%d", fmtTime(e.At), e.Node))
	}
	for _, d := range s.Drops {
		parts = append(parts, fmt.Sprintf("drop@%s:%s", fmtFloat(d.P), d.Sel))
	}
	for _, l := range s.Lags {
		parts = append(parts, fmt.Sprintf("lag@%s-%s:%s+%s",
			fmtTime(l.From), fmtTime(l.To), l.Sel, fmtTime(l.Extra)))
	}
	for _, w := range s.Slows {
		parts = append(parts, fmt.Sprintf("slow@%s-%s:mds%dx%s",
			fmtTime(w.From), fmtTime(w.To), w.Node, fmtFloat(w.Factor)))
	}
	for _, p := range s.Partitions {
		parts = append(parts, fmt.Sprintf("partition@%s-%s:{%s|%s}",
			fmtTime(p.From), fmtTime(p.To), fmtGroup(p.A), fmtGroup(p.B)))
	}
	return strings.Join(parts, ",")
}

// fmtTime renders a virtual time in the largest s/ms/us unit that is
// exact, mirroring parseTime.
func fmtTime(t sim.Time) string {
	switch {
	case t%sim.Second == 0:
		return strconv.FormatInt(int64(t/sim.Second), 10) + "s"
	case t%sim.Millisecond == 0:
		return strconv.FormatInt(int64(t/sim.Millisecond), 10) + "ms"
	default:
		return strconv.FormatInt(int64(t), 10) + "us"
	}
}

// fmtFloat renders the shortest decimal that parses back to exactly v.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func fmtGroup(g []int) string {
	items := make([]string, len(g))
	for i, n := range g {
		items[i] = strconv.Itoa(n)
	}
	return strings.Join(items, ".")
}

// ParseSchedule parses the fault DSL described in the package comment.
// An empty (or all-whitespace) string yields an empty schedule.
func ParseSchedule(src string) (*Schedule, error) {
	s := &Schedule{src: strings.TrimSpace(src)}
	if s.src == "" {
		return s, nil
	}
	for _, ev := range strings.Split(s.src, ",") {
		ev = strings.TrimSpace(ev)
		if ev == "" {
			continue
		}
		if err := s.parseEvent(ev); err != nil {
			return nil, fmt.Errorf("fault event %q: %w", ev, err)
		}
	}
	return s, nil
}

func (s *Schedule) parseEvent(ev string) error {
	kind, rest, ok := strings.Cut(ev, "@")
	if !ok {
		return fmt.Errorf("missing '@' (want kind@spec:target)")
	}
	spec, target, ok := strings.Cut(rest, ":")
	if !ok {
		return fmt.Errorf("missing ':' (want kind@spec:target)")
	}
	switch kind {
	case "crash":
		node, err := parseNode(target)
		if err != nil {
			return err
		}
		if from, to, isWin := cutWindow(spec); isWin {
			f, t, err := parseWindow(from, to)
			if err != nil {
				return err
			}
			s.Crashes = append(s.Crashes, NodeEvent{At: f, Node: node})
			s.Recovers = append(s.Recovers, NodeEvent{At: t, Node: node})
			return nil
		}
		at, err := parseTime(spec)
		if err != nil {
			return err
		}
		s.Crashes = append(s.Crashes, NodeEvent{At: at, Node: node})
		return nil
	case "recover":
		node, err := parseNode(target)
		if err != nil {
			return err
		}
		at, err := parseTime(spec)
		if err != nil {
			return err
		}
		s.Recovers = append(s.Recovers, NodeEvent{At: at, Node: node})
		return nil
	case "drop":
		p, err := strconv.ParseFloat(spec, 64)
		if err != nil || p < 0 || p > 1 {
			return fmt.Errorf("drop probability %q not in [0, 1]", spec)
		}
		sel, err := parseSel(target)
		if err != nil {
			return err
		}
		s.Drops = append(s.Drops, DropRule{Sel: sel, P: p})
		return nil
	case "lag":
		from, to, isWin := cutWindow(spec)
		if !isWin {
			return fmt.Errorf("lag wants a time window (from-to), got %q", spec)
		}
		f, t, err := parseWindow(from, to)
		if err != nil {
			return err
		}
		selStr, extraStr, ok := strings.Cut(target, "+")
		if !ok {
			return fmt.Errorf("lag target wants selector+duration, got %q", target)
		}
		sel, err := parseSel(selStr)
		if err != nil {
			return err
		}
		extra, err := parseTime(extraStr)
		if err != nil {
			return err
		}
		if extra <= 0 {
			return fmt.Errorf("lag duration %q must be positive", extraStr)
		}
		s.Lags = append(s.Lags, LagRule{Sel: sel, From: f, To: t, Extra: extra})
		return nil
	case "slow":
		from, to, isWin := cutWindow(spec)
		if !isWin {
			return fmt.Errorf("slow wants a time window (from-to), got %q", spec)
		}
		f, t, err := parseWindow(from, to)
		if err != nil {
			return err
		}
		nodeStr, facStr, ok := strings.Cut(target, "x")
		if !ok {
			return fmt.Errorf("slow target wants mdsN x factor, got %q", target)
		}
		node, err := parseNode(nodeStr)
		if err != nil {
			return err
		}
		fac, err := strconv.ParseFloat(facStr, 64)
		if err != nil || fac < 1 {
			return fmt.Errorf("slow factor %q must be >= 1", facStr)
		}
		s.Slows = append(s.Slows, SlowWindow{From: f, To: t, Node: node, Factor: fac})
		return nil
	case "partition":
		from, to, isWin := cutWindow(spec)
		if !isWin {
			return fmt.Errorf("partition wants a time window (from-to), got %q", spec)
		}
		f, t, err := parseWindow(from, to)
		if err != nil {
			return err
		}
		if !strings.HasPrefix(target, "{") || !strings.HasSuffix(target, "}") {
			return fmt.Errorf("partition target wants {groupA|groupB}, got %q", target)
		}
		aStr, bStr, ok := strings.Cut(target[1:len(target)-1], "|")
		if !ok {
			return fmt.Errorf("partition target wants {groupA|groupB}, got %q", target)
		}
		a, err := parseGroup(aStr)
		if err != nil {
			return err
		}
		b, err := parseGroup(bStr)
		if err != nil {
			return err
		}
		for _, n := range a {
			for _, m := range b {
				if n == m {
					return fmt.Errorf("partition groups overlap on node %d", n)
				}
			}
		}
		s.Partitions = append(s.Partitions, Partition{From: f, To: t, A: a, B: b})
		return nil
	default:
		return fmt.Errorf("unknown fault kind %q (want crash, recover, drop, lag, slow, or partition)", kind)
	}
}

// Validate checks node indices against the cluster size. It is separate
// from parsing so the DSL can be validated before a cluster exists and
// re-checked once the size is known.
func (s *Schedule) Validate(numMDS int) error {
	check := func(n int) error {
		if n < 0 || n >= numMDS {
			return fmt.Errorf("fault schedule names mds%d, cluster has %d nodes", n, numMDS)
		}
		return nil
	}
	for _, e := range s.Crashes {
		if err := check(e.Node); err != nil {
			return err
		}
	}
	for _, e := range s.Recovers {
		if err := check(e.Node); err != nil {
			return err
		}
	}
	for _, w := range s.Slows {
		if err := check(w.Node); err != nil {
			return err
		}
	}
	for _, d := range s.Drops {
		if d.Sel.kind == selNode {
			if err := check(d.Sel.a); err != nil {
				return err
			}
		}
		if d.Sel.kind == selPair {
			if err := check(d.Sel.a); err != nil {
				return err
			}
			if err := check(d.Sel.b); err != nil {
				return err
			}
		}
	}
	for _, l := range s.Lags {
		if l.Sel.kind == selNode {
			if err := check(l.Sel.a); err != nil {
				return err
			}
		}
		if l.Sel.kind == selPair {
			if err := check(l.Sel.a); err != nil {
				return err
			}
			if err := check(l.Sel.b); err != nil {
				return err
			}
		}
	}
	for _, p := range s.Partitions {
		for _, n := range p.A {
			if err := check(n); err != nil {
				return err
			}
		}
		for _, n := range p.B {
			if err := check(n); err != nil {
				return err
			}
		}
	}
	return nil
}

// cutWindow splits "from-to" on the first '-' that separates two time
// specs. Returns isWin=false for a bare time.
func cutWindow(spec string) (from, to string, isWin bool) {
	i := strings.IndexByte(spec, '-')
	if i <= 0 || i == len(spec)-1 {
		return "", "", false
	}
	return spec[:i], spec[i+1:], true
}

func parseWindow(fromStr, toStr string) (from, to sim.Time, err error) {
	from, err = parseTime(fromStr)
	if err != nil {
		return 0, 0, err
	}
	to, err = parseTime(toStr)
	if err != nil {
		return 0, 0, err
	}
	if to <= from {
		return 0, 0, fmt.Errorf("window %s-%s is not ordered", fromStr, toStr)
	}
	return from, to, nil
}

// parseTime parses "30s", "500ms", "250us", or a bare number (seconds).
func parseTime(s string) (sim.Time, error) {
	unit := sim.Second
	num := s
	switch {
	case strings.HasSuffix(s, "us"):
		unit, num = sim.Microsecond, s[:len(s)-2]
	case strings.HasSuffix(s, "ms"):
		unit, num = sim.Millisecond, s[:len(s)-2]
	case strings.HasSuffix(s, "s"):
		unit, num = sim.Second, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad time %q", s)
	}
	return sim.Time(v * float64(unit)), nil
}

func parseNode(s string) (int, error) {
	rest, ok := strings.CutPrefix(s, "mds")
	if !ok {
		return 0, fmt.Errorf("bad node %q (want mdsN)", s)
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad node %q (want mdsN)", s)
	}
	return n, nil
}

func parseSel(s string) (LinkSel, error) {
	switch {
	case s == "all":
		return LinkSel{kind: selAll}, nil
	case s == "client":
		return LinkSel{kind: selClient}, nil
	case strings.HasPrefix(s, "mds"):
		n, err := parseNode(s)
		if err != nil {
			return LinkSel{}, err
		}
		return LinkSel{kind: selNode, a: n}, nil
	case strings.HasPrefix(s, "link"):
		aStr, bStr, ok := strings.Cut(s[len("link"):], "-")
		if !ok {
			return LinkSel{}, fmt.Errorf("bad link %q (want linkA-B)", s)
		}
		a, err1 := strconv.Atoi(aStr)
		b, err2 := strconv.Atoi(bStr)
		if err1 != nil || err2 != nil || a < 0 || b < 0 || a == b {
			return LinkSel{}, fmt.Errorf("bad link %q (want linkA-B, A != B)", s)
		}
		return LinkSel{kind: selPair, a: a, b: b}, nil
	default:
		return LinkSel{}, fmt.Errorf("bad link selector %q (want all, client, mdsN, or linkA-B)", s)
	}
}

// parseGroup parses a partition side: items joined by '.', each a single
// index or an inclusive range lo-hi.
func parseGroup(s string) ([]int, error) {
	var out []int
	for _, item := range strings.Split(s, ".") {
		lo, hi, isRange := strings.Cut(item, "-")
		if !isRange {
			n, err := strconv.Atoi(item)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad partition group item %q", item)
			}
			out = append(out, n)
			continue
		}
		l, err1 := strconv.Atoi(lo)
		h, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || l < 0 || h < l {
			return nil, fmt.Errorf("bad partition group range %q", item)
		}
		for n := l; n <= h; n++ {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty partition group %q", s)
	}
	return out, nil
}

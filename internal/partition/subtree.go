package partition

import (
	"fmt"
	"sort"

	"dynmds/internal/namespace"
)

// SubtreeTable maps subtrees of the hierarchy to MDS nodes. Delegations
// may be nested: /usr can be assigned to one MDS while /usr/local is
// reassigned to another (§4.1). An inode's authority is the assignment
// on its nearest assigned ancestor (or itself). Authority lookups are
// memoized per inode and invalidated by bumping the table epoch on every
// delegation change.
type SubtreeTable struct {
	n      int
	epoch  uint64
	assign map[*namespace.Inode]int
	// byMDS mirrors assign for per-node iteration.
	byMDS []map[*namespace.Inode]bool
	// frozen suppresses memo writes in Authority so concurrent shards can
	// resolve authority lock-free during lookahead windows; memos are
	// refreshed wholesale at barriers via Memoize.
	frozen bool
}

// NewSubtreeTable creates a table for a cluster of n nodes with the
// entire hierarchy implicitly assigned to node 0 until delegations are
// made.
func NewSubtreeTable(n int) *SubtreeTable {
	if n < 1 {
		panic("partition: cluster size must be >= 1")
	}
	t := &SubtreeTable{
		n:      n,
		epoch:  1,
		assign: make(map[*namespace.Inode]int),
		byMDS:  make([]map[*namespace.Inode]bool, n),
	}
	for i := range t.byMDS {
		t.byMDS[i] = make(map[*namespace.Inode]bool)
	}
	return t
}

// N returns the cluster size.
func (t *SubtreeTable) N() int { return t.n }

// Epoch returns the current partition epoch; it changes whenever the
// partition changes.
func (t *SubtreeTable) Epoch() uint64 { return t.epoch }

// Delegate assigns authority for the subtree rooted at root to mds.
func (t *SubtreeTable) Delegate(root *namespace.Inode, mds int) error {
	if mds < 0 || mds >= t.n {
		return fmt.Errorf("partition: mds %d out of range [0,%d)", mds, t.n)
	}
	if !root.IsDir() {
		return fmt.Errorf("partition: delegation root %s is not a directory", root)
	}
	if old, ok := t.assign[root]; ok {
		delete(t.byMDS[old], root)
	}
	t.assign[root] = mds
	t.byMDS[mds][root] = true
	t.epoch++
	return nil
}

// Undelegate removes an explicit assignment so the subtree reverts to
// its parent's authority.
func (t *SubtreeTable) Undelegate(root *namespace.Inode) {
	if old, ok := t.assign[root]; ok {
		delete(t.byMDS[old], root)
		delete(t.assign, root)
		t.epoch++
	}
}

// Assigned returns the explicit assignment for root, if any.
func (t *SubtreeTable) Assigned(root *namespace.Inode) (int, bool) {
	mds, ok := t.assign[root]
	return mds, ok
}

// Authority returns the MDS responsible for the inode: the assignment of
// its nearest explicitly assigned ancestor-or-self, defaulting to 0.
func (t *SubtreeTable) Authority(ino *namespace.Inode) int {
	// Fast path: memoized for the current epoch.
	tags := TagsOf(ino)
	if tags.AuthEpoch == t.epoch {
		return tags.Auth
	}
	if t.frozen {
		// Pure read-only resolution: walk upward, shortcut through any
		// ancestor's still-valid memo, write nothing. Used during
		// lookahead windows, where many shards read concurrently.
		for c := ino; c != nil; c = c.Parent() {
			ct := TagsOf(c)
			if ct.AuthEpoch == t.epoch {
				return ct.Auth
			}
			if a, ok := t.assign[c]; ok {
				return a
			}
		}
		return 0
	}
	// Walk upward; remember the chain so every node visited gets
	// memoized with the resolved authority of its own nearest root.
	var chain [64]*namespace.Inode
	depth := 0
	auth := 0
	for c := ino; c != nil; c = c.Parent() {
		ct := TagsOf(c)
		if ct.AuthEpoch == t.epoch {
			auth = ct.Auth
			break
		}
		if a, ok := t.assign[c]; ok {
			auth = a
			ct.AuthEpoch = t.epoch
			ct.Auth = a
			break
		}
		if depth < len(chain) {
			chain[depth] = c
			depth++
		}
	}
	for i := 0; i < depth; i++ {
		ct := TagsOf(chain[i])
		ct.AuthEpoch = t.epoch
		ct.Auth = auth
	}
	return auth
}

// SetFrozen switches Authority between memoizing (serial) and pure
// read-only (sharded window) resolution.
func (t *SubtreeTable) SetFrozen(on bool) { t.frozen = on }

// Memoize refreshes the authority memo of every inode under root for the
// current epoch, parents before children so each node resolves from its
// parent's fresh memo in O(1). Sharded execution calls this at setup and
// after any barrier that changes the partition epoch; between barriers
// the memos make frozen Authority lookups one tag read.
func (t *SubtreeTable) Memoize(root *namespace.Inode) {
	t.memoize(root, 0)
}

func (t *SubtreeTable) memoize(n *namespace.Inode, inherited int) {
	auth := inherited
	if a, ok := t.assign[n]; ok {
		auth = a
	}
	tags := TagsOf(n)
	tags.AuthEpoch = t.epoch
	tags.Auth = auth
	for i := 0; i < n.NumChildren(); i++ {
		t.memoize(n.Child(i), auth)
	}
}

// RootsOf returns mds's explicitly delegated subtree roots, sorted by
// inode ID for deterministic iteration.
func (t *SubtreeTable) RootsOf(mds int) []*namespace.Inode {
	roots := make([]*namespace.Inode, 0, len(t.byMDS[mds]))
	for r := range t.byMDS[mds] {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ID < roots[j].ID })
	return roots
}

// NumDelegations returns the number of explicit assignments — the
// partition's complexity, which the balancer tries to keep low.
func (t *SubtreeTable) NumDelegations() int { return len(t.assign) }

// CheckConsistency verifies the table's structural invariants: every
// assignment names an in-range node and a directory root, and the
// per-node mirror (byMDS) agrees exactly with the assignment map — so
// authority really is a partition, with every delegated root owned by
// exactly one node. The chaos checker runs this after every fuzzed run.
func (t *SubtreeTable) CheckConsistency() error {
	mirrored := 0
	for root, mds := range t.assign {
		if mds < 0 || mds >= t.n {
			return fmt.Errorf("partition: root %s assigned to out-of-range mds %d", root, mds)
		}
		if !root.IsDir() {
			return fmt.Errorf("partition: delegated root %s is not a directory", root)
		}
		if !t.byMDS[mds][root] {
			return fmt.Errorf("partition: root %s assigned to mds %d but missing from its mirror", root, mds)
		}
	}
	for mds, roots := range t.byMDS {
		for root := range roots {
			mirrored++
			if got, ok := t.assign[root]; !ok || got != mds {
				return fmt.Errorf("partition: mirror lists root %s under mds %d, assign says %d (present=%v)",
					root, mds, got, ok)
			}
		}
	}
	if mirrored != len(t.assign) {
		return fmt.Errorf("partition: %d mirror entries for %d assignments", mirrored, len(t.assign))
	}
	return nil
}

// InitialPartition seeds the table the way the paper's simulations do
// (§5.1): "hashing directories near the root of the hierarchy" — every
// directory at depth <= maxDepth is assigned by a hash of its path,
// giving a quickly generated, relatively even distribution.
func InitialPartition(t *SubtreeTable, tree *namespace.Tree, maxDepth int) {
	_ = t.Delegate(tree.Root, int(PathHash(tree.Root)%uint64(t.n)))
	tree.Walk(func(n *namespace.Inode) bool {
		d := n.Depth()
		if d > maxDepth {
			return false
		}
		if n.IsDir() && n != tree.Root {
			_ = t.Delegate(n, int(PathHash(n)%uint64(t.n)))
		}
		return true
	})
}

// StaticSubtree is the traditional NFS/AFS-style fixed partition
// (§3.1.1): the initial assignment never changes, so the system cannot
// adapt to workload evolution.
type StaticSubtree struct {
	Table *SubtreeTable
}

// NewStaticSubtree builds a static partition over the tree.
func NewStaticSubtree(n int, tree *namespace.Tree, partitionDepth int) *StaticSubtree {
	t := NewSubtreeTable(n)
	InitialPartition(t, tree, partitionDepth)
	return &StaticSubtree{Table: t}
}

// Name implements Strategy.
func (s *StaticSubtree) Name() string { return "StaticSubtree" }

// Authority implements Strategy.
func (s *StaticSubtree) Authority(ino *namespace.Inode) int {
	return s.Table.Authority(ino)
}

// AuthorityForName implements Strategy: a new entry belongs to its
// directory's subtree.
func (s *StaticSubtree) AuthorityForName(dir *namespace.Inode, name string) int {
	return s.Table.Authority(dir)
}

// DirGranular implements Strategy: subtree partitions store directories
// with embedded inodes.
func (s *StaticSubtree) DirGranular() bool { return true }

// NeedsPathTraversal implements Strategy.
func (s *StaticSubtree) NeedsPathTraversal() bool { return true }

// ClientComputable implements Strategy: clients discover the partition
// through replies and forwards.
func (s *StaticSubtree) ClientComputable() bool { return false }

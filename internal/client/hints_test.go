package client

import (
	"testing"

	"dynmds/internal/msg"
	"dynmds/internal/namespace"
)

func TestHintTableRoundTrip(t *testing.T) {
	tab := NewHintTable(1, 8)
	tab.Put(0, msg.Hint{Ino: 42, Authority: 3})
	auth, repl, ok := tab.Get(0, 42)
	if !ok || auth != 3 || repl {
		t.Fatalf("Get(42) = %d,%v,%v", auth, repl, ok)
	}
	tab.Put(0, msg.Hint{Ino: 43, Authority: 7, Replicated: true})
	auth, repl, ok = tab.Get(0, 43)
	if !ok || auth != 7 || !repl {
		t.Fatalf("Get(43) = %d,%v,%v", auth, repl, ok)
	}
	if _, _, ok := tab.Get(0, 99); ok {
		t.Fatal("hit on absent key")
	}
}

func TestHintTableRefreshInPlace(t *testing.T) {
	tab := NewHintTable(1, 8)
	tab.Put(0, msg.Hint{Ino: 5, Authority: 1})
	tab.Put(0, msg.Hint{Ino: 5, Authority: 9})
	if auth, _, _ := tab.Get(0, 5); auth != 9 {
		t.Fatalf("refresh did not update: authority = %d", auth)
	}
	if tab.Len(0) != 1 {
		t.Fatalf("refresh grew region: len = %d", tab.Len(0))
	}
}

func TestHintTableBound(t *testing.T) {
	tab := NewHintTable(1, 4)
	if tab.Ways() != 4 {
		t.Fatalf("ways = %d", tab.Ways())
	}
	for i := 0; i < 1000; i++ {
		tab.Put(0, msg.Hint{Ino: namespace.InodeID(i), Authority: i % 8})
	}
	if tab.Len(0) > 4 {
		t.Fatalf("region overflowed: len = %d", tab.Len(0))
	}
	// Non-power-of-two ways round up.
	if w := NewHintTable(1, 5).Ways(); w != 8 {
		t.Fatalf("ways(5) = %d, want 8", w)
	}
}

func TestHintTableDelClearsExactSlot(t *testing.T) {
	tab := NewHintTable(1, 8)
	tab.Put(0, msg.Hint{Ino: 10, Authority: 1})
	tab.Put(0, msg.Hint{Ino: 11, Authority: 2})
	tab.Del(0, 10)
	if _, _, ok := tab.Get(0, 10); ok {
		t.Fatal("deleted key still present")
	}
	if _, _, ok := tab.Get(0, 11); !ok {
		t.Fatal("delete clobbered an unrelated key")
	}
	// The FIFO-ring bug this table replaces: after a delete, a re-put of
	// the same key followed by heavy churn must never leave two live
	// entries or resurrect stale state.
	tab.Put(0, msg.Hint{Ino: 10, Authority: 5})
	for i := 100; i < 200; i++ {
		tab.Put(0, msg.Hint{Ino: namespace.InodeID(i), Authority: 0})
	}
	if auth, _, ok := tab.Get(0, 10); ok && auth != 5 {
		t.Fatalf("stale value resurrected: authority = %d", auth)
	}
	if tab.Len(0) > tab.Ways() {
		t.Fatalf("region overflowed after churn: len = %d", tab.Len(0))
	}
}

func TestHintTablePerClientIsolation(t *testing.T) {
	tab := NewHintTable(4, 4)
	for c := 0; c < 4; c++ {
		tab.Put(c, msg.Hint{Ino: 7, Authority: c})
	}
	for c := 0; c < 4; c++ {
		auth, _, ok := tab.Get(c, 7)
		if !ok || auth != c {
			t.Fatalf("client %d: Get = %d,%v", c, auth, ok)
		}
	}
	tab.Del(2, 7)
	if _, _, ok := tab.Get(2, 7); ok {
		t.Fatal("delete did not clear client 2's entry")
	}
	for _, c := range []int{0, 1, 3} {
		if _, _, ok := tab.Get(c, 7); !ok {
			t.Fatalf("delete leaked into client %d", c)
		}
	}
}

func TestHintTableGetAllocFree(t *testing.T) {
	tab := NewHintTable(2, 8)
	tab.Put(0, msg.Hint{Ino: 1, Authority: 1})
	sink := 0
	allocs := testing.AllocsPerRun(100, func() {
		a, _, _ := tab.Get(0, 1)
		sink += a
		tab.Put(1, msg.Hint{Ino: 2, Authority: 2})
		tab.Del(1, 2)
	})
	if allocs != 0 {
		t.Fatalf("Get/Put/Del allocate: %v allocs/op", allocs)
	}
	_ = sink
}

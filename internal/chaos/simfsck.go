package chaos

import (
	"errors"
	"fmt"

	"dynmds/internal/cache"
	"dynmds/internal/cluster"
	"dynmds/internal/dirstore"
	"dynmds/internal/namespace"
	"dynmds/internal/net"
	"dynmds/internal/partition"
)

// Baseline captures pre-run facts Fsck needs to scope its checks.
// Capture it after cluster.New and before Run.
type Baseline struct {
	// MaxInodeID is the namespace's ID watermark before the run; any
	// live inode above it was created by the workload, so the dirstore
	// must know about it (pre-existing inodes were generated, not
	// written through an MDS).
	MaxInodeID namespace.InodeID
	// PriorMaxID is the watermark recorded in the checkpoint a restored
	// run resumed from (zero for fresh runs). IDs are never reused, so
	// the watermark must be monotone across restore.
	PriorMaxID namespace.InodeID
}

// Capture records the baseline for a freshly built cluster.
func Capture(cl *cluster.Cluster) Baseline {
	return Baseline{MaxInodeID: cl.Tree().MaxID()}
}

// Fsck is the cluster-wide consistency checker: it validates a
// finished, **drained** run (cluster.Drain — clients stopped, bounded
// message chains completed) against every invariant that must survive
// arbitrary fault schedules. It returns all violations joined into one
// error, or nil. The catalogue:
//
//   - structural: namespace tree, per-node cache, and subtree-table
//     invariants (authority is a partition: assign/mirror agreement,
//     each root owned by exactly one in-range node);
//   - overlay aging: no tombstoned base inode resolves by ID, no live
//     inode is reachable through a tombstoned entry (the parent's name
//     index must still return it), the tombstone count matches the
//     delete−resurrect accounting, and the ID watermark is monotone
//     across checkpoint/restore;
//   - authority: every reachable inode resolves to an in-range
//     authority; a node that crashed and was then confirmed down (and
//     never recovered) holds no delegated roots — failover reassigned
//     them and nothing may hand them back to a dead node;
//   - replica coherence: on every live node, each Replica-class cache
//     entry is recorded in the inode's replica set; no replica or
//     unflushed-writer bit names a node outside the cluster; after the
//     drain, unflushed-writer bits on reachable inodes belong only to
//     failed nodes (live replicas flush within the drain window);
//   - dirstore <-> namespace: every record whose inode still exists
//     agrees with it on kind (IDs are never reused); every reachable
//     inode created during the run is findable by (parent, name) in
//     some node's directory objects (dir-granular strategies);
//   - fabric conservation: per class sent == delivered + dropped, no
//     in-flight messages or leaked envelopes after the drain;
//   - op accounting: issued == completed + timedout per client, no
//     in-flight client requests, and requests crossed the client edge
//     exactly once per issue or retry;
//   - journal: each node's log working set is duplicate-free and within
//     the log's capacity, as are the recovery warm counts.
func Fsck(cl *cluster.Cluster, base Baseline) error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("simfsck: "+format, args...))
	}

	checkStructures(cl, fail)
	checkAging(cl, base, fail)
	checkNamespace(cl, base, fail)
	checkAuthority(cl, fail)
	checkReplicaEntries(cl, fail)
	checkDirstore(cl, base, fail)
	checkFabric(cl, fail)
	checkOps(cl, fail)
	checkJournal(cl, fail)

	return errors.Join(errs...)
}

// checkStructures runs the per-structure invariant checkers.
func checkStructures(cl *cluster.Cluster, fail func(string, ...any)) {
	if err := cl.Tree().CheckInvariants(); err != nil {
		fail("namespace: %v", err)
	}
	for i, n := range cl.Nodes {
		if err := n.Cache().CheckInvariants(); err != nil {
			fail("cache mds%d: %v", i, err)
		}
	}
	if t := subtreeTable(cl); t != nil {
		if err := t.CheckConsistency(); err != nil {
			fail("%v", err)
		}
	}
}

// checkAging validates the overlay-aging invariants: tombstone
// accounting balances, tombstoned base IDs are truly dead, every
// reachable inode is live (not tombstoned) and findable through its
// parent's name index — a lazily expanded directory must never leak a
// destroyed entry back to life — and the ID watermark never regresses
// across a restore.
func checkAging(cl *cluster.Cluster, base Baseline, fail func(string, ...any)) {
	tree := cl.Tree()
	if tree.MaxID() < base.MaxInodeID {
		fail("aging: MaxID %d below the pre-run watermark %d", tree.MaxID(), base.MaxInodeID)
	}
	if tree.MaxID() < base.PriorMaxID {
		fail("aging: MaxID %d regressed below the checkpoint watermark %d (restore lost allocations)",
			tree.MaxID(), base.PriorMaxID)
	}
	want := tree.BaseDeletes - tree.Resurrected
	if got := uint64(tree.TombstoneCount()); got != want {
		fail("aging: %d tombstones, accounting says %d deletes - %d resurrections = %d",
			got, tree.BaseDeletes, tree.Resurrected, want)
	}
	bad := 0
	tree.ForEachTombstone(func(id namespace.InodeID) {
		if bad >= 3 {
			return
		}
		if ino, ok := tree.ByID(id); ok {
			fail("aging: tombstoned inode %d still resolves to %s", id, ino.Path())
			bad++
		}
	})
	bad = 0
	tree.Walk(func(ino *namespace.Inode) bool {
		if bad >= 3 {
			return false
		}
		if tree.Tombstoned(ino.ID) {
			fail("aging: reachable inode %s (id %d) is tombstoned", ino.Path(), ino.ID)
			bad++
		}
		if p := ino.Parent(); p != nil {
			got, ok := p.LookupChild(ino.Name())
			if !ok || got != ino {
				fail("aging: %s (id %d) not reachable through its parent's name index", ino.Path(), ino.ID)
				bad++
			}
		}
		return true
	})
}

// subtreeTable returns the delegation table for subtree strategies, nil
// for hash-based ones.
func subtreeTable(cl *cluster.Cluster) *partition.SubtreeTable {
	if cl.Dyn != nil {
		return cl.Dyn.Table
	}
	if s, ok := cl.Strategy.(*partition.StaticSubtree); ok {
		return s.Table
	}
	return nil
}

// checkNamespace walks every reachable inode once, validating the
// per-inode tag invariants: authority in range, replica and
// unflushed-writer bitmasks confined to real nodes, and — after the
// drain — unflushed-writer bits only on failed nodes (a live replica's
// flusher ticks at least twice within the drain window; inodes
// destroyed while dirty are unreachable and exempt by design).
func checkNamespace(cl *cluster.Cluster, base Baseline, fail func(string, ...any)) {
	n := len(cl.Nodes)
	var outOfRange uint64
	if n < 64 {
		outOfRange = ^uint64(0) << uint(n)
	}
	bad := 0
	cl.Tree().Walk(func(ino *namespace.Inode) bool {
		if bad >= 5 { // cap the error spam; one walk still covers all checks
			return false
		}
		if a := cl.Strategy.Authority(ino); a < 0 || a >= n {
			fail("authority: %s resolves to out-of-range mds %d", ino.Path(), a)
			bad++
		}
		tags, ok := ino.Aux.(*partition.Tags)
		if !ok || tags == nil {
			return true
		}
		if bits := tags.ReplicaSet & outOfRange; bits != 0 {
			fail("replica set of %s names nodes outside the cluster (mask %#x, %d nodes)",
				ino.Path(), bits, n)
			bad++
		}
		if bits := tags.UnflushedWriters & outOfRange; bits != 0 {
			fail("unflushed-writer set of %s names nodes outside the cluster (mask %#x, %d nodes)",
				ino.Path(), bits, n)
			bad++
		}
		for i := 0; i < n && i < 64; i++ {
			if tags.UnflushedWriters&(1<<uint(i)) != 0 && !cl.Nodes[i].Failed() {
				fail("unflushed write on %s held by live mds%d after drain", ino.Path(), i)
				bad++
				break
			}
		}
		return true
	})
}

// checkAuthority verifies failover completed: a node that is both
// failed and suspicion-confirmed down — with the confirmation at or
// after its last crash, and no recovery since — must own no delegated
// roots, provided at least one node is fully live to receive them.
// (An undetected crash may legitimately still own roots: detection is
// traffic-driven. A node marked down before its crash may have been
// re-delegated to while it was still alive, so only post-crash
// confirmations are conclusive.)
func checkAuthority(cl *cluster.Cluster, fail func(string, ...any)) {
	t := subtreeTable(cl)
	if t == nil || cl.Dyn == nil {
		return // only the dynamic strategy reassigns on failure
	}
	survivor := false
	for i, node := range cl.Nodes {
		if !node.Failed() && !cl.NodeDown(i) {
			survivor = true
			break
		}
	}
	if !survivor {
		return // nowhere to fail over to; the invariant is vacuous
	}
	last := func(events []cluster.FaultEvent, node int) (at int64, ok bool) {
		for _, ev := range events {
			if ev.Node == node {
				at, ok = int64(ev.At), true
			}
		}
		return at, ok
	}
	for i, node := range cl.Nodes {
		if !node.Failed() || !cl.NodeDown(i) {
			continue
		}
		crashAt, crashed := last(cl.Failures, i)
		if !crashed {
			continue
		}
		if recAt, rec := last(cl.Recoveries, i); rec && recAt >= crashAt {
			continue
		}
		downAt, down := last(cl.Downs, i)
		if !down || downAt < crashAt {
			continue
		}
		if roots := t.RootsOf(i); len(roots) > 0 {
			fail("failover: dead mds%d (crashed, confirmed down) still owns %d delegated roots, first %s",
				i, len(roots), roots[0].Path())
		}
	}
}

// checkReplicaEntries verifies cache/replica-set agreement on live
// nodes: every Replica-class entry must be recorded in its inode's
// replica set (the insert paths set the bit; only the node's own
// eviction clears it). The converse — bit implies cached — does not
// hold and is not checked: bulk removals drop entries without
// notifications by design.
func checkReplicaEntries(cl *cluster.Cluster, fail func(string, ...any)) {
	for i, node := range cl.Nodes {
		if node.Failed() {
			continue
		}
		bad := 0
		node.Cache().ForEach(func(e *cache.Entry) {
			if e.Class != cache.Replica || bad >= 3 {
				return
			}
			tags, ok := e.Ino.Aux.(*partition.Tags)
			if !ok || !tags.HasReplica(i) {
				fail("replica entry for %s cached on live mds%d but absent from its replica set",
					e.Ino.Path(), i)
				bad++
			}
		})
	}
}

// checkDirstore cross-checks the long-term tier against the namespace.
func checkDirstore(cl *cluster.Cluster, base Baseline, fail func(string, ...any)) {
	tree := cl.Tree()
	// (a) Records never contradict a live inode's kind: inode IDs are
	// never reused and a file cannot become a directory, so even a
	// record left stale by an authority migration must agree on kind.
	for i, node := range cl.Nodes {
		dirs := node.Store().Dirs
		if dirs == nil {
			continue
		}
		bad := 0
		dirs.ForEach(func(dir namespace.InodeID, t *dirstore.Tree) {
			if err := t.CheckInvariants(); err != nil {
				fail("dirstore mds%d dir %d: %v", i, dir, err)
				bad++
			}
			t.Range(func(rec dirstore.Record) bool {
				ino, ok := tree.ByID(rec.Ino)
				if ok && ino.Kind != rec.Kind {
					fail("dirstore mds%d: record %q in dir %d has kind %v, inode %d is %v",
						i, rec.Name, dir, rec.Kind, rec.Ino, ino.Kind)
					bad++
				}
				return bad < 3
			})
		})
	}
	// (b) Every reachable inode created during the run is findable by
	// its current (parent, name) on some node: the applying MDS wrote
	// the record in the same event as the namespace mutation, crashes
	// do not erase disk, and renames re-record under the new parent.
	if !cl.Strategy.DirGranular() {
		return
	}
	for _, node := range cl.Nodes {
		if node.Store().Dirs == nil {
			return // directory objects disabled in this configuration
		}
	}
	missing := 0
	tree.Walk(func(ino *namespace.Inode) bool {
		if missing >= 5 {
			return false
		}
		if ino.ID <= base.MaxInodeID || ino.Parent() == nil {
			return true
		}
		found := false
		for _, node := range cl.Nodes {
			if t, ok := node.Store().Dirs.Object(ino.Parent().ID); ok {
				if rec, ok := t.Get(ino.Name()); ok && rec.Ino == ino.ID {
					found = true
					break
				}
			}
		}
		if !found {
			fail("dirstore: run-created inode %s (id %d) has no record under (dir %d, %q) on any node",
				ino.Path(), ino.ID, ino.Parent().ID, ino.Name())
			missing++
		}
		return true
	})
}

// checkFabric verifies message conservation after the drain.
func checkFabric(cl *cluster.Cluster, fail func(string, ...any)) {
	if n := cl.Fab.InFlight(); n != 0 {
		fail("fabric: %d messages still in flight after drain", n)
	}
	if n := cl.Fab.LiveEnvelopes(); n != 0 {
		fail("fabric: %d envelopes leaked", n)
	}
	for c := 0; c < net.NumClasses; c++ {
		cs := cl.Fab.Class(net.Class(c))
		if cs.Sent != cs.Delivered+cs.Dropped {
			fail("fabric %s: sent %d != delivered %d + dropped %d",
				net.Class(c), cs.Sent, cs.Delivered, cs.Dropped)
		}
	}
}

// checkOps verifies client-side op accounting.
func checkOps(cl *cluster.Cluster, fail func(string, ...any)) {
	if err := cl.DrainCheck(); err != nil {
		fail("%v", err)
	}
	var issued, retries uint64
	for _, c := range cl.Clients {
		issued += c.Stats.Issued
		retries += c.Stats.Retries
	}
	if p := cl.Pop; p != nil {
		// Open-loop accounting: leased hits complete locally and never
		// cross the edge; retransmissions cross it once more per retry.
		issued += p.Issued() - p.LeaseHits()
		retries += p.Retries()
	}
	if req := cl.Fab.Class(net.Request); req.Sent != issued+retries {
		fail("ops: %d requests crossed the client edge, clients issued %d + retried %d",
			req.Sent, issued, retries)
	}
	checkLeases(cl, fail)
}

// checkLeases verifies the lease plane left no coherence holes: every
// unexpired, current-generation slab slot is known to the registry
// (Plane.Dangling), and every delivered recall was acknowledged to its
// authority — acks are sent exactly on delivery, so the identity holds
// even when a fault plane drops recall notices.
func checkLeases(cl *cluster.Cluster, fail func(string, ...any)) {
	if cl.Lease == nil {
		return
	}
	if n := cl.Lease.Dangling(cl.Eng.Now()); n != 0 {
		fail("leases: %d dangling slab slots (valid at a client, unknown to the registry)", n)
	}
	recall := cl.Fab.Class(net.LeaseRecall)
	ack := cl.Fab.Class(net.LeaseAck)
	if ack.Sent != recall.Delivered {
		fail("leases: %d acks sent for %d delivered recalls", ack.Sent, recall.Delivered)
	}
}

// checkJournal verifies each node's bounded log is well-formed and the
// recovery warm counts are plausible. (Recover() pre-warms from the
// log's distinct working set; entries for destroyed inodes are skipped
// by design, so warmed <= capacity is the strongest post-hoc bound.)
func checkJournal(cl *cluster.Cluster, fail func(string, ...any)) {
	capacity := cl.Cfg.MDS.Storage.LogCapacity
	if capacity < 1 {
		capacity = 1 // storage.New clamps the same way
	}
	for i, node := range cl.Nodes {
		ws := node.Store().WorkingSet()
		if len(ws) > capacity {
			fail("journal mds%d: working set %d exceeds log capacity %d", i, len(ws), capacity)
		}
		seen := make(map[namespace.InodeID]bool, len(ws))
		for _, id := range ws {
			if seen[id] {
				fail("journal mds%d: duplicate id %d in working set", i, id)
				break
			}
			seen[id] = true
		}
	}
	for _, ev := range cl.Recoveries {
		if ev.Warmed < 0 || ev.Warmed > capacity {
			fail("journal: recovery of mds%d warmed %d records, log capacity %d",
				ev.Node, ev.Warmed, capacity)
		}
	}
}

package dirstore

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dynmds/internal/namespace"
)

func rec(name string) Record {
	return Record{Name: name, Ino: namespace.InodeID(len(name)), Kind: namespace.File}
}

func TestInsertGetDelete(t *testing.T) {
	tr := New(4)
	names := []string{"m", "a", "z", "k", "b", "q", "x", "c", "d", "e"}
	for i, n := range names {
		w, err := tr.Insert(rec(n))
		if err != nil {
			t.Fatal(err)
		}
		if w < 1 {
			t.Fatalf("insert wrote %d nodes", w)
		}
		if tr.Len() != i+1 {
			t.Fatalf("len = %d, want %d", tr.Len(), i+1)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range names {
		r, ok := tr.Get(n)
		if !ok || r.Name != n {
			t.Fatalf("Get(%q) = %v %v", n, r, ok)
		}
	}
	if _, ok := tr.Get("nope"); ok {
		t.Fatal("found absent key")
	}
	for i, n := range names {
		w, ok := tr.Delete(n)
		if !ok || w < 1 {
			t.Fatalf("Delete(%q) = %d %v", n, w, ok)
		}
		if tr.Len() != len(names)-i-1 {
			t.Fatalf("len after delete = %d", tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after deleting %q: %v", n, err)
		}
	}
	if _, ok := tr.Delete("m"); ok {
		t.Fatal("deleted absent key")
	}
}

func TestInsertReplaces(t *testing.T) {
	tr := New(4)
	if _, err := tr.Insert(Record{Name: "a", Size: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Insert(Record{Name: "a", Size: 2}); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d after replace", tr.Len())
	}
	r, _ := tr.Get("a")
	if r.Size != 2 {
		t.Fatalf("replace lost update: %+v", r)
	}
}

func TestEmptyNameRejected(t *testing.T) {
	tr := New(4)
	if _, err := tr.Insert(Record{}); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestRangeOrdered(t *testing.T) {
	tr := New(5)
	var names []string
	for i := 0; i < 300; i++ {
		n := fmt.Sprintf("f%05d", (i*7919)%100000)
		names = append(names, n)
		if _, err := tr.Insert(rec(n)); err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(names)
	var got []string
	tr.Range(func(r Record) bool {
		got = append(got, r.Name)
		return true
	})
	if len(got) != len(names) {
		t.Fatalf("ranged %d, want %d", len(got), len(names))
	}
	for i := range names {
		if got[i] != names[i] {
			t.Fatalf("order broken at %d: %q vs %q", i, got[i], names[i])
		}
	}
	// Early stop.
	count := 0
	tr.Range(func(r Record) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestIncrementalWriteCostIsLogarithmic(t *testing.T) {
	tr := New(8)
	for i := 0; i < 10000; i++ {
		if _, err := tr.Insert(rec(fmt.Sprintf("e%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	h := tr.Height()
	// One more insert rewrites roughly one path: height + a possible
	// split chain, never the whole object.
	w, err := tr.Insert(rec("zzz-new"))
	if err != nil {
		t.Fatal(err)
	}
	if w > 2*h+2 {
		t.Fatalf("insert wrote %d nodes for height %d", w, h)
	}
	if n := tr.Nodes(); w >= n/10 {
		t.Fatalf("incremental update rewrote %d of %d nodes", w, n)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	tr := New(4)
	for i := 0; i < 100; i++ {
		if _, err := tr.Insert(rec(fmt.Sprintf("s%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	snap := tr.Snapshot()
	if snap.Len() != tr.Len() {
		t.Fatal("snapshot size mismatch")
	}
	// Mutate the live tree: inserts, replaces, deletes.
	for i := 0; i < 50; i++ {
		if _, ok := tr.Delete(fmt.Sprintf("s%03d", i)); !ok {
			t.Fatal("delete failed")
		}
	}
	if _, err := tr.Insert(Record{Name: "s099", Size: 42}); err != nil {
		t.Fatal(err)
	}
	// The snapshot still sees the old state.
	if snap.Len() != 100 {
		t.Fatalf("snapshot len changed: %d", snap.Len())
	}
	for i := 0; i < 100; i++ {
		r, ok := snap.Get(fmt.Sprintf("s%03d", i))
		if !ok {
			t.Fatalf("snapshot lost s%03d", i)
		}
		if r.Name == "s099" && r.Size != 0 {
			t.Fatal("snapshot saw post-snapshot update")
		}
	}
	if err := snap.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// And the live tree sees the new state.
	if _, ok := tr.Get("s000"); ok {
		t.Fatal("live tree kept deleted key")
	}
	if r, _ := tr.Get("s099"); r.Size != 42 {
		t.Fatal("live tree lost update")
	}
}

func TestOrderClamped(t *testing.T) {
	tr := New(1)
	if tr.Order() != MinOrder {
		t.Fatalf("order = %d", tr.Order())
	}
	if tr.Height() != 1 || tr.Nodes() != 1 || tr.Len() != 0 {
		t.Fatal("empty tree shape wrong")
	}
}

// Property: against a map reference model, random workloads agree and
// invariants hold at every step.
func TestBTreeMatchesReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New(4 + r.Intn(6))
		ref := map[string]Record{}
		for op := 0; op < 800; op++ {
			name := fmt.Sprintf("k%03d", r.Intn(200))
			switch r.Intn(3) {
			case 0, 1:
				rec := Record{Name: name, Size: int64(op)}
				if _, err := tr.Insert(rec); err != nil {
					return false
				}
				ref[name] = rec
			case 2:
				_, ok := tr.Delete(name)
				_, refOK := ref[name]
				if ok != refOK {
					return false
				}
				delete(ref, name)
			}
			if tr.Len() != len(ref) {
				return false
			}
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		for name, want := range ref {
			got, ok := tr.Get(name)
			if !ok || got.Size != want.Size {
				return false
			}
		}
		count := 0
		tr.Range(func(Record) bool { count++; return true })
		return count == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: COW means a snapshot taken at any point is never affected
// by later mutations.
func TestSnapshotProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New(4)
		for i := 0; i < 100; i++ {
			if _, err := tr.Insert(rec(fmt.Sprintf("p%03d", r.Intn(300)))); err != nil {
				return false
			}
		}
		snap := tr.Snapshot()
		before := map[string]bool{}
		snap.Range(func(rc Record) bool { before[rc.Name] = true; return true })
		for i := 0; i < 100; i++ {
			name := fmt.Sprintf("p%03d", r.Intn(300))
			if r.Intn(2) == 0 {
				_, _ = tr.Delete(name)
			} else {
				_, _ = tr.Insert(rec(name))
			}
		}
		after := map[string]bool{}
		snap.Range(func(rc Record) bool { after[rc.Name] = true; return true })
		if len(before) != len(after) {
			return false
		}
		for k := range before {
			if !after[k] {
				return false
			}
		}
		return snap.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	tr := New(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Insert(rec(fmt.Sprintf("b%07d", i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeGet(b *testing.B) {
	tr := New(16)
	for i := 0; i < 10000; i++ {
		if _, err := tr.Insert(rec(fmt.Sprintf("b%07d", i))); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(fmt.Sprintf("b%07d", i%10000))
	}
}

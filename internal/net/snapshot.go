package net

import (
	"fmt"

	"dynmds/internal/sim"
	"dynmds/internal/snap"
)

// Checkpoint codec. Called only at quiescence: no message may be in
// flight, so only counters, link high-water marks, busy horizons, and
// mailbox sequence numbers are state. Envelope pools are rebuilt empty
// (pool occupancy is unobservable); mailbox seq is serialized because
// it never resets and orders equal-time cross-shard deliveries.

func writeLink(w *snap.Writer, l *Link) {
	w.U64(l.Stats.Messages)
	w.U64(l.Stats.Bytes)
	w.Int(l.Stats.MaxDepth)
	w.I64(int64(l.BusyUntil))
}

func readLink(r *snap.Reader, l *Link) {
	l.Stats.Messages = r.U64()
	l.Stats.Bytes = r.U64()
	l.Stats.MaxDepth = r.Int()
	l.BusyUntil = sim.Time(r.I64())
}

func writeClassLane(w *snap.Writer, lane *[NumClasses]ClassStats) {
	for c := range lane {
		w.U64(lane[c].Sent)
		w.U64(lane[c].Delivered)
		w.U64(lane[c].Dropped)
		w.U64(lane[c].Bytes)
	}
}

func readClassLane(r *snap.Reader, lane *[NumClasses]ClassStats) {
	for c := range lane {
		lane[c].Sent = r.U64()
		lane[c].Delivered = r.U64()
		lane[c].Dropped = r.U64()
		lane[c].Bytes = r.U64()
	}
}

// SnapshotTo serializes the fabric. Panics unless fully drained.
func (f *Fabric) SnapshotTo(w *snap.Writer) {
	if n := f.InFlight(); n != 0 {
		panic(fmt.Sprintf("net: snapshot with %d messages in flight", n))
	}
	if n := f.LiveEnvelopes(); n != 0 {
		panic(fmt.Sprintf("net: snapshot with %d live envelopes", n))
	}
	if n := f.PendingMail(); n != 0 {
		panic(fmt.Sprintf("net: snapshot with %d queued cross-shard deliveries", n))
	}
	w.Int(len(f.links))
	for i := range f.links {
		if f.links[i].depth != 0 {
			panic("net: snapshot with nonzero link depth")
		}
		writeLink(w, &f.links[i])
	}
	writeClassLane(w, &f.class)
	if f.sh == nil {
		w.Int(-1)
		return
	}
	w.Int(f.sh.k)
	for i := 0; i < f.sh.k; i++ {
		writeClassLane(w, &f.sh.class[i])
		for j := range f.sh.edgeRows[i] {
			if f.sh.edgeRows[i][j].depth != 0 {
				panic("net: snapshot with nonzero edge-lane depth")
			}
			writeLink(w, &f.sh.edgeRows[i][j])
		}
		for j := range f.sh.mail[i] {
			w.U64(f.sh.mail[i][j].seq)
		}
	}
}

// RestoreFrom applies a snapshot onto a freshly built fabric with the
// same endpoint count and sharding.
func (f *Fabric) RestoreFrom(r *snap.Reader) error {
	if n := r.Int(); n != len(f.links) {
		return fmt.Errorf("net: snapshot has %d links, built fabric has %d", n, len(f.links))
	}
	for i := range f.links {
		readLink(r, &f.links[i])
	}
	readClassLane(r, &f.class)
	k := r.Int()
	if k < 0 {
		if f.sh != nil {
			return fmt.Errorf("net: snapshot is unsharded, built fabric is sharded")
		}
		return nil
	}
	if f.sh == nil || k != f.sh.k {
		return fmt.Errorf("net: snapshot has %d fabric shards, built fabric does not match", k)
	}
	for i := 0; i < k; i++ {
		readClassLane(r, &f.sh.class[i])
		for j := range f.sh.edgeRows[i] {
			readLink(r, &f.sh.edgeRows[i][j])
		}
		for j := range f.sh.mail[i] {
			f.sh.mail[i][j].seq = r.U64()
		}
	}
	return nil
}

package cluster

import (
	"reflect"
	"testing"
	"time"

	"dynmds/internal/net"
	"dynmds/internal/sim"
)

// stripWallTimes zeroes the wall-clock accounting, which is the only
// nondeterministic part of a Result.
func stripWallTimes(r *Result) *Result {
	r.SetupWall = 0
	r.RunWall = 0
	return r
}

func runConfig(t *testing.T, cfg Config) (*Cluster, *Result) {
	t.Helper()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cl, cl.Run()
}

// TestBadFaultScheduleRejected checks New fails fast on malformed
// schedules and on node references outside the cluster.
func TestBadFaultScheduleRejected(t *testing.T) {
	cfg := smallConfig(StratDynamic)
	cfg.Faults = "boom@1s:mds0"
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown fault kind accepted")
	}
	cfg.Faults = "crash@1s:mds9" // NumMDS is 3
	if _, err := New(cfg); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

// TestFaultyMessageConservation extends the fabric conservation
// identity to faulty runs: with a mid-run crash window and random
// message drops, every message sent was either delivered or dropped,
// no pooled envelope leaked, and after the drain every issued client
// request is accounted completed or timed out — nothing hangs.
func TestFaultyMessageConservation(t *testing.T) {
	for _, s := range []string{StratDynamic, StratFileHash} {
		s := s
		t.Run(s, func(t *testing.T) {
			t.Parallel()
			cfg := fig2QuickConfig(s)
			cfg.Faults = "crash@3s-6s:mds1,drop@0.02:all"
			cl, res := runConfig(t, cfg)
			drain(cl)

			if n := cl.Fab.InFlight(); n != 0 {
				t.Errorf("in-flight after drain = %d", n)
			}
			if n := cl.Fab.LiveEnvelopes(); n != 0 {
				t.Errorf("live envelopes after drain = %d", n)
			}
			var dropped uint64
			for c := 0; c < net.NumClasses; c++ {
				cs := cl.Fab.Class(net.Class(c))
				if cs.Sent != cs.Delivered+cs.Dropped {
					t.Errorf("%s: sent %d != delivered %d + dropped %d",
						net.Class(c), cs.Sent, cs.Delivered, cs.Dropped)
				}
				dropped += cs.Dropped
			}
			if dropped == 0 {
				t.Error("drop rule never fired")
			}

			// Client-side conservation: requests cross the edge once per
			// send (issue or retry), and the drain orphans nothing.
			if err := cl.DrainCheck(); err != nil {
				t.Error(err)
			}
			var issued, retries uint64
			for _, c := range cl.Clients {
				issued += c.Stats.Issued
				retries += c.Stats.Retries
			}
			req := cl.Fab.Class(net.Request)
			if req.Sent != issued+retries {
				t.Errorf("requests sent %d != issued %d + retries %d",
					req.Sent, issued, retries)
			}
			if retries == 0 {
				t.Error("no retries despite crash+drop schedule")
			}
			if len(res.Failures) != 1 || len(res.Recoveries) != 1 {
				t.Errorf("events: failures=%v recoveries=%v", res.Failures, res.Recoveries)
			}
		})
	}
}

// TestFaultDeterminism checks the whole-run reproducibility contract
// under an aggressive schedule: same seed + same schedule must give a
// bit-identical Result, wall-clock accounting aside.
func TestFaultDeterminism(t *testing.T) {
	cfg := fig2QuickConfig(StratDynamic)
	cfg.Faults = "crash@3s-6s:mds1,drop@0.02:all,lag@2s-5s:all+500us,slow@4s-7s:mds2x3"
	_, a := runConfig(t, cfg)
	_, b := runConfig(t, cfg)
	if !reflect.DeepEqual(stripWallTimes(a), stripWallTimes(b)) {
		t.Errorf("faulty runs diverged:\n%s\n%s", a, b)
	}
	if a.Retries == 0 || a.Suspicions == 0 {
		t.Errorf("schedule had no effect: retries=%d suspicions=%d", a.Retries, a.Suspicions)
	}
}

// TestEmptyScheduleMatchesBaseline checks an all-whitespace schedule
// leaves fault injection fully disabled: the run is bit-identical to
// one with no Faults field at all.
func TestEmptyScheduleMatchesBaseline(t *testing.T) {
	base := fig2QuickConfig(StratDynamic)
	ws := base
	ws.Faults = "  ,  "
	_, a := runConfig(t, base)
	_, b := runConfig(t, ws)
	if b.FaultSchedule != "" {
		t.Errorf("whitespace schedule recorded as %q", b.FaultSchedule)
	}
	if !reflect.DeepEqual(stripWallTimes(a), stripWallTimes(b)) {
		t.Errorf("whitespace schedule changed the run:\n%s\n%s", a, b)
	}
}

// TestInertPlaneMatchesNoPlane checks the fault plane itself is
// invisible when no rule can fire: with the resilience knobs pinned
// equal, a run with an attached plane whose only drop rule has p=0 is
// bit-identical to a run with no plane at all. This is what guarantees
// the plane consumes no randomness for unmatched messages.
func TestInertPlaneMatchesNoPlane(t *testing.T) {
	pin := func(cfg *Config) {
		cfg.Client.RetryTimeout = defaultRetryTimeout
		cfg.Client.MaxRetries = defaultMaxRetries
		cfg.MDS.FetchTimeout = defaultFetchTimeout
		cfg.MDS.FwdTimeout = defaultFwdTimeout
		cfg.SuspicionThreshold = defaultSuspicionThreshold
	}
	noPlane := fig2QuickConfig(StratDynamic)
	pin(&noPlane)
	withPlane := noPlane
	withPlane.Faults = "drop@0:all"

	_, a := runConfig(t, noPlane)
	_, b := runConfig(t, withPlane)
	stripWallTimes(a)
	stripWallTimes(b)
	// Blank the fields that exist only because fault mode is on; the
	// simulation outcome itself must be untouched.
	b.FaultSchedule = ""
	b.CompletedOps = nil
	a.Retries, b.Retries = 0, 0
	a.TimedOut, b.TimedOut = 0, 0
	a.Suspicions, b.Suspicions = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("inert plane changed the run:\n%+v\n%+v", a, b)
	}
}

// TestCrashAutoFailoverDynamic is the headline scenario: a scheduled
// mid-run crash of one node under the dynamic strategy is detected by
// the suspicion protocol, which re-delegates the dead node's subtrees
// to the least-loaded survivors — no manual FailNode call — and the
// node rejoins warm at recovery.
func TestCrashAutoFailoverDynamic(t *testing.T) {
	const victim = 1
	cfg := fig2QuickConfig(StratDynamic)
	cfg.Duration = 12 * sim.Second
	cfg.Warmup = 2 * sim.Second
	cfg.Faults = "crash@4s-8s:mds1"
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Just before recovery the victim must have been stripped of its
	// delegations by the suspicion-triggered failover.
	rootsDuringOutage := -1
	cl.Eng.At(7900*sim.Millisecond, func() {
		rootsDuringOutage = len(cl.Dyn.Table.RootsOf(victim))
	})
	res := cl.Run()

	if len(res.Downs) == 0 || res.Downs[0].Node != victim {
		t.Fatalf("suspicion never confirmed the crash: downs=%v", res.Downs)
	}
	if res.Downs[0].At < 4*sim.Second {
		t.Errorf("down confirmed at %v, before the crash", res.Downs[0].At)
	}
	if rootsDuringOutage != 0 {
		t.Errorf("victim still owned %d subtrees during the outage", rootsDuringOutage)
	}
	if res.Suspicions == 0 {
		t.Error("no suspicion strikes recorded")
	}
	if len(res.Recoveries) != 1 || res.Recoveries[0].Warmed == 0 {
		t.Errorf("recovery did not warm the cache: %v", res.Recoveries)
	}
	stuck := 0
	for _, c := range cl.Clients {
		if c.Stats.Completed == 0 {
			stuck++
		}
	}
	if stuck > 0 {
		t.Fatalf("%d clients never completed an op through the outage", stuck)
	}
	if res.CompletedOps == nil {
		t.Fatal("availability series missing")
	}
	// Throughput recovers: the last full second must complete ops again.
	last := int(cfg.Duration/cfg.SeriesBucket) - 1
	if res.CompletedOps.Sum(last) == 0 {
		t.Error("no completions in the final bucket: cluster did not recover")
	}
}

// TestResultWallClockOnlyNondeterminism guards the stripWallTimes
// helper itself: two identical fault-free runs must agree on
// everything except the wall fields.
func TestResultWallClockOnlyNondeterminism(t *testing.T) {
	cfg := smallConfig(StratStatic)
	_, a := runConfig(t, cfg)
	_, b := runConfig(t, cfg)
	a.SetupWall, b.SetupWall = time.Duration(0), time.Duration(0)
	a.RunWall, b.RunWall = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("fault-free runs diverged:\n%+v\n%+v", a, b)
	}
}

#!/usr/bin/env sh
# Tier-1 gate: vet, build, and run the full test suite under the race
# detector, then smoke-test the figure harness and emit a perf report.
# Run from the repository root; any failure fails the script.
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
# -race on the small CI box is ~6x slower than native; give packages
# headroom past go test's 10m default so a busy host doesn't flake.
go test -race -timeout 30m ./...

# Figure smoke run: exercises the sweep runner, the snapshot cache, and
# the copy-on-write overlay path end to end at reduced scale, under
# both fabric latency models.
go run ./cmd/mdsim -fig 2 -quick
go run ./cmd/mdsim -fig 2 -quick -net-model queued

# Availability experiment under the race detector: fault injection,
# client retries, suspicion-driven failover and log-warmed recovery at
# reduced scale.
go run -race ./cmd/mdsim -fig avail -quick

# Chaos fuzz budget under the race detector: 50 fixed-seed random
# fault schedules, each against all five strategies, every finished
# run checked by simfsck. Any invariant violation exits non-zero (and
# prints a shrunk minimal repro with its replay line).
go run -race ./cmd/mdsim -chaos-runs 50 -chaos-seed 1

# Sharded-engine smoke under the race detector: the conservative
# parallel executor at K=4 on the Figure 2 quick config, then a
# 10-schedule chaos batch at K=2 (fault schedules run the windowed
# executor single-threaded, so this checks the deferred/barrier path
# against simfsck rather than goroutine interleaving).
go run -race ./cmd/mdsim -strategy DynamicSubtree -mds 4 -clients 30 -users 100 -dur 10 -warmup 4 -shards 4
go run -race ./cmd/mdsim -chaos-runs 10 -chaos-seed 1 -shards 2

# Bad knobs must fail fast with a usage error, not start a simulation.
if go run ./cmd/mdsim -net-model bogus -fig 2 -quick 2>/dev/null; then
    echo "ci: unknown -net-model was accepted" >&2
    exit 1
fi
if go run ./cmd/mdsim -faults 'explode@1s:mds0' 2>/dev/null; then
    echo "ci: unknown -faults schedule was accepted" >&2
    exit 1
fi
if go run ./cmd/mdsim -shards -3 2>/dev/null; then
    echo "ci: negative -shards was accepted" >&2
    exit 1
fi
if go run ./cmd/mdsim -leases 2>/dev/null; then
    echo "ci: -leases without -open-loop was accepted" >&2
    exit 1
fi

# Scenario-plan engine: one library plan end to end under the race
# detector (acts retarget the live population mid-run), then the whole
# library at quick scale with the per-act bench report.
go run -race ./cmd/mdsim -plan simfs-campaign -quick
go run ./cmd/mdsim -list-plans >/dev/null
go run ./cmd/mdsim -plan all -quick -plan-json BENCH_8.json

# Bad plans must fail fast with a usage error before any event runs,
# exactly like bad -faults/-net-model knobs.
PLANTMP=$(mktemp -d)
trap 'rm -rf "$PLANTMP"' EXIT
cat > "$PLANTMP/bad-kind.plan" <<'EOF'
plan bad-kind
traffic clients=100 rate=1
duration 10s
act surge a @1s-2s
EOF
cat > "$PLANTMP/bad-overlap.plan" <<'EOF'
plan bad-overlap
traffic clients=100 rate=1
duration 10s
act phase a @1s-5s
act phase b @4s-6s
EOF
cat > "$PLANTMP/bad-rate.plan" <<'EOF'
plan bad-rate
traffic clients=100 rate=1
duration 10s
act phase a @1s-2s rate=x0
EOF
cat > "$PLANTMP/bad-hotspot.plan" <<'EOF'
plan bad-hotspot
fs users=8
traffic clients=100 rate=1
duration 10s
act hotspot a @1s-2s target=/no/such/path frac=0.5
EOF
for bad in bad-kind bad-overlap bad-rate bad-hotspot; do
    if go run ./cmd/mdsim -plan "$PLANTMP/$bad.plan" -quick 2>/dev/null; then
        echo "ci: $bad.plan was accepted" >&2
        exit 1
    fi
done
if go run ./cmd/mdsim -plan no-such-plan 2>/dev/null; then
    echo "ci: unknown -plan name was accepted" >&2
    exit 1
fi

# Open-loop traffic-plane smoke under the race detector: one million
# flyweight clients through the hierarchical timer wheels at K=4, with
# diurnal and burst modulation on. The arrival rate keeps the total
# budget (~30k ops) under cluster service capacity.
go run -race ./cmd/mdsim -open-loop 1000000 -open-rate 0.01 -mds 8 -users 40 \
    -dur 3 -warmup 1 -diurnal 0.3 -burst-prob 0.05 -shards 4

# Open-loop perf report (quick scale in CI; regenerate the committed
# BENCH_7.json with a full-scale run, which adds the 10M-client row:
# `go run ./cmd/mdsim -bench7-json BENCH_7.json`).
go run ./cmd/mdsim -bench7-json BENCH_7.quick.json -quick

# Flyweight memory gate: end-to-end heap delta per client at one
# million clients must stay at or under 64 bytes. The structural plane
# is ~41 B/client; the gate leaves headroom for pools and fs state
# while still forbidding any per-client boxed object from sneaking in.
BPC=$(awk '/"clients": 1000000,/{f=1} f && /"heap_bytes_per_client"/{gsub(/[",]/,""); print $2; exit}' BENCH_7.quick.json)
if [ -z "$BPC" ]; then
    echo "ci: no 1M-client heap_bytes_per_client in BENCH_7.quick.json" >&2
    exit 1
fi
if awk "BEGIN{exit !($BPC <= 64)}"; then
    echo "ci: open-loop heap ${BPC} B/client at 1M clients (gate: <= 64)"
else
    echo "ci: open-loop heap ${BPC} B/client at 1M clients exceeds the 64 B gate" >&2
    exit 1
fi

# Lease-plane smoke under the race detector: the hotspot duel sweeps
# all four coherence mechanisms (dumb/leases/fanout/both) across both
# subtree strategies with grant, recall, and fan-out traffic live.
go run -race ./cmd/mdsim -plan hotspot-duel -quick

# Hotspot-duel perf report (quick scale in CI; regenerate the committed
# BENCH_9.json with a full-scale run, which adds the 1M-client rows:
# `go run ./cmd/mdsim -bench9-json BENCH_9.json`).
go run ./cmd/mdsim -bench9-json BENCH_9.quick.json -quick

# Lease memory gate: the per-client traffic-plane footprint at 100k
# clients must stay at or under 64 B with the lease plane off and 96 B
# with it on. The lease slab costs exactly 24 B/client (two 12 B
# slots); the gates leave the same pool/fs headroom as the BENCH_7
# flyweight gate while forbidding any per-client boxed lease state.
awk '
/"mechanism":/ { gsub(/[",]/, ""); mech = $2 }
/"clients":/   { gsub(/[",]/, ""); cli = $2 }
/"plane_bytes_per_client":/ {
    gsub(/[",]/, ""); bpc = $2
    lim = (mech == "dumb" || mech == "fanout") ? 64 : 96
    if (cli == 100000) {
        seen++
        if (bpc > lim) {
            printf "ci: %s plane %s B/client at 100k clients exceeds the %d B gate\n", mech, bpc, lim
            bad = 1
        }
    }
}
END {
    if (seen < 4) { print "ci: missing 100k-client rows in BENCH_9.quick.json"; bad = 1 }
    exit bad
}' BENCH_9.quick.json
echo "ci: lease plane footprint gates passed (<= 64 B off / <= 96 B on at 100k clients)"

# Endurance smoke under the race detector: a short aging run with two
# checkpoints, each quiesced, simfsck-checked, and snapshotted.
ENDTMP=$(mktemp -d)
go run -race ./cmd/mdsim -open-loop 20000 -open-rate 0.05 -mds 4 -clients 40 \
    -dur 5 -warmup 1 -endure -checkpoint-every 2.5 -checkpoint-dir "$ENDTMP"

# Restore determinism assert: resuming from the first snapshot must
# reproduce the uninterrupted run's digest bit for bit.
FULL=$(go run ./cmd/mdsim -open-loop 20000 -open-rate 0.05 -mds 4 -clients 40 \
    -dur 5 -warmup 1 -endure -checkpoint-every 2.5 | sed -n 's/^digest: //p')
REST=$(go run ./cmd/mdsim -open-loop 20000 -open-rate 0.05 -mds 4 -clients 40 \
    -dur 5 -warmup 1 -endure -checkpoint-every 2.5 -restore "$ENDTMP/ck-000.snap" | sed -n 's/^digest: //p')
rm -rf "$ENDTMP"
if [ -z "$FULL" ] || [ "$FULL" != "$REST" ]; then
    echo "ci: restored endurance run diverged from the uninterrupted run" >&2
    echo "ci:   full:     $FULL" >&2
    echo "ci:   restored: $REST" >&2
    exit 1
fi
echo "ci: endurance restore determinism passed"

# Endurance knobs must fail fast with usage errors (exit 2), matching
# the -faults/-plan convention.
if go run ./cmd/mdsim -checkpoint-every 2 2>/dev/null; then
    echo "ci: -checkpoint-every without -endure was accepted" >&2
    exit 1
fi
if go run ./cmd/mdsim -open-loop 1000 -endure -checkpoint-every 0 2>/dev/null; then
    echo "ci: -endure with zero -checkpoint-every was accepted" >&2
    exit 1
fi

# Endurance perf report: degradation curves with the tombstone-GC fix
# off and on, restore bit-identity at K=0 and K=4, and a rolling chaos
# soak with simfsck at every checkpoint (quick scale in CI; regenerate
# the committed BENCH_10.json with a full-scale run:
# `go run ./cmd/mdsim -bench10-json BENCH_10.json`). The run itself
# fails on any restore divergence or soak violation.
go run ./cmd/mdsim -bench10-json BENCH_10.quick.json -quick

# Drift gates over the soak horizon: ops/sec at the last checkpoint may
# not fall more than 15% below the peak across the rolling crash
# cycles, and the compaction-fixed aging curve must stay within 5%.
awk '
/"fixed_drift":/ { gsub(/[",]/, ""); fixed = $2 }
/"drift":/       { gsub(/[",]/, ""); soak = $2 }
END {
    if (fixed == "" || soak == "") { print "ci: missing drift fields in BENCH_10.quick.json"; exit 1 }
    if (fixed > 0.05) { printf "ci: aged ops/s drift %s with compaction on exceeds the 5%% gate\n", fixed; exit 1 }
    if (soak > 0.15)  { printf "ci: soak ops/s drift %s exceeds the 15%% gate\n", soak; exit 1 }
    printf "ci: endurance drift gates passed (aged %s <= 0.05, soak %s <= 0.15)\n", fixed, soak
}' BENCH_10.quick.json

# Perf report (quick scale in CI; regenerate the committed BENCH_6.json
# with a full-scale run: `go run ./cmd/mdsim -bench-json BENCH_6.json
# -shards 8`). Includes the serial-vs-sharded measurement of the bench
# config and the chaos budget's pass/shrink stats; a chaos violation
# fails the bench.
go run ./cmd/mdsim -bench-json BENCH_6.quick.json -quick -shards 4

# Scaling gate: with >= 4 real cores, the sharded engine at K=4 must
# beat serial by >= 1.8x on the bench config. On smaller machines the
# target is unobservable (shards time-slice one core), so the gate is
# skipped with a log line; the bench above still records the honest
# shards/cores/speedup numbers.
CORES=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$CORES" -ge 4 ]; then
    SPEEDUP=$(sed -n 's/.*"sharded_speedup": \([0-9.]*\).*/\1/p' BENCH_6.quick.json)
    if [ -z "$SPEEDUP" ]; then
        echo "ci: no sharded_speedup in BENCH_6.quick.json" >&2
        exit 1
    fi
    if awk "BEGIN{exit !($SPEEDUP >= 1.8)}"; then
        echo "ci: sharded K=4 speedup ${SPEEDUP}x on $CORES cores (gate: >= 1.8x)"
    else
        echo "ci: sharded K=4 speedup ${SPEEDUP}x < 1.8x on $CORES cores" >&2
        exit 1
    fi
else
    echo "ci: $CORES core(s) detected; skipping the K=4 >= 1.8x scaling gate (needs >= 4)"
fi

package cluster

import (
	"testing"

	"dynmds/internal/sim"
)

func TestFailoverDynamic(t *testing.T) {
	cfg := smallConfig(StratDynamic)
	cfg.Client.RetryTimeout = 200 * sim.Millisecond
	cfg.Duration = 12 * sim.Second
	cfg.Warmup = 2 * sim.Second
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const victim = 1
	cl.Eng.At(4*sim.Second, func() {
		if err := cl.FailNode(victim); err != nil {
			t.Errorf("FailNode: %v", err)
		}
	})
	var warmed int
	cl.Eng.At(8*sim.Second, func() {
		var err error
		warmed, err = cl.RecoverNode(victim)
		if err != nil {
			t.Errorf("RecoverNode: %v", err)
		}
	})
	res := cl.Run()

	// The victim's subtrees were reassigned: survivors served its load.
	if len(cl.Dyn.Table.RootsOf(victim)) != 0 {
		// The balancer may migrate some back post-recovery; what must
		// not happen is the victim retaining everything through the
		// outage. Check that survivors now own former roots.
	}
	if res.MeasuredOps == 0 {
		t.Fatal("no ops measured")
	}
	// Clients retried through the outage rather than stalling forever:
	// every client should have completed ops after the failure window.
	var retries uint64
	stuck := 0
	for _, c := range cl.Clients {
		retries += c.Stats.Retries
		if c.Stats.Completed == 0 {
			stuck++
		}
	}
	if retries == 0 {
		t.Fatal("no client retries despite a node outage")
	}
	if stuck > 0 {
		t.Fatalf("%d clients never completed an op", stuck)
	}
	if warmed == 0 {
		t.Fatal("recovery warmed nothing from the log")
	}
	// Outstanding at end is at most one op per client (closed loop).
	var issued, completed uint64
	for _, c := range cl.Clients {
		issued += c.Stats.Issued
		completed += c.Stats.Completed
	}
	if issued-completed > uint64(len(cl.Clients)) {
		t.Fatalf("leaked requests: issued=%d completed=%d", issued, completed)
	}
}

func TestFailoverErrors(t *testing.T) {
	cl, err := New(smallConfig(StratDynamic))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.FailNode(99); err == nil {
		t.Fatal("out-of-range fail accepted")
	}
	if _, err := cl.RecoverNode(-1); err == nil {
		t.Fatal("out-of-range recover accepted")
	}
}

func TestFailoverStaticMarksDownOnly(t *testing.T) {
	cl, err := New(smallConfig(StratStatic))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.FailNode(0); err != nil {
		t.Fatal(err)
	}
	if !cl.Nodes[0].Failed() {
		t.Fatal("node not failed")
	}
}

func TestFailNodeAllDead(t *testing.T) {
	cfg := smallConfig(StratDynamic)
	cfg.NumMDS = 1
	cfg.ClientsPerMDS = 2
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.FailNode(0); err == nil {
		t.Fatal("failing the last node should error")
	}
}

func TestSharedOSDPoolBackend(t *testing.T) {
	cfg := smallConfig(StratDynamic)
	cfg.OSDs = 12
	cfg.OSDReplicas = 2
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Run()
	if res.MeasuredOps == 0 {
		t.Fatal("no ops with shared pool")
	}
	if cl.Pool == nil {
		t.Fatal("pool not constructed")
	}
	if cl.Pool.Stats.Reads == 0 {
		t.Fatal("no pool reads: storage not routed through OSDs")
	}
	if cl.Pool.Stats.Writes == 0 {
		t.Fatal("no pool writes: log appends not routed through OSDs")
	}
	// Node-local disks should be idle.
	for _, n := range cl.Nodes {
		if n.Store().ReadUtilization(cl.Eng.Now()) > 0 {
			t.Fatal("local disk used despite shared pool")
		}
	}
}

func TestSharedPoolSurvivesOSDFailure(t *testing.T) {
	cfg := smallConfig(StratDynamic)
	cfg.OSDs = 8
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One device down with two replicas per object: every object keeps
	// a live copy, so reads fail over and nothing is lost.
	cl.Eng.At(2*sim.Second, func() { _ = cl.Pool.SetDown(0, true) })
	res := cl.Run()
	if res.MeasuredOps == 0 {
		t.Fatal("no ops")
	}
	if cl.Pool.Stats.FailoverReads == 0 {
		t.Fatal("no failover reads despite downed OSD")
	}
	if cl.Pool.Stats.UnplacedErrors > 0 {
		t.Fatalf("lost objects: %d unplaced reads", cl.Pool.Stats.UnplacedErrors)
	}
}

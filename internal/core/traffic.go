package core

import (
	"dynmds/internal/namespace"
	"dynmds/internal/partition"
	"dynmds/internal/sim"
)

// TrafficControl implements the paper's flash-crowd defence (§4.4). MDS
// nodes monitor metadata popularity with decaying access counters (the
// MDS bumps the counter on every authoritative access); the counter
// approximates how widely an item appears in client caches because every
// reply that advertises an item also delivered it to a client. When an
// item becomes popular its authority replicates it across the cluster
// and replies start telling clients the item lives everywhere; when
// popularity decays the item is consolidated and replies point at the
// authority again. Client ignorance is thus managed so that no crowd of
// clients ever simultaneously believes an unreplicated item is in one
// place.
type TrafficControl struct {
	// Enabled gates the whole mechanism (Figure 7 contrasts on/off).
	Enabled bool
	// ReplicateThreshold is the decayed access count above which an
	// item is replicated cluster-wide.
	ReplicateThreshold float64
	// UnreplicateThreshold is the decayed count below which a
	// replicated item is consolidated back to its authority. Must be
	// below ReplicateThreshold (hysteresis).
	UnreplicateThreshold float64

	// PreemptiveThreshold, when > 0, implements the paper's suggested
	// improvement (§5.4): a non-authoritative node that forwards more
	// than this (decayed) number of requests for one item fetches a
	// replica preemptively, "without waiting to be told to do so",
	// shortening flash-crowd response time. Zero disables it.
	PreemptiveThreshold float64

	// Replications and Consolidations count policy transitions;
	// Preemptive counts replicas pulled by flooded non-authorities.
	Replications   uint64
	Consolidations uint64
	Preemptive     uint64
}

// DefaultTrafficControl returns the policy used by the experiments.
func DefaultTrafficControl() *TrafficControl {
	return &TrafficControl{
		Enabled:              true,
		ReplicateThreshold:   300,
		UnreplicateThreshold: 30,
	}
}

// Decision tells the MDS what to do after an access.
type Decision uint8

// Traffic-control decisions.
const (
	// Keep: no change to replication state.
	Keep Decision = iota
	// Replicate: push copies to the rest of the cluster now.
	Replicate
	// Consolidate: stop advertising replicas; they will expire.
	Consolidate
)

// Decide inspects the inode's (already bumped) popularity counter and
// returns the policy decision, updating the inode's replication flag.
// Callers apply the decision (pushing or expiring replicas) themselves.
func (tc *TrafficControl) Decide(now sim.Time, ino *namespace.Inode) Decision {
	if tc == nil || !tc.Enabled {
		return Keep
	}
	tags := partition.TagsOf(ino)
	if tags.Pop == nil {
		return Keep
	}
	v := tags.Pop.Value(now)
	switch {
	case !tags.ReplicatedAll && v >= tc.ReplicateThreshold:
		tags.ReplicatedAll = true
		tc.Replications++
		return Replicate
	case tags.ReplicatedAll && v < tc.UnreplicateThreshold:
		tags.ReplicatedAll = false
		tc.Consolidations++
		return Consolidate
	}
	return Keep
}

// Peek computes the policy decision without mutating anything: the
// popularity counter is read with DecayCounter.Peek and the replication
// flag is left untouched. Sharded windows use Peek so concurrent shards
// never write shared inode state mid-window; the matching flag flip and
// statistics land through Commit at the next barrier. When the counter
// was bumped at the same instant (the serial path defers nothing, so
// the Add has already run), Peek returns exactly what Decide would.
func (tc *TrafficControl) Peek(now sim.Time, ino *namespace.Inode) Decision {
	if tc == nil || !tc.Enabled {
		return Keep
	}
	tags := partition.TagsOf(ino)
	if tags.Pop == nil {
		return Keep
	}
	v := tags.Pop.Peek(now)
	switch {
	case !tags.ReplicatedAll && v >= tc.ReplicateThreshold:
		return Replicate
	case tags.ReplicatedAll && v < tc.UnreplicateThreshold:
		return Consolidate
	}
	return Keep
}

// Commit applies a previously peeked decision: it flips the inode's
// replication flag and counts the transition. The flag is re-checked so
// duplicate commits for the same inode within one window collapse into
// one transition. Returns whether the flip happened.
func (tc *TrafficControl) Commit(d Decision, ino *namespace.Inode) bool {
	if tc == nil || !tc.Enabled || d == Keep {
		return false
	}
	tags := partition.TagsOf(ino)
	switch d {
	case Replicate:
		if tags.ReplicatedAll {
			return false
		}
		tags.ReplicatedAll = true
		tc.Replications++
	case Consolidate:
		if !tags.ReplicatedAll {
			return false
		}
		tags.ReplicatedAll = false
		tc.Consolidations++
	}
	return true
}

// Replicated reports whether replies should advertise the item as
// available cluster-wide.
func (tc *TrafficControl) Replicated(ino *namespace.Inode) bool {
	if tc == nil || !tc.Enabled {
		return false
	}
	return partition.TagsOf(ino).ReplicatedAll
}

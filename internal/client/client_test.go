package client

import (
	"testing"

	"dynmds/internal/msg"
	"dynmds/internal/namespace"
	"dynmds/internal/partition"
	"dynmds/internal/sim"
	"dynmds/internal/workload"
)

// fakeNet records sends and can synthesize replies.
type fakeNet struct {
	n     int
	sends []struct {
		mds int
		req *msg.Request
	}
}

func (f *fakeNet) Send(i int, req *msg.Request) {
	f.sends = append(f.sends, struct {
		mds int
		req *msg.Request
	}{i, req})
}
func (f *fakeNet) NumMDS() int { return f.n }

// fixedGen always returns the same op.
type fixedGen struct{ op workload.Op }

func (g fixedGen) Next(now sim.Time, r *sim.RNG) (workload.Op, bool) { return g.op, true }
func (g fixedGen) Observe(rep *msg.Reply)                            {}

func testTree(t *testing.T) (*namespace.Tree, *namespace.Inode) {
	t.Helper()
	tr := namespace.NewTree()
	d, err := tr.Mkdir(tr.Root, "home")
	if err != nil {
		t.Fatal(err)
	}
	u, err := tr.Mkdir(d, "u0")
	if err != nil {
		t.Fatal(err)
	}
	f, err := tr.Create(u, "f")
	if err != nil {
		t.Fatal(err)
	}
	return tr, f
}

func TestClientComputableDirection(t *testing.T) {
	tr, f := testTree(t)
	_ = tr
	eng := sim.NewEngine()
	net := &fakeNet{n: 5}
	strat := partition.FileHash{N: 5}
	c := New(0, eng, Config{ThinkMean: sim.Millisecond}, sim.NewRNG(1), net, strat,
		fixedGen{workload.Op{Op: msg.Stat, Target: f}})
	c.Start(0)
	eng.RunUntil(sim.Millisecond)
	if len(net.sends) != 1 {
		t.Fatalf("sends = %d", len(net.sends))
	}
	if got, want := net.sends[0].mds, strat.Authority(f); got != want {
		t.Fatalf("directed to %d, want computed authority %d", got, want)
	}
	// Create ops route by would-be name.
	net2 := &fakeNet{n: 5}
	c2 := New(1, eng, Config{}, sim.NewRNG(2), net2, strat,
		fixedGen{workload.Op{Op: msg.Create, Target: f.Parent(), NewName: "x"}})
	c2.Start(0)
	eng.Run()
	if got, want := net2.sends[0].mds, strat.AuthorityForName(f.Parent(), "x"); got != want {
		t.Fatalf("create directed to %d, want %d", got, want)
	}
}

func TestDeepestKnownPrefixDirection(t *testing.T) {
	tr, f := testTree(t)
	_ = tr
	eng := sim.NewEngine()
	net := &fakeNet{n: 8}
	strat := partition.NewStaticSubtree(8, tr, 2)
	c := New(0, eng, Config{ThinkMean: sim.Millisecond}, sim.NewRNG(3), net, strat,
		fixedGen{workload.Op{Op: msg.Stat, Target: f}})

	// With no knowledge, direction is random; with a hint on the
	// parent dir, direction follows the hint.
	c.known.put(msg.Hint{Ino: f.Parent().ID, Authority: 6})
	c.Start(0)
	eng.RunUntil(sim.Millisecond)
	if net.sends[0].mds != 6 {
		t.Fatalf("directed to %d, want hinted 6", net.sends[0].mds)
	}
	// A deeper hint on the target itself wins.
	c.OnReply(&msg.Reply{
		Req:   net.sends[0].req,
		Hints: []msg.Hint{{Ino: f.ID, Authority: 3}},
	})
	eng.Run()
	if net.sends[1].mds != 3 {
		t.Fatalf("directed to %d, want deeper hint 3", net.sends[1].mds)
	}
	// Replicated hints spread direction across the cluster.
	c.known.put(msg.Hint{Ino: f.ID, Authority: 3, Replicated: true})
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		req := &msg.Request{Target: f, Op: msg.Stat}
		seen[c.direct(req)] = true
	}
	if len(seen) < 3 {
		t.Fatalf("replicated direction not spread: %v", seen)
	}
}

func TestClosedLoopAndLatency(t *testing.T) {
	tr, f := testTree(t)
	_ = tr
	eng := sim.NewEngine()
	net := &fakeNet{n: 2}
	strat := partition.FileHash{N: 2}
	c := New(0, eng, Config{ThinkMean: sim.Millisecond}, sim.NewRNG(4), net, strat,
		fixedGen{workload.Op{Op: msg.Stat, Target: f}})
	c.Start(0)
	eng.RunUntil(sim.Millisecond)
	// One outstanding request; no more until the reply arrives.
	if c.Stats.Issued != 1 {
		t.Fatalf("issued = %d", c.Stats.Issued)
	}
	req := net.sends[0].req
	c.OnReply(&msg.Reply{Req: req, Completed: req.Issued + 500*sim.Microsecond})
	eng.RunUntil(20 * sim.Millisecond)
	if c.Stats.Completed != 1 {
		t.Fatalf("completed = %d", c.Stats.Completed)
	}
	if c.Stats.Issued < 2 {
		t.Fatal("no follow-up request after reply")
	}
	if c.Stats.Latency.Mean() <= 0 {
		t.Fatal("latency not recorded")
	}
	c.Stop()
	issued := c.Stats.Issued
	c.OnReply(&msg.Reply{Req: req, Completed: eng.Now()})
	eng.Run()
	if c.Stats.Issued != issued {
		t.Fatal("stopped client issued more requests")
	}
}

func TestKnownCacheFIFOEviction(t *testing.T) {
	k := newKnownCache(3)
	for i := 1; i <= 5; i++ {
		k.put(msg.Hint{Ino: namespace.InodeID(i), Authority: i})
	}
	if k.len() != 3 {
		t.Fatalf("len = %d", k.len())
	}
	if _, ok := k.get(1); ok {
		t.Fatal("oldest entry survived")
	}
	if _, ok := k.get(5); !ok {
		t.Fatal("newest entry missing")
	}
	// Refresh updates in place without growing.
	k.put(msg.Hint{Ino: 5, Authority: 9})
	if h, _ := k.get(5); h.Authority != 9 {
		t.Fatal("refresh did not update")
	}
	if k.len() != 3 {
		t.Fatal("refresh grew cache")
	}
}

func TestClientKnownLocationsBound(t *testing.T) {
	tr, f := testTree(t)
	_ = tr
	eng := sim.NewEngine()
	net := &fakeNet{n: 2}
	c := New(0, eng, Config{KnownCap: 4}, sim.NewRNG(5), net,
		partition.NewStaticSubtree(2, tr, 2),
		fixedGen{workload.Op{Op: msg.Stat, Target: f}})
	for i := 0; i < 100; i++ {
		c.OnReply(&msg.Reply{
			Req:   &msg.Request{Target: f},
			Hints: []msg.Hint{{Ino: namespace.InodeID(1000 + i), Authority: 0}},
		})
	}
	if c.KnownLocations() > 4 {
		t.Fatalf("known locations = %d, cap 4", c.KnownLocations())
	}
	eng.Run()
}

func TestRetryOnTimeout(t *testing.T) {
	tr, f := testTree(t)
	_ = tr
	eng := sim.NewEngine()
	net := &fakeNet{n: 4}
	c := New(0, eng, Config{ThinkMean: sim.Millisecond, RetryTimeout: 10 * sim.Millisecond},
		sim.NewRNG(9), net, partition.FileHash{N: 4},
		fixedGen{workload.Op{Op: msg.Stat, Target: f}})
	c.Start(0)
	eng.RunUntil(35 * sim.Millisecond)
	// No reply ever arrives: the client must have retried ~3 times.
	if c.Stats.Retries < 2 {
		t.Fatalf("retries = %d", c.Stats.Retries)
	}
	if len(net.sends) < 3 {
		t.Fatalf("sends = %d", len(net.sends))
	}
	// All retries carry the same request.
	for _, s := range net.sends[1:] {
		if s.req != net.sends[0].req {
			t.Fatal("retry created a new request")
		}
	}
	// A reply stops the retrying and duplicates are dropped.
	req := net.sends[0].req
	c.OnReply(&msg.Reply{Req: req, Completed: eng.Now()})
	completed := c.Stats.Completed
	c.OnReply(&msg.Reply{Req: req, Completed: eng.Now()})
	if c.Stats.Completed != completed {
		t.Fatal("duplicate reply double-counted")
	}
}

func TestSetGenerator(t *testing.T) {
	tr, f := testTree(t)
	g, err := tr.Create(f.Parent(), "other")
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	net := &fakeNet{n: 2}
	c := New(0, eng, Config{}, sim.NewRNG(1), net, partition.FileHash{N: 2},
		fixedGen{workload.Op{Op: msg.Stat, Target: f}})
	c.SetGenerator(fixedGen{workload.Op{Op: msg.Stat, Target: g}})
	c.Start(0)
	eng.Run()
	if net.sends[0].req.Target != g {
		t.Fatal("generator swap ignored")
	}
}

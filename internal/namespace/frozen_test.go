package namespace

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
)

// genTree builds a deterministic pseudo-random generated tree the way
// fsgen does: mkdirs and creates only, so it is freezable.
func genTree(t *testing.T, seed int64, dirs, filesPerDir int) *Tree {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tr := NewTree()
	all := []*Inode{tr.Root}
	for d := 0; d < dirs; d++ {
		parent := all[r.Intn(len(all))]
		nd, err := tr.Mkdir(parent, "d"+strconv.Itoa(d))
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, nd)
	}
	for i, d := range all {
		for f := 0; f < filesPerDir; f++ {
			if _, err := tr.Create(d, fmt.Sprintf("f%d_%d", i, f)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return tr
}

// walkOrder collects every inode in deterministic walk order.
func walkOrder(tr *Tree) []*Inode {
	var out []*Inode
	tr.Walk(func(n *Inode) bool {
		out = append(out, n)
		return true
	})
	return out
}

// requireSameShape asserts two trees are structurally identical:
// same walk order, IDs, names, kinds, modes, sizes, link and subtree
// counts, and same child ordering.
func requireSameShape(t *testing.T, want, got *Tree) {
	t.Helper()
	a, b := walkOrder(want), walkOrder(got)
	if len(a) != len(b) {
		t.Fatalf("tree sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.ID != y.ID || x.Kind != y.Kind || x.Mode != y.Mode || x.Size != y.Size ||
			x.NLink != y.NLink || x.name != y.name || x.SubtreeInodes != y.SubtreeInodes {
			t.Fatalf("inode %d differs: %+v vs %+v", i, x, y)
		}
		if x.NumChildren() != y.NumChildren() {
			t.Fatalf("inode %s child count differs: %d vs %d", x, x.NumChildren(), y.NumChildren())
		}
		for c := 0; c < x.NumChildren(); c++ {
			if x.Child(c).ID != y.Child(c).ID {
				t.Fatalf("inode %s child %d differs: %d vs %d", x, c, x.Child(c).ID, y.Child(c).ID)
			}
		}
	}
	if want.Len() != got.Len() || want.NumFiles != got.NumFiles || want.NumDirs != got.NumDirs {
		t.Fatalf("counts differ: len %d/%d files %d/%d dirs %d/%d",
			want.Len(), got.Len(), want.NumFiles, got.NumFiles, want.NumDirs, got.NumDirs)
	}
}

// mutateBoth applies one identical pseudo-random mutation to both trees,
// selecting targets by walk-order index so the choice is tree-agnostic.
// It requires both trees to succeed or fail together.
func mutateBoth(t *testing.T, r *rand.Rand, legacy, overlay *Tree, seq int) {
	t.Helper()
	la, oa := walkOrder(legacy), walkOrder(overlay)
	if len(la) != len(oa) {
		t.Fatalf("walk lengths diverged: %d vs %d", len(la), len(oa))
	}
	pickDir := func(inos []*Inode, i int) *Inode {
		for off := 0; off < len(inos); off++ {
			if n := inos[(i+off)%len(inos)]; n.IsDir() {
				return n
			}
		}
		return nil
	}
	i := r.Intn(len(la))
	j := r.Intn(len(la))
	name := "m" + strconv.Itoa(seq)
	var err1, err2 error
	switch op := r.Intn(6); op {
	case 0: // create file
		d1, d2 := pickDir(la, i), pickDir(oa, i)
		_, err1 = legacy.Create(d1, name)
		_, err2 = overlay.Create(d2, name)
	case 1: // mkdir
		d1, d2 := pickDir(la, i), pickDir(oa, i)
		_, err1 = legacy.Mkdir(d1, name)
		_, err2 = overlay.Mkdir(d2, name)
	case 2: // remove
		err1 = legacy.Remove(la[i])
		err2 = overlay.Remove(oa[i])
	case 3: // rename into another directory
		d1, d2 := pickDir(la, j), pickDir(oa, j)
		err1 = legacy.Rename(la[i], d1, name)
		err2 = overlay.Rename(oa[i], d2, name)
	case 4: // chmod
		legacy.Chmod(la[i], la[i].Mode^0o022)
		overlay.Chmod(oa[i], oa[i].Mode^0o022)
	case 5: // size update
		la[i].Size += int64(seq)
		oa[i].Size += int64(seq)
	}
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("op %d errors diverged: legacy=%v overlay=%v", seq, err1, err2)
	}
}

// TestOverlayEquivalence drives a frozen-base overlay and the original
// eagerly built tree through an identical mutation sequence and requires
// identical structure, ordering, and invariants throughout.
func TestOverlayEquivalence(t *testing.T) {
	legacy := genTree(t, 7, 40, 4)
	frozen, err := legacy.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	overlay := NewOverlay(frozen)
	requireSameShape(t, legacy, overlay)

	r := rand.New(rand.NewSource(42))
	for seq := 0; seq < 400; seq++ {
		mutateBoth(t, r, legacy, overlay, seq)
		if seq%50 == 0 {
			requireSameShape(t, legacy, overlay)
		}
	}
	requireSameShape(t, legacy, overlay)
	if err := legacy.CheckInvariants(); err != nil {
		t.Fatalf("legacy invariants: %v", err)
	}
	if err := overlay.CheckInvariants(); err != nil {
		t.Fatalf("overlay invariants: %v", err)
	}

	// Path lookups resolve identically.
	for _, n := range walkOrder(legacy) {
		got, err := overlay.Lookup(n.Path())
		if err != nil {
			t.Fatalf("overlay lookup %s: %v", n.Path(), err)
		}
		if got.ID != n.ID {
			t.Fatalf("overlay lookup %s: got %d want %d", n.Path(), got.ID, n.ID)
		}
	}
}

// TestFreezePreconditions covers the snapshots Freeze must reject.
func TestFreezePreconditions(t *testing.T) {
	tr := genTree(t, 1, 5, 2)
	if _, err := tr.Freeze(); err != nil {
		t.Fatalf("fresh tree should freeze: %v", err)
	}
	// Overlay trees cannot be re-frozen.
	f, _ := tr.Freeze()
	if _, err := NewOverlay(f).Freeze(); err == nil {
		t.Fatal("overlay froze")
	}
	// Removal breaks ID density.
	victim := tr.Root.Child(0)
	for victim.IsDir() {
		victim = victim.Child(0)
	}
	if err := tr.Remove(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Freeze(); err == nil {
		t.Fatal("tree with removed inode froze")
	}
}

// TestOverlayTombstones verifies a removed base inode cannot be
// resurrected through ByID, while untouched base inodes stay reachable.
func TestOverlayTombstones(t *testing.T) {
	base := genTree(t, 3, 10, 3)
	f, err := base.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	ov := NewOverlay(f)
	var file *Inode
	ov.Walk(func(n *Inode) bool {
		if !n.IsDir() && file == nil {
			file = n
		}
		return true
	})
	id := file.ID
	if err := ov.Remove(file); err != nil {
		t.Fatal(err)
	}
	if _, ok := ov.ByID(id); ok {
		t.Fatal("removed base inode resurrected by ByID")
	}
	// A different overlay over the same base still sees it.
	if _, ok := NewOverlay(f).ByID(id); !ok {
		t.Fatal("fresh overlay missing base inode")
	}
	if got := ov.Len(); got != f.NumInodes()-1 {
		t.Fatalf("Len after removal = %d, want %d", got, f.NumInodes()-1)
	}
}

// TestOverlayLazyNameIndex checks the slab overlay's laziness contract:
// thawing is a flat bulk copy (constant allocation count, no per-inode or
// per-directory allocations), directory name lookups read through to the
// shared base index until a directory's first structural mutation, and
// only mutated directories ever build a private childIndex map.
func TestOverlayLazyNameIndex(t *testing.T) {
	base := genTree(t, 5, 30, 10)
	f, err := base.Freeze()
	if err != nil {
		t.Fatal(err)
	}

	// Thawing allocates O(1) objects regardless of snapshot size: the
	// Tree, its small maps/tables, the inode slab, and the child backing
	// array. A per-inode or per-directory allocation would scale with the
	// ~330-inode snapshot and blow well past this bound.
	if allocs := testing.AllocsPerRun(5, func() { _ = NewOverlay(f) }); allocs > 12 {
		t.Fatalf("NewOverlay allocates %.0f objects, want O(1) (<= 12)", allocs)
	}

	ov := NewOverlay(f)
	if got := len(ov.byID); got != 0 {
		t.Fatalf("fresh overlay has %d byID entries, want 0 (base IDs resolve via slab)", got)
	}
	countLazy := func() (lazy, indexed int) {
		ov.Walk(func(n *Inode) bool {
			if n.IsDir() && n.NumChildren() > 0 {
				if n.lazyIdx {
					lazy++
				} else {
					indexed++
				}
			}
			return true
		})
		return
	}
	lazyBefore, indexedBefore := countLazy()
	if indexedBefore != 0 {
		t.Fatalf("fresh overlay has %d pre-built child indexes, want 0", indexedBefore)
	}

	// Read-only resolution — ByID, Path, LookupChild — works through the
	// shared base index without building any private index.
	deepest, depth := ov.Root, -1
	base.Walk(func(n *Inode) bool {
		if !n.IsDir() && n.Depth() > depth {
			deepest, depth = n, n.Depth()
		}
		return true
	})
	n, ok := ov.ByID(deepest.ID)
	if !ok {
		t.Fatal("ByID failed")
	}
	if n.Path() != deepest.Path() {
		t.Fatalf("path mismatch: %s vs %s", n.Path(), deepest.Path())
	}
	if got, err := ov.Lookup(deepest.Path()); err != nil || got.ID != deepest.ID {
		t.Fatalf("overlay lookup %s: %v, %v", deepest.Path(), got, err)
	}
	if l, i := countLazy(); l != lazyBefore || i != 0 {
		t.Fatalf("read-only access built %d child indexes", i)
	}

	// The first structural mutation of a directory builds exactly that
	// directory's index; siblings stay lazy.
	dir := n.Parent()
	if _, err := ov.Create(dir, "fresh"); err != nil {
		t.Fatal(err)
	}
	if dir.lazyIdx || dir.childIndex == nil {
		t.Fatal("mutated directory did not build its private index")
	}
	if got, ok := dir.LookupChild("fresh"); !ok || got.Name() != "fresh" {
		t.Fatal("private index missing new child")
	}
	if got, ok := dir.LookupChild(n.Name()); !ok || got != n {
		t.Fatal("private index lost pre-existing child")
	}
	if l, i := countLazy(); i != 1 || l != lazyBefore-1 {
		t.Fatalf("after one mutation: %d indexed (want 1), %d lazy (want %d)", i, l, lazyBefore-1)
	}
}

// TestConcurrentOverlays runs several overlays over one shared base
// concurrently, each applying its own mutation storm. Under -race this
// verifies overlays never write to shared state.
func TestConcurrentOverlays(t *testing.T) {
	baseTree := genTree(t, 11, 60, 5)
	f, err := baseTree.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			ov := NewOverlay(f)
			for seq := 0; seq < 300; seq++ {
				inos := walkOrder(ov)
				n := inos[r.Intn(len(inos))]
				switch r.Intn(5) {
				case 0:
					if n.IsDir() {
						_, _ = ov.Create(n, fmt.Sprintf("w%d_%d", w, seq))
					}
				case 1:
					if n.IsDir() {
						_, _ = ov.Mkdir(n, fmt.Sprintf("wd%d_%d", w, seq))
					}
				case 2:
					_ = ov.Remove(n)
				case 3:
					d := inos[r.Intn(len(inos))]
					if d.IsDir() {
						_ = ov.Rename(n, d, fmt.Sprintf("wr%d_%d", w, seq))
					}
				case 4:
					ov.Chmod(n, n.Mode^0o022)
				}
			}
			errs[w] = ov.CheckInvariants()
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d invariants: %v", w, err)
		}
	}
	// The storm must not have altered the shared base: a fresh overlay
	// still matches the original generated tree exactly.
	requireSameShape(t, baseTree, NewOverlay(f))
}

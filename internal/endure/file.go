package endure

import (
	"fmt"
	"hash/fnv"
	"os"

	"dynmds/internal/cluster"
	"dynmds/internal/namespace"
	"dynmds/internal/sim"
	"dynmds/internal/snap"
)

// SnapshotVersion is the endurance snapshot format version. Bump it on
// any incompatible change to the section layout; Restore rejects
// mismatched files rather than misreading them.
const SnapshotVersion = 1

// header is the "endure" section at the front of every snapshot file:
// enough to validate the restoring run's configuration and position the
// resume before a single simulation byte is decoded.
type header struct {
	Version    int
	ConfigHash uint64
	Shards     int // effective shard count the snapshot was taken with
	Checkpoint int // 0-based index into Instants(Every, Duration)
	ResumeAt   sim.Time
	MaxID      namespace.InodeID
	Faults     string
}

// At returns the checkpoint instant the snapshot was written at (the
// resume point is one quiesce drain later).
func (h *header) At() sim.Time { return h.ResumeAt - cluster.QuiesceDrain }

// configHash digests the parts of a cluster config that shape the event
// sequence, excluding the fault schedule (chaos shrinking restores a
// snapshot under a *reduced* schedule on purpose) and the shard count
// (restore must work at any K — determinism across K is a separate,
// tested property; the effective shard count is recorded in its own
// header field and checked for an exact match instead).
func configHash(cfg *cluster.Config) uint64 {
	cp := *cfg
	cp.Faults = ""
	cp.Shards = 0
	cp.MDS.Storage.Pool = nil // nil in endure runs; avoid hashing an address
	h := fnv.New64a()
	fmt.Fprintf(h, "seed=%d mds=%d cpm=%d strat=%q depth=%d fs=%+v mds=%+v client=%+v work=%+v net=%q bw=%g susp=%d hashdir=%d lease=%+v dur=%d warm=%d bucket=%d",
		cp.Seed, cp.NumMDS, cp.ClientsPerMDS, cp.Strategy, cp.PartitionDepth,
		cp.FS, cp.MDS, cp.Client, cp.Workload, cp.NetModel, cp.LinkBandwidth,
		cp.SuspicionThreshold, cp.HashDirThreshold, cp.Lease,
		cp.Duration, cp.Warmup, cp.SeriesBucket)
	if cp.OpenLoop != nil {
		fmt.Fprintf(h, " pop=%+v", *cp.OpenLoop)
	}
	if cp.Balancer != nil {
		fmt.Fprintf(h, " bal=%+v", *cp.Balancer)
	}
	if cp.Traffic != nil {
		fmt.Fprintf(h, " tc=%+v", *cp.Traffic)
	}
	// cp.Snapshot is deliberately not hashed: the tree it holds is a
	// pure function of (FS, Seed) when endure generates it, and opaque
	// when the caller shares one — either way presence timing must not
	// change the hash.
	return h.Sum64()
}

// effectiveShards replicates the cluster's shard-count clamp so the
// header can be validated without building a cluster.
func effectiveShards(cfg *cluster.Config) int {
	k := cfg.Shards
	if k > cfg.NumMDS {
		k = cfg.NumMDS
	}
	if k <= 1 {
		return 0
	}
	return k
}

// encodeSnapshot serializes the quiesced cluster plus the endure header
// into one snapshot byte stream. resumeAt is the post-drain instant the
// restored run will continue from.
func encodeSnapshot(c *cluster.Cluster, cfg *cluster.Config, checkpoint int, resumeAt sim.Time) []byte {
	w := snap.NewWriter()
	w.Begin("endure")
	w.Int(SnapshotVersion)
	w.U64(configHash(cfg))
	w.Int(effectiveShards(cfg))
	w.Int(checkpoint)
	w.I64(int64(resumeAt))
	w.U64(uint64(c.Tree().MaxID()))
	w.String(cfg.Faults)
	w.End()
	c.CheckpointTo(w)
	return w.Bytes()
}

// decodeHeader validates the checksum and reads the endure header,
// leaving the reader positioned at the first cluster section.
func decodeHeader(data []byte) (*header, *snap.Reader, error) {
	r, err := snap.NewReader(data)
	if err != nil {
		return nil, nil, fmt.Errorf("endure: %w", err)
	}
	name, err := r.Section()
	if err != nil {
		return nil, nil, fmt.Errorf("endure: %w", err)
	}
	if name != "endure" {
		return nil, nil, fmt.Errorf("endure: not an endurance snapshot (leading section %q)", name)
	}
	h := &header{Version: r.Int()}
	if h.Version != SnapshotVersion {
		// Stop before decoding fields the other version may lay out
		// differently.
		return nil, nil, fmt.Errorf("endure: snapshot version %d, this build reads version %d",
			h.Version, SnapshotVersion)
	}
	h.ConfigHash = r.U64()
	h.Shards = r.Int()
	h.Checkpoint = r.Int()
	h.ResumeAt = sim.Time(r.I64())
	h.MaxID = namespace.InodeID(r.U64())
	h.Faults = r.String()
	return h, r, nil
}

// position validates the header's checkpoint index against the
// restoring run's cadence.
func (h *header) position(every, duration sim.Time) error {
	instants := Instants(every, duration)
	if h.Checkpoint < 0 || h.Checkpoint >= len(instants) ||
		instants[h.Checkpoint] != h.At() {
		return fmt.Errorf("endure: snapshot checkpoint %d at t=%.3fs does not match cadence %v over %v",
			h.Checkpoint, h.At().Seconds(), every, duration)
	}
	if h.Checkpoint == len(instants)-1 {
		return fmt.Errorf("endure: snapshot is the run's final checkpoint; nothing to resume")
	}
	return nil
}

// ValidateSnapshot checks that path can be restored under opt without
// running any simulation: codec checksum, format version, config hash,
// shard count, and checkpoint cadence. A non-nil error is a usage
// error — the file and the flags disagree — so callers treat it like a
// bad flag value (exit 2), not a runtime failure.
func ValidateSnapshot(opt Options, path string) error {
	if err := opt.Normalize(); err != nil {
		return err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("endure: %w", err)
	}
	hdr, _, err := decodeHeader(data)
	if err != nil {
		return err
	}
	if err := hdr.check(&opt.Cluster); err != nil {
		return err
	}
	return hdr.position(opt.Every, opt.Cluster.Duration)
}

// check validates a snapshot header against the restoring run's config.
// Shard count and config hash must match exactly; the fault schedule is
// deliberately NOT checked (shrinking replays snapshots under reduced
// schedules), only recorded for the repro line.
func (h *header) check(cfg *cluster.Config) error {
	if got := effectiveShards(cfg); got != h.Shards {
		return fmt.Errorf("endure: snapshot was taken with %d shards, this run uses %d (shard count must match to restore)",
			h.Shards, got)
	}
	if got := configHash(cfg); got != h.ConfigHash {
		return fmt.Errorf("endure: snapshot config hash %016x does not match this run's %016x (same workload configuration required)",
			h.ConfigHash, got)
	}
	return nil
}

package namespace

import (
	"math/bits"
	"sort"
	"sync/atomic"
)

// This file holds the overlay-aging surface: tombstone accounting and
// the compaction fix for the worst degradation an aged overlay shows.
//
// Under sustained create/delete churn the gone map grows by one entry
// per destroyed base inode. Every ByID on a base ID — the hot path of
// op dispatch, cache fills, and lease grants — then pays a hash probe
// against a map with millions of entries, and the GC rescans all of
// them every cycle. CompactTombstones swaps the map for a dense bitset
// (one bit per base inode): the probe becomes a single AND, and the
// bitset is pointer-free so the GC skips it. The swap is purely
// representational — simulation results are bit-identical with the fix
// on or off, which TestCompactTombstonesDigestInvariant pins.

// TombstoneCount returns the number of tombstoned base inodes.
func (t *Tree) TombstoneCount() int {
	if t.dead != nil {
		n := 0
		for _, w := range t.dead {
			n += bits.OnesCount64(w)
		}
		return n
	}
	return len(t.gone)
}

// Tombstoned reports whether a base ID has been destroyed in this
// overlay. IDs outside the base are never tombstoned.
func (t *Tree) Tombstoned(id InodeID) bool {
	if t.base == nil || !t.base.contains(id) {
		return false
	}
	if t.dead != nil {
		return t.dead[id>>6]&(1<<(id&63)) != 0
	}
	_, dd := t.gone[id]
	return dd
}

// TombstonesCompacted reports whether the bitset representation is
// installed.
func (t *Tree) TombstonesCompacted() bool { return t.dead != nil }

// CompactTombstones migrates the tombstone set from the gone map to the
// dense bitset and drops the map. Idempotent; returns the number of
// tombstones migrated (0 if already compacted or not an overlay).
func (t *Tree) CompactTombstones() int {
	if t.base == nil || t.dead != nil {
		return 0
	}
	t.dead = make([]uint64, len(t.base.nodes)/64+1)
	for id := range t.gone {
		t.dead[id>>6] |= 1 << (id & 63)
	}
	n := len(t.gone)
	t.gone = nil
	return n
}

// ForEachTombstone visits tombstoned base IDs in ascending order.
func (t *Tree) ForEachTombstone(fn func(InodeID)) {
	if t.dead != nil {
		for wi, w := range t.dead {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &^= 1 << b
				fn(InodeID(wi*64 + b))
			}
		}
		return
	}
	// The map path sorts for determinism; it is cold (checkpoints only).
	ids := make([]InodeID, 0, len(t.gone))
	for id := range t.gone {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fn(id)
	}
}

// noteLazyLookup records one read-through to the base name index.
// Atomic: lookups run concurrently across shards during windows.
func (t *Tree) noteLazyLookup(miss bool) {
	atomic.AddUint64(&t.lazyLookups, 1)
	if miss {
		atomic.AddUint64(&t.lazyMisses, 1)
	}
}

// LazyStats returns the cumulative read-through lookup and miss counts.
func (t *Tree) LazyStats() (lookups, misses uint64) {
	return atomic.LoadUint64(&t.lazyLookups), atomic.LoadUint64(&t.lazyMisses)
}

// SetLazyStats restores counters captured by LazyStats (checkpoints).
func (t *Tree) SetLazyStats(lookups, misses uint64) {
	atomic.StoreUint64(&t.lazyLookups, lookups)
	atomic.StoreUint64(&t.lazyMisses, misses)
}

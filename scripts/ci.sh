#!/usr/bin/env sh
# Tier-1 gate: vet, build, and run the full test suite under the race
# detector, then smoke-test the figure harness and emit a perf report.
# Run from the repository root; any failure fails the script.
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...

# Figure smoke run: exercises the sweep runner, the snapshot cache, and
# the copy-on-write overlay path end to end at reduced scale, under
# both fabric latency models.
go run ./cmd/mdsim -fig 2 -quick
go run ./cmd/mdsim -fig 2 -quick -net-model queued

# Availability experiment under the race detector: fault injection,
# client retries, suspicion-driven failover and log-warmed recovery at
# reduced scale.
go run -race ./cmd/mdsim -fig avail -quick

# Chaos fuzz budget under the race detector: 50 fixed-seed random
# fault schedules, each against all five strategies, every finished
# run checked by simfsck. Any invariant violation exits non-zero (and
# prints a shrunk minimal repro with its replay line).
go run -race ./cmd/mdsim -chaos-runs 50 -chaos-seed 1

# Bad knobs must fail fast with a usage error, not start a simulation.
if go run ./cmd/mdsim -net-model bogus -fig 2 -quick 2>/dev/null; then
    echo "ci: unknown -net-model was accepted" >&2
    exit 1
fi
if go run ./cmd/mdsim -faults 'explode@1s:mds0' 2>/dev/null; then
    echo "ci: unknown -faults schedule was accepted" >&2
    exit 1
fi

# Perf report (quick scale in CI; regenerate the committed BENCH_5.json
# with a full-scale run: `go run ./cmd/mdsim -bench-json BENCH_5.json`).
# Includes the chaos budget's pass/shrink stats; a chaos violation
# fails the bench.
go run ./cmd/mdsim -bench-json BENCH_5.quick.json -quick

// Command mdsim runs the metadata-cluster simulation experiments that
// regenerate the paper's figures, or a single custom configuration.
//
// Usage:
//
//	mdsim -fig 2            # regenerate Figure 2 (full scale)
//	mdsim -fig all -quick   # all figures, reduced scale
//	mdsim -strategy DynamicSubtree -mds 8 -clients 40 -dur 20
//	mdsim -bench-json BENCH_2.json   # hot-path + sweep benchmark, JSON report
//	mdsim -fig 2 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"dynmds/internal/chaos"
	"dynmds/internal/client"
	"dynmds/internal/cluster"
	"dynmds/internal/fault"
	"dynmds/internal/harness"
	simnet "dynmds/internal/net"
	"dynmds/internal/sim"
	"dynmds/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		fig      = flag.String("fig", "", "experiment: 2..7, 'sci', 'failover', 'avail', 'clients', or 'all'")
		quick    = flag.Bool("quick", false, "reduced-scale experiments")
		seed     = flag.Int64("seed", 1, "simulation seed")
		strategy = flag.String("strategy", cluster.StratDynamic, "strategy for a custom run")
		nmds     = flag.Int("mds", 4, "cluster size for a custom run")
		clients  = flag.Int("clients", 40, "clients per MDS for a custom run")
		users    = flag.Int("users", 100, "file-system users for a custom run")
		cacheCap = flag.Int("cache", 2000, "MDS cache capacity (records)")
		dur      = flag.Float64("dur", 20, "duration in simulated seconds")
		warm     = flag.Float64("warmup", 5, "warmup in simulated seconds")
	)
	list := flag.Bool("list", false, "list available experiments")
	planArg := flag.String("plan", "", "run a scenario plan: a library plan name, 'all', or a plan DSL file path")
	planList := flag.Bool("list-plans", false, "list the scenario plan library")
	planJSON := flag.String("plan-json", "", "with -plan: write per-run and per-act metrics as JSON to this file")
	benchJSON := flag.String("bench-json", "", "run the hot-path and sweep benchmarks and write a JSON report to this file")
	share := flag.Bool("share-snapshots", true, "share one frozen namespace snapshot across sweep runs (off = legacy per-run generation)")
	netModel := flag.String("net-model", simnet.ModelFixed, "fabric latency model: fixed or queued")
	faults := flag.String("faults", "", "fault schedule for a custom run, e.g. 'crash@3s-6s:mds1,drop@0.02:all' (see internal/fault)")
	chaosRuns := flag.Int("chaos-runs", 0, "run a seeded chaos fuzz budget: this many generated schedules, each against every strategy, each run checked by simfsck")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the chaos budget (same seed = bit-identical schedules and results)")
	chaosIntensity := flag.Float64("chaos-intensity", 1, "chaos generator intensity (scales fault counts and magnitudes)")
	linkBW := flag.Float64("link-bw", 0, "queued-model link bandwidth in bytes per simulated second (0 = default)")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "per-run shard count for the conservative parallel engine (0 = serial); workers x shards is capped at GOMAXPROCS")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	openLoop := flag.Int("open-loop", 0, "run the open-loop flyweight traffic plane with this many total clients (0 = closed loop)")
	openRate := flag.Float64("open-rate", 10, "open loop: per-client mean arrival rate, ops/sec")
	openTenants := flag.Int("open-tenants", 0, "open loop: tenant count (0 = clients/1024, min 16)")
	tenantSkew := flag.Float64("tenant-skew", 1.0, "open loop: Zipf exponent for tenant sizes")
	fileSkew := flag.Float64("file-skew", 1.0, "open loop: Zipf exponent for working-set popularity")
	diurnal := flag.Float64("diurnal", 0, "open loop: diurnal rate-modulation amplitude (0..1)")
	burstProb := flag.Float64("burst-prob", 0, "open loop: per-tenant-epoch burst probability")
	bench7 := flag.String("bench7-json", "", "run the open-loop client-count/skew sweep and write a JSON report to this file")
	leases := flag.Bool("leases", false, "open loop: grant coherent client read leases (requires -open-loop)")
	replicaFanout := flag.Bool("replica-fanout", false, "push hot-directory replicas to peers ahead of demand")
	bench9 := flag.String("bench9-json", "", "run the hotspot mechanism duel (dumb/leases/fanout/both across client counts) and write a JSON report to this file")
	endureRun := flag.Bool("endure", false, "run the endurance plane: churn the namespace over the full duration with periodic quiesce/checkpoint cycles (requires -open-loop)")
	ckEvery := flag.Float64("checkpoint-every", 0, "endurance checkpoint cadence in simulated seconds (required with -endure; must exceed the quiesce drain)")
	ckDir := flag.String("checkpoint-dir", "", "endurance: write checkpoint snapshots into this directory")
	restorePath := flag.String("restore", "", "endurance: resume from this checkpoint snapshot instead of starting at t=0")
	compactAt := flag.Int("compact-at", 0, "endurance: tombstone count that triggers overlay compaction (0 = default, negative = never compact)")
	soakCycles := flag.Int("soak-cycles", 0, "run the rolling chaos soak: this many crash/recover cycles over the run, simfsck at every checkpoint (implies -endure gates)")
	bench10 := flag.String("bench10-json", "", "run the endurance benchmark (degradation curve with and without compaction, restore determinism, rolling soak) and write a JSON report to this file")
	flag.Parse()

	// Validate the knobs that select named models up front, so a typo
	// fails with a usage error before any simulation work starts.
	if *netModel != simnet.ModelFixed && *netModel != simnet.ModelQueued {
		fmt.Fprintf(os.Stderr, "mdsim: unknown -net-model %q (use %q or %q)\n",
			*netModel, simnet.ModelFixed, simnet.ModelQueued)
		flag.Usage()
		return 2
	}
	if *faults != "" {
		if _, err := fault.ParseSchedule(*faults); err != nil {
			fmt.Fprintf(os.Stderr, "mdsim: bad -faults schedule: %v\n", err)
			flag.Usage()
			return 2
		}
	}
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "mdsim: -shards must be >= 0, got %d\n", *shards)
		flag.Usage()
		return 2
	}
	if *shards > runtime.GOMAXPROCS(0) {
		fmt.Fprintf(os.Stderr, "mdsim: warning: -shards %d exceeds %d cores; expect no speedup\n",
			*shards, runtime.GOMAXPROCS(0))
	}
	if *leases && *openLoop <= 0 {
		fmt.Fprintln(os.Stderr, "mdsim: -leases requires -open-loop (the lease slab lives in the flyweight population)")
		flag.Usage()
		return 2
	}
	if *soakCycles > 0 {
		*endureRun = true // the soak is an endurance run with a generated schedule
	}
	if *endureRun {
		if *openLoop <= 0 {
			fmt.Fprintln(os.Stderr, "mdsim: -endure requires -open-loop (the endurance plane ages the flyweight population's namespace)")
			flag.Usage()
			return 2
		}
		if *ckEvery <= cluster.QuiesceDrain.Seconds() {
			fmt.Fprintf(os.Stderr, "mdsim: -checkpoint-every must exceed the %gs quiesce drain, got %g\n",
				cluster.QuiesceDrain.Seconds(), *ckEvery)
			flag.Usage()
			return 2
		}
		if *soakCycles > 0 && (*restorePath != "" || *faults != "") {
			fmt.Fprintln(os.Stderr, "mdsim: -soak-cycles generates its own fault schedule; drop -restore/-faults")
			flag.Usage()
			return 2
		}
	} else if *ckEvery != 0 || *ckDir != "" || *restorePath != "" || *compactAt != 0 {
		fmt.Fprintln(os.Stderr, "mdsim: -checkpoint-every/-checkpoint-dir/-restore/-compact-at need -endure")
		flag.Usage()
		return 2
	}

	harness.SetSnapshotSharing(*share)
	harness.SetSweepWorkers(*workers)
	harness.SetShards(*shards)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdsim:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mdsim:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mdsim:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mdsim:", err)
			}
		}()
	}

	if *list {
		for _, e := range append(harness.All(), harness.Extras()...) {
			fmt.Printf("%-10s %s\n           %s\n", e.ID, e.Title, e.Description)
		}
		return 0
	}

	if *planList {
		listPlans()
		return 0
	}

	if *planArg != "" {
		opt := harness.Options{Quick: *quick, Seed: *seed, NetModel: *netModel}
		if err := runPlans(*planArg, *planJSON, opt); err != nil {
			// Plan failures are configuration errors caught before (or
			// while constructing) any simulation — usage errors, like a
			// bad -faults schedule.
			fmt.Fprintln(os.Stderr, "mdsim:", err)
			return 2
		}
		return 0
	}

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *seed, *quick, *share, *netModel, *shards); err != nil {
			fmt.Fprintln(os.Stderr, "mdsim:", err)
			return 1
		}
		return 0
	}

	if *bench7 != "" {
		if err := runBench7(*bench7, *seed, *quick, *shards); err != nil {
			fmt.Fprintln(os.Stderr, "mdsim:", err)
			return 1
		}
		return 0
	}

	if *bench9 != "" {
		if err := runBench9(*bench9, *seed, *quick, *shards); err != nil {
			fmt.Fprintln(os.Stderr, "mdsim:", err)
			return 1
		}
		return 0
	}

	if *bench10 != "" {
		if err := runBench10(*bench10, *seed, *quick, *shards); err != nil {
			fmt.Fprintln(os.Stderr, "mdsim:", err)
			return 1
		}
		return 0
	}

	if *chaosRuns > 0 {
		rep, err := harness.Chaos(harness.ChaosOptions{
			Seed:      *chaosSeed,
			Schedules: *chaosRuns,
			Intensity: *chaosIntensity,
			NetModel:  *netModel,
			Shards:    *shards,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdsim:", err)
			return 1
		}
		fmt.Print(rep)
		if rep.Failed > 0 {
			return 1
		}
		return 0
	}

	if *fig != "" {
		if err := runFigures(*fig, harness.Options{Quick: *quick, Seed: *seed, NetModel: *netModel}); err != nil {
			fmt.Fprintln(os.Stderr, "mdsim:", err)
			return 1
		}
		return 0
	}

	cfg := cluster.Default()
	cfg.Seed = *seed
	cfg.Strategy = *strategy
	cfg.NumMDS = *nmds
	cfg.ClientsPerMDS = *clients
	cfg.FS.Users = *users
	cfg.MDS.CacheCapacity = *cacheCap
	cfg.MDS.Storage.LogCapacity = *cacheCap
	cfg.NetModel = *netModel
	cfg.LinkBandwidth = *linkBW
	cfg.Faults = *faults
	cfg.Shards = *shards
	cfg.Duration = sim.FromSeconds(*dur)
	cfg.Warmup = sim.FromSeconds(*warm)
	if *openLoop > 0 {
		cfg.OpenLoop = &client.PopulationConfig{
			Clients: *openLoop,
			Rate:    *openRate,
			Tenant: workload.TenantConfig{
				Tenants:    *openTenants,
				TenantSkew: *tenantSkew,
				FileSkew:   *fileSkew,
			},
			DiurnalAmp: *diurnal,
			BurstProb:  *burstProb,
		}
	}
	cfg.Lease.Enabled = *leases
	cfg.Lease.Fanout = *replicaFanout

	if *endureRun {
		return runEndure(cfg, endureFlags{
			every:      *ckEvery,
			dir:        *ckDir,
			restore:    *restorePath,
			compactAt:  *compactAt,
			soakCycles: *soakCycles,
			seed:       *seed,
		})
	}

	// Custom runs build the cluster directly (not via harness.RunOne):
	// a -faults run is drained and checked by simfsck afterwards, which
	// needs the live cluster, and a single run gains nothing from the
	// shared snapshot cache.
	start := time.Now()
	heapBase := heapBytes(*openLoop > 0)
	cl, err := cluster.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdsim:", err)
		return 1
	}
	base := chaos.Capture(cl)
	res := cl.Run()
	fmt.Println(res)
	if res.OpenLoop {
		heapPerClient := float64(heapBytes(true)-heapBase) / float64(res.Clients)
		fmt.Printf("open loop: %d clients, issued %d, completed %d\n",
			res.Clients, res.Issued, res.Completed)
		fmt.Printf("latency: p50 %.3fms p99 %.3fms p999 %.3fms mean %.3fms\n",
			res.LatencyP50*1000, res.LatencyP99*1000, res.LatencyP999*1000, res.MeanLatency*1000)
		fmt.Printf("memory: plane %.1f B/client structural, %.1f B/client heap delta (fs+cluster+plane)\n",
			float64(res.PopFootprint)/float64(res.Clients), heapPerClient)
		if *leases || *replicaFanout {
			fmt.Printf("leases: %d grants, %d local hits, recalls %d sent / %d delivered / %d acked, %d fanouts, slab+registry %d B\n",
				res.LeaseGrants, res.LeaseHits, res.LeaseRecalls,
				res.LeaseRecalled, res.LeaseAcks, res.ReplicaFanouts, res.LeaseFootprint)
		}
		runtime.KeepAlive(cl)
	}
	fmt.Printf("fabric (%s model): %d messages, %d bytes, max link queue %d\n",
		res.Net.Model, res.Net.Messages, res.Net.Bytes, res.Net.MaxQueueDepth)
	fmt.Print(res.Net.Table())
	fmt.Print(res.FaultSummary())
	rc := 0
	if cfg.Faults != "" {
		cl.Drain()
		if err := chaos.Fsck(cl, base); err != nil {
			fmt.Printf("simfsck: FAIL\n%v\n", err)
			rc = 1
		} else {
			fmt.Println("simfsck: clean")
		}
	}
	fmt.Printf("wall time: %v (setup %v, run %v)\n",
		time.Since(start).Round(time.Millisecond),
		res.SetupWall.Round(time.Millisecond), res.RunWall.Round(time.Millisecond))
	return rc
}

// benchReport is the schema of the -bench-json output: the headline
// numbers for the simulator's hot path on the Figure 2 DynamicSubtree
// configuration (the same one bench_test.go's BenchmarkFig2_DynamicSubtree
// runs), plus whole-sweep reports for the Figure 2 and Figure 4 sweeps
// with the setup-vs-run wall split and snapshot-cache activity, so perf
// regressions are catchable from a single command.
type benchReport struct {
	Config       string  `json:"config"`
	Runs         int     `json:"runs"`
	NsPerOp      int64   `json:"ns_per_op"`      // wall ns per simulation run
	AllocsPerOp  uint64  `json:"allocs_per_op"`  // heap allocations per run
	Events       uint64  `json:"events_per_run"` // engine events dispatched per run
	NsPerEvent   float64 `json:"ns_per_event"`   // wall ns per dispatched event
	AllocsPerEv  float64 `json:"allocs_per_event"`
	SimOpsPerSec float64 `json:"simops_per_sec_per_mds"`
	HitRate      float64 `json:"hitrate"`

	// Sharded-engine measurement of the same config (-shards K): zero
	// values mean no sharded measurement was requested. Cores records
	// GOMAXPROCS so a sub-linear (or absent) speedup on a small machine
	// is interpretable; Speedup is serial wall over sharded wall.
	Shards          int     `json:"shards"`
	Cores           int     `json:"cores"`
	ShardedNsPerOp  int64   `json:"sharded_ns_per_op,omitempty"`
	ShardedWindows  uint64  `json:"sharded_windows,omitempty"`
	ShardedSpeedup  float64 `json:"sharded_speedup,omitempty"`
	ShardedHitRate  float64 `json:"sharded_hitrate,omitempty"`
	ShardedOpsDrift float64 `json:"sharded_ops_drift,omitempty"` // |sharded-serial|/serial measured ops

	ShareSnapshots bool          `json:"share_snapshots"`
	Quick          bool          `json:"quick"`
	NetModel       string        `json:"net_model"`
	Net            netReport     `json:"net"` // fabric counters from the measured config
	Sweeps         []sweepReport `json:"sweeps"`
	// Availability holds the fault-injection experiment's per-strategy
	// crash/recovery metrics (one of eight nodes down for a window,
	// measured against a fault-free control run).
	Availability []harness.AvailMetrics `json:"availability"`
	// Chaos summarises the fixed-seed fuzz budget (schedules × all five
	// strategies, every run checked by simfsck, failures shrunk to
	// minimal repros). A clean budget has failed == 0.
	Chaos     *harness.ChaosReport `json:"chaos"`
	PeakRSSKB int64                `json:"peak_rss_kb"` // process high-water mark (VmHWM)
}

// netReport summarizes the message fabric's per-class accounting for the
// measured configuration's final run.
type netReport struct {
	Messages      uint64           `json:"messages"`
	Bytes         uint64           `json:"bytes"`
	MaxQueueDepth int              `json:"max_queue_depth"`
	PerClass      []netClassReport `json:"per_class"`
}

type netClassReport struct {
	Class     string `json:"class"`
	Sent      uint64 `json:"sent"`
	Delivered uint64 `json:"delivered"`
	Bytes     uint64 `json:"bytes"`
}

// sweepReport aggregates one whole-figure sweep.
type sweepReport struct {
	Figure             string `json:"figure"`
	Runs               int    `json:"runs"`
	WallNs             int64  `json:"wall_ns"`       // whole figure, wall clock
	SetupWallNs        int64  `json:"setup_wall_ns"` // sum of per-run setup (generation/thaw + assembly)
	RunWallNs          int64  `json:"run_wall_ns"`   // sum of per-run event-loop execution
	SnapshotsGenerated int64  `json:"snapshots_generated"`
	SnapshotsShared    int64  `json:"snapshots_shared"`
}

// runBenchJSON runs the Figure 2 dynamic-subtree configuration once as
// warmup and three times measured, then the full Figure 2 and Figure 4
// sweeps, and writes wall time, allocation, event-throughput, and
// setup-vs-run aggregates as JSON.
func runBenchJSON(path string, seed int64, quick, share bool, netModel string, shards int) error {
	cfg := cluster.Default()
	cfg.Seed = seed
	cfg.Strategy = cluster.StratDynamic
	cfg.NumMDS = 8
	cfg.ClientsPerMDS = 40
	cfg.FS.Users = 200
	cfg.MDS.CacheCapacity = 2500
	cfg.MDS.Storage.LogCapacity = 2500
	cfg.NetModel = netModel
	cfg.Duration = 10 * sim.Second
	cfg.Warmup = 4 * sim.Second

	run := func() (time.Duration, uint64, uint64, *cluster.Result, *cluster.Cluster, error) {
		cl, err := cluster.New(cfg)
		if err != nil {
			return 0, 0, 0, nil, nil, err
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		res := cl.Run()
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		return wall, after.Mallocs - before.Mallocs, cl.ExecutedEvents(), res, cl, nil
	}

	if _, _, _, _, _, err := run(); err != nil { // warmup
		return err
	}
	const runs = 3
	var (
		wallSum  time.Duration
		allocSum uint64
		eventSum uint64
		lastRes  *cluster.Result
	)
	for i := 0; i < runs; i++ {
		wall, allocs, events, res, _, err := run()
		if err != nil {
			return err
		}
		wallSum += wall
		allocSum += allocs
		eventSum += events
		lastRes = res
		fmt.Printf("run %d: %v, %d allocs, %d events\n", i+1, wall.Round(time.Millisecond), allocs, events)
	}

	// Sharded measurement of the same config, when requested: serial
	// wall over sharded wall is the headline speedup.
	var shardedWall time.Duration
	var shardedRes *cluster.Result
	var shardedWindows uint64
	if shards > 1 {
		cfg.Shards = shards
		if _, _, _, _, _, err := run(); err != nil { // warmup
			return err
		}
		for i := 0; i < runs; i++ {
			wall, _, events, res, cl, err := run()
			if err != nil {
				return err
			}
			shardedWall += wall
			shardedRes = res
			shardedWindows = cl.Windows()
			fmt.Printf("sharded run %d (K=%d): %v, %d events, %d windows\n",
				i+1, shards, wall.Round(time.Millisecond), events, cl.Windows())
		}
		cfg.Shards = 0
	}

	rep := benchReport{
		Config:         "fig2-dynamic-8mds",
		Runs:           runs,
		NsPerOp:        wallSum.Nanoseconds() / runs,
		AllocsPerOp:    allocSum / runs,
		Events:         eventSum / runs,
		NsPerEvent:     float64(wallSum.Nanoseconds()) / float64(eventSum),
		AllocsPerEv:    float64(allocSum) / float64(eventSum),
		SimOpsPerSec:   lastRes.AvgThroughput,
		HitRate:        lastRes.HitRate,
		Shards:         shards,
		Cores:          runtime.GOMAXPROCS(0),
		ShareSnapshots: share,
		Quick:          quick,
		NetModel:       lastRes.Net.Model,
		Net: netReport{
			Messages:      lastRes.Net.Messages,
			Bytes:         lastRes.Net.Bytes,
			MaxQueueDepth: lastRes.Net.MaxQueueDepth,
		},
	}
	if shardedRes != nil {
		rep.ShardedNsPerOp = shardedWall.Nanoseconds() / runs
		rep.ShardedWindows = shardedWindows
		rep.ShardedSpeedup = float64(wallSum) / float64(shardedWall)
		rep.ShardedHitRate = shardedRes.HitRate
		serialOps := float64(lastRes.MeasuredOps)
		if serialOps > 0 {
			rep.ShardedOpsDrift = (float64(shardedRes.MeasuredOps) - serialOps) / serialOps
		}
		fmt.Printf("sharded K=%d on %d cores: %.2fx vs serial (ops drift %+.2f%%)\n",
			shards, rep.Cores, rep.ShardedSpeedup, rep.ShardedOpsDrift*100)
	}
	for c := 0; c < simnet.NumClasses; c++ {
		cs := lastRes.Net.PerClass[c]
		if cs.Sent == 0 {
			continue
		}
		rep.Net.PerClass = append(rep.Net.PerClass, netClassReport{
			Class:     simnet.Class(c).String(),
			Sent:      cs.Sent,
			Delivered: cs.Delivered,
			Bytes:     cs.Bytes,
		})
	}

	// Whole-sweep benchmarks: Figure 2 (one fs per cluster size, five
	// strategies each) and Figure 4 (one fs, strategies × cache sizes).
	for _, id := range []string{"fig2", "fig4"} {
		e, ok := harness.ByID(id)
		if !ok {
			return fmt.Errorf("unknown figure %s", id)
		}
		harness.ResetSnapshotCache()
		harness.ResetSweepAccounting()
		start := time.Now()
		if err := e.Run(io.Discard, harness.Options{Quick: quick, Seed: seed, NetModel: netModel}); err != nil {
			return err
		}
		wall := time.Since(start)
		setup, runW, nruns := harness.SweepAccounting()
		gen, shared := harness.SnapshotCacheStats()
		rep.Sweeps = append(rep.Sweeps, sweepReport{
			Figure:             id,
			Runs:               nruns,
			WallNs:             wall.Nanoseconds(),
			SetupWallNs:        setup.Nanoseconds(),
			RunWallNs:          runW.Nanoseconds(),
			SnapshotsGenerated: gen,
			SnapshotsShared:    shared,
		})
		fmt.Printf("%s sweep: %v wall (%v setup, %v run) over %d runs, %d generated / %d shared\n",
			id, wall.Round(time.Millisecond), setup.Round(time.Millisecond),
			runW.Round(time.Millisecond), nruns, gen, shared)
	}
	// Availability experiment: crash/recovery metrics per strategy.
	avail, err := harness.AvailabilityReport(harness.Options{Quick: quick, Seed: seed, NetModel: netModel})
	if err != nil {
		return err
	}
	rep.Availability = avail
	for _, m := range avail {
		fmt.Printf("avail %s: dip %.3f of control, detect %.2fs, recover %.1fs, %d retries\n",
			m.Strategy, m.DipFrac, m.DetectSeconds, m.RecoverySeconds, m.Retries)
	}
	// Chaos fuzz budget: 50 seeded schedules across all five strategies,
	// every run simfsck-checked. A violation fails the whole bench.
	chaosRep, err := harness.Chaos(harness.ChaosOptions{Seed: seed, Schedules: 50, NetModel: netModel})
	if err != nil {
		return err
	}
	rep.Chaos = chaosRep
	fmt.Print(chaosRep)
	if chaosRep.Failed > 0 {
		return fmt.Errorf("chaos budget failed %d of %d runs", chaosRep.Failed, chaosRep.Runs)
	}
	rep.PeakRSSKB = peakRSSKB()

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d ns/op, %d allocs/op, %.1f ns/event, %.3f allocs/event, peak RSS %d kB\n",
		path, rep.NsPerOp, rep.AllocsPerOp, rep.NsPerEvent, rep.AllocsPerEv, rep.PeakRSSKB)
	return nil
}

// heapBytes returns live heap bytes after a forced GC (0 when not
// wanted, so closed-loop custom runs skip the GC pauses entirely).
func heapBytes(want bool) int64 {
	if !want {
		return 0
	}
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return int64(m.HeapAlloc)
}

// bench7Row is one open-loop measurement: a population size (or tenant
// skew) against wall time, event throughput, latency quantiles, and the
// two memory views (structural plane bytes and whole-process heap
// delta, both per client).
type bench7Row struct {
	Clients      int     `json:"clients"`
	TenantSkew   float64 `json:"tenant_skew"`
	FileSkew     float64 `json:"file_skew"`
	RatePerCli   float64 `json:"rate_ops_per_client"`
	Shards       int     `json:"shards"`
	Issued       uint64  `json:"issued"`
	Completed    uint64  `json:"completed"`
	P50Us        int64   `json:"p50_us"`
	P99Us        int64   `json:"p99_us"`
	P999Us       int64   `json:"p999_us"`
	WallNs       int64   `json:"wall_ns"`
	SetupWallNs  int64   `json:"setup_wall_ns"`
	Events       uint64  `json:"events"`
	NsPerEvent   float64 `json:"ns_per_event"`
	PlaneBPerCli float64 `json:"plane_bytes_per_client"`
	HeapBPerCli  float64 `json:"heap_bytes_per_client"`
}

type bench7Report struct {
	Quick     bool        `json:"quick"`
	Cores     int         `json:"cores"`
	OpBudget  float64     `json:"op_budget"` // arrivals per run, ~rate·clients·duration
	Rows      []bench7Row `json:"rows"`
	PeakRSSKB int64       `json:"peak_rss_kb"`
}

// runBench7 sweeps the open-loop traffic plane across population sizes
// (10k to 10M full scale) and tenant skews, holding the total arrival
// budget roughly constant so every row costs comparable wall time and
// the per-client memory slope is the signal.
func runBench7(path string, seed int64, quick bool, shards int) error {
	// The arrival budget stays well under the 8-node cluster's service
	// capacity (roughly 8k ops/s with this mix): the open loop does not
	// back-pressure, so an over-capacity budget measures queue backlog,
	// not the traffic plane.
	counts := []int{10_000, 100_000, 1_000_000, 10_000_000}
	budget := 30e3
	durS := 5.0
	if quick {
		counts = []int{10_000, 100_000, 1_000_000}
		budget = 20e3
		durS = 3.0
	}
	skews := []float64{0, 0.6, 1.2}

	rep := bench7Report{Quick: quick, Cores: runtime.GOMAXPROCS(0), OpBudget: budget}
	measure := func(clients int, tskew, fskew float64) error {
		cfg := cluster.Default()
		cfg.Seed = seed
		cfg.NumMDS = 8
		cfg.FS.Users = 40 // small fs: the heap delta is dominated by the plane
		cfg.Duration = sim.FromSeconds(durS)
		cfg.Warmup = sim.FromSeconds(1)
		cfg.Shards = shards
		rate := budget / (float64(clients) * durS)
		if rate > 50 {
			rate = 50
		}
		cfg.OpenLoop = &client.PopulationConfig{
			Clients: clients,
			Rate:    rate,
			Tenant:  workload.TenantConfig{TenantSkew: tskew, FileSkew: fskew},
		}
		heapBase := heapBytes(true)
		setupStart := time.Now()
		cl, err := cluster.New(cfg)
		if err != nil {
			return err
		}
		start := time.Now()
		res := cl.Run()
		wall := time.Since(start)
		heapNow := heapBytes(true)
		events := cl.ExecutedEvents()
		row := bench7Row{
			Clients:      clients,
			TenantSkew:   tskew,
			FileSkew:     fskew,
			RatePerCli:   rate,
			Shards:       cl.NumShards(),
			Issued:       res.Issued,
			Completed:    res.Completed,
			P50Us:        int64(res.LatencyP50 * 1e6),
			P99Us:        int64(res.LatencyP99 * 1e6),
			P999Us:       int64(res.LatencyP999 * 1e6),
			WallNs:       wall.Nanoseconds(),
			SetupWallNs:  time.Since(setupStart).Nanoseconds() - wall.Nanoseconds(),
			Events:       events,
			NsPerEvent:   float64(wall.Nanoseconds()) / float64(events),
			PlaneBPerCli: float64(res.PopFootprint) / float64(clients),
			HeapBPerCli:  float64(heapNow-heapBase) / float64(clients),
		}
		runtime.KeepAlive(cl)
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("clients=%-9d skew=%.1f: %v wall, %d issued, p50 %dµs p99 %dµs p999 %dµs, %.1f B/client plane, %.1f B/client heap\n",
			clients, tskew, wall.Round(time.Millisecond), row.Issued,
			row.P50Us, row.P99Us, row.P999Us, row.PlaneBPerCli, row.HeapBPerCli)
		return nil
	}

	for _, n := range counts {
		if err := measure(n, 1.0, 1.0); err != nil {
			return err
		}
	}
	for _, s := range skews {
		if err := measure(100_000, s, 1.0); err != nil {
			return err
		}
	}
	rep.PeakRSSKB = peakRSSKB()

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d rows, peak RSS %d kB\n", path, len(rep.Rows), rep.PeakRSSKB)
	return nil
}

// bench9Row is one hotspot-duel cell: a coherence mechanism at a
// population size, against the ops served at the flash-crowd hotspot
// (split local lease hits vs remote round trips) and the two per-client
// memory views. The lease slab is part of plane_bytes_per_client.
type bench9Row struct {
	Mechanism      string  `json:"mechanism"`
	Clients        int     `json:"clients"`
	RatePerCli     float64 `json:"rate_ops_per_client"`
	Issued         uint64  `json:"issued"`
	Completed      uint64  `json:"completed"`
	HotspotOps     uint64  `json:"hotspot_ops"` // local + remote
	HotspotLocal   uint64  `json:"hotspot_local"`
	HotspotRemote  uint64  `json:"hotspot_remote"`
	LeaseGrants    uint64  `json:"lease_grants"`
	LeaseHits      uint64  `json:"lease_hits"`
	LeaseRecalls   uint64  `json:"lease_recalls"`
	ReplicaFanouts uint64  `json:"replica_fanouts"`
	P50Us          int64   `json:"p50_us"`
	P99Us          int64   `json:"p99_us"`
	WallNs         int64   `json:"wall_ns"`
	PlaneBPerCli   float64 `json:"plane_bytes_per_client"`
	HeapBPerCli    float64 `json:"heap_bytes_per_client"`
}

type bench9Report struct {
	Quick     bool        `json:"quick"`
	Cores     int         `json:"cores"`
	Strategy  string      `json:"strategy"`
	OpBudget  float64     `json:"op_budget"` // base arrival rate, ops/sec aggregate
	Rows      []bench9Row `json:"rows"`
	PeakRSSKB int64       `json:"peak_rss_kb"`
}

// bench9Mechanisms maps the duel's mechanism names onto lease-plane
// configs (the same mapping the plan engine's mechanism axis uses).
var bench9Mechanisms = []struct {
	name           string
	leases, fanout bool
}{
	{"dumb", false, false},
	{"leases", true, false},
	{"fanout", false, true},
	{"both", true, true},
}

// runBench9 runs the hotspot duel: a flash crowd aims most of an
// over-capacity arrival stream at one directory of a StaticSubtree
// cluster (no traffic control — the paper's motivating pathology), and
// each coherence mechanism races the same storm across population
// sizes. The aggregate budget is fixed, so small populations re-access
// the hotspot often (lease territory) and the million-client row is
// pure fan-in (replica fan-out territory).
func runBench9(path string, seed int64, quick bool, shards int) error {
	counts := []int{10_000, 100_000, 1_000_000}
	budget := 10e3
	durS := 10.0
	if quick {
		counts = []int{10_000, 100_000}
		budget = 6e3
		durS = 5.0
	}

	rep := bench9Report{
		Quick:    quick,
		Cores:    runtime.GOMAXPROCS(0),
		Strategy: cluster.StratStatic,
		OpBudget: budget,
	}
	measure := func(mech string, useLeases, useFanout bool, clients int) error {
		cfg := cluster.Default()
		cfg.Seed = seed
		cfg.Strategy = cluster.StratStatic
		cfg.NumMDS = 8
		cfg.FS.Users = 40
		cfg.Shards = shards
		cfg.Duration = sim.FromSeconds(durS)
		cfg.Warmup = sim.FromSeconds(1)
		rate := budget / (float64(clients) * 1)
		if rate > 50 {
			rate = 50
		}
		cfg.OpenLoop = &client.PopulationConfig{
			Clients: clients,
			Rate:    rate,
			Tenant:  workload.TenantConfig{TenantSkew: 1, FileSkew: 1},
		}
		cfg.Lease.Enabled = useLeases
		cfg.Lease.Fanout = useFanout
		if useLeases {
			// Crowd-scale lifetime: long enough that a client re-reading
			// the hot directory mid-crowd still holds its lease.
			cfg.Lease.Duration = 4 * sim.Second
		}
		// The crowd: double the arrival rate and aim 80% of it at one
		// home directory, read-only (a mutation at the hotspot would
		// recall every lease — recall costs are measured by the cluster
		// tests, the duel measures the serving ceiling).
		cfg.Acts = []cluster.ActConfig{{
			Name: "crowd", From: sim.FromSeconds(1), To: cfg.Duration,
			RateMul: 2, MixStat: 90, MixReaddir: 10,
			FileSkew: -1, Hotspot: "/home/u0000", HotFrac: 0.8,
		}}

		heapBase := heapBytes(true)
		cl, err := cluster.New(cfg)
		if err != nil {
			return err
		}
		start := time.Now()
		res := cl.Run()
		wall := time.Since(start)
		heapNow := heapBytes(true)
		row := bench9Row{
			Mechanism:      mech,
			Clients:        clients,
			RatePerCli:     rate,
			Issued:         res.Issued,
			Completed:      res.Completed,
			HotspotOps:     res.HotspotLocal + res.HotspotRemote,
			HotspotLocal:   res.HotspotLocal,
			HotspotRemote:  res.HotspotRemote,
			LeaseGrants:    res.LeaseGrants,
			LeaseHits:      res.LeaseHits,
			LeaseRecalls:   res.LeaseRecalls,
			ReplicaFanouts: res.ReplicaFanouts,
			P50Us:          int64(res.LatencyP50 * 1e6),
			P99Us:          int64(res.LatencyP99 * 1e6),
			WallNs:         wall.Nanoseconds(),
			PlaneBPerCli:   float64(res.PopFootprint) / float64(clients),
			HeapBPerCli:    float64(heapNow-heapBase) / float64(clients),
		}
		runtime.KeepAlive(cl)
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("%-7s clients=%-9d: hotspot %d (%d local + %d remote), %d grants, %d fanouts, %.1f B/client plane, %v wall\n",
			mech, clients, row.HotspotOps, row.HotspotLocal, row.HotspotRemote,
			row.LeaseGrants, row.ReplicaFanouts, row.PlaneBPerCli, wall.Round(time.Millisecond))
		return nil
	}

	for _, n := range counts {
		for _, m := range bench9Mechanisms {
			if err := measure(m.name, m.leases, m.fanout, n); err != nil {
				return err
			}
		}
	}
	rep.PeakRSSKB = peakRSSKB()

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d rows, peak RSS %d kB\n", path, len(rep.Rows), rep.PeakRSSKB)
	return nil
}

// peakRSSKB reads the process's peak resident set size (VmHWM) from
// /proc/self/status, in kilobytes. Returns 0 where unavailable.
func peakRSSKB() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmHWM:"):])
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseInt(string(fields[0]), 10, 64)
		if err != nil {
			return 0
		}
		return kb
	}
	return 0
}

func runFigures(which string, opt harness.Options) error {
	var exps []harness.Experiment
	if which == "all" {
		exps = append(harness.All(), harness.Extras()...)
	} else {
		e, ok := harness.ByID("fig" + which)
		if !ok {
			e, ok = harness.ByID(which)
		}
		if !ok {
			return fmt.Errorf("unknown figure %q (use 2..7 or 'all')", which)
		}
		exps = []harness.Experiment{e}
	}
	for _, e := range exps {
		start := time.Now()
		fmt.Printf("== %s ==\n%s\n\n", e.Title, e.Description)
		if err := e.Run(os.Stdout, opt); err != nil {
			return err
		}
		fmt.Printf("(wall time %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}

package cluster

import (
	"fmt"
	"math"
	"testing"

	"dynmds/internal/client"
	"dynmds/internal/sim"
	"dynmds/internal/workload"
)

func openLoopConfig(strategy string) Config {
	cfg := Default()
	cfg.Strategy = strategy
	cfg.NumMDS = 4
	cfg.ClientsPerMDS = 10 // overridden by OpenLoop.Clients
	cfg.FS.Users = 40
	cfg.Duration = 6 * sim.Second
	cfg.Warmup = 2 * sim.Second
	cfg.OpenLoop = &client.PopulationConfig{
		Clients: 2000,
		Rate:    20,
		Tenant:  workload.TenantConfig{Tenants: 16, TenantSkew: 1, FileSkew: 1, WorkingSet: 32},
	}
	return cfg
}

func openLoopDigest(r *Result) string {
	return fmt.Sprintf("iss=%d comp=%d ops=%d p50=%x p99=%x p999=%x mean=%x fwd=%x net=%+v",
		r.Issued, r.Completed, r.MeasuredOps,
		math.Float64bits(r.LatencyP50), math.Float64bits(r.LatencyP99),
		math.Float64bits(r.LatencyP999), math.Float64bits(r.MeanLatency),
		math.Float64bits(r.ForwardFrac), r.Net)
}

func TestOpenLoopRuns(t *testing.T) {
	for _, s := range []string{StratDynamic, StratFileHash} {
		s := s
		t.Run(s, func(t *testing.T) {
			cl, err := New(openLoopConfig(s))
			if err != nil {
				t.Fatal(err)
			}
			res := cl.Run()
			if !res.OpenLoop {
				t.Fatal("result not marked open loop")
			}
			if res.Clients != 2000 {
				t.Fatalf("clients = %d", res.Clients)
			}
			// 2000 clients × 20 ops/s × 6 s = 240k expected arrivals.
			if res.Issued < 200000 || res.Issued > 280000 {
				t.Fatalf("issued = %d, want ≈ 240k", res.Issued)
			}
			if res.Completed == 0 || res.Completed > res.Issued {
				t.Fatalf("completed = %d of %d", res.Completed, res.Issued)
			}
			if res.MeasuredOps == 0 {
				t.Fatal("no ops measured")
			}
			if !(res.LatencyP50 > 0 && res.LatencyP50 <= res.LatencyP99 && res.LatencyP99 <= res.LatencyP999) {
				t.Fatalf("quantiles not ordered: p50=%v p99=%v p999=%v",
					res.LatencyP50, res.LatencyP99, res.LatencyP999)
			}
			if res.MeanLatency <= 0 {
				t.Fatal("mean latency not recorded")
			}
			// The flyweight memory gate: structural bytes per client.
			if bpc := float64(res.PopFootprint) / float64(res.Clients); bpc > 64 {
				t.Fatalf("footprint = %.1f bytes/client, gate 64", bpc)
			}
			if err := cl.Tree().CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOpenLoopDeterministic pins bit-reproducibility of the open-loop
// plane for a fixed shard count, serial and K=4.
func TestOpenLoopDeterministic(t *testing.T) {
	for _, shards := range []int{0, 4} {
		shards := shards
		t.Run(fmt.Sprintf("K%d", shards), func(t *testing.T) {
			cfg := openLoopConfig(StratDynamic)
			cfg.OpenLoop.DiurnalAmp = 0.4
			cfg.OpenLoop.BurstProb = 0.1
			cfg.Shards = shards
			run := func() string {
				cl, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return openLoopDigest(cl.Run())
			}
			a, b := run(), run()
			if a != b {
				t.Fatalf("open-loop run not reproducible:\n%s\n%s", a, b)
			}
		})
	}
}

func TestOpenLoopValidation(t *testing.T) {
	// Open loop + faults composes (the boxed retry cache); leases
	// without the open loop does not — the slab lives in the population.
	bad := openLoopConfig(StratDynamic)
	bad.OpenLoop = nil
	bad.Lease.Enabled = true
	if _, err := New(bad); err == nil {
		t.Fatal("leases without open loop accepted")
	}
	bad = openLoopConfig(StratDynamic)
	bad.Lease.Ways = -1
	bad.Lease.Enabled = true
	if _, err := New(bad); err == nil {
		t.Fatal("negative lease ways accepted")
	}
	bad = openLoopConfig(StratDynamic)
	bad.Workload.Kind = WorkShift
	if _, err := New(bad); err == nil {
		t.Fatal("open loop + shift workload accepted")
	}
	bad = openLoopConfig(StratDynamic)
	bad.WrapGenerator = func(id int, g workload.Generator) workload.Generator { return g }
	if _, err := New(bad); err == nil {
		t.Fatal("open loop + generator wrapping accepted")
	}
}

package trace

import (
	"bytes"
	"strings"
	"testing"

	"dynmds/internal/fsgen"
	"dynmds/internal/namespace"
	"dynmds/internal/sim"
	"dynmds/internal/workload"
)

func snapshot(t *testing.T) *fsgen.Snapshot {
	t.Helper()
	cfg := fsgen.Default()
	cfg.Users = 5
	snap, err := fsgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestRecordReadRoundTrip(t *testing.T) {
	snap := snapshot(t)
	g := workload.NewGeneral(3, workload.DefaultGeneralConfig(), workload.Region{
		Home:   snap.Homes[0],
		Shared: []*namespace.Inode{snap.System},
	})
	var buf bytes.Buffer
	rec := NewRecorder(3, g, &buf)
	r := sim.NewRNG(1)
	var emitted []workload.Op
	for i := 0; i < 200; i++ {
		if op, ok := rec.Next(sim.Time(i), r); ok {
			emitted = append(emitted, op)
		}
	}
	if rec.Events != uint64(len(emitted)) {
		t.Fatalf("recorded %d, emitted %d", rec.Events, len(emitted))
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(emitted) {
		t.Fatalf("read %d, want %d", len(events), len(emitted))
	}
	for i, ev := range events {
		if ev.Client != 3 {
			t.Fatalf("event %d client = %d", i, ev.Client)
		}
		if ev.Op != emitted[i].Op.String() {
			t.Fatalf("event %d op = %s, want %s", i, ev.Op, emitted[i].Op)
		}
		if ev.Path != emitted[i].Target.Path() {
			t.Fatalf("event %d path mismatch", i)
		}
	}
}

func TestWriteReadSplit(t *testing.T) {
	events := []Event{
		{T: 1, Client: 0, Op: "stat", Path: "/a"},
		{T: 2, Client: 1, Op: "open", Path: "/b"},
		{T: 3, Client: 0, Op: "close", Path: "/a"},
	}
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d events", len(got))
	}
	byClient := Split(got)
	if len(byClient[0]) != 2 || len(byClient[1]) != 1 {
		t.Fatalf("split = %v", byClient)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{nope\n")); err == nil {
		t.Fatal("accepted malformed JSON")
	}
	if _, err := Read(strings.NewReader(`{"t":1,"c":0,"op":"frobnicate","path":"/"}` + "\n")); err == nil {
		t.Fatal("accepted unknown op")
	}
	// Blank lines are tolerated.
	if evs, err := Read(strings.NewReader("\n\n")); err != nil || len(evs) != 0 {
		t.Fatal("blank lines mishandled")
	}
}

func TestPlayerReplaysAgainstRegeneratedTree(t *testing.T) {
	// Record against one tree...
	snapA := snapshot(t)
	g := workload.NewGeneral(0, workload.DefaultGeneralConfig(), workload.Region{Home: snapA.Homes[1]})
	var buf bytes.Buffer
	rec := NewRecorder(0, g, &buf)
	r := sim.NewRNG(2)
	for i := 0; i < 100; i++ {
		rec.Next(sim.Time(i), r)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// ...replay against a freshly generated identical tree.
	snapB := snapshot(t)
	p := NewPlayer(snapB.Tree, events)
	count := 0
	for !p.Done() {
		op, ok := p.Next(0, r)
		if !ok {
			break
		}
		count++
		if op.Target == nil {
			t.Fatal("nil target from player")
		}
	}
	// Reads resolve; mutations recorded against paths created mid-trace
	// may be skipped. The bulk must replay.
	if p.Played == 0 || float64(p.Played) < 0.5*float64(len(events)) {
		t.Fatalf("played %d of %d (skipped %d)", p.Played, len(events), p.Skipped)
	}
	_ = count
}

func TestPlayerSkipsUnresolvable(t *testing.T) {
	snap := snapshot(t)
	events := []Event{
		{Op: "stat", Path: "/does/not/exist"},
		{Op: "stat", Path: "/home"},
		{Op: "rename", Path: "/home", Dst: "/nowhere", Name: "x"},
	}
	p := NewPlayer(snap.Tree, events)
	op, ok := p.Next(0, sim.NewRNG(1))
	if !ok || op.Target.Path() != "/home" {
		t.Fatalf("player did not skip to resolvable event: %v %v", op, ok)
	}
	if _, ok := p.Next(0, sim.NewRNG(1)); ok {
		t.Fatal("unresolvable rename not skipped")
	}
	if p.Skipped != 2 {
		t.Fatalf("skipped = %d, want 2", p.Skipped)
	}
	if !p.Done() {
		t.Fatal("player not done")
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		{T: 0, Client: 0, Op: "stat", Path: "/a/b"},
		{T: 1000, Client: 1, Op: "stat", Path: "/a/b"},
		{T: 2000, Client: 0, Op: "open", Path: "/a/c"},
		{T: 5000, Client: 2, Op: "create", Path: "/a", Name: "x"},
	}
	s := Summarize(events, 2)
	if s.Events != 4 || s.Clients != 3 {
		t.Fatalf("events=%d clients=%d", s.Events, s.Clients)
	}
	if s.Span != sim.Time(5000) {
		t.Fatalf("span = %v", s.Span)
	}
	if s.OpCounts["stat"] != 2 || s.OpCounts["open"] != 1 {
		t.Fatalf("op counts = %v", s.OpCounts)
	}
	if len(s.TopPaths) != 2 || s.TopPaths[0].Path != "/a/b" || s.TopPaths[0].Count != 2 {
		t.Fatalf("top paths = %v", s.TopPaths)
	}
	out := s.String()
	if !strings.Contains(out, "stat") || !strings.Contains(out, "/a/b") {
		t.Fatalf("summary render:\n%s", out)
	}
	empty := Summarize(nil, 5)
	if empty.Events != 0 || empty.Clients != 0 {
		t.Fatal("empty summarize wrong")
	}
}

package client

import (
	"math"

	"dynmds/internal/lease"
	"dynmds/internal/metrics"
	"dynmds/internal/msg"
	"dynmds/internal/namespace"
	"dynmds/internal/partition"
	"dynmds/internal/sim"
	"dynmds/internal/workload"
)

// PopulationConfig parameterises the open-loop traffic plane.
type PopulationConfig struct {
	// Clients is the population size.
	Clients int
	// Rate is the per-client mean arrival rate in ops/sec (Poisson base
	// rate, before diurnal/burst modulation). Zero means 10.
	Rate float64
	// Ways is the per-client way count in the shared hint table
	// (default 2: 16 bytes of location knowledge per client).
	Ways int
	// Tick is the timer-wheel granularity (default 1 ms). All arrival
	// timestamps quantise to the wheel grid.
	Tick sim.Time
	// Tenant shapes the tenant split and working sets.
	Tenant workload.TenantConfig

	// DiurnalAmp modulates the base rate sinusoidally per tenant:
	// λ(t) = Rate·(1 + DiurnalAmp·sin(2π(t/DiurnalPeriod + φ_tenant))).
	// Zero disables; DiurnalPeriod defaults to 60 s.
	DiurnalAmp    float64
	DiurnalPeriod sim.Time
	// BurstProb is the chance per (tenant, epoch) of a burst that
	// multiplies the tenant's rate by BurstFactor (default 4) for one
	// BurstEpoch (default 10 s). Deterministic in (tenant, epoch).
	BurstProb   float64
	BurstFactor float64
	BurstEpoch  sim.Time

	// Op mix weights; an all-zero mix defaults to Stat 80, Readdir 10,
	// Chmod 8, Create 2, Rename 0, Unlink 0. (No Open/Close: the
	// open-loop plane never issues an op whose accounting depends on a
	// paired follow-up. Rename moves a working-set entry into another
	// tenant's directory — the cross-authority migration op. Unlink
	// removes a file this run created earlier — the churn op of the
	// endurance plane; it never touches the frozen working sets the
	// tenant alias tables point into, so create/unlink churn can run
	// for virtual days without invalidating a single tenant pointer.)
	MixStat, MixReaddir, MixChmod, MixCreate, MixRename, MixUnlink float64

	// ChurnBase reserves this many frozen base files — outside every
	// tenant working set, so no alias-table pointer ever dangles — as
	// unlink victims, consumed before the run-created ring. Base unlinks
	// are what tombstone the overlay: without them, churn only recycles
	// run-created inodes and the aged-overlay degradation the endurance
	// plane measures never materialises. The cluster layer selects the
	// victims (it owns the tree walk) via SeedBaseVictims.
	ChurnBase int
}

func (c PopulationConfig) withDefaults() PopulationConfig {
	if c.Rate <= 0 {
		c.Rate = 10
	}
	if c.Ways <= 0 {
		c.Ways = 2
	}
	if c.Tick <= 0 {
		c.Tick = sim.Millisecond
	}
	if c.DiurnalPeriod <= 0 {
		c.DiurnalPeriod = 60 * sim.Second
	}
	if c.BurstEpoch <= 0 {
		c.BurstEpoch = 10 * sim.Second
	}
	if c.BurstFactor <= 0 {
		c.BurstFactor = 4
	}
	if c.MixStat+c.MixReaddir+c.MixChmod+c.MixCreate+c.MixRename+c.MixUnlink <= 0 {
		c.MixStat, c.MixReaddir, c.MixChmod, c.MixCreate = 80, 10, 8, 2
	}
	return c
}

// EffectiveMix returns the defaulted op-mix weights in canonical draw
// order (stat, readdir, chmod, create, rename, unlink) — what an
// all-zero act mix inherits. The cluster layer uses it to validate
// hotspot targets.
func (c PopulationConfig) EffectiveMix() [numMixOps]float64 {
	d := c.withDefaults()
	return [numMixOps]float64{d.MixStat, d.MixReaddir, d.MixChmod, d.MixCreate, d.MixRename, d.MixUnlink}
}

// cumMix folds mix weights into cumulative draw thresholds in canonical
// op order; cum[numMixOps-1] is the total weight. Left-to-right addition
// order matters: it must reproduce the pre-act threshold arithmetic
// bit-for-bit so act-free runs stay golden-identical (a zero unlink
// weight makes cum[4] == cum[5], and the draw x = u·cum[5] with u < 1
// strictly always lands below cum[4] — rename — exactly as before).
func cumMix(stat, readdir, chmod, create, rename, unlink float64) [numMixOps]float64 {
	var cum [numMixOps]float64
	c := stat
	cum[0] = c
	c += readdir
	cum[1] = c
	c += chmod
	cum[2] = c
	c += create
	cum[3] = c
	c += rename
	cum[4] = c
	c += unlink
	cum[5] = c
	return cum
}

// Population is the open-loop flyweight traffic plane: millions of
// clients as dense records in slab arrays, no per-client objects, maps,
// or goroutines. Arrivals are open-loop — a client's next request is
// scheduled by a Poisson draw regardless of whether earlier requests
// have been answered — and flow through a hierarchical timer wheel per
// shard, so pending arrivals never enter the engine's event heap.
//
// The hot paths (wheel fire → draw op → direct → send, and reply →
// record → recycle) are allocation-free in steady state; only Create
// and Rename ops allocate (the new entry's name and inode, inherent to
// the op). Scenario acts (ScheduleActs) retarget rate, mix, and hotspot
// at exact virtual times without adding steady-state work: the arrival
// path reads plain per-shard phase fields.
type Population struct {
	cfg     PopulationConfig
	net     Network
	strat   partition.Strategy
	tenants *workload.Tenants
	hints   *HintTable
	shards  []*popShard
	baseCum [numMixOps]float64
	acts    []Act

	// lease, when attached, is the coherent client-cache plane
	// (internal/lease): reads of a validly leased record are served
	// locally with zero fabric hops. Nil leaves the arrival path
	// bit-identical to a build without the plane. Contrast with hints:
	// hints are non-coherent location guesses (a stale hint costs a
	// forward), leases are coherent records (a stale lease is
	// structurally impossible — recall bumps the shared generation the
	// validity check reads).
	lease *lease.Plane
}

// popShard is one shard's slice of the population: clients are striped
// round-robin (global id g lives on shard g%K at local index g/K), and
// each shard owns a timer wheel, RNG/tenant slabs, request pool, and
// metric lanes touched only from its own engine.
type popShard struct {
	pop   *Population
	eng   *sim.Engine
	shard int
	k     int // stripe count
	wheel *sim.Wheel

	rng    []uint64 // per-local-client splitmix64 state
	tenant []uint32 // per-local-client tenant id

	pool    []*msg.Request // free list; grows to max outstanding, then steady
	seq     uint64         // shard-monotonic request ids
	nameSeq int

	// Phase state, rewritten at act boundaries and read on every
	// arrival: the effective rate multiplier, cumulative mix
	// thresholds, and hotspot redirect. Plain fields touched only from
	// this shard's engine, so acts are free on the hot path.
	rateMul float64
	cum     [numMixOps]float64
	hot     *namespace.Inode
	hotFrac float64

	actStats []shardActStat
	curLat   *metrics.LatHist // per-act latency lane; nil outside acts

	issued    uint64
	completed uint64
	lat       *metrics.LatHist
	welford   metrics.Welford

	// Lease-plane lanes: local serves, plus ops landing on the active
	// act's hotspot target (served locally vs remotely).
	leaseHits uint64
	hotLocal  uint64
	hotRemote uint64

	// stopped suppresses new arrivals (Drain); pending wheel timers
	// still fire but issue nothing and do not rearm.
	stopped bool

	// Churn ring (MixUnlink > 0 only): run-created files eligible for
	// unlink, consumed FIFO so every created file is eventually removed.
	// Fed on create completion — never on issue, so a timed-out create
	// can never be unlinked — and disjoint by construction from the
	// frozen working sets renames and stats draw from. churnHead indexes
	// the next victim; the slice compacts once half-consumed.
	churnOn   bool
	churn     []*namespace.Inode
	churnHead int

	// Base-victim pool (ChurnBase > 0 only): frozen base files reserved
	// for unlink, consumed FIFO before the run-created ring so overlay
	// tombstones accrue from the first unlink draws.
	baseVictims []*namespace.Inode
	baseHead    int

	// Retry escalation (EnableRetries; fault runs only): outstanding
	// requests keyed by shard-unique id, each a boxed record carrying
	// the escalation state the flyweight slabs deliberately omit. Nil on
	// fault-free runs, where the arrival path stays allocation-free.
	retry           map[uint64]*openRetry
	retryTimeout    sim.Time
	retryBackoffMax sim.Time
	retryMax        int
	retries         uint64
	timedOut        uint64
}

// openRetry is one outstanding open-loop request's retry box.
type openRetry struct {
	req      *msg.Request
	li       int32
	attempts int
}

// NewPopulation builds the traffic plane over numShards engines
// (pass the serial engine as a 1-element slice when unsharded).
// Deterministic for (cfg, seed, len(engines)).
func NewPopulation(cfg PopulationConfig, engines []*sim.Engine, netw Network, strat partition.Strategy, tenants *workload.Tenants, seed int64) *Population {
	cfg = cfg.withDefaults()
	if cfg.Clients < 1 {
		panic("client: population with no clients")
	}
	k := len(engines)
	if k < 1 {
		panic("client: population with no engines")
	}
	p := &Population{
		cfg:     cfg,
		net:     netw,
		strat:   strat,
		tenants: tenants,
		hints:   NewHintTable(cfg.Clients, cfg.Ways),
		baseCum: cumMix(cfg.MixStat, cfg.MixReaddir, cfg.MixChmod, cfg.MixCreate, cfg.MixRename, cfg.MixUnlink),
	}
	p.shards = make([]*popShard, k)
	for s := 0; s < k; s++ {
		n := (cfg.Clients - s + k - 1) / k // ceil((clients-s)/k): locals of stripe s
		ps := &popShard{
			pop:     p,
			eng:     engines[s],
			shard:   s,
			k:       k,
			rng:     make([]uint64, n),
			tenant:  make([]uint32, n),
			rateMul: 1,
			cum:     p.baseCum,
			lat:     metrics.NewLatHist(),
		}
		for li := 0; li < n; li++ {
			g := li*k + s
			ps.rng[li] = mix64(uint64(seed) ^ mix64(uint64(g)+0x9E3779B97F4A7C15))
			ps.tenant[li] = uint32(tenants.ClientTenant(g))
		}
		ps.wheel = sim.NewWheel(engines[s], cfg.Tick, n, ps.arrive)
		ps.churnOn = cfg.MixUnlink > 0
		p.shards[s] = ps
	}
	return p
}

// mix64 is the splitmix64 output permutation: the per-client RNG is one
// uint64 of state advanced by a golden-ratio increment.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// next draws the local client's next uniform word.
func (s *popShard) next(li int32) uint64 {
	s.rng[li] += 0x9E3779B97F4A7C15
	return mix64(s.rng[li])
}

// uniform converts a word to [0,1).
func uniform(u uint64) float64 { return float64(u>>11) / (1 << 53) }

// Start arms every client's first arrival and starts the wheels. Each
// client's first draw comes from its own stream, so the herd
// de-synchronises by construction.
func (p *Population) Start() {
	for _, s := range p.shards {
		s.wheel.Start()
		for li := int32(0); li < int32(len(s.rng)); li++ {
			s.rearm(li)
		}
	}
}

// Clients returns the population size.
func (p *Population) Clients() int { return p.cfg.Clients }

// SeedBaseVictims distributes reserved base-file unlink victims across
// the shards (victim i to shard i mod K, preserving order within each
// shard). Call before Start; the cluster layer picks the victims so the
// walk order — and with it the unlink sequence — is deterministic.
func (p *Population) SeedBaseVictims(victims []*namespace.Inode) {
	k := len(p.shards)
	for i, v := range victims {
		s := p.shards[i%k]
		s.baseVictims = append(s.baseVictims, v)
	}
}

// Hints exposes the shared location-hint table.
func (p *Population) Hints() *HintTable { return p.hints }

// rate returns the client's momentary arrival rate λ(t) in ops/sec.
func (s *popShard) rate(li int32, now sim.Time) float64 {
	cfg := &s.pop.cfg
	tn := uint64(s.tenant[li])
	r := cfg.Rate
	if cfg.DiurnalAmp > 0 {
		phase := uniform(mix64(tn + 0x5851F42D4C957F2D))
		x := now.Seconds()/cfg.DiurnalPeriod.Seconds() + phase
		r *= 1 + cfg.DiurnalAmp*math.Sin(2*math.Pi*x)
	}
	if cfg.BurstProb > 0 {
		epoch := uint64(now / cfg.BurstEpoch)
		h := mix64(tn*0x9E3779B97F4A7C15 ^ (epoch+1)*0xD1B54A32D192ED03)
		if uniform(h) < cfg.BurstProb {
			r *= cfg.BurstFactor
		}
	}
	if r < 1e-6 {
		r = 1e-6
	}
	return r
}

// rearm schedules the client's next arrival: an exponential inter-
// arrival at the rate frozen at draw time, through the wheel.
func (s *popShard) rearm(li int32) {
	u := uniform(s.next(li))
	if u <= 0 {
		u = 1e-18
	}
	d := sim.FromSeconds(-math.Log(u) / (s.rate(li, s.eng.Now()) * s.rateMul))
	if d > sim.Hour {
		d = sim.Hour
	}
	s.wheel.Schedule(li, d)
}

// getRequest reuses a drained request or allocates one. Open-loop
// clients never retransmit, so exactly one copy of each request exists
// and recycling on reply is unconditionally safe.
func (s *popShard) getRequest() *msg.Request {
	if n := len(s.pool); n > 0 {
		req := s.pool[n-1]
		s.pool[n-1] = nil
		s.pool = s.pool[:n-1]
		gen := req.Gen + 1
		*req = msg.Request{}
		req.Gen = gen
		return req
	}
	return &msg.Request{}
}

// arrive is the wheel's fire callback: draw the op, direct it, send it,
// and arm the next arrival. Allocation-free except for Create.
func (s *popShard) arrive(li int32) {
	if s.stopped {
		return
	}
	p := s.pop
	g := int(li)*s.k + s.shard
	tn := int(s.tenant[li])

	req := s.getRequest()
	s.seq++
	req.ID = s.seq
	req.Client = g
	req.Issued = s.eng.Now()
	req.Via = -1

	x := uniform(s.next(li)) * s.cum[numMixOps-1]
	switch {
	case x < s.cum[0]:
		req.Op = msg.Stat
		req.Target = p.tenants.File(tn, s.next(li), s.next(li))
	case x < s.cum[1]:
		req.Op = msg.Readdir
		req.Target = p.tenants.Dir(tn, s.next(li), s.next(li))
	case x < s.cum[2]:
		req.Op = msg.Chmod
		req.Target = p.tenants.File(tn, s.next(li), s.next(li))
	case x < s.cum[3]:
		req.Op = msg.Create
		req.Target = p.tenants.Dir(tn, s.next(li), s.next(li))
		s.nameSeq++
		req.NewName = popName(s.shard, s.nameSeq)
	case x < s.cum[4]:
		// Rename: move a working-set entry into another tenant's
		// directory — the cross-authority migration op. The inode
		// survives the move (failed renames are MDS-side no-ops), so
		// working-set and alias-table pointers stay valid.
		req.Op = msg.Rename
		req.Target = p.tenants.File(tn, s.next(li), s.next(li))
		dst := tn
		if t := p.tenants.NumTenants(); t > 1 {
			dst = int(s.next(li) % uint64(t-1))
			if dst >= tn {
				dst++
			}
		}
		req.DstDir = p.tenants.Dir(dst, s.next(li), s.next(li))
		s.nameSeq++
		req.NewName = popName(s.shard, s.nameSeq)
	default:
		// Unlink: remove a file this run created earlier, oldest first.
		// Until a create has completed there is nothing to remove; the
		// draw degrades to a create with the same draw pattern, seeding
		// the ring.
		if victim := s.churnPop(); victim != nil {
			req.Op = msg.Unlink
			req.Target = victim
		} else {
			req.Op = msg.Create
			req.Target = p.tenants.Dir(tn, s.next(li), s.next(li))
			s.nameSeq++
			req.NewName = popName(s.shard, s.nameSeq)
		}
	}
	// Hotspot acts redirect a fraction of draws to one target. The
	// extra uniform word is drawn only while a hotspot is active, so
	// hotspot-free runs keep their RNG streams (and goldens) intact.
	// Unlinks consume the draw but never redirect: the op must land on
	// the ring victim — retargeting it would remove a working-set entry
	// the tenant alias tables still point at.
	if s.hotFrac > 0 && uniform(s.next(li)) < s.hotFrac && req.Op != msg.Unlink {
		req.Target = s.hot
	}

	// A validly leased record is served locally: zero fabric hops, zero
	// latency. The check consumes no randomness and the branch only
	// exists when the plane is attached, so runs without it replay
	// bit-identically.
	if l := p.lease; l != nil && l.Tab != nil && !req.Op.IsUpdate() {
		ino := req.Target.ID
		if l.Tab.Valid(g, ino, l.Reg.Gen(ino), s.eng.Now()) {
			s.issued++
			s.completed++
			s.leaseHits++
			if req.Target == s.hot {
				s.hotLocal++
			}
			s.lat.Observe(0)
			if s.curLat != nil {
				s.curLat.Observe(0)
			}
			s.welford.Add(0)
			s.pool = append(s.pool, req)
			s.rearm(li)
			return
		}
	}

	mds := p.direct(g, req, s.next(li))
	req.FirstMDS = mds
	s.issued++
	if s.retry != nil {
		r := &openRetry{req: req, li: li}
		s.retry[req.ID] = r
		s.eng.AfterCall(s.retryTimeout, popRetryFire, s, r)
	}
	p.net.Send(mds, req)
	s.rearm(li)
}

// churnPop takes the oldest unlink-eligible inode, or nil. Reserved
// base victims drain first (they age the overlay), then the ring of
// files this run created.
func (s *popShard) churnPop() *namespace.Inode {
	if s.baseHead < len(s.baseVictims) {
		n := s.baseVictims[s.baseHead]
		s.baseVictims[s.baseHead] = nil
		s.baseHead++
		return n
	}
	if s.churnHead >= len(s.churn) {
		return nil
	}
	n := s.churn[s.churnHead]
	s.churn[s.churnHead] = nil
	s.churnHead++
	// Compact once half the slice is dead so the ring's footprint tracks
	// the live backlog, not the cumulative create count.
	if s.churnHead > len(s.churn)/2 && s.churnHead > 64 {
		live := copy(s.churn, s.churn[s.churnHead:])
		for i := live; i < len(s.churn); i++ {
			s.churn[i] = nil
		}
		s.churn = s.churn[:live]
		s.churnHead = 0
	}
	return n
}

// churnPush appends a freshly created file to the unlink ring.
func (s *popShard) churnPush(n *namespace.Inode) { s.churn = append(s.churn, n) }

// popRetryFire is the retry-escalation timer: retransmit with doubled
// backoff, or retire the op as timed out once attempts are exhausted
// (or the population is draining). Retiring recycles the request; a
// late reply for a retired id misses the retry map and is dropped
// without touching the pool, so a struct can never be pooled twice.
func popRetryFire(a, b any) {
	s := a.(*popShard)
	r := b.(*openRetry)
	if s.retry[r.req.ID] != r {
		return // completed (or already retired); timer is stale
	}
	if s.stopped || r.attempts >= s.retryMax {
		delete(s.retry, r.req.ID)
		s.timedOut++
		s.pool = append(s.pool, r.req)
		return
	}
	r.attempts++
	s.retries++
	// Resteer through the current hint state: the authority may have
	// moved (or died) since the original send.
	p := s.pop
	g := int(r.li)*s.k + s.shard
	mds := p.direct(g, r.req, s.next(r.li))
	r.req.FirstMDS = mds
	p.net.Send(mds, r.req)
	d := s.retryTimeout << uint(r.attempts)
	if d > s.retryBackoffMax {
		d = s.retryBackoffMax
	}
	s.eng.AfterCall(d, popRetryFire, s, r)
}

// popName formats p<shard>_<seq> without fmt; the retained string is
// the new entry's name (inherent allocation of the Create op).
func popName(shard, seq int) string {
	var buf [24]byte
	b := buf[:0]
	b = append(b, 'p')
	b = appendInt(b, shard)
	b = append(b, '_')
	b = appendInt(b, seq)
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [12]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// direct steers a request exactly like the closed-loop client (§4.4):
// computed authority for hashed strategies, deepest known prefix from
// the shared hint table otherwise, random fallback.
func (p *Population) direct(g int, req *msg.Request, u uint64) int {
	if p.strat.ClientComputable() {
		if req.Op == msg.Create || req.Op == msg.Mkdir {
			return p.strat.AuthorityForName(req.Target, req.NewName)
		}
		return p.strat.Authority(req.Target)
	}
	for n := req.Target; n != nil; n = n.Parent() {
		if auth, repl, ok := p.hints.Get(g, n.ID); ok {
			if repl {
				return int(u % uint64(p.net.NumMDS()))
			}
			return auth
		}
	}
	return int(u % uint64(p.net.NumMDS()))
}

// OnReply completes one arrival: record latency, absorb hints and a
// lease grant if one rides the reply, recycle the request. Runs on the
// client's shard. Allocation-free (pool growth amortises to zero once
// the outstanding high-water mark is reached).
func (p *Population) OnReply(rep *msg.Reply) {
	s := p.shards[rep.Client%len(p.shards)]
	if s.retry != nil {
		r, ok := s.retry[rep.ID]
		if !ok || r.req != rep.Req {
			// A duplicate reply to a retransmitted (or already retired)
			// request: the first copy completed it and recycled the
			// struct, so this one must not touch the pool or counters.
			return
		}
		delete(s.retry, rep.ID)
	}
	s.completed++
	lat := rep.Latency()
	s.lat.Observe(lat)
	if s.curLat != nil {
		s.curLat.Observe(lat)
	}
	s.welford.Add(lat.Seconds())
	for _, h := range rep.Hints {
		p.hints.Put(rep.Client, h)
	}
	if req := rep.Req; req != nil {
		if req.Target == s.hot {
			s.hotRemote++
		}
		// Feed the churn ring with the completed create's inode. The
		// reply travels after the barrier that applied the mutation, so
		// the parent's index already holds the new entry and the lookup
		// is read-only. Timed-out creates never reach here, so they can
		// never be drawn as unlink victims.
		if s.churnOn && req.Op == msg.Create {
			if c, ok := req.Target.LookupChild(req.NewName); ok && !c.IsDir() {
				s.churnPush(c)
			}
		}
		// Install a granted lease at receipt: lifetime runs from now,
		// and the generation snapshotted at the authority keeps a grant
		// that raced a recall from resurrecting the lease.
		if rep.Leased && p.lease != nil && p.lease.Tab != nil {
			p.lease.Tab.Install(rep.Client, req.Target.ID, rep.LeaseGen,
				s.eng.Now()+p.lease.Cfg.Duration)
		}
		s.pool = append(s.pool, req)
	}
}

// AttachLeasePlane hands the population the coherent client-cache plane.
// Call before Start.
func (p *Population) AttachLeasePlane(l *lease.Plane) { p.lease = l }

// EnableRetries arms the boxed retry-escalation cache on every shard:
// unanswered requests are retransmitted with capped exponential backoff
// (base timeout doubling per attempt, capped at backoffMax, 8× the base
// when zero) and retired as timed out after maxRetries attempts. Only
// fault schedules need this — it buys crash survival at the cost of one
// small heap box per outstanding request.
func (p *Population) EnableRetries(timeout sim.Time, maxRetries int, backoffMax sim.Time) {
	if timeout <= 0 || maxRetries <= 0 {
		panic("client: EnableRetries with no timeout or retry budget")
	}
	if backoffMax <= 0 {
		backoffMax = 8 * timeout
	}
	for _, s := range p.shards {
		s.retry = make(map[uint64]*openRetry)
		s.retryTimeout = timeout
		s.retryBackoffMax = backoffMax
		s.retryMax = maxRetries
	}
}

// Stop suppresses further arrivals (Drain): pending wheel timers fire
// into a no-op and outstanding retry chains retire at their next
// deadline, so a drained run leaves no in-flight population state.
func (p *Population) Stop() {
	for _, s := range p.shards {
		s.stopped = true
	}
}

// Issued and Completed sum the per-shard counters.
func (p *Population) Issued() uint64 {
	var n uint64
	for _, s := range p.shards {
		n += s.issued
	}
	return n
}

// Completed returns accepted replies across all shards.
func (p *Population) Completed() uint64 {
	var n uint64
	for _, s := range p.shards {
		n += s.completed
	}
	return n
}

// LeaseHits counts arrivals served locally from a valid lease.
func (p *Population) LeaseHits() uint64 {
	var n uint64
	for _, s := range p.shards {
		n += s.leaseHits
	}
	return n
}

// HotspotOps returns ops that landed on an act's hotspot target, split
// into locally leased serves and remote (MDS) completions.
func (p *Population) HotspotOps() (local, remote uint64) {
	for _, s := range p.shards {
		local += s.hotLocal
		remote += s.hotRemote
	}
	return
}

// Retries and TimedOut sum the retry-escalation counters.
func (p *Population) Retries() uint64 {
	var n uint64
	for _, s := range p.shards {
		n += s.retries
	}
	return n
}

// TimedOut counts ops retired after exhausting their retry budget.
func (p *Population) TimedOut() uint64 {
	var n uint64
	for _, s := range p.shards {
		n += s.timedOut
	}
	return n
}

// RetryOutstanding counts boxed requests still awaiting a reply or a
// retirement deadline; zero after a drain.
func (p *Population) RetryOutstanding() int {
	n := 0
	for _, s := range p.shards {
		n += len(s.retry)
	}
	return n
}

// Latency merges the per-shard latency histograms into dst.
func (p *Population) Latency(dst *metrics.LatHist) {
	for _, s := range p.shards {
		dst.Merge(s.lat)
	}
}

// MeanLatency returns the mean response time in seconds.
func (p *Population) MeanLatency() float64 {
	var w metrics.Welford
	for _, s := range p.shards {
		w.Merge(&s.welford)
	}
	return w.Mean()
}

// WheelStats sums ticks and fired timers across shards (diagnostics).
func (p *Population) WheelStats() (ticks, fired uint64) {
	for _, s := range p.shards {
		ticks += s.wheel.Ticks
		fired += s.wheel.Fired
	}
	return
}

// FootprintBytes returns the structural per-population memory: RNG and
// tenant slabs, wheel intrusive lists, the shared hint table, and the
// tenant model. Request pools and engine state are excluded (they scale
// with outstanding requests, not with the population size).
func (p *Population) FootprintBytes() int64 {
	var b int64
	for _, s := range p.shards {
		b += int64(len(s.rng))*8 + int64(len(s.tenant))*4
		b += s.wheel.FootprintBytes()
	}
	b += p.hints.FootprintBytes() + p.tenants.FootprintBytes()
	if p.lease != nil && p.lease.Tab != nil {
		// The lease slab is per-client state and counts against the
		// bytes/client budget; the shared registry scales with the
		// namespace, not the population, and is reported separately.
		b += int64(p.lease.Tab.FootprintBytes())
	}
	return b
}

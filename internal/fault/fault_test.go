package fault

import (
	"reflect"
	"strings"
	"testing"

	"dynmds/internal/sim"
)

func TestParseScheduleFull(t *testing.T) {
	src := "crash@30s:mds3,recover@45s:mds3,drop@0.01:link2-5," +
		"drop@0.05:mds1,drop@0.02:client,lag@10s-20s:all+2ms," +
		"slow@5s-15s:mds2x4,partition@60s-90s:{0-3|4-7}"
	s, err := ParseSchedule(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Crashes) != 1 || s.Crashes[0] != (NodeEvent{At: 30 * sim.Second, Node: 3}) {
		t.Errorf("crashes = %+v", s.Crashes)
	}
	if len(s.Recovers) != 1 || s.Recovers[0] != (NodeEvent{At: 45 * sim.Second, Node: 3}) {
		t.Errorf("recovers = %+v", s.Recovers)
	}
	if len(s.Drops) != 3 {
		t.Fatalf("drops = %+v", s.Drops)
	}
	if got := s.Drops[0].Sel.String(); got != "link2-5" {
		t.Errorf("drop sel = %s", got)
	}
	if len(s.Lags) != 1 || s.Lags[0].Extra != 2*sim.Millisecond {
		t.Errorf("lags = %+v", s.Lags)
	}
	if len(s.Slows) != 1 || s.Slows[0].Factor != 4 {
		t.Errorf("slows = %+v", s.Slows)
	}
	if len(s.Partitions) != 1 {
		t.Fatalf("partitions = %+v", s.Partitions)
	}
	p := s.Partitions[0]
	if len(p.A) != 4 || len(p.B) != 4 || p.A[0] != 0 || p.B[3] != 7 {
		t.Errorf("partition groups = %+v | %+v", p.A, p.B)
	}
	if err := s.Validate(8); err != nil {
		t.Errorf("validate(8): %v", err)
	}
	if err := s.Validate(4); err == nil {
		t.Error("validate(4) accepted node 7")
	}
	if s.Empty() {
		t.Error("schedule reported empty")
	}
}

func TestParseScheduleWindowCrash(t *testing.T) {
	s, err := ParseSchedule("crash@30s-45s:mds0")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Crashes) != 1 || len(s.Recovers) != 1 {
		t.Fatalf("windowed crash: %+v / %+v", s.Crashes, s.Recovers)
	}
	if s.Recovers[0].At != 45*sim.Second {
		t.Errorf("auto-recover at %v", s.Recovers[0].At)
	}
}

func TestParseScheduleEmpty(t *testing.T) {
	for _, src := range []string{"", "   ", " , "} {
		s, err := ParseSchedule(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
		}
		if !s.Empty() {
			t.Errorf("%q: not empty", src)
		}
	}
}

func TestParseScheduleTimes(t *testing.T) {
	s, err := ParseSchedule("crash@500ms:mds0,recover@250us:mds0,lag@1.5s-2s:client+750us")
	if err != nil {
		t.Fatal(err)
	}
	if s.Crashes[0].At != 500*sim.Millisecond {
		t.Errorf("500ms parsed as %v", s.Crashes[0].At)
	}
	if s.Recovers[0].At != 250*sim.Microsecond {
		t.Errorf("250us parsed as %v", s.Recovers[0].At)
	}
	if s.Lags[0].From != 1500*sim.Millisecond || s.Lags[0].Extra != 750*sim.Microsecond {
		t.Errorf("lag window parsed as %+v", s.Lags[0])
	}
}

func TestParseScheduleErrors(t *testing.T) {
	bad := []string{
		"crash30s:mds3",           // no @
		"crash@30s",               // no :
		"boom@30s:mds3",           // unknown kind
		"crash@30s:node3",         // bad node
		"crash@45s-30s:mds3",      // unordered window
		"drop@1.5:all",            // p out of range
		"drop@-0.1:all",           // p out of range
		"drop@0.1:link2-2",        // self link
		"drop@0.1:bogus",          // bad selector
		"lag@10s:all+1ms",         // lag without window
		"lag@10s-20s:all",         // lag without duration
		"lag@10s-20s:all+0s",      // non-positive lag
		"slow@10s-20s:mds1",       // slow without factor
		"slow@10s-20s:mds1x0.5",   // factor < 1
		"partition@10s-20s:0-3|4", // missing braces
		"partition@10s-20s:{0-3}", // one group
		"partition@1s-2s:{0-2|2}", // overlapping groups
		"partition@1s-2s:{|0}",    // empty group
		"crash@xyz:mds1",          // bad time
		"partition@1s-2s:{0|b}",   // bad group item
	}
	for _, src := range bad {
		if _, err := ParseSchedule(src); err == nil {
			t.Errorf("%q: accepted", src)
		}
	}
}

func TestPlanePartitionAndLag(t *testing.T) {
	s, err := ParseSchedule("partition@10s-20s:{0-1|2-3},lag@5s-15s:mds0+1ms")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlane(1, s, 4)
	at := func(now sim.Time, from, to int) (bool, sim.Time) {
		return p.Transit(from, to, now)
	}
	if drop, _ := at(9*sim.Second, 0, 2); drop {
		t.Error("partition active before window")
	}
	if drop, _ := at(10*sim.Second, 0, 2); !drop {
		t.Error("partition inactive at window start")
	}
	if drop, _ := at(15*sim.Second, 3, 1); !drop {
		t.Error("partition not symmetric")
	}
	if drop, _ := at(15*sim.Second, 0, 1); drop {
		t.Error("partition dropped intra-group traffic")
	}
	if drop, _ := at(15*sim.Second, 0, 4); drop {
		t.Error("partition dropped client-edge traffic")
	}
	if drop, _ := at(20*sim.Second, 0, 2); drop {
		t.Error("partition active at window end (half-open)")
	}
	if _, extra := at(6*sim.Second, 0, 3); extra != sim.Millisecond {
		t.Errorf("lag extra = %v", extra)
	}
	if _, extra := at(6*sim.Second, 1, 2); extra != 0 {
		t.Errorf("lag leaked to unmatched link: %v", extra)
	}
	if _, extra := at(16*sim.Second, 0, 3); extra != 0 {
		t.Errorf("lag active after window: %v", extra)
	}
}

func TestPlaneDropDeterministic(t *testing.T) {
	s, err := ParseSchedule("drop@0.3:all")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []bool {
		p := NewPlane(42, s, 4)
		out := make([]bool, 0, 1000)
		for i := 0; i < 1000; i++ {
			drop, _ := p.Transit(i%4, (i+1)%4, sim.Time(i))
			out = append(out, drop)
		}
		return out
	}
	a, b := run(), run()
	var drops int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identical planes", i)
		}
		if a[i] {
			drops++
		}
	}
	if drops < 200 || drops > 400 {
		t.Errorf("drop@0.3 dropped %d/1000", drops)
	}
}

func TestPlaneZeroProbabilityDrawsNothing(t *testing.T) {
	// A plane whose only probabilistic rule has p=0 must not consume
	// randomness: its stream stays aligned with an untouched stream.
	s, err := ParseSchedule("drop@0:all")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlane(7, s, 4)
	for i := 0; i < 100; i++ {
		if drop, extra := p.Transit(0, 1, sim.Time(i)); drop || extra != 0 {
			t.Fatal("p=0 rule perturbed transit")
		}
	}
	want := sim.NewStream(7, "fault").Float64()
	if got := p.rng.Float64(); got != want {
		t.Errorf("plane consumed randomness for p=0 rules: next draw %v, want %v", got, want)
	}
}

// randomSchedule builds an arbitrary valid schedule for the round-trip
// property test, covering every rule class, every selector kind, and
// every time granularity (s/ms/us).
func randomSchedule(rng *sim.RNG, numMDS int) *Schedule {
	rt := func() sim.Time {
		// Mix granularities so all three unit printers are exercised.
		switch rng.Intn(3) {
		case 0:
			return sim.Time(1+rng.Intn(30)) * sim.Second
		case 1:
			return sim.Time(1+rng.Intn(30000)) * sim.Millisecond
		default:
			return sim.Time(1 + rng.Intn(30000000))
		}
	}
	win := func() (sim.Time, sim.Time) {
		f := rt()
		return f, f + rt()
	}
	sel := func() LinkSel {
		switch rng.Intn(4) {
		case 0:
			return SelAll()
		case 1:
			return SelClient()
		case 2:
			return SelNode(rng.Intn(numMDS))
		default:
			a := rng.Intn(numMDS)
			b := (a + 1 + rng.Intn(numMDS-1)) % numMDS
			return SelPair(a, b)
		}
	}
	s := &Schedule{}
	for i := rng.Intn(3); i > 0; i-- {
		s.Crashes = append(s.Crashes, NodeEvent{At: rt(), Node: rng.Intn(numMDS)})
	}
	for i := rng.Intn(3); i > 0; i-- {
		s.Recovers = append(s.Recovers, NodeEvent{At: rt(), Node: rng.Intn(numMDS)})
	}
	for i := rng.Intn(3); i > 0; i-- {
		s.Drops = append(s.Drops, DropRule{Sel: sel(), P: rng.Float64()})
	}
	for i := rng.Intn(3); i > 0; i-- {
		f, to := win()
		s.Lags = append(s.Lags, LagRule{Sel: sel(), From: f, To: to, Extra: rt()})
	}
	for i := rng.Intn(3); i > 0; i-- {
		f, to := win()
		s.Slows = append(s.Slows, SlowWindow{From: f, To: to, Node: rng.Intn(numMDS), Factor: 1 + 7*rng.Float64()})
	}
	for i := rng.Intn(2); i > 0; i-- {
		f, to := win()
		half := 1 + rng.Intn(numMDS-1)
		perm := rng.Perm(numMDS)
		s.Partitions = append(s.Partitions, Partition{
			From: f, To: to,
			A: append([]int(nil), perm[:half]...),
			B: append([]int(nil), perm[half:]...),
		})
	}
	return s
}

// TestStringRoundTripProperty is the satellite-1 guarantee: for any
// schedule — parsed from the DSL or built programmatically (as the
// chaos generator and shrinker do) — String() emits canonical DSL that
// ParseSchedule turns back into a structurally identical schedule. That
// makes every shrunk repro loadable via `mdsim -faults` verbatim.
func TestStringRoundTripProperty(t *testing.T) {
	const numMDS = 6
	rng := sim.NewStream(20260806, "fault-roundtrip")
	for i := 0; i < 500; i++ {
		s := randomSchedule(rng, numMDS)
		text := s.String()
		back, err := ParseSchedule(text)
		if err != nil {
			t.Fatalf("iter %d: reparse of %q: %v", i, text, err)
		}
		back.src = s.src // Source is carrier metadata, not structure.
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("iter %d: round trip changed the schedule\n text: %q\n  was: %+v\n  got: %+v",
				i, text, s, back)
		}
		if again := back.String(); again != text {
			t.Fatalf("iter %d: String not a fixpoint: %q then %q", i, text, again)
		}
		if err := back.Validate(numMDS); err != nil {
			t.Fatalf("iter %d: reparsed schedule invalid: %v", i, err)
		}
	}
}

// TestStringRoundTripParsed: DSL text → parse → print → parse must be
// structurally stable too, including windowed crash shorthand (which
// canonicalises into separate crash/recover events) and sub-second
// times.
func TestStringRoundTripParsed(t *testing.T) {
	srcs := []string{
		"crash@30s-45s:mds3",
		"crash@500ms:mds0,recover@250us:mds0",
		"drop@0.015:link2-5,drop@1e-05:all,lag@1500ms-2s:client+750us",
		"slow@5s-15s:mds2x2.5,partition@60s-90s:{0.2|1.3}",
		"",
	}
	for _, src := range srcs {
		s, err := ParseSchedule(src)
		if err != nil {
			t.Fatal(err)
		}
		text := s.String()
		back, err := ParseSchedule(text)
		if err != nil {
			t.Fatalf("%q: reparse of %q: %v", src, text, err)
		}
		back.src = s.src
		if !reflect.DeepEqual(s, back) {
			t.Errorf("%q: round trip via %q changed schedule", src, text)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	s, err := ParseSchedule("crash@30s:mds1,partition@10s-20s:{0|1.2}")
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	c.Crashes[0].Node = 2
	c.Partitions[0].A[0] = 9
	if s.Crashes[0].Node != 1 || s.Partitions[0].A[0] != 0 {
		t.Error("Clone shares memory with the original")
	}
	if s.NumRules() != 2 || c.NumRules() != 2 {
		t.Errorf("NumRules = %d / %d, want 2", s.NumRules(), c.NumRules())
	}
}

func TestScheduleSourceRoundTrip(t *testing.T) {
	src := "crash@30s:mds3,drop@0.01:link2-5"
	s, err := ParseSchedule("  " + src + " ")
	if err != nil {
		t.Fatal(err)
	}
	if s.Source() != src {
		t.Errorf("source = %q", s.Source())
	}
	if !strings.Contains(s.Drops[0].Sel.String(), "link") {
		t.Errorf("sel string = %q", s.Drops[0].Sel.String())
	}
}

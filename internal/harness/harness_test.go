package harness

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dynmds/internal/cluster"
	"dynmds/internal/sim"
)

func tinyCfg(strategy string) cluster.Config {
	cfg := cluster.Default()
	cfg.Strategy = strategy
	cfg.NumMDS = 2
	cfg.ClientsPerMDS = 5
	cfg.FS.Users = 10
	cfg.Duration = 2 * sim.Second
	cfg.Warmup = sim.Second
	return cfg
}

func TestRunOneAndSweep(t *testing.T) {
	specs := []RunSpec{
		{Label: "a", Cfg: tinyCfg(cluster.StratDynamic)},
		{Label: "b", Cfg: tinyCfg(cluster.StratFileHash)},
		{Label: "c", Cfg: tinyCfg(cluster.StratStatic)},
	}
	results, err := Sweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r == nil || r.MeasuredOps == 0 {
			t.Fatalf("spec %d produced nothing", i)
		}
	}
	if results[0].Strategy != cluster.StratDynamic || results[1].Strategy != cluster.StratFileHash {
		t.Fatal("results out of spec order")
	}
}

func TestSweepParallelismMatchesSerial(t *testing.T) {
	spec := RunSpec{Label: "x", Cfg: tinyCfg(cluster.StratDynamic)}
	serial, err := RunOne(spec)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Sweep([]RunSpec{spec, spec, spec})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range par {
		if r.MeasuredOps != serial.MeasuredOps || r.HitRate != serial.HitRate {
			t.Fatalf("parallel run %d diverged from serial: %v vs %v", i, r, serial)
		}
	}
}

// TestDeterminism is the regression guard for the simulator's core
// contract: the same configuration and seed produce bit-identical
// results, run serially or through the parallel sweep. Event pooling,
// cache iteration order, and typed-callback dispatch must all preserve
// this; a flaky diff here means nondeterminism crept into the hot path.
// stripWall zeroes the real-time accounting fields, which legitimately
// differ between otherwise bit-identical runs.
func stripWall(r *cluster.Result) *cluster.Result {
	c := *r
	c.SetupWall, c.RunWall = 0, 0
	return &c
}

func TestDeterminism(t *testing.T) {
	cfg := cluster.Default()
	cfg.Strategy = cluster.StratDynamic
	cfg.NumMDS = 2
	cfg.ClientsPerMDS = 10
	cfg.FS.Users = 10
	cfg.Duration = 2 * sim.Second
	cfg.Warmup = 500 * sim.Millisecond
	spec := RunSpec{Label: "det", Cfg: cfg}

	first, err := RunOne(spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunOne(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripWall(first), stripWall(second)) {
		t.Fatalf("serial reruns diverged:\n first: %+v\nsecond: %+v", first, second)
	}
	swept, err := Sweep([]RunSpec{spec, spec, spec})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range swept {
		if !reflect.DeepEqual(stripWall(first), stripWall(r)) {
			t.Fatalf("sweep run %d diverged from serial:\nserial: %+v\n sweep: %+v", i, first, r)
		}
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	bad := tinyCfg("Nonsense")
	if _, err := Sweep([]RunSpec{{Label: "bad", Cfg: bad}}); err == nil {
		t.Fatal("sweep swallowed an error")
	}
}

func TestExperimentRegistry(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("experiments = %d, want 6", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if _, ok := ByID(e.ID); !ok {
			t.Fatalf("ByID(%s) missed", e.ID)
		}
	}
	if _, ok := ByID("fig99"); ok {
		t.Fatal("ByID invented an experiment")
	}
	for _, e := range Extras() {
		if _, ok := ByID(e.ID); !ok {
			t.Fatalf("extra %s not findable", e.ID)
		}
	}
}

func TestExtrasQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := Options{Quick: true, Seed: 1}
	for _, e := range Extras() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, opt); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), "Extension") {
				t.Fatalf("unexpected output:\n%s", buf.String())
			}
		})
	}
}

// The figure runners are exercised end-to-end at the smallest scale to
// catch wiring regressions; shape assertions live in EXPERIMENTS.md and
// the benchmarks.
func TestFiguresQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := Options{Quick: true, Seed: 1}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, opt); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, "Figure") {
				t.Fatalf("no table header in output:\n%s", out)
			}
			if len(strings.Split(out, "\n")) < 4 {
				t.Fatalf("suspiciously short output:\n%s", out)
			}
		})
	}
}

// Package storage models the metadata storage subsystem beneath one MDS.
// Following the paper's methodology (§5.1), it does not simulate disk
// geometry: "we simplify the storage simulation to reflect average disk
// latencies and transactional throughputs only". What it does model:
//
//   - A read service centre with an average per-I/O latency, so reads
//     queue and an MDS's I/O rate is throttled.
//   - Directory-granular reads with embedded inodes (§4.5): strategies
//     that store a directory's entries and inodes together fetch the
//     whole directory in one I/O (plus a small per-record transfer
//     cost), enabling prefetching; strategies with scattered per-file
//     metadata pay one I/O per inode.
//   - The two-tier update path (§4.6): updates append to a bounded log
//     (fast sequential writes, optionally NVRAM-masked); entries that
//     fall off the end of the log without subsequent modification are
//     written to the long-term object-store tier. With a log sized on
//     the order of MDS memory, the log approximates the node's working
//     set and can preload the cache after a failure.
package storage

import (
	"dynmds/internal/namespace"
	"dynmds/internal/osd"
	"dynmds/internal/sim"
)

// Config sets the latency model.
type Config struct {
	// ReadLatency is the average positioning cost of one random
	// metadata read I/O.
	ReadLatency sim.Time
	// ReadPerRecord is the incremental transfer time per metadata
	// record in a directory-granular read.
	ReadPerRecord sim.Time
	// LogAppendLatency is the commit latency of one log append. NVRAM
	// in the MDS can mask this almost entirely.
	LogAppendLatency sim.Time
	// LogCapacity is the bounded log's size in records; on the order of
	// the MDS cache capacity per the paper.
	LogCapacity int
	// DirObjectOrder, when > 0, models long-term directory objects as
	// copy-on-write B-trees of that order, accounting incremental write
	// amplification (§4.6). Zero disables the model.
	DirObjectOrder int

	// Pool, when non-nil, routes reads and log appends to the shared
	// OSD pool instead of node-local disks — the shared metadata store
	// of §2.1.3 that "offers fundamental advantages over
	// directly-attached storage by easing MDS failover". PoolOwner is
	// this node's index (for its log object).
	Pool      *osd.Pool
	PoolOwner int
}

// DefaultConfig returns disk parameters resembling 2004-era hardware:
// ~8 ms average random read, ~10 µs per record transferred, ~100 µs
// NVRAM-backed log append.
func DefaultConfig(logCapacity int) Config {
	return Config{
		ReadLatency:      8 * sim.Millisecond,
		ReadPerRecord:    10 * sim.Microsecond,
		LogAppendLatency: 100 * sim.Microsecond,
		LogCapacity:      logCapacity,
		DirObjectOrder:   32,
	}
}

// Stats counts storage activity.
type Stats struct {
	InodeReads  uint64 // single-record read I/Os
	DirReads    uint64 // directory-granular read I/Os
	RecordsRead uint64 // total records fetched
	LogAppends  uint64
	TierWrites  uint64 // records flushed from log to the store tier
}

// Store is one MDS's storage subsystem.
type Store struct {
	cfg      Config
	readDisk *sim.Server
	logDisk  *sim.Server
	log      *BoundedLog
	// slow scales service times while a slow-node fault window is
	// active; <= 1 means normal speed. The shared-pool ablation path is
	// not scaled (pool service times belong to the pool, not the node).
	slow float64

	// Dirs is the long-term tier's directory-object model; nil when
	// disabled.
	Dirs *DirObjects

	Stats Stats
}

// New creates a store on the given engine.
func New(eng *sim.Engine, cfg Config) *Store {
	if cfg.LogCapacity < 1 {
		cfg.LogCapacity = 1
	}
	s := &Store{
		cfg:      cfg,
		readDisk: sim.NewServer(eng, 1),
		logDisk:  sim.NewServer(eng, 1),
		log:      NewBoundedLog(cfg.LogCapacity),
	}
	if cfg.DirObjectOrder > 0 {
		s.Dirs = NewDirObjects(cfg.DirObjectOrder)
	}
	return s
}

// SetSlow scales subsequent disk service times by factor (slow-node
// fault injection); factor <= 1 restores normal speed.
func (s *Store) SetSlow(factor float64) { s.slow = factor }

func (s *Store) scaled(t sim.Time) sim.Time {
	if s.slow <= 1 {
		return t
	}
	return sim.Time(float64(t) * s.slow)
}

// ReadInode fetches a single metadata record (scattered-inode layout)
// for the given inode. done runs when the I/O completes.
func (s *Store) ReadInode(id namespace.InodeID, done func()) {
	s.Stats.InodeReads++
	s.Stats.RecordsRead++
	if s.cfg.Pool != nil {
		s.cfg.Pool.Read(osd.DirObject(id), 1, done)
		return
	}
	s.readDisk.Submit(s.scaled(s.cfg.ReadLatency+s.cfg.ReadPerRecord), done)
}

// ReadInodeCall is the allocation-free form of ReadInode: the
// completion runs fn(a, b) with the payload riding in the event. The
// shared-pool path still closes over the arguments (it is an ablation
// configuration, not the measured hot path).
func (s *Store) ReadInodeCall(id namespace.InodeID, fn sim.EventFunc, a, b any) {
	s.Stats.InodeReads++
	s.Stats.RecordsRead++
	if s.cfg.Pool != nil {
		s.cfg.Pool.Read(osd.DirObject(id), 1, func() { fn(a, b) })
		return
	}
	s.readDisk.SubmitCall(s.scaled(s.cfg.ReadLatency+s.cfg.ReadPerRecord), fn, a, b)
}

// ReadDir fetches directory dir and its embedded inodes in one I/O:
// records is the number of entries transferred (directory + children).
func (s *Store) ReadDir(dir namespace.InodeID, records int, done func()) {
	if records < 1 {
		records = 1
	}
	s.Stats.DirReads++
	s.Stats.RecordsRead += uint64(records)
	if s.cfg.Pool != nil {
		s.cfg.Pool.Read(osd.DirObject(dir), records, done)
		return
	}
	s.readDisk.Submit(s.scaled(s.cfg.ReadLatency+sim.Time(records)*s.cfg.ReadPerRecord), done)
}

// ReadDirCall is the allocation-free form of ReadDir.
func (s *Store) ReadDirCall(dir namespace.InodeID, records int, fn sim.EventFunc, a, b any) {
	if records < 1 {
		records = 1
	}
	s.Stats.DirReads++
	s.Stats.RecordsRead += uint64(records)
	if s.cfg.Pool != nil {
		s.cfg.Pool.Read(osd.DirObject(dir), records, func() { fn(a, b) })
		return
	}
	s.readDisk.SubmitCall(s.scaled(s.cfg.ReadLatency+sim.Time(records)*s.cfg.ReadPerRecord), fn, a, b)
}

// Commit appends an update for the inode to the bounded log. Records
// expelled from the log are counted as tier writes (they are flushed to
// the long-term store asynchronously; the flush does not delay reads in
// this model, matching the paper's write-bandwidth-dominated view).
// With a shared pool the log object itself lives on OSDs, which is what
// lets a standby replay a failed node's log (§4.6).
func (s *Store) Commit(id namespace.InodeID, done func()) {
	s.Stats.LogAppends++
	if expelled := s.log.Append(id); expelled {
		s.Stats.TierWrites++
	}
	if s.cfg.Pool != nil {
		s.cfg.Pool.Write(osd.LogObject(s.cfg.PoolOwner), done)
		return
	}
	s.logDisk.Submit(s.scaled(s.cfg.LogAppendLatency), done)
}

// CommitCall is the allocation-free form of Commit.
func (s *Store) CommitCall(id namespace.InodeID, fn sim.EventFunc, a, b any) {
	s.Stats.LogAppends++
	if expelled := s.log.Append(id); expelled {
		s.Stats.TierWrites++
	}
	if s.cfg.Pool != nil {
		s.cfg.Pool.Write(osd.LogObject(s.cfg.PoolOwner), func() { fn(a, b) })
		return
	}
	s.logDisk.SubmitCall(s.scaled(s.cfg.LogAppendLatency), fn, a, b)
}

// WorkingSet returns the distinct inode IDs currently in the log, oldest
// first — the approximate working set used to pre-warm a cache after
// failover (§4.6).
func (s *Store) WorkingSet() []namespace.InodeID { return s.log.Distinct() }

// QueueDepth reports outstanding read I/Os (queued + in service).
func (s *Store) QueueDepth() int {
	return s.readDisk.QueueLen() + s.readDisk.InService()
}

// ReadUtilization reports mean read-disk occupancy.
func (s *Store) ReadUtilization(now sim.Time) float64 {
	return s.readDisk.Utilization(now)
}

// BoundedLog is a fixed-capacity append log of inode IDs. Appending when
// full expels the oldest entry; the expelled entry triggers a tier write
// only if no newer append for the same inode remains in the log (a newer
// entry supersedes it).
type BoundedLog struct {
	capacity int
	ring     []namespace.InodeID
	head     int // index of oldest
	n        int
	live     map[namespace.InodeID]int // entries per inode currently in log
}

// NewBoundedLog creates a log holding capacity records.
func NewBoundedLog(capacity int) *BoundedLog {
	if capacity < 1 {
		panic("storage: log capacity must be >= 1")
	}
	return &BoundedLog{
		capacity: capacity,
		ring:     make([]namespace.InodeID, capacity),
		live:     make(map[namespace.InodeID]int),
	}
}

// Len returns the number of records in the log.
func (l *BoundedLog) Len() int { return l.n }

// Cap returns the log capacity.
func (l *BoundedLog) Cap() int { return l.capacity }

// Append adds a record, reporting whether an expelled record required a
// tier write (no newer record for the same inode remained).
func (l *BoundedLog) Append(id namespace.InodeID) (tierWrite bool) {
	if l.n == l.capacity {
		old := l.ring[l.head]
		l.head = (l.head + 1) % l.capacity
		l.n--
		l.live[old]--
		if l.live[old] == 0 {
			delete(l.live, old)
			tierWrite = true
		}
	}
	tail := (l.head + l.n) % l.capacity
	l.ring[tail] = id
	l.n++
	l.live[id]++
	return tierWrite
}

// Contains reports whether the inode has a record in the log.
func (l *BoundedLog) Contains(id namespace.InodeID) bool {
	return l.live[id] > 0
}

// Distinct returns the distinct inode IDs in the log, oldest first.
func (l *BoundedLog) Distinct() []namespace.InodeID {
	seen := make(map[namespace.InodeID]bool, len(l.live))
	out := make([]namespace.InodeID, 0, len(l.live))
	for i := 0; i < l.n; i++ {
		id := l.ring[(l.head+i)%l.capacity]
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dynmds/internal/client"
	"dynmds/internal/cluster"
	"dynmds/internal/endure"
	"dynmds/internal/sim"
)

// endureFlags carries the endurance-plane CLI knobs into runEndure.
type endureFlags struct {
	every      float64
	dir        string
	restore    string
	compactAt  int
	soakCycles int
	seed       int64
}

// runEndure executes the endurance plane on a custom-run config:
// a plain aging run, a restore continuation, or a rolling chaos soak.
// Flag/snapshot disagreements exit 2 before any event runs; simfsck or
// gate violations exit 1.
func runEndure(cfg cluster.Config, f endureFlags) int {
	opt := endure.Options{
		Cluster:   cfg,
		Every:     sim.FromSeconds(f.every),
		Dir:       f.dir,
		CompactAt: f.compactAt,
		OnRow:     printEndureRow,
	}
	// Fail-fast validation: option errors, and — for -restore — snapshot
	// version, config-hash, and shard-count mismatches are all usage
	// errors, caught before the simulation starts.
	var err error
	if f.restore != "" {
		err = endure.ValidateSnapshot(opt, f.restore)
	} else {
		check := opt
		err = check.Normalize()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdsim:", err)
		flag.Usage()
		return 2
	}

	start := time.Now()
	if f.soakCycles > 0 {
		return runSoak(opt, f, start)
	}
	var res *endure.Result
	if f.restore != "" {
		fmt.Printf("restoring from %s\n", f.restore)
		res, err = endure.Restore(opt, f.restore)
	} else {
		res, err = endure.Run(opt)
	}
	if err != nil {
		if fe, ok := endure.IsFsck(err); ok {
			fmt.Printf("simfsck: FAIL at checkpoint %d\n%v\n", fe.Checkpoint, fe.Err)
			return 1
		}
		fmt.Fprintln(os.Stderr, "mdsim:", err)
		return 1
	}
	fmt.Print(res.CurveTable())
	fmt.Printf("degradation drift: %.4f (1 - last/peak ops/s)\n", res.Drift())
	fmt.Printf("digest: %s\n", res.Digest)
	fmt.Printf("wall time: %v\n", time.Since(start).Round(time.Millisecond))
	return 0
}

// runSoak executes the rolling chaos soak and renders its report.
func runSoak(opt endure.Options, f endureFlags, start time.Time) int {
	rep, err := endure.Soak(endure.SoakOptions{
		Base:   opt,
		Seed:   f.seed,
		Cycles: f.soakCycles,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdsim:", err)
		return 1
	}
	fmt.Printf("soak schedule: %s\n", rep.Schedule)
	if rep.Failure != nil {
		fail := rep.Failure
		fmt.Printf("soak: FAIL (checkpoint %d)\n%s\n", fail.Checkpoint, fail.Err)
		if fail.Shrunk != "" {
			fmt.Printf("shrunk schedule (%d evals): %s\n", fail.Evals, fail.Shrunk)
		}
		if fail.RestartFrom != "" {
			fmt.Printf("shrink restarted from checkpoint: %s\n", fail.RestartFrom)
		}
		fmt.Printf("repro: %s\n", fail.Repro)
		return 1
	}
	fmt.Print(rep.Result.CurveTable())
	fmt.Printf("soak: clean — %d checkpoints simfsck-verified, drift %.4f\n",
		len(rep.Result.Rows), rep.Drift)
	fmt.Printf("wall time: %v\n", time.Since(start).Round(time.Millisecond))
	return 0
}

// printEndureRow is the per-checkpoint progress line.
func printEndureRow(r endure.Row) {
	line := fmt.Sprintf("ck %2d t=%6.1fs: %8.0f ops/s, %6d tombstones (%.4f), lazy-miss %.4f, live %7d, compacted=%v",
		r.Index, r.At.Seconds(), r.OpsPerSec, r.Tombstones, r.TombstoneDensity,
		r.LazyMissRate, r.LiveInodes, r.Compacted)
	if r.Path != "" {
		line += " -> " + r.Path
	}
	fmt.Println(line)
}

// bench10Report is the -bench10-json schema: the overlay-degradation
// curve with the tombstone-compaction fix off and on, a restore
// bit-identity check at serial and sharded engine configurations, and
// a rolling chaos soak — the endurance plane's whole acceptance
// surface in one artifact for CI gating.
type bench10Report struct {
	Quick    bool    `json:"quick"`
	Clients  int     `json:"clients"`
	NumMDS   int     `json:"num_mds"`
	DurS     float64 `json:"dur_s"`
	EveryS   float64 `json:"checkpoint_every_s"`
	OpBudget float64 `json:"op_budget"`

	SoakDurS   float64 `json:"soak_dur_s"`
	SoakEveryS float64 `json:"soak_checkpoint_every_s"`
	SoakCycles int     `json:"soak_cycles"`

	Unfixed      []endure.Row `json:"unfixed_curve"`
	Fixed        []endure.Row `json:"fixed_curve"`
	UnfixedDrift float64      `json:"unfixed_drift"`
	FixedDrift   float64      `json:"fixed_drift"`

	// RestoreDeterministic is true when, for every shard count tried, a
	// run saved at the first checkpoint and restored reproduces the
	// uninterrupted run's digest bit-for-bit.
	RestoreDeterministic bool   `json:"restore_deterministic"`
	RestoreShards        []int  `json:"restore_shards"`
	RestoreDetail        string `json:"restore_detail,omitempty"`

	Soak    *endure.SoakReport `json:"soak"`
	SoakOK  bool               `json:"soak_ok"`
	WallNs  int64              `json:"wall_ns"`
	PeakRSS int64              `json:"peak_rss_kb"`
}

// endureBaseConfig builds the canonical endurance-run configuration:
// a 4-node cluster under an open-loop churn mix whose aggregate arrival
// rate stays under service capacity (the open loop does not
// back-pressure).
func endureBaseConfig(seed int64, clients int, durS float64) cluster.Config {
	cfg := cluster.Default()
	cfg.Seed = seed
	cfg.NumMDS = 4
	cfg.FS.Users = 60
	cfg.Duration = sim.FromSeconds(durS)
	cfg.Warmup = sim.FromSeconds(1)
	// ~600 ops/s aggregate: enough churn to age the overlay, low enough
	// that every checkpoint quiesce drains even while 100k cold-cache
	// clients are still faulting records in.
	rate := 600 / float64(clients)
	if rate > 50 {
		rate = 50
	}
	cfg.OpenLoop = &client.PopulationConfig{Clients: clients, Rate: rate}
	return cfg
}

// runBench10 produces BENCH_10.json: degradation curves with the
// compaction fix disabled and enabled, restore determinism across
// shard counts, and a rolling soak with a drift gate.
func runBench10(path string, seed int64, quick bool, shards int) error {
	start := time.Now()
	clients, durS, everyS := 100_000, 15.0, 3.0
	cycles := 12
	if quick {
		clients, durS, everyS = 20_000, 10.0, 2.5
		cycles = 4
	}
	rep := bench10Report{
		Quick:   quick,
		Clients: clients,
		NumMDS:  4,
		DurS:    durS,
		EveryS:  everyS,
	}

	base := func() endure.Options {
		return endure.Options{
			Cluster: endureBaseConfig(seed, clients, durS),
			Every:   sim.FromSeconds(everyS),
		}
	}

	// Degradation curve, fix off: the tombstone map grows unboundedly.
	unfixed := base()
	unfixed.CompactAt = -1
	res, err := endure.Run(unfixed)
	if err != nil {
		return fmt.Errorf("bench10 unfixed curve: %w", err)
	}
	rep.Unfixed, rep.UnfixedDrift = res.Rows, res.Drift()
	fmt.Printf("unfixed curve (no compaction): drift %.4f\n%s", rep.UnfixedDrift, res.CurveTable())

	// Fix on: compaction at a threshold the run actually crosses.
	fixed := base()
	fixed.CompactAt = 500
	res, err = endure.Run(fixed)
	if err != nil {
		return fmt.Errorf("bench10 fixed curve: %w", err)
	}
	rep.Fixed, rep.FixedDrift = res.Rows, res.Drift()
	fmt.Printf("fixed curve (compact at %d tombstones): drift %.4f\n%s", fixed.CompactAt, rep.FixedDrift, res.CurveTable())

	// Restore bit-identity, serial and sharded.
	rep.RestoreDeterministic = true
	shardSet := []int{0, 4}
	if shards > 1 && shards != 4 {
		shardSet = append(shardSet, shards)
	}
	rep.RestoreShards = shardSet
	for _, k := range shardSet {
		detail, ok, err := bench10Restore(base, k)
		if err != nil {
			return fmt.Errorf("bench10 restore K=%d: %w", k, err)
		}
		if !ok {
			rep.RestoreDeterministic = false
			rep.RestoreDetail = detail
		}
		fmt.Printf("restore determinism K=%d: %v\n", k, ok)
	}

	// Rolling chaos soak: simfsck at every checkpoint, drift gate. Full
	// mode runs the endurance regime proper — two virtual days of low-
	// rate churn (~50 ops/s aggregate) with a crash/recover cycle every
	// few hours and a checkpoint every four; quick mode compresses the
	// horizon to seconds.
	soakOpt := base()
	if !quick {
		soakCfg := endureBaseConfig(seed, 20_000, 172_800) // two virtual days
		soakCfg.OpenLoop.Rate = 0.0025                     // ~50 ops/s aggregate
		soakOpt = endure.Options{Cluster: soakCfg, Every: sim.FromSeconds(14_400)}
	}
	rep.SoakDurS = soakOpt.Cluster.Duration.Seconds()
	rep.SoakEveryS = soakOpt.Every.Seconds()
	rep.SoakCycles = cycles
	rep.Soak, err = endure.Soak(endure.SoakOptions{
		Base:     soakOpt,
		Seed:     seed,
		Cycles:   cycles,
		MaxDrift: 0.5,
	})
	if err != nil {
		return fmt.Errorf("bench10 soak: %w", err)
	}
	rep.SoakOK = rep.Soak.Failure == nil
	if rep.SoakOK {
		fmt.Printf("soak: clean over %d cycles, drift %.4f\n", cycles, rep.Soak.Drift)
	} else {
		fmt.Printf("soak: FAIL — %s\nrepro: %s\n", rep.Soak.Failure.Err, rep.Soak.Failure.Repro)
	}

	rep.WallNs = time.Since(start).Nanoseconds()
	rep.PeakRSS = peakRSSKB()
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: drift unfixed %.4f vs fixed %.4f, restore ok %v, soak ok %v\n",
		path, rep.UnfixedDrift, rep.FixedDrift, rep.RestoreDeterministic, rep.SoakOK)
	if !rep.RestoreDeterministic {
		return fmt.Errorf("restore determinism failed: %s", rep.RestoreDetail)
	}
	if !rep.SoakOK {
		return fmt.Errorf("soak failed: %s", rep.Soak.Failure.Err)
	}
	return nil
}

// bench10Restore runs the uninterrupted reference at shard count k,
// then a checkpointing run, then restores from the first snapshot and
// compares final digests.
func bench10Restore(base func() endure.Options, k int) (string, bool, error) {
	ref := base()
	ref.Cluster.Shards = k
	refRes, err := endure.Run(ref)
	if err != nil {
		return "", false, err
	}

	dir, err := os.MkdirTemp("", "endure-bench10-*")
	if err != nil {
		return "", false, err
	}
	defer os.RemoveAll(dir)

	saved := base()
	saved.Cluster.Shards = k
	saved.Dir = dir
	savedRes, err := endure.Run(saved)
	if err != nil {
		return "", false, err
	}
	if savedRes.Digest != refRes.Digest {
		return fmt.Sprintf("K=%d: checkpointing run diverged from plain run:\n  plain %s\n  saved %s",
			k, refRes.Digest, savedRes.Digest), false, nil
	}

	restored := base()
	restored.Cluster.Shards = k
	restRes, err := endure.Restore(restored, filepath.Join(dir, "ck-000.snap"))
	if err != nil {
		return "", false, err
	}
	if restRes.Digest != refRes.Digest {
		return fmt.Sprintf("K=%d: restored run diverged:\n  plain    %s\n  restored %s",
			k, refRes.Digest, restRes.Digest), false, nil
	}
	return "", true, nil
}

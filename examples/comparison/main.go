// Comparison: run the same file system and workload under all five
// metadata partitioning strategies and print the paper's headline
// metrics side by side — throughput, cache hit rate, prefix-inode cache
// overhead, and request forwarding.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	"dynmds/internal/cluster"
	"dynmds/internal/metrics"
	"dynmds/internal/sim"
)

func main() {
	base := func(strategy string) cluster.Config {
		cfg := cluster.Default()
		cfg.Strategy = strategy
		cfg.NumMDS = 8
		cfg.ClientsPerMDS = 60
		cfg.FS.Users = 200
		cfg.MDS.CacheCapacity = 2500
		cfg.Duration = 20 * sim.Second
		cfg.Warmup = 8 * sim.Second
		return cfg
	}

	fmt.Println("general-purpose workload, 8 MDS, 480 clients, ~55k inodes")
	tb := metrics.NewTable("strategy", "ops/s/mds", "hit rate", "prefix %", "fwd %",
		"lat p50 ms", "lat p99 ms")
	for _, s := range cluster.Strategies {
		cl, err := cluster.New(base(s))
		if err != nil {
			log.Fatal(err)
		}
		r := cl.Run()
		tb.AddRow(s, r.AvgThroughput,
			fmt.Sprintf("%.3f", r.HitRate),
			fmt.Sprintf("%.1f", 100*r.PrefixFrac),
			fmt.Sprintf("%.2f", 100*r.ForwardFrac),
			fmt.Sprintf("%.2f", r.LatencyP50*1000),
			fmt.Sprintf("%.2f", r.LatencyP99*1000))
	}
	fmt.Print(tb)
	fmt.Println()
	fmt.Println("Subtree partitions exploit directory locality (embedded inodes,")
	fmt.Println("prefetch) and keep prefix overhead low; hashed distributions pay")
	fmt.Println("for scattered metadata with per-inode I/O and replicated prefixes;")
	fmt.Println("Lazy Hybrid avoids traversal entirely but loses all locality.")
}

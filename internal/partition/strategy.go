// Package partition defines the metadata-partitioning strategy interface
// and implements the comparison strategies the paper evaluates against
// dynamic subtree partitioning (§3.1, §5): static subtree partitioning,
// file hashing, directory hashing, and Lazy Hybrid. The dynamic strategy
// itself — the paper's contribution — lives in internal/core and builds
// on this package's subtree table.
package partition

import (
	"dynmds/internal/metrics"
	"dynmds/internal/namespace"
	"dynmds/internal/sim"
)

// Strategy decides which MDS is authoritative for each metadata item and
// describes the structural properties that shape MDS behaviour.
type Strategy interface {
	// Name identifies the strategy in output tables.
	Name() string
	// Authority returns the index of the MDS responsible for serializing
	// updates to the inode.
	Authority(ino *namespace.Inode) int
	// AuthorityForName returns the MDS responsible for a
	// yet-to-be-created entry name inside dir (create/mkdir placement).
	AuthorityForName(dir *namespace.Inode, name string) int
	// DirGranular reports whether metadata is stored directory-granular
	// with embedded inodes (one I/O fetches a directory and its
	// children, enabling prefetch). File hashing and Lazy Hybrid
	// scatter individual inodes and return false.
	DirGranular() bool
	// NeedsPathTraversal reports whether serving a request requires the
	// ancestor (prefix) inode chain to be present in the serving MDS's
	// cache. Lazy Hybrid's dual-entry ACLs make traversal unnecessary.
	NeedsPathTraversal() bool
	// ClientComputable reports whether clients can compute the
	// authority directly (hash strategies) rather than discovering the
	// partition through replies (subtree strategies).
	ClientComputable() bool
}

// Tags is the per-inode scratch state higher layers hang off
// namespace.Inode.Aux: authority memoization, the decayed popularity
// counter used for traffic control, replication state, and Lazy Hybrid
// staleness epochs. One simulation owns a tree exclusively, so no
// locking is needed.
type Tags struct {
	// Authority memoization, valid while AuthEpoch matches the
	// partition table's epoch.
	AuthEpoch uint64
	Auth      int

	// Pop is the decayed access counter (§4.4); nil until first touch.
	Pop *metrics.DecayCounter
	// FwdPop counts forwards of requests for this item (summed across
	// non-authoritative nodes); drives preemptive replication (§5.4).
	FwdPop *metrics.DecayCounter
	// ReplicatedAll marks metadata replicated across the cluster by
	// traffic control.
	ReplicatedAll bool

	// Lazy Hybrid epochs: for directories, the global update epoch at
	// which the directory's permissions/path last changed; for files,
	// the epoch whose effects have been folded into the file's
	// dual-entry ACL.
	LHDirEpoch uint64
	LHApplied  uint64

	// HashedDir marks a directory whose entries are dynamically hashed
	// across the cluster (§4.3).
	HashedDir bool

	// ReplicaSet is a bitmask of MDS nodes holding replicas of this
	// record (replicated prefixes or traffic-control copies). The
	// authority uses it to send coherence callbacks on updates (§4.2).
	// Clusters larger than 64 nodes track only the first 64 — the
	// paper's systems are "tens of MDSs".
	ReplicaSet uint64

	// UnflushedWriters is a bitmask of nodes whose replicas have
	// absorbed monotonic size/mtime updates not yet flushed to the
	// authority (§4.2). A stat at the authority triggers a callback to
	// these nodes for the latest values.
	UnflushedWriters uint64
}

// SetReplica marks node id as holding a replica.
func (t *Tags) SetReplica(id int) {
	if id < 64 {
		t.ReplicaSet |= 1 << uint(id)
	}
}

// ClearReplica removes node id from the replica set.
func (t *Tags) ClearReplica(id int) {
	if id < 64 {
		t.ReplicaSet &^= 1 << uint(id)
	}
}

// HasReplica reports whether node id holds a replica.
func (t *Tags) HasReplica(id int) bool {
	return id < 64 && t.ReplicaSet&(1<<uint(id)) != 0
}

// TagsOf returns the inode's tag block, allocating it on first use.
func TagsOf(n *namespace.Inode) *Tags {
	if t, ok := n.Aux.(*Tags); ok {
		return t
	}
	t := &Tags{}
	n.Aux = t
	return t
}

// Popularity returns the inode's decayed access counter, creating it
// with the given half-life on first use.
func Popularity(n *namespace.Inode, halfLife sim.Time) *metrics.DecayCounter {
	t := TagsOf(n)
	if t.Pop == nil {
		t.Pop = metrics.NewDecayCounter(halfLife)
	}
	return t.Pop
}

package cluster

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"dynmds/internal/namespace"
	"dynmds/internal/sim"
)

// actConfig is the open-loop config with a three-act timeline: a calm
// phase, a create storm against one home directory, and a cool-down.
func actConfig(strategy string) Config {
	cfg := openLoopConfig(strategy)
	cfg.Acts = []ActConfig{
		{Name: "calm", From: sim.Second, To: 2 * sim.Second},
		{Name: "storm", From: 2 * sim.Second, To: 4 * sim.Second,
			RateMul: 3, MixStat: 20, MixCreate: 80,
			Hotspot: "/home/u0000", HotFrac: 0.8, FileSkew: 1.2},
		{Name: "cool", From: 4 * sim.Second, To: 6 * sim.Second},
	}
	return cfg
}

func TestActValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(cfg *Config)
		want string
	}{
		{"no open loop", func(cfg *Config) { cfg.OpenLoop = nil }, "require the open-loop"},
		{"unnamed act", func(cfg *Config) { cfg.Acts[0].Name = "" }, "has no name"},
		{"backward window", func(cfg *Config) { cfg.Acts[0].From, cfg.Acts[0].To = 2*sim.Second, sim.Second }, "does not move forward"},
		{"past duration", func(cfg *Config) { cfg.Acts[2].To = cfg.Duration + sim.Second }, "past the run duration"},
		{"overlap", func(cfg *Config) { cfg.Acts[1].From = 1500 * sim.Millisecond }, "overlaps"},
		{"negative rate", func(cfg *Config) { cfg.Acts[1].RateMul = -1 }, "must be >= 0"},
		{"negative mix", func(cfg *Config) { cfg.Acts[1].MixStat = -5 }, "negative mix weight"},
		{"frac out of range", func(cfg *Config) { cfg.Acts[1].HotFrac = 1.5 }, "outside [0, 1]"},
		{"frac without path", func(cfg *Config) { cfg.Acts[1].Hotspot = "" }, "without a hotspot path"},
		{"unknown path", func(cfg *Config) { cfg.Acts[1].Hotspot = "/home/u9999" }, "hotspot path not in namespace"},
	}
	for _, c := range cases {
		cfg := actConfig(StratDynamic)
		c.mut(&cfg)
		if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
	if _, err := New(actConfig(StratDynamic)); err != nil {
		t.Fatalf("valid act config rejected: %v", err)
	}
}

// TestActFileHotspotRejectsDirOps pins the namespace-dependent check: a
// hotspot that resolves to a file cannot carry an act mix with
// directory ops (readdir/create would target a non-directory).
func TestActFileHotspotRejectsDirOps(t *testing.T) {
	cl, err := New(openLoopConfig(StratDynamic))
	if err != nil {
		t.Fatal(err)
	}
	var file *namespace.Inode
	var walk func(n *namespace.Inode)
	walk = func(n *namespace.Inode) {
		if file != nil {
			return
		}
		if !n.IsDir() {
			file = n
			return
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(cl.Snap.Tree.Root)
	if file == nil {
		t.Fatal("generated namespace has no files")
	}

	cfg := actConfig(StratDynamic)
	cfg.Acts[1].Hotspot = file.Path()
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "is a file") {
		t.Fatalf("file hotspot with create mix accepted: %v", err)
	}
	// The same file is fine under a stat-only act mix.
	cfg.Acts[1].MixStat, cfg.Acts[1].MixCreate = 100, 0
	if _, err := New(cfg); err != nil {
		t.Fatalf("file hotspot with stat mix rejected: %v", err)
	}
}

// actDigest extends the open-loop digest with the per-act rows, so a
// divergence anywhere in the act accounting fails the comparison.
func actDigest(r *Result) string {
	s := openLoopDigest(r)
	for _, a := range r.Acts {
		s += fmt.Sprintf(" | %s@%v-%v iss=%d comp=%d p50=%x p99=%x spread=%x",
			a.Name, a.From, a.To, a.Issued, a.Completed,
			math.Float64bits(a.P50), math.Float64bits(a.P99),
			math.Float64bits(a.LoadSpread))
	}
	return s
}

// TestActDeterministicAcrossShards pins bit-reproducibility of a run
// with the full act machinery — rate, mix, hotspot, skew retarget —
// serial and under the K=4 parallel executor.
func TestActDeterministicAcrossShards(t *testing.T) {
	for _, shards := range []int{0, 4} {
		shards := shards
		t.Run(fmt.Sprintf("K%d", shards), func(t *testing.T) {
			cfg := actConfig(StratDynamic)
			cfg.Shards = shards
			// Determinism doesn't depend on load volume; a lighter
			// population keeps the 4 full runs affordable under -race
			// on the 1-core CI box.
			cfg.OpenLoop.Clients = 800
			cfg.OpenLoop.Rate = 10
			run := func() string {
				cl, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return actDigest(cl.Run())
			}
			a, b := run(), run()
			if a != b {
				t.Fatalf("act run not reproducible:\n%s\n%s", a, b)
			}
		})
	}
}

func TestActResults(t *testing.T) {
	cl, err := New(actConfig(StratDynamic))
	if err != nil {
		t.Fatal(err)
	}
	r := cl.Run()
	if len(r.Acts) != 3 {
		t.Fatalf("got %d act results, want 3", len(r.Acts))
	}
	calm, storm, cool := r.Acts[0], r.Acts[1], r.Acts[2]
	for _, a := range r.Acts {
		if a.Issued == 0 || a.Completed == 0 || a.OpsPerSec <= 0 {
			t.Fatalf("act %q has no traffic: %+v", a.Name, a)
		}
		if a.P50 <= 0 || a.P50 > a.P99 {
			t.Fatalf("act %q quantiles not ordered: p50=%v p99=%v", a.Name, a.P50, a.P99)
		}
		if a.LoadSpread < 1 {
			t.Fatalf("act %q load spread %v < 1 (max/mean)", a.Name, a.LoadSpread)
		}
	}
	if storm.Name != "storm" || calm.Name != "calm" || cool.Name != "cool" {
		t.Fatalf("act order lost: %q %q %q", calm.Name, storm.Name, cool.Name)
	}
	// The storm triples the rate over a window twice as long as calm's:
	// its arrivals must far exceed calm's (×6 nominal, wide tolerance).
	if storm.Issued < 3*calm.Issued {
		t.Fatalf("storm issued %d, calm %d — rate retarget missing", storm.Issued, calm.Issued)
	}
	// Completions inside act windows also appear in the whole-run count.
	var sum uint64
	for _, a := range r.Acts {
		sum += a.Completed
	}
	if sum > r.Completed {
		t.Fatalf("act completions %d exceed run total %d", sum, r.Completed)
	}
}

package plan_test

import (
	"strings"
	"testing"

	"dynmds/internal/cluster"
	"dynmds/internal/plan"
	"dynmds/internal/plan/library"
	"dynmds/internal/sim"
)

// fullSrc exercises every directive the DSL has.
const fullSrc = `plan full-demo
describe Every directive at once.
quick 0.25
fs users=40 projects=8
cluster mds=8 strategy=DynamicSubtree cache=2500 shards=2 net=fixed faults=drop@0:all bucket=500ms
traffic clients=4000 rate=1.5 tenants=64 tenant-skew=0.8 file-skew=1 working-set=256 ways=4 mix=stat:70,readdir:20,create:10
matrix strategy=DynamicSubtree,FileHash
warmup 2s
duration 20s
act phase warm @2s-6s rate=x2 mix=stat:70,readdir:20,chmod:8,create:2 skew=1.2
act hotspot storm @6s-14s rate=x4 mix=stat:10,create:90 target=/home/u0000 frac=0.8
optimize ops p99 load-spread
`

// TestRoundTrip pins the fault.Schedule contract on plans: String is
// canonical, so parse→print→parse→print is a fixed point after one
// print, and the canonical form revalidates.
func TestRoundTrip(t *testing.T) {
	srcs := map[string]string{"full-demo": fullSrc}
	for _, p := range library.All() {
		srcs[p.Name] = p.String()
	}
	for name, src := range srcs {
		p1, err := plan.Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		s1 := p1.String()
		p2, err := plan.Parse(s1)
		if err != nil {
			t.Fatalf("%s: reparse canonical form: %v\n%s", name, err, s1)
		}
		if err := p2.Validate(); err != nil {
			t.Fatalf("%s: canonical form does not validate: %v", name, err)
		}
		if s2 := p2.String(); s2 != s1 {
			t.Fatalf("%s: canonical form is not a fixed point:\nfirst:\n%s\nsecond:\n%s", name, s1, s2)
		}
	}
}

// TestRoundTripPreservesFields spot-checks that the full-demo survives
// the trip with its numbers intact, not just its text shape.
func TestRoundTripPreservesFields(t *testing.T) {
	p, err := plan.Parse(fullSrc)
	if err != nil {
		t.Fatal(err)
	}
	q, err := plan.Parse(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if q.Quick != 0.25 || q.FS.Users != 40 || q.Cluster.Shards != 2 ||
		q.Cluster.Bucket != 500*sim.Millisecond || q.Cluster.Faults != "drop@0:all" {
		t.Fatalf("header fields lost: %+v", q)
	}
	tr := q.Traffic
	if tr == nil || tr.Clients != 4000 || tr.Rate != 1.5 || tr.TenantSkew != 0.8 ||
		tr.Ways != 4 || tr.Mix == nil || tr.Mix.Create != 10 {
		t.Fatalf("traffic fields lost: %+v", tr)
	}
	if len(q.Acts) != 2 {
		t.Fatalf("acts lost: %+v", q.Acts)
	}
	warm, storm := q.Acts[0], q.Acts[1]
	if warm.Kind != plan.ActPhase || warm.RateMul != 2 || warm.Skew != 1.2 ||
		warm.Mix == nil || warm.Mix.Chmod != 8 {
		t.Fatalf("warm act lost fields: %+v", warm)
	}
	if storm.Kind != plan.ActHotspot || storm.Target != "/home/u0000" ||
		storm.Frac != 0.8 || storm.From != 6*sim.Second {
		t.Fatalf("storm act lost fields: %+v", storm)
	}
	// An act that never touched skew must round-trip as "unchanged".
	if storm.Skew != -1 {
		t.Fatalf("storm skew = %v, want -1 (unchanged)", storm.Skew)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no name", "duration 10s\n", "no plan directive"},
		{"unknown directive", "plan p\nbogus 1\n", "unknown directive"},
		{"duplicate singleton", "plan p\nduration 10s\nduration 20s\n", "duplicate"},
		{"bad act shape", "plan p\nact phase warm\n", "act wants"},
		{"window missing @", "plan p\nact phase warm 2s-6s\n", "must start with @"},
		{"bad rate syntax", "plan p\nact phase warm @2s-6s rate=2\n", "multiplier like x2"},
		{"zero rate", "plan p\nact phase warm @2s-6s rate=x0\n", "must be > 0"},
		{"negative skew", "plan p\nact phase warm @2s-6s skew=-1\n", "must be >= 0"},
		{"unknown mix op", "plan p\nact phase warm @2s-6s mix=open:50\n", "unknown mix op"},
		{"unknown act option", "plan p\nact phase warm @2s-6s color=red\n", "unknown act option"},
		{"bad time", "plan p\nduration 10q\n", "bad time"},
		{"bad matrix", "plan p\nmatrix strategy\n", "matrix wants"},
	}
	for _, c := range cases {
		if _, err := plan.Parse(c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
	// Parse errors carry the 1-based line number.
	_, err := plan.Parse("plan p\n\n# comment\nbogus 1\n")
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("line number lost: %v", err)
	}
}

// validBase returns a minimal valid plan for mutation tests.
func validBase() *plan.Plan {
	return &plan.Plan{
		Name:     "base",
		Duration: 10 * sim.Second,
		Warmup:   2 * sim.Second,
		Traffic:  &plan.TrafficSpec{Clients: 100, Rate: 1},
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(p *plan.Plan)
		want string
	}{
		{"bad name", func(p *plan.Plan) { p.Name = "Bad Name" }, "lowercase"},
		{"no duration", func(p *plan.Plan) { p.Duration = 0 }, "no duration"},
		{"warmup too long", func(p *plan.Plan) { p.Warmup = p.Duration }, "does not fit"},
		{"bad net", func(p *plan.Plan) { p.Cluster.Net = "warp" }, "unknown net model"},
		{"no clients", func(p *plan.Plan) { p.Traffic.Clients = 0 }, "client count"},
		{"zero rate", func(p *plan.Plan) { p.Traffic.Rate = 0 }, "rate must be > 0"},
		{"unknown axis", func(p *plan.Plan) {
			p.Matrix = []plan.Axis{{Key: "color", Values: []string{"red"}}}
		}, "unknown matrix key"},
		{"empty axis", func(p *plan.Plan) {
			p.Matrix = []plan.Axis{{Key: "strategy"}}
		}, "no values"},
		{"repeated axis", func(p *plan.Plan) {
			p.Matrix = []plan.Axis{
				{Key: "mds", Values: []string{"4"}},
				{Key: "mds", Values: []string{"8"}},
			}
		}, "repeated"},
		{"bad strategy value", func(p *plan.Plan) {
			p.Matrix = []plan.Axis{{Key: "strategy", Values: []string{"Quantum"}}}
		}, "unknown strategy"},
		{"unknown act kind", func(p *plan.Plan) {
			p.Acts = []plan.Act{{Kind: "surge", Name: "a", From: sim.Second, To: 2 * sim.Second, Skew: -1}}
		}, "unknown act kind"},
		{"acts without traffic", func(p *plan.Plan) {
			p.Traffic = nil
			p.Acts = []plan.Act{{Kind: plan.ActPhase, Name: "a", From: sim.Second, To: 2 * sim.Second, Skew: -1}}
		}, "acts need a traffic section"},
		{"backward window", func(p *plan.Plan) {
			p.Acts = []plan.Act{{Kind: plan.ActPhase, Name: "a", From: 2 * sim.Second, To: sim.Second, Skew: -1}}
		}, "does not move forward"},
		{"act past duration", func(p *plan.Plan) {
			p.Acts = []plan.Act{{Kind: plan.ActPhase, Name: "a", From: sim.Second, To: 11 * sim.Second, Skew: -1}}
		}, "past the"},
		{"overlapping acts", func(p *plan.Plan) {
			p.Acts = []plan.Act{
				{Kind: plan.ActPhase, Name: "a", From: sim.Second, To: 5 * sim.Second, Skew: -1},
				{Kind: plan.ActPhase, Name: "b", From: 4 * sim.Second, To: 6 * sim.Second, Skew: -1},
			}
		}, "overlaps"},
		{"hotspot without target", func(p *plan.Plan) {
			p.Acts = []plan.Act{{Kind: plan.ActHotspot, Name: "a", From: sim.Second, To: 2 * sim.Second, Skew: -1, Frac: 0.5}}
		}, "without a target path"},
		{"relative target", func(p *plan.Plan) {
			p.Acts = []plan.Act{{Kind: plan.ActHotspot, Name: "a", From: sim.Second, To: 2 * sim.Second, Skew: -1, Target: "home/u0", Frac: 0.5}}
		}, "not an absolute path"},
		{"frac out of range", func(p *plan.Plan) {
			p.Acts = []plan.Act{{Kind: plan.ActHotspot, Name: "a", From: sim.Second, To: 2 * sim.Second, Skew: -1, Target: "/home/u0", Frac: 1.5}}
		}, "outside (0, 1]"},
		{"phase with target", func(p *plan.Plan) {
			p.Acts = []plan.Act{{Kind: plan.ActPhase, Name: "a", From: sim.Second, To: 2 * sim.Second, Skew: -1, Target: "/home/u0"}}
		}, "take no target"},
		{"unknown metric", func(p *plan.Plan) { p.Optimize = []string{"vibes"} }, "unknown metric"},
	}
	for _, c := range cases {
		p := validBase()
		c.mut(p)
		if err := p.Validate(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
	if err := validBase().Validate(); err != nil {
		t.Fatalf("base plan should validate: %v", err)
	}
}

func TestCompileMatrixOrderAndLabels(t *testing.T) {
	p := validBase()
	p.Matrix = []plan.Axis{
		{Key: "mds", Values: []string{"4", "8"}},
		{Key: "strategy", Values: []string{cluster.StratDynamic, cluster.StratStatic}},
	}
	cells, err := p.Compile(plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// First axis outermost, labels in axis order.
	wantLabels := []string{
		"base/mds=4/strategy=DynamicSubtree",
		"base/mds=4/strategy=StaticSubtree",
		"base/mds=8/strategy=DynamicSubtree",
		"base/mds=8/strategy=StaticSubtree",
	}
	if len(cells) != len(wantLabels) {
		t.Fatalf("compiled %d cells, want %d", len(cells), len(wantLabels))
	}
	for i, want := range wantLabels {
		if cells[i].Label != want {
			t.Fatalf("cell %d label = %q, want %q", i, cells[i].Label, want)
		}
	}
	if cells[2].Cfg.NumMDS != 8 || cells[2].Cfg.Strategy != cluster.StratDynamic {
		t.Fatalf("axis not applied: %+v", cells[2].Cfg)
	}
	if cells[0].Cfg.OpenLoop == nil || cells[0].Cfg.OpenLoop.Clients != 100 {
		t.Fatalf("traffic section not compiled: %+v", cells[0].Cfg.OpenLoop)
	}
}

func TestCompileQuickScaling(t *testing.T) {
	p := validBase()
	p.Quick = 0.5
	p.Acts = []plan.Act{{Kind: plan.ActPhase, Name: "a", From: 2 * sim.Second, To: 6 * sim.Second, Skew: -1}}
	full, err := p.Compile(plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	quick, err := p.Compile(plan.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	f, q := full[0].Cfg, quick[0].Cfg
	if f.Duration != 10*sim.Second || q.Duration != 5*sim.Second {
		t.Fatalf("duration scaling: full %v quick %v", f.Duration, q.Duration)
	}
	if f.OpenLoop.Clients != 100 || q.OpenLoop.Clients != 50 {
		t.Fatalf("client scaling: full %d quick %d", f.OpenLoop.Clients, q.OpenLoop.Clients)
	}
	if len(q.Acts) != 1 || q.Acts[0].From != sim.Second || q.Acts[0].To != 3*sim.Second {
		t.Fatalf("act window not scaled: %+v", q.Acts)
	}
	// Scaled boundaries stay on the millisecond grid.
	if q.Acts[0].From%sim.Millisecond != 0 {
		t.Fatalf("act boundary off the ms grid: %v", q.Acts[0].From)
	}
	// Seed and net model thread through.
	opts, err := p.Compile(plan.Options{Seed: 99, NetModel: "queued"})
	if err != nil {
		t.Fatal(err)
	}
	if opts[0].Cfg.Seed != 99 || opts[0].Cfg.NetModel != "queued" {
		t.Fatalf("options not applied: seed=%d net=%q", opts[0].Cfg.Seed, opts[0].Cfg.NetModel)
	}
}

// TestLibraryWellFormed pins the library contract: every plan loads,
// validates, compiles in both modes, and carries a description.
func TestLibraryWellFormed(t *testing.T) {
	all := library.All()
	if len(all) < 5 {
		t.Fatalf("library has %d plans, want >= 5", len(all))
	}
	for _, p := range all {
		if p.Describe == "" {
			t.Errorf("%s: no description", p.Name)
		}
		if _, err := p.Compile(plan.Options{}); err != nil {
			t.Errorf("%s: full compile: %v", p.Name, err)
		}
		if _, err := p.Compile(plan.Options{Quick: true}); err != nil {
			t.Errorf("%s: quick compile: %v", p.Name, err)
		}
		if _, ok := library.ByName(p.Name); !ok {
			t.Errorf("%s: not findable by name", p.Name)
		}
	}
	if _, ok := library.ByName("no-such-plan"); ok {
		t.Error("ByName found a plan that does not exist")
	}
}

package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of insertion order at %d: %v", i, got[i])
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 10 {
			e.After(1, step)
		}
	}
	e.After(1, step)
	e.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want 10", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	e.At(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want 20", e.Now())
	}
	e.Run()
	if ran != 3 {
		t.Fatalf("ran = %d, want 3 after Run", ran)
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {})
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(1, func() { ran++; e.Stop() })
	e.At(2, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	e.Run()
	if ran != 2 {
		t.Fatalf("ran = %d, want 2 after resume", ran)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

// Property: dispatch order is globally sorted by (time, insertion seq) no
// matter the insertion order.
func TestEngineDispatchSortedProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var times []Time
		for _, d := range delays {
			at := Time(d)
			e.At(at, func() { times = append(times, at) })
		}
		e.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Fatalf("Seconds = %v, want 2.5", got)
	}
	if s := (1500 * Millisecond).String(); s != "1.500000s" {
		t.Fatalf("String = %q", s)
	}
}

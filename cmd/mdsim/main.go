// Command mdsim runs the metadata-cluster simulation experiments that
// regenerate the paper's figures, or a single custom configuration.
//
// Usage:
//
//	mdsim -fig 2            # regenerate Figure 2 (full scale)
//	mdsim -fig all -quick   # all figures, reduced scale
//	mdsim -strategy DynamicSubtree -mds 8 -clients 40 -dur 20
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dynmds/internal/cluster"
	"dynmds/internal/harness"
	"dynmds/internal/sim"
)

func main() {
	var (
		fig      = flag.String("fig", "", "experiment: 2..7, 'sci', 'failover', or 'all'")
		quick    = flag.Bool("quick", false, "reduced-scale experiments")
		seed     = flag.Int64("seed", 1, "simulation seed")
		strategy = flag.String("strategy", cluster.StratDynamic, "strategy for a custom run")
		nmds     = flag.Int("mds", 4, "cluster size for a custom run")
		clients  = flag.Int("clients", 40, "clients per MDS for a custom run")
		users    = flag.Int("users", 100, "file-system users for a custom run")
		cacheCap = flag.Int("cache", 2000, "MDS cache capacity (records)")
		dur      = flag.Float64("dur", 20, "duration in simulated seconds")
		warm     = flag.Float64("warmup", 5, "warmup in simulated seconds")
	)
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	if *list {
		for _, e := range append(harness.All(), harness.Extras()...) {
			fmt.Printf("%-10s %s\n           %s\n", e.ID, e.Title, e.Description)
		}
		return
	}

	if *fig != "" {
		runFigures(*fig, harness.Options{Quick: *quick, Seed: *seed})
		return
	}

	cfg := cluster.Default()
	cfg.Seed = *seed
	cfg.Strategy = *strategy
	cfg.NumMDS = *nmds
	cfg.ClientsPerMDS = *clients
	cfg.FS.Users = *users
	cfg.MDS.CacheCapacity = *cacheCap
	cfg.MDS.Storage.LogCapacity = *cacheCap
	cfg.Duration = sim.FromSeconds(*dur)
	cfg.Warmup = sim.FromSeconds(*warm)

	start := time.Now()
	res, err := harness.RunOne(harness.RunSpec{Label: "custom", Cfg: cfg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdsim:", err)
		os.Exit(1)
	}
	fmt.Println(res)
	fmt.Printf("wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

func runFigures(which string, opt harness.Options) {
	var exps []harness.Experiment
	if which == "all" {
		exps = append(harness.All(), harness.Extras()...)
	} else {
		e, ok := harness.ByID("fig" + which)
		if !ok {
			e, ok = harness.ByID(which)
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "mdsim: unknown figure %q (use 2..7 or 'all')\n", which)
			os.Exit(1)
		}
		exps = []harness.Experiment{e}
	}
	for _, e := range exps {
		start := time.Now()
		fmt.Printf("== %s ==\n%s\n\n", e.Title, e.Description)
		if err := e.Run(os.Stdout, opt); err != nil {
			fmt.Fprintln(os.Stderr, "mdsim:", err)
			os.Exit(1)
		}
		fmt.Printf("(wall time %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
}

package storage

import (
	"fmt"
	"testing"

	"dynmds/internal/dirstore"
	"dynmds/internal/namespace"
	"dynmds/internal/osd"
	"dynmds/internal/sim"
)

func TestDirObjectsLifecycle(t *testing.T) {
	d := NewDirObjects(8)
	if d.Len() != 0 {
		t.Fatal("fresh index not empty")
	}
	const dir = namespace.InodeID(7)
	for i := 0; i < 20; i++ {
		d.Insert(dir, dirstore.Record{Name: fmt.Sprintf("e%02d", i)})
	}
	if d.Len() != 1 {
		t.Fatalf("objects = %d", d.Len())
	}
	obj, ok := d.Object(dir)
	if !ok || obj.Len() != 20 {
		t.Fatalf("object state: %v %v", ok, obj)
	}
	if d.NodesWritten == 0 || d.Updates != 20 {
		t.Fatalf("accounting: written=%d updates=%d", d.NodesWritten, d.Updates)
	}
	// Snapshot isolation through the store-level API.
	snap := d.Snapshot(dir)
	d.Delete(dir, "e00")
	if obj.Len() != 19 || snap.Len() != 20 {
		t.Fatalf("snapshot broke: live=%d snap=%d", obj.Len(), snap.Len())
	}
	// Deleting a missing entry neither counts nor panics.
	before := d.Updates
	d.Delete(dir, "missing")
	if d.Updates != before {
		t.Fatal("phantom delete counted")
	}
	// Bad records are ignored.
	d.Insert(dir, dirstore.Record{})
	if d.Updates != before {
		t.Fatal("empty-name insert counted")
	}
	// Snapshot of an unknown directory is nil.
	if d.Snapshot(999) != nil {
		t.Fatal("snapshot of unknown dir")
	}
	if _, ok := d.Object(999); ok {
		t.Fatal("object of unknown dir")
	}
}

func TestStoreSharedPoolRouting(t *testing.T) {
	eng := sim.NewEngine()
	pool, err := osd.NewPool(eng, osd.Config{
		NumOSDs: 4, Replicas: 2,
		ReadLatency: 1000, ReadPerRecord: 10, WriteLatency: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Pool = pool
	cfg.PoolOwner = 3
	s := New(eng, cfg)

	var readDone, dirDone, commitDone bool
	s.ReadInode(11, func() { readDone = true })
	s.ReadDir(12, 5, func() { dirDone = true })
	s.Commit(13, func() { commitDone = true })
	eng.Run()
	if !readDone || !dirDone || !commitDone {
		t.Fatalf("callbacks: %v %v %v", readDone, dirDone, commitDone)
	}
	if pool.Stats.Reads != 2 {
		t.Fatalf("pool reads = %d", pool.Stats.Reads)
	}
	if pool.Stats.Writes == 0 {
		t.Fatal("log append did not reach the pool")
	}
	// The local disks saw nothing.
	if s.ReadUtilization(eng.Now()) != 0 {
		t.Fatal("local read disk used in pool mode")
	}
	// The bounded log still tracks the working set locally.
	if !s.log.Contains(13) {
		t.Fatal("log lost the commit record")
	}
}

func TestReadUtilizationLocalMode(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, testConfig())
	s.ReadInode(1, nil)
	eng.RunUntil(2020) // read takes 1010
	if u := s.ReadUtilization(eng.Now()); u <= 0.4 || u > 0.6 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

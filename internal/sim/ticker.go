package sim

// Ticker invokes a callback at a fixed virtual-time period until stopped.
// The first tick fires one period after Start (or after the optional
// phase offset).
type Ticker struct {
	eng     *Engine
	period  Time
	fn      func(now Time)
	stopped bool
	Ticks   uint64
}

// NewTicker creates a ticker; call Start to begin ticking.
func NewTicker(eng *Engine, period Time, fn func(now Time)) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	return &Ticker{eng: eng, period: period, fn: fn}
}

// Start schedules the first tick phase+period from now.
func (t *Ticker) Start(phase Time) {
	t.stopped = false
	t.eng.AfterCall(phase+t.period, tickerTick, t, nil)
}

// tickerTick is the recurring tick dispatcher: the ticker itself is the
// event payload, so a perpetual ticker schedules forever without
// allocating (no method-value closure per tick).
func tickerTick(a, _ any) { a.(*Ticker).tick() }

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.Ticks++
	t.fn(t.eng.Now())
	if !t.stopped {
		t.eng.AfterCall(t.period, tickerTick, t, nil)
	}
}

// Stop cancels future ticks. A tick already dispatched still runs.
func (t *Ticker) Stop() { t.stopped = true }

package cache

import (
	"fmt"

	"dynmds/internal/namespace"
	"dynmds/internal/snap"
)

// Checkpoint codec. Exact LRU order is state: eviction victims depend
// on it, so both segments are serialized MRU-first and relinked
// verbatim on restore. Pin counts are not serialized — they are
// recomputed from the parent links, which also re-validates the
// cached-subset-is-a-tree invariant.

// DropDestroyed removes every unpinned entry whose inode has been
// destroyed (unlinked), children before parents, returning the count
// removed. Replicas of an unlinked inode can outlive it on non-author
// nodes until eviction; a checkpoint garbage-collects them first, in
// both the checkpointing run and the baseline, so the two stay in
// lockstep and every serialized entry resolves against the restored
// namespace.
func (c *Cache) DropDestroyed(dead func(namespace.InodeID) bool) int {
	var victims []*Entry
	c.forEach(func(e *Entry) {
		if dead(e.Ino.ID) {
			victims = append(victims, e)
		}
	})
	removed := 0
	for removed < len(victims) {
		progress := false
		for _, e := range victims {
			if c.lookup(e.Ino.ID) == nil || e.pins > 0 {
				continue
			}
			c.drop(e, false)
			removed++
			progress = true
		}
		if !progress {
			break // pinned by live children; should not happen for files
		}
	}
	return removed
}

// SnapshotTo serializes the cache.
func (c *Cache) SnapshotTo(w *snap.Writer) {
	w.Int(c.capacity)
	w.U64(c.Stats.Hits)
	w.U64(c.Stats.Misses)
	w.U64(c.Stats.Inserts)
	w.U64(c.Stats.Evicts)
	w.U64(c.Stats.PinBlockedEvicts)
	for _, l := range [...]*list{&c.hot, &c.warm} {
		w.Int(l.n)
		for e := l.head; e != nil; e = e.next {
			w.U64(uint64(e.Ino.ID))
			w.U64(uint64(e.Class))
			w.Bool(e.detached)
			if e.parent != nil {
				w.U64(uint64(e.parent.Ino.ID))
			} else {
				w.U64(0)
			}
		}
	}
}

// RestoreFrom applies a snapshot onto a freshly built, empty cache with
// the same capacity; resolve maps inode IDs to the restored namespace.
func (c *Cache) RestoreFrom(r *snap.Reader, resolve func(namespace.InodeID) (*namespace.Inode, bool)) error {
	if cp := r.Int(); cp != c.capacity {
		return fmt.Errorf("cache: snapshot capacity %d, built %d", cp, c.capacity)
	}
	if c.n != 0 {
		return fmt.Errorf("cache: restore into a non-empty cache")
	}
	c.Stats.Hits = r.U64()
	c.Stats.Misses = r.U64()
	c.Stats.Inserts = r.U64()
	c.Stats.Evicts = r.U64()
	c.Stats.PinBlockedEvicts = r.U64()
	type pending struct {
		e      *Entry
		parent namespace.InodeID
	}
	var all []pending
	for li, l := range [...]*list{&c.hot, &c.warm} {
		n := r.Int()
		var prev *Entry
		for i := 0; i < n; i++ {
			id := namespace.InodeID(r.U64())
			cl := Class(r.U64())
			detached := r.Bool()
			parent := namespace.InodeID(r.U64())
			ino, ok := resolve(id)
			if !ok {
				return fmt.Errorf("cache: snapshot entry %d unresolvable", id)
			}
			e := &Entry{Ino: ino, Class: cl, hot: li == 0, detached: detached}
			c.store(id, e)
			c.classCount[cl]++
			all = append(all, pending{e, parent})
			// Relink in serialized (MRU-first) order.
			e.prev = prev
			if prev != nil {
				prev.next = e
			} else {
				l.head = e
			}
			prev = e
		}
		l.tail = prev
		l.n = n
	}
	for _, p := range all {
		if p.parent == 0 {
			continue
		}
		pe := c.lookup(p.parent)
		if pe == nil {
			return fmt.Errorf("cache: snapshot entry %d pins uncached parent %d", p.e.Ino.ID, p.parent)
		}
		p.e.parent = pe
		pe.pins++
	}
	return nil
}

package net

import (
	"dynmds/internal/metrics"
	"dynmds/internal/sim"
)

// LinkStats counts one directed link's lifetime traffic.
type LinkStats struct {
	Messages uint64
	Bytes    uint64
	// MaxDepth is the high-water mark of messages simultaneously in
	// flight on the link (its queue depth).
	MaxDepth int
}

// Link is one directed endpoint pair, with its counters and the mutable
// per-link state latency models use.
type Link struct {
	From, To int
	Stats    LinkStats
	// BusyUntil is the queued model's serialization horizon: the time
	// the link finishes transmitting everything accepted so far.
	BusyUntil sim.Time

	depth int // messages currently in flight
}

// ClassStats counts one message class fabric-wide. Every send is either
// eventually delivered or dropped at send time by the fault plane, so
// Sent == Delivered + Dropped once traffic drains.
type ClassStats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	Bytes     uint64
}

// envelope carries one in-flight message: the delivery continuation
// (fn, a, b) rides in the envelope, and the envelope itself is the
// single event payload, so a hop schedules without allocating once the
// pool is warm. Envelopes are owned by the fabric and recycled by the
// delivery dispatch, never while an engine event still references them.
type envelope struct {
	fab   *Fabric
	link  *Link
	class Class
	// shard is the lane the envelope's delivery accounts to (and the
	// pool it returns to); always 0 on an unsharded fabric.
	shard int
	fn    sim.EventFunc
	a, b  any
}

// Fabric routes every simulated message. Unsharded it is
// single-threaded, like the engine it schedules on: one fabric per
// cluster, no locks. Sharded (see Shard) it partitions all mutable state
// by sender or receiver shard so lookahead windows run without locks
// too: counters live in per-shard lanes, link rows belong to their
// sending shard, and cross-shard deliveries ride per-shard-pair
// mailboxes merged at window barriers.
type Fabric struct {
	eng   *sim.Engine
	model LatencyModel
	n     int // MDS endpoints; endpoint n is the client edge
	links []Link
	class [NumClasses]ClassStats
	pool  []*envelope
	live  int           // envelopes checked out of the pool (leak detector)
	plane FaultPlane    // nil unless fault injection is active
	sh    *fabricShards // nil unless Shard was called
}

// NewFabric creates a fabric over numMDS node endpoints plus the client
// edge, pricing transit with the given model.
func NewFabric(eng *sim.Engine, numMDS int, model LatencyModel) *Fabric {
	f := &Fabric{eng: eng, model: model, n: numMDS}
	w := numMDS + 1
	f.links = make([]Link, w*w)
	for i := range f.links {
		f.links[i].From, f.links[i].To = i/w, i%w
	}
	return f
}

// ClientEdge returns the endpoint index aggregating the client
// population.
func (f *Fabric) ClientEdge() int { return f.n }

// Model returns the latency model's name.
func (f *Fabric) Model() string { return f.model.Name() }

// SetFaultPlane attaches a fault plane consulted on every Send. Pass
// nil to detach.
func (f *Fabric) SetFaultPlane(p FaultPlane) { f.plane = p }

// Send routes one message of the given class and size from endpoint
// `from` to endpoint `to`; fn(a, b) runs at delivery. It returns the
// delivery time. Counters update at send and delivery, so at any
// instant Sent - Delivered messages are in flight.
func (f *Fabric) Send(c Class, from, to, bytes int, fn sim.EventFunc, a, b any) sim.Time {
	if f.sh == nil {
		return f.send(0, 0, c, from, to, bytes, fn, a, b)
	}
	return f.send(f.sh.shardOf[from], f.sh.shardOf[to], c, from, to, bytes, fn, a, b)
}

// SendFromEdge routes a client-edge→MDS message on behalf of a client
// living on srcShard. The client edge aggregates clients from every
// shard, so the sender shard cannot be derived from the endpoint index;
// the cluster passes it explicitly. Equivalent to Send when unsharded.
func (f *Fabric) SendFromEdge(srcShard int, c Class, to, bytes int, fn sim.EventFunc, a, b any) sim.Time {
	if f.sh == nil {
		return f.send(0, 0, c, f.n, to, bytes, fn, a, b)
	}
	return f.send(srcShard, f.sh.shardOf[to], c, f.n, to, bytes, fn, a, b)
}

// SendToEdge routes an MDS→client-edge message whose delivery must run
// on the recipient client's shard (dstShard). Equivalent to Send when
// unsharded.
func (f *Fabric) SendToEdge(dstShard int, c Class, from, bytes int, fn sim.EventFunc, a, b any) sim.Time {
	if f.sh == nil {
		return f.send(0, 0, c, from, f.n, bytes, fn, a, b)
	}
	return f.send(f.sh.shardOf[from], dstShard, c, from, f.n, bytes, fn, a, b)
}

func (f *Fabric) send(src, dst int, c Class, from, to, bytes int, fn sim.EventFunc, a, b any) sim.Time {
	eng := f.engineFor(src)
	now := eng.Now()
	l := f.linkFor(src, from, to)
	var extra sim.Time
	if f.plane != nil {
		var drop bool
		drop, extra = f.plane.Transit(from, to, now)
		if drop {
			// The message dies at the sender's NIC: it never occupies
			// the link and its continuation never runs. Count it so the
			// conservation identity stays sent == delivered + dropped.
			cs := &f.lane(src)[c]
			cs.Sent++
			cs.Dropped++
			cs.Bytes += uint64(bytes)
			return now
		}
	}
	delay := extra + f.model.Delay(l, c, bytes, now)
	l.Stats.Messages++
	l.Stats.Bytes += uint64(bytes)
	l.depth++
	if l.depth > l.Stats.MaxDepth {
		l.Stats.MaxDepth = l.depth
	}
	cs := &f.lane(src)[c]
	cs.Sent++
	cs.Bytes += uint64(bytes)
	if f.sh != nil && dst != src {
		// Cross-shard: the receiver learns of the message at the next
		// window barrier (guaranteed to come before the delivery time by
		// the lookahead bound). The sender still owns the link, so its
		// departure is a sender-side event; the delivery continuation
		// rides a by-value mailbox entry, not an envelope.
		eng.AfterCall(delay, linkDepart, l, nil)
		mb := &f.sh.mail[src][dst]
		mb.seq++
		mb.entries = append(mb.entries, mailEntry{
			at: now + delay, seq: mb.seq, class: c, fn: fn, a: a, b: b,
		})
		return now + delay
	}
	env := f.getEnv(src)
	env.link, env.class, env.shard, env.fn, env.a, env.b = l, c, src, fn, a, b
	eng.AfterCall(delay, deliverEnvelope, env, nil)
	return now + delay
}

// linkDepart retires a cross-shard message from its sending link at the
// delivery instant (the *Link payload keeps the event allocation-free).
func linkDepart(x, _ any) { x.(*Link).depth-- }

// deliverEnvelope completes one hop: release the envelope first, then
// run the continuation (which may immediately send again and reuse it).
// A nil link marks a mailbox-merged cross-shard delivery, whose link
// accounting the sender already handled.
func deliverEnvelope(x, _ any) {
	env := x.(*envelope)
	f := env.fab
	if env.link != nil {
		env.link.depth--
	}
	f.lane(env.shard)[env.class].Delivered++
	fn, a, b := env.fn, env.a, env.b
	f.putEnv(env)
	fn(a, b)
}

// engineFor returns the engine scheduling shard's events (the fabric's
// single engine when unsharded).
func (f *Fabric) engineFor(shard int) *sim.Engine {
	if f.sh == nil {
		return f.eng
	}
	return f.sh.engines[shard]
}

// lane returns the class-counter lane owned by shard.
func (f *Fabric) lane(shard int) *[NumClasses]ClassStats {
	if f.sh == nil {
		return &f.class
	}
	return &f.sh.class[shard]
}

// linkFor resolves the link state for a send. Rows are owned by their
// sending shard; the client-edge row — whose senders span every shard —
// splits into per-shard lanes when sharded.
func (f *Fabric) linkFor(src, from, to int) *Link {
	if f.sh != nil && from == f.n {
		return &f.sh.edgeRows[src][to]
	}
	return &f.links[from*(f.n+1)+to]
}

func (f *Fabric) getEnv(shard int) *envelope {
	pool, live := &f.pool, &f.live
	if f.sh != nil {
		pool, live = &f.sh.pools[shard], &f.sh.live[shard]
	}
	*live++
	if n := len(*pool); n > 0 {
		env := (*pool)[n-1]
		(*pool)[n-1] = nil
		*pool = (*pool)[:n-1]
		return env
	}
	return &envelope{fab: f}
}

func (f *Fabric) putEnv(env *envelope) {
	pool, live := &f.pool, &f.live
	if f.sh != nil {
		pool, live = &f.sh.pools[env.shard], &f.sh.live[env.shard]
	}
	env.link, env.fn, env.a, env.b = nil, nil, nil, nil
	*live--
	*pool = append(*pool, env)
}

// Class returns the fabric-wide counters for one message class, summed
// across shard lanes.
func (f *Fabric) Class(c Class) ClassStats {
	if f.sh == nil {
		return f.class[c]
	}
	var cs ClassStats
	for i := range f.sh.class {
		l := &f.sh.class[i][c]
		cs.Sent += l.Sent
		cs.Delivered += l.Delivered
		cs.Dropped += l.Dropped
		cs.Bytes += l.Bytes
	}
	return cs
}

// LinkBetween returns the counters of the directed from→to link. On a
// sharded fabric the client-edge row sums its per-shard lanes (MaxDepth
// becomes the largest per-lane high-water mark, a lower bound on the
// true aggregate depth).
func (f *Fabric) LinkBetween(from, to int) LinkStats {
	s := f.links[from*(f.n+1)+to].Stats
	if f.sh != nil && from == f.n {
		for i := range f.sh.edgeRows {
			ls := &f.sh.edgeRows[i][to].Stats
			s.Messages += ls.Messages
			s.Bytes += ls.Bytes
			if ls.MaxDepth > s.MaxDepth {
				s.MaxDepth = ls.MaxDepth
			}
		}
	}
	return s
}

// InFlight returns the number of messages sent but neither delivered
// nor dropped. Between windows on a sharded fabric this includes
// messages waiting in mailboxes.
func (f *Fabric) InFlight() int {
	var d int
	for c := 0; c < NumClasses; c++ {
		cs := f.Class(Class(c))
		d += int(cs.Sent - cs.Delivered - cs.Dropped)
	}
	return d
}

// LiveEnvelopes returns the number of envelopes checked out of the
// pools. Cross-shard messages only occupy an envelope from their
// barrier merge onward, so at quiescence this equals InFlight unless an
// envelope leaked.
func (f *Fabric) LiveEnvelopes() int {
	if f.sh == nil {
		return f.live
	}
	n := 0
	for _, l := range f.sh.live {
		n += l
	}
	return n
}

// Stats is the run-level fabric summary surfaced in cluster.Result.
type Stats struct {
	Model    string
	Messages uint64
	Bytes    uint64
	// Dropped counts messages the fault plane killed at send time.
	Dropped uint64
	// MaxQueueDepth is the largest per-link in-flight high-water mark.
	MaxQueueDepth int
	PerClass      [NumClasses]ClassStats
}

// Summary snapshots the fabric's counters, merging shard lanes.
func (f *Fabric) Summary() Stats {
	s := Stats{Model: f.model.Name()}
	for c := 0; c < NumClasses; c++ {
		s.PerClass[c] = f.Class(Class(c))
		s.Messages += s.PerClass[c].Sent
		s.Bytes += s.PerClass[c].Bytes
		s.Dropped += s.PerClass[c].Dropped
	}
	for i := range f.links {
		if d := f.links[i].Stats.MaxDepth; d > s.MaxQueueDepth {
			s.MaxQueueDepth = d
		}
	}
	if f.sh != nil {
		for i := range f.sh.edgeRows {
			for j := range f.sh.edgeRows[i] {
				if d := f.sh.edgeRows[i][j].Stats.MaxDepth; d > s.MaxQueueDepth {
					s.MaxQueueDepth = d
				}
			}
		}
	}
	return s
}

// Table renders the per-class counters as an aligned console table. The
// dropped column appears only when the fault plane actually dropped
// something, so fault-free output is unchanged.
func (s *Stats) Table() string {
	if s.Dropped > 0 {
		tb := metrics.NewTable("class", "sent", "delivered", "dropped", "bytes")
		for c := 0; c < NumClasses; c++ {
			cs := s.PerClass[c]
			if cs.Sent == 0 {
				continue
			}
			tb.AddRow(Class(c).String(), int(cs.Sent), int(cs.Delivered),
				int(cs.Dropped), int(cs.Bytes))
		}
		return tb.String()
	}
	tb := metrics.NewTable("class", "sent", "delivered", "bytes")
	for c := 0; c < NumClasses; c++ {
		cs := s.PerClass[c]
		if cs.Sent == 0 {
			continue
		}
		tb.AddRow(Class(c).String(), int(cs.Sent), int(cs.Delivered), int(cs.Bytes))
	}
	return tb.String()
}

package sim

// Wheel is a hierarchical timer wheel for timer populations far too
// large for the event heap: millions of pending client arrivals would
// otherwise dominate heap sift costs and memory (48 bytes/event). The
// wheel stores one pending timer per id in two flat int32/uint32 arrays
// (8 bytes/id, no per-timer allocation) threaded into intrusive
// per-slot FIFO lists, and drives itself with a single recurring engine
// event: each tick dispatches the due slot in insertion order, so
// dispatch order is deterministic for a fixed schedule.
//
// Four levels of 256 slots cover 2^32 ticks. A timer due within 256
// ticks sits in level 0 at its exact slot; farther deadlines park in
// the level whose granularity covers them and cascade down one level
// each time their slot comes up, landing in level 0 on time. The
// contract is one pending timer per id: Schedule on an id that is
// already pending corrupts the lists.
type Wheel struct {
	eng  *Engine
	tick Time // duration of one tick
	fire func(id int32)

	start   Time   // engine time of tick 0 (set by Start)
	cur     uint32 // ticks fully dispatched
	stopped bool

	// Ticks counts tick events dispatched; Fired counts timers fired.
	Ticks uint64
	Fired uint64

	// Intrusive per-id links: next[id] chains ids within a slot (-1
	// ends a list), when[id] is the absolute deadline tick, needed to
	// re-slot entries on cascade.
	next []int32
	when []uint32

	head [wheelLevels][wheelSlots]int32
	tail [wheelLevels][wheelSlots]int32
}

const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
)

// NewWheel creates a wheel for ids in [0, n) firing fire(id) when each
// timer comes due; tick is the scheduling granularity (deadlines round
// up to the next tick boundary).
func NewWheel(eng *Engine, tick Time, n int, fire func(id int32)) *Wheel {
	if tick <= 0 {
		panic("sim: wheel tick must be positive")
	}
	if n < 0 {
		panic("sim: negative wheel population")
	}
	w := &Wheel{eng: eng, tick: tick, fire: fire}
	w.next = make([]int32, n)
	w.when = make([]uint32, n)
	for i := range w.next {
		w.next[i] = -1
	}
	for l := 0; l < wheelLevels; l++ {
		for s := 0; s < wheelSlots; s++ {
			w.head[l][s] = -1
			w.tail[l][s] = -1
		}
	}
	return w
}

// Start anchors tick 0 at the current engine time and schedules the
// recurring tick event. Timers may be scheduled before or after Start;
// before Start the wheel assumes it will be started at the current
// engine time.
func (w *Wheel) Start() {
	w.start = w.eng.Now()
	w.stopped = false
	w.eng.AfterCall(w.tick, wheelTick, w, nil)
}

// Stop halts ticking (and therefore all future firing) after the
// currently dispatched tick, if any, completes.
func (w *Wheel) Stop() { w.stopped = true }

// Reset discards every pending timer and rewinds the wheel to tick 0,
// keeping the cumulative Ticks/Fired counters. The endurance plane uses
// it at checkpoint resume: rather than serializing millions of pending
// arrival deadlines, both the checkpointing run and the restored run
// Reset the wheel and re-arm every client from its own RNG stream, so
// the post-resume arrival process is identical in both.
func (w *Wheel) Reset() {
	for i := range w.next {
		w.next[i] = -1
	}
	for l := 0; l < wheelLevels; l++ {
		for s := 0; s < wheelSlots; s++ {
			w.head[l][s] = -1
			w.tail[l][s] = -1
		}
	}
	w.cur = 0
	w.stopped = true
}

// Now returns the wheel's current tick count.
func (w *Wheel) Now() uint32 { return w.cur }

// FootprintBytes returns the wheel's memory: 8 bytes per id (intrusive
// link + deadline) plus the fixed slot head/tail arrays.
func (w *Wheel) FootprintBytes() int64 {
	return int64(len(w.next))*8 + wheelLevels*wheelSlots*8
}

// Schedule arms id's timer d after the current engine time, rounded up
// to the next tick boundary (minimum one tick ahead). The id must not
// already be pending.
func (w *Wheel) Schedule(id int32, d Time) {
	if d < 0 {
		panic("sim: negative wheel delay")
	}
	target := w.eng.Now() + d - w.start
	t := uint64(target+w.tick-1) / uint64(w.tick)
	if t <= uint64(w.cur) {
		t = uint64(w.cur) + 1
	}
	if t-uint64(w.cur) > 1<<32-1 {
		panic("sim: wheel horizon exceeded")
	}
	w.insert(id, uint32(t))
}

// insert links id into the slot covering deadline tick t.
func (w *Wheel) insert(id int32, t uint32) {
	w.when[id] = t
	delta := t - w.cur
	var lvl uint
	switch {
	case delta < wheelSlots:
		lvl = 0
	case delta < 1<<(2*wheelBits):
		lvl = 1
	case delta < 1<<(3*wheelBits):
		lvl = 2
	default:
		lvl = 3
	}
	slot := (t >> (lvl * wheelBits)) & wheelMask
	w.next[id] = -1
	if w.tail[lvl][slot] < 0 {
		w.head[lvl][slot] = id
	} else {
		w.next[w.tail[lvl][slot]] = id
	}
	w.tail[lvl][slot] = id
}

// wheelTick is the recurring tick dispatcher: the wheel itself rides in
// the event payload, so perpetual ticking never allocates.
func wheelTick(a, _ any) { a.(*Wheel).advance() }

func (w *Wheel) advance() {
	if w.stopped {
		return
	}
	w.Ticks++
	w.cur++
	c := w.cur
	// Cascade a higher level each time the level below wraps: its due
	// slot re-slots by stored deadline, landing due-now entries in the
	// level-0 slot dispatched below.
	if c&wheelMask == 0 {
		w.cascade(1, (c>>wheelBits)&wheelMask)
		if (c>>wheelBits)&wheelMask == 0 {
			w.cascade(2, (c>>(2*wheelBits))&wheelMask)
			if (c>>(2*wheelBits))&wheelMask == 0 {
				w.cascade(3, (c>>(3*wheelBits))&wheelMask)
			}
		}
	}
	slot := c & wheelMask
	id := w.head[0][slot]
	w.head[0][slot] = -1
	w.tail[0][slot] = -1
	for id >= 0 {
		nx := w.next[id]
		w.next[id] = -1
		w.Fired++
		w.fire(id)
		id = nx
	}
	if !w.stopped {
		w.eng.AfterCall(w.tick, wheelTick, w, nil)
	}
}

// cascade drains one slot of a higher level, re-slotting each entry by
// its deadline; relative order within the slot is preserved, so two
// timers due the same tick fire in scheduling order regardless of how
// many cascades they crossed.
func (w *Wheel) cascade(lvl uint, slot uint32) {
	id := w.head[lvl][slot]
	w.head[lvl][slot] = -1
	w.tail[lvl][slot] = -1
	for id >= 0 {
		nx := w.next[id]
		w.insert(id, w.when[id])
		id = nx
	}
}

// Pending counts armed timers (O(levels × slots × entries); tests and
// invariant checks only).
func (w *Wheel) Pending() int {
	n := 0
	for l := 0; l < wheelLevels; l++ {
		for s := 0; s < wheelSlots; s++ {
			for id := w.head[l][s]; id >= 0; id = w.next[id] {
				n++
			}
		}
	}
	return n
}

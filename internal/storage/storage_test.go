package storage

import (
	"testing"
	"testing/quick"

	"dynmds/internal/namespace"
	"dynmds/internal/sim"
)

func testConfig() Config {
	return Config{
		ReadLatency:      1000,
		ReadPerRecord:    10,
		LogAppendLatency: 50,
		LogCapacity:      4,
	}
}

func TestReadInodeLatency(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, testConfig())
	var doneAt sim.Time
	s.ReadInode(1, func() { doneAt = eng.Now() })
	eng.Run()
	if doneAt != 1010 {
		t.Fatalf("read completed at %v, want 1010", doneAt)
	}
	if s.Stats.InodeReads != 1 || s.Stats.RecordsRead != 1 {
		t.Fatalf("stats = %+v", s.Stats)
	}
}

func TestReadDirEmbeddedCost(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, testConfig())
	var doneAt sim.Time
	s.ReadDir(2, 20, func() { doneAt = eng.Now() })
	eng.Run()
	// One positioning cost + 20 record transfers: far cheaper than 20
	// individual reads — that is the embedded-inode advantage.
	if doneAt != 1000+20*10 {
		t.Fatalf("dir read completed at %v, want 1200", doneAt)
	}
	if s.Stats.DirReads != 1 || s.Stats.RecordsRead != 20 {
		t.Fatalf("stats = %+v", s.Stats)
	}
	// Degenerate record count clamps to 1.
	s.ReadDir(2, 0, nil)
	eng.Run()
	if s.Stats.RecordsRead != 21 {
		t.Fatalf("records = %d", s.Stats.RecordsRead)
	}
}

func TestReadsQueueOnOneDisk(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, testConfig())
	var completions []sim.Time
	for i := 0; i < 3; i++ {
		s.ReadInode(namespace.InodeID(i+1), func() { completions = append(completions, eng.Now()) })
	}
	if s.QueueDepth() != 3 {
		t.Fatalf("queue depth = %d", s.QueueDepth())
	}
	eng.Run()
	want := []sim.Time{1010, 2020, 3030}
	for i := range want {
		if completions[i] != want[i] {
			t.Fatalf("completions = %v, want %v", completions, want)
		}
	}
}

func TestCommitAndTierWrites(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, testConfig()) // log capacity 4
	for i := 1; i <= 4; i++ {
		s.Commit(namespace.InodeID(i), nil)
	}
	if s.Stats.TierWrites != 0 {
		t.Fatalf("tier writes before overflow = %d", s.Stats.TierWrites)
	}
	s.Commit(namespace.InodeID(5), nil) // expels 1 -> tier write
	if s.Stats.TierWrites != 1 {
		t.Fatalf("tier writes = %d, want 1", s.Stats.TierWrites)
	}
	// Re-committing an inode already in the log means its expelled older
	// record is superseded: no tier write.
	s.Commit(namespace.InodeID(5), nil) // expels 2 -> tier write (distinct inode)
	s.Commit(namespace.InodeID(5), nil) // expels 3 -> tier write
	s.Commit(namespace.InodeID(5), nil) // expels 4 -> tier write
	s.Commit(namespace.InodeID(5), nil) // expels oldest 5, newer 5s remain -> no tier write
	if s.Stats.TierWrites != 4 {
		t.Fatalf("tier writes = %d, want 4", s.Stats.TierWrites)
	}
	eng.Run()
	if s.Stats.LogAppends != 9 {
		t.Fatalf("log appends = %d", s.Stats.LogAppends)
	}
}

func TestWorkingSet(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, testConfig())
	ids := []namespace.InodeID{7, 8, 7, 9}
	for _, id := range ids {
		s.Commit(id, nil)
	}
	ws := s.WorkingSet()
	want := []namespace.InodeID{7, 8, 9}
	if len(ws) != len(want) {
		t.Fatalf("working set = %v", ws)
	}
	for i := range want {
		if ws[i] != want[i] {
			t.Fatalf("working set = %v, want %v", ws, want)
		}
	}
	eng.Run()
}

func TestBoundedLogContains(t *testing.T) {
	l := NewBoundedLog(2)
	l.Append(1)
	l.Append(2)
	if !l.Contains(1) || !l.Contains(2) {
		t.Fatal("log missing entries")
	}
	l.Append(3) // expels 1
	if l.Contains(1) {
		t.Fatal("expelled entry still contained")
	}
	if l.Len() != 2 || l.Cap() != 2 {
		t.Fatalf("len/cap = %d/%d", l.Len(), l.Cap())
	}
}

// Property: the log never exceeds capacity; Distinct() has no duplicates
// and contains exactly the live set.
func TestBoundedLogProperties(t *testing.T) {
	f := func(appends []uint8) bool {
		l := NewBoundedLog(8)
		for _, a := range appends {
			l.Append(namespace.InodeID(a % 16))
		}
		if l.Len() > l.Cap() {
			return false
		}
		d := l.Distinct()
		seen := map[namespace.InodeID]bool{}
		for _, id := range d {
			if seen[id] || !l.Contains(id) {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig(1000)
	if c.LogCapacity != 1000 || c.ReadLatency <= 0 {
		t.Fatalf("default config = %+v", c)
	}
	eng := sim.NewEngine()
	s := New(eng, Config{LogCapacity: 0, ReadLatency: 1})
	s.ReadInode(1, nil)
	eng.Run() // must not panic with clamped log capacity
}

#!/usr/bin/env sh
# Tier-1 gate: vet, build, and run the full test suite under the race
# detector, then smoke-test the figure harness and emit a perf report.
# Run from the repository root; any failure fails the script.
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...

# Figure smoke run: exercises the sweep runner, the snapshot cache, and
# the copy-on-write overlay path end to end at reduced scale, under
# both fabric latency models.
go run ./cmd/mdsim -fig 2 -quick
go run ./cmd/mdsim -fig 2 -quick -net-model queued

# Perf report (quick scale in CI; regenerate the committed BENCH_3.json
# with a full-scale run: `go run ./cmd/mdsim -bench-json BENCH_3.json`).
go run ./cmd/mdsim -bench-json BENCH_3.quick.json -quick

package sim

import "testing"

func TestServerSerializesWidthOne(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 1)
	var done []Time
	for i := 0; i < 3; i++ {
		s.Submit(10, func() { done = append(done, e.Now()) })
	}
	e.Run()
	want := []Time{10, 20, 30}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions = %v, want %v", done, want)
		}
	}
	if s.Completed != 3 || s.Submitted != 3 {
		t.Fatalf("counters: completed=%d submitted=%d", s.Completed, s.Submitted)
	}
}

func TestServerParallelWidth(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 2)
	var done []Time
	for i := 0; i < 4; i++ {
		s.Submit(10, func() { done = append(done, e.Now()) })
	}
	e.Run()
	want := []Time{10, 10, 20, 20}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions = %v, want %v", done, want)
		}
	}
}

func TestServerFIFO(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Submit(Time(1+i%3), func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("service order = %v, want FIFO", order)
		}
	}
}

func TestServerInterleavedSubmission(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 1)
	var done []Time
	e.At(0, func() { s.Submit(100, func() { done = append(done, e.Now()) }) })
	// Arrives while the first job is in service; must wait.
	e.At(50, func() { s.Submit(10, func() { done = append(done, e.Now()) }) })
	// Arrives after the server went idle.
	e.At(200, func() { s.Submit(10, func() { done = append(done, e.Now()) }) })
	e.Run()
	want := []Time{100, 110, 210}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions = %v, want %v", done, want)
		}
	}
}

func TestServerUtilization(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 1)
	s.Submit(50, nil)
	e.RunUntil(100)
	u := s.Utilization(e.Now())
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestServerZeroServiceTime(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 1)
	ran := false
	s.Submit(0, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("zero-service job did not complete")
	}
}

func TestServerQueueLen(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 1)
	s.Submit(10, nil)
	s.Submit(10, nil)
	s.Submit(10, nil)
	if s.QueueLen() != 2 || s.InService() != 1 {
		t.Fatalf("queue=%d inservice=%d, want 2/1", s.QueueLen(), s.InService())
	}
	e.Run()
	if s.QueueLen() != 0 || s.InService() != 0 {
		t.Fatalf("queue=%d inservice=%d after drain", s.QueueLen(), s.InService())
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	tk := NewTicker(e, 10, func(now Time) { ticks = append(ticks, now) })
	tk.Start(0)
	e.RunUntil(35)
	want := []Time{10, 20, 30}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine()
	n := 0
	var tk *Ticker
	tk = NewTicker(e, 10, func(now Time) {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	tk.Start(0)
	e.RunUntil(1000)
	if n != 2 {
		t.Fatalf("ticks after stop = %d, want 2", n)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewStream(42, "x"), NewStream(42, "x")
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same-seed streams diverge")
		}
	}
	c := NewStream(42, "y")
	same := true
	for i := 0; i < 10; i++ {
		if NewStream(42, "x").Int63() != c.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("differently labelled streams are identical")
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(7)
	var sum Time
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Exp(1000)
	}
	mean := float64(sum) / n
	if mean < 900 || mean > 1100 {
		t.Fatalf("exp mean = %v, want ~1000", mean)
	}
	if r.Exp(0) != 0 {
		t.Fatal("Exp(0) != 0")
	}
}

func TestRNGLogNormalClamps(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.LogNormalInt(8, 2.0, 1, 50)
		if v < 1 || v > 50 {
			t.Fatalf("lognormal out of range: %d", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(7)
	z := r.NewZipf(1.2, 100)
	counts := make([]int, 100)
	for i := 0; i < 10000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

package msg

import (
	"testing"

	"dynmds/internal/sim"
)

func TestOpStrings(t *testing.T) {
	want := map[Op]string{
		Open: "open", Close: "close", Stat: "stat", Readdir: "readdir",
		Create: "create", Unlink: "unlink", Mkdir: "mkdir",
		Chmod: "chmod", Rename: "rename", Write: "write",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), s)
		}
	}
	if Op(200).String() != "unknown" {
		t.Error("out-of-range op string")
	}
	if NumOps != 10 {
		t.Errorf("NumOps = %d", NumOps)
	}
}

func TestIsUpdate(t *testing.T) {
	updates := []Op{Create, Unlink, Mkdir, Chmod, Rename, Write}
	reads := []Op{Open, Close, Stat, Readdir}
	for _, op := range updates {
		if !op.IsUpdate() {
			t.Errorf("%v should be an update", op)
		}
	}
	for _, op := range reads {
		if op.IsUpdate() {
			t.Errorf("%v should not be an update", op)
		}
	}
}

func TestReplyLatency(t *testing.T) {
	rep := &Reply{Issued: 100 * sim.Microsecond, Completed: 350 * sim.Microsecond}
	if rep.Latency() != 250*sim.Microsecond {
		t.Fatalf("latency = %v", rep.Latency())
	}
	// Latency must come from the copied Issued value, not the request
	// struct, which may have been recycled for a newer operation.
	rep.Req = &Request{Issued: 999 * sim.Microsecond}
	if rep.Latency() != 250*sim.Microsecond {
		t.Fatalf("latency followed the recycled request: %v", rep.Latency())
	}
}

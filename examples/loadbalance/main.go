// Load balancing: half the clients migrate to subtrees served by one
// MDS and start creating files there (the Figure 5 scenario). The
// example runs the dynamic strategy, prints the per-node load every
// two simulated seconds, and then lists the subtree migrations the
// balancer executed.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"

	"dynmds/internal/cluster"
	"dynmds/internal/sim"
)

func main() {
	cfg := cluster.Default()
	cfg.Strategy = cluster.StratDynamic
	cfg.NumMDS = 6
	cfg.ClientsPerMDS = 30
	cfg.FS.Users = 150
	cfg.MDS.CacheCapacity = 2500
	cfg.Client.ThinkMean = 15 * sim.Millisecond
	cfg.Client.KnownCap = 512
	cfg.Workload.Kind = cluster.WorkShift
	cfg.Workload.ShiftTime = 8 * sim.Second
	cfg.Workload.ShiftFraction = 0.5
	cfg.Duration = 24 * sim.Second
	cfg.Warmup = 4 * sim.Second
	bal := *cfg.Balancer
	bal.Interval = 2 * sim.Second
	cfg.Balancer = &bal

	cl, err := cluster.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d MDS, %d clients; half migrate at t=%v\n\n",
		cfg.NumMDS, len(cl.Clients), cfg.Workload.ShiftTime)
	fmt.Println("per-node load metric (arrival rate + weighted misses):")
	tick := sim.NewTicker(cl.Eng, 2*sim.Second, func(now sim.Time) {
		fmt.Printf("  t=%4.0fs ", now.Seconds())
		for _, n := range cl.Nodes {
			fmt.Printf(" %7.0f", n.Load(now))
		}
		fmt.Printf("   migrations=%d\n", len(cl.Balancer.Migrations))
	})
	tick.Start(sim.Second)

	res := cl.Run()

	fmt.Println("\nmigrations executed by the balancer:")
	for _, m := range cl.Balancer.Migrations {
		kind := "split"
		if m.Redelegation {
			kind = "re-delegated import"
		}
		fmt.Printf("  t=%5.1fs %-28s node %d -> %d (%d cached records, %s)\n",
			m.At.Seconds(), m.Root.Path(), m.From, m.To, m.Entries, kind)
	}
	fmt.Printf("\npartition now has %d explicit delegations\n", cl.Dyn.Table.NumDelegations())
	fmt.Println("result:", res)
}

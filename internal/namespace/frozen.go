package namespace

// Frozen is an immutable namespace snapshot: the whole generated tree
// flattened into dense arrays indexed by InodeID. A Frozen is built once
// (Tree.Freeze) and then shared — concurrently and without locks — by
// any number of simulation runs, each of which layers a private
// copy-on-write overlay Tree (NewOverlay) on top. The base is never
// mutated after Freeze returns; all create/remove/rename activity lands
// in the overlays.
//
// Layout: node records live in a single slice indexed by id-1 (IDs are
// allocated densely from 1, root first). Directory children are stored
// CSR-style — one shared []InodeID with per-directory offset/length, in
// the directory's insertion order, so an overlay that expands a
// directory reproduces exactly the child order a freshly generated tree
// would have. Each directory record also carries a name → child-ID map,
// built once at freeze time and shared read-only by every overlay, so
// lookups in unmutated directories hit Go's fast string-keyed map path
// and no run ever rebuilds an index for a directory it never mutates.
type Frozen struct {
	nodes    []fnode
	childIDs []InodeID

	numFiles, numDirs int
}

// fnode is one flattened inode record.
type fnode struct {
	name   string
	kids   map[string]InodeID // directory name index, nil for files/empty dirs
	size   int64
	parent InodeID
	kidOff int32
	kidLen int32
	sub    int32 // SubtreeInodes
	nlink  int32
	mode   Mode
	kind   Kind
}

// rootID is the ID NewTree assigns the root directory.
const rootID InodeID = 1

// NumInodes returns the number of inodes in the snapshot.
func (f *Frozen) NumInodes() int { return len(f.nodes) }

// NumFiles returns the number of file inodes in the snapshot.
func (f *Frozen) NumFiles() int { return f.numFiles }

// NumDirs returns the number of directory inodes in the snapshot.
func (f *Frozen) NumDirs() int { return f.numDirs }

// node returns the record for id. The caller guarantees validity.
func (f *Frozen) node(id InodeID) *fnode { return &f.nodes[id-1] }

// contains reports whether id names a snapshot inode.
func (f *Frozen) contains(id InodeID) bool {
	return id >= rootID && int(id) <= len(f.nodes)
}

// children returns the CSR child-ID slice for a directory.
func (f *Frozen) children(id InodeID) []InodeID {
	fn := f.node(id)
	return f.childIDs[fn.kidOff : fn.kidOff+fn.kidLen]
}

// Freeze flattens the tree into an immutable snapshot. The tree must be
// freshly generated: dense IDs (no removals), no hard links, and no
// anchors — exactly what fsgen produces. The tree itself is left
// untouched and remains usable; the snapshot shares its name strings.
func (t *Tree) Freeze() (*Frozen, error) {
	if t.base != nil {
		return nil, errString("namespace: cannot freeze an overlay tree")
	}
	if t.Anchors != nil && t.Anchors.Len() != 0 {
		return nil, errString("namespace: cannot freeze a tree with anchored inodes")
	}
	n := int(t.nextID)
	if len(t.byID) != n {
		return nil, errString("namespace: cannot freeze a tree with removed inodes (IDs not dense)")
	}
	if t.Root == nil || t.Root.ID != rootID {
		return nil, errString("namespace: root is not inode 1")
	}
	f := &Frozen{
		nodes:    make([]fnode, n),
		numFiles: t.NumFiles,
		numDirs:  t.NumDirs,
	}
	total := 0
	for id := rootID; int(id) <= n; id++ {
		total += len(t.byID[id].children)
	}
	f.childIDs = make([]InodeID, 0, total)
	for id := rootID; int(id) <= n; id++ {
		ino := t.byID[id]
		if ino == nil {
			return nil, errString("namespace: cannot freeze a tree with removed inodes (IDs not dense)")
		}
		if ino.NLink != 1 {
			return nil, errString("namespace: cannot freeze a tree with hard links")
		}
		fn := f.node(id)
		fn.name = ino.name
		fn.size = ino.Size
		fn.mode = ino.Mode
		fn.kind = ino.Kind
		fn.nlink = int32(ino.NLink)
		fn.sub = int32(ino.SubtreeInodes)
		if ino.parent != nil {
			fn.parent = ino.parent.ID
		}
		fn.kidOff = int32(len(f.childIDs))
		fn.kidLen = int32(len(ino.children))
		if len(ino.children) > 0 {
			fn.kids = make(map[string]InodeID, len(ino.children))
		}
		for _, c := range ino.children {
			f.childIDs = append(f.childIDs, c.ID)
			fn.kids[c.name] = c.ID
		}
	}
	return f, nil
}

// NewOverlay creates a private copy-on-write view of the snapshot. The
// whole overlay materializes up front as one flat slab — a single
// []Inode indexed by id-1 plus one shared child-pointer backing array —
// because the simulated workloads touch nearly the entire namespace
// anyway, and a bulk array-order copy is both far cheaper than piecewise
// materialization and far cheaper to GC than a generated tree (two large
// allocations instead of one object and one map per inode). What stays
// lazy is the per-directory name index: lookups read through to the
// base's shared per-directory name maps until a directory's first structural
// mutation (see expand), so an overlay run allocates no per-directory
// maps for the — typically vast — untouched-by-mutation portion of the
// tree. All mutation lands in the slab and the overlay's own structures;
// the base is never written. Many overlays may share one base
// concurrently; each overlay itself is single-goroutine, like Tree.
func NewOverlay(f *Frozen) *Tree {
	t := &Tree{
		byID:     make(map[InodeID]*Inode),
		base:     f,
		nextID:   InodeID(len(f.nodes)),
		NumFiles: f.numFiles,
		NumDirs:  f.numDirs,
	}
	t.Anchors = NewAnchorTable()
	t.slab = make([]Inode, len(f.nodes))
	backing := make([]*Inode, len(f.childIDs))
	for i := range t.slab {
		fn := &f.nodes[i]
		n := &t.slab[i]
		n.ID = InodeID(i + 1)
		n.Kind = fn.kind
		n.Mode = fn.mode
		n.Size = fn.size
		n.NLink = int(fn.nlink)
		n.name = fn.name
		n.SubtreeInodes = int(fn.sub)
		n.tree = t
		if fn.parent != 0 {
			n.parent = &t.slab[fn.parent-1]
		}
		if fn.kind == Dir && fn.kidLen > 0 {
			// Full-capacity slice of this directory's private segment of
			// the backing array: in-place swap-on-remove stays inside the
			// segment, and growth reallocates instead of clobbering the
			// next directory's segment.
			seg := backing[fn.kidOff : fn.kidOff+fn.kidLen : fn.kidOff+fn.kidLen]
			for j, cid := range f.childIDs[fn.kidOff : fn.kidOff+fn.kidLen] {
				seg[j] = &t.slab[cid-1]
			}
			n.children = seg
			n.lazyIdx = true
		}
	}
	t.Root = &t.slab[0]
	return t
}

// node returns the overlay inode for a live base ID.
func (t *Tree) node(id InodeID) *Inode { return &t.slab[id-1] }

// IsBase reports whether id belongs to the frozen base layer, as
// opposed to an inode created during the run.
func (t *Tree) IsBase(id InodeID) bool { return t.base != nil && t.base.contains(id) }

// expand builds a directory's private name index from its current child
// list, switching lookups off the shared base index. Any structural
// mutation of a directory (attach/detach) expands it first, so the
// mutation then proceeds exactly as it would on an eagerly built tree —
// including the swap-on-remove child ordering the simulator's
// determinism depends on.
func (n *Inode) expand() {
	if !n.lazyIdx {
		return
	}
	n.lazyIdx = false
	n.childIndex = make(map[string]int, len(n.children))
	for i, c := range n.children {
		n.childIndex[c.name] = i
	}
}

// destroyed records that a base inode no longer exists in this overlay,
// so ByID cannot re-materialize it from the base.
func (t *Tree) destroyed(id InodeID) {
	if t.base == nil || !t.base.contains(id) {
		return
	}
	t.BaseDeletes++
	if t.dead != nil {
		t.dead[id>>6] |= 1 << (id & 63)
		return
	}
	if t.gone == nil {
		t.gone = make(map[InodeID]struct{})
	}
	t.gone[id] = struct{}{}
}

// errString is a trivially allocation-free error for Freeze's
// precondition failures.
type errString string

func (e errString) Error() string { return string(e) }

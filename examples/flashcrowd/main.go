// Flash crowd: thousands of clients suddenly open the same file — the
// scientific-computing pattern that motivates traffic control (§4.4,
// Figure 7). The example runs the scenario twice, with traffic control
// off and on, and prints the per-interval cluster reply rate so the
// recovery ramp is visible.
//
//	go run ./examples/flashcrowd
package main

import (
	"fmt"
	"log"

	"dynmds/internal/cluster"
	"dynmds/internal/core"
	"dynmds/internal/sim"
)

func run(trafficOn bool) *cluster.Result {
	cfg := cluster.Default()
	cfg.Strategy = cluster.StratDynamic
	cfg.NumMDS = 6
	cfg.ClientsPerMDS = 300 // 1800 clients
	cfg.FS.Users = 90
	cfg.MDS.CacheCapacity = 4000
	cfg.Client.ThinkMean = 20 * sim.Millisecond
	cfg.Workload.Kind = cluster.WorkFlashCrowd
	cfg.Workload.FlashTime = 4 * sim.Second
	cfg.Workload.FlashDuration = 2 * sim.Second
	cfg.Duration = 6 * sim.Second
	cfg.Warmup = 2 * sim.Second
	cfg.SeriesBucket = 100 * sim.Millisecond
	cfg.Balancer = nil // isolate the traffic-control mechanism
	if !trafficOn {
		cfg.Traffic = nil
	} else {
		cfg.Traffic = core.DefaultTrafficControl()
	}
	cl, err := cluster.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res := cl.Run()
	if trafficOn && cl.Traffic != nil {
		fmt.Printf("  (traffic control replicated %d item(s) cluster-wide)\n",
			cl.Traffic.Replications)
	}
	return res
}

func main() {
	fmt.Println("flash crowd at t=4.0s, 1800 clients, one target file")
	off := run(false)
	on := run(true)

	fmt.Println("\n  t(s)   no-TC replies/s   TC replies/s")
	start := int(sim.FromSeconds(3.8) / off.Bucket)
	end := int(sim.FromSeconds(6.0) / off.Bucket)
	for i := start; i < end; i++ {
		var offSum, onSum float64
		for _, s := range off.RepliesPerNode {
			offSum += s.Sum(i)
		}
		for _, s := range on.RepliesPerNode {
			onSum += s.Sum(i)
		}
		fmt.Printf("  %4.1f   %15.0f   %12.0f\n",
			off.Bucket.Seconds()*float64(i),
			offSum/off.Bucket.Seconds(), onSum/on.Bucket.Seconds())
	}
	fmt.Println("\nWithout traffic control the authority serialises the crowd;")
	fmt.Println("with it, replicas absorb the load within a short ramp.")
}

package client

import (
	"testing"

	"dynmds/internal/metrics"
	"dynmds/internal/msg"
	"dynmds/internal/namespace"
	"dynmds/internal/partition"
	"dynmds/internal/sim"
	"dynmds/internal/workload"
)

// popTree builds a namespace with h homes, each with files and a subdir.
func popTree(t *testing.T, h int) (*namespace.Tree, []*namespace.Inode) {
	t.Helper()
	tr := namespace.NewTree()
	root, err := tr.Mkdir(tr.Root, "home")
	if err != nil {
		t.Fatal(err)
	}
	homes := make([]*namespace.Inode, h)
	for i := 0; i < h; i++ {
		u, err := tr.Mkdir(root, "u"+string(rune('a'+i)))
		if err != nil {
			t.Fatal(err)
		}
		homes[i] = u
		for j := 0; j < 8; j++ {
			if _, err := tr.Create(u, "f"+string(rune('0'+j))); err != nil {
				t.Fatal(err)
			}
		}
	}
	return tr, homes
}

// echoNet answers every request synchronously after a fixed virtual
// latency, reusing one reply struct (the population never retains it).
type echoNet struct {
	eng   *sim.Engine
	pop   *Population
	n     int
	delay sim.Time
	sends uint64
	rep   msg.Reply
}

func (e *echoNet) NumMDS() int { return e.n }

func (e *echoNet) Send(i int, req *msg.Request) {
	e.sends++
	if e.delay <= 0 {
		e.answer(req)
		return
	}
	e.eng.AfterCall(e.delay, echoAnswer, e, req)
}

func echoAnswer(a, b any) { a.(*echoNet).answer(b.(*msg.Request)) }

func (e *echoNet) answer(req *msg.Request) {
	e.rep = msg.Reply{
		Req: req, Client: req.Client, ID: req.ID, Gen: req.Gen,
		Issued: req.Issued, Completed: e.eng.Now(),
	}
	e.pop.OnReply(&e.rep)
}

func popFixture(t *testing.T, cfg PopulationConfig, seed int64, delay sim.Time) (*sim.Engine, *Population, *echoNet) {
	t.Helper()
	_, homes := popTree(t, 4)
	tn := workload.NewTenants(cfg.Tenant, cfg.Clients, homes, seed)
	eng := sim.NewEngine()
	net := &echoNet{eng: eng, n: 4, delay: delay}
	pop := NewPopulation(cfg, []*sim.Engine{eng}, net, partition.FileHash{N: 4}, tn, seed)
	net.pop = pop
	return eng, pop, net
}

func TestPopulationOpenLoopRate(t *testing.T) {
	cfg := PopulationConfig{
		Clients: 500, Rate: 100, Tick: sim.Millisecond,
		Tenant:  workload.TenantConfig{Tenants: 4, WorkingSet: 8},
		MixStat: 1,
	}
	eng, pop, net := popFixture(t, cfg, 7, 200*sim.Microsecond)
	pop.Start()
	eng.RunUntil(10 * sim.Second)
	// 500 clients × 100 ops/s × 10 s = 500k expected arrivals; Poisson
	// noise over 500k draws is well under 5%.
	want := 500.0 * 100 * 10
	got := float64(pop.Issued())
	if got < want*0.95 || got > want*1.05 {
		t.Fatalf("issued = %.0f, want ≈ %.0f", got, want)
	}
	// Open loop: sends issued within the last echo delay are still in
	// flight at the cutoff.
	if d := net.sends - pop.Completed(); d > 1000 {
		t.Fatalf("completed %d lags sends %d by %d", pop.Completed(), net.sends, d)
	}
	h := metrics.NewLatHist()
	pop.Latency(h)
	if h.N() != pop.Completed() {
		t.Fatalf("latency hist N = %d, completed %d", h.N(), pop.Completed())
	}
	if q := h.Quantile(0.5); q < 200*sim.Microsecond {
		t.Fatalf("p50 = %v, want >= the 200µs echo delay", q)
	}
	if pop.MeanLatency() <= 0 {
		t.Fatal("mean latency not recorded")
	}
}

func TestPopulationDeterminism(t *testing.T) {
	cfg := PopulationConfig{
		Clients: 200, Rate: 50,
		Tenant:     workload.TenantConfig{Tenants: 8, TenantSkew: 1, FileSkew: 1, WorkingSet: 8},
		DiurnalAmp: 0.5, BurstProb: 0.2, BurstFactor: 3,
	}
	run := func(seed int64) (uint64, uint64, sim.Time, uint64) {
		eng, pop, _ := popFixture(t, cfg, seed, 300*sim.Microsecond)
		pop.Start()
		eng.RunUntil(5 * sim.Second)
		h := metrics.NewLatHist()
		pop.Latency(h)
		return pop.Issued(), pop.Completed(), h.Quantile(0.99), eng.Executed
	}
	i1, c1, q1, e1 := run(42)
	i2, c2, q2, e2 := run(42)
	if i1 != i2 || c1 != c2 || q1 != q2 || e1 != e2 {
		t.Fatalf("identical seeds diverged: (%d,%d,%v,%d) vs (%d,%d,%v,%d)",
			i1, c1, q1, e1, i2, c2, q2, e2)
	}
	i3, _, _, _ := run(43)
	if i3 == i1 {
		t.Fatal("different seeds produced identical arrival counts")
	}
}

func TestPopulationModulationChangesTraffic(t *testing.T) {
	base := PopulationConfig{
		Clients: 200, Rate: 50,
		Tenant:  workload.TenantConfig{Tenants: 4, WorkingSet: 8},
		MixStat: 1,
	}
	run := func(cfg PopulationConfig) uint64 {
		eng, pop, _ := popFixture(t, cfg, 5, 0)
		pop.Start()
		eng.RunUntil(5 * sim.Second)
		return pop.Issued()
	}
	plain := run(base)
	burst := base
	burst.BurstProb, burst.BurstFactor, burst.BurstEpoch = 0.5, 4, sim.Second
	if b := run(burst); b <= plain*11/10 {
		t.Fatalf("burst modulation did not raise traffic: %d vs %d", b, plain)
	}
}

func TestPopulationHintsSteerDirection(t *testing.T) {
	_, homes := popTree(t, 2)
	cfg := PopulationConfig{
		Clients: 10, Rate: 10,
		Tenant:  workload.TenantConfig{Tenants: 2, WorkingSet: 4},
		MixStat: 1,
	}
	tn := workload.NewTenants(cfg.Tenant, cfg.Clients, homes, 1)
	eng := sim.NewEngine()
	net := &echoNet{eng: eng, n: 8}
	// Subtree strategy: clients are ignorant and follow hints.
	tr := homes[0].Parent()
	_ = tr
	pop := NewPopulation(cfg, []*sim.Engine{eng}, net, partition.NewStaticSubtree(8, namespace.NewTree(), 1), tn, 1)
	net.pop = pop
	f := tn.File(0, 0, 0)
	pop.Hints().Put(3, msg.Hint{Ino: f.ID, Authority: 5})
	req := &msg.Request{Op: msg.Stat, Target: f}
	if got := pop.direct(3, req, 12345); got != 5 {
		t.Fatalf("direct = %d, want hinted 5", got)
	}
	// Another client without the hint falls back to u mod n.
	if got := pop.direct(4, req, 12345); got != 12345%8 {
		t.Fatalf("direct = %d, want fallback %d", got, 12345%8)
	}
}

func TestPopulationArrivalAllocFree(t *testing.T) {
	cfg := PopulationConfig{
		Clients: 1000, Rate: 200, Tick: sim.Millisecond,
		Tenant: workload.TenantConfig{Tenants: 4, FileSkew: 1, WorkingSet: 16},
		// Create-free mix: creates inherently allocate the new name/inode.
		MixStat: 80, MixReaddir: 10, MixChmod: 10,
		DiurnalAmp: 0.3, BurstProb: 0.1,
	}
	eng, pop, _ := popFixture(t, cfg, 11, 0)
	pop.Start()
	// Warm to steady state: pools filled, wheel slots and engine heap at
	// their high-water marks.
	eng.RunUntil(2 * sim.Second)
	now := eng.Now()
	allocs := testing.AllocsPerRun(20, func() {
		now += 50 * sim.Millisecond
		eng.RunUntil(now)
	})
	if allocs != 0 {
		t.Fatalf("open-loop hot path allocates: %v allocs per 50ms window", allocs)
	}
	if pop.Issued() == 0 || pop.Completed() == 0 {
		t.Fatal("no traffic during pin")
	}
}

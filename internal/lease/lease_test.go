package lease

import (
	"testing"

	"dynmds/internal/namespace"
	"dynmds/internal/sim"
)

func TestNormalizeDefaults(t *testing.T) {
	c := Config{Enabled: true}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.Ways != DefaultWays || c.Duration != DefaultDuration ||
		c.GrantPopularity != DefaultGrantPopularity || c.FanoutPopularity != DefaultFanoutPopularity {
		t.Fatalf("defaults not applied: %+v", c)
	}

	// Ways round up to a power of two.
	c = Config{Enabled: true, Ways: 5}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.Ways != 8 {
		t.Fatalf("ways = %d, want 8", c.Ways)
	}

	// The zero value is inert and must stay untouched: a disabled plane
	// is the bit-identical baseline.
	c = Config{}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c != (Config{}) {
		t.Fatalf("disabled config mutated: %+v", c)
	}
}

func TestNormalizeRejectsBadKnobs(t *testing.T) {
	bad := []Config{
		{Enabled: true, Ways: -1},
		{Enabled: true, Ways: 4096},
		{Enabled: true, Duration: -sim.Second},
		{Enabled: true, GrantPopularity: -1},
		{Fanout: true, FanoutPeers: -2},
		{Fanout: true, FanoutPopularity: -5},
	}
	for i, c := range bad {
		if err := c.Normalize(); err == nil {
			t.Fatalf("case %d: bad config %+v accepted", i, c)
		}
	}
}

func TestRegistryGrantRecall(t *testing.T) {
	r := NewRegistry(100)
	ino := namespace.InodeID(7)
	if r.Outstanding(ino) {
		t.Fatal("fresh registry has outstanding grants")
	}
	g0 := r.Gen(ino)
	r.NoteGrant(ino)
	r.NoteGrant(ino)
	if !r.Outstanding(ino) {
		t.Fatal("grants not recorded")
	}
	r.Recall(ino)
	if r.Outstanding(ino) {
		t.Fatal("recall did not clear the grant count")
	}
	if r.Gen(ino) != g0+1 {
		t.Fatalf("gen = %d, want %d", r.Gen(ino), g0+1)
	}

	// Out-of-range inodes are simply never leasable; no panics, no state.
	huge := namespace.InodeID(1 << 40)
	if r.Leasable(huge) {
		t.Fatal("out-of-range inode leasable")
	}
	r.NoteGrant(huge)
	r.Recall(huge)
	if r.Gen(huge) != 0 || r.Outstanding(huge) {
		t.Fatal("out-of-range inode acquired state")
	}
}

func TestTableInstallValid(t *testing.T) {
	tab := NewTable(4, 2)
	ino := namespace.InodeID(42)
	exp := 700 * sim.Millisecond
	tab.Install(1, ino, 3, exp)

	if !tab.Valid(1, ino, 3, 100*sim.Millisecond) {
		t.Fatal("fresh lease invalid")
	}
	// Wrong client region, wrong generation, expired.
	if tab.Valid(2, ino, 3, 100*sim.Millisecond) {
		t.Fatal("lease leaked across client regions")
	}
	if tab.Valid(1, ino, 4, 100*sim.Millisecond) {
		t.Fatal("stale generation accepted")
	}
	if tab.Valid(1, ino, 3, 700*sim.Millisecond) {
		t.Fatal("expired lease accepted")
	}
	// Expiry is truncated to the millisecond grid: a lease may lapse up
	// to 1ms early, never late.
	tab2 := NewTable(1, 1)
	tab2.Install(0, ino, 0, 700*sim.Millisecond+999)
	if tab2.Valid(0, ino, 0, 700*sim.Millisecond) {
		t.Fatal("sub-millisecond expiry tail honoured; truncation must round down")
	}
}

func TestTableNewestGrantWins(t *testing.T) {
	tab := NewTable(1, 1)
	a, b := namespace.InodeID(1), namespace.InodeID(2)
	tab.Install(0, a, 0, sim.Second)
	tab.Install(0, b, 0, sim.Second) // same home slot (ways=1): evicts a
	if tab.Valid(0, a, 0, 0) {
		t.Fatal("evicted lease still valid")
	}
	if !tab.Valid(0, b, 0, 0) {
		t.Fatal("newest grant lost")
	}
}

func TestTableHugeInodeIgnored(t *testing.T) {
	tab := NewTable(1, 1)
	huge := namespace.InodeID(0xFFFFFFFF)
	tab.Install(0, huge, 0, sim.Second)
	if tab.Valid(0, huge, 0, 0) {
		t.Fatal("inode past the 32-bit key space leased")
	}
}

func TestPlaneDangling(t *testing.T) {
	cfg := Config{Enabled: true}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	p := NewPlane(cfg, 4, 100)
	ino := namespace.InodeID(9)

	// A granted lease the registry knows about: not dangling.
	p.Reg.NoteGrant(ino)
	p.Tab.Install(0, ino, p.Reg.Gen(ino), sim.Second)
	if n := p.Dangling(0); n != 0 {
		t.Fatalf("registered lease reported dangling: %d", n)
	}

	// Recall bumps the generation; the slot is stale, not dangling.
	p.Reg.Recall(ino)
	if n := p.Dangling(0); n != 0 {
		t.Fatalf("recalled lease reported dangling: %d", n)
	}

	// A slot at the current generation with no registry record IS a
	// coherence hole (this can only happen through a bug).
	p.Tab.Install(1, ino, p.Reg.Gen(ino), sim.Second)
	if n := p.Dangling(0); n != 1 {
		t.Fatalf("dangling = %d, want 1", n)
	}
	// ...unless it has already expired.
	if n := p.Dangling(2 * sim.Second); n != 0 {
		t.Fatalf("expired slot reported dangling: %d", n)
	}
}

func TestPlaneFootprint(t *testing.T) {
	cfg := Config{Enabled: true, Ways: 2}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	p := NewPlane(cfg, 1000, 100)
	// 12 bytes per slot, ways slots per client.
	if got := p.Tab.FootprintBytes(); got != 1000*2*12 {
		t.Fatalf("slab footprint = %d, want %d", got, 1000*2*12)
	}
	// Fan-out-only planes carry no slab at all.
	p = NewPlane(Config{Fanout: true}, 1000, 100)
	if p.Tab != nil {
		t.Fatal("fan-out-only plane allocated a client slab")
	}
}

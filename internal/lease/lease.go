// Package lease is the hotspot-mitigation plane layered over the
// message fabric: coherent client-side metadata leases and
// hot-directory replica fan-out.
//
// A lease is a bounded-lifetime read capability on one metadata record.
// The authority grants it on a reply when the record's decayed
// popularity crosses a threshold; the client then serves further reads
// of that record locally, with zero fabric hops, until the lease
// expires or the authority recalls it. Recall is by generation: every
// inode has a recall generation in a shared Registry, a grant snapshots
// the generation onto the client's lease slot, and a mutation bumps the
// generation — invalidating every outstanding lease on the record in
// O(1) without tracking individual holders. A LeaseRecall notice rides
// the fabric to the client edge (and is acknowledged with a LeaseAck)
// so the protocol cost is modelled and conserved like any other class;
// the registry bump itself is applied through the engine's deferred-op
// path so it lands at a barrier under the sharded executor and
// immediately in serial runs.
//
// Holder counts are an approximate upper bound: the registry counts
// grants since the last recall and never decrements on natural expiry,
// so a mutation may send a recall for leases that have already lapsed.
// That costs one spurious notice and is harmless; the invariant that
// matters — a valid lease slot implies the registry knows grants are
// outstanding — holds by construction and is checked by simfsck.
//
// Replica fan-out is the server-side counterpart (configured here,
// executed by the MDS): when a directory's popularity crosses the
// fan-out threshold the authority pushes Replica-class cache entries to
// peers ahead of demand, reusing the replica-set machinery that the
// coherence and failover paths already harden.
package lease

import (
	"fmt"

	"dynmds/internal/namespace"
	"dynmds/internal/sim"
)

// Config selects and tunes the two hotspot-mitigation mechanisms. The
// zero value disables both, leaving every fabric path bit-identical to
// a build without the plane.
type Config struct {
	// Enabled turns on client-side read leases (requires the open-loop
	// traffic plane, which owns the per-client lease slab).
	Enabled bool
	// Ways is the per-client lease-slot count (rounded up to a power of
	// two, default 2). Each slot costs 12 bytes in the dense slab.
	Ways int
	// Duration is the lease lifetime from client receipt (default 500ms).
	Duration sim.Time
	// GrantPopularity is the decayed-popularity floor for granting a
	// lease on a read reply (default 20): leases chase records that are
	// already warming up, mirroring how traffic control keys off the same
	// decayed counters. Set a tiny positive value to lease on every read.
	GrantPopularity float64

	// Fanout turns on hot-directory replica fan-out at the MDS.
	Fanout bool
	// FanoutPeers caps how many peers an authority pushes a hot
	// directory to; 0 means all peers.
	FanoutPeers int
	// FanoutPopularity is the decayed-popularity floor for fanning a
	// directory out (default 200).
	FanoutPopularity float64
}

// Defaults used by Normalize.
const (
	DefaultWays             = 2
	DefaultDuration         = 500 * sim.Millisecond
	DefaultGrantPopularity  = 20
	DefaultFanoutPopularity = 200
)

// Normalize fills zero tuning knobs with defaults and rounds Ways up to
// a power of two. It returns an error for nonsensical values so a bad
// knob is a construction error, never a mid-run surprise.
func (c *Config) Normalize() error {
	if !c.Enabled && !c.Fanout {
		return nil
	}
	if c.Ways == 0 {
		c.Ways = DefaultWays
	}
	if c.Ways < 0 || c.Ways > 1<<10 {
		return fmt.Errorf("lease: ways %d outside [1, 1024]", c.Ways)
	}
	for c.Ways&(c.Ways-1) != 0 {
		c.Ways++
	}
	if c.Duration == 0 {
		c.Duration = DefaultDuration
	}
	if c.Duration < 0 {
		return fmt.Errorf("lease: negative duration %v", c.Duration)
	}
	if c.GrantPopularity == 0 {
		c.GrantPopularity = DefaultGrantPopularity
	}
	if c.GrantPopularity < 0 {
		return fmt.Errorf("lease: negative grant popularity %g", c.GrantPopularity)
	}
	if c.FanoutPeers < 0 {
		return fmt.Errorf("lease: negative fan-out peer count %d", c.FanoutPeers)
	}
	if c.FanoutPopularity == 0 {
		c.FanoutPopularity = DefaultFanoutPopularity
	}
	if c.FanoutPopularity < 0 {
		return fmt.Errorf("lease: negative fan-out popularity %g", c.FanoutPopularity)
	}
	return nil
}

// Registry holds the per-inode recall generation and the count of
// grants issued since the last recall. It is shared state: the slices
// are sized once at construction (never grown, so concurrent readers
// under the sharded executor race with nothing), reads may happen on
// any shard, and writes go through the engine's deferred-op appliers so
// they land at barriers. Inodes past the pre-sized capacity are simply
// never leased.
type Registry struct {
	gen    []uint32
	grants []uint32
}

// NewRegistry sizes the registry for inode IDs up to maxIno plus
// headroom for records created mid-run.
func NewRegistry(maxIno namespace.InodeID) *Registry {
	n := int(maxIno) + 1
	n += n/2 + 4096
	return &Registry{gen: make([]uint32, n), grants: make([]uint32, n)}
}

// Leasable reports whether the registry can track this inode.
func (r *Registry) Leasable(ino namespace.InodeID) bool {
	return uint64(ino) < uint64(len(r.gen))
}

// Gen returns the current recall generation for ino.
func (r *Registry) Gen(ino namespace.InodeID) uint32 {
	if !r.Leasable(ino) {
		return 0
	}
	return r.gen[ino]
}

// Outstanding reports whether any grants were issued since the last
// recall (an upper bound on live holders: expiry never decrements it).
func (r *Registry) Outstanding(ino namespace.InodeID) bool {
	return r.Leasable(ino) && r.grants[ino] > 0
}

// NoteGrant records one issued grant. Deferred-applier target.
func (r *Registry) NoteGrant(ino namespace.InodeID) {
	if r.Leasable(ino) {
		r.grants[ino]++
	}
}

// Recall bumps the generation — invalidating every outstanding lease on
// ino — and zeroes the grant count. Deferred-applier target.
func (r *Registry) Recall(ino namespace.InodeID) {
	if r.Leasable(ino) {
		r.gen[ino]++
		r.grants[ino] = 0
	}
}

// FootprintBytes is the registry's structural size.
func (r *Registry) FootprintBytes() int { return len(r.gen)*4 + len(r.grants)*4 }

// Table is the dense per-client lease slab: ways slots per client, 12
// bytes per slot (a key word and a packed meta word in parallel
// slices). Like the hint table it is direct-mapped with a deterministic
// home slot, so installs and lookups are allocation-free and O(ways).
//
// Slot layout: key = inode ID + 1 (0 = empty); meta packs the expiry
// (milliseconds of virtual time, truncated — a lease may expire up to
// 1ms early, deterministically) in the high 32 bits and the grant-time
// recall generation in the low 32.
type Table struct {
	ways uint32
	key  []uint32
	meta []uint64
}

// NewTable sizes a slab for n clients with the given power-of-two ways.
func NewTable(n, ways int) *Table {
	if n <= 0 || ways <= 0 || ways&(ways-1) != 0 {
		panic("lease: bad table size")
	}
	return &Table{ways: uint32(ways), key: make([]uint32, n*ways), meta: make([]uint64, n*ways)}
}

func expiryMs(t sim.Time) uint32 {
	ms := t / sim.Millisecond
	if ms < 0 {
		ms = 0
	}
	if ms > 0xFFFFFFFF {
		ms = 0xFFFFFFFF
	}
	return uint32(ms)
}

// home picks the slot an inode maps to within a client's region —
// same multiplicative hash as the hint table.
func (t *Table) home(ino namespace.InodeID) uint32 {
	return uint32((uint64(ino+1)*0x9E3779B97F4A7C15)>>40) & (t.ways - 1)
}

// Install stores a lease for client on ino, granted at generation gen
// and expiring at expiry. The home slot is overwritten: the newest
// grant wins, which biases the slab toward the hottest records.
func (t *Table) Install(client int, ino namespace.InodeID, gen uint32, expiry sim.Time) {
	if uint64(ino) >= 0xFFFFFFFF {
		return
	}
	base := uint32(client) * t.ways
	s := base + t.home(ino)
	t.key[s] = uint32(ino) + 1
	t.meta[s] = uint64(expiryMs(expiry))<<32 | uint64(gen)
}

// Valid reports whether client holds a live lease on ino: the slot must
// match, be unexpired at now, and carry the registry's current recall
// generation. Allocation-free; this is the open-loop hit path.
func (t *Table) Valid(client int, ino namespace.InodeID, gen uint32, now sim.Time) bool {
	if uint64(ino) >= 0xFFFFFFFF {
		return false
	}
	base := uint32(client) * t.ways
	s := base + t.home(ino)
	if t.key[s] != uint32(ino)+1 {
		return false
	}
	m := t.meta[s]
	return uint32(m) == gen && uint32(m>>32) > expiryMs(now)
}

// FootprintBytes is the slab's structural size.
func (t *Table) FootprintBytes() int { return len(t.key)*4 + len(t.meta)*8 }

// Plane bundles the shared registry and the client slab with the
// normalized config; the cluster builds one and hands it to both the
// MDS nodes (grant/recall/fan-out decisions) and the population (local
// serves and installs).
type Plane struct {
	Cfg Config
	Reg *Registry
	Tab *Table

	// Recalled counts recall notices delivered at the client edge;
	// bumped through a deferred applier so it is barrier-safe.
	Recalled uint64
}

// NewPlane builds the plane for a population of clients over a
// namespace whose largest inode ID is maxIno. cfg must be normalized.
func NewPlane(cfg Config, clients int, maxIno namespace.InodeID) *Plane {
	p := &Plane{Cfg: cfg, Reg: NewRegistry(maxIno)}
	if cfg.Enabled && clients > 0 {
		p.Tab = NewTable(clients, cfg.Ways)
	}
	return p
}

// FootprintBytes is the plane's structural size (registry + slab).
func (p *Plane) FootprintBytes() int {
	n := p.Reg.FootprintBytes()
	if p.Tab != nil {
		n += p.Tab.FootprintBytes()
	}
	return n
}

// NoteRecalled is the deferred applier that counts a recall notice
// delivered at the client edge and applies the generation bump there.
// a = *Plane, b = *namespace.Inode.
func NoteRecalled(a, b any) {
	p := a.(*Plane)
	p.Recalled++
	p.Reg.Recall(b.(*namespace.Inode).ID)
}

// Dangling scans the slab for slots that are unexpired, carry the
// current recall generation, and yet are unknown to the registry
// (grants == 0). Such a slot would be a coherence hole — a client
// serving reads the authority believes nobody caches — and must never
// exist; simfsck calls this after every drained run.
func (p *Plane) Dangling(now sim.Time) int {
	if p.Tab == nil {
		return 0
	}
	t := p.Tab
	nowMs := expiryMs(now)
	dangling := 0
	for s, k := range t.key {
		if k == 0 {
			continue
		}
		ino := namespace.InodeID(k - 1)
		m := t.meta[s]
		if uint32(m>>32) <= nowMs {
			continue // expired
		}
		if uint32(m) != p.Reg.Gen(ino) {
			continue // recalled
		}
		if !p.Reg.Outstanding(ino) {
			dangling++
		}
	}
	return dangling
}

package sim

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the random-variate helpers the simulator
// needs. Every component receives its own seeded stream so that adding a
// consumer does not perturb the draws seen by others.
type RNG struct {
	*rand.Rand
}

// NewRNG returns a deterministic stream for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{rand.New(rand.NewSource(seed))}
}

// Stream derives an independent child stream. The derivation mixes the
// label into the parent seed so that streams with different labels are
// decorrelated.
func NewStream(seed int64, label string) *RNG {
	h := uint64(seed)
	for i := 0; i < len(label); i++ {
		h = (h ^ uint64(label[i])) * 1099511628211 // FNV-1a step
	}
	return NewRNG(int64(h & math.MaxInt64))
}

// Exp returns an exponentially distributed duration with the given mean.
func (r *RNG) Exp(mean Time) Time {
	if mean <= 0 {
		return 0
	}
	d := Time(r.ExpFloat64() * float64(mean))
	if d < 0 {
		d = 0
	}
	return d
}

// LogNormalInt returns a draw from a log-normal distribution with the
// given median and sigma, clamped to [min, max].
func (r *RNG) LogNormalInt(median float64, sigma float64, min, max int) int {
	v := math.Exp(math.Log(median) + sigma*r.NormFloat64())
	n := int(v)
	if n < min {
		n = min
	}
	if n > max {
		n = max
	}
	return n
}

// Zipf draws integers in [0, n) with a Zipf-like distribution of exponent
// s >= 1 (smaller indexes more likely). It uses rejection-free inverse
// transform over the discrete CDF only for small n; for large n it uses
// rand.Zipf. The distribution shape, not exactness, is what matters here.
type Zipf struct {
	z *rand.Zipf
	n int
}

// NewZipf constructs a Zipf sampler over [0, n).
func (r *RNG) NewZipf(s float64, n int) *Zipf {
	if n < 1 {
		n = 1
	}
	if s <= 1 {
		s = 1.01
	}
	return &Zipf{z: rand.NewZipf(r.Rand, s, 1, uint64(n-1)), n: n}
}

// Draw returns the next sample.
func (z *Zipf) Draw() int {
	if z.z == nil {
		return 0
	}
	return int(z.z.Uint64())
}

// Pick returns a uniformly random element index for a slice of length n,
// or 0 if n <= 1.
func (r *RNG) Pick(n int) int {
	if n <= 1 {
		return 0
	}
	return r.Intn(n)
}

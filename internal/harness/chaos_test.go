package harness

import (
	"reflect"
	"strings"
	"testing"

	"dynmds/internal/cluster"
	"dynmds/internal/fault"
	"dynmds/internal/sim"
)

func chaosTestOptions() ChaosOptions {
	return ChaosOptions{
		Seed:      7,
		Schedules: 3,
		Strategies: []string{
			cluster.StratDynamic, cluster.StratFileHash,
		},
		NumMDS:   3,
		Duration: 4 * sim.Second,
	}
}

// TestChaosDeterministic: the same options produce a bit-identical
// report — the whole budget is a pure function of the seed.
func TestChaosDeterministic(t *testing.T) {
	a, err := Chaos(chaosTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chaos(chaosTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same options, different reports:\n%s\n%s", a, b)
	}
}

// TestChaosBudgetPasses: a small fixed-seed budget across every
// strategy is clean — the committed CI budget relies on this staying
// true.
func TestChaosBudgetPasses(t *testing.T) {
	opt := chaosTestOptions()
	opt.Seed = 1
	opt.Schedules = 4
	opt.Strategies = cluster.Strategies
	rep, err := Chaos(opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("fixed-seed budget failed %d/%d runs:\n%s", rep.Failed, rep.Runs, rep)
	}
	if rep.Passed != rep.Runs || rep.Runs != opt.Schedules*len(cluster.Strategies) {
		t.Fatalf("accounting off: passed=%d failed=%d runs=%d", rep.Passed, rep.Failed, rep.Runs)
	}
	if rep.RulesTotal == 0 {
		t.Fatal("budget generated no rules at all")
	}
}

// knownBadSchedule is a noisy schedule for shrinker tests: a crash, a
// stray recovery, drops, a lag, a slow window and a partition.
func knownBadSchedule(t *testing.T) *fault.Schedule {
	t.Helper()
	s, err := fault.ParseSchedule(
		"crash@1s:mds1,recover@3s:mds2,drop@0.05:all,drop@0.1:client," +
			"lag@1s-2s:mds2+5ms,slow@2s-3s:mds0x2,partition@1500ms-2500ms:{0|1.2}")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShrinkScheduleSynthetic: against a synthetic predicate — fails
// iff the schedule still crashes mds1 AND keeps at least one drop rule
// — the shrinker must reach exactly those two rules.
func TestShrinkScheduleSynthetic(t *testing.T) {
	orig := knownBadSchedule(t)
	fails := func(s *fault.Schedule) bool {
		crash := false
		for _, ev := range s.Crashes {
			if ev.Node == 1 {
				crash = true
			}
		}
		return crash && len(s.Drops) > 0
	}
	if !fails(orig) {
		t.Fatal("predicate must hold for the original schedule")
	}
	shrunk, evals := ShrinkSchedule(orig, fails, 0)
	if !fails(shrunk) {
		t.Fatalf("shrunk schedule no longer fails: %s", shrunk)
	}
	if got := shrunk.NumRules(); got != 2 {
		t.Fatalf("expected the 2-rule minimum, got %d: %s", got, shrunk)
	}
	if evals <= 0 || evals > 200 {
		t.Fatalf("evaluation accounting off: %d", evals)
	}
	// The repro must replay: canonical text reparses to the same rules.
	back, err := fault.ParseSchedule(shrunk.String())
	if err != nil {
		t.Fatalf("shrunk schedule does not reparse: %v", err)
	}
	if back.NumRules() != shrunk.NumRules() {
		t.Fatalf("reparse changed rule count")
	}
	// The original is untouched (shrinking works on clones).
	if orig.NumRules() != knownBadSchedule(t).NumRules() {
		t.Fatal("ShrinkSchedule mutated its input")
	}
}

// TestShrinkScheduleBudget: the evaluation budget is a hard cap.
func TestShrinkScheduleBudget(t *testing.T) {
	calls := 0
	fails := func(s *fault.Schedule) bool { calls++; return true }
	_, evals := ShrinkSchedule(knownBadSchedule(t), fails, 5)
	if calls != 5 || evals != 5 {
		t.Fatalf("budget not enforced: calls=%d evals=%d", calls, evals)
	}
}

// TestShrinkScheduleWindows: with a predicate that only needs the lag
// rule, the shrinker both drops everything else and halves the
// surviving window.
func TestShrinkScheduleWindows(t *testing.T) {
	orig := knownBadSchedule(t)
	fails := func(s *fault.Schedule) bool { return len(s.Lags) > 0 }
	shrunk, _ := ShrinkSchedule(orig, fails, 0)
	if shrunk.NumRules() != 1 || len(shrunk.Lags) != 1 {
		t.Fatalf("expected a single lag rule, got %s", shrunk)
	}
	l := shrunk.Lags[0]
	if l.To-l.From >= 2*sim.Millisecond {
		t.Fatalf("window not narrowed: [%v, %v)", l.From, l.To)
	}
}

// TestShrinkScheduleRealRun: end-to-end shrink against real
// simulations. The predicate — "mds1 ends the run dead and
// suspicion-confirmed down" — needs only the unrecovered crash, so the
// noisy 7-rule schedule must shrink to that one rule, and the repro
// must still trip the predicate. (A looser predicate like "any down
// event" shrinks to a lone partition window instead: partitions also
// produce suspicions. Only a crash leaves the node failed.)
func TestShrinkScheduleRealRun(t *testing.T) {
	opt := chaosTestOptions()
	fails := func(s *fault.Schedule) bool {
		cfg := chaosConfig(opt, cluster.StratDynamic, s.String())
		cl, err := cluster.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cl.Run()
		return cl.Nodes[1].Failed() && cl.NodeDown(1)
	}
	orig := knownBadSchedule(t)
	if !fails(orig) {
		t.Fatal("original schedule must trip the predicate")
	}
	shrunk, evals := ShrinkSchedule(orig, fails, 60)
	if !fails(shrunk) {
		t.Fatalf("shrunk schedule no longer trips the predicate: %s", shrunk)
	}
	if shrunk.NumRules() > 1 {
		t.Fatalf("expected the lone crash rule after %d evals, got: %s", evals, shrunk)
	}
	if len(shrunk.Crashes) != 1 || shrunk.Crashes[0].Node != 1 {
		t.Fatalf("wrong surviving rule: %s", shrunk)
	}
}

// TestChaosReplayLine: the replay command names every knob the chaos
// config deviates from the defaults on, so the CLI reproduces the run.
func TestChaosReplayLine(t *testing.T) {
	opt := chaosTestOptions()
	cfg := chaosConfig(opt, cluster.StratDynamic, "crash@2s:mds1")
	line := replayCommand(cfg)
	for _, want := range []string{
		"-strategy DynamicSubtree", "-mds 3", "-clients 10", "-users 30",
		"-cache 500", "-dur 4", "-warmup 1", "-seed 7", "-faults 'crash@2s:mds1'",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("replay line missing %q: %s", want, line)
		}
	}
}

// TestAvailScenarioRespectsSeed: the availability experiment follows
// the -seed option — both the faulty run and its fault-free control —
// rather than being pinned to one RNG stream.
func TestAvailScenarioRespectsSeed(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		spec := availScenario(Options{Seed: seed}, cluster.StratDynamic)
		if spec.cfg.Seed != seed {
			t.Errorf("seed %d: scenario pinned to seed %d", seed, spec.cfg.Seed)
		}
	}
	a := availScenario(Options{Seed: 1}, cluster.StratDynamic)
	b := availScenario(Options{Seed: 2}, cluster.StratDynamic)
	if a.cfg.Faults != b.cfg.Faults {
		t.Error("fault schedule must not vary with the seed (only the workload RNG does)")
	}
}

package client

import (
	"fmt"

	"dynmds/internal/namespace"
	"dynmds/internal/snap"
)

// Endurance checkpointing for the open-loop traffic plane.
//
// The population's serialized state is the per-shard slabs and counters
// plus the shared hint table. Pending wheel timers are deliberately NOT
// serialized: a checkpoint happens at a quiesce point where both the
// checkpointing run and a restored run execute the same Pause → drain →
// Resume protocol, and Resume re-arms every client from its own RNG
// stream — so the post-resume arrival process is a pure function of the
// serialized RNG slabs, identical in both runs.

// Pause stops arrivals and wheels ahead of a checkpoint. The drain
// window that follows lets in-flight requests and retry chains retire.
func (p *Population) Pause() {
	for _, s := range p.shards {
		s.stopped = true
		s.wheel.Stop()
	}
}

// Resume re-arms every client and restarts the wheels. Executed
// identically after an in-place checkpoint and after a restore.
func (p *Population) Resume() {
	for _, s := range p.shards {
		s.stopped = false
		s.wheel.Reset()
		s.wheel.Start()
		for li := int32(0); li < int32(len(s.rng)); li++ {
			s.rearm(li)
		}
	}
}

// SnapshotTo serializes the population. Call only at a quiesce point:
// paused, drained (no outstanding retries), and outside any act.
func (p *Population) SnapshotTo(w *snap.Writer) {
	w.Int(len(p.shards))
	for _, s := range p.shards {
		if !s.stopped {
			panic("client: snapshot of a running population")
		}
		if len(s.retry) != 0 {
			panic("client: snapshot with outstanding retries")
		}
		if s.curLat != nil {
			panic("client: snapshot inside an act")
		}
		w.Int(len(s.rng))
		for _, v := range s.rng {
			w.U64(v)
		}
		w.U64(s.seq)
		w.Int(s.nameSeq)
		w.U64(s.issued)
		w.U64(s.completed)
		w.U64(s.leaseHits)
		w.U64(s.hotLocal)
		w.U64(s.hotRemote)
		w.U64(s.retries)
		w.U64(s.timedOut)
		w.U64(s.wheel.Ticks)
		w.U64(s.wheel.Fired)
		n, mean, m2, mn, mx := s.welford.State()
		w.I64(n)
		w.F64(mean)
		w.F64(m2)
		w.F64(mn)
		w.F64(mx)
		nb := 0
		s.lat.State(func(int, uint64) { nb++ })
		w.Int(nb)
		s.lat.State(func(idx int, count uint64) {
			w.Int(idx)
			w.U64(count)
		})
		w.Int(len(s.churn) - s.churnHead)
		for _, c := range s.churn[s.churnHead:] {
			w.U64(uint64(c.ID))
		}
		w.Int(len(s.baseVictims) - s.baseHead)
		for _, v := range s.baseVictims[s.baseHead:] {
			w.U64(uint64(v.ID))
		}
	}
	// Shared hint table, sparse.
	nz := 0
	for _, v := range p.hints.slots {
		if v != 0 {
			nz++
		}
	}
	w.Int(len(p.hints.slots))
	w.Int(nz)
	for i, v := range p.hints.slots {
		if v != 0 {
			w.Int(i)
			w.U64(v)
		}
	}
}

// RestoreFrom applies a snapshot onto a freshly built population with
// the same config and shard count; resolve maps inode IDs back to the
// restored namespace.
func (p *Population) RestoreFrom(r *snap.Reader, resolve func(namespace.InodeID) (*namespace.Inode, bool)) error {
	if k := r.Int(); k != len(p.shards) {
		return fmt.Errorf("client: snapshot has %d population shards, cluster has %d", k, len(p.shards))
	}
	for _, s := range p.shards {
		if n := r.Int(); n != len(s.rng) {
			return fmt.Errorf("client: snapshot shard has %d clients, built shard has %d", n, len(s.rng))
		}
		for i := range s.rng {
			s.rng[i] = r.U64()
		}
		s.seq = r.U64()
		s.nameSeq = r.Int()
		s.issued = r.U64()
		s.completed = r.U64()
		s.leaseHits = r.U64()
		s.hotLocal = r.U64()
		s.hotRemote = r.U64()
		s.retries = r.U64()
		s.timedOut = r.U64()
		s.wheel.Ticks = r.U64()
		s.wheel.Fired = r.U64()
		s.welford.SetState(r.I64(), r.F64(), r.F64(), r.F64(), r.F64())
		nb := r.Int()
		for i := 0; i < nb; i++ {
			idx := r.Int()
			s.lat.SetBucket(idx, r.U64())
		}
		nc := r.Int()
		s.churn = make([]*namespace.Inode, 0, nc)
		s.churnHead = 0
		for i := 0; i < nc; i++ {
			id := namespace.InodeID(r.U64())
			n, ok := resolve(id)
			if !ok {
				return fmt.Errorf("client: churn-ring inode %d unresolvable", id)
			}
			s.churn = append(s.churn, n)
		}
		// The restored pool replaces whatever the fresh build seeded: only
		// the victims the checkpointing run had not yet consumed remain.
		nv := r.Int()
		s.baseVictims = make([]*namespace.Inode, 0, nv)
		s.baseHead = 0
		for i := 0; i < nv; i++ {
			id := namespace.InodeID(r.U64())
			n, ok := resolve(id)
			if !ok {
				return fmt.Errorf("client: base-victim inode %d unresolvable", id)
			}
			s.baseVictims = append(s.baseVictims, n)
		}
		s.stopped = true
	}
	total := r.Int()
	if total != len(p.hints.slots) {
		return fmt.Errorf("client: snapshot hint table has %d slots, built table has %d", total, len(p.hints.slots))
	}
	nz := r.Int()
	for i := 0; i < nz; i++ {
		idx := r.Int()
		p.hints.slots[idx] = r.U64()
	}
	return nil
}

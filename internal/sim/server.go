package sim

// Server models a FIFO service centre with a fixed number of parallel
// service slots (width) and a caller-supplied service time per job. It is
// the building block for modelling contended resources: an MDS CPU
// (width 1, per-op service time), a disk (width 1, per-I/O latency), or a
// NIC (width n).
//
// Jobs are served in submission order. When a job's service completes its
// callback runs at the completion instant.
//
// Jobs are pooled: a free-list of *job structs is recycled so a
// steady-state submit/complete cycle allocates nothing. A job is
// returned to the free list only by the completion event that consumes
// it — never while its completion is still queued in the engine — so
// Engine.Stop leaving events queued cannot corrupt the pool (see
// DESIGN.md, "Pooling rules").
type Server struct {
	eng   *Engine
	width int
	busy  int
	queue []*job
	free  []*job

	// Stats
	Completed  uint64
	Submitted  uint64
	BusyTime   Time // total slot-occupancy time accumulated
	lastChange Time
}

// job is one pooled unit of service. fn/a/b use the engine's typed
// callback convention; the legacy done-func form rides in fn=callFunc0.
type job struct {
	s       *Server
	service Time
	fn      EventFunc
	a, b    any
}

// NewServer creates a service centre with the given parallel width.
func NewServer(eng *Engine, width int) *Server {
	if width < 1 {
		panic("sim: server width must be >= 1")
	}
	return &Server{eng: eng, width: width}
}

// QueueLen reports the number of jobs waiting (not in service).
func (s *Server) QueueLen() int { return len(s.queue) }

// InService reports the number of jobs currently being served.
func (s *Server) InService() int { return s.busy }

// Utilization returns mean slot occupancy in [0,1] since construction.
func (s *Server) Utilization(now Time) float64 {
	s.account(now)
	if now == 0 {
		return 0
	}
	return float64(s.BusyTime) / float64(int64(now)*int64(s.width))
}

func (s *Server) account(now Time) {
	s.BusyTime += Time(int64(now-s.lastChange) * int64(s.busy))
	s.lastChange = now
}

// StatsState exposes the accounting state a checkpoint must carry. The
// server must be idle (drained) when snapshotted; in-service or queued
// jobs are events, not serializable state.
func (s *Server) StatsState() (completed, submitted uint64, busyTime, lastChange Time) {
	if s.busy != 0 || len(s.queue) != 0 {
		panic("sim: snapshotting a non-idle server")
	}
	return s.Completed, s.Submitted, s.BusyTime, s.lastChange
}

// SetStatsState restores accounting state captured by StatsState.
func (s *Server) SetStatsState(completed, submitted uint64, busyTime, lastChange Time) {
	s.Completed, s.Submitted = completed, submitted
	s.BusyTime, s.lastChange = busyTime, lastChange
}

// Submit enqueues a job with the given service time. done runs when the
// job completes; it may be nil.
func (s *Server) Submit(service Time, done func()) {
	if done == nil {
		s.SubmitCall(service, nil, nil, nil)
		return
	}
	s.SubmitCall(service, callFunc0, done, nil)
}

// SubmitCall enqueues a job whose completion runs fn(a, b) — the
// allocation-free form of Submit. fn may be nil.
func (s *Server) SubmitCall(service Time, fn EventFunc, a, b any) {
	if service < 0 {
		panic("sim: negative service time")
	}
	s.Submitted++
	s.account(s.eng.Now())
	j := s.getJob()
	j.service, j.fn, j.a, j.b = service, fn, a, b
	if s.busy < s.width {
		s.start(j)
		return
	}
	s.queue = append(s.queue, j)
}

func (s *Server) getJob() *job {
	if n := len(s.free); n > 0 {
		j := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return j
	}
	return &job{s: s}
}

func (s *Server) start(j *job) {
	s.busy++
	s.eng.AfterCall(j.service, jobComplete, j, nil)
}

// jobComplete is the pooled completion dispatcher: it releases the job
// back to the free list before invoking the callback, so the callback
// may resubmit without growing the pool.
func jobComplete(x, _ any) {
	j := x.(*job)
	s := j.s
	s.account(s.eng.Now())
	s.busy--
	s.Completed++
	fn, a, b := j.fn, j.a, j.b
	j.fn, j.a, j.b = nil, nil, nil
	s.free = append(s.free, j)
	if len(s.queue) > 0 {
		next := s.queue[0]
		// Shift rather than re-slice forever to avoid leaking the
		// backing array on long runs.
		copy(s.queue, s.queue[1:])
		s.queue[len(s.queue)-1] = nil
		s.queue = s.queue[:len(s.queue)-1]
		s.start(next)
	}
	if fn != nil {
		fn(a, b)
	}
}

// Package msg defines the operation vocabulary and the message types
// exchanged between clients and the MDS cluster. The metadata workload
// is the restricted op set the paper identifies (§2.2): inode operations
// (open, close, stat, setattr/chmod) and namespace operations (create,
// unlink, mkdir, rename, readdir).
package msg

import (
	"dynmds/internal/namespace"
	"dynmds/internal/sim"
)

// Op is a metadata operation type.
type Op uint8

// Metadata operations.
const (
	Open Op = iota
	Close
	Stat
	Readdir
	Create
	Unlink
	Mkdir
	Chmod
	Rename
	// Write is a size/mtime metadata update from a data-path write.
	// Uniquely among updates it may be absorbed by a replica: size and
	// mtime are monotonically increasing, so replicas serving
	// concurrent writers batch their local maxima and periodically
	// flush them to the authority (§4.2, the GPFS technique).
	Write
	numOps
)

// NumOps is the number of distinct operation types.
const NumOps = int(numOps)

var opNames = [...]string{"open", "close", "stat", "readdir", "create",
	"unlink", "mkdir", "chmod", "rename", "write"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "unknown"
}

// IsUpdate reports whether the operation mutates metadata and therefore
// must be serialized at the authority and committed to the log.
func (o Op) IsUpdate() bool {
	switch o {
	case Create, Unlink, Mkdir, Chmod, Rename, Write:
		return true
	}
	return false
}

// Request is one client metadata operation in flight.
type Request struct {
	ID     uint64
	Client int
	// Gen distinguishes incarnations of a pooled request struct: the
	// client bumps it each time the struct is recycled for a new
	// operation, and replies echo it, so a late duplicate reply to an
	// earlier incarnation can never be mistaken for the current one.
	// Matching by (Client, ID, Gen) values — not pointer identity —
	// is what makes request pooling safe under retries.
	Gen uint32
	Op  Op

	// Target is the inode the operation applies to. For Create and
	// Mkdir it is the containing directory; NewName is the entry to
	// create. For Rename, Target moves to DstDir/NewName.
	Target  *namespace.Inode
	DstDir  *namespace.Inode
	NewName string
	// Size is the new file size for Write operations.
	Size int64

	// Issued is when the client sent the request.
	Issued sim.Time
	// Hops counts intra-cluster forwards experienced so far.
	Hops int
	// FirstMDS is the node the client originally contacted.
	FirstMDS int
	// Via is the node that forwarded the request on its last hop, or -1
	// if it arrived straight from the client. Receivers ack forwards back
	// to Via when fault injection arms the forward timeout.
	Via int
	// Applied is set by the authority when an update commits, making
	// re-delivered retries idempotent: a duplicate is answered without
	// re-applying the mutation.
	Applied bool
	// Counted is set when the open/close bookkeeping for this request has
	// run, so a re-delivered open or close does not double-count.
	Counted bool
}

// Hint tells a client where to direct future requests for one inode: at
// the authoritative node, or anywhere if the item is widely replicated
// (the traffic-control lever of §4.4).
type Hint struct {
	Ino        namespace.InodeID
	Authority  int
	Replicated bool
}

// Reply completes a request. The identifying fields (Client, ID, Gen)
// and Issued are copied BY VALUE from the request when the authority
// builds the reply: the request struct may be recycled for a new
// operation while a duplicate reply is still in flight, so consumers
// must never derive identity or latency from Req's fields.
type Reply struct {
	Req       *Request
	Client    int
	ID        uint64
	Gen       uint32
	Issued    sim.Time
	ServedBy  int
	Completed sim.Time
	// Hints covers the target and its prefix directories.
	Hints []Hint
	// Leased grants the client a read lease on the request's target
	// (internal/lease). LeaseGen is the authority's recall generation at
	// grant time: the client stores it on the lease slot, and a recall
	// bumps the shared generation, so a grant that raced a recall is
	// stale on arrival instead of resurrecting the lease. Like the
	// identity fields these are value state and must be reset when the
	// reply struct is recycled.
	Leased   bool
	LeaseGen uint32
}

// Latency returns the request's total response time, from the Issued
// value captured at reply-build time (immune to request recycling).
func (r *Reply) Latency() sim.Time { return r.Completed - r.Issued }

package net

import (
	"slices"

	"dynmds/internal/sim"
)

// fabricShards is the per-shard partition of the fabric's mutable state
// for conservative-parallel execution. Ownership rules:
//
//   - link rows are owned by their sending shard (the client-edge row,
//     whose senders span shards, splits into per-shard lanes);
//   - class counters live in per-shard lanes: Sent/Dropped/Bytes on the
//     sender's lane, Delivered on the receiver's;
//   - envelopes come from per-shard pools, checked out either by the
//     sending shard (intra-shard hop) or at the barrier for the
//     destination shard (cross-shard hop);
//   - cross-shard deliveries queue as by-value entries in single-writer
//     (src, dst) mailboxes and merge into destination heaps at barriers.
type fabricShards struct {
	k        int
	shardOf  []int // endpoint -> owning shard; client-edge entry unused
	engines  []*sim.Engine
	class    [][NumClasses]ClassStats
	edgeRows [][]Link
	pools    [][]*envelope
	live     []int
	mail     [][]mailbox // [src][dst]
	drainIdx []int
}

// mailbox is one SPSC cross-shard delivery queue: the source shard
// appends during a window, the barrier drains. seq orders entries with
// equal delivery times by send order.
type mailbox struct {
	entries []mailEntry
	seq     uint64
}

// mailEntry is one pending cross-shard delivery, held by value so the
// sender allocates nothing; the destination-pool envelope is attached at
// the barrier.
type mailEntry struct {
	at    sim.Time
	seq   uint64
	class Class
	fn    sim.EventFunc
	a, b  any
}

// Shard partitions the fabric across k shards. shardOf maps each MDS
// endpoint to its shard and engines supplies the per-shard engines; both
// must have matching shapes. Must be called before any traffic flows.
func (f *Fabric) Shard(k int, shardOf []int, engines []*sim.Engine) {
	if k < 2 {
		panic("net: fabric sharding needs k >= 2")
	}
	if len(shardOf) < f.n || len(engines) != k {
		panic("net: fabric shard shapes do not match")
	}
	sh := &fabricShards{
		k:        k,
		shardOf:  shardOf,
		engines:  engines,
		class:    make([][NumClasses]ClassStats, k),
		edgeRows: make([][]Link, k),
		pools:    make([][]*envelope, k),
		live:     make([]int, k),
		mail:     make([][]mailbox, k),
		drainIdx: make([]int, k),
	}
	for i := 0; i < k; i++ {
		sh.edgeRows[i] = make([]Link, f.n+1)
		for to := range sh.edgeRows[i] {
			sh.edgeRows[i][to].From, sh.edgeRows[i][to].To = f.n, to
		}
		sh.mail[i] = make([]mailbox, k)
	}
	f.sh = sh
}

// Lookahead returns the latency model's conservative window bound.
func (f *Fabric) Lookahead() sim.Time { return f.model.Lookahead() }

// PendingMail reports the number of queued cross-shard deliveries not
// yet merged (for tests and leak accounting).
func (f *Fabric) PendingMail() int {
	if f.sh == nil {
		return 0
	}
	n := 0
	for src := range f.sh.mail {
		for dst := range f.sh.mail[src] {
			n += len(f.sh.mail[src][dst].entries)
		}
	}
	return n
}

func cmpMail(x, y mailEntry) int {
	if x.at != y.at {
		if x.at < y.at {
			return -1
		}
		return 1
	}
	if x.seq != y.seq {
		if x.seq < y.seq {
			return -1
		}
		return 1
	}
	return 0
}

// DrainMail merges every mailbox into its destination shard's event
// heap. Runs on the barrier goroutine with all shard clocks at the
// barrier instant; the lookahead bound guarantees every queued delivery
// time is at or after it. Deterministic order: delivery time, then
// source shard, then send sequence.
func (f *Fabric) DrainMail() {
	sh := f.sh
	if sh == nil {
		return
	}
	for dst := 0; dst < sh.k; dst++ {
		for src := 0; src < sh.k; src++ {
			slices.SortFunc(sh.mail[src][dst].entries, cmpMail)
		}
		eng := sh.engines[dst]
		idx := sh.drainIdx
		for i := range idx {
			idx[i] = 0
		}
		for {
			best := -1
			var bt sim.Time
			for src := 0; src < sh.k; src++ {
				ents := sh.mail[src][dst].entries
				if idx[src] >= len(ents) {
					continue
				}
				if t := ents[idx[src]].at; best < 0 || t < bt {
					best, bt = src, t
				}
			}
			if best < 0 {
				break
			}
			e := &sh.mail[best][dst].entries[idx[best]]
			idx[best]++
			env := f.getEnv(dst)
			env.link, env.class, env.shard = nil, e.class, dst
			env.fn, env.a, env.b = e.fn, e.a, e.b
			eng.AtCall(e.at, deliverEnvelope, env, nil)
		}
		for src := 0; src < sh.k; src++ {
			ents := sh.mail[src][dst].entries
			for i := range ents {
				ents[i] = mailEntry{}
			}
			sh.mail[src][dst].entries = ents[:0]
		}
	}
}

package fault

import "dynmds/internal/sim"

// sideNone/A/B label partition membership in the precomputed tables.
const (
	sideNone uint8 = iota
	sideA
	sideB
)

// Plane binds a Schedule to a seeded RNG stream and answers the
// fabric's per-send Transit query. It is single-threaded, like the
// fabric that owns it.
type Plane struct {
	s    *Schedule
	rng  *sim.RNG
	edge int // client-edge endpoint index (== numMDS)

	// draws counts Float64 calls on the fault stream. math/rand state is
	// opaque, but the stream is deterministic in (seed, draw count), so a
	// checkpoint serializes the count and a restore replays it forward.
	draws uint64

	// side[i] is partition i's membership table indexed by endpoint; the
	// client edge is always sideNone.
	side [][]uint8
}

// NewPlane builds a plane for a cluster whose client edge is endpoint
// clientEdge (i.e. numMDS). The RNG stream is derived from the run seed
// with its own label, so attaching a plane perturbs no other stream.
func NewPlane(seed int64, s *Schedule, clientEdge int) *Plane {
	p := &Plane{s: s, rng: sim.NewStream(seed, "fault"), edge: clientEdge}
	p.side = make([][]uint8, len(s.Partitions))
	for i, part := range s.Partitions {
		tbl := make([]uint8, clientEdge+1)
		for _, n := range part.A {
			tbl[n] = sideA
		}
		for _, n := range part.B {
			tbl[n] = sideB
		}
		p.side[i] = tbl
	}
	return p
}

// Transit implements net.FaultPlane: partitions drop deterministically,
// drop rules each draw once per matching message, and active lag rules
// accumulate extra latency. No randomness is consumed unless a
// positive-probability drop rule matches the link.
func (p *Plane) Transit(from, to int, now sim.Time) (bool, sim.Time) {
	for i := range p.s.Partitions {
		part := &p.s.Partitions[i]
		if now < part.From || now >= part.To {
			continue
		}
		a, b := p.side[i][from], p.side[i][to]
		if a != sideNone && b != sideNone && a != b {
			return true, 0
		}
	}
	for i := range p.s.Drops {
		d := &p.s.Drops[i]
		if d.P <= 0 || !d.Sel.Matches(from, to, p.edge) {
			continue
		}
		p.draws++
		if p.rng.Float64() < d.P {
			return true, 0
		}
	}
	var extra sim.Time
	for i := range p.s.Lags {
		l := &p.s.Lags[i]
		if now >= l.From && now < l.To && l.Sel.Matches(from, to, p.edge) {
			extra += l.Extra
		}
	}
	return false, extra
}

// Draws returns the number of consumed fault-stream draws (checkpoints).
func (p *Plane) Draws() uint64 { return p.draws }

// ReplayDraws fast-forwards a freshly built plane's RNG stream to the
// serialized draw count, restoring stream position exactly.
func (p *Plane) ReplayDraws(n uint64) {
	if p.draws != 0 {
		panic("fault: ReplayDraws on a used plane")
	}
	for i := uint64(0); i < n; i++ {
		p.rng.Float64()
	}
	p.draws = n
}

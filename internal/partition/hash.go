package partition

import "dynmds/internal/namespace"

// fnvOffset and fnvPrime are the FNV-1a constants.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

// PathHash hashes an inode's full path without materialising the path
// string. Renaming any ancestor changes the hash — exactly the property
// that makes path-hashed distributions pay for directory renames.
func PathHash(n *namespace.Inode) uint64 {
	// Collect the chain root→n, then fold names in order.
	var stack [64]*namespace.Inode
	depth := 0
	for c := n; c != nil && depth < len(stack); c = c.Parent() {
		stack[depth] = c
		depth++
	}
	h := fnvOffset
	for i := depth - 1; i >= 0; i-- {
		h = fnvString(h, "/")
		h = fnvString(h, stack[i].Name())
	}
	return h
}

// NameHash hashes a (directory identity, entry name) pair; used for
// dynamically hashed directories (§4.3), where the authority for a
// directory entry "is defined by a hash of the file name and the
// directory inode number".
func NameHash(dir namespace.InodeID, name string) uint64 {
	h := fnvOffset
	for s := uint64(dir); s > 0; s >>= 8 {
		h = (h ^ (s & 0xff)) * fnvPrime
	}
	return fnvString(h, name)
}

// FileHash distributes every inode by a hash of its full path name, like
// Vesta, RAMA, zFS and Lustre (§3.1.2). Metadata is scattered: no
// directory locality, per-inode I/O, but statistically uniform load.
type FileHash struct {
	N int // cluster size
}

// Name implements Strategy.
func (f FileHash) Name() string { return "FileHash" }

// Authority implements Strategy.
func (f FileHash) Authority(ino *namespace.Inode) int {
	return int(PathHash(ino) % uint64(f.N))
}

// AuthorityForName implements Strategy: hash of the would-be full path.
func (f FileHash) AuthorityForName(dir *namespace.Inode, name string) int {
	h := fnvString(PathHash(dir), "/")
	h = fnvString(h, name)
	return int(h % uint64(f.N))
}

// DirGranular implements Strategy: scattered per-inode storage.
func (f FileHash) DirGranular() bool { return false }

// NeedsPathTraversal implements Strategy: POSIX access checks require
// the prefix directories, which must be replicated to the serving node.
func (f FileHash) NeedsPathTraversal() bool { return true }

// ClientComputable implements Strategy.
func (f FileHash) ClientComputable() bool { return true }

// DirHash distributes metadata by a hash of the directory portion of the
// path, so a directory's contents are grouped on one MDS and on disk
// (§3.1.2), preserving prefetch while still ignoring hierarchy above the
// directory.
type DirHash struct {
	N int
}

// Name implements Strategy.
func (d DirHash) Name() string { return "DirHash" }

// Authority implements Strategy. A directory groups with its own
// contents; a file with its containing directory.
func (d DirHash) Authority(ino *namespace.Inode) int {
	dir := ino
	if !ino.IsDir() {
		if p := ino.Parent(); p != nil {
			dir = p
		}
	}
	return int(PathHash(dir) % uint64(d.N))
}

// AuthorityForName implements Strategy: new entries group with their
// containing directory.
func (d DirHash) AuthorityForName(dir *namespace.Inode, name string) int {
	return int(PathHash(dir) % uint64(d.N))
}

// DirGranular implements Strategy: directories store embedded inodes.
func (d DirHash) DirGranular() bool { return true }

// NeedsPathTraversal implements Strategy.
func (d DirHash) NeedsPathTraversal() bool { return true }

// ClientComputable implements Strategy.
func (d DirHash) ClientComputable() bool { return true }

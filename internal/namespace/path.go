package namespace

// Path segmentation and name interning.
//
// Resolving a path used to strings.Split every Lookup, allocating a
// slice plus one substring header per component. SegmentIter walks the
// same components as substrings of the original path — no allocation at
// all. The Interner deduplicates component strings at generation time:
// synthetic trees repeat a small set of names ("f0000" exists in every
// user's directories), so interning collapses millions of retained name
// strings to a few thousand.

// SegmentIter iterates over the slash-separated components of a path.
// The zero value is empty; construct with Segments.
type SegmentIter struct {
	path string
	pos  int
}

// Segments returns an iterator over path's non-empty components.
// Leading, trailing, and repeated slashes are skipped, matching the
// semantics of strings.Split + "skip empty parts".
func Segments(path string) SegmentIter {
	return SegmentIter{path: path}
}

// Next returns the next component as a substring of the original path
// (no copy), and whether one was present.
func (it *SegmentIter) Next() (string, bool) {
	p := it.path
	i := it.pos
	for i < len(p) && p[i] == '/' {
		i++
	}
	if i == len(p) {
		it.pos = i
		return "", false
	}
	start := i
	for i < len(p) && p[i] != '/' {
		i++
	}
	it.pos = i
	return p[start:i], true
}

// Interner deduplicates strings. Intended for name generation: a
// generator builds candidate names in a scratch buffer and interns
// them, so each distinct name is allocated exactly once no matter how
// many inodes share it.
type Interner struct {
	m map[string]string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{m: make(map[string]string)}
}

// Intern returns the canonical copy of s.
func (in *Interner) Intern(s string) string {
	if c, ok := in.m[s]; ok {
		return c
	}
	in.m[s] = s
	return s
}

// InternBytes returns the canonical string for b without allocating on
// a hit: the map lookup with a string-converted key does not copy, so
// only the first sighting of a name pays for its string.
func (in *Interner) InternBytes(b []byte) string {
	if c, ok := in.m[string(b)]; ok {
		return c
	}
	s := string(b)
	in.m[s] = s
	return s
}

// Len reports the number of distinct interned strings.
func (in *Interner) Len() int { return len(in.m) }

// Package cluster assembles a complete simulation: the synthetic file
// system, the MDS nodes with a chosen partitioning strategy, the client
// population with its workload, the load balancer and traffic control
// for the dynamic strategy, and the measurement plumbing that the
// experiment harness reads.
package cluster

import (
	"fmt"
	"time"

	"dynmds/internal/client"
	"dynmds/internal/core"
	"dynmds/internal/fault"
	"dynmds/internal/fsgen"
	"dynmds/internal/lease"
	"dynmds/internal/mds"
	"dynmds/internal/metrics"
	"dynmds/internal/msg"
	"dynmds/internal/namespace"
	"dynmds/internal/net"
	"dynmds/internal/osd"
	"dynmds/internal/partition"
	"dynmds/internal/sim"
	"dynmds/internal/workload"
)

// Strategy names accepted by Config.Strategy.
const (
	StratDynamic    = "DynamicSubtree"
	StratStatic     = "StaticSubtree"
	StratDirHash    = "DirHash"
	StratFileHash   = "FileHash"
	StratLazyHybrid = "LazyHybrid"
)

// Strategies lists all strategy names in the paper's presentation order.
var Strategies = []string{StratStatic, StratDynamic, StratDirHash, StratLazyHybrid, StratFileHash}

// WorkloadKind selects the client workload scenario.
type WorkloadKind string

// Workload kinds.
const (
	WorkGeneral    WorkloadKind = "general"
	WorkScientific WorkloadKind = "scientific"
	WorkShift      WorkloadKind = "shift"
	WorkFlashCrowd WorkloadKind = "flashcrowd"
)

// WorkloadConfig selects and parameterises the scenario.
type WorkloadConfig struct {
	Kind    WorkloadKind
	General workload.GeneralConfig

	// Shift scenario (Figures 5/6).
	ShiftTime     sim.Time
	ShiftFraction float64 // fraction of clients that migrate

	// Flash crowd scenario (Figure 7).
	FlashTime     sim.Time
	FlashDuration sim.Time

	// Scientific scenario.
	PhaseLength   sim.Time
	BurstFraction float64
}

// Config describes one complete simulation run.
type Config struct {
	Seed           int64
	NumMDS         int
	ClientsPerMDS  int
	Strategy       string
	PartitionDepth int

	FS       fsgen.Config
	MDS      mds.Config
	Client   client.Config
	Workload WorkloadConfig

	// NetModel selects the message-fabric latency model: net.ModelFixed
	// (the default; reproduces the constant NetLatency/FwdLatency hops
	// exactly) or net.ModelQueued (adds per-link serialization delay
	// from message size and link bandwidth).
	NetModel string
	// LinkBandwidth sets the queued model's per-link capacity in bytes
	// per simulated second; zero means net.DefaultBandwidth.
	LinkBandwidth float64

	// Faults is a fault-injection schedule in the internal/fault DSL,
	// e.g. "crash@30s:mds3,drop@0.01:link2-5,partition@60s-90s:{0-3|4-7}".
	// Empty (or all-whitespace) disables fault injection entirely; runs
	// are then bit-identical to a build without this field. When the
	// schedule is non-empty, fault-mode defaults are applied to any
	// zero-valued resilience knobs (client retry timeout and cap, MDS
	// fetch/forward timeouts, suspicion threshold) so that crashes and
	// drops are survivable out of the box.
	Faults string
	// SuspicionThreshold is the number of missed-timeout strikes against
	// a peer before the cluster marks it down; the dynamic strategy then
	// reassigns the suspect's subtrees to the least-loaded survivors.
	// Zero means 3 when faults are enabled.
	SuspicionThreshold int

	// Snapshot, when non-nil, is a pre-generated frozen namespace shared
	// with other runs; New thaws a private copy-on-write overlay over it
	// instead of generating from FS. FS/Seed still key the workload RNG
	// streams, so a run produces bit-identical results either way.
	Snapshot *fsgen.FrozenSnapshot

	// Balancer enables dynamic load balancing (DynamicSubtree only).
	Balancer *core.BalancerConfig
	// Traffic enables traffic control (DynamicSubtree only); the
	// template's thresholds are copied into a fresh controller.
	Traffic *core.TrafficControl
	// HashDirThreshold enables dynamic directory hashing (§4.3).
	HashDirThreshold int
	// OSDs, when > 0, backs all MDS storage with one shared object
	// pool of that many devices (§2.1.3) instead of node-local disks;
	// OSDReplicas sets the per-object replica count (default 2).
	OSDs        int
	OSDReplicas int
	// MakeStrategy, when non-nil, overrides Strategy with a
	// caller-built partitioning strategy constructed over the run's
	// own tree (used by ablation benches).
	MakeStrategy func(n int, tree *namespace.Tree) partition.Strategy

	// WrapGenerator, when non-nil, wraps each client's workload
	// generator (trace recording, instrumentation). When ReplaceGenerator
	// is non-nil it overrides the generator entirely (trace replay).
	WrapGenerator    func(clientID int, g workload.Generator) workload.Generator
	ReplaceGenerator func(clientID int) workload.Generator

	// OpenLoop, when non-nil, replaces the closed-loop per-object client
	// population with the open-loop flyweight traffic plane: dense
	// per-client records, tenants with Zipf-distributed sizes, Poisson
	// arrivals (with diurnal/burst modulation) scheduled through a
	// hierarchical timer wheel per shard. OpenLoop.Clients defaults to
	// NumMDS·ClientsPerMDS. Incompatible with generator replacement/
	// wrapping and non-general workload kinds (the open loop has no
	// scenario hooks). A fault schedule composes: it arms the population's
	// boxed retry-escalation cache, so drops and crashes are survivable.
	OpenLoop *client.PopulationConfig

	// Lease configures the hotspot-mitigation plane (internal/lease):
	// coherent client read leases (Lease.Enabled; requires OpenLoop) and
	// hot-directory replica fan-out (Lease.Fanout). The zero value
	// disables both and leaves runs bit-identical to a build without it.
	Lease lease.Config

	// Acts, when non-empty, scripts the open-loop run as a timeline of
	// scenario acts — timed rate/mix/skew/hotspot retargets of the
	// traffic plane (see ActConfig). Requires OpenLoop; validated and
	// resolved against the namespace in New, before any simulation.
	Acts []ActConfig

	// Shards, when > 1, runs the simulation on the conservative parallel
	// (Chandy–Misra style) sharded executor: MDS endpoints and clients
	// are partitioned across that many per-shard event heaps advancing
	// in lockstep lookahead windows derived from the fabric's minimum
	// link latency. Results are bit-reproducible for a fixed shard
	// count; 0 or 1 uses the serial engine. Incompatible with a shared
	// OSD pool. When a fault schedule is active the same windowed
	// execution runs single-threaded (the fault plane's RNG and the
	// suspicion protocol's mid-window reassignment are shared state),
	// still deterministic.
	Shards int

	Duration     sim.Time
	Warmup       sim.Time
	SeriesBucket sim.Time
}

// Default returns a small, fast baseline configuration: callers override
// strategy, sizes and workload.
func Default() Config {
	fs := fsgen.Default()
	return Config{
		Seed:           1,
		NumMDS:         4,
		ClientsPerMDS:  50,
		Strategy:       StratDynamic,
		PartitionDepth: 2,
		FS:             fs,
		MDS:            mds.DefaultConfig(2000),
		Client:         client.Config{ThinkMean: 5 * sim.Millisecond, KnownCap: 2048},
		Workload:       WorkloadConfig{Kind: WorkGeneral, General: workload.DefaultGeneralConfig()},
		Balancer:       ptr(core.DefaultBalancerConfig()),
		Traffic:        core.DefaultTrafficControl(),
		Duration:       30 * sim.Second,
		Warmup:         10 * sim.Second,
		SeriesBucket:   sim.Second,
	}
}

func ptr[T any](v T) *T { return &v }

// Cluster is a runnable simulation instance.
type Cluster struct {
	Cfg      Config
	Eng      *sim.Engine
	Snap     *fsgen.Snapshot
	Fab      *net.Fabric
	Strategy partition.Strategy
	Dyn      *core.DynamicSubtree
	Traffic  *core.TrafficControl
	Balancer *core.Balancer
	Nodes    []*mds.MDS
	Clients  []*client.Client
	// Pop is the open-loop traffic plane (nil for closed-loop runs).
	Pop *client.Population
	// Lease is the hotspot-mitigation plane (nil unless Cfg.Lease
	// enables leases and/or fan-out).
	Lease *lease.Plane
	// tenants is the plane's tenant model, kept for act-driven skew
	// retargets (scheduled on the global engine: they mutate shared
	// alias tables, so they must run at barriers when sharded).
	tenants *workload.Tenants

	// Per-node reply series, cluster-wide forward and client-arrival
	// series, replica-serve series (all bucketed by SeriesBucket).
	RepliesPerNode []*metrics.Series
	Forwards       *metrics.Series
	Arrivals       *metrics.Series

	// Latencies histograms client response times (doubling buckets
	// from 0.5 ms up; overflow above ~2 s).
	Latencies *metrics.Histogram
	// LatH is the log2-bucket latency histogram behind p50/p99/p999
	// (16 sub-buckets per octave, microsecond domain).
	LatH *metrics.LatHist

	// Pool is the shared OSD pool, when configured.
	Pool *osd.Pool

	// Fault-injection state (nil / zero when Cfg.Faults is empty).
	sched   *fault.Schedule
	plane   *fault.Plane
	strikes []int  // missed-timeout strikes per node
	down    []bool // nodes confirmed down by suspicion
	// CompletedOps buckets accepted client completions per SeriesBucket —
	// the availability series (non-nil only in fault mode).
	CompletedOps *metrics.Series
	// Failures, Recoveries and Downs log injected crashes, recoveries
	// (with warmed-record counts) and suspicion-confirmed downs.
	Failures   []FaultEvent
	Recoveries []FaultEvent
	Downs      []FaultEvent
	suspicions uint64
	// lostRoots remembers, per failed node, the subtree roots failover
	// reassigned away, so recovery can fail them back to the rejoining
	// node — whose log-warmed cache covers exactly that working set.
	lostRoots map[int][]*namespace.Inode

	// Warmup snapshots for windowed aggregates.
	warmServed, warmForwards, warmArrivals uint64
	warmHits, warmMisses                   uint64
	warmTaken                              bool

	// Sharded (conservative parallel) execution state. group is nil when
	// the effective shard count is <= 1 and everything above runs on the
	// serial engine exactly as before.
	group        *sim.ShardGroup
	shardEngines []*sim.Engine
	shardOf      []int // MDS id -> shard
	numShards    int   // effective count (0 = serial)
	// table is the strategy's subtree table when it has one; frozen
	// during windows so Authority walks are read-only, re-memoized at
	// barriers whenever the assignment epoch moves.
	table      *partition.SubtreeTable
	tableEpoch uint64
	// Per-shard metric lanes: each is written by exactly one shard
	// during windows and merged into the public aggregates (in shard
	// order, guarded by lanesMerged) when results are collected.
	// Arrival/latency lanes are indexed by the client's shard, forward
	// lanes by the forwarding node's shard. replyReturns parks replies
	// consumed on a client shard until the barrier hands them back to
	// the serving node's pool.
	arrivalLanes []*metrics.Series
	latencyLanes []*metrics.Histogram
	latHistLanes []*metrics.LatHist
	forwardLanes []*metrics.Series
	replyReturns [][]*msg.Reply
	lanesMerged  bool

	// setupWall is the wall-clock cost of New (generation or thaw plus
	// cluster assembly). The harness may add shared-snapshot generation
	// time for the run that paid it.
	setupWall time.Duration
	runWall   time.Duration
}

// AddSetupWall charges additional setup time (e.g. shared snapshot
// generation) to this run's accounting.
func (c *Cluster) AddSetupWall(d time.Duration) { c.setupWall += d }

// New builds a cluster from the configuration.
func New(cfg Config) (*Cluster, error) {
	if cfg.NumMDS < 1 {
		return nil, fmt.Errorf("cluster: NumMDS must be >= 1")
	}
	if cfg.SeriesBucket <= 0 {
		cfg.SeriesBucket = sim.Second
	}
	sched, err := fault.ParseSchedule(cfg.Faults)
	if err != nil {
		return nil, fmt.Errorf("cluster: bad fault schedule: %w", err)
	}
	if err := sched.Validate(cfg.NumMDS); err != nil {
		return nil, fmt.Errorf("cluster: bad fault schedule: %w", err)
	}
	if !sched.Empty() {
		applyFaultDefaults(&cfg)
	}
	if err := cfg.Lease.Normalize(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if cfg.Lease.Enabled && cfg.OpenLoop == nil {
		return nil, fmt.Errorf("cluster: client leases require the open-loop traffic plane")
	}
	setupStart := time.Now()
	var snap *fsgen.Snapshot
	if cfg.Snapshot != nil {
		snap = cfg.Snapshot.Thaw()
	} else {
		fs := cfg.FS
		fs.Seed = cfg.Seed
		var err error
		snap, err = fsgen.Generate(fs)
		if err != nil {
			return nil, err
		}
	}
	eng := sim.NewEngine()
	model, err := buildNetModel(cfg)
	if err != nil {
		return nil, err
	}
	shards := cfg.Shards
	if shards > cfg.NumMDS {
		shards = cfg.NumMDS
	}
	if shards > 1 {
		if cfg.OSDs > 0 {
			return nil, fmt.Errorf("cluster: sharded execution is incompatible with a shared OSD pool")
		}
		if model.Lookahead() <= 0 {
			return nil, fmt.Errorf("cluster: sharded execution needs a positive minimum link latency for lookahead")
		}
	} else {
		shards = 0
	}
	c := &Cluster{
		Cfg:       cfg,
		Eng:       eng,
		Snap:      snap,
		Fab:       net.NewFabric(eng, cfg.NumMDS, model),
		Forwards:  metrics.NewSeries(cfg.SeriesBucket),
		Arrivals:  metrics.NewSeries(cfg.SeriesBucket),
		Latencies: metrics.NewHistogram(0.0005, 12), // 0.5 ms .. ~2 s
		LatH:      metrics.NewLatHist(),
		numShards: shards,
	}
	if cfg.OpenLoop != nil {
		if cfg.ReplaceGenerator != nil || cfg.WrapGenerator != nil {
			return nil, fmt.Errorf("cluster: open-loop traffic plane is incompatible with generator replacement/wrapping")
		}
		if k := cfg.Workload.Kind; k != "" && k != WorkGeneral {
			return nil, fmt.Errorf("cluster: open-loop traffic plane supports only the general workload, not %q", k)
		}
	}
	if shards > 1 {
		c.shardEngines = make([]*sim.Engine, shards)
		c.arrivalLanes = make([]*metrics.Series, shards)
		c.latencyLanes = make([]*metrics.Histogram, shards)
		c.latHistLanes = make([]*metrics.LatHist, shards)
		c.forwardLanes = make([]*metrics.Series, shards)
		for i := range c.shardEngines {
			c.shardEngines[i] = sim.NewEngine()
			c.arrivalLanes[i] = metrics.NewSeries(cfg.SeriesBucket)
			c.latencyLanes[i] = metrics.NewHistogram(0.0005, 12)
			c.latHistLanes[i] = metrics.NewLatHist()
			c.forwardLanes[i] = metrics.NewSeries(cfg.SeriesBucket)
		}
		c.replyReturns = make([][]*msg.Reply, shards)
		// Contiguous blocks of MDS nodes per shard: authority locality
		// in the subtree partition keeps most hops intra-shard.
		c.shardOf = make([]int, cfg.NumMDS)
		base, rem := cfg.NumMDS/shards, cfg.NumMDS%shards
		node := 0
		for s := 0; s < shards; s++ {
			cnt := base
			if s < rem {
				cnt++
			}
			for j := 0; j < cnt; j++ {
				c.shardOf[node] = s
				node++
			}
		}
		c.Fab.Shard(shards, c.shardOf, c.shardEngines)
	}
	if !sched.Empty() {
		c.sched = sched
		c.plane = fault.NewPlane(cfg.Seed, sched, cfg.NumMDS)
		c.Fab.SetFaultPlane(c.plane)
		c.strikes = make([]int, cfg.NumMDS)
		c.down = make([]bool, cfg.NumMDS)
		c.CompletedOps = metrics.NewSeries(cfg.SeriesBucket)
	}

	// Strategy.
	switch {
	case cfg.MakeStrategy != nil:
		c.Strategy = cfg.MakeStrategy(cfg.NumMDS, snap.Tree)
	default:
		if err := c.buildStrategy(cfg, snap); err != nil {
			return nil, err
		}
	}

	// Shared OSD pool, when configured.
	if cfg.OSDs > 0 {
		pcfg := osd.DefaultConfig(cfg.OSDs)
		if cfg.OSDReplicas > 0 {
			pcfg.Replicas = cfg.OSDReplicas
		}
		pool, err := osd.NewPool(eng, pcfg)
		if err != nil {
			return nil, err
		}
		c.Pool = pool
	}

	// Nodes with measurement hooks.
	for i := 0; i < cfg.NumMDS; i++ {
		nodeCfg := cfg.MDS
		if c.Pool != nil {
			nodeCfg.Storage.Pool = c.Pool
			nodeCfg.Storage.PoolOwner = i
		}
		nodeEng := eng
		if c.numShards > 1 {
			nodeEng = c.shardEngines[c.shardOf[i]]
		}
		node := mds.New(i, nodeEng, nodeCfg, c.Strategy, c.Traffic, c)
		series := metrics.NewSeries(cfg.SeriesBucket)
		c.RepliesPerNode = append(c.RepliesPerNode, series)
		node.OnReply = func(id int, req *msg.Request, now sim.Time) {
			c.RepliesPerNode[id].Observe(now, 1)
		}
		node.OnForward = func(id int, req *msg.Request, now sim.Time) {
			if c.numShards > 1 {
				c.forwardLanes[c.shardOf[id]].Observe(now, 1)
				return
			}
			c.Forwards.Observe(now, 1)
		}
		c.Nodes = append(c.Nodes, node)
	}

	// Balancer (dynamic only).
	if c.Dyn != nil && cfg.Balancer != nil {
		nodes := make([]core.Node, len(c.Nodes))
		for i, n := range c.Nodes {
			nodes[i] = n
		}
		c.Balancer = core.NewBalancer(eng, *cfg.Balancer, c.Dyn, nodes)
	}

	// Clients.
	if err := c.buildClients(); err != nil {
		return nil, err
	}

	// Scenario acts: validated, hotspot paths resolved against the
	// fresh namespace, boundaries scheduled.
	if err := c.setupActs(); err != nil {
		return nil, err
	}

	// Hotspot-mitigation plane: shared registry sized to the namespace
	// (plus mid-run growth headroom), lease slab sized to the population.
	if cfg.Lease.Enabled || cfg.Lease.Fanout {
		nclients := 0
		if c.Pop != nil {
			nclients = c.Pop.Clients()
		}
		c.Lease = lease.NewPlane(cfg.Lease, nclients, snap.Tree.MaxID())
		for _, n := range c.Nodes {
			n.AttachLeasePlane(c.Lease)
		}
		if c.Pop != nil && cfg.Lease.Enabled {
			c.Pop.AttachLeasePlane(c.Lease)
		}
	}

	// A fault schedule over the open loop arms the population's boxed
	// retry cache with the same (defaulted) knobs closed-loop clients use.
	if c.Pop != nil && !sched.Empty() {
		c.Pop.EnableRetries(cfg.Client.RetryTimeout, cfg.Client.MaxRetries, cfg.Client.RetryBackoffMax)
	}

	if c.numShards > 1 {
		// Materialize every inode's tag block and freeze authority
		// resolution while still single-threaded: windows read tags and
		// walk authority concurrently, so neither may allocate or
		// memoize mid-window. The memo pass re-runs at barriers when a
		// delegation bumps the table epoch.
		snap.Tree.Walk(func(n *namespace.Inode) bool {
			_ = partition.TagsOf(n)
			return true
		})
		switch s := c.Strategy.(type) {
		case *core.DynamicSubtree:
			c.table = s.Table
		case *partition.StaticSubtree:
			c.table = s.Table
		}
		if c.table != nil {
			c.table.SetFrozen(true)
			c.table.Memoize(snap.Tree.Root)
			c.tableEpoch = c.table.Epoch()
		}
		// Fault schedules share the plane's RNG and mutate the table
		// mid-window (suspicion -> reassignment), so run the same
		// windowed execution on one goroutine in that mode.
		c.group = sim.NewShardGroup(c.shardEngines, eng, c.Fab.Lookahead(), sched.Empty(), c.barrier)
	}
	c.setupWall = time.Since(setupStart)
	return c, nil
}

// barrier is the sharded executor's window boundary: merge cross-shard
// mail, apply deferred shared-state mutations, dispatch global work
// (balancer rounds, fault events, warmup snapshot) due by now, merge
// any mail that work produced, refresh frozen authority memos if the
// partition moved, and hand consumed replies back to their pools.
func (c *Cluster) barrier(now sim.Time) {
	c.Fab.DrainMail()
	c.group.ApplyDeferred()
	c.Eng.RunUntil(now)
	c.Fab.DrainMail()
	if c.table != nil && c.table.Epoch() != c.tableEpoch {
		c.tableEpoch = c.table.Epoch()
		c.table.Memoize(c.Snap.Tree.Root)
	}
	for s := range c.replyReturns {
		buf := c.replyReturns[s]
		for i, rep := range buf {
			c.Nodes[rep.ServedBy].TakeReply(rep)
			buf[i] = nil
		}
		c.replyReturns[s] = buf[:0]
	}
}

// buildNetModel constructs the fabric latency model from the config;
// the base latencies come from the per-node MDS service model.
func buildNetModel(cfg Config) (net.LatencyModel, error) {
	base := net.Fixed{Net: cfg.MDS.NetLatency, Fwd: cfg.MDS.FwdLatency}
	switch cfg.NetModel {
	case "", net.ModelFixed:
		return base, nil
	case net.ModelQueued:
		return &net.Queued{Base: base, Bandwidth: cfg.LinkBandwidth}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown net model %q", cfg.NetModel)
	}
}

func (c *Cluster) buildStrategy(cfg Config, snap *fsgen.Snapshot) error {
	switch cfg.Strategy {
	case StratDynamic:
		d := core.NewDynamicSubtree(cfg.NumMDS, snap.Tree, cfg.PartitionDepth)
		d.HashDirThreshold = cfg.HashDirThreshold
		c.Dyn = d
		c.Strategy = d
		if cfg.Traffic != nil {
			tc := *cfg.Traffic
			tc.Replications, tc.Consolidations = 0, 0
			c.Traffic = &tc
		}
	case StratStatic:
		c.Strategy = partition.NewStaticSubtree(cfg.NumMDS, snap.Tree, cfg.PartitionDepth)
	case StratDirHash:
		c.Strategy = partition.DirHash{N: cfg.NumMDS}
	case StratFileHash:
		c.Strategy = partition.FileHash{N: cfg.NumMDS}
	case StratLazyHybrid:
		c.Strategy = partition.NewLazyHybrid(cfg.NumMDS)
	default:
		return fmt.Errorf("cluster: unknown strategy %q", cfg.Strategy)
	}
	return nil
}

func (c *Cluster) buildClients() error {
	cfg := c.Cfg
	numClients := cfg.NumMDS * cfg.ClientsPerMDS
	if cfg.OpenLoop != nil {
		return c.buildPopulation()
	}
	if numClients < 1 {
		return fmt.Errorf("cluster: no clients configured")
	}
	w := cfg.Workload

	// Scenario fixtures.
	var shiftRegion []*namespace.Inode
	var flashTarget *namespace.Inode
	switch w.Kind {
	case WorkShift:
		// The new region is every home served by one target node:
		// "portions of the hierarchy served by a single MDS" (§5.3.2).
		// Prefer a target that is NOT the owner of /home itself, so
		// that deepest-known-prefix direction through /home genuinely
		// misdirects and the discovery cost is representative.
		homeDir := c.Snap.Homes[0].Parent()
		homeOwner := c.Strategy.Authority(homeDir)
		target := c.Strategy.Authority(c.Snap.Homes[len(c.Snap.Homes)-1])
		if target == homeOwner && cfg.NumMDS > 1 {
			for i := len(c.Snap.Homes) - 1; i >= 0; i-- {
				if a := c.Strategy.Authority(c.Snap.Homes[i]); a != homeOwner {
					target = a
					break
				}
			}
		}
		// Cap the region so the migrated working set is cacheable on
		// one node: the imbalance then saturates the busy node's CPU
		// rather than its disk, which is the regime Figure 5 plots.
		for _, h := range c.Snap.Homes {
			if c.Strategy.Authority(h) == target {
				shiftRegion = append(shiftRegion, h)
				if len(shiftRegion) >= 8 {
					break
				}
			}
		}
	case WorkFlashCrowd:
		if len(c.Snap.Projects) == 0 || c.Snap.Projects[0].NumChildren() == 0 {
			return fmt.Errorf("cluster: flash crowd needs a project file")
		}
		flashTarget = c.Snap.Projects[0].Child(0)
	}

	shared := []*namespace.Inode{}
	if c.Snap.System != nil {
		shared = append(shared, c.Snap.System)
	}
	shared = append(shared, c.Snap.Projects...)

	for i := 0; i < numClients; i++ {
		region := workload.Region{
			Home:   c.Snap.Homes[i%len(c.Snap.Homes)],
			Shared: shared,
		}
		g := workload.NewGeneral(i, w.General, region)
		var gen workload.Generator = g
		switch w.Kind {
		case WorkShift:
			migrate := float64(i) < w.ShiftFraction*float64(numClients)
			gen = workload.NewShift(g, w.ShiftTime, shiftRegion, migrate)
		case WorkFlashCrowd:
			gen = workload.NewFlashCrowd(g, w.FlashTime, w.FlashDuration, flashTarget)
		case WorkScientific:
			job := c.Snap.Projects[i%len(c.Snap.Projects)]
			gen = workload.NewScientific(g, job, w.PhaseLength, w.BurstFraction)
		}
		if cfg.ReplaceGenerator != nil {
			gen = cfg.ReplaceGenerator(i)
		}
		if cfg.WrapGenerator != nil {
			gen = cfg.WrapGenerator(i, gen)
		}
		rng := sim.NewStream(cfg.Seed, fmt.Sprintf("client-%d", i))
		cliEng := c.Eng
		if c.numShards > 1 {
			cliEng = c.shardEngines[i%c.numShards]
		}
		cl := client.New(i, cliEng, cfg.Client, rng, c, c.Strategy, gen)
		if c.CompletedOps != nil {
			cl.OnComplete = c.observeComplete
		}
		c.Clients = append(c.Clients, cl)
	}
	return nil
}

// buildPopulation assembles the open-loop traffic plane: the tenant
// model over the snapshot's homes, then the flyweight population with
// one timer wheel per shard engine.
func (c *Cluster) buildPopulation() error {
	cfg := c.Cfg
	pcfg := *cfg.OpenLoop
	if pcfg.Clients <= 0 {
		pcfg.Clients = cfg.NumMDS * cfg.ClientsPerMDS
	}
	if pcfg.Clients < 1 {
		return fmt.Errorf("cluster: no clients configured")
	}
	if len(c.Snap.Homes) == 0 {
		return fmt.Errorf("cluster: open-loop traffic plane needs home directories in the snapshot")
	}
	tenants := workload.NewTenants(pcfg.Tenant, pcfg.Clients, c.Snap.Homes, cfg.Seed)
	engines := []*sim.Engine{c.Eng}
	if c.numShards > 1 {
		engines = c.shardEngines
	}
	c.tenants = tenants
	c.Pop = client.NewPopulation(pcfg, engines, c, c.Strategy, tenants, cfg.Seed)
	if pcfg.ChurnBase > 0 {
		victims := baseVictims(c.Snap.Tree, tenants, pcfg.ChurnBase)
		if len(victims) == 0 {
			return fmt.Errorf("cluster: ChurnBase %d but no base files outside the tenant working sets", pcfg.ChurnBase)
		}
		c.Pop.SeedBaseVictims(victims)
	}
	return nil
}

// baseVictims picks up to limit frozen base files for unlink churn, in
// deterministic tree-walk order, excluding every inode a tenant alias
// table can return so working-set pointers never dangle.
func baseVictims(tree *namespace.Tree, tenants *workload.Tenants, limit int) []*namespace.Inode {
	reserved := make(map[*namespace.Inode]struct{})
	tenants.ForEachTarget(func(n *namespace.Inode) { reserved[n] = struct{}{} })
	var victims []*namespace.Inode
	tree.Walk(func(n *namespace.Inode) bool {
		if len(victims) >= limit {
			return false
		}
		if n.IsDir() || !tree.IsBase(n.ID) {
			return true
		}
		if _, ok := reserved[n]; ok {
			return true
		}
		victims = append(victims, n)
		return true
	})
	return victims
}

// Node implements mds.Cluster.
func (c *Cluster) Node(i int) *mds.MDS { return c.Nodes[i] }

// NumMDS implements mds.Cluster and client.Network.
func (c *Cluster) NumMDS() int { return len(c.Nodes) }

// Tree implements mds.Cluster.
func (c *Cluster) Tree() *namespace.Tree { return c.Snap.Tree }

// Fabric implements mds.Cluster: the message fabric shared by every
// node and the client edge.
func (c *Cluster) Fabric() *net.Fabric { return c.Fab }

// Deliver implements mds.Cluster: route the reply to its client. When
// sharded this runs on the client's shard; the consumed reply is parked
// in that shard's return buffer until the barrier recycles it into the
// serving node's pool (the two may live on different shards).
func (c *Cluster) Deliver(rep *msg.Reply) {
	if c.numShards > 1 {
		shard := rep.Client % c.numShards
		c.latencyLanes[shard].Observe(rep.Latency().Seconds())
		c.latHistLanes[shard].Observe(rep.Latency())
		if c.Pop != nil {
			c.Pop.OnReply(rep)
		} else {
			c.Clients[rep.Client].OnReply(rep)
		}
		c.replyReturns[shard] = append(c.replyReturns[shard], rep)
		return
	}
	c.Latencies.Observe(rep.Latency().Seconds())
	c.LatH.Observe(rep.Latency())
	if c.Pop != nil {
		c.Pop.OnReply(rep)
		return
	}
	c.Clients[rep.Client].OnReply(rep)
}

// DeliverConsumesReply tells the MDS that Deliver hands the reply to
// the client synchronously and retains no reference, so reply structs
// (and their hint slices) may be pooled.
func (c *Cluster) DeliverConsumesReply() bool { return true }

// ClientShard tells the MDS which shard runs a client's event loop
// (clients are striped round-robin across shards).
func (c *Cluster) ClientShard(client int) int {
	if c.numShards > 1 {
		return client % c.numShards
	}
	return 0
}

// RoutesReplies tells the MDS that consumed replies return to its pool
// at barriers (via TakeReply) rather than inline from Deliver.
func (c *Cluster) RoutesReplies() bool { return c.numShards > 1 }

// LeaseRecallDeliver lands a lease-recall notice at the client edge:
// the generation bump (shared registry state) is deferred on the
// delivering engine so it applies at the barrier when sharded, and a
// LeaseAck rides back to the recalling authority. Recalls always travel
// to edge shard 0 — the registry is shard-agnostic, so any one delivery
// invalidates the lease for every client. Acks are sent exactly on
// delivery, so LeaseAck.Sent == LeaseRecall.Delivered even when a fault
// plane drops recalls (a lost recall is bounded by the lease lifetime:
// holders lapse at expiry instead).
func (c *Cluster) LeaseRecallDeliver(from int, target *namespace.Inode) {
	eng := c.Eng
	if c.numShards > 1 {
		eng = c.shardEngines[0]
	}
	eng.Defer(lease.NoteRecalled, c.Lease, target)
	c.Fab.SendFromEdge(0, net.LeaseAck, from, net.Bytes(net.LeaseAck), leaseAckArrive, c.Nodes[from], nil)
}

// leaseAckArrive completes the recall round trip at the authority.
func leaseAckArrive(a, _ any) { a.(*mds.MDS).NoteLeaseAck() }

// Send implements client.Network: the client→MDS hop enters the fabric
// at the client edge — specifically the sending client's shard's slice
// of it, so concurrent shards never share an edge-row counter.
func (c *Cluster) Send(i int, req *msg.Request) {
	if c.numShards > 1 {
		shard := req.Client % c.numShards
		c.arrivalLanes[shard].Observe(c.shardEngines[shard].Now(), 1)
		c.Fab.SendFromEdge(shard, net.Request, i, net.Bytes(net.Request), nodeReceive, c.Nodes[i], req)
		return
	}
	c.Arrivals.Observe(c.Eng.Now(), 1)
	c.Fab.Send(net.Request, c.Fab.ClientEdge(), i, net.Bytes(net.Request), nodeReceive, c.Nodes[i], req)
}

// nodeReceive delivers a client request at its MDS after the network hop.
func nodeReceive(a, b any) { a.(*mds.MDS).Receive(b.(*msg.Request)) }

// snapshotWarmup records aggregate counters at the end of the warmup
// window so Result reports steady-state numbers.
func (c *Cluster) snapshotWarmup() {
	c.warmTaken = true
	for _, n := range c.Nodes {
		c.warmServed += n.Stats.Served
		c.warmForwards += n.Stats.Forwarded
		c.warmArrivals += n.Stats.ClientArrivals
		c.warmHits += n.Cache().Stats.Hits
		c.warmMisses += n.Cache().Stats.Misses
	}
}

// Run executes the simulation and gathers results.
func (c *Cluster) Run() *Result {
	runStart := time.Now()
	if c.Pop != nil {
		c.Pop.Start()
	}
	stagger := sim.Time(0)
	for _, cl := range c.Clients {
		cl.Start(stagger)
		stagger += 17 * sim.Microsecond // de-synchronize the herd
	}
	if c.Balancer != nil {
		c.Balancer.Start()
	}
	for _, n := range c.Nodes {
		n.StartFlusher()
	}
	if c.Cfg.Warmup > 0 && c.Cfg.Warmup < c.Cfg.Duration {
		c.Eng.At(c.Cfg.Warmup, c.snapshotWarmup)
	}
	c.scheduleFaults()
	if c.group != nil {
		c.group.Run(c.Cfg.Duration)
	} else {
		c.Eng.RunUntil(c.Cfg.Duration)
	}
	c.runWall = time.Since(runStart)
	return c.Collect()
}

// ExecutedEvents returns events dispatched across every engine in the
// run — the serial engine alone, or the global engine plus all shards.
func (c *Cluster) ExecutedEvents() uint64 {
	if c.group != nil {
		return c.group.ExecutedEvents()
	}
	return c.Eng.Executed
}

// NumShards returns the effective shard count (0 when serial).
func (c *Cluster) NumShards() int { return c.numShards }

// Windows returns the number of lookahead windows executed (0 serial).
func (c *Cluster) Windows() uint64 {
	if c.group == nil {
		return 0
	}
	return c.group.Windows
}

// Result aggregates a finished run.
type Result struct {
	Strategy      string
	NumMDS        int
	Clients       int
	FSInodes      int
	Window        sim.Time // measurement window (duration - warmup)
	MeasuredOps   uint64
	AvgThroughput float64 // per-MDS ops/sec in the window
	PerMDSOps     []float64
	HitRate       float64
	PrefixFrac    float64
	ForwardFrac   float64
	MeanLatency   float64 // seconds
	Migrations    int
	Replications  uint64
	LHDebt        int
	CacheLen      int
	// Distributed-write mechanism activity (§4.2).
	WritesAbsorbed uint64
	SizeCallbacks  uint64
	// LatencyP50, LatencyP99 and LatencyP999 are client response-time
	// quantile bounds in seconds (whole run, including warmup). P999
	// comes from the fine-grained log2-bucket histogram; for open-loop
	// runs all three do.
	LatencyP50  float64
	LatencyP99  float64
	LatencyP999 float64

	// Open-loop traffic-plane accounting (zero / false when closed loop).
	OpenLoop  bool
	Issued    uint64
	Completed uint64
	// PopFootprint is the traffic plane's structural bytes (slabs,
	// wheels, hint table, tenant tables, lease slab when attached).
	PopFootprint int64
	// Acts holds per-act metrics when the run was scripted (Config.Acts),
	// in timeline order.
	Acts []ActResult

	// Lease-plane accounting (all zero when Config.Lease is off).
	// LeaseHits are arrivals served locally from a valid lease;
	// HotspotLocal/HotspotRemote split ops landing on an act's hotspot
	// target into leased local serves and MDS completions.
	LeaseHits      uint64
	LeaseGrants    uint64
	LeaseRecalls   uint64 // recall notices sent by authorities
	LeaseRecalled  uint64 // recall notices delivered at the edge
	LeaseAcks      uint64
	ReplicaFanouts uint64
	HotspotLocal   uint64
	HotspotRemote  uint64
	LeaseFootprint int // registry + slab structural bytes
	PopRetries     uint64
	PopTimedOut    uint64

	// Wall-clock accounting: SetupWall covers namespace generation (or
	// thaw) plus cluster assembly; RunWall covers event-loop execution.
	// Real time, unrelated to simulated time.
	SetupWall time.Duration
	RunWall   time.Duration
	// SharedSnapshot reports whether this run thawed a shared frozen
	// namespace rather than generating its own.
	SharedSnapshot bool

	// Net summarises fabric traffic for the whole run: total messages
	// and bytes, per-class counters, and the deepest per-link queue.
	Net net.Stats

	// Fault-injection accounting (all zero / nil on fault-free runs).
	FaultSchedule string       // the schedule source, "" when disabled
	Retries       uint64       // client retransmissions
	TimedOut      uint64       // client requests abandoned after retries
	FetchTimeouts uint64       // MDS remote-fetch timeouts
	FwdTimeouts   uint64       // MDS forward-ack timeouts
	DeadLetters   uint64       // requests dropped for a confirmed-down authority
	Suspicions    uint64       // missed-timeout strikes recorded
	Failures      []FaultEvent // injected crashes
	Recoveries    []FaultEvent // recoveries, with warmed-record counts
	Downs         []FaultEvent // suspicion-confirmed downs
	// CompletedOps buckets accepted client completions per SeriesBucket —
	// the series behind availability/recovery-time analysis.
	CompletedOps *metrics.Series

	// Series for the over-time figures (bucketed from t=0).
	RepliesPerNode []*metrics.Series
	Forwards       *metrics.Series
	Arrivals       *metrics.Series
	Bucket         sim.Time
}

// Collect assembles the Result (callable after Run).
func (c *Cluster) Collect() *Result {
	if c.numShards > 1 && !c.lanesMerged {
		c.lanesMerged = true
		for _, s := range c.arrivalLanes {
			c.Arrivals.Merge(s)
		}
		for _, s := range c.forwardLanes {
			c.Forwards.Merge(s)
		}
		for _, h := range c.latencyLanes {
			c.Latencies.Merge(h)
		}
		for _, h := range c.latHistLanes {
			c.LatH.Merge(h)
		}
	}
	cfg := c.Cfg
	window := cfg.Duration - cfg.Warmup
	if !c.warmTaken {
		window = cfg.Duration
	}
	r := &Result{
		Strategy:       cfg.Strategy,
		NumMDS:         cfg.NumMDS,
		Clients:        len(c.Clients),
		FSInodes:       c.Snap.Tree.Len(),
		Window:         window,
		RepliesPerNode: c.RepliesPerNode,
		Forwards:       c.Forwards,
		Arrivals:       c.Arrivals,
		Bucket:         cfg.SeriesBucket,
		SetupWall:      c.setupWall,
		RunWall:        c.runWall,
		SharedSnapshot: cfg.Snapshot != nil,
		Net:            c.Fab.Summary(),
	}
	if c.sched != nil {
		r.FaultSchedule = c.sched.Source()
		r.Suspicions = c.suspicions
		r.Failures = c.Failures
		r.Recoveries = c.Recoveries
		r.Downs = c.Downs
		r.CompletedOps = c.CompletedOps
		for _, cl := range c.Clients {
			r.Retries += cl.Stats.Retries
			r.TimedOut += cl.Stats.TimedOut
		}
	}
	var served, forwards, arrivals, hits, misses uint64
	for _, n := range c.Nodes {
		served += n.Stats.Served
		forwards += n.Stats.Forwarded
		arrivals += n.Stats.ClientArrivals
		hits += n.Cache().Stats.Hits
		misses += n.Cache().Stats.Misses
		r.PrefixFrac += n.Cache().PrefixFraction()
		r.CacheLen += n.Cache().Len()
		r.WritesAbsorbed += n.Stats.WritesAbsorbed
		r.SizeCallbacks += n.Stats.SizeCallbacks
		r.FetchTimeouts += n.Stats.FetchTimeouts
		r.FwdTimeouts += n.Stats.FwdTimeouts
		r.DeadLetters += n.Stats.DeadLetters
		r.LeaseGrants += n.Stats.LeaseGrants
		r.LeaseRecalls += n.Stats.LeaseRecalls
		r.LeaseAcks += n.Stats.LeaseAcks
		r.ReplicaFanouts += n.Stats.ReplicaFanouts
	}
	if c.Lease != nil {
		r.LeaseRecalled = c.Lease.Recalled
		r.LeaseFootprint = c.Lease.FootprintBytes()
	}
	r.PrefixFrac /= float64(len(c.Nodes))
	served -= c.warmServed
	forwards -= c.warmForwards
	arrivals -= c.warmArrivals
	hits -= c.warmHits
	misses -= c.warmMisses

	r.MeasuredOps = served
	if window > 0 {
		r.AvgThroughput = float64(served) / window.Seconds() / float64(len(c.Nodes))
	}
	if hits+misses > 0 {
		r.HitRate = float64(hits) / float64(hits+misses)
	}
	if arrivals > 0 {
		r.ForwardFrac = float64(forwards) / float64(arrivals)
	}
	var lat metrics.Welford
	for _, cl := range c.Clients {
		if cl.Stats.Latency.N() > 0 {
			lat.Add(cl.Stats.Latency.Mean())
		}
	}
	r.MeanLatency = lat.Mean()
	r.LatencyP50 = c.Latencies.Quantile(0.5)
	r.LatencyP99 = c.Latencies.Quantile(0.99)
	r.LatencyP999 = c.LatH.Quantile(0.999).Seconds()
	if c.Pop != nil {
		r.OpenLoop = true
		r.Clients = c.Pop.Clients()
		r.Issued = c.Pop.Issued()
		r.Completed = c.Pop.Completed()
		r.PopFootprint = c.Pop.FootprintBytes()
		r.MeanLatency = c.Pop.MeanLatency()
		r.LatencyP50 = c.LatH.Quantile(0.5).Seconds()
		r.LatencyP99 = c.LatH.Quantile(0.99).Seconds()
		r.LeaseHits = c.Pop.LeaseHits()
		r.HotspotLocal, r.HotspotRemote = c.Pop.HotspotOps()
		r.PopRetries = c.Pop.Retries()
		r.PopTimedOut = c.Pop.TimedOut()
		r.Retries += r.PopRetries
		r.TimedOut += r.PopTimedOut
		c.collectActs(r)
	} else {
		for _, cl := range c.Clients {
			r.Issued += cl.Stats.Issued
			r.Completed += cl.Stats.Completed
		}
	}
	if c.Balancer != nil {
		r.Migrations = len(c.Balancer.Migrations)
	}
	if c.Traffic != nil {
		r.Replications = c.Traffic.Replications
	}
	if lh, ok := c.Strategy.(*partition.LazyHybrid); ok {
		r.LHDebt = lh.Debt
	}
	// Per-node throughput within the window, from the reply series.
	for _, s := range c.RepliesPerNode {
		var ops float64
		startBucket := int(cfg.Warmup / cfg.SeriesBucket)
		for i := startBucket; i < s.Len(); i++ {
			ops += s.Sum(i)
		}
		r.PerMDSOps = append(r.PerMDSOps, ops/window.Seconds())
	}
	return r
}

func (r *Result) String() string {
	return fmt.Sprintf("%-14s mds=%-3d clients=%-5d fs=%-7d avg=%7.1f ops/s/mds hit=%.3f prefix=%.3f fwd=%.3f lat=%.2fms migr=%d",
		r.Strategy, r.NumMDS, r.Clients, r.FSInodes, r.AvgThroughput,
		r.HitRate, r.PrefixFrac, r.ForwardFrac, r.MeanLatency*1000, r.Migrations)
}

package namespace

import (
	"fmt"
	"strings"
)

// Tree is a complete file-system namespace. It is the single ground
// truth for a simulation: MDS caches hold references to its inodes, and
// all metadata mutations flow through its methods so invariants
// (subtree counters, link counts, the anchor table) stay consistent.
type Tree struct {
	Root   *Inode
	byID   map[InodeID]*Inode
	nextID InodeID

	// base is the shared immutable snapshot this tree overlays, nil for
	// an ordinary tree. slab then holds the run-private copies of every
	// base inode (indexed by id-1), and byID holds only inodes created
	// after the thaw (see frozen.go).
	base *Frozen
	slab []Inode
	// gone tombstones base IDs destroyed in this overlay so ByID cannot
	// resurrect their slab slots. Allocated on first removal.
	gone map[InodeID]struct{}
	// dead is the compacted tombstone representation: one bit per base
	// inode, installed by CompactTombstones once the gone map has grown
	// past the caller's threshold. While non-nil it replaces the map
	// entirely (gone is nil); ByID pays one O(1) bit test instead of a
	// hash probe, and the GC no longer scans millions of map entries.
	dead []uint64

	// Aging accounting. BaseDeletes counts base inodes destroyed in this
	// overlay (the tombstone inflow); Resurrected counts tombstones
	// brought back to life (currently never — IDs are not reused — but
	// the invariant tombstones == BaseDeletes − Resurrected is checked
	// by simfsck, so the counter exists to keep the accounting honest).
	BaseDeletes uint64
	Resurrected uint64
	// lazyLookups/lazyMisses instrument the name-index read-through:
	// LookupChild calls served by the frozen base's shared per-directory
	// maps, and how many missed. Updated atomically — lookups run
	// concurrently across shards during windows.
	lazyLookups uint64
	lazyMisses  uint64

	// Anchors locates multiply-linked inodes (§4.5). Populated lazily,
	// only for inodes with NLink > 1 and their ancestor directories.
	Anchors *AnchorTable

	// Counts maintained across mutations.
	NumFiles int
	NumDirs  int
}

// NewTree creates a tree containing only the root directory.
func NewTree() *Tree {
	t := &Tree{byID: make(map[InodeID]*Inode)}
	t.Anchors = NewAnchorTable()
	root := &Inode{ID: t.allocID(), Kind: Dir, Mode: 0o755, NLink: 1, SubtreeInodes: 1, tree: t}
	t.Root = root
	t.byID[root.ID] = root
	t.NumDirs = 1
	return t
}

func (t *Tree) allocID() InodeID {
	t.nextID++
	return t.nextID
}

// ByID returns the inode with the given ID, if it exists. On an overlay
// tree base IDs resolve directly into the slab.
func (t *Tree) ByID(id InodeID) (*Inode, bool) {
	if t.base != nil && t.base.contains(id) {
		if t.dead != nil {
			if t.dead[id>>6]&(1<<(id&63)) != 0 {
				return nil, false
			}
		} else if _, dd := t.gone[id]; dd {
			return nil, false
		}
		return t.node(id), true
	}
	if n, ok := t.byID[id]; ok {
		return n, true
	}
	return nil, false
}

// Len returns the total number of live inodes.
func (t *Tree) Len() int { return t.NumFiles + t.NumDirs }

// MaxID returns the highest inode ID allocated so far. IDs are never
// reused, so capturing this before a run gives a watermark: any live
// inode with a larger ID was created during the run. The consistency
// checker (internal/chaos) uses it to scope its dirstore cross-check to
// run-created entries.
func (t *Tree) MaxID() InodeID { return t.nextID }

// Mkdir creates a directory named name under parent.
func (t *Tree) Mkdir(parent *Inode, name string) (*Inode, error) {
	return t.add(parent, name, Dir)
}

// Create creates a file named name under parent.
func (t *Tree) Create(parent *Inode, name string) (*Inode, error) {
	return t.add(parent, name, File)
}

func (t *Tree) add(parent *Inode, name string, kind Kind) (*Inode, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	n := &Inode{ID: t.allocID(), Kind: kind, Mode: 0o644, NLink: 1, name: name, tree: t}
	if kind == Dir {
		n.Mode = 0o755
	}
	if err := parent.attach(n); err != nil {
		return nil, err
	}
	n.SubtreeInodes = 1
	parent.adjustSubtreeCount(1)
	t.byID[n.ID] = n
	if kind == Dir {
		t.NumDirs++
	} else {
		t.NumFiles++
	}
	return n, nil
}

func validName(name string) error {
	if name == "" || strings.ContainsRune(name, '/') {
		return fmt.Errorf("namespace: invalid name %q", name)
	}
	return nil
}

// Remove unlinks the inode from its primary parent. A directory must be
// empty. If the inode has additional hard links it survives under one of
// them; otherwise it is destroyed.
func (t *Tree) Remove(n *Inode) error {
	if n == t.Root {
		return fmt.Errorf("namespace: cannot remove root")
	}
	if n.Kind == Dir && n.NumChildren() > 0 {
		return fmt.Errorf("namespace: directory %s not empty", n.Path())
	}
	parent := n.parent
	if parent == nil {
		return fmt.Errorf("namespace: %s has no parent", n)
	}
	if err := parent.detach(n); err != nil {
		return err
	}
	parent.adjustSubtreeCount(-n.SubtreeInodes)
	n.NLink--
	if n.NLink > 0 {
		// Survives under another link; re-anchor there.
		t.Anchors.Unlink(t, n)
		return nil
	}
	t.Anchors.Drop(t, n)
	delete(t.byID, n.ID)
	t.destroyed(n.ID)
	if n.Kind == Dir {
		t.NumDirs--
	} else {
		t.NumFiles--
	}
	return nil
}

// Rename moves n into dstDir under newName. Renaming a directory into its
// own subtree is rejected. This is the fixed-cost whole-subtree move the
// hierarchical design makes cheap (§4.1) and the operation that is
// expensive for path-hashed distributions.
func (t *Tree) Rename(n *Inode, dstDir *Inode, newName string) error {
	if err := validName(newName); err != nil {
		return err
	}
	if n == t.Root {
		return fmt.Errorf("namespace: cannot rename root")
	}
	if dstDir.Kind != Dir {
		return fmt.Errorf("namespace: rename target %s is not a directory", dstDir.Path())
	}
	if n.parent == nil {
		return fmt.Errorf("namespace: cannot rename unlinked inode %d", n.ID)
	}
	if n == dstDir || (n.Kind == Dir && n.IsAncestorOf(dstDir)) {
		return fmt.Errorf("namespace: cannot move %s into its own subtree", n.Path())
	}
	if dstDir.parent == nil && dstDir != t.Root {
		return fmt.Errorf("namespace: rename destination %d is unlinked", dstDir.ID)
	}
	if _, exists := dstDir.LookupChild(newName); exists {
		return fmt.Errorf("namespace: %s already contains %q", dstDir.Path(), newName)
	}
	src := n.parent
	if err := src.detach(n); err != nil {
		return err
	}
	src.adjustSubtreeCount(-n.SubtreeInodes)
	n.name = newName
	if err := dstDir.attach(n); err != nil {
		// Re-attach where it was; attach cannot fail here because the
		// name was just freed.
		_ = src.attach(n)
		src.adjustSubtreeCount(n.SubtreeInodes)
		return err
	}
	dstDir.adjustSubtreeCount(n.SubtreeInodes)
	t.Anchors.Moved(t, n)
	return nil
}

// Chmod updates an inode's permission word.
func (t *Tree) Chmod(n *Inode, mode Mode) { n.Mode = mode }

// Link creates an additional hard link to n in dir under name. Linking
// directories is rejected (as in POSIX). Both the inode and its ancestor
// chain are registered in the anchor table because an embedded inode is
// otherwise unlocatable from its secondary names (§4.5).
func (t *Tree) Link(n *Inode, dir *Inode, name string) error {
	if n.Kind == Dir {
		return fmt.Errorf("namespace: cannot hard-link directory %s", n.Path())
	}
	if err := validName(name); err != nil {
		return err
	}
	if _, exists := dir.LookupChild(name); exists {
		return fmt.Errorf("namespace: %s already contains %q", dir.Path(), name)
	}
	// The inode stays embedded with (and attached to) its primary entry;
	// anchoring it makes it locatable from the secondary name by ID.
	// The secondary directory itself needs no anchor: resolution starts
	// from its dentry's inode number and goes through the table.
	n.NLink++
	t.Anchors.Add(t, n)
	return nil
}

// Lookup resolves an absolute slash-separated path. Components are
// iterated in place (see Segments), so resolution does not allocate.
func (t *Tree) Lookup(path string) (*Inode, error) {
	if path == "" || path[0] != '/' {
		return nil, fmt.Errorf("namespace: path %q is not absolute", path)
	}
	n := t.Root
	it := Segments(path)
	for {
		part, ok := it.Next()
		if !ok {
			return n, nil
		}
		c, ok := n.LookupChild(part)
		if !ok {
			return nil, fmt.Errorf("namespace: %q not found under %s", part, n.Path())
		}
		n = c
	}
}

// Walk visits every inode in depth-first order, parents before children.
// Returning false from fn prunes descent into that subtree.
func (t *Tree) Walk(fn func(*Inode) bool) {
	var rec func(n *Inode)
	rec = func(n *Inode) {
		if !fn(n) {
			return
		}
		for i := 0; i < n.NumChildren(); i++ {
			rec(n.Child(i))
		}
	}
	rec(t.Root)
}

// CheckInvariants validates subtree counters, parent/child symmetry, and
// link counts. Intended for tests; returns the first violation found.
func (t *Tree) CheckInvariants() error {
	var err error
	t.Walk(func(n *Inode) bool {
		if err != nil {
			return false
		}
		// Invariant checking inspects the private childIndex directly, so
		// build it first if the directory is still lazy.
		n.expand()
		want := 1
		for _, c := range n.children {
			if c.parent != n {
				err = fmt.Errorf("child %s has wrong parent", c)
				return false
			}
			if idx, ok := n.childIndex[c.name]; !ok || n.children[idx] != c {
				err = fmt.Errorf("child index broken for %s", c)
				return false
			}
			want += c.SubtreeInodes
		}
		if n.Kind == Dir && n.SubtreeInodes != want {
			err = fmt.Errorf("subtree count for %s = %d, want %d", n, n.SubtreeInodes, want)
			return false
		}
		if n.Kind == File && n.SubtreeInodes != 1 {
			err = fmt.Errorf("file subtree count for %s = %d", n, n.SubtreeInodes)
			return false
		}
		if got, ok := t.ByID(n.ID); !ok || got != n {
			err = fmt.Errorf("inode %s not resolvable by ID", n)
			return false
		}
		return true
	})
	return err
}

package metrics

import (
	"strings"
	"testing"

	"dynmds/internal/sim"
)

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty input produced output")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if len([]rune(s)) != 8 {
		t.Fatalf("sparkline length = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("scaling wrong: %q", s)
	}
	// Constant series: all minimum glyphs, no panic on zero span.
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Fatalf("flat series rendered %q", flat)
		}
	}
}

func TestSeriesSparkline(t *testing.T) {
	s := NewSeries(sim.Second)
	for i := 0; i < 10; i++ {
		s.Observe(sim.Time(i)*sim.Second, float64(i))
	}
	out := SeriesSparkline(s, 0, 10)
	if len([]rune(out)) != 10 {
		t.Fatalf("length = %d", len([]rune(out)))
	}
	if SeriesSparkline(s, 8, 3) != "" {
		t.Fatal("inverted range produced output")
	}
	if got := SeriesSparkline(s, -5, 100); len([]rune(got)) != 10 {
		t.Fatal("range clamping broken")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1, 4) // bounds 1,2,4,8 + overflow
	for _, v := range []float64{0.5, 1.5, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := h.Quantile(0.5); q != 4 {
		t.Fatalf("q50 = %v", q)
	}
	if q := h.Quantile(0.99); q != 16 { // overflow bucket
		t.Fatalf("q99 = %v", q)
	}
	out := h.String()
	if !strings.Contains(out, "overflow") || !strings.Contains(out, "#") {
		t.Fatalf("histogram render:\n%s", out)
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile nonzero")
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHistogram(0, 3)
}

package storage

import (
	"fmt"

	"dynmds/internal/dirstore"
	"dynmds/internal/namespace"
	"dynmds/internal/sim"
	"dynmds/internal/snap"
)

// Checkpoint codec. Serialized at a quiesce point, when both disks are
// idle — the sim.Server state calls panic otherwise. The bounded log's
// live map is not serialized; it is rebuilt from the ring contents.

// SnapshotTo serializes the store's mutable state.
func (s *Store) SnapshotTo(w *snap.Writer) {
	if s.cfg.Pool != nil {
		panic("storage: checkpointing the shared-pool ablation is not supported")
	}
	w.U64(s.Stats.InodeReads)
	w.U64(s.Stats.DirReads)
	w.U64(s.Stats.RecordsRead)
	w.U64(s.Stats.LogAppends)
	w.U64(s.Stats.TierWrites)
	w.F64(s.slow)
	for _, d := range [...]*sim.Server{s.readDisk, s.logDisk} {
		completed, submitted, busy, last := d.StatsState()
		w.U64(completed)
		w.U64(submitted)
		w.I64(int64(busy))
		w.I64(int64(last))
	}
	// Bounded log: capacity cross-checked on restore, then head and the
	// valid window oldest-first. Ring slots outside the window are never
	// read before being overwritten, so their content does not matter,
	// but head does (it fixes where future appends land).
	w.Int(s.log.capacity)
	w.Int(s.log.head)
	w.Int(s.log.n)
	for i := 0; i < s.log.n; i++ {
		w.U64(uint64(s.log.ring[(s.log.head+i)%s.log.capacity]))
	}
	if s.Dirs == nil {
		w.Int(-1)
		return
	}
	w.Int(len(s.Dirs.trees))
	w.U64(s.Dirs.NodesWritten)
	w.U64(s.Dirs.Updates)
	s.Dirs.ForEach(func(dir namespace.InodeID, t *dirstore.Tree) {
		w.U64(uint64(dir))
		t.SnapshotTo(w)
	})
}

// RestoreFrom applies a snapshot onto a freshly built store with the
// same config.
func (s *Store) RestoreFrom(r *snap.Reader) error {
	if s.cfg.Pool != nil {
		return fmt.Errorf("storage: cannot restore into a shared-pool configuration")
	}
	s.Stats.InodeReads = r.U64()
	s.Stats.DirReads = r.U64()
	s.Stats.RecordsRead = r.U64()
	s.Stats.LogAppends = r.U64()
	s.Stats.TierWrites = r.U64()
	s.slow = r.F64()
	for _, d := range [...]*sim.Server{s.readDisk, s.logDisk} {
		completed := r.U64()
		submitted := r.U64()
		busy := sim.Time(r.I64())
		last := sim.Time(r.I64())
		d.SetStatsState(completed, submitted, busy, last)
	}
	if c := r.Int(); c != s.log.capacity {
		return fmt.Errorf("storage: snapshot log capacity %d, built %d", c, s.log.capacity)
	}
	s.log.head = r.Int()
	s.log.n = r.Int()
	if s.log.head < 0 || s.log.head >= s.log.capacity || s.log.n < 0 || s.log.n > s.log.capacity {
		return fmt.Errorf("storage: snapshot log window head=%d n=%d out of range", s.log.head, s.log.n)
	}
	for i := 0; i < s.log.n; i++ {
		id := namespace.InodeID(r.U64())
		s.log.ring[(s.log.head+i)%s.log.capacity] = id
		s.log.live[id]++
	}
	nd := r.Int()
	if nd < 0 {
		if s.Dirs != nil {
			return fmt.Errorf("storage: snapshot has no directory objects, built store does")
		}
		return nil
	}
	if s.Dirs == nil {
		return fmt.Errorf("storage: snapshot has directory objects, built store does not")
	}
	s.Dirs.NodesWritten = r.U64()
	s.Dirs.Updates = r.U64()
	for i := 0; i < nd; i++ {
		dir := namespace.InodeID(r.U64())
		t, err := dirstore.DecodeTree(r)
		if err != nil {
			return fmt.Errorf("storage: dir object %d: %w", dir, err)
		}
		s.Dirs.trees[dir] = t
	}
	return nil
}

// Command mdsim runs the metadata-cluster simulation experiments that
// regenerate the paper's figures, or a single custom configuration.
//
// Usage:
//
//	mdsim -fig 2            # regenerate Figure 2 (full scale)
//	mdsim -fig all -quick   # all figures, reduced scale
//	mdsim -strategy DynamicSubtree -mds 8 -clients 40 -dur 20
//	mdsim -bench-json BENCH_1.json   # hot-path benchmark, JSON report
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dynmds/internal/cluster"
	"dynmds/internal/harness"
	"dynmds/internal/sim"
)

func main() {
	var (
		fig      = flag.String("fig", "", "experiment: 2..7, 'sci', 'failover', or 'all'")
		quick    = flag.Bool("quick", false, "reduced-scale experiments")
		seed     = flag.Int64("seed", 1, "simulation seed")
		strategy = flag.String("strategy", cluster.StratDynamic, "strategy for a custom run")
		nmds     = flag.Int("mds", 4, "cluster size for a custom run")
		clients  = flag.Int("clients", 40, "clients per MDS for a custom run")
		users    = flag.Int("users", 100, "file-system users for a custom run")
		cacheCap = flag.Int("cache", 2000, "MDS cache capacity (records)")
		dur      = flag.Float64("dur", 20, "duration in simulated seconds")
		warm     = flag.Float64("warmup", 5, "warmup in simulated seconds")
	)
	list := flag.Bool("list", false, "list available experiments")
	benchJSON := flag.String("bench-json", "", "run the Figure 2 hot-path benchmark and write a JSON report to this file")
	flag.Parse()

	if *list {
		for _, e := range append(harness.All(), harness.Extras()...) {
			fmt.Printf("%-10s %s\n           %s\n", e.ID, e.Title, e.Description)
		}
		return
	}

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "mdsim:", err)
			os.Exit(1)
		}
		return
	}

	if *fig != "" {
		runFigures(*fig, harness.Options{Quick: *quick, Seed: *seed})
		return
	}

	cfg := cluster.Default()
	cfg.Seed = *seed
	cfg.Strategy = *strategy
	cfg.NumMDS = *nmds
	cfg.ClientsPerMDS = *clients
	cfg.FS.Users = *users
	cfg.MDS.CacheCapacity = *cacheCap
	cfg.MDS.Storage.LogCapacity = *cacheCap
	cfg.Duration = sim.FromSeconds(*dur)
	cfg.Warmup = sim.FromSeconds(*warm)

	start := time.Now()
	res, err := harness.RunOne(harness.RunSpec{Label: "custom", Cfg: cfg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdsim:", err)
		os.Exit(1)
	}
	fmt.Println(res)
	fmt.Printf("wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

// benchReport is the schema of the -bench-json output: the headline
// numbers for the simulator's hot path on the Figure 2 DynamicSubtree
// configuration (the same one bench_test.go's BenchmarkFig2_DynamicSubtree
// runs), so perf regressions are catchable from a single command.
type benchReport struct {
	Config       string  `json:"config"`
	Runs         int     `json:"runs"`
	NsPerOp      int64   `json:"ns_per_op"`      // wall ns per simulation run
	AllocsPerOp  uint64  `json:"allocs_per_op"`  // heap allocations per run
	Events       uint64  `json:"events_per_run"` // engine events dispatched per run
	NsPerEvent   float64 `json:"ns_per_event"`   // wall ns per dispatched event
	AllocsPerEv  float64 `json:"allocs_per_event"`
	SimOpsPerSec float64 `json:"simops_per_sec_per_mds"`
	HitRate      float64 `json:"hitrate"`
}

// runBenchJSON runs the Figure 2 dynamic-subtree configuration once as
// warmup and three times measured, then writes per-run wall time,
// allocation, and event-throughput aggregates as JSON.
func runBenchJSON(path string, seed int64) error {
	cfg := cluster.Default()
	cfg.Seed = seed
	cfg.Strategy = cluster.StratDynamic
	cfg.NumMDS = 8
	cfg.ClientsPerMDS = 40
	cfg.FS.Users = 200
	cfg.MDS.CacheCapacity = 2500
	cfg.MDS.Storage.LogCapacity = 2500
	cfg.Duration = 10 * sim.Second
	cfg.Warmup = 4 * sim.Second

	run := func() (time.Duration, uint64, uint64, *cluster.Result, error) {
		cl, err := cluster.New(cfg)
		if err != nil {
			return 0, 0, 0, nil, err
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		res := cl.Run()
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		return wall, after.Mallocs - before.Mallocs, cl.Eng.Executed, res, nil
	}

	if _, _, _, _, err := run(); err != nil { // warmup
		return err
	}
	const runs = 3
	var (
		wallSum  time.Duration
		allocSum uint64
		eventSum uint64
		lastRes  *cluster.Result
	)
	for i := 0; i < runs; i++ {
		wall, allocs, events, res, err := run()
		if err != nil {
			return err
		}
		wallSum += wall
		allocSum += allocs
		eventSum += events
		lastRes = res
		fmt.Printf("run %d: %v, %d allocs, %d events\n", i+1, wall.Round(time.Millisecond), allocs, events)
	}

	rep := benchReport{
		Config:       "fig2-dynamic-8mds",
		Runs:         runs,
		NsPerOp:      wallSum.Nanoseconds() / runs,
		AllocsPerOp:  allocSum / runs,
		Events:       eventSum / runs,
		NsPerEvent:   float64(wallSum.Nanoseconds()) / float64(eventSum),
		AllocsPerEv:  float64(allocSum) / float64(eventSum),
		SimOpsPerSec: lastRes.AvgThroughput,
		HitRate:      lastRes.HitRate,
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d ns/op, %d allocs/op, %.1f ns/event, %.3f allocs/event\n",
		path, rep.NsPerOp, rep.AllocsPerOp, rep.NsPerEvent, rep.AllocsPerEv)
	return nil
}

func runFigures(which string, opt harness.Options) {
	var exps []harness.Experiment
	if which == "all" {
		exps = append(harness.All(), harness.Extras()...)
	} else {
		e, ok := harness.ByID("fig" + which)
		if !ok {
			e, ok = harness.ByID(which)
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "mdsim: unknown figure %q (use 2..7 or 'all')\n", which)
			os.Exit(1)
		}
		exps = []harness.Experiment{e}
	}
	for _, e := range exps {
		start := time.Now()
		fmt.Printf("== %s ==\n%s\n\n", e.Title, e.Description)
		if err := e.Run(os.Stdout, opt); err != nil {
			fmt.Fprintln(os.Stderr, "mdsim:", err)
			os.Exit(1)
		}
		fmt.Printf("(wall time %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
}

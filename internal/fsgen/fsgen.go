// Package fsgen generates synthetic file-system snapshots for the
// simulator. The paper ran its simulations against snapshots of actual
// file systems — "a large collection of home directories" — which are not
// available; this generator produces a namespace with the same shape:
// many user home directories with nested project directories, log-normal
// files-per-directory counts, a system tree, and a set of shared
// scientific project directories. Generation is deterministic for a
// given Config (including Seed).
package fsgen

import (
	"fmt"

	"dynmds/internal/namespace"
	"dynmds/internal/sim"
)

// Config parameterises snapshot generation.
type Config struct {
	Seed int64

	// Users is the number of home directories under /home.
	Users int
	// DirsPerUser is the number of nested directories created inside
	// each home directory (in addition to the home itself).
	DirsPerUser int
	// MaxDepth bounds directory nesting below a home directory.
	MaxDepth int
	// FilesPerDirMedian/Sigma parameterise the log-normal distribution
	// of files per directory. Trace studies consistently find a long
	// tail: most directories are small, a few are very large.
	FilesPerDirMedian float64
	FilesPerDirSigma  float64
	// FilesPerDirMax caps pathological draws.
	FilesPerDirMax int

	// SystemDirs and SystemFilesPerDir shape the /usr-like system tree
	// that every client occasionally touches (shared, read-mostly).
	SystemDirs        int
	SystemFilesPerDir int

	// Projects is the number of shared directories under /proj used by
	// the scientific workload (all clients in a job touch one project).
	Projects        int
	FilesPerProject int
}

// Default returns a small but realistically shaped configuration.
func Default() Config {
	return Config{
		Seed:              1,
		Users:             100,
		DirsPerUser:       20,
		MaxDepth:          6,
		FilesPerDirMedian: 6,
		FilesPerDirSigma:  1.2,
		FilesPerDirMax:    500,
		SystemDirs:        50,
		SystemFilesPerDir: 20,
		Projects:          10,
		FilesPerProject:   100,
	}
}

// Scale returns a copy of c with user/project counts multiplied by f,
// used by experiments that grow the file system with the cluster.
func (c Config) Scale(f float64) Config {
	s := c
	s.Users = max(1, int(float64(c.Users)*f))
	s.Projects = max(1, int(float64(c.Projects)*f))
	return s
}

// Snapshot is a generated namespace plus the index lists workload
// generators draw from.
type Snapshot struct {
	Tree *namespace.Tree
	// Homes[i] is user i's home directory.
	Homes []*namespace.Inode
	// Projects[i] is shared project directory i.
	Projects []*namespace.Inode
	// System is the root of the shared system tree.
	System *namespace.Inode
	// Names interns entry names: generated trees repeat a small set
	// ("f0000" exists under every user), so sharing one string per
	// distinct name removes the bulk of generation-time allocation.
	// Workload generators reuse it for the names they synthesise.
	Names *namespace.Interner
}

// FrozenSnapshot is an immutable, shareable form of Snapshot: the tree
// frozen into flat arrays (namespace.Frozen) plus the workload index
// lists demoted to inode IDs. One FrozenSnapshot may back any number of
// concurrent simulation runs; each run calls Thaw to get a private
// copy-on-write view. Everything here is read-only after GenerateFrozen
// returns.
type FrozenSnapshot struct {
	Base       *namespace.Frozen
	HomeIDs    []namespace.InodeID
	ProjectIDs []namespace.InodeID
	SystemID   namespace.InodeID // 0 when the config has no system tree
	// Names is the interner the generator used; workload generators for
	// runs sharing this snapshot must NOT share it (Interner is not
	// goroutine-safe) — Thaw hands each run a fresh one.
	Names *namespace.Interner
}

// GenerateFrozen builds a snapshot and freezes it for sharing.
func GenerateFrozen(cfg Config) (*FrozenSnapshot, error) {
	snap, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	base, err := snap.Tree.Freeze()
	if err != nil {
		return nil, err
	}
	fs := &FrozenSnapshot{Base: base, Names: snap.Names}
	for _, h := range snap.Homes {
		fs.HomeIDs = append(fs.HomeIDs, h.ID)
	}
	for _, p := range snap.Projects {
		fs.ProjectIDs = append(fs.ProjectIDs, p.ID)
	}
	if snap.System != nil {
		fs.SystemID = snap.System.ID
	}
	return fs, nil
}

// Thaw layers a private copy-on-write overlay over the shared base and
// re-resolves the workload index lists against it. The result behaves
// exactly like a freshly Generated snapshot; mutations stay private to
// this overlay. Safe to call concurrently on one FrozenSnapshot.
func (fs *FrozenSnapshot) Thaw() *Snapshot {
	t := namespace.NewOverlay(fs.Base)
	snap := &Snapshot{
		Tree:     t,
		Homes:    make([]*namespace.Inode, len(fs.HomeIDs)),
		Projects: make([]*namespace.Inode, len(fs.ProjectIDs)),
		// Workload generators mutate the interner, so each run gets its
		// own rather than sharing the generator's.
		Names: namespace.NewInterner(),
	}
	for i, id := range fs.HomeIDs {
		n, ok := t.ByID(id)
		if !ok {
			panic("fsgen: frozen snapshot home inode missing")
		}
		snap.Homes[i] = n
	}
	for i, id := range fs.ProjectIDs {
		n, ok := t.ByID(id)
		if !ok {
			panic("fsgen: frozen snapshot project inode missing")
		}
		snap.Projects[i] = n
	}
	if fs.SystemID != 0 {
		n, ok := t.ByID(fs.SystemID)
		if !ok {
			panic("fsgen: frozen snapshot system inode missing")
		}
		snap.System = n
	}
	return snap
}

// namer formats the generator's numbered names ("u0042", "lib003.so")
// into a scratch buffer and interns the result — no fmt, and at most
// one retained allocation per distinct name.
type namer struct {
	in  *namespace.Interner
	buf []byte
}

func (nm *namer) name(prefix string, n, width int, suffix string) string {
	b := append(nm.buf[:0], prefix...)
	b = appendPadded(b, n, width)
	b = append(b, suffix...)
	nm.buf = b
	return nm.in.InternBytes(b)
}

// appendPadded appends n in decimal, zero-padded to width (wider
// numbers keep all their digits, matching fmt's %0*d).
func appendPadded(b []byte, n, width int) []byte {
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	for len(tmp)-i < width {
		i--
		tmp[i] = '0'
	}
	return append(b, tmp[i:]...)
}

// Generate builds a snapshot from the configuration.
func Generate(cfg Config) (*Snapshot, error) {
	if cfg.Users < 1 {
		return nil, fmt.Errorf("fsgen: Users must be >= 1, got %d", cfg.Users)
	}
	if cfg.MaxDepth < 1 {
		cfg.MaxDepth = 1
	}
	if cfg.FilesPerDirMax < 1 {
		cfg.FilesPerDirMax = 1
	}
	r := sim.NewStream(cfg.Seed, "fsgen")
	t := namespace.NewTree()
	nm := &namer{in: namespace.NewInterner()}
	snap := &Snapshot{Tree: t, Names: nm.in}

	home, err := t.Mkdir(t.Root, "home")
	if err != nil {
		return nil, err
	}
	for u := 0; u < cfg.Users; u++ {
		h, err := t.Mkdir(home, nm.name("u", u, 4, ""))
		if err != nil {
			return nil, err
		}
		snap.Homes = append(snap.Homes, h)
		if err := growUserTree(t, r, h, cfg, nm); err != nil {
			return nil, err
		}
	}

	if cfg.SystemDirs > 0 {
		sys, err := t.Mkdir(t.Root, "usr")
		if err != nil {
			return nil, err
		}
		snap.System = sys
		dirs := []*namespace.Inode{sys}
		for d := 0; d < cfg.SystemDirs; d++ {
			parent := dirs[r.Pick(len(dirs))]
			if parent.Depth() >= cfg.MaxDepth {
				parent = sys
			}
			nd, err := t.Mkdir(parent, nm.name("s", d, 3, ""))
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, nd)
		}
		for _, d := range dirs {
			for f := 0; f < cfg.SystemFilesPerDir; f++ {
				if _, err := t.Create(d, nm.name("lib", f, 3, ".so")); err != nil {
					return nil, err
				}
			}
		}
	}

	if cfg.Projects > 0 {
		proj, err := t.Mkdir(t.Root, "proj")
		if err != nil {
			return nil, err
		}
		for p := 0; p < cfg.Projects; p++ {
			pd, err := t.Mkdir(proj, nm.name("p", p, 3, ""))
			if err != nil {
				return nil, err
			}
			snap.Projects = append(snap.Projects, pd)
			for f := 0; f < cfg.FilesPerProject; f++ {
				if _, err := t.Create(pd, nm.name("data", f, 5, "")); err != nil {
					return nil, err
				}
			}
		}
	}
	return snap, nil
}

// growUserTree creates the nested directory structure and files beneath
// one home directory.
func growUserTree(t *namespace.Tree, r *sim.RNG, h *namespace.Inode, cfg Config, nm *namer) error {
	dirs := []*namespace.Inode{h}
	baseDepth := h.Depth()
	for d := 0; d < cfg.DirsPerUser; d++ {
		parent := dirs[r.Pick(len(dirs))]
		if parent.Depth()-baseDepth >= cfg.MaxDepth {
			parent = h
		}
		nd, err := t.Mkdir(parent, nm.name("d", d, 3, ""))
		if err != nil {
			return err
		}
		dirs = append(dirs, nd)
	}
	for _, d := range dirs {
		nf := r.LogNormalInt(cfg.FilesPerDirMedian, cfg.FilesPerDirSigma, 0, cfg.FilesPerDirMax)
		for f := 0; f < nf; f++ {
			if _, err := t.Create(d, nm.name("f", f, 4, "")); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stats summarises a generated tree.
type Stats struct {
	Inodes, Files, Dirs int
	MaxDepth            int
	MeanDepth           float64
	MeanDirSize         float64 // children per directory (non-empty dirs)
}

// Describe computes summary statistics for a tree.
func Describe(t *namespace.Tree) Stats {
	var s Stats
	var depthSum, dirWithKids, kidSum int
	t.Walk(func(n *namespace.Inode) bool {
		s.Inodes++
		d := n.Depth()
		depthSum += d
		if d > s.MaxDepth {
			s.MaxDepth = d
		}
		if n.IsDir() {
			s.Dirs++
			if n.NumChildren() > 0 {
				dirWithKids++
				kidSum += n.NumChildren()
			}
		} else {
			s.Files++
		}
		return true
	})
	if s.Inodes > 0 {
		s.MeanDepth = float64(depthSum) / float64(s.Inodes)
	}
	if dirWithKids > 0 {
		s.MeanDirSize = float64(kidSum) / float64(dirWithKids)
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("inodes=%d files=%d dirs=%d maxdepth=%d meandepth=%.2f meandirsize=%.2f",
		s.Inodes, s.Files, s.Dirs, s.MaxDepth, s.MeanDepth, s.MeanDirSize)
}

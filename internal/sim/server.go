package sim

// Server models a FIFO service centre with a fixed number of parallel
// service slots (width) and a caller-supplied service time per job. It is
// the building block for modelling contended resources: an MDS CPU
// (width 1, per-op service time), a disk (width 1, per-I/O latency), or a
// NIC (width n).
//
// Jobs are served in submission order. When a job's service completes its
// done callback runs at the completion instant.
type Server struct {
	eng   *Engine
	width int
	busy  int
	queue []job

	// Stats
	Completed  uint64
	Submitted  uint64
	BusyTime   Time // total slot-occupancy time accumulated
	lastChange Time
}

type job struct {
	service Time
	done    func()
}

// NewServer creates a service centre with the given parallel width.
func NewServer(eng *Engine, width int) *Server {
	if width < 1 {
		panic("sim: server width must be >= 1")
	}
	return &Server{eng: eng, width: width}
}

// QueueLen reports the number of jobs waiting (not in service).
func (s *Server) QueueLen() int { return len(s.queue) }

// InService reports the number of jobs currently being served.
func (s *Server) InService() int { return s.busy }

// Utilization returns mean slot occupancy in [0,1] since construction.
func (s *Server) Utilization(now Time) float64 {
	s.account(now)
	if now == 0 {
		return 0
	}
	return float64(s.BusyTime) / float64(int64(now)*int64(s.width))
}

func (s *Server) account(now Time) {
	s.BusyTime += Time(int64(now-s.lastChange) * int64(s.busy))
	s.lastChange = now
}

// Submit enqueues a job with the given service time. done runs when the
// job completes; it may be nil.
func (s *Server) Submit(service Time, done func()) {
	if service < 0 {
		panic("sim: negative service time")
	}
	s.Submitted++
	s.account(s.eng.Now())
	if s.busy < s.width {
		s.start(job{service, done})
		return
	}
	s.queue = append(s.queue, job{service, done})
}

func (s *Server) start(j job) {
	s.busy++
	s.eng.After(j.service, func() {
		s.account(s.eng.Now())
		s.busy--
		s.Completed++
		if len(s.queue) > 0 {
			next := s.queue[0]
			// Shift rather than re-slice forever to avoid leaking the
			// backing array on long runs.
			copy(s.queue, s.queue[1:])
			s.queue = s.queue[:len(s.queue)-1]
			s.start(next)
		}
		if j.done != nil {
			j.done()
		}
	})
}

package cluster

import (
	"testing"

	"dynmds/internal/sim"
)

// smallConfig keeps unit-test runs fast.
func smallConfig(strategy string) Config {
	cfg := Default()
	cfg.Strategy = strategy
	cfg.NumMDS = 3
	cfg.ClientsPerMDS = 10
	cfg.FS.Users = 30
	cfg.MDS.CacheCapacity = 1500
	cfg.Duration = 6 * sim.Second
	cfg.Warmup = 2 * sim.Second
	return cfg
}

func TestRunAllStrategies(t *testing.T) {
	for _, s := range Strategies {
		s := s
		t.Run(s, func(t *testing.T) {
			cl, err := New(smallConfig(s))
			if err != nil {
				t.Fatal(err)
			}
			res := cl.Run()
			if res.MeasuredOps == 0 {
				t.Fatal("no ops measured")
			}
			if res.AvgThroughput <= 0 {
				t.Fatal("zero throughput")
			}
			if res.HitRate <= 0 || res.HitRate > 1 {
				t.Fatalf("hit rate = %v", res.HitRate)
			}
			if res.PrefixFrac < 0 || res.PrefixFrac > 1 {
				t.Fatalf("prefix fraction = %v", res.PrefixFrac)
			}
			// Every node served something.
			for i, ops := range res.PerMDSOps {
				if ops <= 0 {
					t.Fatalf("mds %d served nothing", i)
				}
			}
			if err := cl.Tree().CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			for _, n := range cl.Nodes {
				if err := n.Cache().CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			}
			if res.String() == "" {
				t.Fatal("empty result string")
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := New(smallConfig(StratDynamic))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(smallConfig(StratDynamic))
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Run(), b.Run()
	if ra.MeasuredOps != rb.MeasuredOps || ra.HitRate != rb.HitRate ||
		ra.ForwardFrac != rb.ForwardFrac || ra.Migrations != rb.Migrations {
		t.Fatalf("nondeterministic runs:\n%v\n%v", ra, rb)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfgA := smallConfig(StratDynamic)
	cfgB := smallConfig(StratDynamic)
	cfgB.Seed = 99
	a, _ := New(cfgA)
	b, _ := New(cfgB)
	ra, rb := a.Run(), b.Run()
	if ra.MeasuredOps == rb.MeasuredOps {
		t.Fatal("different seeds produced identical op counts (suspicious)")
	}
}

func TestUnknownStrategyRejected(t *testing.T) {
	cfg := smallConfig("Nonsense")
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestSubtreeClientsLearnPartition(t *testing.T) {
	cl, err := New(smallConfig(StratStatic))
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Run()
	// After warmup, clients should have learned their region's location:
	// forwarding stays well below 100%.
	if res.ForwardFrac > 0.8 {
		t.Fatalf("forward fraction = %v; clients not learning", res.ForwardFrac)
	}
	known := 0
	for _, c := range cl.Clients {
		known += c.KnownLocations()
	}
	if known == 0 {
		t.Fatal("clients learned nothing")
	}
}

func TestHashClientsNeverForward(t *testing.T) {
	cl, err := New(smallConfig(StratFileHash))
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Run()
	// Hash strategies are client-computable: requests go straight to
	// the authority (renames can still relocate items mid-flight, so
	// allow a tiny residue).
	if res.ForwardFrac > 0.02 {
		t.Fatalf("forward fraction = %v for client-computable strategy", res.ForwardFrac)
	}
}

func TestDynamicBalancerMigrates(t *testing.T) {
	cfg := smallConfig(StratDynamic)
	cfg.Workload.Kind = WorkShift
	cfg.Workload.ShiftTime = 2 * sim.Second
	cfg.Workload.ShiftFraction = 0.5
	cfg.Duration = 10 * sim.Second
	cfg.Warmup = 1 * sim.Second
	bal := *cfg.Balancer
	bal.Interval = sim.Second
	bal.MinMeanLoad = 10
	cfg.Balancer = &bal
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Run()
	if res.Migrations == 0 {
		t.Fatal("no migrations under a shifted workload")
	}
}

func TestScientificWorkloadRuns(t *testing.T) {
	cfg := smallConfig(StratDynamic)
	cfg.Workload.Kind = WorkScientific
	cfg.Workload.PhaseLength = 2 * sim.Second
	cfg.Workload.BurstFraction = 0.5
	cfg.Duration = 9 * sim.Second
	cfg.Warmup = 2 * sim.Second
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Run()
	if res.MeasuredOps == 0 {
		t.Fatal("no ops")
	}
	// The N-to-1 write bursts must exercise the distributed-write
	// mechanism once traffic control replicates the hot files.
	if res.WritesAbsorbed == 0 {
		t.Fatal("no writes absorbed at replicas under scientific workload")
	}
	// Sizes really grew on the shared files.
	grew := false
	for _, p := range cl.Snap.Projects {
		for _, c := range p.Children() {
			if c.Size > 0 {
				grew = true
			}
		}
	}
	if !grew {
		t.Fatal("no shared file grew despite write bursts")
	}
}

func TestLatencyQuantilesPopulated(t *testing.T) {
	cl, err := New(smallConfig(StratStatic))
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Run()
	if res.LatencyP50 <= 0 || res.LatencyP99 < res.LatencyP50 {
		t.Fatalf("latency quantiles: p50=%v p99=%v", res.LatencyP50, res.LatencyP99)
	}
}

// Package mds implements one simulated metadata server: the request
// pipeline (CPU service, authority resolution, forwarding, path
// traversal, cache lookups, directory-granular disk fetches with
// embedded-inode prefetch, log commits for updates), intra-cluster
// cooperation (remote prefix fetches, replica installation for traffic
// control, subtree import/export for load balancing), and the per-node
// statistics the experiments measure.
//
// The MDS is strategy-agnostic: all partitioning behaviour comes through
// the partition.Strategy interface, so the same node code serves the
// dynamic subtree system and every comparison strategy.
package mds

import (
	"dynmds/internal/cache"
	"dynmds/internal/core"
	"dynmds/internal/dirstore"
	"dynmds/internal/lease"
	"dynmds/internal/metrics"
	"dynmds/internal/msg"
	"dynmds/internal/namespace"
	"dynmds/internal/net"
	"dynmds/internal/partition"
	"dynmds/internal/sim"
	"dynmds/internal/storage"
)

// Config holds the per-node service model.
type Config struct {
	// CPUService is the processing time per request at the serving
	// node.
	CPUService sim.Time
	// PeerService is the (smaller) CPU time to serve a peer's prefix
	// fetch or install a pushed replica.
	PeerService sim.Time
	// NetLatency is the one-way client↔MDS network latency.
	NetLatency sim.Time
	// FwdLatency is the one-way MDS↔MDS latency; intra-cluster
	// forwarding "is likely to be cheap" (§5.3.3).
	FwdLatency sim.Time
	// ImportPerRecord is the CPU time per record to import or export a
	// migrated subtree; it makes migrations briefly freeze the node.
	ImportPerRecord sim.Time
	// CacheCapacity is the cache size in records.
	CacheCapacity int
	// Storage configures the two-tier store.
	Storage storage.Config
	// PopHalfLife is the popularity counter half-life.
	PopHalfLife sim.Time
	// LoadMissWeight weights cache misses against throughput in the
	// balancer's load metric (§5.1).
	LoadMissWeight float64
	// RateHalfLife smooths the throughput/miss rates used for load.
	RateHalfLife sim.Time

	// WriteFlushInterval is the period at which replicas flush absorbed
	// monotonic size updates to authorities (§4.2). The cluster starts
	// the flusher ticker; zero disables periodic flushing (stat
	// callbacks still collect on demand).
	WriteFlushInterval sim.Time

	// Fault-injection timeouts (zero disables both; the cluster sets
	// them when a fault schedule is active, see internal/fault).
	//
	// FetchTimeout bounds a remote prefix-fetch round trip. On expiry
	// the peer is reported suspect and the fetch falls back to this
	// node's own read of the shared store — any node can read any
	// record (§2.1.2), the peer round trip is only an optimisation.
	// Arming it disables fetch-carrier pooling (a timed-out carrier may
	// still be referenced by the late response).
	FetchTimeout sim.Time
	// FwdTimeout bounds the forward→ack handshake. When set, a node
	// receiving a forwarded request acks it back to the forwarder
	// (net.FwdAck); a missing ack reports the peer suspect and the
	// forwarder re-resolves the authority and re-dispatches. Requests
	// whose authority is confirmed down are dropped (dead-lettered) and
	// covered by the client's retry timeout.
	FwdTimeout sim.Time

	// Ablation knobs (see DESIGN.md).
	//
	// NoPrefetch disables embedded-inode sibling prefetch even on
	// directory-granular layouts: the whole directory is still read in
	// one I/O, but siblings are not retained.
	NoPrefetch bool
	// PrefetchHot inserts prefetched siblings at the hot MRU end
	// instead of near the LRU tail, letting speculation displace known
	// useful entries (the policy §4.5 argues against).
	PrefetchHot bool
}

// DefaultConfig returns the service model used by the experiments.
func DefaultConfig(cacheCapacity int) Config {
	return Config{
		CPUService:         300 * sim.Microsecond,
		PeerService:        100 * sim.Microsecond,
		NetLatency:         200 * sim.Microsecond,
		FwdLatency:         50 * sim.Microsecond,
		ImportPerRecord:    5 * sim.Microsecond,
		CacheCapacity:      cacheCapacity,
		Storage:            storage.DefaultConfig(cacheCapacity),
		PopHalfLife:        2 * sim.Second,
		LoadMissWeight:     10,
		RateHalfLife:       5 * sim.Second,
		WriteFlushInterval: sim.Second,
	}
}

// FaultCluster is optionally implemented by the Cluster when fault
// injection is active: nodes report peers that miss timeouts, clear
// suspicion on proof of life, and check whether an authority is already
// confirmed down. The cluster turns accumulated suspicion into failover
// reassignment (see internal/cluster).
type FaultCluster interface {
	// Suspect records one missed-timeout strike against peer, observed
	// by reporter.
	Suspect(reporter, peer int)
	// Exonerate clears the strikes against a peer that proved alive.
	Exonerate(peer int)
	// NodeDown reports whether peer has been confirmed down.
	NodeDown(peer int) bool
}

// Cluster is the MDS's view of its surroundings.
type Cluster interface {
	// Node returns peer i.
	Node(i int) *MDS
	// NumMDS returns the cluster size.
	NumMDS() int
	// Tree returns the shared ground-truth namespace.
	Tree() *namespace.Tree
	// Deliver hands a completed reply back to the issuing client.
	Deliver(rep *msg.Reply)
	// Fabric returns the message fabric every simulated hop routes
	// through (see internal/net).
	Fabric() *net.Fabric
}

// Stats counts one node's activity.
type Stats struct {
	Received        uint64 // all arrivals (client + forwarded)
	ClientArrivals  uint64 // arrivals directly from clients
	Served          uint64 // replies sent (including replica serves)
	ReplicaServes   uint64
	Forwarded       uint64
	CacheMissLoads  uint64 // fetches that went to disk or a peer
	RemoteFetches   uint64 // prefix fetches sent to peers
	PeerFetchServes uint64
	ReplicaInstalls uint64
	ReplicasPushed  uint64
	LHApplied       uint64 // lazy ACL propagations performed
	Commits         uint64
	Imported        uint64 // records imported by migrations
	Exported        uint64
	Dropped         uint64 // requests dropped (failed node)

	// Fault-injection machinery (zero in fault-free runs).
	FetchTimeouts uint64 // remote fetches that fell back to local disk
	FwdTimeouts   uint64 // forwards that missed their ack
	DeadLetters   uint64 // requests dropped: authority confirmed down

	// Cache-coherence traffic (§4.2): updates pushed to replica
	// holders, updates received for local replicas, and
	// discard notices sent to / received by authorities when a
	// replica is evicted.
	CoherenceSent     uint64
	CoherenceReceived uint64
	EvictNoticesSent  uint64
	EvictNoticesRecvd uint64

	// Deleted-while-open retention (§4.5).
	OrphansRetained uint64
	OrphansReaped   uint64

	// Distributed monotonic updates (§4.2).
	WritesAbsorbed uint64 // size updates absorbed at this replica
	WriteFlushes   uint64 // local maxima flushed to authorities
	SizeCallbacks  uint64 // stat-time callbacks issued as authority

	// Lease plane (internal/lease): read leases granted on replies,
	// recall notices sent on mutations of leased records, recall acks
	// received back from the client edge, and hot directories pushed to
	// peers ahead of demand.
	LeaseGrants    uint64
	LeaseRecalls   uint64
	LeaseAcks      uint64
	ReplicaFanouts uint64
}

// pendingCall is one coalesced-fetch waiter in the engine's typed
// callback form.
type pendingCall struct {
	fn   sim.EventFunc
	a, b any
}

// fetch threads one record load through its asynchronous steps (disk
// I/O or peer round trip) without per-step closures: the carrier is the
// single event payload, and the continuation (fn, a, b) rides inside it.
type fetch struct {
	m    *MDS
	ino  *namespace.Inode
	cl   cache.Class
	fn   sim.EventFunc
	a, b any
	// peer is the authority a remote fetch was sent to (-1 for local
	// loads); done marks the fetch completed, so a timed-out fetch and
	// its late remote response cannot both finish it. Both are only
	// meaningful when FetchTimeout is armed.
	peer int
	done bool
}

// replyConsumer is optionally implemented by the Cluster. When Deliver
// consumes replies synchronously (the real cluster: the client absorbs
// hints and latency inside Deliver), the MDS recycles reply structs and
// their hint slices. Test harnesses that retain replies simply do not
// implement it.
type replyConsumer interface{ DeliverConsumesReply() bool }

// clientLocator is optionally implemented by the Cluster when execution
// is sharded: it maps a client to the shard whose engine runs it, so
// replies are routed into the right client-edge lane. Unsharded clusters
// need not implement it (shard 0 then means "the one engine").
type clientLocator interface{ ClientShard(client int) int }

// replyRouter is optionally implemented by the Cluster. When it reports
// true, Deliver runs on the client's shard and parks consumed replies in
// a per-shard return buffer; the barrier hands them back to the serving
// node through TakeReply. mdsDeliver must then not recycle inline — that
// would append to another shard's pool mid-window.
type replyRouter interface{ RoutesReplies() bool }

// leaseCluster is optionally implemented by the Cluster when the lease
// plane is active: it lands a recall notice at the client edge (bumping
// the shared recall generation through the edge engine's deferred-op
// path) and acks it back to the authority on the LeaseAck class.
type leaseCluster interface {
	LeaseRecallDeliver(from int, target *namespace.Inode)
}

// MDS is one metadata server.
type MDS struct {
	id      int
	eng     *sim.Engine
	cfg     Config
	strat   partition.Strategy
	cluster Cluster
	// fab is the cluster's message fabric; every network hop this node
	// initiates goes through it (never eng.AfterCall directly).
	fab *net.Fabric
	// cloc resolves a client's shard for reply routing (nil unsharded);
	// routedReplies disables inline reply recycling in favour of the
	// barrier's TakeReply hand-back.
	cloc          clientLocator
	routedReplies bool

	cpu   *sim.Server
	cache *cache.Cache
	store *storage.Store

	// tc is non-nil when the dynamic strategy's traffic control is
	// active on this cluster.
	tc *core.TrafficControl
	// dyn is non-nil for the dynamic strategy (directory hashing hook).
	dyn *core.DynamicSubtree
	// lh is non-nil for the Lazy Hybrid strategy.
	lh *partition.LazyHybrid

	opsRate  *metrics.DecayCounter
	missRate *metrics.DecayCounter

	// pending coalesces concurrent fetches of the same record: one I/O
	// (or peer fetch) serves every waiter. pendingDir does the same for
	// whole-directory content loads. Waiters are stored as typed calls
	// by value, so coalescing allocates no closures.
	pending    map[namespace.InodeID][]pendingCall
	pendingDir map[namespace.InodeID][]pendingCall

	// fetchPool recycles the fetch carriers that thread a record load
	// through its disk or peer round trip; replyPool recycles reply
	// structs (with their hint slices) when the cluster consumes
	// replies synchronously on Deliver. Pooled objects are released
	// only by the dispatch that consumes them, never while an engine
	// event still references them (see DESIGN.md, "Pooling rules").
	fetchPool   []*fetch
	replyPool   []*msg.Reply
	poolReplies bool

	// sizePending holds locally absorbed monotonic size updates not
	// yet flushed to authorities (§4.2).
	sizePending map[namespace.InodeID]int64

	// opens tracks per-inode open counts at the authority, and orphans
	// holds inodes unlinked while still open: without a global inode
	// table the MDS "must take care to remember where the inode is
	// stored ... and to retain inodes that are deleted while still
	// open" (§4.5). The record is reaped on the last close.
	opens   map[namespace.InodeID]int
	orphans map[namespace.InodeID]*namespace.Inode

	failed bool
	// slow scales this node's CPU service times while a slow-node fault
	// window is active; 1 = normal speed.
	slow float64
	// fc is the cluster's suspicion surface, non-nil when the cluster
	// implements FaultCluster; use is gated on the timeout knobs so
	// fault-free runs are untouched.
	fc FaultCluster
	// pendingFwd tracks forwards awaiting their FwdAck; the value's seq
	// invalidates stale timeout timers when a request is re-forwarded.
	pendingFwd map[*msg.Request]fwdRec
	fwdSeq     uint64
	// poolFetch gates fetch-carrier recycling; off while FetchTimeout is
	// armed (a timed-out carrier may be resumed by its late response).
	poolFetch bool

	// flusher is the periodic write-flush ticker, retained so the
	// endurance quiesce can stop and restart it.
	flusher *sim.Ticker

	// lease is the cluster's hotspot-mitigation plane (nil when neither
	// client leases nor replica fan-out are enabled); lec is the
	// cluster's recall-delivery surface, set alongside it.
	lease *lease.Plane
	lec   leaseCluster

	// OnReply and OnForward, when set, observe served requests and
	// forwards for time-series measurement.
	OnReply   func(id int, req *msg.Request, now sim.Time)
	OnForward func(id int, req *msg.Request, now sim.Time)

	Stats Stats
}

// New creates a node. The strategy's concrete type activates optional
// behaviour: *core.DynamicSubtree enables directory-hash checks,
// *partition.LazyHybrid enables dual-entry ACL staleness handling.
func New(id int, eng *sim.Engine, cfg Config, strat partition.Strategy, tc *core.TrafficControl, cl Cluster) *MDS {
	m := &MDS{
		id:          id,
		eng:         eng,
		cfg:         cfg,
		strat:       strat,
		cluster:     cl,
		fab:         cl.Fabric(),
		cpu:         sim.NewServer(eng, 1),
		cache:       cache.New(cfg.CacheCapacity),
		store:       storage.New(eng, cfg.Storage),
		tc:          tc,
		opsRate:     metrics.NewDecayCounter(cfg.RateHalfLife),
		missRate:    metrics.NewDecayCounter(cfg.RateHalfLife),
		pending:     make(map[namespace.InodeID][]pendingCall),
		pendingDir:  make(map[namespace.InodeID][]pendingCall),
		opens:       make(map[namespace.InodeID]int),
		orphans:     make(map[namespace.InodeID]*namespace.Inode),
		sizePending: make(map[namespace.InodeID]int64),
	}
	if d, ok := strat.(*core.DynamicSubtree); ok {
		m.dyn = d
	}
	if l, ok := strat.(*partition.LazyHybrid); ok {
		m.lh = l
	}
	m.slow = 1
	m.poolFetch = cfg.FetchTimeout <= 0
	if fc, ok := cl.(FaultCluster); ok {
		m.fc = fc
	}
	if rc, ok := cl.(replyConsumer); ok && rc.DeliverConsumesReply() {
		m.poolReplies = true
	}
	if loc, ok := cl.(clientLocator); ok {
		m.cloc = loc
	}
	if rr, ok := cl.(replyRouter); ok && rr.RoutesReplies() {
		m.routedReplies = true
	}
	// When a replica (or remote prefix) is evicted, notify its
	// authority so it can drop the holder from the replica set and is
	// "free to remove its own copy from memory" (§4.2). The replica-set
	// bit is shared inode state, so the clear is deferred to the barrier;
	// a window that evicts and re-evicts can send a duplicate notice,
	// which the authority absorbs as a counter bump.
	m.cache.OnEvict = func(e *cache.Entry) {
		tags := partition.TagsOf(e.Ino)
		if !tags.HasReplica(m.id) {
			return
		}
		m.eng.Defer(clearReplicaTag, e.Ino, m)
		auth := m.strat.Authority(e.Ino)
		if auth == m.id {
			return
		}
		m.Stats.EvictNoticesSent++
		peer := m.cluster.Node(auth)
		m.fab.Send(net.EvictNotice, m.id, auth, net.Bytes(net.EvictNotice), evictNoticeArrive, peer, nil)
	}
	return m
}

func evictNoticeArrive(a, _ any) { a.(*MDS).Stats.EvictNoticesRecvd++ }

// AttachLeasePlane activates the hotspot-mitigation plane on this node:
// read-lease grants on replies, recall-on-mutate notices, and
// hot-directory replica fan-out. The cluster attaches it after
// construction; a nil plane (the default) leaves every request path
// bit-identical to a build without the plane.
func (m *MDS) AttachLeasePlane(p *lease.Plane) {
	m.lease = p
	if lc, ok := m.cluster.(leaseCluster); ok {
		m.lec = lc
	}
}

// NoteLeaseAck lands a LeaseAck from the client edge: the recall round
// trip is complete. Runs on this node's engine.
func (m *MDS) NoteLeaseAck() { m.Stats.LeaseAcks++ }

// leaseNoteGrant records one issued grant on the shared registry.
// a = *lease.Plane, b = *namespace.Inode.
func leaseNoteGrant(a, b any) { a.(*lease.Plane).Reg.NoteGrant(b.(*namespace.Inode).ID) }

// leaseGrantArrive is the LeaseGrant class's delivery continuation: the
// capability itself rides the reply, so arrival is pure accounting (the
// fabric's per-class counters conserve it).
func leaseGrantArrive(_, _ any) {}

// leaseRecallArrive lands a LeaseRecall at the client edge. It runs on
// the edge shard's engine, so it only touches the cluster's dedicated
// recall surface, which defers the generation bump there and acks back.
func leaseRecallArrive(a, b any) {
	m := a.(*MDS)
	m.lec.LeaseRecallDeliver(m.id, b.(*namespace.Inode))
}

// fanoutTagSet / fanoutTagClear flip inode b's cluster-wide replication
// advertisement for the fan-out mechanism (shared tag state, deferred).
func fanoutTagSet(_, b any)   { partition.TagsOf(b.(*namespace.Inode)).ReplicatedAll = true }
func fanoutTagClear(_, b any) { partition.TagsOf(b.(*namespace.Inode)).ReplicatedAll = false }

// call0 adapts a bare func() to a fabric delivery continuation, for the
// rare cold paths (write flushes, stat callbacks) that keep closures.
func call0(a, _ any) { a.(func())() }

// Deferred shared-state mutations. All writes to per-inode tags, the
// namespace tree, and cluster-shared policy counters route through
// Engine.Defer with one of these typed appliers: in serial execution
// Defer calls them on the spot (bit-identical to the pre-sharding code),
// in sharded execution they run in the deterministic barrier merge.

// setReplicaTag marks b's node in inode a's replica set.
func setReplicaTag(a, b any) {
	partition.TagsOf(a.(*namespace.Inode)).SetReplica(b.(*MDS).id)
}

// clearReplicaTag removes b's node from inode a's replica set.
func clearReplicaTag(a, b any) {
	partition.TagsOf(a.(*namespace.Inode)).ClearReplica(b.(*MDS).id)
}

// bumpPop bumps inode b's popularity counter at node a.
func bumpPop(a, b any) {
	m := a.(*MDS)
	partition.Popularity(b.(*namespace.Inode), m.cfg.PopHalfLife).Add(m.eng.Now(), 1)
}

// bumpFwdPop bumps inode b's forwarded-request counter at node a,
// creating it lazily (a shared-state allocation, hence deferred).
func bumpFwdPop(a, b any) {
	m := a.(*MDS)
	tags := partition.TagsOf(b.(*namespace.Inode))
	if tags.FwdPop == nil {
		tags.FwdPop = metrics.NewDecayCounter(m.cfg.PopHalfLife)
	}
	tags.FwdPop.Add(m.eng.Now(), 1)
}

// notePreemptive counts one preemptive replication on the shared policy.
func notePreemptive(a, _ any) { a.(*MDS).tc.Preemptive++ }

// tcCommitReplicate / tcCommitConsolidate apply a peeked traffic-control
// decision to inode b's shared replication flag and counters.
func tcCommitReplicate(a, b any) {
	a.(*MDS).tc.Commit(core.Replicate, b.(*namespace.Inode))
}

func tcCommitConsolidate(a, b any) {
	a.(*MDS).tc.Commit(core.Consolidate, b.(*namespace.Inode))
}

// lhApplyTag refreshes inode b's stale dual-entry ACL (Lazy Hybrid).
func lhApplyTag(a, b any) { a.(*MDS).lh.Apply(b.(*namespace.Inode)) }

// mdsApplyUpdate applies request b's namespace mutation at node a.
func mdsApplyUpdate(a, b any) { a.(*MDS).applyUpdate(b.(*msg.Request)) }

// fwdRec is one outstanding forward awaiting its ack: the destination
// (for suspicion/exoneration) and a sequence number that invalidates
// the timeout timer if the same request is forwarded again.
type fwdRec struct {
	to  int
	seq uint64
}

// svc scales a CPU service time by the node's slow-node factor.
func (m *MDS) svc(t sim.Time) sim.Time {
	if m.slow <= 1 {
		return t
	}
	return sim.Time(float64(t) * m.slow)
}

// SetSlow scales the node's CPU and disk service times by factor
// (slow-node degradation); factor <= 1 restores normal speed.
func (m *MDS) SetSlow(factor float64) {
	if factor < 1 {
		factor = 1
	}
	m.slow = factor
	m.store.SetSlow(factor)
}

// StartFlusher begins the periodic write-flush ticker. The cluster
// calls it at Run time; a perpetual ticker must not be created during
// construction or engine Run() (drain-until-empty) would never return.
func (m *MDS) StartFlusher() {
	if m.cfg.WriteFlushInterval <= 0 {
		return
	}
	m.flusher = sim.NewTicker(m.eng, m.cfg.WriteFlushInterval, m.flushWrites)
	m.flusher.Start(0)
}

// StopFlusher halts the periodic write-flush ticker ahead of an
// endurance quiesce. The stopped ticker's already-scheduled tick fires
// as a no-op; Resume starts a fresh ticker.
func (m *MDS) StopFlusher() {
	if m.flusher != nil {
		m.flusher.Stop()
		m.flusher = nil
	}
}

// ID implements core.Node.
func (m *MDS) ID() int { return m.id }

// Cache implements core.Node.
func (m *MDS) Cache() *cache.Cache { return m.cache }

// Store exposes the node's storage subsystem.
func (m *MDS) Store() *storage.Store { return m.store }

// Load implements core.Node: the paper prototype's "weighted combination
// of node throughput and cache misses" (§5.1). Throughput is measured
// as offered load (request arrivals) so saturation is visible.
func (m *MDS) Load(now sim.Time) float64 {
	return m.opsRate.Value(now) + m.cfg.LoadMissWeight*m.missRate.Value(now)
}

// HitRate returns the node's cache hit rate so far.
func (m *MDS) HitRate() float64 { return m.cache.HitRate() }

// Receive accepts a request arriving over the network (from a client or
// a forwarding peer).
func (m *MDS) Receive(req *msg.Request) {
	if m.failed {
		m.Stats.Dropped++
		return
	}
	if m.cfg.FwdTimeout > 0 && req.Via >= 0 {
		// Ack the forward so the forwarder's timeout stands down; only a
		// live node acks, which is exactly the death signal the
		// suspicion machinery needs.
		via := req.Via
		req.Via = -1
		m.fab.Send(net.FwdAck, m.id, via, net.Bytes(net.FwdAck),
			fwdAckArrive, m.cluster.Node(via), req)
	}
	m.Stats.Received++
	if req.Hops == 0 {
		m.Stats.ClientArrivals++
	}
	// Demand is counted on arrival: when a node saturates, its served
	// throughput caps out, but its offered load keeps rising — the
	// balancer must see the latter.
	m.opsRate.Add(m.eng.Now(), 1)
	m.cpu.SubmitCall(m.svc(m.cfg.CPUService), mdsProcess, m, req)
}

// fwdAckArrive lands a FwdAck at the forwarder: the outstanding-forward
// record is retired and the destination, having proven itself alive, is
// exonerated of any accumulated suspicion.
func fwdAckArrive(a, b any) {
	f := a.(*MDS)
	req := b.(*msg.Request)
	rec, ok := f.pendingFwd[req]
	if !ok {
		return // timer already fired, or the node failed in between
	}
	// A very late ack can race a re-forward of the same request and
	// retire the newer record; the client's retry timeout backstops any
	// request lost that way, so the race costs accuracy, not liveness.
	delete(f.pendingFwd, req)
	if f.fc != nil && !f.failed {
		f.fc.Exonerate(rec.to)
	}
}

func mdsProcess(a, b any) { a.(*MDS).process(b.(*msg.Request)) }

// mdsReceive delivers a forwarded request at its destination peer.
func mdsReceive(a, b any) { a.(*MDS).Receive(b.(*msg.Request)) }

// authorityFor resolves the node responsible for serving the request.
func (m *MDS) authorityFor(req *msg.Request) int {
	if req.Op == msg.Create || req.Op == msg.Mkdir {
		return m.strat.AuthorityForName(req.Target, req.NewName)
	}
	return m.strat.Authority(req.Target)
}

func (m *MDS) process(req *msg.Request) {
	if m.failed {
		// The node died with this request still queued on its CPU.
		m.Stats.Dropped++
		return
	}
	auth := m.authorityFor(req)
	if auth != m.id {
		// Monotonic size updates are absorbed by any node holding a
		// replica of the target (§4.2) and flushed later.
		if req.Op == msg.Write && m.cache.Contains(req.Target.ID) {
			m.cache.Get(req.Target.ID)
			m.absorbWrite(req)
			return
		}
		// A read of widely replicated metadata can be served from the
		// local replica: the whole point of traffic control (§4.4) and of
		// hot-directory fan-out (internal/lease).
		if !req.Op.IsUpdate() && m.advertised(req.Target) && m.cache.Contains(req.Target.ID) {
			m.cache.Get(req.Target.ID)
			m.Stats.ReplicaServes++
			m.bumpPopularity(req.Target)
			m.reply(req)
			return
		}
		if m.cfg.FwdTimeout > 0 && m.fc != nil && m.fc.NodeDown(auth) {
			// The authority is confirmed down and nothing here can serve
			// the request; dead-letter it. The client's retry timeout
			// covers the loss — and under the dynamic strategy the
			// suspicion machinery re-delegates the subtrees, so the next
			// resolution lands on a live node.
			m.Stats.DeadLetters++
			return
		}
		m.forward(req, auth)
		return
	}
	m.serve(req)
}

func (m *MDS) forward(req *msg.Request, to int) {
	m.Stats.Forwarded++
	if m.OnForward != nil {
		m.OnForward(m.id, req, m.eng.Now())
	}
	m.maybePreemptiveReplicate(req)
	req.Hops++
	if m.cfg.FwdTimeout > 0 {
		req.Via = m.id
		m.armFwdTimeout(req, to)
	}
	peer := m.cluster.Node(to)
	m.fab.Send(net.Forward, m.id, to, net.Bytes(net.Forward), mdsReceive, peer, req)
}

// armFwdTimeout starts the forward→ack watchdog: if no FwdAck retires
// the record in time, the destination is reported suspect and the
// request is re-dispatched through authority resolution — by then
// suspicion may have re-delegated the subtree to a live node.
func (m *MDS) armFwdTimeout(req *msg.Request, to int) {
	if m.pendingFwd == nil {
		m.pendingFwd = make(map[*msg.Request]fwdRec)
	}
	m.fwdSeq++
	seq := m.fwdSeq
	m.pendingFwd[req] = fwdRec{to: to, seq: seq}
	m.eng.After(m.cfg.FwdTimeout, func() {
		rec, ok := m.pendingFwd[req]
		if !ok || rec.seq != seq || m.failed {
			return
		}
		delete(m.pendingFwd, req)
		m.Stats.FwdTimeouts++
		if m.fc != nil {
			m.fc.Suspect(m.id, rec.to)
		}
		m.process(req)
	})
}

// maybePreemptiveReplicate implements §5.4's suggested improvement: a
// node flooded with forwards for one item pulls a replica itself
// instead of waiting for the authority to push one.
func (m *MDS) maybePreemptiveReplicate(req *msg.Request) {
	if m.tc == nil || !m.tc.Enabled || m.tc.PreemptiveThreshold <= 0 || req.Op.IsUpdate() {
		return
	}
	target := req.Target
	tags := partition.TagsOf(target)
	m.eng.Defer(bumpFwdPop, m, target)
	// In serial execution the Defer above already ran, so the counter
	// exists and Peek sees the fresh bump exactly as Value did. Sharded,
	// a counter the barrier has not yet created reads as "not flooded".
	if tags.FwdPop == nil {
		return
	}
	if tags.FwdPop.Peek(m.eng.Now()) < m.tc.PreemptiveThreshold || m.cache.Contains(target.ID) {
		return
	}
	m.eng.Defer(notePreemptive, m, nil)
	// Pull the record from its authority and start advertising it as
	// widely replicated; the authority's policy may consolidate later.
	m.fetchRecord(target, cache.Replica, preemptiveInstalled, m, target)
}

func preemptiveInstalled(a, b any) {
	m := a.(*MDS)
	m.eng.Defer(preemptiveTagApply, m, b)
}

// preemptiveTagApply records the pulled replica in shared inode state.
func preemptiveTagApply(a, b any) {
	m := a.(*MDS)
	target := b.(*namespace.Inode)
	tags := partition.TagsOf(target)
	tags.SetReplica(m.id)
	tags.ReplicatedAll = true
}

// serve handles a request this node is authoritative for.
func (m *MDS) serve(req *msg.Request) {
	if m.strat.NeedsPathTraversal() {
		m.servePath(req)
		return
	}
	m.fetchTarget(req)
}

func mdsServePath(a, b any) { a.(*MDS).servePath(b.(*msg.Request)) }

// servePath brings the ancestor chain (root downward) into the cache,
// fetching missing prefixes from disk or their authoritative peers.
// Each fetch completion resumes the scan; the parent-chain walk uses no
// scratch slice, so the all-cached fast path allocates nothing.
func (m *MDS) servePath(req *msg.Request) {
	// Highest uncached ancestor: the last miss seen walking upward.
	var missing *namespace.Inode
	for c := req.Target.Parent(); c != nil; c = c.Parent() {
		if !m.cache.Contains(c.ID) {
			missing = c
		}
	}
	if missing == nil {
		m.fetchTarget(req)
		return
	}
	m.fetchRecord(missing, cache.Prefix, mdsServePath, m, req)
}

// fetchRecord brings one record into the cache, coalescing concurrent
// fetches of the same inode into a single I/O or peer round trip.
// fn(a, b) runs once the record is cached.
func (m *MDS) fetchRecord(ino *namespace.Inode, cl cache.Class, fn sim.EventFunc, a, b any) {
	if waiters, inFlight := m.pending[ino.ID]; inFlight {
		m.pending[ino.ID] = append(waiters, pendingCall{fn, a, b})
		return
	}
	m.pending[ino.ID] = nil
	m.noteMiss()
	f := m.getFetch()
	f.ino, f.cl, f.fn, f.a, f.b = ino, cl, fn, a, b
	auth := m.strat.Authority(ino)
	if auth == m.id {
		m.diskLoad(f)
		return
	}
	if m.cfg.FetchTimeout > 0 && m.fc != nil && m.fc.NodeDown(auth) {
		// The authority is confirmed down; skip the doomed round trip
		// and read the record from the shared store directly (§2.1.2).
		m.diskLoad(f)
		return
	}
	// Remote record: round trip to the authority, then install a
	// replica locally (for prefixes, the overhead Figure 3 measures).
	m.Stats.RemoteFetches++
	f.peer = auth
	if m.cfg.FetchTimeout > 0 {
		m.armFetchTimeout(f)
	}
	peer := m.cluster.Node(auth)
	m.fab.Send(net.FetchReq, m.id, auth, net.Bytes(net.FetchReq), remoteFetchAtPeer, peer, f)
}

// armFetchTimeout starts the remote-fetch watchdog: if the peer's
// response has not installed the record in time, the fetch falls back
// to this node's own read of the shared store — the remote round trip
// is an optimisation, not a dependency (§2.1.2). The done flag keeps a
// late response and the fallback from double-finishing the fetch.
//
// A fetch timeout deliberately does NOT report the peer suspect: the
// response rides behind the peer's disk queue, so during a cold-start
// or hot-spot burst a perfectly live peer can blow the deadline by
// seconds, and striking here confirms healthy nodes dead cluster-wide.
// Liveness suspicion comes only from the forward-ack path, whose ack is
// sent before CPU/disk service and is therefore queue-independent.
func (m *MDS) armFetchTimeout(f *fetch) {
	m.eng.After(m.cfg.FetchTimeout, func() {
		if f.done || m.failed {
			return
		}
		m.Stats.FetchTimeouts++
		m.diskLoad(f)
	})
}

func (m *MDS) getFetch() *fetch {
	if n := len(m.fetchPool); n > 0 {
		f := m.fetchPool[n-1]
		m.fetchPool[n-1] = nil
		m.fetchPool = m.fetchPool[:n-1]
		return f
	}
	return &fetch{m: m}
}

// putFetch releases a carrier back to its owning node's pool. Only the
// dispatch that consumed the carrier may call it (see DESIGN.md). With
// FetchTimeout armed, carriers are not recycled at all: a timed-out
// carrier may still be referenced by a watchdog timer or a late remote
// response, and reuse would let those resume the wrong fetch.
func (m *MDS) putFetch(f *fetch) {
	if !m.poolFetch {
		return
	}
	f.ino, f.fn, f.a, f.b = nil, nil, nil, nil
	f.peer, f.done = 0, false
	m.fetchPool = append(m.fetchPool, f)
}

// finishFetch completes a coalesced fetch: it releases the carrier,
// then runs the initiator's continuation and every waiter.
func finishFetch(f *fetch) {
	f.done = true
	m, ino, fn, a, b := f.m, f.ino, f.fn, f.a, f.b
	m.putFetch(f)
	waiters := m.pending[ino.ID]
	delete(m.pending, ino.ID)
	fn(a, b)
	for _, w := range waiters {
		w.fn(w.a, w.b)
	}
}

// remoteFetchAtPeer runs at the authoritative peer after one forward
// hop: serve the fetch, then hop back and install.
func remoteFetchAtPeer(a, b any) {
	peer := a.(*MDS)
	f := b.(*fetch)
	peer.handleFetch(f.ino, remoteFetchReturn, f, peer)
}

func remoteFetchReturn(x, p any) {
	f := x.(*fetch)
	peer := p.(*MDS)
	f.m.fab.Send(net.FetchResp, peer.id, f.m.id, net.Bytes(net.FetchResp), remoteFetchInstall, f, nil)
}

func remoteFetchInstall(x, _ any) {
	f := x.(*fetch)
	m := f.m
	if m.failed || f.done {
		// The node died, or the watchdog already fell back to a local
		// disk read: the late response must not finish the fetch again.
		return
	}
	if m.cfg.FetchTimeout > 0 && m.fc != nil {
		m.fc.Exonerate(f.peer)
	}
	m.installPrefix(f.ino)
	finishFetch(f)
}

// installPrefix caches a remotely fetched ancestor. Ancestors above it
// are already cached (ensurePath works root-down), so InsertPath only
// adds this record.
func (m *MDS) installPrefix(ino *namespace.Inode) {
	if _, err := m.cache.InsertPath(ino, cache.Prefix, false); err != nil {
		// The chain above was evicted while the fetch was in flight;
		// fall back to a detached record.
		m.cache.InsertDetached(ino, cache.Prefix, false)
	}
	m.eng.Defer(setReplicaTag, ino, m)
}

// handleFetch serves a peer's request for one inode record. fn(a, b)
// runs once the record is available at this node. The request threads
// through this node's CPU and disk on a carrier drawn from this node's
// own pool (the caller's carrier belongs to the caller's pool).
func (m *MDS) handleFetch(ino *namespace.Inode, fn sim.EventFunc, a, b any) {
	if m.failed {
		return
	}
	m.Stats.PeerFetchServes++
	pf := m.getFetch()
	pf.ino, pf.fn, pf.a, pf.b = ino, fn, a, b
	m.cpu.SubmitCall(m.svc(m.cfg.PeerService), peerFetchServe, pf, nil)
}

func peerFetchServe(x, _ any) {
	pf := x.(*fetch)
	m := pf.m
	if m.cache.Contains(pf.ino.ID) {
		m.cache.Get(pf.ino.ID)
		fn, a, b := pf.fn, pf.a, pf.b
		m.putFetch(pf)
		fn(a, b)
		return
	}
	// Load just this record; a single-record read regardless of
	// layout keeps peer fetches cheap and terminating.
	m.noteMiss()
	m.store.ReadInodeCall(pf.ino.ID, peerFetchLoaded, pf, nil)
}

func peerFetchLoaded(x, _ any) {
	pf := x.(*fetch)
	m := pf.m
	m.cache.InsertDetached(pf.ino, cache.Prefix, false)
	fn, a, b := pf.fn, pf.a, pf.b
	m.putFetch(pf)
	fn(a, b)
}

// fetchTarget ensures the operation's target record is cached, then
// completes the operation.
func (m *MDS) fetchTarget(req *msg.Request) {
	target := req.Target
	if m.cache.Contains(target.ID) {
		m.cache.Get(target.ID)
		m.finishServe(req)
		return
	}
	// Every request that found its target uncached is a demand miss,
	// whether or not the fetch below coalesces with one in flight.
	m.cache.NoteMiss()
	if m.strat.NeedsPathTraversal() {
		m.fetchRecord(target, cache.Auth, mdsFinishServe, m, req)
		return
	}
	// Scattered per-inode layout without traversal (Lazy Hybrid);
	// still coalesce duplicate in-flight fetches.
	if waiters, inFlight := m.pending[target.ID]; inFlight {
		m.pending[target.ID] = append(waiters, pendingCall{mdsFinishServe, m, req})
		return
	}
	m.pending[target.ID] = nil
	m.noteMiss()
	m.store.ReadInodeCall(target.ID, scatteredTargetLoaded, m, req)
}

func mdsFinishServe(a, b any) { a.(*MDS).finishServe(b.(*msg.Request)) }

// scatteredTargetLoaded completes a scattered-layout target read: cache
// the record, serve the initiating request, then every coalesced waiter.
func scatteredTargetLoaded(a, b any) {
	m := a.(*MDS)
	req := b.(*msg.Request)
	if m.failed {
		return
	}
	target := req.Target
	m.cache.InsertDetached(target, cache.Auth, false)
	waiters := m.pending[target.ID]
	delete(m.pending, target.ID)
	m.finishServe(req)
	for _, w := range waiters {
		w.fn(w.a, w.b)
	}
}

// diskLoad reads the record carried by f from this node's store and
// inserts it (plus, for directory-granular layouts, its embedded
// siblings as warm prefetches).
func (m *MDS) diskLoad(f *fetch) {
	if !m.strat.DirGranular() {
		m.store.ReadInodeCall(f.ino.ID, inodeLoaded, f, nil)
		return
	}
	parent := f.ino.Parent()
	records := 1
	if parent != nil {
		records = 1 + parent.NumChildren()
	}
	// The object read is the parent directory's object (or the inode's
	// own object at the root).
	obj := f.ino.ID
	if parent != nil {
		obj = parent.ID
	}
	m.store.ReadDirCall(obj, records, dirLoaded, f, nil)
}

func inodeLoaded(x, _ any) {
	f := x.(*fetch)
	m := f.m
	if m.failed || f.done {
		return
	}
	m.insertLoaded(f.ino, f.cl)
	finishFetch(f)
}

func dirLoaded(x, _ any) {
	f := x.(*fetch)
	m := f.m
	if m.failed || f.done {
		return
	}
	ino := f.ino
	m.insertLoaded(ino, f.cl)
	// Embedded inodes: the whole directory came along; insert the
	// siblings near the LRU tail (§4.5).
	if parent := ino.Parent(); parent != nil && !m.cfg.NoPrefetch {
		for _, sib := range parent.Children() {
			if sib == ino || m.cache.Contains(sib.ID) {
				continue
			}
			sibClass := cache.Replica
			if m.strat.Authority(sib) == m.id {
				sibClass = cache.Auth
			}
			if _, err := m.cache.InsertPath(sib, sibClass, !m.cfg.PrefetchHot); err != nil {
				break // parent chain evicted mid-load; stop prefetching
			}
			if sibClass == cache.Replica {
				m.eng.Defer(setReplicaTag, sib, m)
			}
		}
	}
	finishFetch(f)
}

func (m *MDS) insertLoaded(ino *namespace.Inode, cl cache.Class) {
	if _, err := m.cache.InsertPath(ino, cl, false); err != nil {
		m.cache.InsertDetached(ino, cl, false)
	}
}

// finishServe runs once the target record is cached: Lazy Hybrid
// staleness, update application, popularity accounting, traffic-control
// decisions, and the reply.
func (m *MDS) finishServe(req *msg.Request) {
	target := req.Target
	// Lazy Hybrid: a stale dual-entry ACL must be refreshed before the
	// op can proceed — one (lazy) propagation trip plus a log commit.
	if m.lh != nil && m.lh.Stale(target) {
		// The dual-entry refresh writes shared ACL state; Apply is
		// idempotent, so window-concurrent trips converge at the barrier.
		m.eng.Defer(lhApplyTag, m, target)
		m.Stats.LHApplied++
		// One lazy propagation round trip (priced at 2×Fwd by the
		// model), carried on the node's loopback link, then a commit.
		m.fab.Send(net.LHPropagate, m.id, m.id, net.Bytes(net.LHPropagate), lhPropagated, m, req)
		return
	}
	m.finishServe2(req)
}

func lhPropagated(a, b any) {
	m := a.(*MDS)
	req := b.(*msg.Request)
	if m.failed {
		return
	}
	m.commit(req.Target, func() { m.finishServe2(req) })
}

func (m *MDS) finishServe2(req *msg.Request) {
	target := req.Target
	if req.Op == msg.Readdir && m.strat.DirGranular() && target.IsDir() {
		// Directory-granular readdir touches the whole object; make
		// sure the contents are loaded (one I/O) so the common
		// readdir-then-stat sequence hits.
		missing := false
		for _, c := range target.Children() {
			if !m.cache.Contains(c.ID) {
				missing = true
				break
			}
		}
		if missing {
			m.loadDirContents(target, mdsCompleteOp, m, req)
			return
		}
	}
	m.completeOp(req)
}

func mdsCompleteOp(a, b any) { a.(*MDS).completeOp(b.(*msg.Request)) }

// loadDirContents fetches a directory's own object — its entries plus
// embedded child inodes — warming every child into the cache (§4.5).
// Concurrent loads of the same directory coalesce; the initiator is
// simply the first waiter, so completion order is initiator-first.
func (m *MDS) loadDirContents(dir *namespace.Inode, fn sim.EventFunc, a, b any) {
	if waiters, inFlight := m.pendingDir[dir.ID]; inFlight {
		m.pendingDir[dir.ID] = append(waiters, pendingCall{fn, a, b})
		return
	}
	m.pendingDir[dir.ID] = []pendingCall{{fn, a, b}}
	m.noteMiss()
	m.store.ReadDirCall(dir.ID, 1+dir.NumChildren(), dirContentsLoaded, m, dir)
}

func dirContentsLoaded(x, y any) {
	m := x.(*MDS)
	dir := y.(*namespace.Inode)
	if m.failed {
		return
	}
	for _, c := range dir.Children() {
		if m.cache.Contains(c.ID) {
			continue
		}
		cl := cache.Replica
		if m.strat.Authority(c) == m.id {
			cl = cache.Auth
		}
		if _, err := m.cache.InsertPath(c, cl, !m.cfg.PrefetchHot); err != nil {
			break
		}
		if cl == cache.Replica {
			m.eng.Defer(setReplicaTag, c, m)
		}
	}
	waiters := m.pendingDir[dir.ID]
	delete(m.pendingDir, dir.ID)
	for _, w := range waiters {
		w.fn(w.a, w.b)
	}
}

func (m *MDS) completeOp(req *msg.Request) {
	target := req.Target
	if req.Op.IsUpdate() {
		if req.Applied {
			// A retried duplicate of an update that already committed:
			// answer without re-applying (idempotent re-delivery). The
			// first delivery mutated the namespace; re-running it would
			// double-apply the operation.
			m.finishReply(req)
			return
		}
		req.Applied = true
		// Recall outstanding client leases on every record this mutation
		// invalidates — before deferring the mutation, because the serial
		// path applies it immediately and Rename rewires target.Parent().
		// Write is exempt: size maxima are monotonic and absorbed (§4.2).
		if m.lease != nil && m.lease.Cfg.Enabled && req.Op != msg.Write {
			m.recallLeases(target)
			switch req.Op {
			case msg.Unlink:
				m.recallLeases(target.Parent())
			case msg.Rename:
				m.recallLeases(target.Parent())
				m.recallLeases(req.DstDir)
			}
		}
		// The namespace mutation lands at the barrier when sharded; the
		// client cannot observe the gap, because its reply travels at
		// least one lookahead of latency and so always arrives after the
		// barrier that applies the mutation.
		m.eng.Defer(mdsApplyUpdate, m, req)
		if req.Op != msg.Write {
			// Size updates are batched through the log by the
			// flusher; structural updates propagate immediately.
			m.propagateCoherence(target)
		}
		m.Stats.Commits++
		m.store.CommitCall(target.ID, commitFinishReply, m, req)
		return
	}
	if req.Op == msg.Stat {
		// Reads observe the latest size: call back to unflushed
		// writers first (§4.2). The no-unflushed-writers fast path
		// replies directly.
		if mask := m.statCallbackMask(req.Target); mask != 0 {
			m.statCallbackSlow(req, mask)
			return
		}
	}
	m.finishReply(req)
}

// commitFinishReply completes an update once its log append commits.
func commitFinishReply(a, b any) {
	m := a.(*MDS)
	if m.failed {
		return
	}
	m.finishReply(b.(*msg.Request))
}

// propagateCoherence pushes an updated record to every replica holder:
// "once an item is replicated in another MDS's cache, the authoritative
// MDS is responsible for communicating updates to maintain cache
// coherence" (§4.2).
func (m *MDS) propagateCoherence(target *namespace.Inode) {
	set := partition.TagsOf(target).ReplicaSet
	if set == 0 {
		return
	}
	for i := 0; i < m.cluster.NumMDS() && i < 64; i++ {
		if i == m.id || set&(1<<uint(i)) == 0 {
			continue
		}
		m.Stats.CoherenceSent++
		peer := m.cluster.Node(i)
		m.fab.Send(net.Coherence, m.id, i, net.Bytes(net.Coherence), coherenceArrive, peer, nil)
	}
}

func coherenceArrive(a, _ any) {
	peer := a.(*MDS)
	if peer.failed {
		return
	}
	peer.Stats.CoherenceReceived++
	peer.cpu.Submit(peer.svc(peer.cfg.PeerService), nil)
}

func (m *MDS) finishReply(req *msg.Request) {
	target := req.Target
	// Open/close bookkeeping runs once per request even if a retried
	// duplicate is answered again (req.Counted), so retries cannot leak
	// phantom opens that would pin orphans forever.
	switch req.Op {
	case msg.Open:
		if !req.Counted {
			req.Counted = true
			m.opens[target.ID]++
		}
	case msg.Close:
		if !req.Counted && m.opens[target.ID] > 0 {
			req.Counted = true
			m.opens[target.ID]--
			if m.opens[target.ID] == 0 {
				delete(m.opens, target.ID)
				if _, orphaned := m.orphans[target.ID]; orphaned {
					delete(m.orphans, target.ID)
					m.Stats.OrphansReaped++
					_ = m.cache.Remove(target.ID)
				}
			}
		}
	}
	m.bumpPopularity(target)
	// Peek reads the popularity counter and replication flag without
	// writing them; the flag flip and transition counters commit at the
	// barrier. Serially the deferred bump above has already run, so
	// Peek+Commit here is exactly the old Decide.
	if m.tc != nil {
		switch m.tc.Peek(m.eng.Now(), target) {
		case core.Replicate:
			m.pushReplicas(target)
			m.eng.Defer(tcCommitReplicate, m, target)
		case core.Consolidate:
			// Replicas stop being advertised and simply age out of
			// peer caches.
			m.eng.Defer(tcCommitConsolidate, m, target)
		}
	}
	m.maybeFanOut(target)
	m.reply(req)
}

// recallLeases sends a recall notice to the client edge for ino's
// outstanding leases. Outstanding is an upper bound (natural expiry
// never decrements it), so a recall may chase leases that already
// lapsed — one spurious notice, no coherence consequence. The
// generation bump is applied at the edge through the NoteRecalled
// applier so it lands exactly once, on the engine that owns delivery.
func (m *MDS) recallLeases(ino *namespace.Inode) {
	if ino == nil || !m.lease.Reg.Outstanding(ino.ID) {
		return
	}
	m.Stats.LeaseRecalls++
	m.fab.SendToEdge(0, net.LeaseRecall, m.id, net.Bytes(net.LeaseRecall), leaseRecallArrive, m, ino)
}

// maybeFanOut pushes replicas of a hot directory to peers ahead of
// demand (the server-side hotspot mechanism, internal/lease). The
// ReplicatedAll tag doubles as the "already fanned" marker and the
// client advertisement; when traffic control is active it owns the
// tag's hysteresis, so fan-out only un-fans under strategies running
// without it (the threshold regions never overlap).
func (m *MDS) maybeFanOut(target *namespace.Inode) {
	if m.lease == nil || !m.lease.Cfg.Fanout || !target.IsDir() || target.Parent() == nil {
		return
	}
	tags := partition.TagsOf(target)
	if tags.Pop == nil {
		return
	}
	pop := tags.Pop.Peek(m.eng.Now())
	cfg := &m.lease.Cfg
	if !tags.ReplicatedAll {
		if pop < cfg.FanoutPopularity {
			return
		}
		n := m.cluster.NumMDS() - 1
		if cfg.FanoutPeers > 0 && n > cfg.FanoutPeers {
			n = cfg.FanoutPeers
		}
		if n <= 0 {
			return
		}
		for k := 1; k <= n; k++ {
			to := (m.id + k) % m.cluster.NumMDS()
			peer := m.cluster.Node(to)
			m.fab.Send(net.ReplicaInstall, m.id, to, net.Bytes(net.ReplicaInstall), installReplicaAt, peer, target)
		}
		m.Stats.ReplicaFanouts++
		m.Stats.ReplicasPushed += uint64(n)
		m.eng.Defer(fanoutTagSet, nil, target)
		return
	}
	if (m.tc == nil || !m.tc.Enabled) && pop < cfg.FanoutPopularity/10 {
		m.eng.Defer(fanoutTagClear, nil, target)
	}
}

func (m *MDS) bumpPopularity(ino *namespace.Inode) {
	m.eng.Defer(bumpPop, m, ino)
}

// commit appends the update to the bounded log (§4.6).
func (m *MDS) commit(ino *namespace.Inode, done func()) {
	m.Stats.Commits++
	m.store.Commit(ino.ID, func() {
		if m.failed {
			return
		}
		done()
	})
}

// applyUpdate mutates the shared namespace. Failed mutations (duplicate
// names, non-empty directories…) are treated as completed no-ops: the
// client still gets a reply, as a real MDS returns an error reply.
func (m *MDS) applyUpdate(req *msg.Request) {
	tree := m.cluster.Tree()
	switch req.Op {
	case msg.Create:
		if n, err := tree.Create(req.Target, req.NewName); err == nil {
			// Materialize the new inode's tag block while single
			// threaded (applyUpdate runs at the barrier when sharded):
			// the first window-time authority walk over it must not be
			// the allocation.
			_ = partition.TagsOf(n)
			m.cacheNew(n)
			m.dirObjectInsert(req.Target, n)
		}
	case msg.Mkdir:
		if n, err := tree.Mkdir(req.Target, req.NewName); err == nil {
			_ = partition.TagsOf(n)
			m.cacheNew(n)
			m.dirObjectInsert(req.Target, n)
		}
	case msg.Unlink:
		if !req.Target.IsDir() {
			id := req.Target.ID
			parent, name := req.Target.Parent(), req.Target.Name()
			if err := tree.Remove(req.Target); err == nil {
				m.dirObjectDelete(parent, name)
				if m.opens[id] > 0 {
					// Deleted while open: retain the record until the
					// last close (§4.5).
					m.orphans[id] = req.Target
					m.Stats.OrphansRetained++
				} else {
					_ = m.cache.Remove(id)
				}
			}
		}
	case msg.Chmod:
		tree.Chmod(req.Target, req.Target.Mode^0o022)
		m.dirObjectInsert(req.Target.Parent(), req.Target)
		if req.Target.IsDir() && m.lh != nil {
			m.lh.NoteDirUpdate(req.Target)
		}
	case msg.Write:
		m.applyWrite(req)
	case msg.Rename:
		if req.DstDir != nil {
			wasDir := req.Target.IsDir()
			oldParent, oldName := req.Target.Parent(), req.Target.Name()
			if err := tree.Rename(req.Target, req.DstDir, req.NewName); err == nil {
				m.dirObjectDelete(oldParent, oldName)
				m.dirObjectInsert(req.DstDir, req.Target)
				if wasDir && m.lh != nil {
					m.lh.NoteDirUpdate(req.Target)
				}
			}
		}
	}
	// Dynamic directory hashing reacts to growth/shrink (§4.3).
	if m.dyn != nil {
		dir := req.Target
		if !dir.IsDir() {
			if p := dir.Parent(); p != nil {
				dir = p
			}
		}
		m.dyn.MaybeHashDir(dir)
	}
}

// dirObjectInsert records an entry write in the long-term tier's
// per-directory B-tree object (§4.6). Only directory-granular layouts
// group entries into directory objects.
func (m *MDS) dirObjectInsert(dir, entry *namespace.Inode) {
	if m.store.Dirs == nil || dir == nil || !m.strat.DirGranular() {
		return
	}
	m.store.Dirs.Insert(dir.ID, dirstore.Record{
		Name: entry.Name(),
		Ino:  entry.ID,
		Kind: entry.Kind,
		Mode: entry.Mode,
		Size: entry.Size,
	})
}

// dirObjectDelete records an entry removal in the directory object.
func (m *MDS) dirObjectDelete(dir *namespace.Inode, name string) {
	if m.store.Dirs == nil || dir == nil || !m.strat.DirGranular() {
		return
	}
	m.store.Dirs.Delete(dir.ID, name)
}

// cacheNew caches a just-created inode on its authority (this node).
func (m *MDS) cacheNew(n *namespace.Inode) {
	if m.strat.NeedsPathTraversal() {
		m.insertLoaded(n, cache.Auth)
		return
	}
	m.cache.InsertDetached(n, cache.Auth, false)
}

// pushReplicas installs copies of a newly popular item across the
// cluster (§4.4).
func (m *MDS) pushReplicas(target *namespace.Inode) {
	for i := 0; i < m.cluster.NumMDS(); i++ {
		if i == m.id {
			continue
		}
		peer := m.cluster.Node(i)
		m.fab.Send(net.ReplicaInstall, m.id, i, net.Bytes(net.ReplicaInstall), installReplicaAt, peer, target)
	}
	m.Stats.ReplicasPushed += uint64(m.cluster.NumMDS() - 1)
}

func installReplicaAt(a, b any) { a.(*MDS).installReplica(b.(*namespace.Inode)) }

func (m *MDS) installReplica(target *namespace.Inode) {
	if m.failed {
		return
	}
	m.Stats.ReplicaInstalls++
	m.cpu.SubmitCall(m.svc(m.cfg.PeerService), installReplicaApply, m, target)
}

func installReplicaApply(a, b any) {
	m := a.(*MDS)
	target := b.(*namespace.Inode)
	if _, err := m.cache.InsertPath(target, cache.Replica, false); err != nil {
		m.cache.InsertDetached(target, cache.Replica, false)
	}
	m.eng.Defer(setReplicaTag, target, m)
}

// reply completes the request: hints tell the client where the target
// and its prefixes live (§4.4), steering future requests. When the
// cluster consumes replies on Deliver, the struct and its hint slice
// come from (and return to) the node's reply pool.
func (m *MDS) reply(req *msg.Request) {
	m.Stats.Served++
	now := m.eng.Now()
	if m.OnReply != nil {
		m.OnReply(m.id, req, now)
	}
	rep := m.getReply()
	rep.Req, rep.ServedBy = req, m.id
	// Identity and issue time are copied by value: the client matches
	// replies by (Client, ID, Gen) and computes latency from Issued, so
	// a duplicate reply stays recognisable (and harmless) even after
	// the request struct is recycled for a newer operation.
	rep.Client, rep.ID, rep.Gen, rep.Issued = req.Client, req.ID, req.Gen, req.Issued
	if !m.strat.ClientComputable() {
		rep.Hints = m.appendHints(rep.Hints[:0], req.Target)
	}
	// The fabric prices the hop (hints add bytes under the queued
	// model) and reports when the reply lands at the client edge. The
	// edge aggregates clients from every shard, so the destination shard
	// comes from the cluster's client→shard map (0 when unsharded, where
	// SendToEdge degenerates to Send).
	shard := 0
	if m.cloc != nil {
		shard = m.cloc.ClientShard(req.Client)
	}
	// Lease fields are value state on a pooled struct: reset them
	// unconditionally, then maybe grant. A grant rides the reply and
	// snapshots the recall generation now, at the authority — a recall
	// racing this grant bumps the shared generation, so the grant arrives
	// stale instead of resurrecting the lease.
	rep.Leased, rep.LeaseGen = false, 0
	if m.lease != nil && m.lease.Cfg.Enabled && !req.Op.IsUpdate() && m.lease.Reg.Leasable(req.Target.ID) {
		if tags := partition.TagsOf(req.Target); tags.Pop != nil &&
			tags.Pop.Peek(now) >= m.lease.Cfg.GrantPopularity {
			rep.Leased, rep.LeaseGen = true, m.lease.Reg.Gen(req.Target.ID)
			m.eng.Defer(leaseNoteGrant, m.lease, req.Target)
			m.Stats.LeaseGrants++
			// The capability itself is in the reply; this envelope carries
			// the grant's wire cost and per-class conservation.
			m.fab.SendToEdge(shard, net.LeaseGrant, m.id,
				net.Bytes(net.LeaseGrant), leaseGrantArrive, nil, nil)
		}
	}
	rep.Completed = m.fab.SendToEdge(shard, net.Reply, m.id,
		net.ReplyBytes(len(rep.Hints)), mdsDeliver, m, rep)
}

func (m *MDS) getReply() *msg.Reply {
	if n := len(m.replyPool); n > 0 {
		rep := m.replyPool[n-1]
		m.replyPool[n-1] = nil
		m.replyPool = m.replyPool[:n-1]
		return rep
	}
	return &msg.Reply{}
}

// mdsDeliver hands the reply to the client and, when Deliver consumes
// it synchronously, recycles the struct. The client detaches rep.Req
// for its own pool inside Deliver, before the clear here.
func mdsDeliver(a, b any) {
	m := a.(*MDS)
	rep := b.(*msg.Reply)
	m.cluster.Deliver(rep)
	if m.poolReplies && !m.routedReplies {
		rep.Req = nil
		rep.Hints = rep.Hints[:0]
		m.replyPool = append(m.replyPool, rep)
	}
}

// TakeReply returns a consumed reply to this node's pool. When replies
// are routed (sharded execution), Deliver runs on the client's shard and
// parks the struct in that shard's return buffer; the barrier — single
// threaded, clocks synced — hands each reply back here.
func (m *MDS) TakeReply(rep *msg.Reply) {
	rep.Req = nil
	rep.Hints = rep.Hints[:0]
	m.replyPool = append(m.replyPool, rep)
}

// appendHints appends the distribution of the target and its prefix
// directories to hs (reusing its capacity). The root is never hinted:
// it is implicitly known to all clients and highly replicated. Order is
// root-first ancestors, then the target, as clients expect.
func (m *MDS) appendHints(hs []msg.Hint, target *namespace.Inode) []msg.Hint {
	var stack [64]*namespace.Inode
	n := 0
	for c := target.Parent(); c != nil && n < len(stack); c = c.Parent() {
		stack[n] = c
		n++
	}
	for i := n - 1; i >= 0; i-- {
		a := stack[i]
		if a.Parent() == nil {
			continue // root
		}
		hs = append(hs, msg.Hint{
			Ino:        a.ID,
			Authority:  m.strat.Authority(a),
			Replicated: m.advertised(a),
		})
	}
	if target.Parent() != nil {
		hs = append(hs, msg.Hint{
			Ino:        target.ID,
			Authority:  m.strat.Authority(target),
			Replicated: m.advertised(target),
		})
	}
	return hs
}

// advertised reports whether replies should tell clients the item is
// available cluster-wide: traffic control's hysteresis says so, or the
// fan-out mechanism has pushed it (which also advertises under
// strategies that run without traffic control).
func (m *MDS) advertised(ino *namespace.Inode) bool {
	if m.tc.Replicated(ino) {
		return true
	}
	return m.lease != nil && m.lease.Cfg.Fanout && partition.TagsOf(ino).ReplicatedAll
}

func (m *MDS) noteMiss() {
	m.Stats.CacheMissLoads++
	m.missRate.Add(m.eng.Now(), 1)
}

// ImportSubtree implements core.Node: install migrated cache state and
// charge the CPU for the transfer, briefly freezing request processing
// (the double-commit hand-off). The entries are by-value snapshots taken
// by the balancer at decision time (a barrier), so the deferred install
// below never reads the exporter's live cache across shards.
func (m *MDS) ImportSubtree(root *namespace.Inode, entries []core.Migrated) {
	m.Stats.Imported += uint64(len(entries))
	cost := m.svc(sim.Time(len(entries)+1) * m.cfg.ImportPerRecord)
	m.cpu.Submit(cost, func() {
		// Anchor the subtree: the new authority "must cache the
		// containing directory (prefix) inodes for each of its
		// subtrees" (§4.3).
		if _, err := m.cache.InsertPath(root, cache.Auth, false); err != nil {
			m.cache.InsertDetached(root, cache.Auth, false)
		}
		// Insert parents before children so path insertion succeeds.
		byDepth := make(map[int][]core.Migrated)
		maxD := 0
		for _, e := range entries {
			d := e.Ino.Depth()
			byDepth[d] = append(byDepth[d], e)
			if d > maxD {
				maxD = d
			}
		}
		for d := 0; d <= maxD; d++ {
			for _, e := range byDepth[d] {
				if _, err := m.cache.InsertPath(e.Ino, e.Class, false); err != nil {
					m.cache.InsertDetached(e.Ino, e.Class, false)
				}
				// A migrated replica now lives here: record this node in
				// the inode's replica set. The exporter's bit stays until
				// its own eviction, matching the bulk-removal rule. (Found
				// by chaos fuzzing: crash-driven re-delegations migrated
				// Replica entries whose replica sets named only the old
				// holders.)
				if e.Class == cache.Replica {
					m.eng.Defer(setReplicaTag, e.Ino, m)
				}
			}
		}
	})
}

// EvictSubtree implements core.Node: the exporter discards state for a
// migrated-away subtree.
func (m *MDS) EvictSubtree(root *namespace.Inode) {
	n := len(m.cache.EntriesUnder(root))
	m.Stats.Exported += uint64(n)
	cost := m.svc(sim.Time(n+1) * m.cfg.ImportPerRecord)
	m.cpu.Submit(cost, func() {
		m.cache.RemoveSubtree(root)
	})
}

// Fail marks the node down: it drops arrivals and abandons in-flight
// work. Part of the failover extension. Coalesced-fetch waiter maps are
// reset: their callbacks will never fire (the node is dead), and a
// post-recovery fetch for the same inode must not coalesce onto a dead
// waiter list and hang forever.
func (m *MDS) Fail() {
	m.failed = true
	// A crash loses volatile memory: the whole cache goes (silently —
	// a dead node sends no evict notices) and so do the absorbed write
	// maxima. Shed the per-inode bits naming this node as they go, or a
	// later recovery would resurrect replica-set and unflushed-writer
	// entries for copies that no longer exist. (Found by chaos fuzzing:
	// a crash-recovery schedule left the recovered node serving stale
	// Replica entries absent from their inodes' replica sets.)
	m.cache.Clear(func(e *cache.Entry) {
		partition.TagsOf(e.Ino).ClearReplica(m.id)
	})
	tree := m.cluster.Tree()
	for id := range m.sizePending {
		if ino, ok := tree.ByID(id); ok {
			m.clearUnflushed(ino)
		}
	}
	m.sizePending = make(map[namespace.InodeID]int64)
	m.pending = make(map[namespace.InodeID][]pendingCall)
	m.pendingDir = make(map[namespace.InodeID][]pendingCall)
	if m.pendingFwd != nil {
		m.pendingFwd = make(map[*msg.Request]fwdRec)
	}
}

// Failed reports whether the node is down.
func (m *MDS) Failed() bool { return m.failed }

// Recover brings the node back and pre-warms its cache from the bounded
// log's working set (§4.6): "the log represents an approximation of that
// node's working set, allowing the memory cache to be quickly preloaded".
func (m *MDS) Recover() int {
	m.failed = false
	warmed := 0
	tree := m.cluster.Tree()
	for _, id := range m.store.WorkingSet() {
		ino, ok := tree.ByID(id)
		if !ok {
			continue
		}
		if _, err := m.cache.InsertPath(ino, cache.Auth, true); err != nil {
			m.cache.InsertDetached(ino, cache.Auth, true)
		}
		warmed++
	}
	return warmed
}

// Quickstart: build a small MDS cluster with dynamic subtree
// partitioning, run a general-purpose workload, and print a summary.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dynmds/internal/cluster"
	"dynmds/internal/sim"
)

func main() {
	// Start from the default configuration and size it down so the
	// example finishes in about a second of wall time.
	cfg := cluster.Default()
	cfg.Strategy = cluster.StratDynamic
	cfg.NumMDS = 4
	cfg.ClientsPerMDS = 25
	cfg.FS.Users = 100 // 100 home directories, ~20k inodes
	cfg.MDS.CacheCapacity = 2000
	cfg.Duration = 10 * sim.Second
	cfg.Warmup = 3 * sim.Second

	cl, err := cluster.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("namespace: %d inodes; cluster: %d MDS x %d-record caches; %d clients\n",
		cl.Snap.Tree.Len(), cfg.NumMDS, cfg.MDS.CacheCapacity, len(cl.Clients))

	res := cl.Run()

	fmt.Println()
	fmt.Println("result:", res)
	fmt.Println()
	fmt.Println("per-node detail:")
	for i, n := range cl.Nodes {
		fmt.Printf("  mds %d: served=%-7d forwards=%-5d hit=%.3f prefix=%.3f cache=%d/%d\n",
			i, n.Stats.Served, n.Stats.Forwarded, n.HitRate(),
			n.Cache().PrefixFraction(), n.Cache().Len(), n.Cache().Cap())
	}
	fmt.Printf("\nclient mean latency: %.2f ms\n", res.MeanLatency*1000)
}

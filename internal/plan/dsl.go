package plan

import (
	"fmt"
	"strconv"
	"strings"

	"dynmds/internal/sim"
)

// The plan DSL is line-oriented. Blank lines and #-comments are
// skipped; everything else is a directive:
//
//	plan midas-create-hotspot
//	describe Single-directory create storm against one home.
//	quick 0.5
//	fs users=40 projects=8
//	cluster mds=8 strategy=DynamicSubtree cache=2500 shards=2 net=fixed bucket=500ms
//	traffic clients=4000 rate=1.5 tenants=64 file-skew=1 mix=stat:70,readdir:20,create:10
//	matrix strategy=DynamicSubtree,FileHash
//	warmup 2s
//	duration 20s
//	act phase warm @2s-6s rate=x2 mix=stat:70,readdir:20,chmod:8,create:2 skew=1.2
//	act hotspot storm @6s-14s rate=x4 mix=stat:10,create:90 target=/home/u0000 frac=0.8
//	optimize ops p99 load-spread
//
// String renders the canonical form: fixed directive order, zero-valued
// keys omitted, shortest-round-trip floats, largest-exact-unit times —
// so Parse∘String is the identity on canonical text (the same contract
// fault.Schedule keeps).

// Parse parses a plan from DSL text. The result is syntactically
// well-formed; call Validate (or Compile) for semantic checks.
func Parse(src string) (*Plan, error) {
	p := &Plan{}
	seen := map[string]bool{}
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		dir, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		if dir != "matrix" && dir != "act" {
			if seen[dir] {
				return nil, fmt.Errorf("plan line %d: duplicate %s directive", ln+1, dir)
			}
			seen[dir] = true
		}
		var err error
		switch dir {
		case "plan":
			p.Name = rest
		case "describe":
			p.Describe = rest
		case "quick":
			p.Quick, err = parseFloat(rest)
		case "fs":
			err = parseFS(p, rest)
		case "cluster":
			err = parseCluster(p, rest)
		case "traffic":
			err = parseTraffic(p, rest)
		case "matrix":
			err = parseMatrix(p, rest)
		case "warmup":
			p.Warmup, err = parseTime(rest)
		case "duration":
			p.Duration, err = parseTime(rest)
		case "act":
			err = parseAct(p, rest)
		case "optimize":
			p.Optimize = strings.Fields(rest)
		default:
			err = fmt.Errorf("unknown directive %q", dir)
		}
		if err != nil {
			return nil, fmt.Errorf("plan line %d: %w", ln+1, err)
		}
	}
	if p.Name == "" {
		return nil, fmt.Errorf("plan text has no plan directive")
	}
	return p, nil
}

func parseFS(p *Plan, rest string) error {
	return eachKV(rest, func(k, v string) error {
		var err error
		switch k {
		case "users":
			p.FS.Users, err = parseInt(v)
		case "projects":
			p.FS.Projects, err = parseInt(v)
		default:
			err = fmt.Errorf("unknown fs key %q", k)
		}
		return err
	})
}

func parseCluster(p *Plan, rest string) error {
	return eachKV(rest, func(k, v string) error {
		var err error
		switch k {
		case "mds":
			p.Cluster.MDS, err = parseInt(v)
		case "strategy":
			p.Cluster.Strategy = v
		case "cache":
			p.Cluster.Cache, err = parseInt(v)
		case "shards":
			p.Cluster.Shards, err = parseInt(v)
		case "net":
			p.Cluster.Net = v
		case "faults":
			p.Cluster.Faults = v
		case "bucket":
			p.Cluster.Bucket, err = parseTime(v)
		default:
			err = fmt.Errorf("unknown cluster key %q", k)
		}
		return err
	})
}

func parseTraffic(p *Plan, rest string) error {
	t := &TrafficSpec{}
	p.Traffic = t
	return eachKV(rest, func(k, v string) error {
		var err error
		switch k {
		case "clients":
			t.Clients, err = parseInt(v)
		case "rate":
			t.Rate, err = parseFloat(v)
		case "tenants":
			t.Tenants, err = parseInt(v)
		case "tenant-skew":
			t.TenantSkew, err = parseFloat(v)
		case "file-skew":
			t.FileSkew, err = parseFloat(v)
		case "working-set":
			t.WorkingSet, err = parseInt(v)
		case "ways":
			t.Ways, err = parseInt(v)
		case "mix":
			t.Mix, err = parseMix(v)
		default:
			err = fmt.Errorf("unknown traffic key %q", k)
		}
		return err
	})
}

func parseMatrix(p *Plan, rest string) error {
	k, v, ok := strings.Cut(rest, "=")
	if !ok || k == "" || v == "" {
		return fmt.Errorf("matrix wants key=v1,v2,... got %q", rest)
	}
	p.Matrix = append(p.Matrix, Axis{Key: k, Values: strings.Split(v, ",")})
	return nil
}

// parseAct parses "act <kind> <name> @from-to [key=value]...".
func parseAct(p *Plan, rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 3 {
		return fmt.Errorf("act wants <kind> <name> @from-to, got %q", rest)
	}
	a := Act{Kind: fields[0], Name: fields[1], Skew: -1}
	win, ok := strings.CutPrefix(fields[2], "@")
	if !ok {
		return fmt.Errorf("act window %q must start with @", fields[2])
	}
	fromStr, toStr, ok := strings.Cut(win, "-")
	if !ok {
		return fmt.Errorf("act window %q wants @from-to", fields[2])
	}
	var err error
	if a.From, err = parseTime(fromStr); err != nil {
		return err
	}
	if a.To, err = parseTime(toStr); err != nil {
		return err
	}
	for _, tok := range fields[3:] {
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return fmt.Errorf("act option %q wants key=value", tok)
		}
		switch k {
		case "rate":
			mul, ok := strings.CutPrefix(v, "x")
			if !ok {
				return fmt.Errorf("act rate %q wants a multiplier like x2", v)
			}
			if a.RateMul, err = parseFloat(mul); err != nil {
				return err
			}
			if a.RateMul <= 0 {
				return fmt.Errorf("act rate multiplier %q must be > 0", v)
			}
		case "mix":
			if a.Mix, err = parseMix(v); err != nil {
				return err
			}
		case "skew":
			if a.Skew, err = parseFloat(v); err != nil {
				return err
			}
			if a.Skew < 0 {
				return fmt.Errorf("act skew %q must be >= 0", v)
			}
		case "target":
			a.Target = v
		case "frac":
			if a.Frac, err = parseFloat(v); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown act option %q", k)
		}
	}
	p.Acts = append(p.Acts, a)
	return nil
}

// mixOpNames is the canonical draw order shared with the traffic plane.
var mixOpNames = [...]string{"stat", "readdir", "chmod", "create", "rename", "unlink"}

// parseMix parses "stat:80,create:20" (ops omitted weigh zero).
func parseMix(v string) (*MixSpec, error) {
	m := &MixSpec{}
	slot := map[string]*float64{
		"stat": &m.Stat, "readdir": &m.Readdir, "chmod": &m.Chmod,
		"create": &m.Create, "rename": &m.Rename, "unlink": &m.Unlink,
	}
	for _, part := range strings.Split(v, ",") {
		op, w, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("mix entry %q wants op:weight", part)
		}
		dst, known := slot[op]
		if !known {
			return nil, fmt.Errorf("unknown mix op %q (want %s)", op, strings.Join(mixOpNames[:], "/"))
		}
		f, err := parseFloat(w)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		*dst = f
	}
	return m, nil
}

// eachKV walks whitespace-separated key=value tokens.
func eachKV(rest string, fn func(k, v string) error) error {
	for _, tok := range strings.Fields(rest) {
		k, v, ok := strings.Cut(tok, "=")
		if !ok || v == "" {
			return fmt.Errorf("token %q wants key=value", tok)
		}
		if err := fn(k, v); err != nil {
			return err
		}
	}
	return nil
}

// String renders the canonical DSL form (Tweak functions are code and
// are not serialized).
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s\n", p.Name)
	if p.Describe != "" {
		fmt.Fprintf(&b, "describe %s\n", p.Describe)
	}
	if p.Quick > 0 {
		fmt.Fprintf(&b, "quick %s\n", fmtFloat(p.Quick))
	}
	var kv kvLine
	kv.add("users", itoa(p.FS.Users))
	kv.add("projects", itoa(p.FS.Projects))
	kv.flush(&b, "fs")
	kv.add("mds", itoa(p.Cluster.MDS))
	kv.addStr("strategy", p.Cluster.Strategy)
	kv.add("cache", itoa(p.Cluster.Cache))
	kv.add("shards", itoa(p.Cluster.Shards))
	kv.addStr("net", p.Cluster.Net)
	kv.addStr("faults", p.Cluster.Faults)
	if p.Cluster.Bucket > 0 {
		kv.addStr("bucket", fmtTime(p.Cluster.Bucket))
	}
	kv.flush(&b, "cluster")
	if t := p.Traffic; t != nil {
		kv.add("clients", itoa(t.Clients))
		kv.addF("rate", t.Rate)
		kv.add("tenants", itoa(t.Tenants))
		kv.addF("tenant-skew", t.TenantSkew)
		kv.addF("file-skew", t.FileSkew)
		kv.add("working-set", itoa(t.WorkingSet))
		kv.add("ways", itoa(t.Ways))
		if t.Mix != nil {
			kv.addStr("mix", fmtMix(t.Mix))
		}
		kv.flush(&b, "traffic")
	}
	for _, ax := range p.Matrix {
		fmt.Fprintf(&b, "matrix %s=%s\n", ax.Key, strings.Join(ax.Values, ","))
	}
	if p.Warmup > 0 {
		fmt.Fprintf(&b, "warmup %s\n", fmtTime(p.Warmup))
	}
	if p.Duration > 0 {
		fmt.Fprintf(&b, "duration %s\n", fmtTime(p.Duration))
	}
	for _, a := range p.Acts {
		fmt.Fprintf(&b, "act %s %s @%s-%s", a.Kind, a.Name, fmtTime(a.From), fmtTime(a.To))
		if a.RateMul > 0 {
			fmt.Fprintf(&b, " rate=x%s", fmtFloat(a.RateMul))
		}
		if a.Mix != nil {
			fmt.Fprintf(&b, " mix=%s", fmtMix(a.Mix))
		}
		if a.Skew >= 0 {
			fmt.Fprintf(&b, " skew=%s", fmtFloat(a.Skew))
		}
		if a.Target != "" {
			fmt.Fprintf(&b, " target=%s", a.Target)
		}
		if a.Frac > 0 {
			fmt.Fprintf(&b, " frac=%s", fmtFloat(a.Frac))
		}
		b.WriteByte('\n')
	}
	if len(p.Optimize) > 0 {
		fmt.Fprintf(&b, "optimize %s\n", strings.Join(p.Optimize, " "))
	}
	return b.String()
}

// fmtMix renders the non-zero weights in canonical op order.
func fmtMix(m *MixSpec) string {
	ws := [...]float64{m.Stat, m.Readdir, m.Chmod, m.Create, m.Rename, m.Unlink}
	var parts []string
	for i, w := range ws {
		if w != 0 {
			parts = append(parts, mixOpNames[i]+":"+fmtFloat(w))
		}
	}
	if len(parts) == 0 {
		return "stat:0"
	}
	return strings.Join(parts, ",")
}

// kvLine accumulates key=value tokens for one section line, dropping
// zero values so the output is canonical.
type kvLine struct{ parts []string }

func (l *kvLine) add(k, v string) {
	if v != "0" {
		l.parts = append(l.parts, k+"="+v)
	}
}

func (l *kvLine) addStr(k, v string) {
	if v != "" {
		l.parts = append(l.parts, k+"="+v)
	}
}

func (l *kvLine) addF(k string, v float64) {
	if v != 0 {
		l.parts = append(l.parts, k+"="+fmtFloat(v))
	}
}

func (l *kvLine) flush(b *strings.Builder, section string) {
	if len(l.parts) == 0 {
		return
	}
	fmt.Fprintf(b, "%s %s\n", section, strings.Join(l.parts, " "))
	l.parts = l.parts[:0]
}

func itoa(n int) string { return strconv.Itoa(n) }

func parseInt(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	return n, nil
}

func parseFloat(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return f, nil
}

// fmtTime renders a virtual time in the largest s/ms/us unit that is
// exact; parseTime inverts it (same convention as internal/fault).
func fmtTime(t sim.Time) string {
	switch {
	case t%sim.Second == 0:
		return strconv.FormatInt(int64(t/sim.Second), 10) + "s"
	case t%sim.Millisecond == 0:
		return strconv.FormatInt(int64(t/sim.Millisecond), 10) + "ms"
	default:
		return strconv.FormatInt(int64(t), 10) + "us"
	}
}

// fmtFloat renders the shortest decimal that parses back to exactly v.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// parseTime parses "30s", "500ms", "250us", or a bare number (seconds).
func parseTime(s string) (sim.Time, error) {
	unit := sim.Second
	num := s
	switch {
	case strings.HasSuffix(s, "us"):
		unit, num = sim.Microsecond, s[:len(s)-2]
	case strings.HasSuffix(s, "ms"):
		unit, num = sim.Millisecond, s[:len(s)-2]
	case strings.HasSuffix(s, "s"):
		unit, num = sim.Second, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad time %q", s)
	}
	return sim.Time(v * float64(unit)), nil
}

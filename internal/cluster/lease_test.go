package cluster

import (
	"fmt"
	"testing"

	"dynmds/internal/lease"
	"dynmds/internal/net"
	"dynmds/internal/sim"
)

// leaseConfig is the open-loop config with the lease plane and fan-out
// on, a read crowd against one home (lease territory) followed by a
// mutation churn (recall territory). GrantPopularity 0.01 leases on
// essentially every read so the small test run exercises every path.
func leaseConfig(strategy string) Config {
	cfg := openLoopConfig(strategy)
	// Keep the run under cluster capacity: the hotspot split counts a
	// completion against the hot record only while the act is live, so
	// replies must return within the act window, and the drain check
	// needs the backlog cleared. openLoopConfig's rate 20 with the
	// crowd's x2 multiplier would swamp the 4-node cluster.
	cfg.OpenLoop.Rate = 2
	cfg.Lease.Enabled = true
	cfg.Lease.Fanout = true
	cfg.Lease.GrantPopularity = 0.01
	cfg.Lease.Duration = 2 * sim.Second
	cfg.Acts = []ActConfig{
		{Name: "crowd", From: sim.Second, To: 4 * sim.Second, RateMul: 2,
			MixStat: 90, MixReaddir: 10, FileSkew: -1,
			Hotspot: "/home/u0000", HotFrac: 0.7},
		{Name: "churn", From: 4 * sim.Second, To: 6 * sim.Second,
			MixStat: 40, MixChmod: 30, MixCreate: 30, FileSkew: -1},
	}
	return cfg
}

// leaseDigest extends the open-loop digest with every lease counter, so
// the determinism tests pin the whole protocol, not just the traffic.
func leaseDigest(r *Result) string {
	return fmt.Sprintf("%s hits=%d grants=%d recalls=%d recalled=%d acks=%d fanouts=%d hot=%d+%d",
		openLoopDigest(r), r.LeaseHits, r.LeaseGrants, r.LeaseRecalls,
		r.LeaseRecalled, r.LeaseAcks, r.ReplicaFanouts,
		r.HotspotLocal, r.HotspotRemote)
}

// TestLeaseGrantRecallAck runs the full protocol and checks the
// counters against the fabric's per-class accounting: every recall
// delivered is acked exactly once, the registry bump count matches the
// deliveries, and no lease dangles after the drain.
func TestLeaseGrantRecallAck(t *testing.T) {
	cl, err := New(leaseConfig(StratDynamic))
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Run()
	if res.LeaseGrants == 0 {
		t.Fatal("no leases granted")
	}
	if res.LeaseHits == 0 {
		t.Fatal("no arrivals served from a lease")
	}
	if res.LeaseRecalls == 0 {
		t.Fatal("mutation churn sent no recalls")
	}
	if res.ReplicaFanouts == 0 {
		t.Fatal("hot directory never fanned out")
	}
	if res.HotspotLocal == 0 || res.HotspotRemote == 0 {
		t.Fatalf("hotspot split degenerate: %d local, %d remote",
			res.HotspotLocal, res.HotspotRemote)
	}
	cl.Drain()
	// Fault-free: every lease-class message sent is delivered, acks
	// mirror recall deliveries, and the edge counted each delivery.
	for _, c := range []net.Class{net.LeaseGrant, net.LeaseRecall, net.LeaseAck} {
		cs := cl.Fab.Class(c)
		if cs.Sent == 0 {
			t.Errorf("%v: no traffic", c)
		}
		if cs.Sent != cs.Delivered+cs.Dropped {
			t.Errorf("%v: sent %d != delivered %d + dropped %d", c, cs.Sent, cs.Delivered, cs.Dropped)
		}
		if cs.Dropped != 0 {
			t.Errorf("%v: %d dropped on a fault-free run", c, cs.Dropped)
		}
	}
	recall := cl.Fab.Class(net.LeaseRecall)
	ack := cl.Fab.Class(net.LeaseAck)
	if ack.Sent != recall.Delivered {
		t.Errorf("acks %d != recalls delivered %d", ack.Sent, recall.Delivered)
	}
	if cl.Lease.Recalled != recall.Delivered {
		t.Errorf("edge recall count %d != recalls delivered %d", cl.Lease.Recalled, recall.Delivered)
	}
	if err := cl.DrainCheck(); err != nil {
		t.Error(err)
	}
	if n := cl.Lease.Dangling(cl.Eng.Now()); n != 0 {
		t.Errorf("%d dangling leases after drain", n)
	}
}

// TestLeaseDeterministic pins bit-reproducibility of the whole lease
// protocol, serial and K=4.
func TestLeaseDeterministic(t *testing.T) {
	for _, shards := range []int{0, 4} {
		shards := shards
		t.Run(fmt.Sprintf("K%d", shards), func(t *testing.T) {
			cfg := leaseConfig(StratDynamic)
			cfg.Shards = shards
			run := func() string {
				cl, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return leaseDigest(cl.Run())
			}
			a, b := run(), run()
			if a != b {
				t.Fatalf("lease run not reproducible:\n%s\n%s", a, b)
			}
		})
	}
}

// TestLeaseExpiryVsRecall drives the race between natural expiry and
// recall: a 1ms lifetime means most leases lapse before the mutation
// that would recall them, so recalls routinely chase already-expired
// slots. That must stay harmless — accounting intact, nothing dangling.
func TestLeaseExpiryVsRecall(t *testing.T) {
	cfg := leaseConfig(StratDynamic)
	cfg.Lease.Duration = sim.Millisecond
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Run()
	if res.LeaseGrants == 0 || res.LeaseRecalls == 0 {
		t.Fatalf("race not exercised: %d grants, %d recalls", res.LeaseGrants, res.LeaseRecalls)
	}
	cl.Drain()
	recall := cl.Fab.Class(net.LeaseRecall)
	if ack := cl.Fab.Class(net.LeaseAck); ack.Sent != recall.Delivered {
		t.Errorf("acks %d != recalls delivered %d", ack.Sent, recall.Delivered)
	}
	if err := cl.DrainCheck(); err != nil {
		t.Error(err)
	}
	if n := cl.Lease.Dangling(cl.Eng.Now()); n != 0 {
		t.Errorf("%d dangling leases after drain", n)
	}
}

// TestLeaseOffInert: with the plane disabled the lease classes carry
// zero traffic, no plane is built, and no counter moves — the disabled
// configuration is the bit-identical pre-lease baseline.
func TestLeaseOffInert(t *testing.T) {
	cfg := leaseConfig(StratDynamic)
	cfg.Lease = lease.Config{}
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Run()
	if cl.Lease != nil {
		t.Fatal("disabled config built a lease plane")
	}
	if res.LeaseHits+res.LeaseGrants+res.LeaseRecalls+res.LeaseRecalled+res.LeaseAcks+res.ReplicaFanouts != 0 {
		t.Fatalf("lease counters moved on a disabled run: %+v", res)
	}
	for _, c := range []net.Class{net.LeaseGrant, net.LeaseRecall, net.LeaseAck} {
		if cs := cl.Fab.Class(c); cs.Sent != 0 {
			t.Errorf("%v: %d messages on a disabled run", c, cs.Sent)
		}
	}
	// The hotspot split still works without leases: everything remote.
	if res.HotspotLocal != 0 || res.HotspotRemote == 0 {
		t.Fatalf("hotspot split wrong without leases: %d local, %d remote",
			res.HotspotLocal, res.HotspotRemote)
	}
}

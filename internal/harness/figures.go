package harness

import (
	"fmt"
	"io"
	"strconv"

	"dynmds/internal/cluster"
	"dynmds/internal/metrics"
	"dynmds/internal/plan"
	"dynmds/internal/sim"
)

// The figures are plan definitions: each builds a plan.Plan whose
// matrix mirrors the old hand-rolled spec loops (first axis outermost,
// so runs come back in the same order) and whose Tweak overwrites the
// compiled config with the figure's bespoke one — which keeps the
// goldens bit-identical to the pre-plan harness. Only the table
// rendering stays per-figure.

// scaledConfig builds the Figure 2/3 scaling configuration: MDS memory
// is fixed while file system size and client base scale with the
// cluster, exactly as §5.3 describes.
func scaledConfig(opt Options, strategy string, n int) cluster.Config {
	cfg := cluster.Default()
	cfg.Seed = opt.Seed
	cfg.NetModel = opt.NetModel
	cfg.Strategy = strategy
	cfg.NumMDS = n
	cfg.ClientsPerMDS = 60
	cfg.FS.Users = 25 * n
	cfg.FS.Projects = 2 * n
	cfg.MDS.CacheCapacity = 2500
	cfg.MDS.Storage.LogCapacity = 2500
	cfg.Duration = 30 * sim.Second
	cfg.Warmup = 10 * sim.Second
	if opt.Quick {
		cfg.ClientsPerMDS = 30
		cfg.Duration = 10 * sim.Second
		cfg.Warmup = 4 * sim.Second
	}
	return cfg
}

func sizesFor(opt Options, max int) []int {
	if opt.Quick {
		out := []int{4, 8, 16}
		var kept []int
		for _, n := range out {
			if n <= max {
				kept = append(kept, n)
			}
		}
		return kept
	}
	var out []int
	for n := 5; n <= max && n <= 30; n += 5 {
		out = append(out, n)
	}
	for n := 40; n <= max; n += 10 {
		out = append(out, n)
	}
	return out
}

// scalingPlan is the Figure 2/3 shape: cluster sizes × all strategies,
// each cell the scaled configuration.
func scalingPlan(name string, opt Options, sizes []int) *plan.Plan {
	return &plan.Plan{
		Name: name,
		Matrix: []plan.Axis{
			{Key: "mds", Values: intStrings(sizes)},
			{Key: "strategy", Values: cluster.Strategies},
		},
		Tweak: func(cfg *cluster.Config, cell plan.Cell, _ plan.Options) {
			*cfg = scaledConfig(opt, cell["strategy"], atoi(cell["mds"]))
		},
	}
}

// writeStrategyGrid renders the rows × strategies table the scaling
// figures share: one cell per run, runs in matrix (row-major) order.
func writeStrategyGrid(w io.Writer, rowHeader string, rowLabels []interface{}, runs []PlanRun, val func(*cluster.Result) interface{}) error {
	tb := metrics.NewTable(append([]string{rowHeader}, cluster.Strategies...)...)
	i := 0
	for _, rl := range rowLabels {
		row := []interface{}{rl}
		for range cluster.Strategies {
			row = append(row, val(runs[i].Res))
			i++
		}
		tb.AddRow(row...)
	}
	_, err := io.WriteString(w, tb.String())
	return err
}

// Fig2 regenerates Figure 2: average per-MDS throughput vs cluster size
// for all five strategies under the general-purpose workload.
func Fig2(w io.Writer, opt Options) error {
	sizes := sizesFor(opt, 50)
	runs, err := RunPlan(scalingPlan("fig2", opt, sizes), opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 2: average MDS throughput (ops/sec) vs cluster size")
	return writeStrategyGrid(w, "mds", intCells(sizes), runs,
		func(r *cluster.Result) interface{} { return r.AvgThroughput })
}

// Fig3 regenerates Figure 3: percentage of cache consumed by prefix
// inodes vs cluster size (the paper plots four strategies; Lazy Hybrid
// caches no prefixes by construction and is omitted there, but we print
// it for completeness).
func Fig3(w io.Writer, opt Options) error {
	sizes := sizesFor(opt, 30)
	runs, err := RunPlan(scalingPlan("fig3", opt, sizes), opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 3: cache consumed by prefix inodes (%) vs cluster size")
	return writeStrategyGrid(w, "mds", intCells(sizes), runs,
		func(r *cluster.Result) interface{} { return 100 * r.PrefixFrac })
}

// Fig4 regenerates Figure 4: cache hit rate as a function of cache size
// expressed as a fraction of total metadata size, at a fixed cluster
// size.
func Fig4(w io.Writer, opt Options) error {
	const n = 8
	fractions := []float64{0.025, 0.05, 0.1, 0.2, 0.3, 0.45, 0.6}
	if opt.Quick {
		fractions = []float64{0.05, 0.2, 0.6}
	}
	// Estimate total metadata size from one generation. With snapshot
	// sharing on this primes the cache, so the sweep below reuses the
	// same frozen base instead of regenerating per run.
	base := scaledConfig(opt, cluster.StratStatic, n)
	totalInodes, err := namespaceSize(base)
	if err != nil {
		return err
	}

	fracs := make([]string, len(fractions))
	for i, f := range fractions {
		fracs[i] = fmt.Sprintf("%.3f", f)
	}
	p := &plan.Plan{
		Name: "fig4",
		Matrix: []plan.Axis{
			{Key: "frac", Values: fracs},
			{Key: "strategy", Values: cluster.Strategies},
		},
		Tweak: func(cfg *cluster.Config, cell plan.Cell, _ plan.Options) {
			f, _ := strconv.ParseFloat(cell["frac"], 64)
			*cfg = scaledConfig(opt, cell["strategy"], n)
			perMDS := int(f * float64(totalInodes) / float64(n))
			if perMDS < 64 {
				perMDS = 64
			}
			cfg.MDS.CacheCapacity = perMDS
			cfg.MDS.Storage.LogCapacity = perMDS
		},
	}
	runs, err := RunPlan(p, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 4: cache hit rate vs cache size fraction (cluster of %d, fs=%d inodes)\n", n, totalInodes)
	rows := make([]interface{}, len(fracs))
	for i, f := range fracs {
		rows[i] = f
	}
	return writeStrategyGrid(w, "cache_frac", rows, runs,
		func(r *cluster.Result) interface{} { return fmt.Sprintf("%.3f", r.HitRate) })
}

// shiftConfig builds the Figure 5/6 workload-evolution run.
func shiftConfig(opt Options, strategy string) cluster.Config {
	cfg := cluster.Default()
	cfg.Seed = opt.Seed
	cfg.NetModel = opt.NetModel
	cfg.Strategy = strategy
	cfg.NumMDS = 6
	cfg.ClientsPerMDS = 30
	cfg.FS.Users = 25 * cfg.NumMDS
	cfg.MDS.CacheCapacity = 2500
	cfg.Client.ThinkMean = 15 * sim.Millisecond
	// A bounded location cache forces rediscovery when activity moves,
	// the effect Figure 6 measures.
	cfg.Client.KnownCap = 512
	cfg.Workload.Kind = cluster.WorkShift
	cfg.Workload.ShiftFraction = 0.5
	cfg.SeriesBucket = sim.Second
	if opt.Quick {
		cfg.Workload.ShiftTime = 8 * sim.Second
		cfg.Duration = 24 * sim.Second
		cfg.Warmup = 4 * sim.Second
	} else {
		cfg.Workload.ShiftTime = 25 * sim.Second
		cfg.Duration = 80 * sim.Second
		cfg.Warmup = 10 * sim.Second
	}
	// Faster balance rounds so adaptation is visible on the plot.
	if cfg.Balancer != nil {
		b := *cfg.Balancer
		b.Interval = 2 * sim.Second
		cfg.Balancer = &b
	}
	return cfg
}

// shiftPlan is the Figure 5/6 shape: dynamic vs static under the
// workload shift.
func shiftPlan(name string, opt Options) *plan.Plan {
	return &plan.Plan{
		Name: name,
		Matrix: []plan.Axis{
			{Key: "strategy", Values: []string{cluster.StratDynamic, cluster.StratStatic}},
		},
		Tweak: func(cfg *cluster.Config, cell plan.Cell, _ plan.Options) {
			*cfg = shiftConfig(opt, cell["strategy"])
		},
	}
}

// Fig5 regenerates Figure 5: the range (min..max) and average of MDS
// throughput over time under the shifting workload, dynamic vs static.
func Fig5(w io.Writer, opt Options) error {
	runs, err := RunPlan(shiftPlan("fig5", opt), opt)
	if err != nil {
		return err
	}
	dyn, sta := runs[0].Res, runs[1].Res
	fmt.Fprintln(w, "Figure 5: MDS throughput (ops/sec) over time under a workload shift")
	fmt.Fprintf(w, "shift at t=%v; dynamic migrations=%d\n",
		runs[0].Cfg.Workload.ShiftTime, dyn.Migrations)
	tb := metrics.NewTable("t(s)",
		"dyn_min", "dyn_avg", "dyn_max",
		"sta_min", "sta_avg", "sta_max")
	buckets := dyn.RepliesPerNode[0].Len()
	if b := sta.RepliesPerNode[0].Len(); b > buckets {
		buckets = b
	}
	var dynAvg, staAvg []float64
	for i := 0; i < buckets; i++ {
		dmin, davg, dmax := nodeRange(dyn, i)
		smin, savg, smax := nodeRange(sta, i)
		tb.AddRow(int(dyn.Bucket.Seconds()*float64(i)), dmin, davg, dmax, smin, savg, smax)
		dynAvg = append(dynAvg, davg)
		staAvg = append(staAvg, savg)
	}
	if _, err := io.WriteString(w, tb.String()); err != nil {
		return err
	}
	fmt.Fprintf(w, "dynamic avg %s\nstatic  avg %s\n",
		metrics.Sparkline(dynAvg), metrics.Sparkline(staAvg))
	return nil
}

// nodeRange computes min/avg/max per-node throughput in bucket i.
func nodeRange(r *cluster.Result, i int) (min, avg, max float64) {
	var w metrics.Welford
	for _, s := range r.RepliesPerNode {
		w.Add(s.Sum(i) / r.Bucket.Seconds())
	}
	return w.Min(), w.Mean(), w.Max()
}

// Fig6 regenerates Figure 6: the fraction of client requests forwarded
// over time under the same shift.
func Fig6(w io.Writer, opt Options) error {
	runs, err := RunPlan(shiftPlan("fig6", opt), opt)
	if err != nil {
		return err
	}
	dyn, sta := runs[0].Res, runs[1].Res
	fmt.Fprintln(w, "Figure 6: fraction of requests forwarded over time under a workload shift")
	tb := metrics.NewTable("t(s)", "dynamic", "static")
	buckets := dyn.Forwards.Len()
	if b := sta.Forwards.Len(); b > buckets {
		buckets = b
	}
	var dfrac, sfrac []float64
	for i := 0; i < buckets; i++ {
		tb.AddRow(int(dyn.Bucket.Seconds()*float64(i)),
			fmt.Sprintf("%.4f", fracAt(dyn, i)),
			fmt.Sprintf("%.4f", fracAt(sta, i)))
		dfrac = append(dfrac, fracAt(dyn, i))
		sfrac = append(sfrac, fracAt(sta, i))
	}
	if _, err := io.WriteString(w, tb.String()); err != nil {
		return err
	}
	fmt.Fprintf(w, "dynamic %s\nstatic  %s\n",
		metrics.Sparkline(dfrac), metrics.Sparkline(sfrac))
	return nil
}

func fracAt(r *cluster.Result, i int) float64 {
	arr := r.Arrivals.Sum(i)
	if arr == 0 {
		return 0
	}
	return r.Forwards.Sum(i) / arr
}

// flashConfig builds the Figure 7 flash-crowd run.
func flashConfig(opt Options, trafficOn bool) cluster.Config {
	cfg := cluster.Default()
	cfg.Seed = opt.Seed
	cfg.NetModel = opt.NetModel
	cfg.Strategy = cluster.StratDynamic
	cfg.NumMDS = 8
	cfg.ClientsPerMDS = 1250 // 10,000 clients, as in the paper
	cfg.FS.Users = 100
	cfg.MDS.CacheCapacity = 4000
	cfg.Client.ThinkMean = 20 * sim.Millisecond
	cfg.Workload.Kind = cluster.WorkFlashCrowd
	cfg.Workload.FlashTime = 8 * sim.Second
	cfg.Workload.FlashDuration = 2 * sim.Second
	cfg.Duration = 10 * sim.Second
	cfg.Warmup = 4 * sim.Second
	cfg.SeriesBucket = 20 * sim.Millisecond
	cfg.Balancer = nil // isolate traffic control, as the figure does
	if !trafficOn {
		cfg.Traffic = nil
	}
	if opt.Quick {
		cfg.ClientsPerMDS = 250
	}
	return cfg
}

// Fig7 regenerates Figure 7: cluster-wide replies and forwards per
// second through the flash crowd, without and with traffic control.
func Fig7(w io.Writer, opt Options) error {
	p := &plan.Plan{
		Name: "fig7",
		Matrix: []plan.Axis{
			{Key: "tc", Values: []string{"off", "on"}},
		},
		Tweak: func(cfg *cluster.Config, cell plan.Cell, _ plan.Options) {
			*cfg = flashConfig(opt, cell["tc"] == "on")
		},
	}
	runs, err := RunPlan(p, opt)
	if err != nil {
		return err
	}
	off, on := runs[0].Res, runs[1].Res
	fmt.Fprintln(w, "Figure 7: flash crowd at t=8s; requests/sec, traffic control off vs on")
	tb := metrics.NewTable("t(s)",
		"off_replies", "off_forwards",
		"on_replies", "on_forwards")
	start := int((7800 * sim.Millisecond) / off.Bucket)
	end := int((10 * sim.Second) / off.Bucket)
	var offR, onR []float64
	for i := start; i < end; i++ {
		tb.AddRow(fmt.Sprintf("%.2f", off.Bucket.Seconds()*float64(i)),
			int(totalReplies(off, i)/off.Bucket.Seconds()),
			int(off.Forwards.Sum(i)/off.Bucket.Seconds()),
			int(totalReplies(on, i)/on.Bucket.Seconds()),
			int(on.Forwards.Sum(i)/on.Bucket.Seconds()))
		offR = append(offR, totalReplies(off, i))
		onR = append(onR, totalReplies(on, i))
	}
	if _, err := io.WriteString(w, tb.String()); err != nil {
		return err
	}
	fmt.Fprintf(w, "replies, no traffic control %s\nreplies, traffic control    %s\n",
		metrics.Sparkline(offR), metrics.Sparkline(onR))
	return nil
}

func totalReplies(r *cluster.Result, i int) float64 {
	var sum float64
	for _, s := range r.RepliesPerNode {
		sum += s.Sum(i)
	}
	return sum
}

// intStrings renders ints as matrix axis values.
func intStrings(ns []int) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = strconv.Itoa(n)
	}
	return out
}

// intCells renders ints as table row labels.
func intCells(ns []int) []interface{} {
	out := make([]interface{}, len(ns))
	for i, n := range ns {
		out[i] = n
	}
	return out
}

// atoi is strconv.Atoi for matrix values already validated by Compile.
func atoi(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}

package workload

import (
	"testing"

	"dynmds/internal/namespace"
)

// tenantTree builds a small namespace with h home directories, each
// holding a few files and one subdirectory.
func tenantTree(t *testing.T, h int) (*namespace.Tree, []*namespace.Inode) {
	t.Helper()
	tr := namespace.NewTree()
	homeRoot, err := tr.Mkdir(tr.Root, "home")
	if err != nil {
		t.Fatal(err)
	}
	homes := make([]*namespace.Inode, h)
	for i := 0; i < h; i++ {
		u, err := tr.Mkdir(homeRoot, "u"+string(rune('a'+i)))
		if err != nil {
			t.Fatal(err)
		}
		homes[i] = u
		sub, err := tr.Mkdir(u, "proj")
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 6; j++ {
			name := "f" + string(rune('0'+j))
			if _, err := tr.Create(u, name); err != nil {
				t.Fatal(err)
			}
			if _, err := tr.Create(sub, name); err != nil {
				t.Fatal(err)
			}
		}
	}
	return tr, homes
}

func TestTenantsClientSplit(t *testing.T) {
	_, homes := tenantTree(t, 4)
	cfg := TenantConfig{Tenants: 10, TenantSkew: 1.0, WorkingSet: 8}
	tn := NewTenants(cfg, 1000, homes, 42)
	if tn.NumTenants() != 10 {
		t.Fatalf("tenants = %d", tn.NumTenants())
	}
	total := 0
	for i := 0; i < 10; i++ {
		c := tn.TenantClients(i)
		if c < 1 {
			t.Fatalf("tenant %d has %d clients", i, c)
		}
		total += c
	}
	if total != 1000 {
		t.Fatalf("client counts sum to %d", total)
	}
	// Zipf sizes: tenant 0 largest, monotone non-increasing overall
	// shape (largest remainder can wobble by one, so compare 0 vs last).
	if tn.TenantClients(0) <= tn.TenantClients(9) {
		t.Fatalf("skew missing: t0=%d t9=%d", tn.TenantClients(0), tn.TenantClients(9))
	}
	// Roughly Zipf: tenant 0's weight is 1/H(10) ≈ 0.34 of the mass.
	if c0 := tn.TenantClients(0); c0 < 250 || c0 > 450 {
		t.Fatalf("tenant 0 clients = %d, want ≈ 340", c0)
	}
	// ClientTenant is consistent with the contiguous ranges.
	seen := make([]int, 10)
	for c := 0; c < 1000; c++ {
		seen[tn.ClientTenant(c)]++
	}
	for i := 0; i < 10; i++ {
		if seen[i] != tn.TenantClients(i) {
			t.Fatalf("tenant %d: mapped %d, counted %d", i, seen[i], tn.TenantClients(i))
		}
	}
}

func TestTenantsUniformSplit(t *testing.T) {
	_, homes := tenantTree(t, 2)
	tn := NewTenants(TenantConfig{Tenants: 7, WorkingSet: 4}, 700, homes, 1)
	for i := 0; i < 7; i++ {
		if c := tn.TenantClients(i); c != 100 {
			t.Fatalf("tenant %d clients = %d, want 100", i, c)
		}
	}
}

func TestTenantsSeedStable(t *testing.T) {
	_, homes := tenantTree(t, 4)
	cfg := TenantConfig{Tenants: 6, TenantSkew: 0.8, FileSkew: 1.1, WorkingSet: 8}
	a := NewTenants(cfg, 300, homes, 7)
	b := NewTenants(cfg, 300, homes, 7)
	c := NewTenants(cfg, 300, homes, 8)
	for i := 0; i < 6; i++ {
		if a.TenantClients(i) != b.TenantClients(i) {
			t.Fatalf("tenant %d size differs across identical builds", i)
		}
	}
	same, diff := true, false
	for i := 0; i < 6; i++ {
		lo, hi := int(a.fileOff[i]), int(a.fileOff[i+1])
		for j := lo; j < hi; j++ {
			if a.files[j] != b.files[j] {
				same = false
			}
			if a.files[j] != c.files[j] {
				diff = true
			}
		}
	}
	if !same {
		t.Fatal("identical seeds produced different working sets")
	}
	if !diff {
		t.Fatal("different seeds produced identical working sets")
	}
	// Draws are pure functions of (tenant, u1, u2).
	if a.File(2, 123, 456) != b.File(2, 123, 456) {
		t.Fatal("draw not reproducible")
	}
}

func TestTenantsDrawDistribution(t *testing.T) {
	_, homes := tenantTree(t, 1)
	tn := NewTenants(TenantConfig{Tenants: 1, FileSkew: 1.2, WorkingSet: 8}, 16, homes, 3)
	ws := tn.WorkingSetSize(0)
	if ws < 2 {
		t.Fatalf("working set = %d", ws)
	}
	hot := tn.files[0]
	counts := map[*namespace.Inode]int{}
	// Deterministic pseudo-uniform words via splitmix-ish mixing.
	x := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	n := 20000
	for i := 0; i < n; i++ {
		counts[tn.File(0, next(), next())]++
	}
	// With skew 1.2 over 8 ranks, rank 0 holds ≈45% of the mass; it must
	// clearly dominate a uniform share and every rank must be drawn.
	if counts[hot] < n/4 {
		t.Fatalf("hottest file drawn %d/%d, want > %d", counts[hot], n, n/4)
	}
	if len(counts) != ws {
		t.Fatalf("only %d of %d working-set entries ever drawn", len(counts), ws)
	}
	for f, c := range counts {
		if f == hot {
			continue
		}
		if c >= counts[hot] {
			t.Fatalf("rank-0 file not the mode: %d vs %d", counts[hot], c)
		}
	}
	// Dir draws return directories.
	for i := 0; i < 100; i++ {
		if d := tn.Dir(0, next(), next()); !d.IsDir() {
			t.Fatal("Dir returned a non-directory")
		}
	}
}

func TestTenantsWorkingSetBounded(t *testing.T) {
	_, homes := tenantTree(t, 2)
	tn := NewTenants(TenantConfig{Tenants: 3, WorkingSet: 5}, 30, homes, 9)
	for i := 0; i < 3; i++ {
		ws := tn.WorkingSetSize(i)
		if ws < 1 || ws > 5 {
			t.Fatalf("tenant %d working set = %d, want 1..5", i, ws)
		}
		// Entries are distinct.
		seen := map[*namespace.Inode]bool{}
		for j := int(tn.fileOff[i]); j < int(tn.fileOff[i+1]); j++ {
			if seen[tn.files[j]] {
				t.Fatalf("tenant %d working set has duplicates", i)
			}
			seen[tn.files[j]] = true
		}
	}
}

func TestTenantsDrawAllocFree(t *testing.T) {
	_, homes := tenantTree(t, 1)
	tn := NewTenants(TenantConfig{Tenants: 2, FileSkew: 0.9, WorkingSet: 8}, 64, homes, 5)
	var sink *namespace.Inode
	allocs := testing.AllocsPerRun(200, func() {
		sink = tn.File(0, 12345, 67890)
		sink = tn.Dir(1, 111, 222)
	})
	if allocs != 0 {
		t.Fatalf("draw allocates: %v allocs/op", allocs)
	}
	_ = sink
}

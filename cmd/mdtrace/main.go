// Command mdtrace records a metadata operation trace from a simulated
// workload, or replays a recorded trace against a cluster configuration
// — the paper's future-work path toward trace-driven evaluation.
//
// Usage:
//
//	mdtrace -record trace.jsonl -dur 10
//	mdtrace -replay trace.jsonl -strategy FileHash
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"dynmds/internal/cluster"
	"dynmds/internal/sim"
	"dynmds/internal/trace"
	"dynmds/internal/workload"
)

func main() {
	var (
		record   = flag.String("record", "", "record a trace to this file")
		replay   = flag.String("replay", "", "replay a trace from this file")
		stats    = flag.String("stats", "", "summarise a trace file")
		strategy = flag.String("strategy", cluster.StratDynamic, "partitioning strategy")
		nmds     = flag.Int("mds", 4, "cluster size")
		clients  = flag.Int("clients", 20, "clients per MDS")
		users    = flag.Int("users", 100, "file-system users")
		seed     = flag.Int64("seed", 1, "simulation seed")
		dur      = flag.Float64("dur", 10, "duration in simulated seconds")
	)
	flag.Parse()
	if *stats != "" {
		f, err := os.Open(*stats)
		if err != nil {
			fatal(err)
		}
		events, err := trace.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Print(trace.Summarize(events, 10))
		return
	}
	if (*record == "") == (*replay == "") {
		fmt.Fprintln(os.Stderr, "mdtrace: exactly one of -record, -replay or -stats is required")
		os.Exit(1)
	}

	cfg := cluster.Default()
	cfg.Seed = *seed
	cfg.Strategy = *strategy
	cfg.NumMDS = *nmds
	cfg.ClientsPerMDS = *clients
	cfg.FS.Users = *users
	cfg.Duration = sim.FromSeconds(*dur)
	cfg.Warmup = 0

	if *record != "" {
		doRecord(cfg, *record)
		return
	}
	doReplay(cfg, *replay)
}

func doRecord(cfg cluster.Config, path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	defer w.Flush()

	var recorders []*trace.Recorder
	cfg.WrapGenerator = func(id int, g workload.Generator) workload.Generator {
		// Cluster construction is single-threaded; no locking needed.
		r := trace.NewRecorder(id, g, w)
		recorders = append(recorders, r)
		return r
	}
	cl, err := cluster.New(cfg)
	if err != nil {
		fatal(err)
	}
	res := cl.Run()
	var total uint64
	for _, r := range recorders {
		total += r.Events
	}
	fmt.Printf("recorded %d events to %s\n", total, path)
	fmt.Println(res)
}

func doReplay(cfg cluster.Config, path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	events, err := trace.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	byClient := trace.Split(events)

	cl, err := cluster.New(cfg)
	if err != nil {
		fatal(err)
	}
	// Swap each client's generator for a trace player bound to the
	// (deterministically regenerated) tree.
	var players []*trace.Player
	for i, c := range cl.Clients {
		p := trace.NewPlayer(cl.Tree(), byClient[i])
		players = append(players, p)
		c.SetGenerator(p)
	}
	res := cl.Run()
	var played, skipped uint64
	for _, p := range players {
		played += p.Played
		skipped += p.Skipped
	}
	fmt.Printf("replayed %d events (%d skipped) from %s\n", played, skipped, path)
	fmt.Println(res)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mdtrace:", err)
	os.Exit(1)
}

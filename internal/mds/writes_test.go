package mds

import (
	"testing"

	"dynmds/internal/core"
	"dynmds/internal/msg"
	"dynmds/internal/namespace"
	"dynmds/internal/partition"
	"dynmds/internal/sim"
)

// replicateFile makes f hot enough that traffic control replicates it
// cluster-wide, then drains the engine.
func replicateFile(t *testing.T, eng *sim.Engine, cl *testCluster, auth int, f *namespace.Inode) {
	t.Helper()
	for i := 0; i < 10; i++ {
		cl.nodes[auth].Receive(&msg.Request{ID: uint64(i), Op: msg.Open, Target: f})
	}
	eng.Run()
	if !partition.TagsOf(f).ReplicatedAll {
		t.Fatal("file did not replicate")
	}
}

func TestWriteAbsorbedAtReplica(t *testing.T) {
	eng := sim.NewEngine()
	cl, tree, strat := buildCluster(t, eng, 3, func(tr *namespace.Tree) partition.Strategy {
		return partition.NewStaticSubtree(3, tr, 2)
	}, true)
	f := lookup(t, tree, "/home/u1/f0")
	auth := strat.Authority(f)
	replicateFile(t, eng, cl, auth, f)

	other := (auth + 1) % 3
	fwdBefore := cl.nodes[other].Stats.Forwarded
	cl.nodes[other].Receive(&msg.Request{ID: 100, Op: msg.Write, Target: f, Size: 4096})
	eng.Run()
	if cl.nodes[other].Stats.WritesAbsorbed != 1 {
		t.Fatalf("writes absorbed = %d", cl.nodes[other].Stats.WritesAbsorbed)
	}
	if cl.nodes[other].Stats.Forwarded != fwdBefore {
		t.Fatal("replica write was forwarded")
	}
	// Not yet visible at the authority...
	if f.Size == 4096 {
		t.Fatal("size applied before flush")
	}
	if !partition.TagsOf(f).HasReplica(other) {
		t.Fatal("replica bit missing")
	}
	if partition.TagsOf(f).UnflushedWriters == 0 {
		t.Fatal("unflushed-writer mask not set")
	}
	// ...until the replica flushes.
	cl.nodes[other].flushWrites(eng.Now())
	eng.Run()
	if f.Size != 4096 {
		t.Fatalf("size after flush = %d", f.Size)
	}
	if partition.TagsOf(f).UnflushedWriters != 0 {
		t.Fatal("mask not cleared after flush")
	}
	if cl.nodes[other].Stats.WriteFlushes != 1 {
		t.Fatalf("flushes = %d", cl.nodes[other].Stats.WriteFlushes)
	}
}

func TestWriteMonotoneMaxWins(t *testing.T) {
	eng := sim.NewEngine()
	cl, tree, strat := buildCluster(t, eng, 3, func(tr *namespace.Tree) partition.Strategy {
		return partition.NewStaticSubtree(3, tr, 2)
	}, true)
	f := lookup(t, tree, "/home/u2/f0")
	auth := strat.Authority(f)
	replicateFile(t, eng, cl, auth, f)

	a, b := (auth+1)%3, (auth+2)%3
	cl.nodes[a].Receive(&msg.Request{ID: 1, Op: msg.Write, Target: f, Size: 1000})
	cl.nodes[b].Receive(&msg.Request{ID: 2, Op: msg.Write, Target: f, Size: 9000})
	cl.nodes[a].Receive(&msg.Request{ID: 3, Op: msg.Write, Target: f, Size: 500})
	eng.Run()
	cl.nodes[a].flushWrites(eng.Now())
	cl.nodes[b].flushWrites(eng.Now())
	eng.Run()
	if f.Size != 9000 {
		t.Fatalf("size = %d, want max 9000", f.Size)
	}
}

func TestStatCallbackCollectsUnflushed(t *testing.T) {
	eng := sim.NewEngine()
	cl, tree, strat := buildCluster(t, eng, 3, func(tr *namespace.Tree) partition.Strategy {
		return partition.NewStaticSubtree(3, tr, 2)
	}, true)
	f := lookup(t, tree, "/home/u3/f0")
	auth := strat.Authority(f)
	replicateFile(t, eng, cl, auth, f)

	other := (auth + 1) % 3
	cl.nodes[other].Receive(&msg.Request{ID: 1, Op: msg.Write, Target: f, Size: 7777})
	eng.Run()
	// A stat at the authority must observe the unflushed write.
	cl.nodes[auth].Receive(&msg.Request{ID: 2, Op: msg.Stat, Target: f})
	eng.Run()
	if cl.nodes[auth].Stats.SizeCallbacks != 1 {
		t.Fatalf("size callbacks = %d", cl.nodes[auth].Stats.SizeCallbacks)
	}
	if f.Size != 7777 {
		t.Fatalf("stat observed size %d, want 7777", f.Size)
	}
	if partition.TagsOf(f).UnflushedWriters != 0 {
		t.Fatal("mask not cleared by callback")
	}
	// A second stat needs no callback.
	cl.nodes[auth].Receive(&msg.Request{ID: 3, Op: msg.Stat, Target: f})
	eng.Run()
	if cl.nodes[auth].Stats.SizeCallbacks != 1 {
		t.Fatal("redundant callback issued")
	}
}

func TestWriteAtAuthorityAppliesDirectly(t *testing.T) {
	eng := sim.NewEngine()
	cl, tree, _ := buildCluster(t, eng, 1, func(tr *namespace.Tree) partition.Strategy {
		return partition.NewStaticSubtree(1, tr, 2)
	}, false)
	f := lookup(t, tree, "/home/u0/f0")
	cl.nodes[0].Receive(&msg.Request{ID: 1, Op: msg.Write, Target: f, Size: 123})
	eng.Run()
	if f.Size != 123 {
		t.Fatalf("size = %d", f.Size)
	}
	// Shrinking writes are ignored (monotone).
	cl.nodes[0].Receive(&msg.Request{ID: 2, Op: msg.Write, Target: f, Size: 5})
	eng.Run()
	if f.Size != 123 {
		t.Fatalf("monotonicity violated: %d", f.Size)
	}
	if cl.nodes[0].Stats.Commits == 0 {
		t.Fatal("write not committed")
	}
}

func TestWriteForwardedWithoutReplica(t *testing.T) {
	eng := sim.NewEngine()
	cl, tree, strat := buildCluster(t, eng, 2, func(tr *namespace.Tree) partition.Strategy {
		return partition.NewStaticSubtree(2, tr, 2)
	}, false)
	f := lookup(t, tree, "/home/u0/f0")
	auth := strat.Authority(f)
	other := (auth + 1) % 2
	cl.nodes[other].Receive(&msg.Request{ID: 1, Op: msg.Write, Target: f, Size: 55})
	eng.Run()
	if cl.nodes[other].Stats.Forwarded != 1 {
		t.Fatal("write without replica not forwarded")
	}
	if f.Size != 55 {
		t.Fatalf("size = %d", f.Size)
	}
}

func TestPreemptiveReplication(t *testing.T) {
	eng := sim.NewEngine()
	tree := namespace.NewTree()
	home, _ := tree.Mkdir(tree.Root, "home")
	u, _ := tree.Mkdir(home, "u0")
	f, _ := tree.Create(u, "hot")

	strat := partition.NewStaticSubtree(3, tree, 2)
	tc := &core.TrafficControl{
		Enabled:              true,
		ReplicateThreshold:   1e9, // authority never pushes
		UnreplicateThreshold: 1,
		PreemptiveThreshold:  5,
	}
	cl := newTestCluster(eng, tree, 3)
	for i := 0; i < 3; i++ {
		cl.nodes = append(cl.nodes, New(i, eng, testMDSConfig(), strat, tc, cl))
	}
	auth := strat.Authority(f)
	other := (auth + 1) % 3

	// Flood the wrong node: it forwards, then preemptively replicates.
	for i := 0; i < 10; i++ {
		cl.nodes[other].Receive(&msg.Request{ID: uint64(i), Op: msg.Open, Target: f})
	}
	eng.Run()
	if tc.Preemptive == 0 {
		t.Fatal("no preemptive replication under forward flood")
	}
	if !cl.nodes[other].Cache().Contains(f.ID) {
		t.Fatal("flooded node did not cache the item")
	}
	// Subsequent reads at the flooded node are served locally.
	before := cl.nodes[other].Stats.Forwarded
	cl.nodes[other].Receive(&msg.Request{ID: 100, Op: msg.Stat, Target: f})
	eng.Run()
	if cl.nodes[other].Stats.Forwarded != before {
		t.Fatal("read still forwarded after preemptive replication")
	}
}

package endure

import (
	"fmt"

	"dynmds/internal/chaos"
	"dynmds/internal/fault"
	"dynmds/internal/harness"
	"dynmds/internal/sim"
)

// SoakOptions configures a rolling chaos soak: an endurance run under a
// rolling-upgrade fault schedule, with simfsck gating every checkpoint
// and shrink-from-checkpoint on failure.
type SoakOptions struct {
	// Base is the endurance configuration; its cluster Faults field is
	// overwritten with the generated rolling schedule.
	Base Options
	// Seed keys the rolling schedule's jitter.
	Seed int64
	// Cycles is the number of crash/recover cycles (0 means 10).
	Cycles int
	// Outage is the per-cycle downtime (0 derives it from the spacing).
	Outage sim.Time
	// ShrinkBudget caps predicate evaluations during shrinking
	// (0 means the harness default).
	ShrinkBudget int
	// MaxDrift, when positive, fails the soak if throughput over the
	// curve degrades by more than this fraction (1 − last/peak).
	MaxDrift float64
}

// SoakReport is the outcome of a rolling chaos soak.
type SoakReport struct {
	// Schedule is the generated rolling fault schedule.
	Schedule string `json:"schedule"`
	// Result is the finished run (nil when a checkpoint failed simfsck).
	Result *Result `json:"result,omitempty"`
	// Drift is the throughput degradation over the curve, when Result
	// is present.
	Drift float64 `json:"drift"`
	// Failure describes the first gate violation, nil on success.
	Failure *SoakFailure `json:"failure,omitempty"`
}

// SoakFailure captures a failed soak gate with everything needed to
// reproduce it.
type SoakFailure struct {
	// Checkpoint is the index of the checkpoint that failed (−1 for a
	// run-level failure such as excessive drift).
	Checkpoint int `json:"checkpoint"`
	// Err is the violation.
	Err string `json:"err"`
	// Shrunk is the minimized schedule that still reproduces the
	// failure (empty when shrinking was not applicable).
	Shrunk string `json:"shrunk,omitempty"`
	// Evals is the number of shrink predicate evaluations spent.
	Evals int `json:"evals"`
	// RestartFrom is the snapshot file the shrink predicate restarted
	// candidate runs from (empty when shrinking ran from scratch).
	RestartFrom string `json:"restart_from,omitempty"`
	// Repro is a one-line reproduction command.
	Repro string `json:"repro"`
}

// Soak runs the endurance plane under a generated rolling-upgrade fault
// schedule. Every checkpoint is gated by simfsck; on a violation the
// schedule is shrunk to a minimal reproducer, restarting candidate runs
// from the last good checkpoint's snapshot when one exists (so each
// predicate evaluation replays only the failing tail, not the whole
// soak). The returned report always has Schedule set; exactly one of
// Result or Failure is set.
func Soak(opt SoakOptions) (*SoakReport, error) {
	sched := chaos.GenerateRolling(chaos.RollingConfig{
		Seed:    opt.Seed,
		NumMDS:  opt.Base.Cluster.NumMDS,
		Cycles:  opt.Cycles,
		Horizon: opt.Base.Cluster.Duration,
		Outage:  opt.Outage,
	})
	opt.Base.Cluster.Faults = sched.String()
	rep := &SoakReport{Schedule: opt.Base.Cluster.Faults}

	res, err := Run(opt.Base)
	if err != nil {
		fe, ok := IsFsck(err)
		if !ok {
			return nil, err
		}
		rep.Failure = shrinkFailure(opt, sched, fe)
		return rep, nil
	}
	rep.Result, rep.Drift = res, res.Drift()
	if opt.MaxDrift > 0 && rep.Drift > opt.MaxDrift {
		rep.Failure = &SoakFailure{
			Checkpoint: -1,
			Err: fmt.Sprintf("throughput drift %.3f exceeds the %.3f gate (curve peak→last)",
				rep.Drift, opt.MaxDrift),
			Repro: reproLine(&opt.Base, rep.Schedule, ""),
		}
		rep.Result = nil
	}
	return rep, nil
}

// shrinkFailure minimizes the schedule behind a checkpoint simfsck
// violation. Candidate runs restart from the last snapshot before the
// failing checkpoint when the run wrote one — the fault-plane RNG
// resumes from its recorded draw position, so the replayed tail is
// self-consistent with the original run's prefix.
func shrinkFailure(opt SoakOptions, sched *fault.Schedule, fe *FsckError) *SoakFailure {
	f := &SoakFailure{Checkpoint: fe.Checkpoint, Err: fe.Err.Error()}
	f.RestartFrom = priorSnapshot(&opt.Base, fe.Checkpoint)

	fails := func(cand *fault.Schedule) bool {
		c := opt.Base
		c.Cluster.Faults = cand.String()
		c.Dir = "" // candidates probe only; never overwrite the soak's snapshots
		var err error
		if f.RestartFrom != "" {
			_, err = Restore(c, f.RestartFrom)
		} else {
			_, err = Run(c)
		}
		// Only the original violation class counts: restore errors
		// (e.g. a candidate emptied past the fault plane's presence
		// check) are not reproductions.
		_, isFsck := IsFsck(err)
		return isFsck
	}
	shrunk, evals := harness.ShrinkSchedule(sched, fails, opt.ShrinkBudget)
	f.Shrunk, f.Evals = shrunk.String(), evals
	f.Repro = reproLine(&opt.Base, f.Shrunk, f.RestartFrom)
	return f
}

// priorSnapshot returns the snapshot path for the checkpoint before
// failed, or "" when there is none (failed == 0 or writing disabled).
func priorSnapshot(o *Options, failed int) string {
	if o.Dir == "" || failed <= 0 {
		return ""
	}
	return snapshotPath(o.Dir, failed-1)
}

// reproLine renders a one-line reproduction command in the mdsim CLI
// vocabulary, including the checkpoint snapshot the shrink restarted
// from so the failure replays from mid-run, not from scratch.
func reproLine(o *Options, faults, restartFrom string) string {
	cfg := o.Cluster
	line := fmt.Sprintf("mdsim -strategy %s -mds %d -clients %d -seed %d -dur %g -warmup %g",
		cfg.Strategy, cfg.NumMDS, cfg.ClientsPerMDS, cfg.Seed,
		cfg.Duration.Seconds(), cfg.Warmup.Seconds())
	if cfg.OpenLoop != nil {
		line += fmt.Sprintf(" -open-loop %d -open-rate %g", cfg.OpenLoop.Clients, cfg.OpenLoop.Rate)
	}
	line += fmt.Sprintf(" -endure -checkpoint-every %g", o.Every.Seconds())
	if cfg.Shards > 1 {
		line += fmt.Sprintf(" -shards %d", cfg.Shards)
	}
	if faults != "" {
		line += fmt.Sprintf(" -faults %q", faults)
	}
	if restartFrom != "" {
		line += fmt.Sprintf(" -restore %q", restartFrom)
	}
	return line
}

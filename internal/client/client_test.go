package client

import (
	"testing"

	"dynmds/internal/msg"
	"dynmds/internal/namespace"
	"dynmds/internal/partition"
	"dynmds/internal/sim"
	"dynmds/internal/workload"
)

// fakeNet records sends and can synthesize replies.
type fakeNet struct {
	n     int
	sends []struct {
		mds int
		req *msg.Request
	}
}

func (f *fakeNet) Send(i int, req *msg.Request) {
	f.sends = append(f.sends, struct {
		mds int
		req *msg.Request
	}{i, req})
}
func (f *fakeNet) NumMDS() int { return f.n }

// fixedGen always returns the same op.
type fixedGen struct{ op workload.Op }

func (g fixedGen) Next(now sim.Time, r *sim.RNG) (workload.Op, bool) { return g.op, true }
func (g fixedGen) Observe(rep *msg.Reply)                            {}

// replyTo builds a reply the way the MDS does: identity and issue time
// copied by value from the request.
func replyTo(req *msg.Request, completed sim.Time) *msg.Reply {
	return &msg.Reply{
		Req: req, Client: req.Client, ID: req.ID, Gen: req.Gen,
		Issued: req.Issued, Completed: completed,
	}
}

func testTree(t *testing.T) (*namespace.Tree, *namespace.Inode) {
	t.Helper()
	tr := namespace.NewTree()
	d, err := tr.Mkdir(tr.Root, "home")
	if err != nil {
		t.Fatal(err)
	}
	u, err := tr.Mkdir(d, "u0")
	if err != nil {
		t.Fatal(err)
	}
	f, err := tr.Create(u, "f")
	if err != nil {
		t.Fatal(err)
	}
	return tr, f
}

func TestClientComputableDirection(t *testing.T) {
	tr, f := testTree(t)
	_ = tr
	eng := sim.NewEngine()
	net := &fakeNet{n: 5}
	strat := partition.FileHash{N: 5}
	c := New(0, eng, Config{ThinkMean: sim.Millisecond}, sim.NewRNG(1), net, strat,
		fixedGen{workload.Op{Op: msg.Stat, Target: f}})
	c.Start(0)
	eng.RunUntil(sim.Millisecond)
	if len(net.sends) != 1 {
		t.Fatalf("sends = %d", len(net.sends))
	}
	if got, want := net.sends[0].mds, strat.Authority(f); got != want {
		t.Fatalf("directed to %d, want computed authority %d", got, want)
	}
	// Create ops route by would-be name.
	net2 := &fakeNet{n: 5}
	c2 := New(1, eng, Config{}, sim.NewRNG(2), net2, strat,
		fixedGen{workload.Op{Op: msg.Create, Target: f.Parent(), NewName: "x"}})
	c2.Start(0)
	eng.Run()
	if got, want := net2.sends[0].mds, strat.AuthorityForName(f.Parent(), "x"); got != want {
		t.Fatalf("create directed to %d, want %d", got, want)
	}
}

func TestDeepestKnownPrefixDirection(t *testing.T) {
	tr, f := testTree(t)
	_ = tr
	eng := sim.NewEngine()
	net := &fakeNet{n: 8}
	strat := partition.NewStaticSubtree(8, tr, 2)
	c := New(0, eng, Config{ThinkMean: sim.Millisecond}, sim.NewRNG(3), net, strat,
		fixedGen{workload.Op{Op: msg.Stat, Target: f}})

	// With no knowledge, direction is random; with a hint on the
	// parent dir, direction follows the hint.
	c.hints.Put(0, msg.Hint{Ino: f.Parent().ID, Authority: 6})
	c.Start(0)
	eng.RunUntil(sim.Millisecond)
	if net.sends[0].mds != 6 {
		t.Fatalf("directed to %d, want hinted 6", net.sends[0].mds)
	}
	// A deeper hint on the target itself wins.
	rep := replyTo(net.sends[0].req, eng.Now())
	rep.Hints = []msg.Hint{{Ino: f.ID, Authority: 3}}
	c.OnReply(rep)
	eng.Run()
	if net.sends[1].mds != 3 {
		t.Fatalf("directed to %d, want deeper hint 3", net.sends[1].mds)
	}
	// Replicated hints spread direction across the cluster.
	c.hints.Put(0, msg.Hint{Ino: f.ID, Authority: 3, Replicated: true})
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		req := &msg.Request{Target: f, Op: msg.Stat}
		seen[c.direct(req)] = true
	}
	if len(seen) < 3 {
		t.Fatalf("replicated direction not spread: %v", seen)
	}
}

func TestClosedLoopAndLatency(t *testing.T) {
	tr, f := testTree(t)
	_ = tr
	eng := sim.NewEngine()
	net := &fakeNet{n: 2}
	strat := partition.FileHash{N: 2}
	c := New(0, eng, Config{ThinkMean: sim.Millisecond}, sim.NewRNG(4), net, strat,
		fixedGen{workload.Op{Op: msg.Stat, Target: f}})
	c.Start(0)
	eng.RunUntil(sim.Millisecond)
	// One outstanding request; no more until the reply arrives.
	if c.Stats.Issued != 1 {
		t.Fatalf("issued = %d", c.Stats.Issued)
	}
	req := net.sends[0].req
	c.OnReply(replyTo(req, req.Issued+500*sim.Microsecond))
	eng.RunUntil(20 * sim.Millisecond)
	if c.Stats.Completed != 1 {
		t.Fatalf("completed = %d", c.Stats.Completed)
	}
	if c.Stats.Issued < 2 {
		t.Fatal("no follow-up request after reply")
	}
	if c.Stats.Latency.Mean() <= 0 {
		t.Fatal("latency not recorded")
	}
	c.Stop()
	issued := c.Stats.Issued
	// A stale duplicate of the first operation (id 1, gen 0) must not
	// match whatever is in flight now.
	c.OnReply(&msg.Reply{Client: 0, ID: 1, Completed: eng.Now()})
	eng.Run()
	if c.Stats.Issued != issued {
		t.Fatal("stopped client issued more requests")
	}
}

func TestClientKnownLocationsBound(t *testing.T) {
	tr, f := testTree(t)
	_ = tr
	eng := sim.NewEngine()
	net := &fakeNet{n: 2}
	c := New(0, eng, Config{KnownCap: 4}, sim.NewRNG(5), net,
		partition.NewStaticSubtree(2, tr, 2),
		fixedGen{workload.Op{Op: msg.Stat, Target: f}})
	for i := 0; i < 100; i++ {
		c.hints.Put(0, msg.Hint{Ino: namespace.InodeID(1000 + i), Authority: 0})
	}
	if c.KnownLocations() > 4 {
		t.Fatalf("known locations = %d, cap 4", c.KnownLocations())
	}
	eng.Run()
}

func TestRetryOnTimeout(t *testing.T) {
	tr, f := testTree(t)
	_ = tr
	eng := sim.NewEngine()
	net := &fakeNet{n: 4}
	c := New(0, eng, Config{ThinkMean: sim.Millisecond, RetryTimeout: 10 * sim.Millisecond},
		sim.NewRNG(9), net, partition.FileHash{N: 4},
		fixedGen{workload.Op{Op: msg.Stat, Target: f}})
	c.Start(0)
	eng.RunUntil(35 * sim.Millisecond)
	// No reply ever arrives: the client must have retried ~3 times.
	if c.Stats.Retries < 2 {
		t.Fatalf("retries = %d", c.Stats.Retries)
	}
	if len(net.sends) < 3 {
		t.Fatalf("sends = %d", len(net.sends))
	}
	// All retries carry the same request.
	for _, s := range net.sends[1:] {
		if s.req != net.sends[0].req {
			t.Fatal("retry created a new request")
		}
	}
	// A reply stops the retrying and duplicates are dropped.
	req := net.sends[0].req
	c.OnReply(replyTo(req, eng.Now()))
	completed := c.Stats.Completed
	c.OnReply(replyTo(req, eng.Now()))
	if c.Stats.Completed != completed {
		t.Fatal("duplicate reply double-counted")
	}
}

func TestRetryExponentialBackoff(t *testing.T) {
	tr, f := testTree(t)
	_ = tr
	eng := sim.NewEngine()
	net := &fakeNet{n: 4}
	c := New(0, eng, Config{
		ThinkMean:       sim.Millisecond,
		RetryTimeout:    10 * sim.Millisecond,
		RetryBackoffMax: 40 * sim.Millisecond,
	}, sim.NewRNG(9), net, partition.FileHash{N: 4},
		fixedGen{workload.Op{Op: msg.Stat, Target: f}})
	c.Start(0)
	// No reply ever arrives. Resends land at 10, 30 (10+20), 70
	// (+40 capped), 110 (+40 capped), ...
	eng.RunUntil(120 * sim.Millisecond)
	wantAt := []sim.Time{0, 10, 30, 70, 110}
	if len(net.sends) != len(wantAt) {
		t.Fatalf("sends = %d, want %d", len(net.sends), len(wantAt))
	}
	for i, s := range net.sends {
		if s.req.Issued != 0 {
			t.Fatalf("send %d: issued = %v", i, s.req.Issued)
		}
	}
	if c.Stats.Retries != 4 {
		t.Errorf("retries = %d", c.Stats.Retries)
	}
}

func TestRetryResteersAwayFromLastNode(t *testing.T) {
	tr, f := testTree(t)
	_ = tr
	eng := sim.NewEngine()
	net := &fakeNet{n: 4}
	c := New(0, eng, Config{ThinkMean: sim.Millisecond, RetryTimeout: 5 * sim.Millisecond},
		sim.NewRNG(11), net, partition.NewStaticSubtree(4, tr, 2),
		fixedGen{workload.Op{Op: msg.Stat, Target: f}})
	// Seed a hint so the first send is steered; the retry must
	// invalidate it and go elsewhere.
	c.hints.Put(0, msg.Hint{Ino: f.ID, Authority: 2})
	c.Start(0)
	eng.RunUntil(200 * sim.Millisecond)
	if len(net.sends) < 3 {
		t.Fatalf("sends = %d", len(net.sends))
	}
	if net.sends[0].mds != 2 {
		t.Fatalf("first send to %d, want hinted 2", net.sends[0].mds)
	}
	if _, _, ok := c.hints.Get(0, f.ID); ok {
		t.Error("stale hint survived retry resteering")
	}
	for i := 1; i < len(net.sends); i++ {
		if net.sends[i].mds == net.sends[i-1].mds {
			t.Fatalf("retry %d resent to the same node %d", i, net.sends[i].mds)
		}
	}
}

func TestRetryMaxRetriesTimesOut(t *testing.T) {
	tr, f := testTree(t)
	_ = tr
	eng := sim.NewEngine()
	net := &fakeNet{n: 4}
	c := New(0, eng, Config{
		ThinkMean:    sim.Millisecond,
		RetryTimeout: 5 * sim.Millisecond,
		MaxRetries:   2,
	}, sim.NewRNG(13), net, partition.FileHash{N: 4},
		fixedGen{workload.Op{Op: msg.Stat, Target: f}})
	c.Start(0)
	eng.RunUntil(sim.Second)
	if c.Stats.TimedOut == 0 {
		t.Fatal("no request timed out")
	}
	// Abandoned requests free the loop: the client kept issuing.
	if c.Stats.Issued < 2 {
		t.Fatalf("issued = %d after first timeout", c.Stats.Issued)
	}
	// Max 1 + MaxRetries sends per request.
	if max := int(c.Stats.Issued) * 3; len(net.sends) > max {
		t.Fatalf("sends = %d > %d", len(net.sends), max)
	}
	// Every issued request is accounted: completed, timed out, or the
	// one still in flight.
	inflight := uint64(0)
	if c.inflight != nil {
		inflight = 1
	}
	if c.Stats.Issued != c.Stats.Completed+c.Stats.TimedOut+inflight {
		t.Fatalf("accounting: issued %d != completed %d + timedout %d + inflight %d",
			c.Stats.Issued, c.Stats.Completed, c.Stats.TimedOut, inflight)
	}
	// A late reply to an abandoned request must be ignored.
	completed := c.Stats.Completed
	c.OnReply(replyTo(net.sends[0].req, eng.Now()))
	if c.Stats.Completed != completed {
		t.Fatal("late reply to abandoned request was accepted")
	}
}

func TestStoppedClientAccountsTimeout(t *testing.T) {
	tr, f := testTree(t)
	_ = tr
	eng := sim.NewEngine()
	net := &fakeNet{n: 2}
	c := New(0, eng, Config{ThinkMean: sim.Millisecond, RetryTimeout: 5 * sim.Millisecond},
		sim.NewRNG(17), net, partition.FileHash{N: 2},
		fixedGen{workload.Op{Op: msg.Stat, Target: f}})
	c.Start(0)
	eng.RunUntil(sim.Millisecond)
	c.Stop()
	eng.RunUntil(sim.Second)
	if c.Stats.TimedOut != 1 {
		t.Fatalf("timed out = %d, want the orphaned in-flight request", c.Stats.TimedOut)
	}
	if c.inflight != nil {
		t.Fatal("in-flight request not cleared at drain")
	}
}

func TestOnCompleteHook(t *testing.T) {
	tr, f := testTree(t)
	_ = tr
	eng := sim.NewEngine()
	net := &fakeNet{n: 2}
	c := New(0, eng, Config{ThinkMean: sim.Millisecond}, sim.NewRNG(19), net,
		partition.FileHash{N: 2}, fixedGen{workload.Op{Op: msg.Stat, Target: f}})
	var calls int
	c.OnComplete = func(now sim.Time) { calls++ }
	c.Start(0)
	eng.RunUntil(sim.Millisecond)
	req := net.sends[0].req
	c.OnReply(replyTo(req, eng.Now()))
	c.OnReply(replyTo(req, eng.Now()))
	if calls != 1 {
		t.Fatalf("OnComplete calls = %d (duplicate must not count)", calls)
	}
	eng.Run()
}

func TestSetGenerator(t *testing.T) {
	tr, f := testTree(t)
	g, err := tr.Create(f.Parent(), "other")
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	net := &fakeNet{n: 2}
	c := New(0, eng, Config{}, sim.NewRNG(1), net, partition.FileHash{N: 2},
		fixedGen{workload.Op{Op: msg.Stat, Target: f}})
	c.SetGenerator(fixedGen{workload.Op{Op: msg.Stat, Target: g}})
	c.Start(0)
	eng.Run()
	if net.sends[0].req.Target != g {
		t.Fatal("generator swap ignored")
	}
}

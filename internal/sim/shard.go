package sim

// ShardGroup runs K engines ("logical processes" in conservative
// parallel DES terms) in lockstep lookahead windows. Within a window
// [cur, end) every shard dispatches its own events independently — in
// parallel mode each on its own goroutine — and may only read shared
// state; cross-shard effects travel through mailboxes (internal/net) and
// deferred mutations (Engine.Defer), both merged deterministically at
// the window barrier. The window width is bounded by the minimum
// cross-shard delivery latency (the lookahead), so a message sent inside
// a window can never be due before the barrier that merges it: no shard
// ever receives an event in its past.
//
// Windows are also cut at the global engine's next event time, so
// cluster-wide serial work (balancer rounds, fault injection, warmup
// snapshots) runs exactly on time, between windows, with every shard
// clock aligned.
type ShardGroup struct {
	shards    []*Engine
	global    *Engine
	lookahead Time
	parallel  bool
	// barrier runs after every window with all clocks at now. It is
	// responsible for draining cross-shard mailboxes, applying deferred
	// mutations (ApplyDeferred), and dispatching global events up to now.
	barrier func(now Time)

	cmd    []chan Time
	done   chan struct{}
	gopIdx []int

	// Windows counts lookahead windows executed.
	Windows uint64
}

// NewShardGroup builds an executor over the shard engines, a global
// engine for barrier-phase events, and a positive lookahead bound.
// parallel selects goroutine-per-shard window execution; with it false
// the same windows run on the calling goroutine in shard order, with
// identical results for a fixed shard count.
func NewShardGroup(shards []*Engine, global *Engine, lookahead Time, parallel bool, barrier func(now Time)) *ShardGroup {
	if len(shards) == 0 {
		panic("sim: shard group needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: shard lookahead must be positive")
	}
	for _, s := range shards {
		s.SetDeferring(true)
	}
	return &ShardGroup{
		shards:    shards,
		global:    global,
		lookahead: lookahead,
		parallel:  parallel,
		barrier:   barrier,
		gopIdx:    make([]int, len(shards)),
	}
}

// Shards returns the shard engines, indexed by shard.
func (g *ShardGroup) Shards() []*Engine { return g.shards }

// Global returns the barrier-phase engine.
func (g *ShardGroup) Global() *Engine { return g.global }

// ExecutedEvents sums events dispatched across the shard and global
// engines.
func (g *ShardGroup) ExecutedEvents() uint64 {
	n := g.global.Executed
	for _, s := range g.shards {
		n += s.Executed
	}
	return n
}

// Run advances all shards to end in lockstep lookahead windows, calling
// the barrier after each. Events scheduled exactly at end run last, in
// shard order, matching RunUntil's closed upper bound. Run may be called
// repeatedly (e.g. a measured run followed by a drain phase).
func (g *ShardGroup) Run(end Time) {
	cur := g.global.Now()
	// Dispatch any global work due immediately (t=0 fault rules, etc.)
	// so the window-sizing loop below always sees a strictly future
	// global event.
	g.barrier(cur)
	g.startWorkers()
	for cur < end {
		w := end
		for _, s := range g.shards {
			if t, ok := s.NextEventTime(); ok && t+g.lookahead < w {
				w = t + g.lookahead
			}
		}
		if t, ok := g.global.NextEventTime(); ok && t < w {
			w = t
		}
		if w <= cur {
			// Defensive: the barrier drained global events <= cur and
			// shard events sit at >= cur, so this cannot happen; never
			// stall if it somehow does.
			w = cur + g.lookahead
		}
		if g.parallel {
			for _, c := range g.cmd {
				c <- w
			}
			for range g.shards {
				<-g.done
			}
		} else {
			for _, s := range g.shards {
				s.RunWindow(w)
			}
		}
		g.Windows++
		cur = w
		g.barrier(cur)
	}
	g.stopWorkers()
	// Closed final step: events at exactly end, sequential in shard
	// order, then one more barrier for their deferred effects.
	for _, s := range g.shards {
		s.RunUntil(end)
	}
	g.barrier(end)
}

// ApplyDeferred applies every shard's deferred-mutation buffer in
// (time, shard, sequence) order. It runs on the barrier goroutine with
// all shard clocks aligned; deferral is suspended for the duration, so
// mutations triggered transitively (e.g. an eviction notification fired
// by a cache insert inside a deferred update) apply inline.
func (g *ShardGroup) ApplyDeferred() {
	for _, s := range g.shards {
		s.SetDeferring(false)
	}
	idx := g.gopIdx
	for i := range idx {
		idx[i] = 0
	}
	for {
		best := -1
		var bt Time
		for i, s := range g.shards {
			if idx[i] >= len(s.gops) {
				continue
			}
			if t := s.gops[idx[i]].at; best < 0 || t < bt {
				best, bt = i, t
			}
		}
		if best < 0 {
			break
		}
		op := g.shards[best].gops[idx[best]]
		idx[best]++
		op.fn(op.a, op.b)
	}
	for _, s := range g.shards {
		for i := range s.gops {
			s.gops[i] = gop{}
		}
		s.gops = s.gops[:0]
		s.SetDeferring(true)
	}
}

func (g *ShardGroup) startWorkers() {
	if !g.parallel {
		return
	}
	g.done = make(chan struct{}, len(g.shards))
	g.cmd = make([]chan Time, len(g.shards))
	for i := range g.shards {
		g.cmd[i] = make(chan Time, 1)
		go func(e *Engine, cmd chan Time) {
			for w := range cmd {
				e.RunWindow(w)
				g.done <- struct{}{}
			}
		}(g.shards[i], g.cmd[i])
	}
}

func (g *ShardGroup) stopWorkers() {
	if !g.parallel {
		return
	}
	for _, c := range g.cmd {
		close(c)
	}
	g.cmd = nil
}

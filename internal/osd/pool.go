package osd

import (
	"fmt"

	"dynmds/internal/sim"
)

// Config sets the device service model.
type Config struct {
	// NumOSDs is the pool size.
	NumOSDs int
	// Replicas per object (reads go to the primary, falling over to
	// the next replica when a device is down).
	Replicas int
	// ReadLatency is the average positioning cost per object read.
	ReadLatency sim.Time
	// ReadPerRecord is the transfer cost per metadata record.
	ReadPerRecord sim.Time
	// WriteLatency is the cost of a (log or tier) object write.
	WriteLatency sim.Time
}

// DefaultConfig models a modest pool of 2004-era disks.
func DefaultConfig(n int) Config {
	return Config{
		NumOSDs:       n,
		Replicas:      2,
		ReadLatency:   8 * sim.Millisecond,
		ReadPerRecord: 10 * sim.Microsecond,
		WriteLatency:  500 * sim.Microsecond,
	}
}

// Stats counts pool activity.
type Stats struct {
	Reads          uint64
	Writes         uint64
	RecordsRead    uint64
	FailoverReads  uint64 // reads redirected past a down primary
	UnplacedErrors uint64 // reads with no live replica
}

// Pool is the shared object store: a set of OSD service centres plus
// the deterministic placement function. All MDS nodes share one pool —
// that is what makes metadata takeover after an MDS failure possible
// without moving any data (§2.1.3).
type Pool struct {
	cfg       Config
	placement *Placement
	devs      []*sim.Server
	down      []bool

	Stats Stats
}

// NewPool creates the pool on the engine.
func NewPool(eng *sim.Engine, cfg Config) (*Pool, error) {
	if cfg.NumOSDs < 1 {
		return nil, fmt.Errorf("osd: pool needs at least one device")
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	pl, err := NewPlacement(cfg.NumOSDs)
	if err != nil {
		return nil, err
	}
	p := &Pool{cfg: cfg, placement: pl}
	for i := 0; i < cfg.NumOSDs; i++ {
		p.devs = append(p.devs, sim.NewServer(eng, 1))
		p.down = append(p.down, false)
	}
	return p, nil
}

// Placement exposes the placement function (for tests and tools).
func (p *Pool) Placement() *Placement { return p.placement }

// SetDown marks a device failed or recovered.
func (p *Pool) SetDown(dev int, down bool) error {
	if dev < 0 || dev >= len(p.devs) {
		return fmt.Errorf("osd: device %d out of range", dev)
	}
	p.down[dev] = down
	return nil
}

// Read fetches an object of the given record count: placement picks the
// primary; a down primary fails over to the next replica. done runs at
// completion; if no replica is alive the read is dropped and counted.
func (p *Pool) Read(obj ObjectID, records int, done func()) {
	if records < 1 {
		records = 1
	}
	for i, dev := range p.placement.Replicas(obj, p.cfg.Replicas) {
		if p.down[dev] {
			continue
		}
		if i > 0 {
			p.Stats.FailoverReads++
		}
		p.Stats.Reads++
		p.Stats.RecordsRead += uint64(records)
		p.devs[dev].Submit(p.cfg.ReadLatency+sim.Time(records)*p.cfg.ReadPerRecord, done)
		return
	}
	p.Stats.UnplacedErrors++
}

// Write appends to an object at every live replica; done runs when the
// slowest live replica acknowledges.
func (p *Pool) Write(obj ObjectID, done func()) {
	replicas := p.placement.Replicas(obj, p.cfg.Replicas)
	outstanding := 0
	for _, dev := range replicas {
		if p.down[dev] {
			continue
		}
		outstanding++
	}
	if outstanding == 0 {
		p.Stats.UnplacedErrors++
		return
	}
	remaining := outstanding
	for _, dev := range replicas {
		if p.down[dev] {
			continue
		}
		p.Stats.Writes++
		p.devs[dev].Submit(p.cfg.WriteLatency, func() {
			remaining--
			if remaining == 0 && done != nil {
				done()
			}
		})
	}
}

// Utilization returns mean device occupancy across the pool.
func (p *Pool) Utilization(now sim.Time) float64 {
	var sum float64
	for _, d := range p.devs {
		sum += d.Utilization(now)
	}
	return sum / float64(len(p.devs))
}

// Package library seeds the plan engine with production-shaped
// scenarios drawn from the metadata-workload literature: MIDAS-style
// create hotspots, CFS-style container small-file churn, SimFS-style
// analysis campaigns, a cross-authority rename storm, and a
// multi-tenant composite. Each scenario is authored in the plan DSL —
// the Go layer only parses and validates, so `mdsim -plan <name>` and a
// plan file on disk go through the identical path.
package library

import (
	"fmt"
	"sort"
	"sync"

	"dynmds/internal/plan"
)

var sources = []string{midasSrc, cfsSrc, simfsSrc, renameStormSrc, multiTenantSrc, duelSrc, agingSrc}

var (
	once  sync.Once
	plans []*plan.Plan
	byKey map[string]*plan.Plan
)

func load() {
	byKey = make(map[string]*plan.Plan, len(sources))
	for _, src := range sources {
		p, err := plan.Parse(src)
		if err == nil {
			err = p.Validate()
		}
		if err != nil {
			panic(fmt.Sprintf("plan library: %v", err))
		}
		if byKey[p.Name] != nil {
			panic("plan library: duplicate plan " + p.Name)
		}
		byKey[p.Name] = p
		plans = append(plans, p)
	}
	sort.Slice(plans, func(i, j int) bool { return plans[i].Name < plans[j].Name })
}

// All returns every library plan, parsed and validated, in name order.
func All() []*plan.Plan {
	once.Do(load)
	return plans
}

// ByName finds a library plan.
func ByName(name string) (*plan.Plan, bool) {
	once.Do(load)
	p, ok := byKey[name]
	return p, ok
}

// midasSrc: MIDAS (PAPERS.md) observes single-directory create storms —
// a burst job materialising millions of entries under one directory —
// as the canonical metadata hotspot. The storm directs 80% of draws at
// one home while background stat traffic continues, swept across the
// dynamic and hashed strategies so the load-spread column shows who
// absorbs it.
const midasSrc = `plan midas-create-hotspot
describe MIDAS-style create storm: one home directory absorbs most creates over a stat baseline.
fs users=40 projects=8
cluster mds=8 cache=2500 bucket=500ms
traffic clients=4000 rate=1 tenants=64 file-skew=0.8
matrix strategy=DynamicSubtree,FileHash
warmup 2s
duration 20s
act phase calm @2s-6s
act hotspot storm @6s-14s rate=x4 mix=stat:20,create:80 target=/home/u0000 frac=0.8
act phase cool @14s-20s
optimize ops p99 load-spread
`

// cfsSrc: CFS (PAPERS.md) characterises container platforms as
// small-file churn — deploy waves create and rename thousands of layer
// files, then settle into stat-heavy steady state with periodic GC
// passes that walk and migrate entries.
const cfsSrc = `plan cfs-small-file-churn
describe CFS-style container churn: deploy waves of creates and renames, stat-heavy steady state, then a GC pass.
fs users=60
cluster mds=8 cache=2500 bucket=500ms
traffic clients=4000 rate=1 tenants=128 file-skew=1 working-set=256
warmup 2s
duration 20s
act phase deploy @2s-8s rate=x3 mix=stat:30,readdir:10,create:50,rename:10
act phase steady @8s-14s mix=stat:70,readdir:15,chmod:10,create:5
act phase gc @14s-20s rate=x2 mix=stat:20,readdir:20,rename:60
optimize ops p99
`

// simfsSrc: SimFS-style analysis campaign — readdir scans enumerate
// project trees at low popularity skew, then a bulk-stat pass hammers
// the hot entries the scan surfaced (skew retargeted upward mid-run).
const simfsSrc = `plan simfs-campaign
describe SimFS-style campaign: readdir scans over project trees, then a skewed bulk-stat pass.
fs users=20 projects=16
cluster mds=8 cache=2500 bucket=500ms
traffic clients=3000 rate=1 tenants=48 working-set=384
warmup 2s
duration 20s
act phase scan @2s-10s mix=readdir:70,stat:30 skew=0.4
act phase bulk-stat @10s-18s rate=x3 mix=stat:95,chmod:5 skew=1.4
optimize ops p50 p99
`

// renameStormSrc: rename is the op that drags entries across authority
// boundaries (§4 of the paper: fixed-position metadata vs dynamic
// redistribution). The storm makes 60% of traffic cross-tenant renames
// and the fwd column shows the forwarding cost each strategy pays.
const renameStormSrc = `plan rename-storm
describe Rename/migration storm: cross-tenant renames drag entries across authority boundaries.
fs users=40
cluster mds=8 cache=2500 bucket=500ms
traffic clients=4000 rate=1 tenants=64 tenant-skew=0.8
warmup 2s
duration 20s
act phase calm @2s-8s
act phase storm @8s-14s rate=x2 mix=stat:30,readdir:10,rename:60
act phase settle @14s-20s
optimize ops p99 fwd
`

// duelSrc: the hotspot duel pits the client-coherence mechanisms
// against each other under a flash crowd. A dumb client round-trips
// every hotspot read to the authority; the lease plane serves repeats
// from the client slab with zero fabric hops; replica fan-out pushes
// the hot directory to peers ahead of demand so the remote reads that
// remain spread across the cluster. The headline is the hot column —
// local+remote ops served at the hotspot per mechanism — read against
// ops and load-spread. The crowd itself is read-only (a flash crowd is
// a read storm, and any mutation at the hot record would recall every
// lease); the closing churn act mutates the records the crowd leased,
// so recall-on-mutate runs against a slab full of live leases.
const duelSrc = `plan hotspot-duel
describe Hotspot duel: dumb clients vs leases vs replica fan-out vs both under a flash crowd.
fs users=40 projects=8
cluster mds=8 cache=2500 bucket=500ms
traffic clients=20000 rate=0.5 tenants=64 file-skew=0.8
matrix mechanism=dumb,leases,fanout,both
matrix strategy=StaticSubtree,DynamicSubtree
warmup 2s
duration 16s
act phase calm @2s-5s
act hotspot crowd @5s-13s rate=x3 mix=stat:90,readdir:10 target=/home/u0000 frac=0.7
act phase churn @13s-16s mix=stat:40,chmod:30,create:30
optimize hot ops p99 load-spread
`

// agingSrc: the endurance plane's churn shape as a plan — sustained
// create/rename/unlink turnover that pushes the COW overlay away from
// its frozen base (tombstones accumulate, directories fragment), with a
// stat-heavy settle so the aged namespace is then read back through the
// overlay it degraded. `mdsim -endure` runs the same shape with
// checkpoints and simfsck; this plan exposes it to the comparison
// matrix so strategies can be ranked on an aged namespace.
const agingSrc = `plan namespace-aging
describe Namespace aging: sustained create/rename/unlink churn ages the overlay, then stat traffic reads it back.
fs users=60
cluster mds=4 cache=2500 bucket=500ms
traffic clients=4000 rate=0.5 tenants=96 file-skew=0.8
matrix strategy=DynamicSubtree,StaticSubtree
warmup 2s
duration 24s
act phase churn @2s-16s mix=stat:40,readdir:5,create:25,rename:10,unlink:20
act phase settle @16s-24s mix=stat:80,readdir:10,chmod:5,create:5
optimize ops p99 load-spread
`

// multiTenantSrc composes the other scenarios over one skewed tenant
// population: a deploy wave, a read hotspot crowd, and a bulk-stat
// pass, swept across three strategies.
const multiTenantSrc = `plan multitenant-mix
describe Multi-tenant composite: deploy churn, a read hotspot crowd, then a skewed bulk-stat pass, per strategy.
fs users=40 projects=8
cluster mds=8 cache=2500 bucket=500ms
traffic clients=4000 rate=1 tenants=96 tenant-skew=1 file-skew=1
matrix strategy=DynamicSubtree,StaticSubtree,FileHash
warmup 2s
duration 24s
act phase deploy @2s-8s rate=x2 mix=stat:40,readdir:10,create:40,rename:10
act hotspot crowd @8s-16s rate=x3 mix=stat:85,readdir:10,chmod:5 target=/home/u0001 frac=0.6
act phase bulk-stat @16s-24s mix=stat:90,chmod:10 skew=1.4
optimize ops p99 load-spread
`

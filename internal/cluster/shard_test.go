package cluster

import (
	"fmt"
	"math"
	"testing"

	"dynmds/internal/net"
	"dynmds/internal/sim"
)

// resultDigest captures every headline number of a run bit-exactly
// (floats by their IEEE-754 bits, not formatted approximations), so two
// digests being equal means the runs were observationally identical.
func resultDigest(r *Result) string {
	return fmt.Sprintf("ops=%d served=%x hit=%x fwd=%x lat=%x p50=%x p99=%x migr=%d repl=%d net=%+v wr=%d cb=%d",
		r.MeasuredOps, math.Float64bits(r.AvgThroughput),
		math.Float64bits(r.HitRate), math.Float64bits(r.ForwardFrac),
		math.Float64bits(r.MeanLatency), math.Float64bits(r.LatencyP50),
		math.Float64bits(r.LatencyP99), r.Migrations, r.Replications,
		r.Net, r.WritesAbsorbed, r.SizeCallbacks)
}

func runDigest(t *testing.T, cfg Config) string {
	t.Helper()
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return resultDigest(cl.Run())
}

// TestShardedK1IsSerial pins the degenerate-shard contract: Shards=1
// (and any count that clamps to 1) must use the serial engine verbatim
// and produce bit-identical results to Shards=0.
func TestShardedK1IsSerial(t *testing.T) {
	base := fig2QuickConfig(StratDynamic)
	serial := runDigest(t, base)

	one := base
	one.Shards = 1
	if got := runDigest(t, one); got != serial {
		t.Errorf("Shards=1 digest differs from serial:\n%s\n%s", got, serial)
	}

	clamped := base
	clamped.NumMDS = 1
	clamped.Shards = 8 // clamps to NumMDS, then to serial
	ref := clamped
	ref.Shards = 0
	if got, want := runDigest(t, clamped), runDigest(t, ref); got != want {
		t.Errorf("clamped-to-1 digest differs from serial:\n%s\n%s", got, want)
	}
}

// TestShardedDeterministic pins bit-reproducibility for a fixed shard
// count: repeated K=3 runs of the Figure 2 quick config must agree on
// every headline number, for both a table strategy (frozen-memo path)
// and a hash strategy (pure-function path).
func TestShardedDeterministic(t *testing.T) {
	for _, s := range []string{StratDynamic, StratDirHash} {
		t.Run(s, func(t *testing.T) {
			cfg := fig2QuickConfig(s)
			cfg.Shards = 3
			a, b := runDigest(t, cfg), runDigest(t, cfg)
			if a != b {
				t.Errorf("K=3 runs differ:\n%s\n%s", a, b)
			}
		})
	}
}

// TestShardedConservation checks the fabric's accounting identity holds
// across the mailbox path: after a sharded run drains, every message
// (intra- and cross-shard) was delivered exactly once and no pooled
// envelope leaked on any shard.
func TestShardedConservation(t *testing.T) {
	for _, s := range Strategies {
		t.Run(s, func(t *testing.T) {
			t.Parallel()
			cfg := fig2QuickConfig(s)
			cfg.Shards = 4
			cl, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cl.Run()
			cl.Drain()
			if n := cl.Fab.PendingMail(); n != 0 {
				t.Errorf("pending cross-shard mail after drain = %d", n)
			}
			if n := cl.Fab.InFlight(); n != 0 {
				t.Errorf("in-flight after drain = %d", n)
			}
			if n := cl.Fab.LiveEnvelopes(); n != 0 {
				t.Errorf("live envelopes after drain = %d", n)
			}
			for c := 0; c < net.NumClasses; c++ {
				cs := cl.Fab.Class(net.Class(c))
				if cs.Sent != cs.Delivered {
					t.Errorf("%s: sent %d != delivered %d", net.Class(c), cs.Sent, cs.Delivered)
				}
			}
			var issued, completed uint64
			for _, c := range cl.Clients {
				issued += c.Stats.Issued
				completed += c.Stats.Completed
			}
			req := cl.Fab.Class(net.Request)
			rep := cl.Fab.Class(net.Reply)
			if req.Sent != issued {
				t.Errorf("requests sent %d != issued %d", req.Sent, issued)
			}
			if completed != rep.Sent {
				t.Errorf("completed %d != replies sent %d", completed, rep.Sent)
			}
		})
	}
}

// TestShardedCloseToSerial is a semantic sanity check: sharding changes
// only the execution order of same-timestamp events, so the workload a
// sharded run measures must land within a tight band of the serial
// run's. (Bit-identity across different K is not expected; bounded
// drift is.)
func TestShardedCloseToSerial(t *testing.T) {
	cfg := fig2QuickConfig(StratDynamic)
	serialCl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial := serialCl.Run()
	cfg.Shards = 4
	shardedCl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded := shardedCl.Run()
	if sharded.MeasuredOps == 0 {
		t.Fatal("sharded run measured no ops")
	}
	// Same-timestamp reordering feeds back through the balancer's
	// migration decisions, so a few percent of drift is expected; an
	// order-of-magnitude gap would mean lost or duplicated work.
	drift := math.Abs(float64(sharded.MeasuredOps)-float64(serial.MeasuredOps)) / float64(serial.MeasuredOps)
	if drift > 0.10 {
		t.Errorf("sharded ops %d drifted %.1f%% from serial %d",
			sharded.MeasuredOps, drift*100, serial.MeasuredOps)
	}
	if math.Abs(sharded.HitRate-serial.HitRate) > 0.02 {
		t.Errorf("hit rate: sharded %.4f vs serial %.4f", sharded.HitRate, serial.HitRate)
	}
	if shardedCl.Windows() == 0 {
		t.Error("sharded run executed no lookahead windows")
	}
}

// TestShardedFaults runs a crash/recover schedule with message drops at
// K>1: the fault plane forces the windowed executor onto one goroutine,
// which must stay deterministic and drain cleanly.
func TestShardedFaults(t *testing.T) {
	cfg := fig2QuickConfig(StratDynamic)
	cfg.Faults = "crash@5s:mds2,recover@8s:mds2,drop@0.005:all"
	cfg.Shards = 2

	run := func() (*Cluster, string) {
		cl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d := resultDigest(cl.Run())
		return cl, d
	}
	cl, a := run()
	cl.Drain()
	if err := cl.DrainCheck(); err != nil {
		t.Errorf("drain check: %v", err)
	}
	if len(cl.Failures) == 0 {
		t.Error("no crash was injected")
	}
	_, b := run()
	if a != b {
		t.Errorf("faulty K=2 runs differ:\n%s\n%s", a, b)
	}
}

// TestShardedRejectsUnshardableConfigs pins the upfront validation.
func TestShardedRejectsUnshardableConfigs(t *testing.T) {
	cfg := fig2QuickConfig(StratDynamic)
	cfg.Shards = 2
	cfg.OSDs = 4
	if _, err := New(cfg); err == nil {
		t.Error("expected error for sharded run with shared OSD pool")
	}
	cfg = fig2QuickConfig(StratDynamic)
	cfg.Shards = 2
	cfg.MDS.NetLatency = 0
	cfg.MDS.FwdLatency = 0
	if _, err := New(cfg); err == nil {
		t.Error("expected error for sharded run with zero lookahead")
	}
}

// TestShardedEventCount checks ExecutedEvents sums shard and global
// heaps and roughly matches the serial event count for the same work.
func TestShardedEventCount(t *testing.T) {
	cfg := fig2QuickConfig(StratDynamic)
	cfg.Duration = 4 * sim.Second
	cfg.Warmup = 2 * sim.Second
	serialCl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serialCl.Run()
	cfg.Shards = 4
	shardedCl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shardedCl.Run()
	se, pe := serialCl.ExecutedEvents(), shardedCl.ExecutedEvents()
	if pe == 0 || se == 0 {
		t.Fatalf("zero executed events: serial %d sharded %d", se, pe)
	}
	// Sharded runs execute strictly more events — every cross-shard
	// message costs a sender-side departure event on top of the
	// receiver-side delivery — but the total must stay the same order.
	if ratio := float64(pe) / float64(se); ratio < 1.0 || ratio > 2.0 {
		t.Errorf("sharded executed %d events vs serial %d (ratio %.3f)", pe, se, ratio)
	}
}

package sim

// EventFunc is the engine's typed event callback. The two payload words
// carry the callback's receiver and operand (for example an *MDS and the
// *msg.Request it should process), so the overwhelmingly common
// schedule-with-receiver case stores two pointers into the event instead
// of allocating a closure per event. Pointer-shaped values (pointers,
// funcs, interfaces) convert to `any` without allocating, which keeps
// steady-state scheduling allocation-free.
type EventFunc func(a, b any)

// callFunc0 adapts a bare func() to an EventFunc. Func values are
// pointer-shaped, so the conversion to `any` does not allocate.
func callFunc0(a, b any) { a.(func())() }

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same instant so that execution order is insertion order,
// keeping the simulation deterministic. Events are stored by value in the
// engine's flat heap slice: scheduling allocates nothing once the slice
// has grown to the simulation's natural high-water mark.
type event struct {
	at   Time
	seq  uint64
	fn   EventFunc
	a, b any
}

// Engine is a discrete-event simulation executive. The zero value is not
// usable; construct with NewEngine.
//
// The queue is a hand-rolled 4-ary min-heap over a flat []event slice,
// ordered by (at, seq). Compared to container/heap it is monomorphic —
// no heap.Interface calls, no interface{} boxing on push/pop — and the
// wider fan-out halves tree depth, which matters because sift-down
// dominates: every dispatched event pays one.
type Engine struct {
	now     Time
	q       []event
	seq     uint64
	stopped bool
	// Executed counts events dispatched since construction.
	Executed uint64

	// Deferred-mutation buffer for sharded (conservative parallel)
	// execution. While deferring is set, Defer records the call instead
	// of running it; the shard barrier applies all shards' buffers in a
	// deterministic merge order. In serial execution deferring is false
	// and Defer degenerates to an immediate call, so the serial engine's
	// behaviour is bit-identical with or without Defer at the call sites.
	deferring bool
	gops      []gop
	gopSeq    uint64
}

// gop ("global op") is one deferred shared-state mutation recorded during
// a lookahead window: the virtual time it was requested at, a per-engine
// sequence number, and the call to make. Buffers are reused across
// windows, so steady-state deferral allocates nothing.
type gop struct {
	at   Time
	seq  uint64
	fn   EventFunc
	a, b any
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) panics: it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) {
	e.AtCall(t, callFunc0, fn, nil)
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d Time, fn func()) {
	e.AfterCall(d, callFunc0, fn, nil)
}

// AtCall schedules fn(a, b) at absolute virtual time t without
// allocating: the payload words ride in the event itself. Scheduling in
// the past panics, as for At.
func (e *Engine) AtCall(t Time, fn EventFunc, a, b any) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	e.q = append(e.q, event{at: t, seq: e.seq, fn: fn, a: a, b: b})
	e.siftUp(len(e.q) - 1)
}

// AfterCall schedules fn(a, b) to run d after the current time.
// Negative d panics.
func (e *Engine) AfterCall(d Time, fn EventFunc, a, b any) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.AtCall(e.now+d, fn, a, b)
}

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.q) }

// Stop makes the current Run/RunUntil call return once the executing
// event completes. Further events remain queued, untouched: anything
// they reference (pooled server jobs, client requests) stays reachable
// and is never recycled while still scheduled.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events in timestamp order until the queue is empty or
// Stop is called. The clock remains at the last dispatched event.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && len(e.q) > 0 {
		fn, a, b := e.pop()
		e.Executed++
		fn(a, b)
	}
}

// RunUntil dispatches events with timestamps <= end, then (unless Stop
// was called) advances the clock to end: idle virtual time passes.
func (e *Engine) RunUntil(end Time) {
	e.stopped = false
	for !e.stopped && len(e.q) > 0 && e.q[0].at <= end {
		fn, a, b := e.pop()
		e.Executed++
		fn(a, b)
	}
	if !e.stopped && e.now < end {
		e.now = end
	}
}

// RunWindow dispatches events with timestamps strictly before end, then
// (unless Stop was called) advances the clock to end. The half-open
// window is the sharded executor's unit of progress: events scheduled
// exactly at the barrier instant — merged cross-shard deliveries, global
// barrier work — belong to the next window.
func (e *Engine) RunWindow(end Time) {
	e.stopped = false
	for !e.stopped && len(e.q) > 0 && e.q[0].at < end {
		fn, a, b := e.pop()
		e.Executed++
		fn(a, b)
	}
	if !e.stopped && e.now < end {
		e.now = end
	}
}

// NextEventTime returns the timestamp of the earliest pending event.
// ok is false when the queue is empty.
func (e *Engine) NextEventTime() (t Time, ok bool) {
	if len(e.q) == 0 {
		return 0, false
	}
	return e.q[0].at, true
}

// SetDeferring switches the engine between immediate and deferred
// application of Defer calls. The sharded executor enables it for the
// shard engines; serial engines leave it off.
func (e *Engine) SetDeferring(on bool) { e.deferring = on }

// Deferring reports whether Defer currently buffers instead of calling.
func (e *Engine) Deferring() bool { return e.deferring }

// Defer runs fn(a, b) immediately in serial execution, or records it for
// deterministic application at the next shard barrier in sharded
// execution. Model code routes every mutation of cross-shard shared
// state (the namespace tree, per-inode tags, strategy tables) through
// Defer so that lookahead windows only ever read shared state.
func (e *Engine) Defer(fn EventFunc, a, b any) {
	if !e.deferring {
		fn(a, b)
		return
	}
	e.gopSeq++
	e.gops = append(e.gops, gop{at: e.now, seq: e.gopSeq, fn: fn, a: a, b: b})
}

// PendingDeferred reports the number of buffered deferred calls.
func (e *Engine) PendingDeferred() int { return len(e.gops) }

// less orders events by (at, seq).
func less(x, y *event) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	return x.seq < y.seq
}

// siftUp restores the heap property after appending at index i.
func (e *Engine) siftUp(i int) {
	q := e.q
	ev := q[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !less(&ev, &q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = ev
}

// pop removes the minimum event, advances the clock to it, and returns
// its callback. The vacated slot is zeroed so the payload words do not
// pin dead objects.
func (e *Engine) pop() (EventFunc, any, any) {
	q := e.q
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = event{}
	q = q[:n]
	e.q = q
	if n > 0 {
		// Sift last down from the root.
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if less(&q[j], &q[m]) {
					m = j
				}
			}
			if !less(&q[m], &last) {
				break
			}
			q[i] = q[m]
			i = m
		}
		q[i] = last
	}
	e.now = top.at
	return top.fn, top.a, top.b
}

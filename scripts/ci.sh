#!/usr/bin/env sh
# Tier-1 gate: vet, build, and run the full test suite under the race
# detector, then smoke-test the figure harness and emit a perf report.
# Run from the repository root; any failure fails the script.
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...

# Figure smoke run: exercises the sweep runner, the snapshot cache, and
# the copy-on-write overlay path end to end at reduced scale.
go run ./cmd/mdsim -fig 2 -quick

# Perf report (quick scale in CI; regenerate the committed BENCH_2.json
# with a full-scale run: `go run ./cmd/mdsim -bench-json BENCH_2.json`).
go run ./cmd/mdsim -bench-json BENCH_2.quick.json -quick

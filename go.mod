module dynmds

go 1.22

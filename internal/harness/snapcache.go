package harness

import (
	"sync"
	"sync/atomic"
	"time"

	"dynmds/internal/cluster"
	"dynmds/internal/fsgen"
)

// The snapshot cache generates each distinct file system exactly once
// per process and shares the frozen result across every run that asks
// for it — the sweep-level analogue of PR 1's per-event work: dozens of
// Figure 2 runs differ only in strategy, so they key to the same
// fsgen.Config and can all overlay one immutable base.
//
// The key is the fully resolved fsgen.Config (a comparable value type),
// with Seed already forced to the run's Seed exactly as cluster.New
// does, so two runs share a snapshot iff legacy generation would have
// produced identical trees.
//
// Entries are generated under a per-entry sync.Once: concurrent sweep
// workers that race on a cold key block until the single generation
// finishes, then all proceed with the shared *FrozenSnapshot. Entries
// live for the life of the process (a sweep binary), bounded by the
// number of distinct fs configs in the sweep — a handful per figure.
type snapEntry struct {
	once sync.Once
	fs   *fsgen.FrozenSnapshot
	err  error
	seq  int64 // last-access sequence number, for LRU eviction
}

// maxSnapEntries bounds how many frozen bases the cache retains at
// once. Sweeps iterate one fs config at a time (strategies inner, sizes
// outer), so a small LRU keeps the working config resident without
// accumulating every base a long sweep has ever used — at paper scale
// the Figure 2 bases together outweigh any single run. Evicting a base
// still in use by a run is safe: the run holds its own reference.
const maxSnapEntries = 2

var snapCache struct {
	mu  sync.Mutex
	m   map[fsgen.Config]*snapEntry
	seq int64

	disabled atomic.Bool
	// generated counts cache misses (actual generations); shared counts
	// runs that reused an already-frozen base.
	generated atomic.Int64
	shared    atomic.Int64
}

// SetSnapshotSharing toggles the shared-snapshot path. When off, every
// run generates and privately owns its namespace (the legacy behavior);
// used by the equivalence tests and the before/after benchmarks.
func SetSnapshotSharing(on bool) { snapCache.disabled.Store(!on) }

// SnapshotSharing reports whether the shared-snapshot path is active.
func SnapshotSharing() bool { return !snapCache.disabled.Load() }

// SnapshotCacheStats returns how many snapshots were generated (cache
// misses) and how many runs reused a shared one (hits) since the last
// reset.
func SnapshotCacheStats() (generated, shared int64) {
	return snapCache.generated.Load(), snapCache.shared.Load()
}

// ResetSnapshotCache drops all cached snapshots and zeroes the stats.
func ResetSnapshotCache() {
	snapCache.mu.Lock()
	snapCache.m = nil
	snapCache.mu.Unlock()
	snapCache.generated.Store(0)
	snapCache.shared.Store(0)
}

// namespaceSize returns the inode count the given cluster config's
// namespace will have, going through the snapshot cache when sharing is
// on (so a probe primes the cache for the runs that follow) and through
// a plain generation otherwise.
func namespaceSize(cfg cluster.Config) (int, error) {
	key := cfg.FS
	key.Seed = cfg.Seed
	if SnapshotSharing() {
		snap, _, err := sharedSnapshot(key)
		if err != nil {
			return 0, err
		}
		return snap.Base.NumInodes(), nil
	}
	snap, err := fsgen.Generate(key)
	if err != nil {
		return 0, err
	}
	return snap.Tree.Len(), nil
}

// sharedSnapshot returns the frozen snapshot for key, generating it if
// this is the first request. genWall is non-zero only for the caller
// that actually paid for generation, so the cost is charged to exactly
// one run's setup accounting.
func sharedSnapshot(key fsgen.Config) (fs *fsgen.FrozenSnapshot, genWall time.Duration, err error) {
	snapCache.mu.Lock()
	if snapCache.m == nil {
		snapCache.m = make(map[fsgen.Config]*snapEntry)
	}
	e, ok := snapCache.m[key]
	if !ok {
		if len(snapCache.m) >= maxSnapEntries {
			var lruKey fsgen.Config
			lruSeq := int64(-1)
			for k, v := range snapCache.m {
				if lruSeq < 0 || v.seq < lruSeq {
					lruKey, lruSeq = k, v.seq
				}
			}
			delete(snapCache.m, lruKey)
		}
		e = &snapEntry{}
		snapCache.m[key] = e
	}
	snapCache.seq++
	e.seq = snapCache.seq
	snapCache.mu.Unlock()

	e.once.Do(func() {
		start := time.Now()
		e.fs, e.err = fsgen.GenerateFrozen(key)
		genWall = time.Since(start)
		snapCache.generated.Add(1)
	})
	if e.err != nil {
		return nil, 0, e.err
	}
	if genWall == 0 {
		snapCache.shared.Add(1)
	}
	return e.fs, genWall, nil
}

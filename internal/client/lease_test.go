package client

import (
	"testing"

	"dynmds/internal/lease"
	"dynmds/internal/msg"
	"dynmds/internal/partition"
	"dynmds/internal/sim"
	"dynmds/internal/workload"
)

// grantNet echoes every request like echoNet but rides a lease grant on
// each read reply, snapshotting the registry's current generation the
// way the authority does. One reply struct is reused, so the grant path
// itself is allocation-free.
type grantNet struct {
	eng      *sim.Engine
	pop      *Population
	plane    *lease.Plane
	n        int
	delay    sim.Time
	duration sim.Time
	rep      msg.Reply
}

func (e *grantNet) NumMDS() int { return e.n }

func (e *grantNet) Send(i int, req *msg.Request) {
	if e.delay <= 0 {
		e.answer(req)
		return
	}
	e.eng.AfterCall(e.delay, grantAnswer, e, req)
}

func grantAnswer(a, b any) { a.(*grantNet).answer(b.(*msg.Request)) }

func (e *grantNet) answer(req *msg.Request) {
	e.rep = msg.Reply{
		Req: req, Client: req.Client, ID: req.ID, Gen: req.Gen,
		Issued: req.Issued, Completed: e.eng.Now(),
	}
	if !req.Op.IsUpdate() {
		e.rep.Leased = true
		e.rep.LeaseGen = e.plane.Reg.Gen(req.Target.ID)
		e.plane.Reg.NoteGrant(req.Target.ID)
	}
	e.pop.OnReply(&e.rep)
}

func leaseFixture(t *testing.T, cfg PopulationConfig, seed int64, delay sim.Time) (*sim.Engine, *Population, *lease.Plane) {
	t.Helper()
	tr, homes := popTree(t, 4)
	tn := workload.NewTenants(cfg.Tenant, cfg.Clients, homes, seed)
	eng := sim.NewEngine()
	lcfg := lease.Config{Enabled: true, GrantPopularity: 0.01, Duration: 100 * sim.Millisecond}
	if err := lcfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	plane := lease.NewPlane(lcfg, cfg.Clients, tr.MaxID())
	net := &grantNet{eng: eng, n: 4, delay: delay, plane: plane, duration: lcfg.Duration}
	// Subtree strategy: clients are ignorant and follow hints, so the
	// stale-hint regression can steer routing through the hint table.
	pop := NewPopulation(cfg, []*sim.Engine{eng}, net, partition.NewStaticSubtree(4, tr, int(seed)), tn, seed)
	pop.AttachLeasePlane(plane)
	net.pop = pop
	return eng, pop, plane
}

// TestPopulationLeasedHitAllocFree pins the tentpole's hot path: once
// leases are installed, a leased read is served in the arrival handler
// with zero fabric hops and zero heap allocations — the slab lookup,
// the counters, and the recycle all run on pre-sized state. The 100ms
// lease lifetime keeps grants, expiries, and re-grants all live inside
// the pinned window, so the whole cycle is covered, not just the hit.
func TestPopulationLeasedHitAllocFree(t *testing.T) {
	cfg := PopulationConfig{
		Clients: 1000, Rate: 200, Tick: sim.Millisecond,
		Tenant: workload.TenantConfig{Tenants: 4, FileSkew: 1, WorkingSet: 16},
		// Read-only mix: updates never consult the lease slab.
		MixStat: 90, MixReaddir: 10,
	}
	eng, pop, _ := leaseFixture(t, cfg, 11, 0)
	pop.Start()
	eng.RunUntil(2 * sim.Second)
	before := pop.LeaseHits()
	now := eng.Now()
	allocs := testing.AllocsPerRun(20, func() {
		now += 50 * sim.Millisecond
		eng.RunUntil(now)
	})
	if allocs != 0 {
		t.Fatalf("leased-hit path allocates: %v allocs per 50ms window", allocs)
	}
	if pop.LeaseHits() == before {
		t.Fatal("no leased hits during the pinned window")
	}
}

// TestLeaseRecallNotResurrectedByStaleHint is the HintTable/lease
// interplay regression (docs/DESIGN.md "Lease plane"): the two caches
// are deliberately decoupled. A hint is a routing guess — stale ones
// mis-steer a request to a node that forwards it. A lease is a serve
// capability — staleness here would be a coherence hole. After a
// recall, neither a surviving slab slot nor a grant that raced the
// recall (carrying the pre-recall generation snapshot) may serve
// another local read, no matter what the hint table says.
func TestLeaseRecallNotResurrectedByStaleHint(t *testing.T) {
	cfg := PopulationConfig{
		Clients: 10, Rate: 10,
		Tenant:  workload.TenantConfig{Tenants: 2, WorkingSet: 4},
		MixStat: 1,
	}
	_, pop, plane := leaseFixture(t, cfg, 1, 0)
	f := pop.tenants.File(0, 0, 0)
	const g = 3 // client id

	// Client g holds a live lease and a hint for the same record.
	gen := plane.Reg.Gen(f.ID)
	plane.Reg.NoteGrant(f.ID)
	plane.Tab.Install(g, f.ID, gen, sim.Second)
	pop.Hints().Put(g, msg.Hint{Ino: f.ID, Authority: 2})
	if !plane.Tab.Valid(g, f.ID, plane.Reg.Gen(f.ID), 0) {
		t.Fatal("fresh lease not valid")
	}

	// A mutation recalls the record: the generation bump must kill the
	// lease even though the slab slot and the hint both survive.
	plane.Reg.Recall(f.ID)
	if plane.Tab.Valid(g, f.ID, plane.Reg.Gen(f.ID), 0) {
		t.Fatal("recalled lease still serves reads")
	}

	// The stale hint still steers routing — that is all it may do.
	req := &msg.Request{Op: msg.Stat, Target: f}
	if got := pop.direct(g, req, 12345); got != 2 {
		t.Fatalf("stale hint no longer routes: direct = %d, want 2", got)
	}

	// A grant that raced the recall arrives carrying the old generation
	// snapshot. Installing it must not resurrect the lease: Valid
	// compares against the registry's current generation.
	plane.Tab.Install(g, f.ID, gen, 2*sim.Second)
	if plane.Tab.Valid(g, f.ID, plane.Reg.Gen(f.ID), 0) {
		t.Fatal("pre-recall grant snapshot resurrected a recalled lease")
	}

	// Only a fresh grant at the post-recall generation serves again.
	plane.Reg.NoteGrant(f.ID)
	plane.Tab.Install(g, f.ID, plane.Reg.Gen(f.ID), 2*sim.Second)
	if !plane.Tab.Valid(g, f.ID, plane.Reg.Gen(f.ID), 0) {
		t.Fatal("post-recall grant not honoured")
	}
}

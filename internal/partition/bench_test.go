package partition

import (
	"testing"

	"dynmds/internal/fsgen"
	"dynmds/internal/namespace"
)

func benchSnapshot(b *testing.B) *fsgen.Snapshot {
	b.Helper()
	cfg := fsgen.Default()
	cfg.Users = 50
	snap, err := fsgen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return snap
}

func deepFiles(snap *fsgen.Snapshot, n int) []*namespace.Inode {
	var files []*namespace.Inode
	snap.Tree.Walk(func(ino *namespace.Inode) bool {
		if !ino.IsDir() && len(files) < n {
			files = append(files, ino)
		}
		return len(files) < n
	})
	return files
}

// BenchmarkPathHash measures full-path hashing (every FileHash/LH
// authority lookup pays this).
func BenchmarkPathHash(b *testing.B) {
	snap := benchSnapshot(b)
	files := deepFiles(snap, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PathHash(files[i%len(files)])
	}
}

// BenchmarkSubtreeAuthorityMemoized measures the epoch-memoized lookup
// (the common case on every request).
func BenchmarkSubtreeAuthorityMemoized(b *testing.B) {
	snap := benchSnapshot(b)
	files := deepFiles(snap, 1024)
	tab := NewSubtreeTable(16)
	InitialPartition(tab, snap.Tree, 2)
	for _, f := range files {
		tab.Authority(f) // warm memo
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tab.Authority(files[i%len(files)])
	}
}

// BenchmarkSubtreeAuthorityColdEpoch measures lookup cost right after a
// partition change invalidates all memoization.
func BenchmarkSubtreeAuthorityColdEpoch(b *testing.B) {
	snap := benchSnapshot(b)
	files := deepFiles(snap, 1024)
	tab := NewSubtreeTable(16)
	InitialPartition(tab, snap.Tree, 2)
	root := snap.Homes[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%1024 == 0 {
			_ = tab.Delegate(root, i%16) // bump epoch
		}
		_ = tab.Authority(files[i%len(files)])
	}
}

package cluster

import (
	"fmt"

	"dynmds/internal/client"
	"dynmds/internal/metrics"
	"dynmds/internal/sim"
)

// ActConfig is one scenario act on a run's timeline: during [From, To)
// the open-loop traffic plane runs a retargeted rate/mix/hotspot, and
// the tenant popularity skew may be rebuilt. Acts are validated and
// resolved against the namespace in New — a bad act is a construction
// error, never a mid-run surprise.
type ActConfig struct {
	Name     string
	From, To sim.Time
	// RateMul scales the per-client arrival rate for the act; 0 means
	// unchanged.
	RateMul float64
	// Mix weights for the act; all-zero inherits the population's base
	// mix. Weights are relative, not percentages.
	MixStat, MixReaddir, MixChmod, MixCreate, MixRename, MixUnlink float64
	// FileSkew retargets the tenant popularity Zipf exponent at From.
	// Unlike rate/mix/hotspot it persists past To (reshaping popularity
	// is a state change, not a phase): a later act, or nothing, reverts
	// it. Negative means unchanged.
	FileSkew float64
	// Hotspot is an absolute namespace path that absorbs HotFrac of the
	// act's target draws — the directory of a create storm, the file of
	// a stat crowd. Empty means no hotspot.
	Hotspot string
	HotFrac float64
}

// setupActs validates cfg.Acts, resolves hotspot paths against the
// fresh snapshot, registers the acts with the population, and schedules
// skew retargets on the global engine (they rebuild shared alias
// tables, so they must run at barriers when sharded).
func (c *Cluster) setupActs() error {
	cfg := c.Cfg
	if len(cfg.Acts) == 0 {
		return nil
	}
	if c.Pop == nil {
		return fmt.Errorf("cluster: acts require the open-loop traffic plane (set OpenLoop)")
	}
	baseMix := cfg.OpenLoop.EffectiveMix()
	acts := make([]client.Act, len(cfg.Acts))
	var prevTo sim.Time
	prevName := ""
	for i, a := range cfg.Acts {
		if a.Name == "" {
			return fmt.Errorf("cluster: act %d has no name", i)
		}
		if a.From < 0 || a.To <= a.From {
			return fmt.Errorf("cluster: act %q: window %v..%v does not move forward", a.Name, a.From, a.To)
		}
		if a.To > cfg.Duration {
			return fmt.Errorf("cluster: act %q ends at %v, past the run duration %v", a.Name, a.To, cfg.Duration)
		}
		if a.From < prevTo {
			return fmt.Errorf("cluster: act %q (from %v) overlaps act %q (ends %v)", a.Name, a.From, prevName, prevTo)
		}
		prevTo, prevName = a.To, a.Name
		if a.RateMul < 0 {
			return fmt.Errorf("cluster: act %q: rate multiplier %g must be >= 0", a.Name, a.RateMul)
		}
		mix := [...]float64{a.MixStat, a.MixReaddir, a.MixChmod, a.MixCreate, a.MixRename, a.MixUnlink}
		for _, w := range mix {
			if w < 0 {
				return fmt.Errorf("cluster: act %q: negative mix weight %g", a.Name, w)
			}
		}
		if a.HotFrac < 0 || a.HotFrac > 1 {
			return fmt.Errorf("cluster: act %q: hotspot fraction %g outside [0, 1]", a.Name, a.HotFrac)
		}
		act := client.Act{Name: a.Name, From: a.From, To: a.To, RateMul: a.RateMul, Mix: mix, HotFrac: a.HotFrac}
		if a.Hotspot == "" {
			if a.HotFrac > 0 {
				return fmt.Errorf("cluster: act %q: hotspot fraction without a hotspot path", a.Name)
			}
		} else {
			n, err := c.Snap.Tree.Lookup(a.Hotspot)
			if err != nil {
				return fmt.Errorf("cluster: act %q: hotspot path not in namespace: %v", a.Name, err)
			}
			eff := mix
			if mix[0]+mix[1]+mix[2]+mix[3]+mix[4]+mix[5] <= 0 {
				eff = baseMix
			}
			if !n.IsDir() && eff[1]+eff[3] > 0 {
				return fmt.Errorf("cluster: act %q: hotspot %s is a file but the act mix includes directory ops (readdir/create)", a.Name, a.Hotspot)
			}
			act.Hot = n
		}
		acts[i] = act
		if a.FileSkew >= 0 {
			skew := a.FileSkew
			c.Eng.At(a.From, func() { c.tenants.SetFileSkew(skew) })
		}
	}
	c.Pop.ScheduleActs(acts)
	return nil
}

// ActResult is one act's merged metrics: arrivals and completions
// inside the window, completion throughput, latency quantiles of the
// completions that landed in the window, and the per-MDS load spread
// (max/mean replies per node over the window; 1.0 = perfectly even).
type ActResult struct {
	Name       string
	From, To   sim.Time
	Issued     uint64
	Completed  uint64
	OpsPerSec  float64
	P50, P99   float64 // seconds
	LoadSpread float64
}

// collectActs fills r.Acts from the population's per-act accounting and
// the per-node reply series.
func (c *Cluster) collectActs(r *Result) {
	if c.Pop == nil {
		return
	}
	for _, st := range c.Pop.ActStats() {
		ar := ActResult{Name: st.Name, From: st.From, To: st.To, Issued: st.Issued, Completed: st.Completed}
		if w := (st.To - st.From).Seconds(); w > 0 {
			ar.OpsPerSec = float64(st.Completed) / w
		}
		ar.P50 = st.Lat.Quantile(0.5).Seconds()
		ar.P99 = st.Lat.Quantile(0.99).Seconds()
		ar.LoadSpread = c.loadSpread(st.From, st.To)
		r.Acts = append(r.Acts, ar)
	}
}

// loadSpread reduces the per-node reply series over [from, to) to
// max/mean — how unevenly the act's load landed across the cluster.
// Buckets fully inside the window count; a window shorter than one
// bucket falls back to the bucket containing from.
func (c *Cluster) loadSpread(from, to sim.Time) float64 {
	b := c.Cfg.SeriesBucket
	if b <= 0 || len(c.RepliesPerNode) == 0 {
		return 0
	}
	lo := int((from + b - 1) / b)
	hi := int(to / b)
	if hi <= lo {
		lo = int(from / b)
		hi = lo + 1
	}
	var w metrics.Welford
	for _, s := range c.RepliesPerNode {
		var ops float64
		for i := lo; i < hi && i < s.Len(); i++ {
			ops += s.Sum(i)
		}
		w.Add(ops)
	}
	if w.Mean() <= 0 {
		return 0
	}
	return w.Max() / w.Mean()
}

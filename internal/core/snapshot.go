package core

import (
	"fmt"
	"sort"

	"dynmds/internal/namespace"
	"dynmds/internal/sim"
	"dynmds/internal/snap"
)

// Checkpoint codec for the control plane: balancer bookkeeping, traffic
// control counters, and the dynamic strategy's hashed-directory count.
// The balancer's ticker is not serialized — the endurance quiesce
// protocol stops it before a checkpoint and restarts it identically in
// both the checkpointing run and a restored one.

// SnapshotTo serializes the balancer's mutable state.
func (b *Balancer) SnapshotTo(w *snap.Writer) {
	w.U64(b.Rounds)
	w.U64(b.HeartbeatMsgs)
	type imp struct {
		root *namespace.Inode
		src  int
	}
	imps := make([]imp, 0, len(b.imports))
	for root, src := range b.imports {
		imps = append(imps, imp{root, src})
	}
	sort.Slice(imps, func(i, j int) bool { return imps[i].root.ID < imps[j].root.ID })
	w.Int(len(imps))
	for _, im := range imps {
		w.U64(uint64(im.root.ID))
		w.Int(im.src)
	}
	w.Int(len(b.Migrations))
	for _, m := range b.Migrations {
		w.I64(int64(m.At))
		w.U64(uint64(m.Root.ID))
		w.Int(m.From)
		w.Int(m.To)
		w.Int(m.Entries)
		w.Bool(m.Redelegation)
	}
}

// RestoreFrom applies a snapshot onto a freshly built balancer.
func (b *Balancer) RestoreFrom(r *snap.Reader, tree *namespace.Tree) error {
	b.Rounds = r.U64()
	b.HeartbeatMsgs = r.U64()
	ni := r.Int()
	for i := 0; i < ni; i++ {
		id := namespace.InodeID(r.U64())
		src := r.Int()
		root, ok := tree.ByID(id)
		if !ok {
			return fmt.Errorf("core: snapshot import root %d unresolvable", id)
		}
		b.imports[root] = src
	}
	nm := r.Int()
	b.Migrations = make([]Migration, nm)
	for i := range b.Migrations {
		at := sim.Time(r.I64())
		id := namespace.InodeID(r.U64())
		root, ok := tree.ByID(id)
		if !ok {
			return fmt.Errorf("core: snapshot migration root %d unresolvable", id)
		}
		b.Migrations[i] = Migration{
			At: at, Root: root,
			From: r.Int(), To: r.Int(), Entries: r.Int(),
			Redelegation: r.Bool(),
		}
	}
	return nil
}

// SnapshotTo serializes the policy's transition counters; thresholds
// come from config.
func (tc *TrafficControl) SnapshotTo(w *snap.Writer) {
	w.U64(tc.Replications)
	w.U64(tc.Consolidations)
	w.U64(tc.Preemptive)
}

// RestoreFrom applies serialized transition counters.
func (tc *TrafficControl) RestoreFrom(r *snap.Reader) {
	tc.Replications = r.U64()
	tc.Consolidations = r.U64()
	tc.Preemptive = r.U64()
}

// SnapshotTo serializes the strategy's mutable state (the table is
// serialized separately; HashedDir flags travel with the inode tags).
func (d *DynamicSubtree) SnapshotTo(w *snap.Writer) {
	w.Int(d.DirsHashed)
}

// RestoreFrom applies the strategy's serialized state.
func (d *DynamicSubtree) RestoreFrom(r *snap.Reader) {
	d.DirsHashed = r.Int()
}

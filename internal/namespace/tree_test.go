package namespace

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

func mustMkdir(t *testing.T, tr *Tree, parent *Inode, name string) *Inode {
	t.Helper()
	n, err := tr.Mkdir(parent, name)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func mustCreate(t *testing.T, tr *Tree, parent *Inode, name string) *Inode {
	t.Helper()
	n, err := tr.Create(parent, name)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestTreeBasics(t *testing.T) {
	tr := NewTree()
	home := mustMkdir(t, tr, tr.Root, "home")
	u1 := mustMkdir(t, tr, home, "u1")
	f := mustCreate(t, tr, u1, "notes.txt")

	if got := f.Path(); got != "/home/u1/notes.txt" {
		t.Errorf("Path = %q", got)
	}
	if got := tr.Root.Path(); got != "/" {
		t.Errorf("root Path = %q", got)
	}
	if f.Depth() != 3 || tr.Root.Depth() != 0 {
		t.Errorf("depths wrong: %d %d", f.Depth(), tr.Root.Depth())
	}
	if n, err := tr.Lookup("/home/u1/notes.txt"); err != nil || n != f {
		t.Errorf("Lookup: %v %v", n, err)
	}
	if _, err := tr.Lookup("/home/zz"); err == nil {
		t.Error("Lookup of missing path succeeded")
	}
	if _, err := tr.Lookup("relative"); err == nil {
		t.Error("relative lookup succeeded")
	}
	if tr.NumDirs != 3 || tr.NumFiles != 1 {
		t.Errorf("counts: dirs=%d files=%d", tr.NumDirs, tr.NumFiles)
	}
	anc := f.Ancestors()
	if len(anc) != 3 || anc[0] != tr.Root || anc[2] != u1 {
		t.Errorf("Ancestors = %v", anc)
	}
	if !home.IsAncestorOf(f) || f.IsAncestorOf(home) || home.IsAncestorOf(home) {
		t.Error("IsAncestorOf wrong")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeDuplicateAndInvalidNames(t *testing.T) {
	tr := NewTree()
	mustMkdir(t, tr, tr.Root, "a")
	if _, err := tr.Mkdir(tr.Root, "a"); err == nil {
		t.Error("duplicate mkdir succeeded")
	}
	if _, err := tr.Create(tr.Root, ""); err == nil {
		t.Error("empty name succeeded")
	}
	if _, err := tr.Create(tr.Root, "x/y"); err == nil {
		t.Error("slash in name succeeded")
	}
	f := mustCreate(t, tr, tr.Root, "f")
	if _, err := tr.Create(f, "under-file"); err == nil {
		t.Error("create under file succeeded")
	}
}

func TestSubtreeCounts(t *testing.T) {
	tr := NewTree()
	a := mustMkdir(t, tr, tr.Root, "a")
	b := mustMkdir(t, tr, a, "b")
	mustCreate(t, tr, b, "f1")
	mustCreate(t, tr, b, "f2")
	if a.SubtreeInodes != 4 {
		t.Errorf("a.SubtreeInodes = %d, want 4", a.SubtreeInodes)
	}
	if tr.Root.SubtreeInodes != 5 {
		t.Errorf("root.SubtreeInodes = %d, want 5", tr.Root.SubtreeInodes)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemove(t *testing.T) {
	tr := NewTree()
	a := mustMkdir(t, tr, tr.Root, "a")
	f := mustCreate(t, tr, a, "f")
	if err := tr.Remove(a); err == nil {
		t.Error("removed non-empty directory")
	}
	if err := tr.Remove(tr.Root); err == nil {
		t.Error("removed root")
	}
	if err := tr.Remove(f); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.ByID(f.ID); ok {
		t.Error("removed file still in byID")
	}
	if a.SubtreeInodes != 1 || tr.Root.SubtreeInodes != 2 {
		t.Errorf("counts after remove: %d %d", a.SubtreeInodes, tr.Root.SubtreeInodes)
	}
	if err := tr.Remove(a); err != nil {
		t.Fatal(err)
	}
	if tr.NumDirs != 1 || tr.NumFiles != 0 {
		t.Errorf("counts: dirs=%d files=%d", tr.NumDirs, tr.NumFiles)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRename(t *testing.T) {
	tr := NewTree()
	a := mustMkdir(t, tr, tr.Root, "a")
	b := mustMkdir(t, tr, tr.Root, "b")
	sub := mustMkdir(t, tr, a, "sub")
	mustCreate(t, tr, sub, "f")

	if err := tr.Rename(sub, b, "moved"); err != nil {
		t.Fatal(err)
	}
	if got := sub.Path(); got != "/b/moved" {
		t.Errorf("path after rename = %q", got)
	}
	if a.SubtreeInodes != 1 {
		t.Errorf("a count = %d, want 1", a.SubtreeInodes)
	}
	if b.SubtreeInodes != 3 {
		t.Errorf("b count = %d, want 3", b.SubtreeInodes)
	}
	// Moving a directory into its own subtree must fail.
	if err := tr.Rename(b, sub, "oops"); err == nil {
		t.Error("moved directory into own subtree")
	}
	if err := tr.Rename(tr.Root, b, "r"); err == nil {
		t.Error("renamed root")
	}
	// Name collision.
	mustCreate(t, tr, b, "taken")
	f2 := mustCreate(t, tr, a, "f2")
	if err := tr.Rename(f2, b, "taken"); err == nil {
		t.Error("rename onto existing name succeeded")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHardLinksAndAnchors(t *testing.T) {
	tr := NewTree()
	a := mustMkdir(t, tr, tr.Root, "a")
	b := mustMkdir(t, tr, tr.Root, "b")
	f := mustCreate(t, tr, a, "f")

	if err := tr.Link(a, b, "dirlink"); err == nil {
		t.Error("hard-linked a directory")
	}
	if err := tr.Link(f, b, "f2"); err != nil {
		t.Fatal(err)
	}
	if f.NLink != 2 {
		t.Errorf("NLink = %d, want 2", f.NLink)
	}
	if !tr.Anchors.Anchored(f.ID) {
		t.Error("multiply-linked inode not anchored")
	}
	chain, ok := tr.Anchors.Resolve(f.ID)
	if !ok || len(chain) == 0 || chain[0] != a.ID {
		t.Errorf("Resolve = %v %v, want chain starting at a", chain, ok)
	}
	// Singly-linked inodes stay out of the table.
	g := mustCreate(t, tr, a, "g")
	if tr.Anchors.Anchored(g.ID) {
		t.Error("singly-linked inode anchored")
	}
	// Moving the anchored file updates its anchor.
	if err := tr.Rename(f, b, "fmoved"); err != nil {
		t.Fatal(err)
	}
	chain, _ = tr.Anchors.Resolve(f.ID)
	if chain[0] != b.ID {
		t.Errorf("anchor after move = %v, want start %d", chain, b.ID)
	}
	// Unlink down to one link drops the anchor.
	if err := tr.Remove(f); err != nil {
		t.Fatal(err)
	}
	if f.NLink != 1 {
		t.Errorf("NLink after remove = %d, want 1", f.NLink)
	}
	if tr.Anchors.Anchored(f.ID) {
		t.Error("inode still anchored after dropping to one link")
	}
	if tr.Anchors.Len() != 0 {
		t.Errorf("anchor table len = %d, want 0", tr.Anchors.Len())
	}
}

func TestAnchorSharedPrefix(t *testing.T) {
	tr := NewTree()
	d := mustMkdir(t, tr, tr.Root, "d")
	sub1 := mustMkdir(t, tr, d, "s1")
	sub2 := mustMkdir(t, tr, d, "s2")
	other := mustMkdir(t, tr, tr.Root, "other")
	f1 := mustCreate(t, tr, sub1, "f1")
	f2 := mustCreate(t, tr, sub2, "f2")
	if err := tr.Link(f1, other, "l1"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Link(f2, other, "l2"); err != nil {
		t.Fatal(err)
	}
	// Both chains share /d; dropping one must keep the shared prefix.
	tr.Anchors.Drop(tr, f1)
	if !tr.Anchors.Anchored(f2.ID) {
		t.Fatal("f2 lost anchor")
	}
	chain, _ := tr.Anchors.Resolve(f2.ID)
	// chain should reach up through d.
	found := false
	for _, id := range chain {
		if id == d.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("chain %v does not include shared dir", chain)
	}
	tr.Anchors.Drop(tr, f2)
	if tr.Anchors.Len() != 0 {
		t.Errorf("anchor table not empty after drops: %d", tr.Anchors.Len())
	}
}

func TestWalkPrune(t *testing.T) {
	tr := NewTree()
	a := mustMkdir(t, tr, tr.Root, "a")
	mustCreate(t, tr, a, "f")
	b := mustMkdir(t, tr, tr.Root, "b")
	mustCreate(t, tr, b, "g")
	seen := 0
	tr.Walk(func(n *Inode) bool {
		seen++
		return n != a // prune under a
	})
	// root, a (pruned), b, g = 4
	if seen != 4 {
		t.Errorf("visited %d, want 4", seen)
	}
}

// Property: random mutation sequences preserve all tree invariants.
func TestTreeInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := NewTree()
		var dirs []*Inode
		var files []*Inode
		dirs = append(dirs, tr.Root)
		for i := 0; i < 300; i++ {
			switch r.Intn(6) {
			case 0, 1: // create file
				p := dirs[r.Intn(len(dirs))]
				if n, err := tr.Create(p, "f"+strconv.Itoa(i)); err == nil {
					files = append(files, n)
				}
			case 2: // mkdir
				p := dirs[r.Intn(len(dirs))]
				if n, err := tr.Mkdir(p, "d"+strconv.Itoa(i)); err == nil {
					dirs = append(dirs, n)
				}
			case 3: // remove a file
				if len(files) > 0 {
					j := r.Intn(len(files))
					n := files[j]
					if n.Parent() != nil {
						if err := tr.Remove(n); err == nil {
							files = append(files[:j], files[j+1:]...)
						}
					}
				}
			case 4: // rename
				if len(files) > 0 {
					n := files[r.Intn(len(files))]
					d := dirs[r.Intn(len(dirs))]
					if n.Parent() != nil {
						_ = tr.Rename(n, d, "r"+strconv.Itoa(i))
					}
				}
			case 5: // link
				if len(files) > 0 {
					n := files[r.Intn(len(files))]
					d := dirs[r.Intn(len(dirs))]
					if n.Parent() != nil {
						_ = tr.Link(n, d, "l"+strconv.Itoa(i))
					}
				}
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if File.String() != "file" || Dir.String() != "dir" {
		t.Error("Kind.String wrong")
	}
}

package harness

import (
	"fmt"
	"io"

	"dynmds/internal/client"
	"dynmds/internal/cluster"
	"dynmds/internal/metrics"
	"dynmds/internal/plan"
	"dynmds/internal/sim"
	"dynmds/internal/workload"
)

// clientsConfig builds one open-loop traffic-plane run.
func clientsConfig(opt Options, strategy string, clients int, rate float64) cluster.Config {
	cfg := cluster.Default()
	cfg.Seed = opt.Seed
	cfg.NetModel = opt.NetModel
	cfg.Strategy = strategy
	cfg.NumMDS = 8
	cfg.FS.Users = 40
	cfg.MDS.CacheCapacity = 2500
	cfg.Duration = 8 * sim.Second
	cfg.Warmup = 2 * sim.Second
	cfg.OpenLoop = &client.PopulationConfig{
		Clients: clients,
		Rate:    rate,
		Tenant:  workload.TenantConfig{TenantSkew: 1, FileSkew: 1},
	}
	if opt.Quick {
		cfg.Duration = 4 * sim.Second
		cfg.Warmup = 1 * sim.Second
	}
	return cfg
}

// ClientsExt sweeps the open-loop flyweight population across client
// counts for the subtree strategies: per-client state stays flat (the
// bytes/client column) while arrival volume is held constant, so the
// axis isolates population-size cost from load.
func ClientsExt(w io.Writer, opt Options) error {
	counts := []int{100_000, 1_000_000}
	budget := 40e3 // arrivals per run, under cluster service capacity
	if opt.Quick {
		counts = []int{20_000, 200_000}
		budget = 15e3
	}
	p := &plan.Plan{
		Name: "clients",
		Matrix: []plan.Axis{
			{Key: "strategy", Values: []string{cluster.StratDynamic, cluster.StratStatic, cluster.StratFileHash}},
			{Key: "clients", Values: intStrings(counts)},
		},
		Tweak: func(cfg *cluster.Config, cell plan.Cell, _ plan.Options) {
			n := atoi(cell["clients"])
			rate := budget / (float64(n) * clientsConfig(opt, cell["strategy"], n, 1).Duration.Seconds())
			*cfg = clientsConfig(opt, cell["strategy"], n, rate)
		},
	}
	runs, err := RunPlan(p, opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Extension: open-loop traffic plane, client-count sweep (constant arrival budget)")
	tb := metrics.NewTable("strategy", "clients", "issued", "completed", "p50(ms)", "p99(ms)", "p999(ms)", "fwd", "B/client")
	for _, run := range runs {
		r := run.Res
		tb.AddRow(run.Cfg.Strategy, r.Clients, int(r.Issued), int(r.Completed),
			fmt.Sprintf("%.2f", r.LatencyP50*1000),
			fmt.Sprintf("%.2f", r.LatencyP99*1000),
			fmt.Sprintf("%.2f", r.LatencyP999*1000),
			fmt.Sprintf("%.3f", r.ForwardFrac),
			fmt.Sprintf("%.1f", float64(r.PopFootprint)/float64(r.Clients)))
	}
	_, err = io.WriteString(w, tb.String())
	return err
}

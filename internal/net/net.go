// Package net is the simulated message fabric: every network hop in the
// simulation — client→MDS requests, MDS→client replies, MDS↔MDS
// forwards, remote-fetch round trips, replica installs, coherence and
// eviction notices, write flushes and stat callbacks — routes through a
// single Fabric instead of scattering fixed-latency callbacks across the
// node code. The fabric owns typed, pooled envelopes (scheduling a hop
// allocates nothing in steady state), a pluggable latency model, and
// per-link / per-message-class counters, so communication can be
// measured, shaped, and later perturbed (drop/delay/partition) in one
// place.
//
// Endpoint map: a fabric over an n-node cluster has n+1 endpoints.
// Endpoints 0..n-1 are the MDS nodes; endpoint n (Fabric.ClientEdge) is
// the client edge, aggregating the whole client population — per-client
// links would be unbounded, and the experiments only need cluster-side
// visibility. A link is a directed (from, to) endpoint pair; loopback
// links carry round trips modelled as a single hop (LHPropagate).
package net

import "dynmds/internal/sim"

// Class labels one kind of simulated message. Counters are kept per
// class so the traffic mix is visible, and latency models may price
// classes differently.
type Class uint8

// Message classes, one per communication pattern in the system.
const (
	// Request is a client→MDS metadata operation.
	Request Class = iota
	// Reply is an MDS→client operation completion (with hints).
	Reply
	// Forward is an MDS→MDS redirected request (§4.4).
	Forward
	// FetchReq asks a peer for one inode record (remote prefix fetch).
	FetchReq
	// FetchResp returns the record to the requesting node.
	FetchResp
	// ReplicaInstall pushes a replica of a popular item to a peer (§4.4).
	ReplicaInstall
	// Coherence pushes an update to a replica holder (§4.2).
	Coherence
	// EvictNotice tells an authority a replica was dropped (§4.2).
	EvictNotice
	// WriteFlush pushes absorbed size maxima to an authority (§4.2).
	WriteFlush
	// StatCallback collects unflushed size maxima before a stat reply
	// (§4.2); both the callback and its response use this class.
	StatCallback
	// LHPropagate is the Lazy Hybrid dual-entry refresh round trip,
	// modelled as one loopback message priced at two forward hops.
	LHPropagate
	// FwdAck acknowledges a Forward hop back to the forwarder; only sent
	// when fault injection arms the forward timeout, so the forwarder can
	// distinguish a dead peer from a slow one.
	FwdAck
	// LeaseGrant accompanies a reply that grants a client read lease on
	// the touched record (internal/lease): the capability itself rides
	// the reply, this class carries its wire cost and conservation.
	LeaseGrant
	// LeaseRecall tells the client edge that a leased record mutated and
	// every outstanding lease on it is invalid (recall by generation).
	LeaseRecall
	// LeaseAck acknowledges a LeaseRecall back to the authority.
	LeaseAck

	numClasses
)

// NumClasses is the number of distinct message classes.
const NumClasses = int(numClasses)

var classNames = [NumClasses]string{
	"request", "reply", "forward", "fetch_req", "fetch_resp",
	"replica_install", "coherence", "evict_notice", "write_flush",
	"stat_callback", "lh_propagate", "fwd_ack",
	"lease_grant", "lease_recall", "lease_ack",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "unknown"
}

// classBytes holds the nominal on-wire size of each class, used for
// byte accounting and the queued model's serialization delay. Sizes are
// rough protocol estimates (headers + payload), not measurements.
var classBytes = [NumClasses]int{
	Request:        256,
	Reply:          128,
	Forward:        256,
	FetchReq:       64,
	FetchResp:      320,
	ReplicaInstall: 320,
	Coherence:      192,
	EvictNotice:    48,
	WriteFlush:     64,
	StatCallback:   64,
	LHPropagate:    192,
	FwdAck:         32,
	LeaseGrant:     48,
	LeaseRecall:    64,
	LeaseAck:       32,
}

// Bytes returns the nominal wire size of a class.
func Bytes(c Class) int { return classBytes[c] }

// HintBytes is the incremental reply size per distribution hint.
const HintBytes = 16

// ReplyBytes sizes a reply carrying the given number of hints.
func ReplyBytes(hints int) int { return classBytes[Reply] + hints*HintBytes }

// Latency model names accepted by cluster configuration.
const (
	ModelFixed  = "fixed"
	ModelQueued = "queued"
)

// FaultPlane perturbs message transit. Transit is consulted once per
// Send, before the latency model sees the message: a dropped message
// never enters the link (no queue occupancy, no envelope), and a passed
// message is delayed by extra on top of the model's price. A plane must
// be deterministic, and must not consume randomness for messages no
// active rule matches, so that an empty (or all-zero-probability)
// schedule leaves a run bit-identical to one with no plane attached.
type FaultPlane interface {
	Transit(from, to int, now sim.Time) (drop bool, extra sim.Time)
}

// LatencyModel prices one message's transit. Delay may read and update
// per-link state (the queued model's serialization horizon); it must be
// deterministic.
type LatencyModel interface {
	Name() string
	// Delay returns the send→deliver latency for a message of the given
	// class and size entering link l at virtual time now.
	Delay(l *Link, c Class, bytes int, now sim.Time) sim.Time
	// Lookahead returns a positive lower bound on Delay over every class,
	// size, and link state — the conservative-parallel window width: a
	// message sent at t can never be due before t+Lookahead, so shards
	// advanced in lockstep windows of that width cannot receive an event
	// in their past. A model unable to bound its delay returns 0, which
	// disables sharded execution.
	Lookahead() sim.Time
}

// Fixed reproduces the original constant-latency behaviour exactly:
// client-edge hops (Request, Reply) take Net, intra-cluster hops take
// Fwd, and the LHPropagate round trip takes 2×Fwd. Message size and
// link occupancy are ignored.
type Fixed struct {
	Net sim.Time // one-way client↔MDS latency
	Fwd sim.Time // one-way MDS↔MDS latency
}

// Name implements LatencyModel.
func (f Fixed) Name() string { return ModelFixed }

// Delay implements LatencyModel.
func (f Fixed) Delay(_ *Link, c Class, _ int, _ sim.Time) sim.Time { return f.base(c) }

// Lookahead implements LatencyModel: the smallest per-class constant.
// Net prices client-edge hops and Fwd intra-cluster hops (LHPropagate is
// 2×Fwd, never the minimum), so min(Net, Fwd) bounds every delay.
func (f Fixed) Lookahead() sim.Time {
	if f.Net < f.Fwd {
		return f.Net
	}
	return f.Fwd
}

func (f Fixed) base(c Class) sim.Time {
	switch c {
	case Request, Reply, LeaseGrant, LeaseRecall, LeaseAck:
		// Client-edge hops; pricing the lease protocol at Net keeps
		// Lookahead = min(Net, Fwd) unchanged.
		return f.Net
	case LHPropagate:
		return 2 * f.Fwd
	default:
		return f.Fwd
	}
}

// DefaultBandwidth is the queued model's per-link bandwidth when none is
// configured: 125 MB per simulated second (a 1 Gb/s link).
const DefaultBandwidth = 125e6

// Queued adds per-link serialization delay to the Fixed base latencies:
// each directed link transmits one message at a time at Bandwidth bytes
// per simulated second, so bursts on one link (replica pushes, flash-
// crowd forwards) queue behind each other instead of passing through a
// constant-latency pipe. With effectively infinite bandwidth the model
// degenerates to Fixed exactly.
type Queued struct {
	Base Fixed
	// Bandwidth is the link capacity in bytes per simulated second.
	Bandwidth float64
}

// Name implements LatencyModel.
func (q *Queued) Name() string { return ModelQueued }

// Lookahead implements LatencyModel. Delay is serialization-wait plus
// the fixed base, and the wait term (done - now) is never negative, so
// the base latencies' minimum bounds the queued model too: a busy link
// (BusyUntil ahead of now) only pushes deliveries further out, never
// closer. The bound therefore stays sound for every per-window BusyUntil
// horizon without rescanning links at barriers.
func (q *Queued) Lookahead() sim.Time { return q.Base.Lookahead() }

// Delay implements LatencyModel: serialization behind the link's
// in-flight transmissions, then the fixed propagation latency.
func (q *Queued) Delay(l *Link, c Class, bytes int, now sim.Time) sim.Time {
	bw := q.Bandwidth
	if bw <= 0 {
		bw = DefaultBandwidth
	}
	ser := sim.Time(float64(bytes) / bw * float64(sim.Second))
	start := now
	if l.BusyUntil > start {
		start = l.BusyUntil
	}
	done := start + ser
	l.BusyUntil = done
	return (done - now) + q.Base.base(c)
}

// Package osd models the shared object-storage substrate beneath the
// MDS cluster. The paper's architecture stores all metadata on "a
// collection of OSDs" shared by the metadata servers (§2.1.3) — shared
// storage is what makes MDS failover cheap — and distributes objects
// with "a deterministic pseudo-random algorithm that guarantees a
// probabilistically balanced distribution of data throughout the
// system" (§2.1.1, the RUSH family).
//
// Placement here is weighted rendezvous (highest-random-weight)
// hashing, which delivers the properties the paper requires and that
// tests verify: deterministic, probabilistically balanced, independent
// of any directory service, and minimal data movement when devices are
// added (expanding from n to n+1 devices relocates ≈ 1/(n+1) of
// objects, the information-theoretic minimum).
package osd

import (
	"fmt"
	"math"

	"dynmds/internal/namespace"
)

// ObjectID identifies a stored object; metadata objects are keyed by
// the directory inode ID they hold, log objects by a log-stream key.
type ObjectID uint64

// DirObject maps a directory inode to its object.
func DirObject(id namespace.InodeID) ObjectID { return ObjectID(id) }

// LogObject maps an MDS's bounded-log stream to an object key,
// disjoint from directory objects.
func LogObject(mds int) ObjectID { return ObjectID(1<<63 | uint64(mds)) }

// Placement deterministically maps objects to devices. Devices carry
// weights so heterogeneous capacities can be expressed.
type Placement struct {
	weights []float64
}

// NewPlacement creates a placement over n equally weighted devices.
func NewPlacement(n int) (*Placement, error) {
	if n < 1 {
		return nil, fmt.Errorf("osd: need at least one device")
	}
	p := &Placement{}
	for i := 0; i < n; i++ {
		p.weights = append(p.weights, 1)
	}
	return p, nil
}

// NumDevices returns the device count.
func (p *Placement) NumDevices() int { return len(p.weights) }

// AddDevice grows the cluster by one device of the given weight,
// returning its index. Existing objects move only onto the new device
// (minimal movement).
func (p *Placement) AddDevice(weight float64) int {
	if weight <= 0 {
		weight = 1
	}
	p.weights = append(p.weights, weight)
	return len(p.weights) - 1
}

// SetWeight adjusts a device's weight (0 drains it).
func (p *Placement) SetWeight(dev int, weight float64) error {
	if dev < 0 || dev >= len(p.weights) {
		return fmt.Errorf("osd: device %d out of range", dev)
	}
	if weight < 0 {
		weight = 0
	}
	p.weights[dev] = weight
	return nil
}

// score computes the rendezvous score of obj on device dev: a
// deterministic uniform draw shaped by the device weight
// (w / -ln(u) — larger is better; weighted rendezvous hashing).
func (p *Placement) score(obj ObjectID, dev int) float64 {
	if p.weights[dev] <= 0 {
		return -1
	}
	h := mix(uint64(obj), uint64(dev))
	// Map to (0,1); avoid exactly 0.
	u := (float64(h>>11) + 1) / float64(1<<53)
	return p.weights[dev] / -math.Log(u)
}

// mix is a splitmix64-style avalanche over the (object, device) pair.
func mix(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 ^ (b + 0xbf58476d1ce4e5b9)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Primary returns the object's primary device.
func (p *Placement) Primary(obj ObjectID) int {
	best, bestScore := 0, -1.0
	for d := range p.weights {
		if s := p.score(obj, d); s > bestScore {
			best, bestScore = d, s
		}
	}
	return best
}

// Replicas returns the object's r top-ranked devices (primary first),
// clamped to the number of devices with positive weight.
func (p *Placement) Replicas(obj ObjectID, r int) []int {
	type ds struct {
		dev   int
		score float64
	}
	var alive []ds
	for d := range p.weights {
		if s := p.score(obj, d); s >= 0 {
			alive = append(alive, ds{d, s})
		}
	}
	if r > len(alive) {
		r = len(alive)
	}
	// Partial selection sort: r is small (2-3).
	out := make([]int, 0, r)
	for k := 0; k < r; k++ {
		best := k
		for i := k + 1; i < len(alive); i++ {
			if alive[i].score > alive[best].score {
				best = i
			}
		}
		alive[k], alive[best] = alive[best], alive[k]
		out = append(out, alive[k].dev)
	}
	return out
}

package lease

import (
	"fmt"

	"dynmds/internal/snap"
)

// Checkpoint codec. The registry and slab are sized deterministically
// by the cluster from config and the pristine namespace, so only the
// sparse nonzero content is serialized; sizes are cross-checked on
// restore so a snapshot from a different config fails loudly.

// SnapshotTo serializes the plane's mutable state.
func (p *Plane) SnapshotTo(w *snap.Writer) {
	w.U64(p.Recalled)
	w.Int(len(p.Reg.gen))
	nz := 0
	for i := range p.Reg.gen {
		if p.Reg.gen[i] != 0 || p.Reg.grants[i] != 0 {
			nz++
		}
	}
	w.Int(nz)
	for i := range p.Reg.gen {
		if p.Reg.gen[i] != 0 || p.Reg.grants[i] != 0 {
			w.Int(i)
			w.U64(uint64(p.Reg.gen[i]))
			w.U64(uint64(p.Reg.grants[i]))
		}
	}
	if p.Tab == nil {
		w.Int(-1)
		return
	}
	w.Int(len(p.Tab.key))
	nz = 0
	for i := range p.Tab.key {
		if p.Tab.key[i] != 0 {
			nz++
		}
	}
	w.Int(nz)
	for i, k := range p.Tab.key {
		if k != 0 {
			w.Int(i)
			w.U64(uint64(k))
			w.U64(p.Tab.meta[i])
		}
	}
}

// RestoreFrom applies a snapshot onto a freshly built plane with the
// same config and namespace.
func (p *Plane) RestoreFrom(r *snap.Reader) error {
	p.Recalled = r.U64()
	if n := r.Int(); n != len(p.Reg.gen) {
		return fmt.Errorf("lease: snapshot registry size %d, built %d", n, len(p.Reg.gen))
	}
	nz := r.Int()
	for i := 0; i < nz; i++ {
		idx := r.Int()
		p.Reg.gen[idx] = uint32(r.U64())
		p.Reg.grants[idx] = uint32(r.U64())
	}
	tn := r.Int()
	if tn < 0 {
		if p.Tab != nil {
			return fmt.Errorf("lease: snapshot has no client slab, built plane does")
		}
		return nil
	}
	if p.Tab == nil || tn != len(p.Tab.key) {
		return fmt.Errorf("lease: snapshot slab size %d does not match built plane", tn)
	}
	nz = r.Int()
	for i := 0; i < nz; i++ {
		idx := r.Int()
		p.Tab.key[idx] = uint32(r.U64())
		p.Tab.meta[idx] = r.U64()
	}
	return nil
}

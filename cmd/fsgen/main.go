// Command fsgen generates a synthetic file-system snapshot and prints
// its shape statistics, or dumps the full path list.
//
// Usage:
//
//	fsgen -users 500 -seed 7
//	fsgen -users 10 -dump | head
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"dynmds/internal/fsgen"
	"dynmds/internal/namespace"
)

func main() {
	var (
		users   = flag.Int("users", 100, "number of home directories")
		dirs    = flag.Int("dirs", 20, "directories per user")
		depth   = flag.Int("depth", 6, "maximum nesting below a home")
		median  = flag.Float64("files-median", 6, "median files per directory")
		sigma   = flag.Float64("files-sigma", 1.2, "files-per-directory log-normal sigma")
		proj    = flag.Int("projects", 10, "shared project directories")
		seed    = flag.Int64("seed", 1, "generation seed")
		dump    = flag.Bool("dump", false, "print every path")
		depthHG = flag.Bool("histogram", false, "print depth histogram")
	)
	flag.Parse()

	cfg := fsgen.Default()
	cfg.Users = *users
	cfg.DirsPerUser = *dirs
	cfg.MaxDepth = *depth
	cfg.FilesPerDirMedian = *median
	cfg.FilesPerDirSigma = *sigma
	cfg.Projects = *proj
	cfg.Seed = *seed

	snap, err := fsgen.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsgen:", err)
		os.Exit(1)
	}
	fmt.Println(fsgen.Describe(snap.Tree))

	if *depthHG {
		hist := map[int]int{}
		maxD := 0
		snap.Tree.Walk(func(n *namespace.Inode) bool {
			d := n.Depth()
			hist[d]++
			if d > maxD {
				maxD = d
			}
			return true
		})
		for d := 0; d <= maxD; d++ {
			fmt.Printf("depth %2d: %d\n", d, hist[d])
		}
	}
	if *dump {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		snap.Tree.Walk(func(n *namespace.Inode) bool {
			fmt.Fprintln(w, n.Path())
			return true
		})
	}
}

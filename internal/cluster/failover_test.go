package cluster

import (
	"testing"

	"dynmds/internal/sim"
)

func TestFailoverDynamic(t *testing.T) {
	cfg := smallConfig(StratDynamic)
	cfg.Client.RetryTimeout = 200 * sim.Millisecond
	cfg.Duration = 12 * sim.Second
	cfg.Warmup = 2 * sim.Second
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const victim = 1
	cl.Eng.At(4*sim.Second, func() {
		if err := cl.FailNode(victim); err != nil {
			t.Errorf("FailNode: %v", err)
		}
	})
	var warmed int
	cl.Eng.At(8*sim.Second, func() {
		var err error
		warmed, err = cl.RecoverNode(victim)
		if err != nil {
			t.Errorf("RecoverNode: %v", err)
		}
	})
	res := cl.Run()

	// The victim's subtrees were reassigned: survivors served its load.
	if len(cl.Dyn.Table.RootsOf(victim)) != 0 {
		// The balancer may migrate some back post-recovery; what must
		// not happen is the victim retaining everything through the
		// outage. Check that survivors now own former roots.
	}
	if res.MeasuredOps == 0 {
		t.Fatal("no ops measured")
	}
	// Clients retried through the outage rather than stalling forever:
	// every client should have completed ops after the failure window.
	var retries uint64
	stuck := 0
	for _, c := range cl.Clients {
		retries += c.Stats.Retries
		if c.Stats.Completed == 0 {
			stuck++
		}
	}
	if retries == 0 {
		t.Fatal("no client retries despite a node outage")
	}
	if stuck > 0 {
		t.Fatalf("%d clients never completed an op", stuck)
	}
	if warmed == 0 {
		t.Fatal("recovery warmed nothing from the log")
	}
	// Outstanding at end is at most one op per client (closed loop).
	var issued, completed uint64
	for _, c := range cl.Clients {
		issued += c.Stats.Issued
		completed += c.Stats.Completed
	}
	if issued-completed > uint64(len(cl.Clients)) {
		t.Fatalf("leaked requests: issued=%d completed=%d", issued, completed)
	}
}

func TestPickLeastLoaded(t *testing.T) {
	load := []float64{5, 2, 9, 2}
	if got := pickLeastLoaded([]int{0, 2}, load); got != 0 {
		t.Errorf("pick([0 2]) = %d, want 0", got)
	}
	// Ties break toward the lowest id.
	if got := pickLeastLoaded([]int{1, 3}, load); got != 1 {
		t.Errorf("pick([1 3]) = %d, want 1 (tie → lowest)", got)
	}
	if got := pickLeastLoaded([]int{3}, load); got != 3 {
		t.Errorf("pick([3]) = %d, want 3", got)
	}
}

// TestFailNodeSpreadsRoots checks the least-loaded reassignment spreads
// a victim's subtrees over all survivors instead of dumping them on
// one: on an idle cluster every assignment costs one estimated unit, so
// the greedy placement degenerates to an even split.
func TestFailNodeSpreadsRoots(t *testing.T) {
	cfg := smallConfig(StratDynamic)
	cfg.NumMDS = 4
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const victim = 2
	moved := len(cl.Dyn.Table.RootsOf(victim))
	if moved < 2 {
		t.Skipf("victim owns %d roots; need >= 2 for a spread", moved)
	}
	before := map[int]int{}
	for j := 0; j < cfg.NumMDS; j++ {
		before[j] = len(cl.Dyn.Table.RootsOf(j))
	}
	if err := cl.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	if n := len(cl.Dyn.Table.RootsOf(victim)); n != 0 {
		t.Fatalf("victim retains %d roots", n)
	}
	// Every node is idle (Load = 0), so each assignment adds one
	// estimated unit and the greedy placement must split the victim's
	// roots evenly: per-survivor gains differ by at most one.
	minGain, maxGain := moved, 0
	for j := 0; j < cfg.NumMDS; j++ {
		if j == victim {
			continue
		}
		gain := len(cl.Dyn.Table.RootsOf(j)) - before[j]
		if gain < minGain {
			minGain = gain
		}
		if gain > maxGain {
			maxGain = gain
		}
	}
	if maxGain-minGain > 1 {
		t.Fatalf("uneven reassignment of %d roots: gains range %d..%d", moved, minGain, maxGain)
	}
	if maxGain == moved {
		t.Fatalf("all %d roots dumped on one survivor", moved)
	}
}

// TestSuspicionLifecycle drives the mds.FaultCluster surface directly:
// strikes below the threshold are reversible by exoneration, the
// threshold confirms the peer down (reassigning its subtrees), and a
// down verdict is sticky until recovery clears it.
func TestSuspicionLifecycle(t *testing.T) {
	cfg := smallConfig(StratDynamic)
	cfg.Faults = "drop@0:all" // enable fault mode without perturbing anything
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const peer = 1
	cl.Suspect(0, peer)
	cl.Suspect(2, peer)
	if cl.NodeDown(peer) {
		t.Fatal("down below threshold")
	}
	cl.Exonerate(peer)
	cl.Suspect(0, peer)
	cl.Suspect(0, peer)
	if cl.NodeDown(peer) {
		t.Fatal("exoneration did not reset strikes")
	}
	cl.Suspect(0, peer)
	if !cl.NodeDown(peer) {
		t.Fatal("threshold did not confirm the peer down")
	}
	if len(cl.Downs) != 1 || cl.Downs[0].Node != peer {
		t.Fatalf("down event not recorded: %v", cl.Downs)
	}
	if n := len(cl.Dyn.Table.RootsOf(peer)); n != 0 {
		t.Fatalf("down peer retains %d roots", n)
	}
	// Sticky: a late ack must not resurrect a confirmed-down node.
	cl.Exonerate(peer)
	if !cl.NodeDown(peer) {
		t.Fatal("exoneration resurrected a down node")
	}
	if _, err := cl.RecoverNode(peer); err != nil {
		t.Fatal(err)
	}
	if cl.NodeDown(peer) {
		t.Fatal("recovery did not clear the down verdict")
	}
	if len(cl.Recoveries) != 1 {
		t.Fatalf("recovery event not recorded: %v", cl.Recoveries)
	}
}

func TestFailoverErrors(t *testing.T) {
	cl, err := New(smallConfig(StratDynamic))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.FailNode(99); err == nil {
		t.Fatal("out-of-range fail accepted")
	}
	if _, err := cl.RecoverNode(-1); err == nil {
		t.Fatal("out-of-range recover accepted")
	}
}

func TestFailoverStaticMarksDownOnly(t *testing.T) {
	cl, err := New(smallConfig(StratStatic))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.FailNode(0); err != nil {
		t.Fatal(err)
	}
	if !cl.Nodes[0].Failed() {
		t.Fatal("node not failed")
	}
}

func TestFailNodeAllDead(t *testing.T) {
	cfg := smallConfig(StratDynamic)
	cfg.NumMDS = 1
	cfg.ClientsPerMDS = 2
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.FailNode(0); err == nil {
		t.Fatal("failing the last node should error")
	}
}

func TestSharedOSDPoolBackend(t *testing.T) {
	cfg := smallConfig(StratDynamic)
	cfg.OSDs = 12
	cfg.OSDReplicas = 2
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Run()
	if res.MeasuredOps == 0 {
		t.Fatal("no ops with shared pool")
	}
	if cl.Pool == nil {
		t.Fatal("pool not constructed")
	}
	if cl.Pool.Stats.Reads == 0 {
		t.Fatal("no pool reads: storage not routed through OSDs")
	}
	if cl.Pool.Stats.Writes == 0 {
		t.Fatal("no pool writes: log appends not routed through OSDs")
	}
	// Node-local disks should be idle.
	for _, n := range cl.Nodes {
		if n.Store().ReadUtilization(cl.Eng.Now()) > 0 {
			t.Fatal("local disk used despite shared pool")
		}
	}
}

func TestSharedPoolSurvivesOSDFailure(t *testing.T) {
	cfg := smallConfig(StratDynamic)
	cfg.OSDs = 8
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One device down with two replicas per object: every object keeps
	// a live copy, so reads fail over and nothing is lost.
	cl.Eng.At(2*sim.Second, func() { _ = cl.Pool.SetDown(0, true) })
	res := cl.Run()
	if res.MeasuredOps == 0 {
		t.Fatal("no ops")
	}
	if cl.Pool.Stats.FailoverReads == 0 {
		t.Fatal("no failover reads despite downed OSD")
	}
	if cl.Pool.Stats.UnplacedErrors > 0 {
		t.Fatalf("lost objects: %d unplaced reads", cl.Pool.Stats.UnplacedErrors)
	}
}

package mds

import (
	"fmt"
	"testing"

	"dynmds/internal/core"
	"dynmds/internal/msg"
	"dynmds/internal/namespace"
	"dynmds/internal/net"
	"dynmds/internal/partition"
	"dynmds/internal/sim"
	"dynmds/internal/storage"
)

// testCluster wires N nodes over a shared tree and records replies.
type testCluster struct {
	nodes   []*MDS
	tree    *namespace.Tree
	fab     *net.Fabric
	replies []*msg.Reply
}

func (tc *testCluster) Node(i int) *MDS        { return tc.nodes[i] }
func (tc *testCluster) NumMDS() int            { return len(tc.nodes) }
func (tc *testCluster) Tree() *namespace.Tree  { return tc.tree }
func (tc *testCluster) Deliver(rep *msg.Reply) { tc.replies = append(tc.replies, rep) }
func (tc *testCluster) Fabric() *net.Fabric    { return tc.fab }

// newTestCluster builds the fake with a fixed-latency fabric matching
// testMDSConfig's latencies, sized for n nodes.
func newTestCluster(eng *sim.Engine, tree *namespace.Tree, n int) *testCluster {
	cfg := testMDSConfig()
	return &testCluster{
		tree: tree,
		fab:  net.NewFabric(eng, n, net.Fixed{Net: cfg.NetLatency, Fwd: cfg.FwdLatency}),
	}
}

func testMDSConfig() Config {
	return Config{
		CPUService:      100,
		PeerService:     20,
		NetLatency:      50,
		FwdLatency:      10,
		ImportPerRecord: 1,
		CacheCapacity:   100,
		Storage: storage.Config{
			ReadLatency:      1000,
			ReadPerRecord:    5,
			LogAppendLatency: 30,
			LogCapacity:      64,
			DirObjectOrder:   8,
		},
		PopHalfLife:    sim.Second,
		LoadMissWeight: 10,
		RateHalfLife:   sim.Second,
	}
}

// buildCluster creates n nodes over a simple tree with the given
// strategy factory.
func buildCluster(t *testing.T, eng *sim.Engine, n int, makeStrat func(*namespace.Tree) partition.Strategy, trafficOn bool) (*testCluster, *namespace.Tree, partition.Strategy) {
	t.Helper()
	tree := namespace.NewTree()
	home, err := tree.Mkdir(tree.Root, "home")
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 4; u++ {
		h, err := tree.Mkdir(home, fmt.Sprintf("u%d", u))
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 5; f++ {
			if _, err := tree.Create(h, fmt.Sprintf("f%d", f)); err != nil {
				t.Fatal(err)
			}
		}
	}
	strat := makeStrat(tree)
	var tc *core.TrafficControl
	if trafficOn {
		tc = &core.TrafficControl{Enabled: true, ReplicateThreshold: 5, UnreplicateThreshold: 1}
	}
	cl := newTestCluster(eng, tree, n)
	for i := 0; i < n; i++ {
		cl.nodes = append(cl.nodes, New(i, eng, testMDSConfig(), strat, tc, cl))
	}
	return cl, tree, strat
}

func lookup(t *testing.T, tree *namespace.Tree, path string) *namespace.Inode {
	t.Helper()
	n, err := tree.Lookup(path)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestServeMissThenHit(t *testing.T) {
	eng := sim.NewEngine()
	cl, tree, strat := buildCluster(t, eng, 1, func(tr *namespace.Tree) partition.Strategy {
		return partition.NewStaticSubtree(1, tr, 2)
	}, false)
	m := cl.nodes[0]
	f := lookup(t, tree, "/home/u0/f0")

	m.Receive(&msg.Request{ID: 1, Op: msg.Open, Target: f})
	eng.Run()
	if len(cl.replies) != 1 {
		t.Fatalf("replies = %d", len(cl.replies))
	}
	if m.Stats.Served != 1 || m.Stats.CacheMissLoads == 0 {
		t.Fatalf("stats = %+v", m.Stats)
	}
	// The directory object came with embedded siblings: a second open
	// of a sibling must hit without disk I/O.
	reads := m.store.Stats.DirReads + m.store.Stats.InodeReads
	g := lookup(t, tree, "/home/u0/f1")
	m.Receive(&msg.Request{ID: 2, Op: msg.Open, Target: g})
	eng.Run()
	if got := m.store.Stats.DirReads + m.store.Stats.InodeReads; got != reads {
		t.Fatalf("sibling open went to disk (%d -> %d reads)", reads, got)
	}
	if len(cl.replies) != 2 {
		t.Fatalf("replies = %d", len(cl.replies))
	}
	// Hints present for non-client-computable strategies, excluding root.
	for _, h := range cl.replies[0].Hints {
		if h.Ino == tree.Root.ID {
			t.Fatal("hint for root emitted")
		}
	}
	if len(cl.replies[0].Hints) == 0 {
		t.Fatal("no hints on subtree strategy reply")
	}
	_ = strat
}

func TestPerInodeLayoutDoesNotPrefetch(t *testing.T) {
	eng := sim.NewEngine()
	cl, tree, _ := buildCluster(t, eng, 1, func(tr *namespace.Tree) partition.Strategy {
		return partition.FileHash{N: 1}
	}, false)
	m := cl.nodes[0]
	m.Receive(&msg.Request{ID: 1, Op: msg.Open, Target: lookup(t, tree, "/home/u0/f0")})
	eng.Run()
	m.Receive(&msg.Request{ID: 2, Op: msg.Open, Target: lookup(t, tree, "/home/u0/f1")})
	eng.Run()
	// Sibling was NOT prefetched: second open reads again.
	if m.store.Stats.InodeReads < 2 {
		t.Fatalf("inode reads = %d, want >= 2", m.store.Stats.InodeReads)
	}
	if m.store.Stats.DirReads != 0 {
		t.Fatalf("dir reads = %d for per-inode layout", m.store.Stats.DirReads)
	}
}

func TestForwardingToAuthority(t *testing.T) {
	eng := sim.NewEngine()
	cl, tree, strat := buildCluster(t, eng, 4, func(tr *namespace.Tree) partition.Strategy {
		return partition.NewStaticSubtree(4, tr, 2)
	}, false)
	f := lookup(t, tree, "/home/u0/f0")
	auth := strat.Authority(f)
	wrong := (auth + 1) % 4

	cl.nodes[wrong].Receive(&msg.Request{ID: 1, Op: msg.Stat, Target: f})
	eng.Run()
	if len(cl.replies) != 1 {
		t.Fatalf("replies = %d", len(cl.replies))
	}
	if cl.replies[0].ServedBy != auth {
		t.Fatalf("served by %d, want %d", cl.replies[0].ServedBy, auth)
	}
	if cl.nodes[wrong].Stats.Forwarded != 1 {
		t.Fatalf("forwards = %d", cl.nodes[wrong].Stats.Forwarded)
	}
	if cl.replies[0].Req.Hops != 1 {
		t.Fatalf("hops = %d", cl.replies[0].Req.Hops)
	}
}

func TestTrafficControlReplicatesAndServesLocally(t *testing.T) {
	eng := sim.NewEngine()
	cl, tree, strat := buildCluster(t, eng, 3, func(tr *namespace.Tree) partition.Strategy {
		return partition.NewStaticSubtree(3, tr, 2)
	}, true)
	f := lookup(t, tree, "/home/u1/f0")
	auth := strat.Authority(f)

	// Hammer the authority past the replication threshold (5).
	for i := 0; i < 10; i++ {
		cl.nodes[auth].Receive(&msg.Request{ID: uint64(i), Op: msg.Open, Target: f})
	}
	eng.Run()
	if cl.nodes[auth].Stats.ReplicasPushed == 0 {
		t.Fatal("no replicas pushed despite hot item")
	}
	other := (auth + 1) % 3
	if cl.nodes[other].Stats.ReplicaInstalls == 0 {
		t.Fatal("peer did not install replica")
	}
	// A read at a non-authoritative node is now served locally.
	before := cl.nodes[other].Stats.Forwarded
	cl.nodes[other].Receive(&msg.Request{ID: 99, Op: msg.Stat, Target: f})
	eng.Run()
	if cl.nodes[other].Stats.Forwarded != before {
		t.Fatal("replicated read was forwarded")
	}
	if cl.nodes[other].Stats.ReplicaServes != 1 {
		t.Fatalf("replica serves = %d", cl.nodes[other].Stats.ReplicaServes)
	}
	// Updates still go to the authority.
	cl.nodes[other].Receive(&msg.Request{ID: 100, Op: msg.Chmod, Target: f})
	eng.Run()
	if cl.nodes[other].Stats.Forwarded != before+1 {
		t.Fatal("update to replicated item not forwarded")
	}
}

func TestUpdatesMutateTreeAndCommit(t *testing.T) {
	eng := sim.NewEngine()
	cl, tree, _ := buildCluster(t, eng, 1, func(tr *namespace.Tree) partition.Strategy {
		return partition.NewStaticSubtree(1, tr, 2)
	}, false)
	m := cl.nodes[0]
	dir := lookup(t, tree, "/home/u2")

	m.Receive(&msg.Request{ID: 1, Op: msg.Create, Target: dir, NewName: "newfile"})
	eng.Run()
	nf, err := tree.Lookup("/home/u2/newfile")
	if err != nil {
		t.Fatal("create did not mutate tree:", err)
	}
	if !m.Cache().Contains(nf.ID) {
		t.Fatal("created inode not cached")
	}
	if m.Stats.Commits == 0 || m.store.Stats.LogAppends == 0 {
		t.Fatal("create not committed to log")
	}

	m.Receive(&msg.Request{ID: 2, Op: msg.Mkdir, Target: dir, NewName: "newdir"})
	eng.Run()
	nd := lookup(t, tree, "/home/u2/newdir")

	m.Receive(&msg.Request{ID: 3, Op: msg.Rename, Target: nf, DstDir: nd, NewName: "moved"})
	eng.Run()
	if nf.Path() != "/home/u2/newdir/moved" {
		t.Fatalf("rename failed: %s", nf.Path())
	}

	m.Receive(&msg.Request{ID: 4, Op: msg.Unlink, Target: nf})
	eng.Run()
	if _, err := tree.Lookup("/home/u2/newdir/moved"); err == nil {
		t.Fatal("unlink did not remove file")
	}
	if m.Cache().Contains(nf.ID) {
		t.Fatal("unlinked inode still cached")
	}

	mode := dir.Mode
	m.Receive(&msg.Request{ID: 5, Op: msg.Chmod, Target: dir})
	eng.Run()
	if dir.Mode == mode {
		t.Fatal("chmod did not change mode")
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLazyHybridStalenessCost(t *testing.T) {
	eng := sim.NewEngine()
	var lh *partition.LazyHybrid
	cl, tree, _ := buildCluster(t, eng, 1, func(tr *namespace.Tree) partition.Strategy {
		lh = partition.NewLazyHybrid(1)
		return lh
	}, false)
	m := cl.nodes[0]
	dir := lookup(t, tree, "/home/u3")
	f := lookup(t, tree, "/home/u3/f0")

	// Prime the file into cache.
	m.Receive(&msg.Request{ID: 1, Op: msg.Open, Target: f})
	eng.Run()
	// Directory chmod invalidates everything beneath.
	m.Receive(&msg.Request{ID: 2, Op: msg.Chmod, Target: dir})
	eng.Run()
	if lh.Debt == 0 {
		t.Fatal("no LH debt after dir chmod")
	}
	debt := lh.Debt
	m.Receive(&msg.Request{ID: 3, Op: msg.Stat, Target: f})
	eng.Run()
	if m.Stats.LHApplied != 1 {
		t.Fatalf("LHApplied = %d", m.Stats.LHApplied)
	}
	if lh.Debt != debt-1 {
		t.Fatalf("debt = %d, want %d", lh.Debt, debt-1)
	}
	// Second access: no further propagation.
	m.Receive(&msg.Request{ID: 4, Op: msg.Stat, Target: f})
	eng.Run()
	if m.Stats.LHApplied != 1 {
		t.Fatal("LH applied twice for one staleness")
	}
}

func TestReaddirPrefetchesThenStatsHit(t *testing.T) {
	eng := sim.NewEngine()
	cl, tree, _ := buildCluster(t, eng, 1, func(tr *namespace.Tree) partition.Strategy {
		return partition.NewStaticSubtree(1, tr, 2)
	}, false)
	m := cl.nodes[0]
	dir := lookup(t, tree, "/home/u1")

	m.Receive(&msg.Request{ID: 1, Op: msg.Readdir, Target: dir})
	eng.Run()
	reads := m.store.Stats.DirReads + m.store.Stats.InodeReads
	// All children must now be cached: stats go without I/O.
	for i := 0; i < dir.NumChildren(); i++ {
		m.Receive(&msg.Request{ID: uint64(10 + i), Op: msg.Stat, Target: dir.Child(i)})
	}
	eng.Run()
	if got := m.store.Stats.DirReads + m.store.Stats.InodeReads; got != reads {
		t.Fatalf("stats after readdir hit disk: %d -> %d", reads, got)
	}
}

func TestImportExportSubtree(t *testing.T) {
	eng := sim.NewEngine()
	cl, tree, _ := buildCluster(t, eng, 2, func(tr *namespace.Tree) partition.Strategy {
		return core.NewDynamicSubtree(2, tr, 2)
	}, false)
	h := lookup(t, tree, "/home/u0")
	src, dst := cl.nodes[0], cl.nodes[1]

	// Prime src's cache with the subtree.
	for i := 0; i < h.NumChildren(); i++ {
		if _, err := src.Cache().InsertPath(h.Child(i), 0, false); err != nil {
			t.Fatal(err)
		}
	}
	live := src.Cache().EntriesUnder(h)
	entries := make([]core.Migrated, len(live))
	for i, e := range live {
		entries[i] = core.Migrated{Ino: e.Ino, Class: e.Class}
	}
	dst.ImportSubtree(h, entries)
	src.EvictSubtree(h)
	eng.Run()
	if len(dst.Cache().EntriesUnder(h)) < len(entries) {
		t.Fatalf("destination has %d entries, want >= %d",
			len(dst.Cache().EntriesUnder(h)), len(entries))
	}
	if len(src.Cache().EntriesUnder(h)) != 0 {
		t.Fatal("source still caches subtree")
	}
	if dst.Stats.Imported == 0 || src.Stats.Exported == 0 {
		t.Fatal("import/export stats missing")
	}
	if err := dst.Cache().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFailoverDropsAndRecoverWarmsFromLog(t *testing.T) {
	eng := sim.NewEngine()
	cl, tree, _ := buildCluster(t, eng, 1, func(tr *namespace.Tree) partition.Strategy {
		return partition.NewStaticSubtree(1, tr, 2)
	}, false)
	m := cl.nodes[0]
	dir := lookup(t, tree, "/home/u0")

	// Commit some updates so the log holds a working set.
	for i := 0; i < 5; i++ {
		m.Receive(&msg.Request{ID: uint64(i), Op: msg.Create, Target: dir, NewName: fmt.Sprintf("n%d", i)})
	}
	eng.Run()
	served := m.Stats.Served

	m.Fail()
	if !m.Failed() {
		t.Fatal("not failed")
	}
	m.Receive(&msg.Request{ID: 100, Op: msg.Stat, Target: dir})
	eng.Run()
	if m.Stats.Served != served || m.Stats.Dropped != 1 {
		t.Fatal("failed node served a request")
	}

	// Recovery pre-warms the cache from the log's working set.
	m.Cache().RemoveSubtree(tree.Root)
	warmed := m.Recover()
	if warmed == 0 {
		t.Fatal("recovery warmed nothing")
	}
	if m.Cache().Len() == 0 {
		t.Fatal("cache empty after recovery")
	}
	m.Receive(&msg.Request{ID: 101, Op: msg.Stat, Target: dir})
	eng.Run()
	if m.Stats.Served != served+1 {
		t.Fatal("recovered node did not serve")
	}
}

func TestLoadMetricReflectsActivity(t *testing.T) {
	eng := sim.NewEngine()
	cl, tree, _ := buildCluster(t, eng, 1, func(tr *namespace.Tree) partition.Strategy {
		return partition.NewStaticSubtree(1, tr, 2)
	}, false)
	m := cl.nodes[0]
	if m.Load(eng.Now()) != 0 {
		t.Fatal("idle load not zero")
	}
	// Prime the cache, then issue repeated stats that hit.
	m.Receive(&msg.Request{ID: 0, Op: msg.Stat, Target: lookup(t, tree, "/home/u0/f0")})
	eng.Run()
	for i := 1; i < 20; i++ {
		m.Receive(&msg.Request{ID: uint64(i), Op: msg.Stat, Target: lookup(t, tree, "/home/u0/f0")})
	}
	eng.Run()
	if m.Load(eng.Now()) <= 0 {
		t.Fatal("load did not rise with activity")
	}
	if m.HitRate() <= 0 {
		t.Fatal("hit rate zero after repeated stats")
	}
}

func TestRemotePrefixFetch(t *testing.T) {
	eng := sim.NewEngine()
	// DirHash scatters directories: serving a deep file requires prefix
	// fetches from peers.
	cl, tree, strat := buildCluster(t, eng, 3, func(tr *namespace.Tree) partition.Strategy {
		return partition.DirHash{N: 3}
	}, false)
	f := lookup(t, tree, "/home/u0/f0")
	auth := strat.Authority(f)
	cl.nodes[auth].Receive(&msg.Request{ID: 1, Op: msg.Open, Target: f})
	eng.Run()
	if len(cl.replies) != 1 {
		t.Fatalf("replies = %d", len(cl.replies))
	}
	// /home and /home/u0 prefixes hash elsewhere with high probability
	// on a 3-node cluster; at least one remote fetch should occur
	// unless all prefixes landed on auth (possible but not with this
	// fixed tree/hash: assert via total across a few files).
	total := uint64(0)
	for i := 0; i < 4; i++ {
		g := lookup(t, tree, fmt.Sprintf("/home/u%d/f0", i))
		cl.nodes[strat.Authority(g)].Receive(&msg.Request{ID: uint64(10 + i), Op: msg.Open, Target: g})
	}
	eng.Run()
	for _, n := range cl.nodes {
		total += n.Stats.RemoteFetches
	}
	if total == 0 {
		t.Fatal("no remote prefix fetches under DirHash")
	}
}

func TestFetchCoalescing(t *testing.T) {
	eng := sim.NewEngine()
	cl, tree, _ := buildCluster(t, eng, 1, func(tr *namespace.Tree) partition.Strategy {
		return partition.NewStaticSubtree(1, tr, 2)
	}, false)
	m := cl.nodes[0]
	f := lookup(t, tree, "/home/u0/f0")
	// A simultaneous burst for one cold file must coalesce on the same
	// in-flight fetches: at most one read per chain link plus target.
	for i := 0; i < 25; i++ {
		m.Receive(&msg.Request{ID: uint64(i), Op: msg.Stat, Target: f})
	}
	eng.Run()
	if len(cl.replies) != 25 {
		t.Fatalf("replies = %d", len(cl.replies))
	}
	reads := m.store.Stats.DirReads + m.store.Stats.InodeReads
	if reads > 4 {
		t.Fatalf("reads = %d, want <= 4 (coalesced)", reads)
	}
}

package fsgen

import (
	"testing"

	"dynmds/internal/namespace"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Default()
	cfg.Users = 10
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := Describe(a.Tree), Describe(b.Tree)
	if sa != sb {
		t.Fatalf("same config produced different trees: %v vs %v", sa, sb)
	}
	// Deep determinism: identical path sets.
	paths := map[string]bool{}
	a.Tree.Walk(func(n *namespace.Inode) bool { paths[n.Path()] = true; return true })
	count := 0
	same := true
	b.Tree.Walk(func(n *namespace.Inode) bool {
		count++
		if !paths[n.Path()] {
			same = false
		}
		return true
	})
	if !same || count != len(paths) {
		t.Fatal("trees differ structurally")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := Default()
	cfg.Users = 20
	snap, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Homes) != 20 {
		t.Fatalf("homes = %d, want 20", len(snap.Homes))
	}
	if len(snap.Projects) != cfg.Projects {
		t.Fatalf("projects = %d, want %d", len(snap.Projects), cfg.Projects)
	}
	if snap.System == nil {
		t.Fatal("no system tree")
	}
	st := Describe(snap.Tree)
	if st.Files == 0 || st.Dirs < 20 {
		t.Fatalf("degenerate tree: %v", st)
	}
	// Depth bound: homes are at depth 2, so max depth <= 2 + MaxDepth + 1
	// (one level of files below the deepest dir).
	if st.MaxDepth > 2+cfg.MaxDepth+1 {
		t.Fatalf("max depth %d exceeds bound", st.MaxDepth)
	}
	if err := snap.Tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg := Default()
	cfg.Users = 10
	a, _ := Generate(cfg)
	cfg.Seed = 2
	b, _ := Generate(cfg)
	if Describe(a.Tree) == Describe(b.Tree) {
		t.Fatal("different seeds produced identical summary stats (suspicious)")
	}
}

func TestScale(t *testing.T) {
	cfg := Default()
	s := cfg.Scale(2.0)
	if s.Users != cfg.Users*2 || s.Projects != cfg.Projects*2 {
		t.Fatalf("scale: %d/%d", s.Users, s.Projects)
	}
	tiny := cfg.Scale(0.0001)
	if tiny.Users < 1 || tiny.Projects < 1 {
		t.Fatal("scale floor broken")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	cfg := Default()
	cfg.Users = 0
	if _, err := Generate(cfg); err == nil {
		t.Fatal("accepted Users=0")
	}
}

func TestHomesAreDisjointSubtrees(t *testing.T) {
	cfg := Default()
	cfg.Users = 5
	snap, _ := Generate(cfg)
	for i, h := range snap.Homes {
		for j, g := range snap.Homes {
			if i != j && (h.IsAncestorOf(g) || g.IsAncestorOf(h)) {
				t.Fatalf("homes %d and %d overlap", i, j)
			}
		}
	}
}

func TestGenerateFrozenThawMatchesGenerate(t *testing.T) {
	cfg := Default()
	cfg.Users = 10
	want, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := GenerateFrozen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := fs.Thaw()
	if err := got.Tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	sa, sb := Describe(want.Tree), Describe(got.Tree)
	if sa != sb {
		t.Fatalf("thawed stats differ:\n%v\n%v", sa, sb)
	}
	if len(got.Homes) != len(want.Homes) || len(got.Projects) != len(want.Projects) {
		t.Fatalf("index lists differ: %d/%d homes, %d/%d projects",
			len(got.Homes), len(want.Homes), len(got.Projects), len(want.Projects))
	}
	for i := range want.Homes {
		if got.Homes[i].ID != want.Homes[i].ID || got.Homes[i].Path() != want.Homes[i].Path() {
			t.Fatalf("home %d differs: %v vs %v", i, got.Homes[i], want.Homes[i])
		}
	}
	if got.System.ID != want.System.ID {
		t.Fatalf("system dir differs: %v vs %v", got.System, want.System)
	}
}

// fig2LargestFS is the file-system scale of the biggest Figure 2 run
// (n=50 MDS nodes): the per-run setup cost the snapshot cache removes.
func fig2LargestFS() Config {
	cfg := Default()
	cfg.Users = 25 * 50
	cfg.Projects = 2 * 50
	return cfg
}

func BenchmarkGenerate(b *testing.B) {
	cfg := fig2LargestFS()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThaw(b *testing.B) {
	fs, err := GenerateFrozen(fig2LargestFS())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fs.Thaw()
	}
}

package sim

import (
	"testing"
)

// wheelRec records firing order and times for wheel tests.
type wheelRec struct {
	w     *Wheel
	eng   *Engine
	ids   []int32
	times []Time
}

func (r *wheelRec) fire(id int32) {
	r.ids = append(r.ids, id)
	r.times = append(r.times, r.eng.Now())
}

// TestWheelFiresOnTime schedules timers across all four levels and
// checks each fires at its deadline rounded up to a tick boundary,
// regardless of how many cascades it crossed.
func TestWheelFiresOnTime(t *testing.T) {
	eng := NewEngine()
	rec := &wheelRec{eng: eng}
	w := NewWheel(eng, Millisecond, 16, rec.fire)
	rec.w = w

	delays := []Time{
		1 * Millisecond,   // level 0
		255 * Millisecond, // level 0 edge
		256 * Millisecond, // level 1 first slot
		300 * Millisecond, // level 1
		65536 * Millisecond,
		65600 * Millisecond, // level 2
		1 << 24 * Millisecond,
		(1<<24 + 7) * Millisecond, // level 3
	}
	w.Start()
	for i, d := range delays {
		w.Schedule(int32(i), d)
	}
	eng.RunUntil((1<<24 + 16) * Millisecond)
	w.Stop()
	eng.Run()

	if len(rec.ids) != len(delays) {
		t.Fatalf("fired %d timers, want %d", len(rec.ids), len(delays))
	}
	got := make(map[int32]Time)
	for i, id := range rec.ids {
		got[id] = rec.times[i]
	}
	for i, d := range delays {
		want := d // already tick-aligned
		if got[int32(i)] != want {
			t.Errorf("timer %d fired at %v, want %v", i, got[int32(i)], want)
		}
	}
	if w.Pending() != 0 {
		t.Fatalf("pending = %d after drain", w.Pending())
	}
}

// TestWheelSubTickRoundsUp checks that deadlines between tick
// boundaries round up, with a floor of one tick.
func TestWheelSubTickRoundsUp(t *testing.T) {
	eng := NewEngine()
	rec := &wheelRec{eng: eng}
	w := NewWheel(eng, Millisecond, 4, rec.fire)
	w.Start()
	w.Schedule(0, 0)                // floor: next tick
	w.Schedule(1, 1500*Microsecond) // rounds to 2ms
	eng.RunUntil(10 * Millisecond)
	w.Stop()
	eng.Run()
	if len(rec.ids) != 2 {
		t.Fatalf("fired %d", len(rec.ids))
	}
	if rec.times[0] != Millisecond || rec.ids[0] != 0 {
		t.Errorf("timer 0: %v (id %d), want 1ms", rec.times[0], rec.ids[0])
	}
	if rec.times[1] != 2*Millisecond || rec.ids[1] != 1 {
		t.Errorf("timer 1: %v (id %d), want 2ms", rec.times[1], rec.ids[1])
	}
}

// TestWheelSlotOrderDeterministic checks FIFO dispatch within one
// deadline tick: timers due the same tick fire in scheduling order,
// including timers that reached the slot through a cascade from a
// higher level (scheduled earlier => cascaded in order => still FIFO).
func TestWheelSlotOrderDeterministic(t *testing.T) {
	eng := NewEngine()
	rec := &wheelRec{eng: eng}
	w := NewWheel(eng, Millisecond, 64, rec.fire)
	w.Start()

	// ids 0..31 all due at tick 300 (level 1, one cascade), scheduled
	// in id order; ids 32..35 due at tick 300 scheduled later but
	// directly into level 1 as well.
	for i := int32(0); i < 36; i++ {
		w.Schedule(i, 300*Millisecond)
	}
	eng.RunUntil(400 * Millisecond)
	w.Stop()
	eng.Run()

	if len(rec.ids) != 36 {
		t.Fatalf("fired %d, want 36", len(rec.ids))
	}
	for i, id := range rec.ids {
		if id != int32(i) {
			t.Fatalf("dispatch order %v: position %d got id %d", rec.ids[:8], i, id)
		}
		if rec.times[i] != 300*Millisecond {
			t.Fatalf("timer %d fired at %v", id, rec.times[i])
		}
	}

	// Determinism: a second identical schedule fires identically.
	eng2 := NewEngine()
	rec2 := &wheelRec{eng: eng2}
	w2 := NewWheel(eng2, Millisecond, 64, rec2.fire)
	w2.Start()
	for i := int32(0); i < 36; i++ {
		w2.Schedule(i, 300*Millisecond)
	}
	eng2.RunUntil(400 * Millisecond)
	w2.Stop()
	eng2.Run()
	if len(rec2.ids) != len(rec.ids) {
		t.Fatalf("replay fired %d, want %d", len(rec2.ids), len(rec.ids))
	}
	for i := range rec.ids {
		if rec.ids[i] != rec2.ids[i] || rec.times[i] != rec2.times[i] {
			t.Fatal("replay diverged from first run")
		}
	}
}

// TestWheelCascadeBoundary exercises deadlines straddling the exact
// level-0/level-1 boundary around a wrap: timers due at ticks 255, 256,
// 257 and 511, 512, 513 must fire at exactly those ticks.
func TestWheelCascadeBoundary(t *testing.T) {
	eng := NewEngine()
	rec := &wheelRec{eng: eng}
	w := NewWheel(eng, Millisecond, 8, rec.fire)
	w.Start()
	deadlines := []Time{255, 256, 257, 511, 512, 513}
	for i, d := range deadlines {
		w.Schedule(int32(i), d*Millisecond)
	}
	eng.RunUntil(600 * Millisecond)
	w.Stop()
	eng.Run()
	if len(rec.ids) != len(deadlines) {
		t.Fatalf("fired %d, want %d", len(rec.ids), len(deadlines))
	}
	for i, id := range rec.ids {
		if rec.times[i] != deadlines[id]*Millisecond {
			t.Errorf("timer %d fired at %v, want %v", id, rec.times[i], deadlines[id]*Millisecond)
		}
	}
}

// TestWheelRescheduleFromFire models the open-loop arrival pattern:
// every firing reschedules its own id. The wheel must keep exactly one
// pending timer per id and never lose or duplicate one.
func TestWheelRescheduleFromFire(t *testing.T) {
	eng := NewEngine()
	const n = 100
	fired := make([]int, n)
	var w *Wheel
	w = NewWheel(eng, Millisecond, n, func(id int32) {
		fired[id]++
		w.Schedule(id, Time(1+int(id)%7)*Millisecond)
	})
	w.Start()
	for i := int32(0); i < n; i++ {
		w.Schedule(i, Time(1+int(i)%5)*Millisecond)
	}
	eng.RunUntil(1000 * Millisecond)
	if got := w.Pending(); got != n {
		t.Fatalf("pending = %d, want %d (one per id)", got, n)
	}
	for i, f := range fired {
		if f == 0 {
			t.Fatalf("id %d never fired", i)
		}
	}
	var total uint64
	for _, f := range fired {
		total += uint64(f)
	}
	if total != w.Fired {
		t.Fatalf("fired counter %d != observed %d", w.Fired, total)
	}
}

// wheelPin is the zero-alloc receiver: each firing reschedules itself,
// so steady state exercises Schedule + cascade + dispatch.
type wheelPin struct {
	w *Wheel
	n uint64
}

func (p *wheelPin) fire(id int32) {
	p.n++
	// Mix of near and far deadlines so cascades stay exercised.
	d := Time(1+int(id)%300) * Millisecond
	p.w.Schedule(id, d)
}

// TestWheelAllocFree pins the tentpole property: steady-state
// scheduling, cascading and dispatch through the wheel allocate
// nothing.
func TestWheelAllocFree(t *testing.T) {
	eng := NewEngine()
	pin := &wheelPin{}
	w := NewWheel(eng, Millisecond, 1024, pin.fire)
	pin.w = w
	w.Start()
	for i := int32(0); i < 1024; i++ {
		w.Schedule(i, Time(1+i%512)*Millisecond)
	}
	end := Time(2) * Second
	eng.RunUntil(end) // warmup: event heap reaches its high-water mark

	allocs := testing.AllocsPerRun(20, func() {
		end += 100 * Millisecond
		eng.RunUntil(end)
	})
	if allocs > 0 {
		t.Fatalf("wheel steady state allocated %.2f times per 100ms of ticks, want 0", allocs)
	}
	if pin.n == 0 {
		t.Fatal("no timers fired")
	}
}

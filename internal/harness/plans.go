package harness

import (
	"fmt"
	"io"
	"strings"

	"dynmds/internal/cluster"
	"dynmds/internal/metrics"
	"dynmds/internal/plan"
)

// PlanRun is one executed cell of a plan: the compiled config and its
// result, labelled for reports.
type PlanRun struct {
	Label string
	Cell  plan.Cell
	Cfg   cluster.Config
	Res   *cluster.Result
}

// PlanOptions maps harness options onto the plan compiler's.
func PlanOptions(opt Options) plan.Options {
	return plan.Options{Quick: opt.Quick, Seed: opt.Seed, NetModel: opt.NetModel}
}

// RunPlan compiles a plan and sweeps its cells through the shared
// worker pool. This is the one executor behind figures, extras, library
// scenarios and mdsim -plan: a plan in, labelled results out.
func RunPlan(p *plan.Plan, opt Options) ([]PlanRun, error) {
	cells, err := p.Compile(PlanOptions(opt))
	if err != nil {
		return nil, err
	}
	specs := make([]RunSpec, len(cells))
	for i, c := range cells {
		specs[i] = RunSpec{Label: c.Label, Cfg: c.Cfg}
	}
	results, err := Sweep(specs)
	if err != nil {
		return nil, err
	}
	runs := make([]PlanRun, len(cells))
	for i, c := range cells {
		runs[i] = PlanRun{Label: c.Label, Cell: c.Cell, Cfg: c.Cfg, Res: results[i]}
	}
	return runs, nil
}

// planMetrics is the report column order; a plan's optimize list is
// honoured first, then any remaining columns that apply.
var planMetricOrder = []string{"ops", "p50", "p99", "p999", "load-spread", "hit", "fwd", "hot"}

// WritePlanReport renders the default deterministic plan report: a
// summary table across cells (optimize metrics first), then one per-act
// table per cell when the plan has acts. No wall-clock lines — the
// output is golden-stable.
func WritePlanReport(w io.Writer, p *plan.Plan, runs []PlanRun) error {
	fmt.Fprintf(w, "## plan %s\n", p.Name)
	if p.Describe != "" {
		fmt.Fprintf(w, "%s\n", p.Describe)
	}
	fmt.Fprintln(w)
	cols := planColumns(p)
	header := append([]string{"run"}, cols...)
	tbl := metrics.NewTable(header...)
	for _, r := range runs {
		row := make([]any, 0, len(header))
		row = append(row, r.Label)
		for _, c := range cols {
			row = append(row, planMetric(&r, c))
		}
		tbl.AddRow(row...)
	}
	fmt.Fprint(w, tbl.String())
	if len(p.Acts) == 0 {
		return nil
	}
	for _, r := range runs {
		fmt.Fprintf(w, "\nacts: %s\n", r.Label)
		at := metrics.NewTable("act", "window", "issued", "completed", "ops/s", "p50 ms", "p99 ms", "spread")
		for _, a := range r.Res.Acts {
			at.AddRow(a.Name,
				fmt.Sprintf("%gs-%gs", a.From.Seconds(), a.To.Seconds()),
				fmt.Sprintf("%d", a.Issued),
				fmt.Sprintf("%d", a.Completed),
				fmt.Sprintf("%.0f", a.OpsPerSec),
				fmt.Sprintf("%.2f", a.P50*1000),
				fmt.Sprintf("%.2f", a.P99*1000),
				fmt.Sprintf("%.2f", a.LoadSpread))
		}
		fmt.Fprint(w, at.String())
	}
	return nil
}

// planColumns returns the summary columns: the plan's optimize metrics
// in declared order, then the rest of the standard set.
func planColumns(p *plan.Plan) []string {
	cols := append([]string(nil), p.Optimize...)
	have := map[string]bool{}
	for _, c := range cols {
		have[c] = true
	}
	for _, c := range planMetricOrder {
		if !have[c] {
			cols = append(cols, c)
		}
	}
	return cols
}

// planMetric renders one summary metric for one run.
func planMetric(r *PlanRun, m string) string {
	res := r.Res
	switch m {
	case "ops":
		if sec := r.Cfg.Duration.Seconds(); sec > 0 {
			return fmt.Sprintf("%.0f", float64(res.Completed)/sec)
		}
		return "0"
	case "p50":
		return fmt.Sprintf("%.2fms", res.LatencyP50*1000)
	case "p99":
		return fmt.Sprintf("%.2fms", res.LatencyP99*1000)
	case "p999":
		return fmt.Sprintf("%.2fms", res.LatencyP999*1000)
	case "load-spread":
		return fmt.Sprintf("%.2f", LoadSpreadOf(res.PerMDSOps))
	case "hit":
		return fmt.Sprintf("%.3f", res.HitRate)
	case "fwd":
		return fmt.Sprintf("%.3f", res.ForwardFrac)
	case "hot":
		// Ops served at the hotspot, split local (leased, zero fabric
		// hops) vs remote (round-tripped to an MDS).
		return fmt.Sprintf("%d+%d", res.HotspotLocal, res.HotspotRemote)
	}
	return "?"
}

// LoadSpreadOf reduces per-MDS throughput to max/mean (1.0 = even).
func LoadSpreadOf(perMDS []float64) float64 {
	if len(perMDS) == 0 {
		return 0
	}
	var sum, max float64
	for _, v := range perMDS {
		sum += v
		if v > max {
			max = v
		}
	}
	mean := sum / float64(len(perMDS))
	if mean <= 0 {
		return 0
	}
	return max / mean
}

// PlanExperiment wraps a plan as a harness Experiment with the default
// report, so library scenarios list alongside the figures.
func PlanExperiment(p *plan.Plan) Experiment {
	return Experiment{
		ID:          p.Name,
		Title:       "Plan: " + p.Name,
		Description: p.Describe,
		Run: func(w io.Writer, opt Options) error {
			runs, err := RunPlan(p, opt)
			if err != nil {
				return err
			}
			return WritePlanReport(w, p, runs)
		},
	}
}

// trimCellLabel strips the plan-name prefix from a run label, leaving
// the cell part ("name/strategy=X" -> "strategy=X"); figure tables use
// the bare value.
func trimCellLabel(label, name string) string {
	return strings.TrimPrefix(label, name+"/")
}

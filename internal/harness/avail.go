package harness

import (
	"fmt"
	"io"

	"dynmds/internal/cluster"
	"dynmds/internal/metrics"
	"dynmds/internal/plan"
	"dynmds/internal/sim"
)

// AvailMetrics summarises one strategy's availability through a
// scheduled crash/recovery cycle. Because cluster throughput is not
// stationary (caches keep churning as the touched namespace grows),
// every ratio is computed bucket-by-bucket against a fault-free control
// run of the same seed and configuration, not against a fixed pre-crash
// average.
type AvailMetrics struct {
	Strategy string `json:"strategy"`
	// Baseline is the control run's mean completed-op rate (ops/s,
	// whole cluster) between warmup and the crash instant.
	Baseline float64 `json:"baseline_ops_per_sec"`
	// Dip is the faulty run's lowest per-second completion rate during
	// the outage; DipFrac is the lowest faulty/control ratio over the
	// same buckets (1.0 = unaffected, 0 = total outage).
	Dip     float64 `json:"dip_ops_per_sec"`
	DipFrac float64 `json:"dip_frac"`
	// DetectSeconds is crash → suspicion-confirmed down; -1 if the
	// cluster never confirmed the failure.
	DetectSeconds float64 `json:"detect_seconds"`
	// RecoverySeconds is the time from the node's recovery until the
	// faulty run's completion rate regained 90% of the control run's
	// rate in the same bucket; -1 if it never did within the run.
	RecoverySeconds float64 `json:"recovery_seconds"`
	Retries         uint64  `json:"retries"`
	TimedOut        uint64  `json:"timed_out"`
	Suspicions      uint64  `json:"suspicions"`
	DeadLetters     uint64  `json:"dead_letters"`
	// Warmed is the number of cache records preloaded from the bounded
	// log at recovery.
	Warmed int `json:"warmed_records"`
}

// availSpec describes the shared crash scenario.
type availSpec struct {
	cfg       cluster.Config // the faulty run; control clears Faults
	crashAt   sim.Time
	recoverAt sim.Time
	victim    int
}

// inertSchedule enables fault-mode plumbing without any fault: the only
// rule has probability zero, so the run is bit-identical to a no-fault
// run with the same resilience knobs — the property the control run
// leans on (tested in internal/cluster).
const inertSchedule = "drop@0:all"

func availScenario(opt Options, strategy string) availSpec {
	cfg := cluster.Default()
	cfg.Seed = opt.Seed
	cfg.NetModel = opt.NetModel
	cfg.Strategy = strategy
	cfg.NumMDS = 8
	cfg.ClientsPerMDS = 25
	cfg.FS.Users = 200
	cfg.MDS.CacheCapacity = 2500
	cfg.Client.ThinkMean = 10 * sim.Millisecond
	cfg.Duration = 40 * sim.Second
	cfg.Warmup = 5 * sim.Second
	s := availSpec{cfg: cfg, crashAt: 15 * sim.Second, recoverAt: 25 * sim.Second, victim: 2}
	if opt.Quick {
		s.cfg.Duration = 20 * sim.Second
		s.cfg.Warmup = 3 * sim.Second
		s.crashAt, s.recoverAt = 8*sim.Second, 13*sim.Second
	}
	s.cfg.Faults = fmt.Sprintf("crash@%dms-%dms:mds%d",
		int64(s.crashAt/sim.Millisecond), int64(s.recoverAt/sim.Millisecond), s.victim)
	return s
}

// AvailabilityReport runs the crash/recovery scenario for every
// strategy — one of eight nodes killed mid-run and recovered later —
// next to a fault-free control of the same configuration, and reduces
// each pair's per-second completion series to availability metrics.
// Exposed separately from the experiment so the benchmark emitter can
// reuse the numbers.
func AvailabilityReport(opt Options) ([]AvailMetrics, error) {
	p := &plan.Plan{
		Name: "avail",
		Matrix: []plan.Axis{
			{Key: "strategy", Values: cluster.Strategies},
			{Key: "run", Values: []string{"fault", "control"}},
		},
		Tweak: func(cfg *cluster.Config, cell plan.Cell, _ plan.Options) {
			*cfg = availScenario(opt, cell["strategy"]).cfg
			if cell["run"] == "control" {
				cfg.Faults = inertSchedule
			}
		},
	}
	runs, err := RunPlan(p, opt)
	if err != nil {
		return nil, err
	}
	out := make([]AvailMetrics, len(cluster.Strategies))
	for i, s := range cluster.Strategies {
		out[i] = reduceAvail(runs[2*i].Res, runs[2*i+1].Res, availScenario(opt, s))
	}
	return out, nil
}

// reduceAvail computes the availability metrics from a faulty run and
// its fault-free control.
func reduceAvail(r, control *cluster.Result, sp availSpec) AvailMetrics {
	m := AvailMetrics{
		Strategy:        r.Strategy,
		Retries:         r.Retries,
		TimedOut:        r.TimedOut,
		Suspicions:      r.Suspicions,
		DeadLetters:     r.DeadLetters,
		DetectSeconds:   -1,
		RecoverySeconds: -1,
	}
	for _, ev := range r.Downs {
		if ev.Node == sp.victim {
			m.DetectSeconds = (ev.At - sp.crashAt).Seconds()
			break
		}
	}
	for _, ev := range r.Recoveries {
		if ev.Node == sp.victim {
			m.Warmed = ev.Warmed
		}
	}
	s, cs := r.CompletedOps, control.CompletedOps
	if s == nil || cs == nil {
		return m
	}
	bucket := func(t sim.Time) int { return int(t / r.Bucket) }
	// Baseline: control mean rate from warmup to the crash.
	var sum float64
	n := 0
	for i := bucket(sp.cfg.Warmup); i < bucket(sp.crashAt); i++ {
		sum += cs.Rate(i)
		n++
	}
	if n > 0 {
		m.Baseline = sum / float64(n)
	}
	// Dip: worst bucket wholly inside the outage, absolute and relative
	// to the control's same bucket.
	first := true
	for i := bucket(sp.crashAt) + 1; i < bucket(sp.recoverAt); i++ {
		rate := s.Rate(i)
		if first || rate < m.Dip {
			m.Dip = rate
		}
		if c := cs.Rate(i); c > 0 {
			if frac := rate / c; first || frac < m.DipFrac {
				m.DipFrac = frac
			}
		}
		first = false
	}
	// Recovery: first post-recovery bucket back at 90% of the control.
	for i := bucket(sp.recoverAt); i < bucket(sp.cfg.Duration); i++ {
		if c := cs.Rate(i); c > 0 && s.Rate(i) >= 0.9*c {
			m.RecoverySeconds = (s.BucketStart(i) - sp.recoverAt).Seconds()
			break
		}
	}
	return m
}

// AvailExt prints the availability experiment: per-strategy throughput
// dip and recovery behaviour when one of eight nodes crashes mid-run.
func AvailExt(w io.Writer, opt Options) error {
	ms, err := AvailabilityReport(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Extension: availability under an injected crash "+
		"(1 of 8 nodes down for a window, then log-warmed recovery; "+
		"dip and recovery measured against a fault-free control run)")
	tb := metrics.NewTable("strategy", "base ops/s", "dip ops/s", "dip frac",
		"detect(s)", "recover(s)", "retries", "timed_out", "warmed")
	for _, m := range ms {
		tb.AddRow(m.Strategy,
			int(m.Baseline),
			int(m.Dip),
			fmt.Sprintf("%.3f", m.DipFrac),
			fmt.Sprintf("%.2f", m.DetectSeconds),
			fmt.Sprintf("%.1f", m.RecoverySeconds),
			int(m.Retries),
			int(m.TimedOut),
			m.Warmed)
	}
	_, err = io.WriteString(w, tb.String())
	return err
}

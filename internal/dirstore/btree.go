// Package dirstore implements the on-disk directory object format the
// paper prescribes (§4.6): directory contents — entries with embedded
// inodes — "stored in a B-tree-like structure (similar to XFS) that
// allows incremental updates (small numbers of creates or deletes) with
// minimal modifications to on-disk structures (rewriting changed B-tree
// nodes). The tree structure also facilitates copy-on-write techniques
// for safe updates and advanced file system features like snapshots."
//
// The implementation is a copy-on-write B+tree keyed by entry name.
// Every mutation copies the nodes along its path and returns how many
// nodes were (re)written — the incremental update cost the storage
// layer accounts. Snapshot is O(1): it shares every node with the live
// tree, and subsequent mutations copy away from it.
package dirstore

import (
	"fmt"
	"sort"

	"dynmds/internal/namespace"
)

// Record is one directory entry with its embedded inode fields.
type Record struct {
	Name string
	Ino  namespace.InodeID
	Kind namespace.Kind
	Mode namespace.Mode
	Size int64
}

// node is a B+tree node. Leaves hold records; internal nodes hold
// separator keys and children. Nodes are immutable once shared (COW):
// mutation always goes through copies.
type node struct {
	leaf bool
	// keys: for leaves, keys[i] == recs[i].Name; for internal nodes,
	// keys[i] is the smallest key reachable under children[i+1].
	keys     []string
	recs     []Record
	children []*node
}

func (n *node) clone() *node {
	c := &node{leaf: n.leaf}
	c.keys = append([]string(nil), n.keys...)
	if n.leaf {
		c.recs = append([]Record(nil), n.recs...)
	} else {
		c.children = append([]*node(nil), n.children...)
	}
	return c
}

// Tree is a copy-on-write B+tree directory object.
type Tree struct {
	root  *node
	order int // max records per leaf / max children per internal node
	size  int
}

// MinOrder is the smallest supported branching factor.
const MinOrder = 4

// New creates an empty directory object with the given order.
func New(order int) *Tree {
	if order < MinOrder {
		order = MinOrder
	}
	return &Tree{root: &node{leaf: true}, order: order}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Order returns the branching factor.
func (t *Tree) Order() int { return t.order }

// Height returns the tree height (1 for a single leaf).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// Snapshot returns an O(1) copy-on-write snapshot: it shares all nodes
// with t; later mutations of either tree copy nodes rather than
// modifying shared state.
func (t *Tree) Snapshot() *Tree {
	return &Tree{root: t.root, order: t.order, size: t.size}
}

// Get looks up an entry by name.
func (t *Tree) Get(name string) (Record, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n, name)]
	}
	i := sort.SearchStrings(n.keys, name)
	if i < len(n.keys) && n.keys[i] == name {
		return n.recs[i], true
	}
	return Record{}, false
}

// childIndex returns the child to descend into for key name.
func childIndex(n *node, name string) int {
	// keys[i] is the min key of children[i+1]; descend into the last
	// child whose min key is <= name.
	i := sort.SearchStrings(n.keys, name)
	if i < len(n.keys) && n.keys[i] == name {
		return i + 1
	}
	return i
}

// Insert adds or replaces an entry, returning the number of nodes
// written (path copies plus any splits) — the incremental on-disk
// update cost.
func (t *Tree) Insert(rec Record) (nodesWritten int, err error) {
	if rec.Name == "" {
		return 0, fmt.Errorf("dirstore: empty entry name")
	}
	root, sib, sep, written, added := t.insert(t.root, rec)
	if sib != nil {
		// Root split: new root with two children.
		root = &node{leaf: false, keys: []string{sep}, children: []*node{root, sib}}
		written++
	}
	t.root = root
	if added {
		t.size++
	}
	return written, nil
}

// insert returns the (possibly copied) node, an optional new right
// sibling with its separator key, nodes written, and whether the entry
// count grew.
func (t *Tree) insert(n *node, rec Record) (out, sib *node, sep string, written int, added bool) {
	out = n.clone()
	written = 1
	if n.leaf {
		i := sort.SearchStrings(out.keys, rec.Name)
		if i < len(out.keys) && out.keys[i] == rec.Name {
			out.recs[i] = rec // replace in place (same key)
			return out, nil, "", written, false
		}
		out.keys = append(out.keys, "")
		copy(out.keys[i+1:], out.keys[i:])
		out.keys[i] = rec.Name
		out.recs = append(out.recs, Record{})
		copy(out.recs[i+1:], out.recs[i:])
		out.recs[i] = rec
		added = true
		if len(out.keys) > t.order {
			mid := len(out.keys) / 2
			right := &node{
				leaf: true,
				keys: append([]string(nil), out.keys[mid:]...),
				recs: append([]Record(nil), out.recs[mid:]...),
			}
			out.keys = out.keys[:mid]
			out.recs = out.recs[:mid]
			return out, right, right.keys[0], written + 1, added
		}
		return out, nil, "", written, added
	}
	ci := childIndex(n, rec.Name)
	child, csib, csep, cw, cadded := t.insert(n.children[ci], rec)
	written += cw
	added = cadded
	out.children[ci] = child
	if csib != nil {
		out.keys = append(out.keys, "")
		copy(out.keys[ci+1:], out.keys[ci:])
		out.keys[ci] = csep
		out.children = append(out.children, nil)
		copy(out.children[ci+2:], out.children[ci+1:])
		out.children[ci+1] = csib
		if len(out.children) > t.order {
			mid := len(out.keys) / 2
			sep = out.keys[mid]
			right := &node{
				leaf:     false,
				keys:     append([]string(nil), out.keys[mid+1:]...),
				children: append([]*node(nil), out.children[mid+1:]...),
			}
			out.keys = out.keys[:mid]
			out.children = out.children[:mid+1]
			return out, right, sep, written + 1, added
		}
	}
	return out, nil, "", written, added
}

// Delete removes an entry, returning nodes written and whether the
// entry existed. Underflowing nodes borrow from or merge with siblings
// so the tree stays balanced.
func (t *Tree) Delete(name string) (nodesWritten int, ok bool) {
	root, written, ok := t.del(t.root, name)
	if !ok {
		return 0, false
	}
	// Collapse a root with a single child.
	for !root.leaf && len(root.children) == 1 {
		root = root.children[0]
	}
	t.root = root
	t.size--
	return written, true
}

func (t *Tree) minKeys() int { return t.order / 2 }

func (t *Tree) del(n *node, name string) (out *node, written int, ok bool) {
	if n.leaf {
		i := sort.SearchStrings(n.keys, name)
		if i >= len(n.keys) || n.keys[i] != name {
			return n, 0, false
		}
		out = n.clone()
		out.keys = append(out.keys[:i], out.keys[i+1:]...)
		out.recs = append(out.recs[:i], out.recs[i+1:]...)
		return out, 1, true
	}
	ci := childIndex(n, name)
	child, cw, ok := t.del(n.children[ci], name)
	if !ok {
		return n, 0, false
	}
	out = n.clone()
	out.children[ci] = child
	written = cw + 1
	// Fix underflow in the updated child.
	if t.underflow(child) {
		written += t.rebalance(out, ci)
	}
	return out, written, true
}

func (t *Tree) underflow(n *node) bool {
	if n.leaf {
		return len(n.keys) < t.minKeys()
	}
	return len(n.children) < t.minKeys()
}

// rebalance fixes an underflowing child ci of parent p (already a
// private copy) by borrowing from or merging with a sibling. Returns
// extra nodes written.
func (t *Tree) rebalance(p *node, ci int) int {
	child := p.children[ci]
	// Try borrowing from the left sibling.
	if ci > 0 {
		left := p.children[ci-1]
		if t.canLend(left) {
			l, c := left.clone(), child.clone()
			if child.leaf {
				k := l.keys[len(l.keys)-1]
				r := l.recs[len(l.recs)-1]
				l.keys, l.recs = l.keys[:len(l.keys)-1], l.recs[:len(l.recs)-1]
				c.keys = append([]string{k}, c.keys...)
				c.recs = append([]Record{r}, c.recs...)
				p.keys[ci-1] = k
			} else {
				// Rotate through the parent separator.
				moved := l.children[len(l.children)-1]
				movedKey := l.keys[len(l.keys)-1]
				l.children = l.children[:len(l.children)-1]
				l.keys = l.keys[:len(l.keys)-1]
				c.children = append([]*node{moved}, c.children...)
				c.keys = append([]string{p.keys[ci-1]}, c.keys...)
				p.keys[ci-1] = movedKey
			}
			p.children[ci-1], p.children[ci] = l, c
			return 2
		}
	}
	// Try borrowing from the right sibling.
	if ci < len(p.children)-1 {
		right := p.children[ci+1]
		if t.canLend(right) {
			r, c := right.clone(), child.clone()
			if child.leaf {
				k := r.keys[0]
				rec := r.recs[0]
				r.keys, r.recs = r.keys[1:], r.recs[1:]
				c.keys = append(c.keys, k)
				c.recs = append(c.recs, rec)
				p.keys[ci] = r.keys[0]
			} else {
				moved := r.children[0]
				movedKey := r.keys[0]
				r.children = r.children[1:]
				r.keys = r.keys[1:]
				c.children = append(c.children, moved)
				c.keys = append(c.keys, p.keys[ci])
				p.keys[ci] = movedKey
			}
			p.children[ci], p.children[ci+1] = c, r
			return 2
		}
	}
	// Merge with a sibling.
	li := ci - 1
	if li < 0 {
		li = ci // merge child with its right sibling instead
	}
	l, r := p.children[li].clone(), p.children[li+1]
	if l.leaf {
		l.keys = append(l.keys, r.keys...)
		l.recs = append(l.recs, r.recs...)
	} else {
		l.keys = append(l.keys, p.keys[li])
		l.keys = append(l.keys, r.keys...)
		l.children = append(l.children, r.children...)
	}
	p.keys = append(p.keys[:li], p.keys[li+1:]...)
	p.children[li] = l
	p.children = append(p.children[:li+1], p.children[li+2:]...)
	return 1
}

func (t *Tree) canLend(n *node) bool {
	if n.leaf {
		return len(n.keys) > t.minKeys()
	}
	return len(n.children) > t.minKeys()
}

// Range visits entries in name order; returning false stops iteration.
func (t *Tree) Range(fn func(Record) bool) {
	t.rangeNode(t.root, fn)
}

func (t *Tree) rangeNode(n *node, fn func(Record) bool) bool {
	if n.leaf {
		for _, r := range n.recs {
			if !fn(r) {
				return false
			}
		}
		return true
	}
	for _, c := range n.children {
		if !t.rangeNode(c, fn) {
			return false
		}
	}
	return true
}

// Nodes counts reachable nodes (the object's on-disk footprint in
// B-tree blocks).
func (t *Tree) Nodes() int {
	var count func(n *node) int
	count = func(n *node) int {
		if n.leaf {
			return 1
		}
		total := 1
		for _, c := range n.children {
			total += count(c)
		}
		return total
	}
	return count(t.root)
}

// CheckInvariants validates key ordering, size, balance, and node
// occupancy. For tests.
func (t *Tree) CheckInvariants() error {
	var prev string
	first := true
	count := 0
	var depths []int
	var rec func(n *node, depth int, isRoot bool) error
	rec = func(n *node, depth int, isRoot bool) error {
		if n.leaf {
			depths = append(depths, depth)
			if !isRoot && len(n.keys) < t.minKeys() {
				return fmt.Errorf("dirstore: leaf underflow (%d keys)", len(n.keys))
			}
			if len(n.keys) != len(n.recs) {
				return fmt.Errorf("dirstore: leaf keys/recs mismatch")
			}
			for i, k := range n.keys {
				if n.recs[i].Name != k {
					return fmt.Errorf("dirstore: key %q != record name %q", k, n.recs[i].Name)
				}
				if !first && k <= prev {
					return fmt.Errorf("dirstore: keys out of order: %q after %q", k, prev)
				}
				prev, first = k, false
				count++
			}
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("dirstore: internal node fanout mismatch")
		}
		if !isRoot && len(n.children) < t.minKeys() {
			return fmt.Errorf("dirstore: internal underflow (%d children)", len(n.children))
		}
		for _, c := range n.children {
			if err := rec(c, depth+1, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.root, 0, true); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("dirstore: size %d != counted %d", t.size, count)
	}
	for _, d := range depths {
		if d != depths[0] {
			return fmt.Errorf("dirstore: leaves at different depths")
		}
	}
	return nil
}

package snap

import (
	"math"
	"strings"
	"testing"
)

// TestRoundTrip pins the codec contract: every scalar type written in
// section order reads back exactly, across multiple sections.
func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Begin("alpha")
	w.U64(0)
	w.U64(math.MaxUint64)
	w.I64(-1)
	w.I64(math.MinInt64)
	w.Int(-42)
	w.Bool(true)
	w.Bool(false)
	w.F64(math.Copysign(0, -1))
	w.F64(math.Inf(1))
	w.F64(math.NaN())
	w.String("")
	w.String("päth/with/ütf8")
	w.End()
	w.Begin("beta")
	w.U64(7)
	w.End()

	r, err := NewReader(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	name, err := r.Section()
	if err != nil || name != "alpha" {
		t.Fatalf("first section = %q, %v; want alpha", name, err)
	}
	if got := r.U64(); got != 0 {
		t.Errorf("U64 = %d, want 0", got)
	}
	if got := r.U64(); got != math.MaxUint64 {
		t.Errorf("U64 = %d, want max", got)
	}
	if got := r.I64(); got != -1 {
		t.Errorf("I64 = %d, want -1", got)
	}
	if got := r.I64(); got != math.MinInt64 {
		t.Errorf("I64 = %d, want min", got)
	}
	if got := r.Int(); got != -42 {
		t.Errorf("Int = %d, want -42", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool sequence mismatch")
	}
	if bits := math.Float64bits(r.F64()); bits != math.Float64bits(math.Copysign(0, -1)) {
		t.Errorf("F64 -0.0 bits = %x", bits)
	}
	if got := r.F64(); !math.IsInf(got, 1) {
		t.Errorf("F64 = %v, want +Inf", got)
	}
	if got := r.F64(); !math.IsNaN(got) {
		t.Errorf("F64 = %v, want NaN", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("String = %q, want empty", got)
	}
	if got := r.String(); got != "päth/with/ütf8" {
		t.Errorf("String = %q", got)
	}
	if r.Remaining() != 0 {
		t.Errorf("%d bytes left in alpha", r.Remaining())
	}
	name, err = r.Section()
	if err != nil || name != "beta" {
		t.Fatalf("second section = %q, %v; want beta", name, err)
	}
	if got := r.U64(); got != 7 {
		t.Errorf("beta U64 = %d, want 7", got)
	}
	if name, err := r.Section(); err != nil || name != "" {
		t.Fatalf("end of stream = %q, %v; want empty", name, err)
	}
}

// TestFirstSectionNotSkipped is a regression test: a fresh Reader's
// first Section call must open the first section rather than skipping
// it (the section-skip logic starts from the previous section's end,
// which must be zero before any section has been read).
func TestFirstSectionNotSkipped(t *testing.T) {
	w := NewWriter()
	w.Begin("only")
	w.U64(99)
	w.End()
	r, err := NewReader(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	name, err := r.Section()
	if err != nil {
		t.Fatal(err)
	}
	if name != "only" {
		t.Fatalf("first Section = %q, want only", name)
	}
	if got := r.U64(); got != 99 {
		t.Fatalf("payload = %d, want 99", got)
	}
}

// TestSectionSkipsUnreadRemainder: a reader that ignores trailing
// fields of one section still lands on the next section cleanly.
func TestSectionSkipsUnreadRemainder(t *testing.T) {
	w := NewWriter()
	w.Begin("fat")
	for i := 0; i < 16; i++ {
		w.U64(uint64(i))
	}
	w.End()
	w.Begin("thin")
	w.Bool(true)
	w.End()
	r, err := NewReader(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if name, _ := r.Section(); name != "fat" {
		t.Fatalf("section %q, want fat", name)
	}
	_ = r.U64() // read one of sixteen fields, leave the rest
	if name, _ := r.Section(); name != "thin" {
		t.Fatalf("section after partial read = %q, want thin", name)
	}
	if !r.Bool() {
		t.Fatal("thin payload lost")
	}
}

// TestChecksumCatchesCorruption flips each byte of a snapshot in turn;
// every mutation must be rejected before any section is served.
func TestChecksumCatchesCorruption(t *testing.T) {
	w := NewWriter()
	w.Begin("s")
	w.U64(123456)
	w.String("payload")
	w.End()
	good := w.Bytes()
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x40
		if _, err := NewReader(bad); err == nil {
			t.Fatalf("corruption at byte %d of %d accepted", i, len(good))
		}
	}
	if _, err := NewReader(good[:4]); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated snapshot: %v", err)
	}
}

// TestReadPastSectionEndPanics: short reads inside a checksummed
// section are writer/reader mismatches, and must fail loudly.
func TestReadPastSectionEndPanics(t *testing.T) {
	w := NewWriter()
	w.Begin("s")
	w.U64(1)
	w.End()
	r, err := NewReader(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Section(); err != nil {
		t.Fatal(err)
	}
	_ = r.U64()
	defer func() {
		if recover() == nil {
			t.Fatal("read past section end did not panic")
		}
	}()
	_ = r.U64()
}

package mds

import (
	"sort"

	"dynmds/internal/msg"
	"dynmds/internal/namespace"
	"dynmds/internal/net"
	"dynmds/internal/partition"
	"dynmds/internal/sim"
)

// Distributed monotonic updates (§4.2): "fields like modification time
// and file size are monotonically increasing for most operations, such
// that replicas serving concurrent writers can periodically send their
// most recent value to the authority, which retains the maximum value
// seen thus far and initiates a callback for the latest information on
// client reads" — the GPFS shared-write technique.
//
// A Write op arriving at a node holding a replica of the target is
// absorbed locally: the node tracks its local maximum size and marks
// itself in the inode's unflushed-writers mask. A periodic flusher
// pushes local maxima to authorities. A Stat served at the authority
// while unflushed writers exist first calls back to them for their
// maxima.

// absorbWrite handles a Write op at a replica-holding non-authority.
func (m *MDS) absorbWrite(req *msg.Request) {
	target := req.Target
	if cur, ok := m.sizePending[target.ID]; !ok || req.Size > cur {
		m.sizePending[target.ID] = req.Size
	}
	m.eng.Defer(markUnflushed, m, target)
	m.Stats.WritesAbsorbed++
	m.bumpPopularity(target)
	m.reply(req)
}

// markUnflushed flags this node in inode b's shared unflushed-writers
// mask (deferred: the mask is read by the authority's stat path).
func markUnflushed(a, b any) {
	m := a.(*MDS)
	if m.id < 64 {
		partition.TagsOf(b.(*namespace.Inode)).UnflushedWriters |= 1 << uint(m.id)
	}
}

// clearUnflushedTag is the deferred form of clearUnflushed.
func clearUnflushedTag(a, b any) {
	a.(*MDS).clearUnflushed(b.(*namespace.Inode))
}

// applyWrite applies a Write at the authority: retain the maximum.
func (m *MDS) applyWrite(req *msg.Request) {
	if req.Size > req.Target.Size {
		req.Target.Size = req.Size
	}
}

// flushWrites periodically sends local size maxima to authorities. The
// pending map is drained in sorted inode order: map iteration order
// would otherwise leak into message ordering and break reproducibility
// (serial runs were shielded only by the effects being order-free).
func (m *MDS) flushWrites(now sim.Time) {
	if m.failed || len(m.sizePending) == 0 {
		return
	}
	tree := m.cluster.Tree()
	ids := make([]namespace.InodeID, 0, len(m.sizePending))
	for id := range m.sizePending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		size := m.sizePending[id]
		ino, ok := tree.ByID(id)
		if !ok {
			continue // unlinked since
		}
		m.Stats.WriteFlushes++
		if auth := m.strat.Authority(ino); auth != m.id {
			peer := m.cluster.Node(auth)
			m.fab.Send(net.WriteFlush, m.id, auth, net.Bytes(net.WriteFlush), call0, func() {
				if peer.failed {
					return
				}
				peer.cpu.Submit(peer.svc(peer.cfg.PeerService), func() {
					// The size write is shared state (the authority's
					// shard may not own the inode's other readers).
					peer.eng.Defer(call0, func() {
						if size > ino.Size {
							ino.Size = size
						}
					}, nil)
				})
			}, nil)
			m.eng.Defer(clearUnflushedTag, m, ino)
			continue
		}
		m.eng.Defer(call0, func() {
			if size > ino.Size {
				ino.Size = size
			}
			m.clearUnflushed(ino)
		}, nil)
	}
	clear(m.sizePending)
}

func (m *MDS) clearUnflushed(ino *namespace.Inode) {
	if m.id < 64 {
		partition.TagsOf(ino).UnflushedWriters &^= 1 << uint(m.id)
	}
}

// statCallbackMask returns the set of peers holding unflushed size
// maxima for target — the writers a Stat must call back to (§4.2).
// Zero means the reply can go out immediately; the caller keeps that
// fast path allocation-free by checking before statCallbackSlow.
func (m *MDS) statCallbackMask(target *namespace.Inode) uint64 {
	mask := partition.TagsOf(target).UnflushedWriters
	if m.id < 64 {
		mask &^= 1 << uint(m.id)
	}
	return mask
}

// statCallbackSlow collects outstanding write maxima from the unflushed
// writers in mask, then replies. Callbacks are rare enough that the
// per-round-trip closures here do not matter.
func (m *MDS) statCallbackSlow(req *msg.Request, mask uint64) {
	target := req.Target
	done := func() { m.finishReply(req) }
	m.Stats.SizeCallbacks++
	outstanding := 0
	for i := 0; i < m.cluster.NumMDS() && i < 64; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		outstanding++
		peer := m.cluster.Node(i)
		m.fab.Send(net.StatCallback, m.id, i, net.Bytes(net.StatCallback), call0, func() {
			peer.cpu.Submit(peer.svc(peer.cfg.PeerService), func() {
				// Peer reports its local max and clears it. The target's
				// size and writer mask are shared, so the writes commit
				// at the barrier; the reply itself carries no size, so
				// answering before the commit is indistinguishable.
				peer.eng.Defer(call0, func() {
					if size, ok := peer.sizePending[target.ID]; ok {
						if size > target.Size {
							target.Size = size
						}
						delete(peer.sizePending, target.ID)
					}
					peer.clearUnflushed(target)
				}, nil)
				m.fab.Send(net.StatCallback, peer.id, m.id, net.Bytes(net.StatCallback), call0, func() {
					outstanding--
					if outstanding == 0 && !m.failed {
						done()
					}
				}, nil)
			})
		}, nil)
	}
}

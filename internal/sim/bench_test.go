package sim

import "testing"

// BenchmarkEngineScheduleDispatch measures raw event throughput: the
// simulator's capacity bound for large experiments.
func BenchmarkEngineScheduleDispatch(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000), func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkServerPipeline measures a saturated FIFO service centre.
func BenchmarkServerPipeline(b *testing.B) {
	e := NewEngine()
	s := NewServer(e, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Submit(10, nil)
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

func BenchmarkRNGExp(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Exp(Millisecond)
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	r := NewRNG(1)
	z := r.NewZipf(1.2, 100000)
	for i := 0; i < b.N; i++ {
		_ = z.Draw()
	}
}

package dirstore

import (
	"fmt"

	"dynmds/internal/namespace"
	"dynmds/internal/snap"
)

// Checkpoint codec. The exact node structure is serialized — not just
// the records — because future incremental-update costs (nodes written
// per mutation) depend on the tree shape, which in turn depends on the
// historical insertion order. A restored object must charge the same
// costs the original would have.

// SnapshotTo serializes the tree structure.
func (t *Tree) SnapshotTo(w *snap.Writer) {
	w.Int(t.order)
	w.Int(t.size)
	var enc func(n *node)
	enc = func(n *node) {
		w.Bool(n.leaf)
		if n.leaf {
			w.Int(len(n.recs))
			for _, rec := range n.recs {
				w.String(rec.Name)
				w.U64(uint64(rec.Ino))
				w.U64(uint64(rec.Kind))
				w.U64(uint64(rec.Mode))
				w.I64(rec.Size)
			}
			return
		}
		w.Int(len(n.keys))
		for _, k := range n.keys {
			w.String(k)
		}
		for _, c := range n.children {
			enc(c)
		}
	}
	enc(t.root)
}

// DecodeTree reads a tree serialized by SnapshotTo.
func DecodeTree(r *snap.Reader) (*Tree, error) {
	order := r.Int()
	size := r.Int()
	if order < MinOrder {
		return nil, fmt.Errorf("dirstore: snapshot order %d below minimum", order)
	}
	var dec func() *node
	dec = func() *node {
		n := &node{leaf: r.Bool()}
		if n.leaf {
			k := r.Int()
			n.keys = make([]string, k)
			n.recs = make([]Record, k)
			for i := 0; i < k; i++ {
				n.recs[i].Name = r.String()
				n.recs[i].Ino = namespace.InodeID(r.U64())
				n.recs[i].Kind = namespace.Kind(r.U64())
				n.recs[i].Mode = namespace.Mode(r.U64())
				n.recs[i].Size = r.I64()
				n.keys[i] = n.recs[i].Name
			}
			return n
		}
		k := r.Int()
		n.keys = make([]string, k)
		for i := 0; i < k; i++ {
			n.keys[i] = r.String()
		}
		n.children = make([]*node, k+1)
		for i := range n.children {
			n.children[i] = dec()
		}
		return n
	}
	t := &Tree{root: dec(), order: order, size: size}
	if err := t.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("dirstore: snapshot failed invariants: %w", err)
	}
	return t, nil
}

package harness

import (
	"reflect"
	"sync"
	"testing"

	"dynmds/internal/cluster"
	"dynmds/internal/sim"
)

// withSharing runs fn with snapshot sharing forced to on, starting from
// a clean cache, and restores the previous mode afterwards.
func withSharing(t *testing.T, on bool, fn func()) {
	t.Helper()
	prev := SnapshotSharing()
	SetSnapshotSharing(on)
	ResetSnapshotCache()
	defer func() {
		SetSnapshotSharing(prev)
		ResetSnapshotCache()
	}()
	fn()
}

// TestSharedSnapshotEquivalence is the acceptance gate for the
// frozen-base refactor: every strategy, run through the legacy
// per-run-generation path and through the shared-snapshot path, must
// produce bit-identical results — hit rate, op counts, migrations, all
// of it. The workloads mutate the namespace (create-heavy general mix),
// so this exercises the copy-on-write overlay, not just reads.
func TestSharedSnapshotEquivalence(t *testing.T) {
	for _, s := range cluster.Strategies {
		cfg := tinyCfg(s)
		var legacy, shared *cluster.Result
		withSharing(t, false, func() {
			r, err := RunOne(RunSpec{Label: "legacy/" + s, Cfg: cfg})
			if err != nil {
				t.Fatal(err)
			}
			legacy = r
		})
		withSharing(t, true, func() {
			r, err := RunOne(RunSpec{Label: "shared/" + s, Cfg: cfg})
			if err != nil {
				t.Fatal(err)
			}
			shared = r
		})
		if legacy.SharedSnapshot || !shared.SharedSnapshot {
			t.Fatalf("%s: SharedSnapshot flags wrong: legacy=%v shared=%v",
				s, legacy.SharedSnapshot, shared.SharedSnapshot)
		}
		legacy.SharedSnapshot = shared.SharedSnapshot
		if !reflect.DeepEqual(stripWall(legacy), stripWall(shared)) {
			t.Fatalf("%s diverged:\nlegacy: %+v\nshared: %+v", s, legacy, shared)
		}
	}
}

// TestSharedSnapshotCacheReuse verifies the sweep generates each
// distinct fs exactly once: five strategies over the same config is one
// generation plus four reuses, and a second sweep is pure reuse.
func TestSharedSnapshotCacheReuse(t *testing.T) {
	withSharing(t, true, func() {
		var specs []RunSpec
		for _, s := range cluster.Strategies {
			specs = append(specs, RunSpec{Label: s, Cfg: tinyCfg(s)})
		}
		if _, err := Sweep(specs); err != nil {
			t.Fatal(err)
		}
		gen, shared := SnapshotCacheStats()
		if gen != 1 || shared != int64(len(specs)-1) {
			t.Fatalf("after sweep 1: generated=%d shared=%d, want 1/%d", gen, shared, len(specs)-1)
		}
		if _, err := Sweep(specs); err != nil {
			t.Fatal(err)
		}
		gen, shared = SnapshotCacheStats()
		if gen != 1 || shared != int64(2*len(specs)-1) {
			t.Fatalf("after sweep 2: generated=%d shared=%d, want 1/%d", gen, shared, 2*len(specs)-1)
		}
	})
}

// TestConcurrentOverlayRuns mutates one shared frozen base from many
// simulation runs at once — under -race this proves overlay runs never
// write to shared state, and the results must still match a serial
// legacy run exactly.
func TestConcurrentOverlayRuns(t *testing.T) {
	cfg := tinyCfg(cluster.StratDynamic)
	cfg.Duration = 3 * sim.Second

	var want *cluster.Result
	withSharing(t, false, func() {
		r, err := RunOne(RunSpec{Label: "legacy", Cfg: cfg})
		if err != nil {
			t.Fatal(err)
		}
		want = r
	})

	withSharing(t, true, func() {
		// All goroutines race on a cold cache: one generates, the rest
		// block on the entry's once and then share the frozen base.
		const runs = 4
		results := make([]*cluster.Result, runs)
		errs := make([]error, runs)
		var wg sync.WaitGroup
		for i := 0; i < runs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = RunOne(RunSpec{Label: "conc", Cfg: cfg})
			}(i)
		}
		wg.Wait()
		for i := 0; i < runs; i++ {
			if errs[i] != nil {
				t.Fatal(errs[i])
			}
			got := stripWall(results[i])
			got.SharedSnapshot = false
			if !reflect.DeepEqual(stripWall(want), got) {
				t.Fatalf("concurrent run %d diverged:\nlegacy: %+v\nshared: %+v", i, want, results[i])
			}
		}
		gen, shared := SnapshotCacheStats()
		if gen != 1 || shared != runs-1 {
			t.Fatalf("generated=%d shared=%d, want 1/%d", gen, shared, runs-1)
		}
	})
}

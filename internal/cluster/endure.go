package cluster

import (
	"fmt"
	"sort"
	"time"

	"dynmds/internal/metrics"
	"dynmds/internal/namespace"
	"dynmds/internal/partition"
	"dynmds/internal/sim"
	"dynmds/internal/snap"
)

// Endurance orchestration: segmented execution with checkpoints.
//
// A run is cut into segments by checkpoint instants T_1 < T_2 < ... At
// each T_k the cluster executes the quiesce protocol — pause arrivals,
// stop the perpetual tickers, drain in-flight work, verify quiescence,
// garbage-collect cached replicas of tombstoned inodes — and then
// either serializes itself (CheckpointTo) or simply resumes. Crucially
// the protocol runs IDENTICALLY whether or not a snapshot is written:
// an uninterrupted run with checkpoint cadence and a run restored from
// any of its snapshots execute the same event sequence, so their final
// digests match bit for bit.

// QuiesceDrain is the drain window after pausing arrivals: long enough
// for every bounded message chain to retire (the worst — a retried,
// forwarded request with a disk fetch — is well under a second; the
// full retry ladder is ~1.2s with fault-mode defaults).
const QuiesceDrain = 2 * sim.Second

// EndureCheck verifies the configuration is endurance-capable. The
// checkpoint codec covers the open-loop plane and the subtree/hash
// strategies; closed-loop clients, scenario acts, the shared OSD pool
// and the lazy-hybrid ledger are out of scope and fail loudly here.
func (c *Cluster) EndureCheck() error {
	if c.Pop == nil {
		return fmt.Errorf("cluster: endurance runs need the open-loop traffic plane")
	}
	if len(c.Cfg.Acts) != 0 {
		return fmt.Errorf("cluster: endurance runs do not support scenario acts")
	}
	if c.Pool != nil {
		return fmt.Errorf("cluster: endurance runs do not support a shared OSD pool")
	}
	if _, ok := c.Strategy.(*partition.LazyHybrid); ok {
		return fmt.Errorf("cluster: endurance runs do not support the lazyhybrid strategy")
	}
	if c.Cfg.MakeStrategy != nil {
		return fmt.Errorf("cluster: endurance runs do not support custom strategies")
	}
	return nil
}

// subtreeTable returns the strategy's delegation table, nil for hash
// strategies. (c.table is only populated for sharded runs.)
func (c *Cluster) subtreeTable() *partition.SubtreeTable {
	if c.Dyn != nil {
		return c.Dyn.Table
	}
	if s, ok := c.Strategy.(*partition.StaticSubtree); ok {
		return s.Table
	}
	return nil
}

// StartEndure arms the cluster exactly as Run does — population,
// balancer, flushers, warmup snapshot, fault schedule — but returns
// without executing. The endurance runner then advances time in
// segments with RunTo, quiescing at each checkpoint.
func (c *Cluster) StartEndure() {
	if c.Pop != nil {
		c.Pop.Start()
	}
	if c.Balancer != nil {
		c.Balancer.Start()
	}
	for _, n := range c.Nodes {
		n.StartFlusher()
	}
	if c.Cfg.Warmup > 0 && c.Cfg.Warmup < c.Cfg.Duration {
		c.Eng.At(c.Cfg.Warmup, c.snapshotWarmup)
	}
	c.scheduleFaults()
}

// StartEndureRestored arms a freshly built cluster for a restored
// continuation from snapshot time t: only schedule entries strictly in
// the future are posted, in the same relative order StartEndure would
// post them (warmup first, then crashes, recoveries, slow windows), so
// equal-timestamp dispatch order matches the uninterrupted run.
// Arrivals, balancer rounds and flushers are NOT armed here — Resume
// restarts them after the serialized state is applied, exactly as it
// does after an in-place checkpoint.
func (c *Cluster) StartEndureRestored(t sim.Time) {
	if c.Cfg.Warmup > t && c.Cfg.Warmup < c.Cfg.Duration {
		c.Eng.At(c.Cfg.Warmup, c.snapshotWarmup)
	}
	if c.sched == nil {
		return
	}
	for _, ev := range c.sched.Crashes {
		if ev.At <= t {
			continue
		}
		ev := ev
		c.Eng.At(ev.At, func() {
			c.Nodes[ev.Node].Fail()
			c.Failures = append(c.Failures, FaultEvent{At: ev.At, Node: ev.Node})
		})
	}
	for _, ev := range c.sched.Recovers {
		if ev.At <= t {
			continue
		}
		ev := ev
		c.Eng.At(ev.At, func() {
			c.RecoverNode(ev.Node) //nolint:errcheck // node index validated at parse
		})
	}
	for _, w := range c.sched.Slows {
		w := w
		if w.From > t {
			c.Eng.At(w.From, func() { c.Nodes[w.Node].SetSlow(w.Factor) })
		}
		if w.To > t {
			c.Eng.At(w.To, func() { c.Nodes[w.Node].SetSlow(1) })
		}
	}
}

// RunTo advances the simulation to absolute virtual time t (through the
// shard group when sharded). Callable repeatedly; wall time accrues to
// the run accounting.
func (c *Cluster) RunTo(t sim.Time) {
	start := time.Now()
	if c.group != nil {
		c.group.Run(t)
	} else {
		c.Eng.RunUntil(t)
	}
	c.runWall += time.Since(start)
}

// Now returns the global virtual clock.
func (c *Cluster) Now() sim.Time { return c.Eng.Now() }

// Quiesce executes the checkpoint protocol at the current instant:
// pause arrivals and stop the tickers, drain QuiesceDrain of virtual
// time so in-flight chains retire, verify that nothing is left in
// flight anywhere, then garbage-collect cached replicas of tombstoned
// inodes on every node (the deterministic checkpoint GC — it runs
// whether or not a snapshot is written, keeping checkpointing and
// restored runs in lockstep). On success the cluster is serializable;
// call Resume (after optionally CheckpointTo) to continue.
func (c *Cluster) Quiesce() error {
	c.Pop.Pause()
	if c.Balancer != nil {
		c.Balancer.Stop()
	}
	for _, n := range c.Nodes {
		n.StopFlusher()
	}
	c.RunTo(c.Eng.Now() + QuiesceDrain)
	if n := c.Pop.RetryOutstanding(); n != 0 {
		return fmt.Errorf("cluster: quiesce with %d boxed retries outstanding", n)
	}
	for _, n := range c.Nodes {
		if err := n.CheckQuiesced(); err != nil {
			return fmt.Errorf("cluster: quiesce: %w", err)
		}
	}
	if n := c.Fab.InFlight(); n != 0 {
		return fmt.Errorf("cluster: quiesce with %d messages in flight", n)
	}
	if n := c.Fab.LiveEnvelopes(); n != 0 {
		return fmt.Errorf("cluster: quiesce with %d live envelopes", n)
	}
	if n := c.Fab.PendingMail(); n != 0 {
		return fmt.Errorf("cluster: quiesce with %d queued cross-shard deliveries", n)
	}
	dead := c.Snap.Tree.Tombstoned
	for _, n := range c.Nodes {
		n.Cache().DropDestroyed(dead)
	}
	return nil
}

// Resume restarts the tickers and arrivals after a quiesce, in the same
// order in both the checkpointing and the restored run (event sequence
// numbers — and therefore equal-timestamp dispatch order — depend on
// posting order).
func (c *Cluster) Resume() {
	if c.Balancer != nil {
		c.Balancer.Start()
	}
	for _, n := range c.Nodes {
		n.StartFlusher()
	}
	c.Pop.Resume()
}

// ---- serialization ----

func writeSeries(w *snap.Writer, s *metrics.Series) {
	sums, counts := s.State()
	w.Int(len(sums))
	for i := range sums {
		w.F64(sums[i])
		w.I64(counts[i])
	}
}

func readSeries(r *snap.Reader, s *metrics.Series) {
	n := r.Int()
	sums := make([]float64, n)
	counts := make([]int64, n)
	for i := 0; i < n; i++ {
		sums[i] = r.F64()
		counts[i] = r.I64()
	}
	s.SetState(sums, counts)
}

func writeHist(w *snap.Writer, h *metrics.Histogram) {
	counts, total := h.State()
	w.Int(len(counts))
	for _, c := range counts {
		w.U64(c)
	}
	w.U64(total)
}

func readHist(r *snap.Reader, h *metrics.Histogram) error {
	n := r.Int()
	counts := make([]uint64, n)
	for i := range counts {
		counts[i] = r.U64()
	}
	total := r.U64()
	have, _ := h.State()
	if n != len(have) {
		return fmt.Errorf("cluster: snapshot histogram has %d buckets, built %d", n, len(have))
	}
	h.SetState(counts, total)
	return nil
}

func writeLatHist(w *snap.Writer, h *metrics.LatHist) {
	nz := 0
	h.State(func(int, uint64) { nz++ })
	w.Int(nz)
	h.State(func(idx int, count uint64) {
		w.Int(idx)
		w.U64(count)
	})
}

func readLatHist(r *snap.Reader, h *metrics.LatHist) {
	nz := r.Int()
	for i := 0; i < nz; i++ {
		idx := r.Int()
		h.SetBucket(idx, r.U64())
	}
}

func writeFaultEvents(w *snap.Writer, evs []FaultEvent) {
	w.Int(len(evs))
	for _, ev := range evs {
		w.I64(int64(ev.At))
		w.Int(ev.Node)
		w.Int(ev.Warmed)
	}
}

func readFaultEvents(r *snap.Reader) []FaultEvent {
	n := r.Int()
	if n == 0 {
		return nil
	}
	evs := make([]FaultEvent, n)
	for i := range evs {
		evs[i] = FaultEvent{At: sim.Time(r.I64()), Node: r.Int(), Warmed: r.Int()}
	}
	return evs
}

// CheckpointTo serializes the full cluster state. Call only after a
// successful Quiesce; the per-subsystem codecs panic on any trace of
// in-flight work.
func (c *Cluster) CheckpointTo(w *snap.Writer) {
	if c.lanesMerged {
		panic("cluster: checkpoint after lanes were merged (Collect already ran)")
	}
	w.Begin("tree")
	c.Snap.Tree.SnapshotTo(w)
	w.End()

	w.Begin("partition")
	if t := c.subtreeTable(); t != nil {
		w.Bool(true)
		t.SnapshotTable(w)
	} else {
		w.Bool(false)
	}
	partition.SnapshotTags(w, c.Snap.Tree)
	w.End()

	w.Begin("core")
	if c.Dyn != nil {
		w.Bool(true)
		c.Dyn.SnapshotTo(w)
	} else {
		w.Bool(false)
	}
	if c.Traffic != nil {
		w.Bool(true)
		c.Traffic.SnapshotTo(w)
	} else {
		w.Bool(false)
	}
	if c.Balancer != nil {
		w.Bool(true)
		c.Balancer.SnapshotTo(w)
	} else {
		w.Bool(false)
	}
	w.End()

	w.Begin("nodes")
	w.Int(len(c.Nodes))
	for _, n := range c.Nodes {
		n.SnapshotTo(w)
	}
	w.End()

	w.Begin("lease")
	if c.Lease != nil {
		w.Bool(true)
		c.Lease.SnapshotTo(w)
	} else {
		w.Bool(false)
	}
	w.End()

	w.Begin("fault")
	if c.plane != nil {
		w.Bool(true)
		w.U64(c.plane.Draws())
		for _, s := range c.strikes {
			w.Int(s)
		}
		for _, d := range c.down {
			w.Bool(d)
		}
		w.U64(c.suspicions)
		writeFaultEvents(w, c.Failures)
		writeFaultEvents(w, c.Recoveries)
		writeFaultEvents(w, c.Downs)
		writeSeries(w, c.CompletedOps)
		victims := make([]int, 0, len(c.lostRoots))
		for v := range c.lostRoots {
			victims = append(victims, v)
		}
		sort.Ints(victims)
		w.Int(len(victims))
		for _, v := range victims {
			roots := c.lostRoots[v]
			w.Int(v)
			w.Int(len(roots))
			// Slice order is preserved verbatim: fail-back re-delegates
			// in this order on recovery.
			for _, root := range roots {
				w.U64(uint64(root.ID))
			}
		}
	} else {
		w.Bool(false)
	}
	w.End()

	w.Begin("fabric")
	c.Fab.SnapshotTo(w)
	w.End()

	w.Begin("pop")
	c.Pop.SnapshotTo(w)
	w.End()

	w.Begin("series")
	w.Int(len(c.RepliesPerNode))
	for _, s := range c.RepliesPerNode {
		writeSeries(w, s)
	}
	writeSeries(w, c.Forwards)
	writeSeries(w, c.Arrivals)
	writeHist(w, c.Latencies)
	writeLatHist(w, c.LatH)
	if c.numShards > 1 {
		w.Int(c.numShards)
		for i := 0; i < c.numShards; i++ {
			writeSeries(w, c.arrivalLanes[i])
			writeSeries(w, c.forwardLanes[i])
			writeHist(w, c.latencyLanes[i])
			writeLatHist(w, c.latHistLanes[i])
		}
	} else {
		w.Int(-1)
	}
	w.U64(c.warmServed)
	w.U64(c.warmForwards)
	w.U64(c.warmArrivals)
	w.U64(c.warmHits)
	w.U64(c.warmMisses)
	w.Bool(c.warmTaken)
	w.End()
}

func (c *Cluster) expectSection(r *snap.Reader, want string) error {
	name, err := r.Section()
	if err != nil {
		return fmt.Errorf("cluster: reading snapshot section %q: %w", want, err)
	}
	if name != want {
		return fmt.Errorf("cluster: snapshot section %q where %q expected", name, want)
	}
	return nil
}

// RestoreCheckpoint applies a checkpoint onto a freshly built cluster
// with the same configuration. The engines must not have advanced; call
// StartEndureRestored and advance to the snapshot time afterwards, then
// Resume.
func (c *Cluster) RestoreCheckpoint(r *snap.Reader) error {
	if err := c.expectSection(r, "tree"); err != nil {
		return err
	}
	tree := c.Snap.Tree
	if err := tree.RestoreFrom(r); err != nil {
		return err
	}

	if err := c.expectSection(r, "partition"); err != nil {
		return err
	}
	table := c.subtreeTable()
	if r.Bool() {
		if table == nil {
			return fmt.Errorf("cluster: snapshot has a subtree table, strategy %q does not", c.Cfg.Strategy)
		}
		if err := table.RestoreTable(r, tree); err != nil {
			return err
		}
	} else if table != nil {
		return fmt.Errorf("cluster: snapshot has no subtree table, strategy %q needs one", c.Cfg.Strategy)
	}
	if c.numShards > 1 {
		// Inodes created after the pristine snapshot have no tag blocks
		// yet; materialize them before windows run concurrently, exactly
		// as New does for the pristine tree.
		tree.Walk(func(n *namespace.Inode) bool {
			_ = partition.TagsOf(n)
			return true
		})
	}
	if err := partition.RestoreTags(r, tree, c.Cfg.MDS.PopHalfLife, c.Cfg.MDS.PopHalfLife); err != nil {
		return err
	}
	if table != nil && c.numShards > 1 {
		// Memos came from the snapshot verbatim (they are behavioral
		// state — see partition's codec); only resync the barrier's
		// epoch watermark so it does not re-Memoize over them.
		c.tableEpoch = table.Epoch()
	}

	if err := c.expectSection(r, "core"); err != nil {
		return err
	}
	if r.Bool() {
		if c.Dyn == nil {
			return fmt.Errorf("cluster: snapshot has dynamic-strategy state, cluster does not")
		}
		c.Dyn.RestoreFrom(r)
	}
	if r.Bool() {
		if c.Traffic == nil {
			return fmt.Errorf("cluster: snapshot has traffic-control state, cluster does not")
		}
		c.Traffic.RestoreFrom(r)
	}
	if r.Bool() {
		if c.Balancer == nil {
			return fmt.Errorf("cluster: snapshot has balancer state, cluster does not")
		}
		if err := c.Balancer.RestoreFrom(r, tree); err != nil {
			return err
		}
	}

	if err := c.expectSection(r, "nodes"); err != nil {
		return err
	}
	if n := r.Int(); n != len(c.Nodes) {
		return fmt.Errorf("cluster: snapshot has %d nodes, cluster has %d", n, len(c.Nodes))
	}
	resolve := func(id namespace.InodeID) (*namespace.Inode, bool) { return tree.ByID(id) }
	for _, n := range c.Nodes {
		if err := n.RestoreFrom(r, resolve); err != nil {
			return err
		}
	}

	if err := c.expectSection(r, "lease"); err != nil {
		return err
	}
	if r.Bool() {
		if c.Lease == nil {
			return fmt.Errorf("cluster: snapshot has lease state, cluster does not")
		}
		if err := c.Lease.RestoreFrom(r); err != nil {
			return err
		}
	}

	if err := c.expectSection(r, "fault"); err != nil {
		return err
	}
	if r.Bool() {
		if c.plane == nil {
			return fmt.Errorf("cluster: snapshot has fault state, cluster has no fault schedule")
		}
		c.plane.ReplayDraws(r.U64())
		for i := range c.strikes {
			c.strikes[i] = r.Int()
		}
		for i := range c.down {
			c.down[i] = r.Bool()
		}
		c.suspicions = r.U64()
		c.Failures = readFaultEvents(r)
		c.Recoveries = readFaultEvents(r)
		c.Downs = readFaultEvents(r)
		readSeries(r, c.CompletedOps)
		nv := r.Int()
		for i := 0; i < nv; i++ {
			v := r.Int()
			nr := r.Int()
			roots := make([]*namespace.Inode, nr)
			for j := range roots {
				id := namespace.InodeID(r.U64())
				root, ok := tree.ByID(id)
				if !ok {
					return fmt.Errorf("cluster: snapshot lost-root %d unresolvable", id)
				}
				roots[j] = root
			}
			c.lostRoots[v] = roots
		}
	} else if c.plane != nil {
		return fmt.Errorf("cluster: snapshot has no fault state, cluster has a fault schedule")
	}

	if err := c.expectSection(r, "fabric"); err != nil {
		return err
	}
	if err := c.Fab.RestoreFrom(r); err != nil {
		return err
	}

	if err := c.expectSection(r, "pop"); err != nil {
		return err
	}
	if err := c.Pop.RestoreFrom(r, resolve); err != nil {
		return err
	}

	if err := c.expectSection(r, "series"); err != nil {
		return err
	}
	if n := r.Int(); n != len(c.RepliesPerNode) {
		return fmt.Errorf("cluster: snapshot has %d reply series, cluster has %d", n, len(c.RepliesPerNode))
	}
	for _, s := range c.RepliesPerNode {
		readSeries(r, s)
	}
	readSeries(r, c.Forwards)
	readSeries(r, c.Arrivals)
	if err := readHist(r, c.Latencies); err != nil {
		return err
	}
	readLatHist(r, c.LatH)
	k := r.Int()
	if k >= 0 {
		if k != c.numShards {
			return fmt.Errorf("cluster: snapshot has %d metric lanes, cluster has %d shards", k, c.numShards)
		}
		for i := 0; i < k; i++ {
			readSeries(r, c.arrivalLanes[i])
			readSeries(r, c.forwardLanes[i])
			if err := readHist(r, c.latencyLanes[i]); err != nil {
				return err
			}
			readLatHist(r, c.latHistLanes[i])
		}
	} else if c.numShards > 1 {
		return fmt.Errorf("cluster: snapshot is serial, cluster runs %d shards", c.numShards)
	}
	c.warmServed = r.U64()
	c.warmForwards = r.U64()
	c.warmArrivals = r.U64()
	c.warmHits = r.U64()
	c.warmMisses = r.U64()
	c.warmTaken = r.Bool()
	return nil
}

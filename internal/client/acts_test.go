package client

import (
	"testing"

	"dynmds/internal/metrics"
	"dynmds/internal/msg"
	"dynmds/internal/namespace"
	"dynmds/internal/partition"
	"dynmds/internal/sim"
	"dynmds/internal/workload"
)

// recordNet echoes replies synchronously and buckets every send into
// one-second windows, counting ops and hotspot hits per window.
type recordNet struct {
	eng  *sim.Engine
	pop  *Population
	n    int
	hot  *namespace.Inode
	rep  msg.Reply
	wins []recordWin
}

type recordWin struct {
	sends   uint64
	creates uint64
	stats   uint64
	hotHits uint64
}

func (e *recordNet) NumMDS() int { return e.n }

func (e *recordNet) Send(i int, req *msg.Request) {
	w := int(e.eng.Now() / sim.Second)
	for len(e.wins) <= w {
		e.wins = append(e.wins, recordWin{})
	}
	win := &e.wins[w]
	win.sends++
	switch req.Op {
	case msg.Create:
		win.creates++
	case msg.Stat:
		win.stats++
	}
	if e.hot != nil && req.Target == e.hot {
		win.hotHits++
	}
	e.rep = msg.Reply{
		Req: req, Client: req.Client, ID: req.ID, Gen: req.Gen,
		Issued: req.Issued, Completed: e.eng.Now(),
	}
	e.pop.OnReply(&e.rep)
}

func actFixture(t *testing.T, cfg PopulationConfig, seed int64) (*sim.Engine, *Population, *recordNet, []*namespace.Inode) {
	t.Helper()
	_, homes := popTree(t, 4)
	tn := workload.NewTenants(cfg.Tenant, cfg.Clients, homes, seed)
	eng := sim.NewEngine()
	net := &recordNet{eng: eng, n: 4}
	pop := NewPopulation(cfg, []*sim.Engine{eng}, net, partition.FileHash{N: 4}, tn, seed)
	net.pop = pop
	return eng, pop, net, homes
}

// TestActRetargetsMixRateAndHotspot drives one act through the
// population and checks all three retargeting mechanisms window by
// window: the op mix flips to creates, the arrival rate triples, and
// the hotspot absorbs its fraction of targets — then everything reverts
// to the base phase at the act's end.
func TestActRetargetsMixRateAndHotspot(t *testing.T) {
	cfg := PopulationConfig{
		Clients: 400, Rate: 50,
		Tenant:  workload.TenantConfig{Tenants: 4, WorkingSet: 8},
		MixStat: 1, // base phase: pure stat
	}
	eng, pop, net, homes := actFixture(t, cfg, 21)
	hot := homes[0]
	net.hot = hot
	pop.ScheduleActs([]Act{{
		Name: "storm", From: sim.Second, To: 2 * sim.Second,
		RateMul: 3,
		Mix:     [numMixOps]float64{0, 0, 0, 1, 0}, // pure create
		Hot:     hot, HotFrac: 0.8,
	}})
	pop.Start()
	eng.RunUntil(3 * sim.Second)

	if len(net.wins) < 3 {
		t.Fatalf("only %d windows recorded", len(net.wins))
	}
	base, storm, after := net.wins[0], net.wins[1], net.wins[2]
	// Base phase: all stats, no creates, no hotspot concentration beyond
	// the tenant draw's natural share.
	if base.creates != 0 || base.stats != base.sends {
		t.Fatalf("base window not pure stat: %+v", base)
	}
	if after.creates != 0 {
		t.Fatalf("mix did not revert after the act: %+v", after)
	}
	// Act phase: pure create mix.
	if storm.stats != 0 || storm.creates != storm.sends {
		t.Fatalf("storm window not pure create: %+v", storm)
	}
	// Rate multiplier: ~3x the surrounding windows (one inter-arrival of
	// lag at each boundary, so allow a wide band).
	lo, hi := float64(base.sends)*2.2, float64(base.sends)*3.8
	if got := float64(storm.sends); got < lo || got > hi {
		t.Fatalf("storm sends = %d, want ~3x base %d", storm.sends, base.sends)
	}
	// Hotspot: 80% of draws redirect, and the undirected 20% still hit
	// the target at its natural ~1/4 share of 4 homes — so ~0.85 total.
	frac := float64(storm.hotHits) / float64(storm.sends)
	if frac < 0.80 || frac > 0.90 {
		t.Fatalf("hotspot fraction = %.3f, want ~0.85", frac)
	}
	if f := float64(after.hotHits) / float64(after.sends); f > 0.5 {
		t.Fatalf("hotspot did not revert after the act: %.3f", f)
	}
}

// TestActStatsAccounting cross-checks the per-act counters against the
// network's own window counts, and the latency lane against completions.
func TestActStatsAccounting(t *testing.T) {
	cfg := PopulationConfig{
		Clients: 300, Rate: 40,
		Tenant:  workload.TenantConfig{Tenants: 4, WorkingSet: 8},
		MixStat: 1,
	}
	eng, pop, net, _ := actFixture(t, cfg, 5)
	pop.ScheduleActs([]Act{
		{Name: "a", From: sim.Second, To: 2 * sim.Second},
		{Name: "b", From: 2 * sim.Second, To: 3 * sim.Second, RateMul: 2},
	})
	pop.Start()
	eng.RunUntil(4 * sim.Second)

	stats := pop.ActStats()
	if len(stats) != 2 {
		t.Fatalf("got %d act stats, want 2", len(stats))
	}
	for i, name := range []string{"a", "b"} {
		st := stats[i]
		if st.Name != name {
			t.Fatalf("act %d name = %q, want %q", i, st.Name, name)
		}
		// Synchronous echo: every send completes instantly, so the act's
		// issued and completed both equal the window's send count.
		want := net.wins[i+1].sends
		if st.Issued != want || st.Completed != want {
			t.Fatalf("act %q: issued=%d completed=%d, want %d", name, st.Issued, st.Completed, want)
		}
		if st.Lat.N() != st.Completed {
			t.Fatalf("act %q: latency lane N=%d, completed=%d", name, st.Lat.N(), st.Completed)
		}
	}
}

// TestActDeterminism pins bit-reproducibility with the full act
// machinery active: same seed, same counts, same event count, same tail
// quantile; a different seed diverges.
func TestActDeterminism(t *testing.T) {
	cfg := PopulationConfig{
		Clients: 300, Rate: 50,
		Tenant:  workload.TenantConfig{Tenants: 8, TenantSkew: 1, FileSkew: 1, WorkingSet: 8},
		MixStat: 80, MixReaddir: 20,
	}
	run := func(seed int64) (uint64, uint64, sim.Time, uint64) {
		eng, pop, _, homes := actFixture(t, cfg, seed)
		pop.ScheduleActs([]Act{
			{Name: "warm", From: sim.Second, To: 2 * sim.Second, RateMul: 2},
			{Name: "storm", From: 2 * sim.Second, To: 4 * sim.Second,
				Mix: [numMixOps]float64{50, 0, 0, 50, 0}, Hot: homes[1], HotFrac: 0.6},
		})
		pop.Start()
		eng.RunUntil(5 * sim.Second)
		h := metrics.NewLatHist()
		pop.Latency(h)
		return pop.Issued(), pop.Completed(), h.Quantile(0.99), eng.Executed
	}
	i1, c1, q1, e1 := run(42)
	i2, c2, q2, e2 := run(42)
	if i1 != i2 || c1 != c2 || q1 != q2 || e1 != e2 {
		t.Fatalf("identical seeds diverged: (%d,%d,%v,%d) vs (%d,%d,%v,%d)",
			i1, c1, q1, e1, i2, c2, q2, e2)
	}
	if i3, _, _, _ := run(43); i3 == i1 {
		t.Fatal("different seeds produced identical arrival counts")
	}
}

// TestActSteadyStateAllocFree extends the population's zero-alloc pin
// to a window with an act active: retargeted rate, mix, hotspot and the
// per-act latency lane must not add a single steady-state allocation.
// (Boundary work — threshold rebuild, one histogram per act per shard —
// happens at begin/end, outside the pinned window.)
func TestActSteadyStateAllocFree(t *testing.T) {
	cfg := PopulationConfig{
		Clients: 1000, Rate: 200, Tick: sim.Millisecond,
		Tenant: workload.TenantConfig{Tenants: 4, FileSkew: 1, WorkingSet: 16},
		// Create-free: creates inherently allocate the new name/inode.
		MixStat: 80, MixReaddir: 10, MixChmod: 10,
		DiurnalAmp: 0.3, BurstProb: 0.1,
	}
	eng, pop, _, homes := actFixture(t, cfg, 11)
	pop.ScheduleActs([]Act{{
		Name: "busy", From: sim.Second, To: 10 * sim.Second,
		RateMul: 2,
		Mix:     [numMixOps]float64{60, 20, 20, 0, 0},
		Hot:     homes[2], HotFrac: 0.5,
	}})
	pop.Start()
	// Warm into the act: boundary fired, pools and wheel at high water.
	eng.RunUntil(2 * sim.Second)
	now := eng.Now()
	allocs := testing.AllocsPerRun(20, func() {
		now += 50 * sim.Millisecond
		eng.RunUntil(now)
	})
	if allocs != 0 {
		t.Fatalf("act-active hot path allocates: %v allocs per 50ms window", allocs)
	}
	if st := pop.ActStats(); st[0].Issued == 0 || st[0].Completed == 0 {
		t.Fatal("no traffic during pin")
	}
}

package cluster

import (
	"fmt"

	"dynmds/internal/namespace"
)

// FailNode takes node i down and — for the dynamic strategy — reassigns
// its delegated subtrees to the surviving nodes, modelling the
// shared-storage failover of §2.1.2: because metadata lives on a shared
// store rather than directly-attached disks, any node can assume a
// failed node's workload. The new authorities start cold and re-read
// metadata on demand.
//
// Static and hashed strategies have no reassignment mechanism (the
// paper notes static partitions require manual redistribution), so with
// them FailNode only marks the node down; clients depend on retry
// timeouts.
//
// Under fault injection the same reassignment runs automatically when
// the suspicion protocol confirms a peer down; FailNode remains the
// manual/operator entry point used by the failover experiment.
func (c *Cluster) FailNode(i int) error {
	if i < 0 || i >= len(c.Nodes) {
		return fmt.Errorf("cluster: node %d out of range", i)
	}
	c.Nodes[i].Fail()
	c.Failures = append(c.Failures, FaultEvent{At: c.Eng.Now(), Node: i})
	if c.Dyn == nil {
		return nil
	}
	return c.reassignRoots(i)
}

// reassignRoots re-delegates every subtree rooted at the victim to the
// surviving nodes, greedily placing each root on the currently
// least-loaded survivor by the decayed load metric (§5.1: a "weighted
// combination of node throughput and cache misses"). The victim's last
// observed load is split evenly across its roots as the estimated cost
// of each assignment, so a large failed workload spreads over several
// survivors instead of piling onto whichever node was idlest at the
// instant of failure.
func (c *Cluster) reassignRoots(victim int) error {
	roots := c.Dyn.Table.RootsOf(victim)
	if len(roots) == 0 {
		return nil
	}
	now := c.Eng.Now()
	load := make([]float64, len(c.Nodes))
	alive := make([]int, 0, len(c.Nodes)-1)
	for j, n := range c.Nodes {
		if j != victim && !n.Failed() && !c.NodeDown(j) {
			alive = append(alive, j)
			load[j] = n.Load(now)
		}
	}
	if len(alive) == 0 {
		return fmt.Errorf("cluster: no surviving nodes")
	}
	share := c.Nodes[victim].Load(now) / float64(len(roots))
	if share <= 0 {
		share = 1 // idle victim: still spread roots, one unit each
	}
	for _, root := range roots {
		best := pickLeastLoaded(alive, load)
		if err := c.Dyn.Table.Delegate(root, best); err != nil {
			return err
		}
		load[best] += share
	}
	if c.lostRoots == nil {
		c.lostRoots = make(map[int][]*namespace.Inode)
	}
	c.lostRoots[victim] = roots
	return nil
}

// pickLeastLoaded returns the alive node with the smallest load,
// breaking ties toward the lowest id (alive is in ascending order).
// Pure so the placement policy is unit-testable without a cluster.
func pickLeastLoaded(alive []int, load []float64) int {
	best := alive[0]
	for _, j := range alive[1:] {
		if load[j] < load[best] {
			best = j
		}
	}
	return best
}

// RecoverNode brings node i back. Its cache is pre-warmed from the
// bounded log's working set (§4.6), and under the dynamic strategy the
// subtrees failover reassigned away are failed back to it: the warmed
// working set is precisely those subtrees, so the rejoining node can
// serve them immediately, while waiting for the balancer's busy/avail
// hysteresis to refill an idle node can take indefinitely (no survivor
// is individually "busy" after a clean 1/n redistribution). Suspicion
// state against the node is cleared so peers resume sending to it.
// Returns the number of records warmed.
func (c *Cluster) RecoverNode(i int) (int, error) {
	if i < 0 || i >= len(c.Nodes) {
		return 0, fmt.Errorf("cluster: node %d out of range", i)
	}
	warmed := c.Nodes[i].Recover()
	if c.down != nil {
		c.down[i] = false
		c.strikes[i] = 0
	}
	if c.Dyn != nil {
		for _, root := range c.lostRoots[i] {
			if err := c.Dyn.Table.Delegate(root, i); err != nil {
				return warmed, err
			}
		}
		delete(c.lostRoots, i)
	}
	c.Recoveries = append(c.Recoveries, FaultEvent{At: c.Eng.Now(), Node: i, Warmed: warmed})
	return warmed, nil
}

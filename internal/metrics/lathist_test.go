package metrics

import (
	"testing"

	"dynmds/internal/sim"
)

// TestLatHistBucketsContiguous checks the index function is monotone
// and the bound function inverts it: every value maps into a bucket
// whose bound is >= the value, and bucket indexes never decrease.
func TestLatHistBucketsContiguous(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 2, 15, 16, 17, 31, 32, 63, 64, 100, 1023, 1024,
		1 << 20, 1<<20 + 1, 1 << 40, 1<<63 - 1, 1 << 63} {
		idx := latIndex(v)
		if idx < prev {
			t.Fatalf("index not monotone at %d: %d < %d", v, idx, prev)
		}
		if idx >= latBuckets {
			t.Fatalf("index %d out of range for %d", idx, v)
		}
		if b := latBound(idx); uint64(b) < v {
			t.Fatalf("bound(%d)=%d < value %d", idx, b, v)
		}
		prev = idx
	}
	// Exhaustive small-range check: bound is the LAST value in its bucket.
	for v := uint64(0); v < 4096; v++ {
		idx := latIndex(v)
		if latIndex(uint64(latBound(idx))) != idx {
			t.Fatalf("bound(%d) escapes its bucket", idx)
		}
		if latIndex(uint64(latBound(idx))+1) == idx {
			t.Fatalf("bound(%d) is not the bucket's last value", idx)
		}
	}
}

// TestLatHistQuantiles checks quantile bounds against a known
// distribution, within the 1/16 relative bucket error.
func TestLatHistQuantiles(t *testing.T) {
	h := NewLatHist()
	// 1000 observations: 1..1000 µs.
	for i := 1; i <= 1000; i++ {
		h.Observe(sim.Time(i))
	}
	if h.N() != 1000 {
		t.Fatalf("n = %d", h.N())
	}
	check := func(q, want float64) {
		got := float64(h.Quantile(q))
		if got < want || got > want*(1+1.0/8) {
			t.Errorf("q%.3f = %.0f, want in [%.0f, %.0f]", q, got, want, want*1.125)
		}
	}
	check(0.5, 500)
	check(0.99, 990)
	check(0.999, 999)
	if h.Quantile(1.0) < 1000 {
		t.Errorf("q1.0 = %v < max", h.Quantile(1.0))
	}
}

// TestLatHistMerge checks lane merging matches a single histogram fed
// the union.
func TestLatHistMerge(t *testing.T) {
	a, b, all := NewLatHist(), NewLatHist(), NewLatHist()
	for i := 0; i < 500; i++ {
		v := sim.Time(i * 7 % 3000)
		a.Observe(v)
		all.Observe(v)
	}
	for i := 0; i < 300; i++ {
		v := sim.Time(i * 13 % 90000)
		b.Observe(v)
		all.Observe(v)
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged n = %d, want %d", a.N(), all.N())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999, 1} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("q%.3f: merged %v != union %v", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

// TestLatHistEmptyAndClamp covers edge cases: empty histogram, negative
// observation clamping, reset.
func TestLatHistEmptyAndClamp(t *testing.T) {
	h := NewLatHist()
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile not 0")
	}
	h.Observe(-5)
	if h.N() != 1 || h.Quantile(1) != 0 {
		t.Fatal("negative observation must clamp to bucket 0")
	}
	h.Reset()
	if h.N() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("reset did not clear")
	}
}

// TestLatHistObserveAllocFree pins the hot path at zero allocations.
func TestLatHistObserveAllocFree(t *testing.T) {
	h := NewLatHist()
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 64; i++ {
			h.Observe(sim.Time(i * 131))
		}
	})
	if allocs > 0 {
		t.Fatalf("Observe allocated %.2f times per 64 observations", allocs)
	}
}

package partition

import (
	"fmt"
	"testing"
	"testing/quick"

	"dynmds/internal/fsgen"
	"dynmds/internal/namespace"
	"dynmds/internal/sim"
)

func smallTree(t *testing.T) (*namespace.Tree, *namespace.Inode, *namespace.Inode) {
	t.Helper()
	tr := namespace.NewTree()
	usr, err := tr.Mkdir(tr.Root, "usr")
	if err != nil {
		t.Fatal(err)
	}
	local, err := tr.Mkdir(usr, "local")
	if err != nil {
		t.Fatal(err)
	}
	return tr, usr, local
}

func TestSubtreeTableNestedDelegation(t *testing.T) {
	tr, usr, local := smallTree(t)
	f, _ := tr.Create(local, "f")
	g, _ := tr.Create(usr, "g")

	tab := NewSubtreeTable(4)
	if tab.Authority(f) != 0 {
		t.Fatal("default authority not 0")
	}
	if err := tab.Delegate(usr, 1); err != nil {
		t.Fatal(err)
	}
	if err := tab.Delegate(local, 2); err != nil {
		t.Fatal(err)
	}
	// /usr on 1, /usr/local re-delegated to 2 (nested, §4.1).
	if got := tab.Authority(g); got != 1 {
		t.Fatalf("authority(/usr/g) = %d, want 1", got)
	}
	if got := tab.Authority(f); got != 2 {
		t.Fatalf("authority(/usr/local/f) = %d, want 2", got)
	}
	if got := tab.Authority(usr); got != 1 {
		t.Fatalf("authority(/usr) = %d, want 1", got)
	}
	if got := tab.Authority(tr.Root); got != 0 {
		t.Fatalf("authority(/) = %d, want 0", got)
	}
	// Undelegating /usr/local reverts it to /usr's node.
	tab.Undelegate(local)
	if got := tab.Authority(f); got != 1 {
		t.Fatalf("authority after undelegate = %d, want 1", got)
	}
	if tab.NumDelegations() != 1 {
		t.Fatalf("delegations = %d, want 1", tab.NumDelegations())
	}
}

func TestSubtreeTableMemoInvalidation(t *testing.T) {
	tr, usr, local := smallTree(t)
	f, _ := tr.Create(local, "f")
	tab := NewSubtreeTable(4)
	_ = tab.Delegate(usr, 1)
	if tab.Authority(f) != 1 {
		t.Fatal("pre-move authority wrong")
	}
	// Re-delegating must invalidate the memoized authority.
	_ = tab.Delegate(usr, 3)
	if got := tab.Authority(f); got != 3 {
		t.Fatalf("authority after re-delegation = %d, want 3", got)
	}
}

func TestSubtreeTableErrors(t *testing.T) {
	tr, usr, _ := smallTree(t)
	f, _ := tr.Create(usr, "f")
	tab := NewSubtreeTable(2)
	if err := tab.Delegate(usr, 5); err == nil {
		t.Fatal("out-of-range mds accepted")
	}
	if err := tab.Delegate(f, 1); err == nil {
		t.Fatal("file delegation accepted")
	}
	tab.Undelegate(usr) // absent: no-op, no epoch bump
}

func TestRootsOfSortedAndTracked(t *testing.T) {
	tr, usr, local := smallTree(t)
	tab := NewSubtreeTable(2)
	_ = tab.Delegate(local, 1)
	_ = tab.Delegate(usr, 1)
	roots := tab.RootsOf(1)
	if len(roots) != 2 || roots[0].ID > roots[1].ID {
		t.Fatalf("roots = %v", roots)
	}
	_ = tab.Delegate(usr, 0)
	if len(tab.RootsOf(1)) != 1 || len(tab.RootsOf(0)) != 1 {
		t.Fatal("byMDS tracking wrong after reassignment")
	}
	_ = tr
}

func TestInitialPartitionCoversAndBalances(t *testing.T) {
	snap, err := fsgen.Generate(fsgen.Default())
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	tab := NewSubtreeTable(n)
	InitialPartition(tab, snap.Tree, 2)
	counts := make([]int, n)
	snap.Tree.Walk(func(ino *namespace.Inode) bool {
		counts[tab.Authority(ino)]++
		return true
	})
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != snap.Tree.Len() {
		t.Fatalf("covered %d of %d inodes", total, snap.Tree.Len())
	}
	// Hash-seeded partition of ~100 homes over 8 nodes: every node
	// should get a meaningful share (no zero, no 60% monopoly).
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("mds %d received nothing: %v", i, counts)
		}
		if float64(c) > 0.6*float64(total) {
			t.Fatalf("mds %d monopolises the partition: %v", i, counts)
		}
	}
}

func TestFileHashProperties(t *testing.T) {
	tr, usr, local := smallTree(t)
	f, _ := tr.Create(local, "f")
	fh := FileHash{N: 7}
	if fh.DirGranular() || !fh.NeedsPathTraversal() || !fh.ClientComputable() {
		t.Fatal("FileHash flags wrong")
	}
	a := fh.Authority(f)
	if a < 0 || a >= 7 {
		t.Fatalf("authority out of range: %d", a)
	}
	// Renaming an ancestor changes the path and so (almost surely over
	// many names) the authority mapping; verify the hash changes.
	h1 := PathHash(f)
	if err := tr.Rename(local, tr.Root, "relocated"); err != nil {
		t.Fatal(err)
	}
	h2 := PathHash(f)
	if h1 == h2 {
		t.Fatal("path hash unchanged by ancestor rename")
	}
	_ = usr
}

func TestFileHashUniformity(t *testing.T) {
	snap, err := fsgen.Generate(fsgen.Default())
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	fh := FileHash{N: n}
	counts := make([]int, n)
	snap.Tree.Walk(func(ino *namespace.Inode) bool {
		counts[fh.Authority(ino)]++
		return true
	})
	mean := float64(snap.Tree.Len()) / n
	for i, c := range counts {
		if float64(c) < 0.7*mean || float64(c) > 1.3*mean {
			t.Fatalf("mds %d share %d far from mean %.0f: %v", i, c, mean, counts)
		}
	}
}

func TestDirHashGroupsDirectoryContents(t *testing.T) {
	tr, _, local := smallTree(t)
	f1, _ := tr.Create(local, "f1")
	f2, _ := tr.Create(local, "f2")
	dh := DirHash{N: 5}
	if !dh.DirGranular() || !dh.NeedsPathTraversal() || !dh.ClientComputable() {
		t.Fatal("DirHash flags wrong")
	}
	if dh.Authority(f1) != dh.Authority(f2) {
		t.Fatal("siblings scattered by DirHash")
	}
	if dh.Authority(f1) != dh.Authority(local) {
		t.Fatal("directory not grouped with its contents")
	}
	if dh.Authority(tr.Root) < 0 || dh.Authority(tr.Root) >= 5 {
		t.Fatal("root authority out of range")
	}
}

func TestLazyHybridStalenessLifecycle(t *testing.T) {
	tr, usr, local := smallTree(t)
	f, _ := tr.Create(local, "f")
	lh := NewLazyHybrid(4)
	if lh.DirGranular() || lh.NeedsPathTraversal() || !lh.ClientComputable() {
		t.Fatal("LH flags wrong")
	}
	if lh.Stale(f) {
		t.Fatal("fresh file reported stale")
	}
	affected := lh.NoteDirUpdate(usr)
	if affected != usr.SubtreeInodes-1 {
		t.Fatalf("affected = %d, want %d", affected, usr.SubtreeInodes-1)
	}
	if lh.Debt != affected {
		t.Fatalf("debt = %d", lh.Debt)
	}
	if !lh.Stale(f) {
		t.Fatal("file under updated dir not stale")
	}
	lh.Apply(f)
	if lh.Stale(f) {
		t.Fatal("file stale after apply")
	}
	if lh.Debt != affected-1 {
		t.Fatalf("debt after apply = %d", lh.Debt)
	}
	// File updates don't create propagation debt.
	if lh.NoteDirUpdate(f) != 0 {
		t.Fatal("file update created debt")
	}
	// Nested update: deeper dir change re-stales.
	lh.NoteDirUpdate(local)
	if !lh.Stale(f) {
		t.Fatal("not stale after nested dir update")
	}
}

func TestNameHashSpreads(t *testing.T) {
	const n = 8
	counts := make([]int, n)
	for i := 0; i < 4000; i++ {
		counts[NameHash(42, fmt.Sprintf("file%d", i))%n]++
	}
	// Weak sanity: no bucket empty.
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("bucket %d empty", i)
		}
	}
}

// Property: Authority is always in range and stable between partition
// changes for arbitrary tree shapes.
func TestAuthorityRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := fsgen.Default()
		cfg.Users = 5
		cfg.Seed = seed
		snap, err := fsgen.Generate(cfg)
		if err != nil {
			return false
		}
		tab := NewSubtreeTable(3)
		InitialPartition(tab, snap.Tree, 2)
		ok := true
		snap.Tree.Walk(func(ino *namespace.Inode) bool {
			a := tab.Authority(ino)
			if a < 0 || a >= 3 || a != tab.Authority(ino) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestTagsAndPopularity(t *testing.T) {
	tr, _, local := smallTree(t)
	f, _ := tr.Create(local, "f")
	if TagsOf(f) != TagsOf(f) {
		t.Fatal("TagsOf not stable")
	}
	p := Popularity(f, sim.Second)
	p.Add(0, 5)
	if Popularity(f, sim.Second) != p {
		t.Fatal("Popularity not stable")
	}
	if got := p.Value(sim.Second); got < 2.4 || got > 2.6 {
		t.Fatalf("decayed popularity = %v", got)
	}
}

func TestStrategyNamesAndAuthorityForName(t *testing.T) {
	tr, usr, local := smallTree(t)
	_ = usr
	fh := FileHash{N: 4}
	dh := DirHash{N: 4}
	lh := NewLazyHybrid(4)
	ss := NewStaticSubtree(4, tr, 2)

	if fh.Name() != "FileHash" || dh.Name() != "DirHash" ||
		lh.Name() != "LazyHybrid" || ss.Name() != "StaticSubtree" {
		t.Fatal("strategy names wrong")
	}
	// AuthorityForName matches Authority once the entry exists.
	f, err := tr.Create(local, "newfile")
	if err != nil {
		t.Fatal(err)
	}
	if fh.AuthorityForName(local, "newfile") != fh.Authority(f) {
		t.Fatal("FileHash AuthorityForName inconsistent")
	}
	if lh.AuthorityForName(local, "newfile") != lh.Authority(f) {
		t.Fatal("LH AuthorityForName inconsistent")
	}
	if dh.AuthorityForName(local, "newfile") != dh.Authority(f) {
		t.Fatal("DirHash AuthorityForName inconsistent")
	}
	if ss.AuthorityForName(local, "x") != ss.Authority(local) {
		t.Fatal("subtree AuthorityForName inconsistent")
	}
	if !ss.DirGranular() || !ss.NeedsPathTraversal() || ss.ClientComputable() {
		t.Fatal("static subtree flags wrong")
	}
	if lh.Authority(f) < 0 || lh.Authority(f) >= 4 {
		t.Fatal("LH authority out of range")
	}
}

func TestReplicaSetBitmask(t *testing.T) {
	var tags Tags
	tags.SetReplica(3)
	tags.SetReplica(63)
	tags.SetReplica(64) // out of tracked range: ignored
	if !tags.HasReplica(3) || !tags.HasReplica(63) {
		t.Fatal("bits not set")
	}
	if tags.HasReplica(64) || tags.HasReplica(0) {
		t.Fatal("phantom bits")
	}
	tags.ClearReplica(3)
	if tags.HasReplica(3) {
		t.Fatal("bit not cleared")
	}
	tags.ClearReplica(64) // no-op, no panic
	if tags.ReplicaSet != 1<<63 {
		t.Fatalf("mask = %x", tags.ReplicaSet)
	}
}

func TestSubtreeTableAccessors(t *testing.T) {
	tr, usr, _ := smallTree(t)
	tab := NewSubtreeTable(5)
	if tab.N() != 5 {
		t.Fatalf("N = %d", tab.N())
	}
	e := tab.Epoch()
	_ = tab.Delegate(usr, 2)
	if tab.Epoch() == e {
		t.Fatal("epoch did not advance")
	}
	if got, ok := tab.Assigned(usr); !ok || got != 2 {
		t.Fatalf("Assigned = %d %v", got, ok)
	}
	if _, ok := tab.Assigned(tr.Root); ok {
		t.Fatal("root assigned without delegation")
	}
}

// TestSubtreeTableCheckConsistency: a healthy table passes; each way
// the assign/mirror pair can diverge is caught.
func TestSubtreeTableCheckConsistency(t *testing.T) {
	fresh := func() (*SubtreeTable, *namespace.Inode, *namespace.Inode) {
		tr, usr, local := smallTree(t)
		tab := NewSubtreeTable(3)
		_ = tab.Delegate(tr.Root, 0)
		_ = tab.Delegate(usr, 1)
		_ = tab.Delegate(local, 2)
		return tab, usr, local
	}

	tab, _, _ := fresh()
	if err := tab.CheckConsistency(); err != nil {
		t.Fatalf("healthy table flagged: %v", err)
	}

	tab, usr, _ := fresh()
	tab.assign[usr] = 7 // out of range behind the API's back
	if err := tab.CheckConsistency(); err == nil {
		t.Fatal("out-of-range assignment not caught")
	}

	tab, usr, _ = fresh()
	delete(tab.byMDS[1], usr) // assigned but not mirrored
	if err := tab.CheckConsistency(); err == nil {
		t.Fatal("missing mirror entry not caught")
	}

	tab, usr, _ = fresh()
	tab.byMDS[2][usr] = true // mirrored under two nodes at once
	if err := tab.CheckConsistency(); err == nil {
		t.Fatal("double-mirrored root not caught")
	}

	tab, _, local := fresh()
	delete(tab.assign, local) // mirror entry with no assignment
	if err := tab.CheckConsistency(); err == nil {
		t.Fatal("orphaned mirror entry not caught")
	}
}

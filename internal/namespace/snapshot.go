package namespace

import (
	"fmt"
	"sort"

	"dynmds/internal/snap"
)

// Overlay checkpointing: an overlay tree is serialized as a delta
// against its immutable frozen base — tombstones, run-created inodes,
// base inodes whose fields drifted from their frozen record, and the
// ordered child list of every directory whose private name index has
// been materialized (any structural mutation materializes it, so the
// set of emitted directories is exactly the set whose child order can
// differ from the base). Restoring applies the delta onto a pristine
// overlay of the same base; the result is field-identical to the
// serialized tree, including the lazy/expanded split the read-through
// instrumentation depends on.

// SnapshotTo writes the overlay delta. The tree must be an overlay and
// must hold no anchored inodes (the endurance plane runs no Link ops).
func (t *Tree) SnapshotTo(w *snap.Writer) {
	if t.base == nil {
		panic("namespace: snapshot of a non-overlay tree")
	}
	if t.Anchors != nil && t.Anchors.Len() != 0 {
		panic("namespace: snapshot with anchored inodes is not supported")
	}
	lk, lm := t.LazyStats()

	w.U64(uint64(t.nextID))
	w.Int(t.NumFiles)
	w.Int(t.NumDirs)
	w.U64(t.BaseDeletes)
	w.U64(t.Resurrected)
	w.U64(lk)
	w.U64(lm)
	w.Bool(t.dead != nil)

	// Tombstones, ascending, delta-coded.
	w.Int(t.TombstoneCount())
	prev := InodeID(0)
	t.ForEachTombstone(func(id InodeID) {
		w.U64(uint64(id - prev))
		prev = id
	})

	// Run-created inodes, ascending ID.
	created := make([]*Inode, 0, len(t.byID))
	for _, n := range t.byID {
		created = append(created, n)
	}
	sort.Slice(created, func(i, j int) bool { return created[i].ID < created[j].ID })
	w.Int(len(created))
	for _, n := range created {
		w.U64(uint64(n.ID))
		w.U64(uint64(n.Kind))
		w.U64(uint64(n.Mode))
		w.I64(n.Size)
		w.Int(n.NLink)
		w.Int(n.SubtreeInodes)
		w.String(n.name)
		w.U64(uint64(parentID(n)))
	}

	// Dirty base inodes: fields differ from the frozen record. Skip
	// tombstoned slots — their stale fields are unreachable.
	var dirty []InodeID
	for i := range t.slab {
		id := InodeID(i + 1)
		if t.Tombstoned(id) {
			continue
		}
		n, fn := &t.slab[i], &t.base.nodes[i]
		if n.name != fn.name || n.Size != fn.size || n.Mode != fn.mode ||
			n.NLink != int(fn.nlink) || n.SubtreeInodes != int(fn.sub) ||
			parentID(n) != fn.parent {
			dirty = append(dirty, id)
		}
	}
	w.Int(len(dirty))
	for _, id := range dirty {
		n := t.node(id)
		w.U64(uint64(id))
		w.U64(uint64(n.Mode))
		w.I64(n.Size)
		w.Int(n.NLink)
		w.Int(n.SubtreeInodes)
		w.String(n.name)
		w.U64(uint64(parentID(n)))
	}

	// Materialized directories with their ordered child IDs: base slab
	// order first, then created dirs ascending.
	var mat []*Inode
	for i := range t.slab {
		if t.slab[i].childIndex != nil && !t.Tombstoned(InodeID(i+1)) {
			mat = append(mat, &t.slab[i])
		}
	}
	for _, n := range created {
		if n.childIndex != nil {
			mat = append(mat, n)
		}
	}
	w.Int(len(mat))
	for _, d := range mat {
		w.U64(uint64(d.ID))
		w.Int(len(d.children))
		for _, c := range d.children {
			w.U64(uint64(c.ID))
		}
	}
}

func parentID(n *Inode) InodeID {
	if n.parent == nil {
		return 0
	}
	return n.parent.ID
}

// RestoreFrom applies a delta written by SnapshotTo onto t, which must
// be a pristine overlay of the same frozen base.
func (t *Tree) RestoreFrom(r *snap.Reader) error {
	if t.base == nil {
		return fmt.Errorf("namespace: restore onto a non-overlay tree")
	}
	if len(t.byID) != 0 || t.gone != nil || t.dead != nil {
		return fmt.Errorf("namespace: restore onto a non-pristine overlay")
	}

	nextID := InodeID(r.U64())
	if nextID < InodeID(len(t.base.nodes)) {
		return fmt.Errorf("namespace: snapshot MaxID %d below base size %d", nextID, len(t.base.nodes))
	}
	t.nextID = nextID
	t.NumFiles = r.Int()
	t.NumDirs = r.Int()
	t.BaseDeletes = r.U64()
	t.Resurrected = r.U64()
	t.SetLazyStats(r.U64(), r.U64())
	compacted := r.Bool()

	nTomb := r.Int()
	if compacted {
		t.dead = make([]uint64, len(t.base.nodes)/64+1)
	} else if nTomb > 0 {
		t.gone = make(map[InodeID]struct{}, nTomb)
	}
	id := InodeID(0)
	for i := 0; i < nTomb; i++ {
		id += InodeID(r.U64())
		if !t.base.contains(id) {
			return fmt.Errorf("namespace: tombstone %d outside base", id)
		}
		if compacted {
			t.dead[id>>6] |= 1 << (id & 63)
		} else {
			t.gone[id] = struct{}{}
		}
	}

	// Created inodes; parents resolved after all IDs are registered.
	nCreated := r.Int()
	parents := make([]InodeID, nCreated)
	createdOrder := make([]*Inode, nCreated)
	for i := 0; i < nCreated; i++ {
		n := &Inode{tree: t}
		n.ID = InodeID(r.U64())
		n.Kind = Kind(r.U64())
		n.Mode = Mode(r.U64())
		n.Size = r.I64()
		n.NLink = r.Int()
		n.SubtreeInodes = r.Int()
		n.name = r.String()
		parents[i] = InodeID(r.U64())
		if t.base.contains(n.ID) || n.ID > t.nextID {
			return fmt.Errorf("namespace: created inode %d out of range", n.ID)
		}
		t.byID[n.ID] = n
		createdOrder[i] = n
	}
	for i, n := range createdOrder {
		if parents[i] != 0 {
			p, ok := t.resolve(parents[i])
			if !ok {
				return fmt.Errorf("namespace: created inode %d parent %d unresolvable", n.ID, parents[i])
			}
			n.parent = p
		}
	}

	// Dirty base inodes.
	nDirty := r.Int()
	for i := 0; i < nDirty; i++ {
		did := InodeID(r.U64())
		if !t.base.contains(did) {
			return fmt.Errorf("namespace: dirty inode %d outside base", did)
		}
		n := t.node(did)
		n.Mode = Mode(r.U64())
		n.Size = r.I64()
		n.NLink = r.Int()
		n.SubtreeInodes = r.Int()
		n.name = r.String()
		pid := InodeID(r.U64())
		if pid == 0 {
			n.parent = nil
		} else {
			p, ok := t.resolve(pid)
			if !ok {
				return fmt.Errorf("namespace: dirty inode %d parent %d unresolvable", did, pid)
			}
			n.parent = p
		}
	}

	// Materialized directories: install ordered children and rebuild the
	// private name index; the directory leaves the lazy read-through set
	// exactly as it did in the serialized run.
	nMat := r.Int()
	for i := 0; i < nMat; i++ {
		did := InodeID(r.U64())
		d, ok := t.resolve(did)
		if !ok {
			return fmt.Errorf("namespace: materialized dir %d unresolvable", did)
		}
		nc := r.Int()
		kids := make([]*Inode, nc)
		idx := make(map[string]int, nc)
		for j := 0; j < nc; j++ {
			cid := InodeID(r.U64())
			c, ok := t.resolve(cid)
			if !ok {
				return fmt.Errorf("namespace: child %d of dir %d unresolvable", cid, did)
			}
			kids[j] = c
			idx[c.name] = j
			c.parent = d
		}
		d.children = kids
		d.childIndex = idx
		d.lazyIdx = false
	}
	return nil
}

// resolve returns the live inode for id, whether base or run-created.
func (t *Tree) resolve(id InodeID) (*Inode, bool) {
	if t.base.contains(id) {
		return t.node(id), true
	}
	n, ok := t.byID[id]
	return n, ok
}

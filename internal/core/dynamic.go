// Package core implements the paper's primary contribution: dynamic
// subtree partitioning of metadata across an MDS cluster (§4). It
// provides:
//
//   - DynamicSubtree: a partition.Strategy over a mutable subtree table,
//     optionally hashing the contents of individual oversized or hot
//     directories across the cluster (§4.3);
//   - TrafficControl: the popularity-driven replication policy that
//     manages client ignorance to disperse flash crowds (§4.4);
//   - Balancer: the heartbeat-driven load balancer that migrates
//     subtrees from busy to non-busy nodes (§4.3), preferring to
//     re-delegate whole previously imported subtrees to keep the
//     partition simple.
package core

import (
	"dynmds/internal/namespace"
	"dynmds/internal/partition"
)

// DynamicSubtree is the dynamic subtree partitioning strategy. The
// embedded table is mutated at runtime by the Balancer; nothing else
// distinguishes it structurally from a static subtree partition — which
// is exactly the paper's experimental design (the static comparator "does
// not employ load balancing to adjust the initial partition").
type DynamicSubtree struct {
	Table *partition.SubtreeTable

	// HashDirThreshold, when > 0, dynamically hashes the contents of
	// any directory with at least this many entries across the cluster
	// (§4.3). Zero disables directory hashing.
	HashDirThreshold int

	// DirsHashed counts directories currently hashed.
	DirsHashed int
}

// NewDynamicSubtree builds the strategy with the paper's initial
// partition: directories near the root assigned by path hash.
func NewDynamicSubtree(n int, tree *namespace.Tree, partitionDepth int) *DynamicSubtree {
	t := partition.NewSubtreeTable(n)
	partition.InitialPartition(t, tree, partitionDepth)
	return &DynamicSubtree{Table: t}
}

// Name implements partition.Strategy.
func (d *DynamicSubtree) Name() string { return "DynamicSubtree" }

// Authority implements partition.Strategy. Entries of a dynamically
// hashed directory are spread by (directory inode number, entry name);
// everything else follows the subtree table.
func (d *DynamicSubtree) Authority(ino *namespace.Inode) int {
	if p := ino.Parent(); p != nil && partition.TagsOf(p).HashedDir {
		return int(partition.NameHash(p.ID, ino.Name()) % uint64(d.Table.N()))
	}
	return d.Table.Authority(ino)
}

// AuthorityForName implements partition.Strategy.
func (d *DynamicSubtree) AuthorityForName(dir *namespace.Inode, name string) int {
	if partition.TagsOf(dir).HashedDir {
		return int(partition.NameHash(dir.ID, name) % uint64(d.Table.N()))
	}
	return d.Table.Authority(dir)
}

// DirGranular implements partition.Strategy.
func (d *DynamicSubtree) DirGranular() bool { return true }

// NeedsPathTraversal implements partition.Strategy.
func (d *DynamicSubtree) NeedsPathTraversal() bool { return true }

// ClientComputable implements partition.Strategy: clients learn the
// partition from replies — the ignorance traffic control exploits.
func (d *DynamicSubtree) ClientComputable() bool { return false }

// MaybeHashDir applies the dynamic directory-hashing policy to dir:
// hash it if it has grown past the threshold, consolidate it if it has
// shrunk below half the threshold (hysteresis). Reports whether the
// state changed.
func (d *DynamicSubtree) MaybeHashDir(dir *namespace.Inode) bool {
	if d.HashDirThreshold <= 0 || !dir.IsDir() {
		return false
	}
	tags := partition.TagsOf(dir)
	switch {
	case !tags.HashedDir && dir.NumChildren() >= d.HashDirThreshold:
		tags.HashedDir = true
		d.DirsHashed++
		return true
	case tags.HashedDir && dir.NumChildren() < d.HashDirThreshold/2:
		tags.HashedDir = false
		d.DirsHashed--
		return true
	}
	return false
}

// Comparison: run the multi-tenant composite scenario under three
// partitioning strategies side by side. The plan's matrix does the
// sweep; the per-act tables show who absorbs the deploy churn, the
// read hotspot, and the skewed bulk-stat pass.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"os"

	"dynmds/internal/harness"
	"dynmds/internal/plan/library"
)

func main() {
	p, ok := library.ByName("multitenant-mix")
	if !ok {
		log.Fatal("library plan multitenant-mix not found (see mdsim -list-plans)")
	}
	runs, err := harness.RunPlan(p, harness.Options{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := harness.WritePlanReport(os.Stdout, p, runs); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Dynamic subtree partitioning keeps the load spread near 1.0 through")
	fmt.Println("the hotspot act; static assignment and file hashing cannot move the")
	fmt.Println("crowded directory, so their spread and tail latency blow up instead.")
}

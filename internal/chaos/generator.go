// Package chaos provides seeded chaos fuzzing for the simulated
// cluster: a schedule generator that derives random-but-reproducible
// fault schedules from a single seed, and simfsck, a cluster-wide
// end-of-run consistency checker that goes beyond the per-structure
// CheckInvariants methods. The fuzz driver and shrinker that tie them
// together live in internal/harness (they need the run machinery).
//
// Determinism: Generate draws every value from one sim.NewStream keyed
// by (Seed, Run), in a fixed order, so the same inputs always yield a
// bit-identical schedule — and, because the fault plane is itself
// deterministic, a bit-identical run.
package chaos

import (
	"fmt"

	"dynmds/internal/fault"
	"dynmds/internal/sim"
)

// Classes selects which rule classes the generator may draw from.
type Classes uint8

// Rule-class bits.
const (
	ClassCrash Classes = 1 << iota
	ClassDrop
	ClassLag
	ClassSlow
	ClassPartition

	// ClassAll enables every rule class (the zero GenConfig default).
	ClassAll = ClassCrash | ClassDrop | ClassLag | ClassSlow | ClassPartition
)

// GenConfig parameterises schedule generation.
type GenConfig struct {
	// Seed and Run key the RNG stream: one seed spans a whole fuzz
	// budget, Run indexes the schedules within it.
	Seed int64
	Run  int
	// NumMDS is the cluster size the schedule must be valid for
	// (needs >= 2: a single-node cluster has nothing to crash or
	// partition).
	NumMDS int
	// Duration is the run length; every window falls inside
	// [Duration/10, Duration*9/10] so the run warms up before the first
	// fault and quiesces before the drain.
	Duration sim.Time
	// Intensity scales fault counts, drop probabilities, lag magnitudes
	// and slow factors. 1.0 is the nominal mix; 0 means 1.0.
	Intensity float64
	// Classes masks the rule classes drawn from; zero means ClassAll.
	Classes Classes
}

// Generate derives a random, valid fault schedule from the config.
// Guarantees, so that simfsck's invariants are meaningful:
//   - node 0 is never crashed, slowed or partitioned away alone — at
//     least one node stays up for failover to target;
//   - crash windows are paired with a recovery three times out of four
//     (the rest stay down through the run's end);
//   - drop probabilities, lag magnitudes and slow factors are bounded
//     (<= 0.3, <= 50ms, <= 8x) so runs degrade rather than stall;
//   - every window lies strictly inside the run and the result passes
//     Validate(NumMDS).
func Generate(cfg GenConfig) *fault.Schedule {
	if cfg.NumMDS < 2 {
		panic("chaos: Generate needs NumMDS >= 2")
	}
	if cfg.Duration <= 0 {
		panic("chaos: Generate needs a positive Duration")
	}
	intensity := cfg.Intensity
	if intensity <= 0 {
		intensity = 1
	}
	classes := cfg.Classes
	if classes == 0 {
		classes = ClassAll
	}
	rng := sim.NewStream(cfg.Seed, fmt.Sprintf("chaos-gen-%d", cfg.Run))
	g := &generator{
		rng: rng,
		n:   cfg.NumMDS,
		lo:  cfg.Duration / 10,
		hi:  cfg.Duration * 9 / 10,
		s:   &fault.Schedule{},
	}

	// Count budget per class, scaled by intensity. Intn keeps the draw
	// order fixed regardless of which classes are enabled: every class
	// consumes its draws even when masked out, so toggling one class
	// never reshuffles another class's rules.
	scaled := func(max int) int {
		m := int(float64(max)*intensity + 0.5)
		if m < 1 {
			m = 1
		}
		return g.rng.Intn(m + 1)
	}
	nCrash := scaled(min(2, cfg.NumMDS-1))
	nDrop := scaled(2)
	nLag := scaled(2)
	nSlow := scaled(1)
	nPart := scaled(1)

	g.crashes(nCrash, classes&ClassCrash != 0)
	g.drops(nDrop, intensity, classes&ClassDrop != 0)
	g.lags(nLag, intensity, classes&ClassLag != 0)
	g.slows(nSlow, intensity, classes&ClassSlow != 0)
	g.partitions(nPart, classes&ClassPartition != 0)

	if err := g.s.Validate(cfg.NumMDS); err != nil {
		panic("chaos: generated an invalid schedule: " + err.Error())
	}
	return g.s
}

// RollingConfig parameterises GenerateRolling.
type RollingConfig struct {
	// Seed keys the jitter stream.
	Seed int64
	// NumMDS is the cluster size (>= 2; node 0 never crashes).
	NumMDS int
	// Cycles is the number of crash/recover pairs; 0 means 10.
	Cycles int
	// Horizon is the run length the cycles are spread over.
	Horizon sim.Time
	// Outage is the crash-to-recover gap per cycle; 0 derives one from
	// the cycle spacing (a third of it, capped at 2s).
	Outage sim.Time
}

// GenerateRolling derives a rolling-upgrade shaped fault schedule: the
// soak workload of the endurance plane. Cycles sequential crash/recover
// pairs sweep round-robin over nodes 1..n-1 — node 0 is the designated
// survivor, so failover always has a target — evenly spaced over the
// middle 80% of the horizon with millisecond jitter, each node back up
// well before the next one goes down (outages never overlap). The
// result is deterministic in the config and valid for NumMDS.
func GenerateRolling(cfg RollingConfig) *fault.Schedule {
	if cfg.NumMDS < 2 {
		panic("chaos: GenerateRolling needs NumMDS >= 2")
	}
	if cfg.Horizon <= 0 {
		panic("chaos: GenerateRolling needs a positive Horizon")
	}
	cycles := cfg.Cycles
	if cycles <= 0 {
		cycles = 10
	}
	lo, hi := cfg.Horizon/10, cfg.Horizon*9/10
	step := (hi - lo) / sim.Time(cycles)
	if step < 4*sim.Millisecond {
		panic("chaos: GenerateRolling horizon too short for the cycle count")
	}
	outage := cfg.Outage
	if outage <= 0 {
		outage = step / 3
		if outage > 2*sim.Second {
			outage = 2 * sim.Second
		}
	}
	if outage >= step {
		panic("chaos: GenerateRolling outage does not fit the cycle spacing")
	}
	rng := sim.NewStream(cfg.Seed, "chaos-rolling")
	s := &fault.Schedule{}
	jitterSpan := int((step - outage) / (4 * sim.Millisecond))
	for i := 0; i < cycles; i++ {
		at := lo + sim.Time(i)*step
		if jitterSpan > 0 {
			at += sim.Time(rng.Intn(jitterSpan)) * sim.Millisecond
		}
		victim := 1 + i%(cfg.NumMDS-1)
		s.Crashes = append(s.Crashes, fault.NodeEvent{At: at, Node: victim})
		s.Recovers = append(s.Recovers, fault.NodeEvent{At: at + outage, Node: victim})
	}
	if err := s.Validate(cfg.NumMDS); err != nil {
		panic("chaos: generated an invalid rolling schedule: " + err.Error())
	}
	return s
}

type generator struct {
	rng    *sim.RNG
	n      int
	lo, hi sim.Time
	s      *fault.Schedule
}

// at picks a millisecond-granular instant in [g.lo, g.hi).
func (g *generator) at() sim.Time {
	span := int((g.hi - g.lo) / sim.Millisecond)
	return g.lo + sim.Time(g.rng.Intn(span))*sim.Millisecond
}

// window picks an ordered millisecond-granular window inside the run.
func (g *generator) window() (from, to sim.Time) {
	a, b := g.at(), g.at()
	if a > b {
		a, b = b, a
	}
	if a == b {
		b += sim.Millisecond
	}
	return a, b
}

// victim picks any node except 0, the designated survivor.
func (g *generator) victim() int { return 1 + g.rng.Intn(g.n-1) }

// crashes draws up to count crash events against distinct victims; most
// get a paired recovery, the rest stay down. Node 0 never crashes, so
// failover always has a target.
func (g *generator) crashes(count int, enabled bool) {
	used := make(map[int]bool)
	for i := 0; i < count; i++ {
		node := g.victim()
		from, to := g.window()
		recovers := g.rng.Float64() < 0.75
		if !enabled || used[node] {
			continue
		}
		used[node] = true
		g.s.Crashes = append(g.s.Crashes, fault.NodeEvent{At: from, Node: node})
		if recovers {
			g.s.Recovers = append(g.s.Recovers, fault.NodeEvent{At: to, Node: node})
		}
	}
}

// sel draws a link selector over any kind (all, client, node, pair).
func (g *generator) sel() fault.LinkSel {
	switch g.rng.Intn(4) {
	case 0:
		return fault.SelAll()
	case 1:
		return fault.SelClient()
	case 2:
		return fault.SelNode(g.rng.Intn(g.n))
	default:
		a := g.rng.Intn(g.n)
		b := (a + 1 + g.rng.Intn(g.n-1)) % g.n
		return fault.SelPair(a, b)
	}
}

// drops draws whole-run probabilistic drop rules. Probabilities scale
// with intensity but stay <= 0.3 so traffic degrades rather than stops.
func (g *generator) drops(count int, intensity float64, enabled bool) {
	for i := 0; i < count; i++ {
		sel := g.sel()
		p := 0.08 * intensity * g.rng.Float64()
		if p > 0.3 {
			p = 0.3
		}
		if !enabled {
			continue
		}
		g.s.Drops = append(g.s.Drops, fault.DropRule{Sel: sel, P: p})
	}
}

// lags draws windowed latency spikes, <= 50ms extra per message.
func (g *generator) lags(count int, intensity float64, enabled bool) {
	for i := 0; i < count; i++ {
		sel := g.sel()
		from, to := g.window()
		extra := sim.Time(float64(1+g.rng.Intn(20)) * intensity * float64(sim.Millisecond))
		if extra < sim.Millisecond {
			extra = sim.Millisecond
		}
		if extra > 50*sim.Millisecond {
			extra = 50 * sim.Millisecond
		}
		if !enabled {
			continue
		}
		g.s.Lags = append(g.s.Lags, fault.LagRule{Sel: sel, From: from, To: to, Extra: extra})
	}
}

// slows draws windowed service-time scaling, factor in [1.5, 8].
func (g *generator) slows(count int, intensity float64, enabled bool) {
	for i := 0; i < count; i++ {
		node := g.rng.Intn(g.n)
		from, to := g.window()
		factor := 1.5 + 2.5*intensity*g.rng.Float64()
		if factor > 8 {
			factor = 8
		}
		if !enabled {
			continue
		}
		g.s.Slows = append(g.s.Slows, fault.SlowWindow{From: from, To: to, Node: node, Factor: factor})
	}
}

// partitions draws windowed two-group splits over a shuffled subset of
// the nodes. Both groups are non-empty and disjoint; nodes left out of
// the shuffle prefix stay connected to everyone. Needs >= 3 nodes so a
// split leaves structure worth testing (with 2 it still works but
// isolates half the cluster).
func (g *generator) partitions(count int, enabled bool) {
	for i := 0; i < count; i++ {
		perm := g.rng.Perm(g.n)
		size := 2 + g.rng.Intn(g.n-1) // nodes involved: 2..n
		cut := 1 + g.rng.Intn(size-1) // split point: both sides non-empty
		from, to := g.window()
		if !enabled {
			continue
		}
		g.s.Partitions = append(g.s.Partitions, fault.Partition{
			From: from, To: to,
			A: append([]int(nil), perm[:cut]...),
			B: append([]int(nil), perm[cut:size]...),
		})
	}
}

package workload

import (
	"math"
	"sort"
	"strconv"

	"dynmds/internal/namespace"
	"dynmds/internal/sim"
)

// TenantConfig parameterises the open-loop tenant model: the client
// population is carved into tenants with Zipf-distributed sizes, and
// each tenant works against a bounded working set sampled from one home
// subtree of the frozen snapshot, with Zipf popularity inside the set.
type TenantConfig struct {
	// Tenants is the number of tenants. Zero derives clients/1024,
	// minimum 16 (capped at the client count).
	Tenants int
	// TenantSkew is the Zipf exponent for tenant sizes: tenant i gets
	// weight (i+1)^-TenantSkew. Zero means uniform sizes.
	TenantSkew float64
	// FileSkew is the Zipf exponent for target popularity inside a
	// tenant's working set. Zero means uniform.
	FileSkew float64
	// WorkingSet bounds the files (and directories) each tenant draws
	// from. Zero means 512.
	WorkingSet int
}

func (c TenantConfig) withDefaults(clients int) TenantConfig {
	if c.Tenants <= 0 {
		c.Tenants = clients / 1024
		if c.Tenants < 16 {
			c.Tenants = 16
		}
	}
	if c.Tenants > clients {
		c.Tenants = clients
	}
	if c.WorkingSet <= 0 {
		c.WorkingSet = 512
	}
	if c.TenantSkew < 0 {
		c.TenantSkew = 0
	}
	if c.FileSkew < 0 {
		c.FileSkew = 0
	}
	return c
}

// Tenants is the materialised tenant model: flat slabs only, no
// per-tenant pointers beyond the slice headers, so the setup cost and
// footprint stay O(tenants · working set) regardless of client count.
type Tenants struct {
	cfg       TenantConfig
	clientOff []int32 // prefix sums of clients per tenant, len T+1

	// Working-set slabs, all tenants concatenated; tenant t owns
	// files[fileOff[t]:fileOff[t+1]] (ditto dirs). The files slab may
	// include directories — Stat/Chmod on a directory is a valid op.
	files   []*namespace.Inode
	dirs    []*namespace.Inode
	fileOff []int32
	dirOff  []int32

	// Vose alias tables over each tenant's working set, same offsets as
	// the slabs: O(1) Zipf-popularity draws with two uniform words.
	fProb  []float64
	fAlias []int32
	dProb  []float64
	dAlias []int32
}

// NewTenants builds the tenant model for a client population over the
// given home directories. Deterministic for (cfg, clients, seed) and a
// fixed snapshot.
func NewTenants(cfg TenantConfig, clients int, homes []*namespace.Inode, seed int64) *Tenants {
	if clients < 1 {
		panic("workload: NewTenants with no clients")
	}
	if len(homes) == 0 {
		panic("workload: NewTenants with no home directories")
	}
	cfg = cfg.withDefaults(clients)
	t := &Tenants{cfg: cfg}
	t.assignClients(clients)
	t.buildWorkingSets(homes, seed)
	return t
}

// NumTenants returns the tenant count after defaulting.
func (t *Tenants) NumTenants() int { return len(t.clientOff) - 1 }

// ClientTenant maps a client id to its tenant (contiguous ranges).
func (t *Tenants) ClientTenant(client int) int {
	return sort.Search(t.NumTenants(), func(i int) bool {
		return int(t.clientOff[i+1]) > client
	})
}

// TenantClients returns tenant i's client count (tests, figures).
func (t *Tenants) TenantClients(i int) int {
	return int(t.clientOff[i+1] - t.clientOff[i])
}

// WorkingSetSize returns tenant i's file working-set size.
func (t *Tenants) WorkingSetSize(i int) int {
	return int(t.fileOff[i+1] - t.fileOff[i])
}

// FootprintBytes returns the slab bytes (8 per pointer/float, 4 per
// int32), for the population's memory accounting.
func (t *Tenants) FootprintBytes() int64 {
	ptrs := len(t.files) + len(t.dirs)
	f64 := len(t.fProb) + len(t.dProb)
	i32 := len(t.fAlias) + len(t.dAlias) + len(t.fileOff) + len(t.dirOff) + len(t.clientOff)
	return int64(ptrs+f64)*8 + int64(i32)*4
}

// ForEachTarget visits every inode the alias tables can return (files
// and directories, all tenants). The endurance plane uses it to keep
// its base-churn unlink victims disjoint from the working sets.
func (t *Tenants) ForEachTarget(fn func(*namespace.Inode)) {
	for _, n := range t.files {
		fn(n)
	}
	for _, n := range t.dirs {
		fn(n)
	}
}

// FileSkew returns the current popularity exponent.
func (t *Tenants) FileSkew() float64 { return t.cfg.FileSkew }

// SetFileSkew rebuilds the popularity alias tables in place for a new
// Zipf exponent. The working sets themselves are unchanged — only the
// draw distribution over them. Must run single-threaded (inline when
// serial, at a barrier when sharded); the Vose scratch allocation is
// boundary-time, not steady-state. Negative skew is a no-op, matching
// the act-layer "unchanged" convention.
func (t *Tenants) SetFileSkew(skew float64) {
	if skew < 0 || skew == t.cfg.FileSkew {
		return
	}
	t.cfg.FileSkew = skew
	for i := 0; i+1 < len(t.fileOff); i++ {
		buildAlias(t.fProb[t.fileOff[i]:t.fileOff[i+1]], t.fAlias[t.fileOff[i]:t.fileOff[i+1]], skew)
	}
	for i := 0; i+1 < len(t.dirOff); i++ {
		buildAlias(t.dProb[t.dirOff[i]:t.dirOff[i+1]], t.dAlias[t.dirOff[i]:t.dirOff[i+1]], skew)
	}
}

// File draws a target from tenant i's working set by Zipf popularity:
// u1 selects the candidate column, u2 resolves the alias coin flip.
func (t *Tenants) File(i int, u1, u2 uint64) *namespace.Inode {
	lo, hi := int(t.fileOff[i]), int(t.fileOff[i+1])
	return t.files[lo+aliasPick(t.fProb[lo:hi], t.fAlias[lo:hi], u1, u2)]
}

// Dir draws a directory from tenant i's working set.
func (t *Tenants) Dir(i int, u1, u2 uint64) *namespace.Inode {
	lo, hi := int(t.dirOff[i]), int(t.dirOff[i+1])
	return t.dirs[lo+aliasPick(t.dProb[lo:hi], t.dAlias[lo:hi], u1, u2)]
}

// aliasPick is the Vose draw: column u1 mod n, accept with probability
// prob, else take the alias. Two uniform words, no allocation.
func aliasPick(prob []float64, alias []int32, u1, u2 uint64) int {
	n := uint64(len(prob))
	i := int(u1 % n)
	if float64(u2>>11)/(1<<53) < prob[i] {
		return i
	}
	return int(alias[i])
}

// assignClients splits clients across tenants with weights
// (i+1)^-TenantSkew by largest remainder: every tenant gets at least
// one client, the rest follow the Zipf weights exactly up to rounding.
func (t *Tenants) assignClients(clients int) {
	n := t.cfg.Tenants
	weights := make([]float64, n)
	var total float64
	for i := range weights {
		weights[i] = zipfWeight(i, t.cfg.TenantSkew)
		total += weights[i]
	}
	counts := make([]int32, n)
	spare := clients - n // one guaranteed client per tenant
	assigned := 0
	rems := make([]float64, n)
	for i := range counts {
		exact := float64(spare) * weights[i] / total
		counts[i] = int32(exact)
		assigned += int(exact)
		rems[i] = exact - float64(int(exact))
	}
	// Hand the rounding leftover to the largest remainders, ties to the
	// lower index, so the split is deterministic.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return rems[order[a]] > rems[order[b]] })
	for k := 0; k < spare-assigned; k++ {
		counts[order[k%n]]++
	}
	t.clientOff = make([]int32, n+1)
	for i, c := range counts {
		t.clientOff[i+1] = t.clientOff[i] + c + 1
	}
}

func zipfWeight(rank int, skew float64) float64 {
	if skew == 0 {
		return 1
	}
	return math.Pow(float64(rank+1), -skew)
}

// buildWorkingSets samples each tenant's working set from one home
// subtree (tenants round-robin over homes) with a per-tenant seeded
// stream, then builds the alias tables for Zipf popularity.
func (t *Tenants) buildWorkingSets(homes []*namespace.Inode, seed int64) {
	n := t.NumTenants()
	t.fileOff = make([]int32, n+1)
	t.dirOff = make([]int32, n+1)
	var scratchF, scratchD []*namespace.Inode
	for i := 0; i < n; i++ {
		rng := sim.NewStream(seed, "tenant-"+strconv.Itoa(i))
		home := homes[i%len(homes)]
		scratchF, scratchD = collectSubtree(home, scratchF[:0], scratchD[:0])
		if len(scratchF) == 0 {
			scratchF = append(scratchF, home)
		}
		if len(scratchD) == 0 {
			scratchD = append(scratchD, home)
		}
		fset := sampleK(scratchF, t.cfg.WorkingSet, rng)
		dset := sampleK(scratchD, max(1, t.cfg.WorkingSet/8), rng)
		t.files = append(t.files, fset...)
		t.dirs = append(t.dirs, dset...)
		t.fileOff[i+1] = int32(len(t.files))
		t.dirOff[i+1] = int32(len(t.dirs))
	}
	t.fProb, t.fAlias = buildAliasRuns(t.fileOff, t.cfg.FileSkew)
	t.dProb, t.dAlias = buildAliasRuns(t.dirOff, t.cfg.FileSkew)
}

// collectSubtree gathers the files and directories beneath root
// (inclusive for directories) in deterministic DFS order.
func collectSubtree(root *namespace.Inode, files, dirs []*namespace.Inode) ([]*namespace.Inode, []*namespace.Inode) {
	if !root.IsDir() {
		return append(files, root), dirs
	}
	dirs = append(dirs, root)
	for _, c := range root.Children() {
		files, dirs = collectSubtree(c, files, dirs)
	}
	return files, dirs
}

// sampleK picks min(k, len(pool)) distinct nodes by partial
// Fisher–Yates, copying out so the scratch pool can be reused. The
// output order is the popularity ranking (index 0 = hottest).
func sampleK(pool []*namespace.Inode, k int, rng *sim.RNG) []*namespace.Inode {
	if k > len(pool) {
		k = len(pool)
	}
	out := make([]*namespace.Inode, k)
	for i := 0; i < k; i++ {
		j := i + rng.Pick(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
		out[i] = pool[i]
	}
	return out
}

// buildAliasRuns fills Vose alias tables for every [off[i], off[i+1])
// run with weights rank^-skew within the run.
func buildAliasRuns(off []int32, skew float64) ([]float64, []int32) {
	total := int(off[len(off)-1])
	prob := make([]float64, total)
	alias := make([]int32, total)
	for i := 0; i+1 < len(off); i++ {
		buildAlias(prob[off[i]:off[i+1]], alias[off[i]:off[i+1]], skew)
	}
	return prob, alias
}

// buildAlias constructs one Vose alias table in place for Zipf weights
// (rank+1)^-skew, deterministic small/large pairing by ascending index.
func buildAlias(prob []float64, alias []int32, skew float64) {
	n := len(prob)
	if n == 0 {
		return
	}
	var total float64
	for i := range prob {
		prob[i] = zipfWeight(i, skew)
		total += prob[i]
	}
	scale := float64(n) / total
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i := range prob {
		prob[i] *= scale
		alias[i] = int32(i)
		if prob[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		alias[s] = l
		prob[l] -= 1 - prob[s]
		if prob[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	for _, i := range large {
		prob[i] = 1
	}
	for _, i := range small {
		prob[i] = 1
	}
}

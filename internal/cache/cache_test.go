package cache

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dynmds/internal/namespace"
)

// buildChain makes /d0/d1/.../d(n-1)/f and returns the tree, dirs, file.
func buildChain(t *testing.T, n int) (*namespace.Tree, []*namespace.Inode, *namespace.Inode) {
	t.Helper()
	tr := namespace.NewTree()
	parent := tr.Root
	var dirs []*namespace.Inode
	for i := 0; i < n; i++ {
		d, err := tr.Mkdir(parent, fmt.Sprintf("d%d", i))
		if err != nil {
			t.Fatal(err)
		}
		dirs = append(dirs, d)
		parent = d
	}
	f, err := tr.Create(parent, "f")
	if err != nil {
		t.Fatal(err)
	}
	return tr, dirs, f
}

func TestInsertRequiresParent(t *testing.T) {
	_, _, f := buildChain(t, 2)
	c := New(10)
	if _, err := c.Insert(f, Auth, false); err == nil {
		t.Fatal("insert without cached parent succeeded")
	}
	if _, err := c.InsertPath(f, Auth, false); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 4 { // root + d0 + d1 + f
		t.Fatalf("len = %d, want 4", c.Len())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLeafOnlyEviction(t *testing.T) {
	tr, dirs, _ := buildChain(t, 2)
	c := New(4)
	// Fill with a chain: root,d0,d1 + leaf files.
	var files []*namespace.Inode
	for i := 0; i < 5; i++ {
		f, _ := tr.Create(dirs[1], fmt.Sprintf("x%d", i))
		files = append(files, f)
		if _, err := c.InsertPath(f, Auth, false); err != nil {
			t.Fatal(err)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() > 4 {
		t.Fatalf("len = %d exceeds capacity", c.Len())
	}
	// Ancestor chain must survive: d1's entry is pinned by cached files.
	if !c.Contains(dirs[1].ID) || !c.Contains(dirs[0].ID) || !c.Contains(tr.Root.ID) {
		t.Fatal("ancestor chain evicted")
	}
	// The only evictable entries were leaf files; the oldest went first.
	if c.Contains(files[0].ID) {
		t.Fatal("oldest leaf not evicted")
	}
	if !c.Contains(files[4].ID) {
		t.Fatal("newest leaf evicted")
	}
}

func TestWarmEvictedBeforeHot(t *testing.T) {
	tr, dirs, _ := buildChain(t, 1)
	c := New(5)
	hot, _ := tr.Create(dirs[0], "hot")
	if _, err := c.InsertPath(hot, Auth, false); err != nil {
		t.Fatal(err)
	}
	warm1, _ := tr.Create(dirs[0], "w1")
	warm2, _ := tr.Create(dirs[0], "w2")
	c.InsertPath(warm1, Auth, true)
	c.InsertPath(warm2, Auth, true)
	// Cache now: root, d0, hot, w1, w2 (full). Insert another hot item;
	// w1 (warm LRU) must be evicted even though hot is older.
	hot2, _ := tr.Create(dirs[0], "hot2")
	c.InsertPath(hot2, Auth, false)
	if c.Contains(warm1.ID) {
		t.Fatal("warm LRU survived")
	}
	if !c.Contains(hot.ID) {
		t.Fatal("hot entry evicted while warm existed")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWarmPromotionOnHit(t *testing.T) {
	tr, dirs, _ := buildChain(t, 1)
	c := New(5)
	w, _ := tr.Create(dirs[0], "w")
	c.InsertPath(w, Auth, true)
	if _, ok := c.Get(w.ID); !ok {
		t.Fatal("warm entry not found")
	}
	// After promotion, adding warm entries and overflowing must evict
	// the new warm ones, not the promoted entry.
	for i := 0; i < 6; i++ {
		f, _ := tr.Create(dirs[0], fmt.Sprintf("z%d", i))
		c.InsertPath(f, Auth, true)
	}
	if !c.Contains(w.ID) {
		t.Fatal("promoted entry evicted before warm entries")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGetStats(t *testing.T) {
	_, _, f := buildChain(t, 1)
	c := New(10)
	if _, err := c.InsertPath(f, Auth, false); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(f.ID); !ok {
		t.Fatal("miss on present entry")
	}
	if _, ok := c.Get(namespace.InodeID(9999)); ok {
		t.Fatal("hit on absent entry")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", c.HitRate())
	}
}

func TestClassUpgradeAndPrefixFraction(t *testing.T) {
	tr, dirs, f := buildChain(t, 2)
	_ = tr
	c := New(10)
	c.InsertPath(f, Auth, false)
	// root, d0, d1 are Prefix; f is Auth.
	if got := c.CountClass(Prefix); got != 3 {
		t.Fatalf("prefix count = %d, want 3", got)
	}
	if got := c.PrefixFraction(); got != 0.75 {
		t.Fatalf("prefix fraction = %v, want 0.75", got)
	}
	// Direct request for d1 upgrades it to Auth.
	if _, err := c.Insert(dirs[1], Auth, false); err != nil {
		t.Fatal(err)
	}
	if got := c.CountClass(Prefix); got != 2 {
		t.Fatalf("prefix count after upgrade = %d, want 2", got)
	}
	// Downgrade attempts are ignored.
	if _, err := c.Insert(dirs[1], Prefix, false); err != nil {
		t.Fatal(err)
	}
	if e, _ := c.Peek(dirs[1].ID); e.Class != Auth {
		t.Fatalf("class downgraded to %v", e.Class)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveAndRemoveSubtree(t *testing.T) {
	tr, dirs, f := buildChain(t, 3)
	c := New(100)
	c.InsertPath(f, Auth, false)
	g, _ := tr.Create(dirs[2], "g")
	c.InsertPath(g, Auth, false)

	if err := c.Remove(dirs[2].ID); err == nil {
		t.Fatal("removed pinned directory")
	}
	if err := c.Remove(f.ID); err != nil {
		t.Fatal(err)
	}
	if c.Contains(f.ID) {
		t.Fatal("removed entry still present")
	}
	// Remove whole subtree under d1.
	n := c.RemoveSubtree(dirs[1])
	if n == 0 {
		t.Fatal("subtree removal removed nothing")
	}
	if c.Contains(dirs[1].ID) || c.Contains(dirs[2].ID) || c.Contains(g.ID) {
		t.Fatal("subtree entries survived")
	}
	if !c.Contains(dirs[0].ID) {
		t.Fatal("entry outside subtree removed")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Removing an absent id is a no-op.
	if err := c.Remove(namespace.InodeID(123456)); err != nil {
		t.Fatal(err)
	}
}

func TestOnEvictCallback(t *testing.T) {
	tr, dirs, _ := buildChain(t, 1)
	c := New(3)
	var evicted []namespace.InodeID
	c.OnEvict = func(e *Entry) { evicted = append(evicted, e.Ino.ID) }
	a, _ := tr.Create(dirs[0], "a")
	b, _ := tr.Create(dirs[0], "b")
	c.InsertPath(a, Auth, false)
	c.InsertPath(b, Auth, false) // capacity 3: root,d0,a full; b evicts a
	if len(evicted) != 1 || evicted[0] != a.ID {
		t.Fatalf("evicted = %v, want [a]", evicted)
	}
}

func TestPinBlockedOverflow(t *testing.T) {
	_, dirs, f := buildChain(t, 5)
	_ = dirs
	c := New(2)
	// Path chain longer than capacity: all entries pinned, cache must
	// overflow rather than break the tree invariant.
	if _, err := c.InsertPath(f, Auth, false); err != nil {
		t.Fatal(err)
	}
	if c.Len() <= 2 {
		t.Fatalf("len = %d, expected overflow beyond capacity", c.Len())
	}
	if c.Stats.PinBlockedEvicts == 0 {
		t.Fatal("no pin-blocked evict recorded")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEntriesUnder(t *testing.T) {
	tr, dirs, f := buildChain(t, 2)
	c := New(100)
	c.InsertPath(f, Auth, false)
	g, _ := tr.Create(dirs[0], "g")
	c.InsertPath(g, Auth, false)
	under := c.EntriesUnder(dirs[1])
	if len(under) != 2 { // d1 and f
		t.Fatalf("entries under d1 = %d, want 2", len(under))
	}
	all := c.EntriesUnder(tr.Root)
	if len(all) != c.Len() {
		t.Fatalf("entries under root = %d, want %d", len(all), c.Len())
	}
}

// Property: random insert/get/remove traffic never violates cache
// invariants and never exceeds capacity by more than the longest pinned
// chain.
func TestCacheInvariantsUnderRandomTraffic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := namespace.NewTree()
		var all []*namespace.Inode
		parent := tr.Root
		for i := 0; i < 8; i++ {
			d, _ := tr.Mkdir(parent, fmt.Sprintf("d%d", i))
			all = append(all, d)
			for j := 0; j < 6; j++ {
				fl, _ := tr.Create(d, fmt.Sprintf("f%d", j))
				all = append(all, fl)
			}
			if r.Intn(2) == 0 {
				parent = d
			}
		}
		c := New(12)
		for op := 0; op < 500; op++ {
			n := all[r.Intn(len(all))]
			switch r.Intn(4) {
			case 0, 1:
				if _, err := c.InsertPath(n, Auth, r.Intn(2) == 0); err != nil {
					return false
				}
			case 2:
				c.Get(n.ID)
			case 3:
				_ = c.Remove(n.ID) // may fail if pinned; fine
			}
			if c.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestClassString(t *testing.T) {
	if Auth.String() != "auth" || Prefix.String() != "prefix" || Replica.String() != "replica" {
		t.Fatal("class strings wrong")
	}
	if Class(9).String() != "unknown" {
		t.Fatal("unknown class string wrong")
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for capacity 0")
		}
	}()
	New(0)
}

package sim

import "container/heap"

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same instant so that execution order is insertion order,
// keeping the simulation deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation executive. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     Time
	q       eventHeap
	seq     uint64
	stopped bool
	// Executed counts events dispatched since construction.
	Executed uint64
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.q)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) panics: it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	heap.Push(&e.q, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.At(e.now+d, fn)
}

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.q) }

// Stop makes the current Run/RunUntil call return once the executing
// event completes. Further events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events in timestamp order until the queue is empty or
// Stop is called. The clock remains at the last dispatched event.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && len(e.q) > 0 {
		ev := heap.Pop(&e.q).(event)
		e.now = ev.at
		e.Executed++
		ev.fn()
	}
}

// RunUntil dispatches events with timestamps <= end, then (unless Stop
// was called) advances the clock to end: idle virtual time passes.
func (e *Engine) RunUntil(end Time) {
	e.stopped = false
	for !e.stopped && len(e.q) > 0 && e.q[0].at <= end {
		ev := heap.Pop(&e.q).(event)
		e.now = ev.at
		e.Executed++
		ev.fn()
	}
	if !e.stopped && e.now < end {
		e.now = end
	}
}

package metrics

import (
	"math/bits"

	"dynmds/internal/sim"
)

// latHist sub-bucket geometry: 16 linear sub-buckets per power-of-two
// octave bounds relative quantile error at 1/16 (6.25%) with a fixed
// 976-counter footprint covering the whole non-negative sim.Time range.
const (
	latSubBits  = 4
	latSubCount = 1 << latSubBits
	latBuckets  = (64-latSubBits)*latSubCount + latSubCount // 976
)

// LatHist is a bounded log2-bucket latency histogram: microsecond
// values land in one of 976 fixed counters (16 linear sub-buckets per
// octave), so p50/p99/p999 for tens of millions of observations cost
// 8 KB and zero allocations — no per-op samples. Welford remains the
// tool for mean/stddev; LatHist only answers quantiles.
type LatHist struct {
	n       uint64
	buckets [latBuckets]uint64
}

// NewLatHist returns an empty histogram.
func NewLatHist() *LatHist { return &LatHist{} }

// latIndex maps a microsecond value to its bucket.
func latIndex(u uint64) int {
	if u < latSubCount {
		return int(u)
	}
	exp := uint(bits.Len64(u)) - latSubBits - 1 // u>>exp in [16, 32)
	return int(exp)<<latSubBits + int(u>>exp)
}

// latBound returns the largest value mapping to bucket idx.
func latBound(idx int) sim.Time {
	if idx < latSubCount {
		return sim.Time(idx)
	}
	exp := uint(idx>>latSubBits) - 1
	m := uint64(idx&(latSubCount-1)) | latSubCount
	return sim.Time((m+1)<<exp - 1)
}

// Observe records one latency. Negative values clamp to zero.
func (h *LatHist) Observe(d sim.Time) {
	if d < 0 {
		d = 0
	}
	h.buckets[latIndex(uint64(d))]++
	h.n++
}

// N returns the observation count.
func (h *LatHist) N() uint64 { return h.n }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// top of the bucket holding the ceil(q*N)-th smallest observation.
// Returns 0 when empty.
func (h *LatHist) Quantile(q float64) sim.Time {
	if h.n == 0 {
		return 0
	}
	rank := uint64(q * float64(h.n))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= rank {
			return latBound(i)
		}
	}
	return latBound(latBuckets - 1)
}

// Merge folds src into h (sharded runs keep one lane per shard).
func (h *LatHist) Merge(src *LatHist) {
	h.n += src.n
	for i := range h.buckets {
		h.buckets[i] += src.buckets[i]
	}
}

// Reset zeroes the histogram.
func (h *LatHist) Reset() { *h = LatHist{} }

// State visits the non-empty buckets for checkpoints.
func (h *LatHist) State(fn func(idx int, count uint64)) {
	for i, c := range h.buckets {
		if c != 0 {
			fn(i, c)
		}
	}
}

// SetBucket restores one bucket captured by State. The caller is
// responsible for starting from an empty histogram.
func (h *LatHist) SetBucket(idx int, count uint64) {
	h.n += count - h.buckets[idx]
	h.buckets[idx] = count
}

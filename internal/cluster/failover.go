package cluster

import "fmt"

// FailNode takes node i down and — for the dynamic strategy — reassigns
// its delegated subtrees to the surviving nodes (round-robin), modelling
// the shared-storage failover of §2.1.2: because metadata lives on a
// shared store rather than directly-attached disks, any node can assume
// a failed node's workload. The new authorities start cold and re-read
// metadata on demand.
//
// Static and hashed strategies have no reassignment mechanism (the
// paper notes static partitions require manual redistribution), so with
// them FailNode only marks the node down; clients depend on retry
// timeouts.
func (c *Cluster) FailNode(i int) error {
	if i < 0 || i >= len(c.Nodes) {
		return fmt.Errorf("cluster: node %d out of range", i)
	}
	c.Nodes[i].Fail()
	if c.Dyn == nil {
		return nil
	}
	alive := make([]int, 0, len(c.Nodes)-1)
	for j, n := range c.Nodes {
		if !n.Failed() {
			alive = append(alive, j)
		}
	}
	if len(alive) == 0 {
		return fmt.Errorf("cluster: no surviving nodes")
	}
	k := 0
	for _, root := range c.Dyn.Table.RootsOf(i) {
		if err := c.Dyn.Table.Delegate(root, alive[k%len(alive)]); err != nil {
			return err
		}
		k++
	}
	return nil
}

// RecoverNode brings node i back. Its cache is pre-warmed from the
// bounded log's working set (§4.6); under the dynamic strategy the load
// balancer will migrate subtrees back to it as imbalance appears.
// Returns the number of records warmed.
func (c *Cluster) RecoverNode(i int) (int, error) {
	if i < 0 || i >= len(c.Nodes) {
		return 0, fmt.Errorf("cluster: node %d out of range", i)
	}
	return c.Nodes[i].Recover(), nil
}

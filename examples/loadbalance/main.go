// Load shift: a rename storm drags entries across authority boundaries
// (§4 of the paper: fixed-position metadata vs dynamic redistribution).
// The library plan ramps cross-tenant renames to 60% of traffic for six
// simulated seconds and the fwd column prices the forwarding each
// strategy pays before and after.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"
	"os"

	"dynmds/internal/harness"
	"dynmds/internal/plan/library"
)

func main() {
	p, ok := library.ByName("rename-storm")
	if !ok {
		log.Fatal("library plan rename-storm not found (see mdsim -list-plans)")
	}
	runs, err := harness.RunPlan(p, harness.Options{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := harness.WritePlanReport(os.Stdout, p, runs); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("The calm and settle acts bracket the storm: forwarding and tail")
	fmt.Println("latency spike while 60% of operations are renames, then decay as")
	fmt.Println("the caches re-converge on the new authority placement.")
}

// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event queue, FIFO service centres for modelling
// contended resources (CPU, disk, network), periodic tickers, and seeded
// random-variate helpers.
//
// The engine is single-threaded and fully deterministic: two runs with the
// same seed and the same schedule of events produce identical results.
// Parallelism in this repository happens one level up, across independent
// simulation configurations (see internal/harness).
package sim

import "fmt"

// Time is a point in virtual time, measured in microseconds from the start
// of the simulation.
type Time int64

// Duration constants for virtual time arithmetic.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// Seconds returns t expressed in (floating point) seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

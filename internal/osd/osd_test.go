package osd

import (
	"testing"
	"testing/quick"

	"dynmds/internal/sim"
)

func TestPlacementDeterministic(t *testing.T) {
	a, _ := NewPlacement(16)
	b, _ := NewPlacement(16)
	for obj := ObjectID(0); obj < 1000; obj++ {
		if a.Primary(obj) != b.Primary(obj) {
			t.Fatal("placement not deterministic")
		}
	}
}

func TestPlacementBalance(t *testing.T) {
	const n = 10
	p, _ := NewPlacement(n)
	counts := make([]int, n)
	const objs = 20000
	for obj := ObjectID(0); obj < objs; obj++ {
		counts[p.Primary(obj)]++
	}
	mean := float64(objs) / n
	for d, c := range counts {
		if float64(c) < 0.85*mean || float64(c) > 1.15*mean {
			t.Fatalf("device %d holds %d objects, mean %.0f: %v", d, c, mean, counts)
		}
	}
}

func TestPlacementWeights(t *testing.T) {
	p, _ := NewPlacement(2)
	if err := p.SetWeight(1, 3); err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 2)
	for obj := ObjectID(0); obj < 20000; obj++ {
		counts[p.Primary(obj)]++
	}
	// Device 1 has 3x the weight: expect ~75% of objects.
	frac := float64(counts[1]) / 20000
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("weighted share = %.3f, want ~0.75", frac)
	}
	if err := p.SetWeight(9, 1); err == nil {
		t.Fatal("out-of-range weight accepted")
	}
}

// The paper's key requirement: adding a device must move only ~1/(n+1)
// of objects — probabilistically balanced with minimal migration.
func TestPlacementMinimalMovement(t *testing.T) {
	const n = 9
	p, _ := NewPlacement(n)
	const objs = 20000
	before := make([]int, objs)
	for obj := 0; obj < objs; obj++ {
		before[obj] = p.Primary(ObjectID(obj))
	}
	newDev := p.AddDevice(1)
	moved, movedElsewhere := 0, 0
	for obj := 0; obj < objs; obj++ {
		after := p.Primary(ObjectID(obj))
		if after != before[obj] {
			moved++
			if after != newDev {
				movedElsewhere++
			}
		}
	}
	want := float64(objs) / float64(n+1)
	if float64(moved) < 0.8*want || float64(moved) > 1.2*want {
		t.Fatalf("moved %d objects, want ~%.0f", moved, want)
	}
	if movedElsewhere != 0 {
		t.Fatalf("%d objects moved between old devices", movedElsewhere)
	}
}

func TestReplicasDistinctAndStable(t *testing.T) {
	p, _ := NewPlacement(8)
	f := func(obj uint64) bool {
		r := p.Replicas(ObjectID(obj), 3)
		if len(r) != 3 {
			return false
		}
		if r[0] != p.Primary(ObjectID(obj)) {
			return false
		}
		seen := map[int]bool{}
		for _, d := range r {
			if d < 0 || d >= 8 || seen[d] {
				return false
			}
			seen[d] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Clamped when r exceeds live devices.
	small, _ := NewPlacement(2)
	if got := small.Replicas(7, 5); len(got) != 2 {
		t.Fatalf("replicas = %v", got)
	}
}

func TestDrainedDeviceReceivesNothing(t *testing.T) {
	p, _ := NewPlacement(4)
	_ = p.SetWeight(2, 0)
	for obj := ObjectID(0); obj < 5000; obj++ {
		for _, d := range p.Replicas(obj, 2) {
			if d == 2 {
				t.Fatal("drained device selected")
			}
		}
	}
}

func TestPoolReadWrite(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{NumOSDs: 4, Replicas: 2, ReadLatency: 1000, ReadPerRecord: 10, WriteLatency: 100}
	p, err := NewPool(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var readAt, wroteAt sim.Time
	p.Read(42, 5, func() { readAt = eng.Now() })
	p.Write(42, func() { wroteAt = eng.Now() })
	eng.Run()
	if readAt != 1050 {
		t.Fatalf("read completed at %v", readAt)
	}
	if wroteAt == 0 {
		t.Fatal("write never completed")
	}
	if p.Stats.Reads != 1 || p.Stats.Writes != 2 { // 2 replicas written
		t.Fatalf("stats = %+v", p.Stats)
	}
}

func TestPoolFailoverRead(t *testing.T) {
	eng := sim.NewEngine()
	p, err := NewPool(eng, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	const obj = ObjectID(99)
	primary := p.Placement().Primary(obj)
	if err := p.SetDown(primary, true); err != nil {
		t.Fatal(err)
	}
	completed := false
	p.Read(obj, 1, func() { completed = true })
	eng.Run()
	if !completed {
		t.Fatal("read did not fail over")
	}
	if p.Stats.FailoverReads != 1 {
		t.Fatalf("failover reads = %d", p.Stats.FailoverReads)
	}
	// All replicas down: the read is dropped and counted.
	for _, d := range p.Placement().Replicas(obj, 2) {
		_ = p.SetDown(d, true)
	}
	p.Read(obj, 1, func() { t.Fatal("read completed with all replicas down") })
	eng.Run()
	if p.Stats.UnplacedErrors != 1 {
		t.Fatalf("unplaced errors = %d", p.Stats.UnplacedErrors)
	}
	// Write with all replicas down is also dropped.
	p.Write(obj, func() { t.Fatal("write completed with all replicas down") })
	eng.Run()
	if p.Stats.UnplacedErrors != 2 {
		t.Fatalf("unplaced errors = %d", p.Stats.UnplacedErrors)
	}
}

func TestPoolRejectsEmpty(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewPool(eng, Config{NumOSDs: 0}); err == nil {
		t.Fatal("empty pool accepted")
	}
	if _, err := NewPlacement(0); err == nil {
		t.Fatal("empty placement accepted")
	}
}

func TestObjectIDNamespaces(t *testing.T) {
	if DirObject(5) == LogObject(5) {
		t.Fatal("dir and log object IDs collide")
	}
}

func BenchmarkPrimary(b *testing.B) {
	p, _ := NewPlacement(100)
	for i := 0; i < b.N; i++ {
		_ = p.Primary(ObjectID(i))
	}
}

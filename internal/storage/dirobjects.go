package storage

import (
	"sort"

	"dynmds/internal/dirstore"
	"dynmds/internal/namespace"
)

// DirObjects models the long-term tier's per-directory objects as
// copy-on-write B-trees (§4.6). Objects are materialised lazily, on the
// first update to a directory; reads in the simulation are costed by
// the latency model, so the trees' job is to account the *incremental
// write amplification* of metadata updates (B-tree nodes rewritten per
// create/unlink/rename) and to provide snapshots.
type DirObjects struct {
	order int
	trees map[namespace.InodeID]*dirstore.Tree

	// NodesWritten accumulates B-tree nodes rewritten by updates — the
	// long-term tier's write amplification.
	NodesWritten uint64
	// Updates counts directory-object mutations.
	Updates uint64
}

// NewDirObjects creates the object index with the given B-tree order.
func NewDirObjects(order int) *DirObjects {
	return &DirObjects{order: order, trees: make(map[namespace.InodeID]*dirstore.Tree)}
}

func (d *DirObjects) tree(dir namespace.InodeID) *dirstore.Tree {
	t, ok := d.trees[dir]
	if !ok {
		t = dirstore.New(d.order)
		d.trees[dir] = t
	}
	return t
}

// Len reports how many directory objects have been materialised.
func (d *DirObjects) Len() int { return len(d.trees) }

// Insert records an entry create (or in-place update) in dir's object.
func (d *DirObjects) Insert(dir namespace.InodeID, rec dirstore.Record) {
	w, err := d.tree(dir).Insert(rec)
	if err != nil {
		return
	}
	d.Updates++
	d.NodesWritten += uint64(w)
}

// Delete records an entry removal from dir's object.
func (d *DirObjects) Delete(dir namespace.InodeID, name string) {
	w, ok := d.tree(dir).Delete(name)
	if !ok {
		return
	}
	d.Updates++
	d.NodesWritten += uint64(w)
}

// Snapshot returns an O(1) copy-on-write snapshot of dir's object, or
// nil if the directory has never been updated here.
func (d *DirObjects) Snapshot(dir namespace.InodeID) *dirstore.Tree {
	t, ok := d.trees[dir]
	if !ok {
		return nil
	}
	return t.Snapshot()
}

// Object returns the live object for dir, if materialised.
func (d *DirObjects) Object(dir namespace.InodeID) (*dirstore.Tree, bool) {
	t, ok := d.trees[dir]
	return t, ok
}

// ForEach visits every materialised directory object in ascending
// directory-ID order, so iteration is deterministic. The chaos
// consistency checker uses it to cross-check dirstore records against
// the namespace.
func (d *DirObjects) ForEach(fn func(dir namespace.InodeID, t *dirstore.Tree)) {
	ids := make([]namespace.InodeID, 0, len(d.trees))
	for id := range d.trees {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fn(id, d.trees[id])
	}
}

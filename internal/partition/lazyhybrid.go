package partition

import "dynmds/internal/namespace"

// LazyHybrid implements the Lazy Hybrid strategy (§3.1.3, Brandt et
// al. 2003): metadata is distributed by a hash of the full path (like
// FileHash), but each file record carries a dual-entry access control
// list holding the effective permissions of its whole path, so requests
// need no path traversal. The price: when a directory's permissions
// change — or a directory is renamed, which changes the path hash and
// hence the location of everything beneath it — the change must be
// (lazily) propagated to every affected file, amortised to one network
// trip per affected file on its next access.
type LazyHybrid struct {
	N int

	// updateEpoch increments on every directory permission/path change.
	updateEpoch uint64

	// Debt is the number of file records with un-propagated updates
	// outstanding; LH's viability depends on updates being applied
	// faster than they are created.
	Debt int

	// TotalInvalidated counts records ever affected by updates.
	TotalInvalidated uint64
}

// NewLazyHybrid returns the strategy for an n-node cluster.
func NewLazyHybrid(n int) *LazyHybrid { return &LazyHybrid{N: n} }

// Name implements Strategy.
func (l *LazyHybrid) Name() string { return "LazyHybrid" }

// Authority implements Strategy: hash of the full path.
func (l *LazyHybrid) Authority(ino *namespace.Inode) int {
	return int(PathHash(ino) % uint64(l.N))
}

// AuthorityForName implements Strategy: hash of the would-be full path.
func (l *LazyHybrid) AuthorityForName(dir *namespace.Inode, name string) int {
	return FileHash{N: l.N}.AuthorityForName(dir, name)
}

// DirGranular implements Strategy: LH scatters individual inodes.
func (l *LazyHybrid) DirGranular() bool { return false }

// NeedsPathTraversal implements Strategy: the dual-entry ACL removes the
// need to traverse prefix directories on access.
func (l *LazyHybrid) NeedsPathTraversal() bool { return false }

// ClientComputable implements Strategy.
func (l *LazyHybrid) ClientComputable() bool { return true }

// NoteDirUpdate records a directory permission change or rename: every
// file nested beneath dir now has a stale dual-entry ACL (and, for a
// rename, a stale location). Returns the number of affected records.
func (l *LazyHybrid) NoteDirUpdate(dir *namespace.Inode) int {
	if !dir.IsDir() {
		return 0
	}
	l.updateEpoch++
	TagsOf(dir).LHDirEpoch = l.updateEpoch
	affected := dir.SubtreeInodes - 1
	l.Debt += affected
	l.TotalInvalidated += uint64(affected)
	return affected
}

// Stale reports whether the inode's dual-entry ACL must be refreshed
// before the request can be served: some ancestor changed after the last
// propagation to this record.
func (l *LazyHybrid) Stale(ino *namespace.Inode) bool {
	applied := TagsOf(ino).LHApplied
	for c := ino.Parent(); c != nil; c = c.Parent() {
		if TagsOf(c).LHDirEpoch > applied {
			return true
		}
	}
	return false
}

// Apply folds all pending ancestor updates into the record (one lazy
// propagation, costing the caller one network trip). It reduces the
// outstanding debt.
func (l *LazyHybrid) Apply(ino *namespace.Inode) {
	t := TagsOf(ino)
	if t.LHApplied < l.updateEpoch {
		t.LHApplied = l.updateEpoch
		if l.Debt > 0 {
			l.Debt--
		}
	}
}

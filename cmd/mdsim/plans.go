package main

import (
	"encoding/json"
	"fmt"
	"os"

	"dynmds/internal/harness"
	"dynmds/internal/plan"
	"dynmds/internal/plan/library"
)

// resolvePlans maps the -plan argument to plans: "all" is the whole
// library, a library name is that plan, anything else is read as a DSL
// file. Every failure here is a usage error (exit 2), matching the
// -faults/-net-model precedent: a bad plan never starts a simulation.
func resolvePlans(arg string) ([]*plan.Plan, error) {
	if arg == "all" {
		return library.All(), nil
	}
	if p, ok := library.ByName(arg); ok {
		return []*plan.Plan{p}, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return nil, fmt.Errorf("-plan %q is neither a library plan (see -list-plans) nor a readable file: %v", arg, err)
	}
	p, err := plan.Parse(string(data))
	if err != nil {
		return nil, err
	}
	return []*plan.Plan{p}, nil
}

// planJSONReport is the -plan-json schema: one entry per plan, one row
// per compiled cell, with nested per-act metrics rows.
type planJSONReport struct {
	Quick     bool           `json:"quick"`
	Seed      int64          `json:"seed"`
	NetModel  string         `json:"net_model"`
	Plans     []planJSONPlan `json:"plans"`
	PeakRSSKB int64          `json:"peak_rss_kb"`
}

type planJSONPlan struct {
	Plan     string        `json:"plan"`
	Describe string        `json:"describe"`
	Optimize []string      `json:"optimize,omitempty"`
	Runs     []planJSONRun `json:"runs"`
}

type planJSONRun struct {
	Label       string            `json:"label"`
	Cell        map[string]string `json:"cell,omitempty"`
	Issued      uint64            `json:"issued"`
	Completed   uint64            `json:"completed"`
	OpsPerSec   float64           `json:"ops_per_sec"`
	P50Ms       float64           `json:"p50_ms"`
	P99Ms       float64           `json:"p99_ms"`
	P999Ms      float64           `json:"p999_ms"`
	LoadSpread  float64           `json:"load_spread"`
	HitRate     float64           `json:"hit_rate"`
	ForwardFrac float64           `json:"forward_frac"`
	Acts        []planJSONAct     `json:"acts,omitempty"`
}

type planJSONAct struct {
	Act        string  `json:"act"`
	FromS      float64 `json:"from_s"`
	ToS        float64 `json:"to_s"`
	Issued     uint64  `json:"issued"`
	Completed  uint64  `json:"completed"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	LoadSpread float64 `json:"load_spread"`
}

// runPlans validates, runs and reports the selected plans. Stdout is
// fully deterministic (golden-stable); wall-clock and memory accounting
// go to the JSON report only.
func runPlans(arg, jsonPath string, opt harness.Options) error {
	plans, err := resolvePlans(arg)
	if err != nil {
		return err
	}
	rep := planJSONReport{Quick: opt.Quick, Seed: opt.Seed, NetModel: opt.NetModel}
	// Compile everything up front so every config error (including a bad
	// matrix) surfaces before any plan starts running.
	for _, p := range plans {
		if _, err := p.Compile(harness.PlanOptions(opt)); err != nil {
			return err
		}
	}
	for i, p := range plans {
		runs, err := harness.RunPlan(p, opt)
		if err != nil {
			return err
		}
		if i > 0 {
			fmt.Println()
		}
		if err := harness.WritePlanReport(os.Stdout, p, runs); err != nil {
			return err
		}
		jp := planJSONPlan{Plan: p.Name, Describe: p.Describe, Optimize: p.Optimize}
		for _, r := range runs {
			jr := planJSONRun{
				Label:       r.Label,
				Cell:        r.Cell,
				Issued:      r.Res.Issued,
				Completed:   r.Res.Completed,
				P50Ms:       r.Res.LatencyP50 * 1000,
				P99Ms:       r.Res.LatencyP99 * 1000,
				P999Ms:      r.Res.LatencyP999 * 1000,
				LoadSpread:  harness.LoadSpreadOf(r.Res.PerMDSOps),
				HitRate:     r.Res.HitRate,
				ForwardFrac: r.Res.ForwardFrac,
			}
			if sec := r.Cfg.Duration.Seconds(); sec > 0 {
				jr.OpsPerSec = float64(r.Res.Completed) / sec
			}
			for _, a := range r.Res.Acts {
				jr.Acts = append(jr.Acts, planJSONAct{
					Act:        a.Name,
					FromS:      a.From.Seconds(),
					ToS:        a.To.Seconds(),
					Issued:     a.Issued,
					Completed:  a.Completed,
					OpsPerSec:  a.OpsPerSec,
					P50Ms:      a.P50 * 1000,
					P99Ms:      a.P99 * 1000,
					LoadSpread: a.LoadSpread,
				})
			}
			jp.Runs = append(jp.Runs, jr)
		}
		rep.Plans = append(rep.Plans, jp)
	}
	if jsonPath != "" {
		rep.PeakRSSKB = peakRSSKB()
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(out, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mdsim: wrote %s (%d plans)\n", jsonPath, len(rep.Plans))
	}
	return nil
}

// listPlans prints the library, one plan per line.
func listPlans() {
	for _, p := range library.All() {
		cells := 1
		for _, ax := range p.Matrix {
			cells *= len(ax.Values)
		}
		fmt.Printf("%-24s %d run(s), %d act(s)\n                         %s\n",
			p.Name, cells, len(p.Acts), p.Describe)
	}
}

// Package metrics provides the measurement primitives used throughout
// the simulator: plain counters, exponentially decaying counters (the
// paper's popularity metric, §4.4: "a simple access counter whose value
// decays over time"), bucketed time series for the over-time figures,
// and small formatting helpers for paper-style output tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dynmds/internal/sim"
)

// DecayCounter is an access counter whose value halves every HalfLife of
// virtual time. Decay is applied lazily on access.
type DecayCounter struct {
	HalfLife sim.Time
	value    float64
	last     sim.Time
}

// NewDecayCounter returns a counter with the given half-life.
func NewDecayCounter(halfLife sim.Time) *DecayCounter {
	if halfLife <= 0 {
		panic("metrics: half-life must be positive")
	}
	return &DecayCounter{HalfLife: halfLife}
}

func (c *DecayCounter) decayTo(now sim.Time) {
	if now <= c.last {
		return
	}
	dt := float64(now - c.last)
	c.value *= math.Exp2(-dt / float64(c.HalfLife))
	c.last = now
}

// Add decays to now and then adds x.
func (c *DecayCounter) Add(now sim.Time, x float64) {
	c.decayTo(now)
	c.value += x
}

// Value returns the decayed value at now.
func (c *DecayCounter) Value(now sim.Time) float64 {
	c.decayTo(now)
	return c.value
}

// Peek returns the decayed value at now without updating the counter's
// state: the read-only form used while the counter may be shared across
// concurrent readers (sharded execution reads popularity during windows
// and defers the writes to barriers). Peek(t) == Value(t) always; only
// the stored (value, last) pair differs afterwards.
func (c *DecayCounter) Peek(now sim.Time) float64 {
	if now <= c.last {
		return c.value
	}
	dt := float64(now - c.last)
	return c.value * math.Exp2(-dt/float64(c.HalfLife))
}

// Reset zeroes the counter.
func (c *DecayCounter) Reset(now sim.Time) {
	c.value = 0
	c.last = now
}

// State exposes the raw (value, last-decay-time) pair for checkpoints.
func (c *DecayCounter) State() (float64, sim.Time) { return c.value, c.last }

// SetState restores a pair captured by State.
func (c *DecayCounter) SetState(value float64, last sim.Time) {
	c.value, c.last = value, last
}

// Series accumulates observations into fixed-width time buckets, for the
// "metric over time" figures (5, 6, 7).
type Series struct {
	Bucket sim.Time
	sums   []float64
	counts []int64
}

// NewSeries creates a series with the given bucket width.
func NewSeries(bucket sim.Time) *Series {
	if bucket <= 0 {
		panic("metrics: bucket width must be positive")
	}
	return &Series{Bucket: bucket}
}

func (s *Series) grow(i int) {
	for len(s.sums) <= i {
		s.sums = append(s.sums, 0)
		s.counts = append(s.counts, 0)
	}
}

// Observe adds x to the bucket containing now.
func (s *Series) Observe(now sim.Time, x float64) {
	i := int(now / s.Bucket)
	s.grow(i)
	s.sums[i] += x
	s.counts[i]++
}

// Len returns the number of buckets touched so far.
func (s *Series) Len() int { return len(s.sums) }

// Sum returns the accumulated sum in bucket i (0 if untouched).
func (s *Series) Sum(i int) float64 {
	if i < 0 || i >= len(s.sums) {
		return 0
	}
	return s.sums[i]
}

// Count returns the observation count in bucket i.
func (s *Series) Count(i int) int64 {
	if i < 0 || i >= len(s.counts) {
		return 0
	}
	return s.counts[i]
}

// Mean returns Sum(i)/Count(i), or 0 for an empty bucket.
func (s *Series) Mean(i int) float64 {
	if c := s.Count(i); c > 0 {
		return s.Sum(i) / float64(c)
	}
	return 0
}

// Rate returns Sum(i) per second of bucket width.
func (s *Series) Rate(i int) float64 {
	return s.Sum(i) / s.Bucket.Seconds()
}

// BucketStart returns the virtual time at which bucket i begins.
func (s *Series) BucketStart(i int) sim.Time { return sim.Time(i) * s.Bucket }

// Merge folds src's buckets into s (bucketwise sum of sums and counts).
// Both series must share a bucket width. Sharded runs keep one series
// lane per shard and merge them at collection time.
func (s *Series) Merge(src *Series) {
	if src.Bucket != s.Bucket {
		panic("metrics: merging series with different bucket widths")
	}
	if len(src.sums) > 0 {
		s.grow(len(src.sums) - 1)
	}
	for i := range src.sums {
		s.sums[i] += src.sums[i]
		s.counts[i] += src.counts[i]
	}
}

// State exposes the raw buckets for checkpoints; the returned slices
// alias the series and must not be mutated.
func (s *Series) State() ([]float64, []int64) { return s.sums, s.counts }

// SetState restores buckets captured by State (copied in).
func (s *Series) SetState(sums []float64, counts []int64) {
	s.sums = append(s.sums[:0], sums...)
	s.counts = append(s.counts[:0], counts...)
}

// Welford accumulates mean/variance/min/max online.
type Welford struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add incorporates x.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the observation count.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Min and Max return extrema (0 when empty).
func (w *Welford) Min() float64 { return w.min }
func (w *Welford) Max() float64 { return w.max }

// Merge folds src into w (parallel-variance combination). Sharded runs
// keep one accumulator per shard and merge at collection time.
func (w *Welford) Merge(src *Welford) {
	if src.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *src
		return
	}
	if src.min < w.min {
		w.min = src.min
	}
	if src.max > w.max {
		w.max = src.max
	}
	n := w.n + src.n
	d := src.mean - w.mean
	w.m2 += src.m2 + d*d*float64(w.n)*float64(src.n)/float64(n)
	w.mean += d * float64(src.n) / float64(n)
	w.n = n
}

// State exposes the accumulator fields for checkpoints.
func (w *Welford) State() (n int64, mean, m2, min, max float64) {
	return w.n, w.mean, w.m2, w.min, w.max
}

// SetState restores fields captured by State.
func (w *Welford) SetState(n int64, mean, m2, min, max float64) {
	w.n, w.mean, w.m2, w.min, w.max = n, mean, m2, min, max
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// Table renders aligned columns for paper-style console output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v unless already strings.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// SortedKeys returns map keys in sorted order, for deterministic output.
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

package cache

import (
	"fmt"
	"testing"

	"dynmds/internal/namespace"
)

func benchTree(b *testing.B, dirs, filesPerDir int) (*namespace.Tree, []*namespace.Inode) {
	b.Helper()
	tr := namespace.NewTree()
	var files []*namespace.Inode
	for d := 0; d < dirs; d++ {
		dir, err := tr.Mkdir(tr.Root, fmt.Sprintf("d%d", d))
		if err != nil {
			b.Fatal(err)
		}
		for f := 0; f < filesPerDir; f++ {
			n, err := tr.Create(dir, fmt.Sprintf("f%d", f))
			if err != nil {
				b.Fatal(err)
			}
			files = append(files, n)
		}
	}
	return tr, files
}

// BenchmarkInsertPathEvict measures the hot path of a full cache:
// insert with ancestor maintenance plus eviction.
func BenchmarkInsertPathEvict(b *testing.B) {
	_, files := benchTree(b, 64, 64)
	c := New(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.InsertPath(files[i%len(files)], Auth, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetHit measures a cache hit with LRU touch.
func BenchmarkGetHit(b *testing.B) {
	_, files := benchTree(b, 4, 64)
	c := New(1024)
	for _, f := range files {
		if _, err := c.InsertPath(f, Auth, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(files[i%len(files)].ID)
	}
}

// BenchmarkPrefixFraction measures the Figure 3 metric scan.
func BenchmarkPrefixFraction(b *testing.B) {
	_, files := benchTree(b, 32, 32)
	c := New(2048)
	for _, f := range files {
		if _, err := c.InsertPath(f, Auth, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.PrefixFraction()
	}
}

package metrics

import (
	"fmt"
	"strings"
)

// sparkRunes are eight block heights for inline plots.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a compact unicode bar string, scaled to
// the series' own min..max range. Empty input yields an empty string.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	span := hi - lo
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// SeriesSparkline renders bucket sums of a Series over [from, to).
func SeriesSparkline(s *Series, from, to int) string {
	if to > s.Len() {
		to = s.Len()
	}
	if from < 0 {
		from = 0
	}
	if from >= to {
		return ""
	}
	vals := make([]float64, 0, to-from)
	for i := from; i < to; i++ {
		vals = append(vals, s.Sum(i))
	}
	return Sparkline(vals)
}

// Histogram is a fixed-bucket frequency counter for latency-style
// distributions with a long tail: bucket boundaries double.
type Histogram struct {
	// bounds[i] is the inclusive upper bound of bucket i.
	bounds []float64
	counts []uint64
	total  uint64
}

// NewHistogram builds a doubling histogram from first up through
// first*2^(n-1); values above the last bound land in an overflow
// bucket.
func NewHistogram(first float64, n int) *Histogram {
	if n < 1 || first <= 0 {
		panic("metrics: invalid histogram shape")
	}
	h := &Histogram{counts: make([]uint64, n+1)}
	b := first
	for i := 0; i < n; i++ {
		h.bounds = append(h.bounds, b)
		b *= 2
	}
	return h
}

// Observe adds a value.
func (h *Histogram) Observe(v float64) {
	h.total++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.counts)-1]++
}

// Total returns the observation count.
func (h *Histogram) Total() uint64 { return h.total }

// Merge folds src's counts into h. Both histograms must share bucket
// bounds (same first bound and bucket count).
func (h *Histogram) Merge(src *Histogram) {
	if len(src.counts) != len(h.counts) ||
		(len(h.bounds) > 0 && src.bounds[0] != h.bounds[0]) {
		panic("metrics: merging histograms with different shapes")
	}
	for i := range src.counts {
		h.counts[i] += src.counts[i]
	}
	h.total += src.total
}

// State exposes the raw bucket counts and total for checkpoints; the
// returned slice aliases the histogram and must not be mutated.
func (h *Histogram) State() ([]uint64, uint64) { return h.counts, h.total }

// SetState restores counts captured by State (copied in). The
// histogram must have been built with the same shape.
func (h *Histogram) SetState(counts []uint64, total uint64) {
	if len(counts) != len(h.counts) {
		panic("metrics: histogram state shape mismatch")
	}
	copy(h.counts, counts)
	h.total = total
}

// Quantile returns an upper bound for quantile q in [0,1] (the bound of
// the bucket containing it), or 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := uint64(q * float64(h.total))
	if target >= h.total {
		target = h.total - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1] * 2 // overflow bucket
		}
	}
	return h.bounds[len(h.bounds)-1] * 2
}

// String renders the histogram with proportional bars.
func (h *Histogram) String() string {
	var b strings.Builder
	var max uint64
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	for i, c := range h.counts {
		label := "overflow"
		if i < len(h.bounds) {
			label = fmt.Sprintf("<=%g", h.bounds[i])
		}
		bar := 0
		if max > 0 {
			bar = int(40 * c / max)
		}
		fmt.Fprintf(&b, "%-12s %-40s %d\n", label, strings.Repeat("#", bar), c)
	}
	return b.String()
}

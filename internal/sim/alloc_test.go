package sim

import "testing"

// counter is a pointer-shaped event receiver used by the allocation
// tests: passing *counter through the event's `any` payload words must
// not allocate.
type counter struct{ n int }

func bump(a, b any) { a.(*counter).n++ }

// TestScheduleDispatchAllocFree asserts the tentpole property: once the
// heap slice has grown to its high-water mark, a schedule+dispatch cycle
// with a typed callback performs zero allocations (the ISSUE budget is
// ≤1 alloc/event; the engine achieves 0).
func TestScheduleDispatchAllocFree(t *testing.T) {
	e := NewEngine()
	c := &counter{}
	// Warm up: grow the heap slice past anything the measurement uses.
	for i := 0; i < 4096; i++ {
		e.AfterCall(Time(i%64), bump, c, nil)
	}
	e.Run()

	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 32; i++ {
			e.AfterCall(Time(i), bump, c, nil)
		}
		e.Run()
	})
	if allocs > 0 {
		t.Fatalf("schedule+dispatch allocated %.2f times per 32 events, want 0", allocs)
	}
	if c.n == 0 {
		t.Fatal("callbacks never ran")
	}
}

// TestServerSubmitAllocFree asserts the same for the FIFO service
// centre: pooled jobs make a steady-state submit+complete cycle
// allocation-free.
func TestServerSubmitAllocFree(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 2)
	c := &counter{}
	for i := 0; i < 1024; i++ {
		s.SubmitCall(Microsecond, bump, c, nil)
	}
	e.Run()

	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 16; i++ {
			s.SubmitCall(Microsecond, bump, c, nil)
		}
		e.Run()
	})
	if allocs > 0 {
		t.Fatalf("submit+complete allocated %.2f times per 16 jobs, want 0", allocs)
	}
}

// TestStopLeavesQueueAndPoolsIntact exercises the Stop/pool contract:
// Stop halts dispatch without draining the queue, so events (and the
// pooled jobs they reference) still pending at Stop must survive — they
// are released to free lists only by the dispatch that consumes them.
// Run after Stop resumes exactly where it left off, every callback fires
// exactly once, and submission order is preserved throughout.
func TestStopLeavesQueueAndPoolsIntact(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 1)
	var order []int
	record := func(a, b any) { order = append(order, a.(*counter).n) }

	tags := make([]*counter, 8)
	for i := range tags {
		tags[i] = &counter{n: i}
	}
	// First batch; the second job stops the engine mid-run.
	s.SubmitCall(Millisecond, record, tags[0], nil)
	s.SubmitCall(Millisecond, func(a, b any) {
		record(a, b)
		e.Stop()
	}, tags[1], nil)
	s.SubmitCall(Millisecond, record, tags[2], nil)
	s.SubmitCall(Millisecond, record, tags[3], nil)
	e.Run()

	if len(order) != 2 {
		t.Fatalf("ran %d callbacks before Stop, want 2 (order %v)", len(order), order)
	}
	if e.Pending() == 0 && s.QueueLen() == 0 && s.InService() == 0 {
		t.Fatal("Stop drained all pending work; it must leave the queue intact")
	}

	// More submissions while stopped: these must queue behind the
	// survivors, and pooled jobs recycled by completed dispatches must
	// not alias the still-pending ones.
	s.SubmitCall(Millisecond, record, tags[4], nil)
	s.SubmitCall(Millisecond, record, tags[5], nil)
	e.Run()

	want := []int{0, 1, 2, 3, 4, 5}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Pending() != 0 || s.QueueLen() != 0 {
		t.Fatalf("work left behind: %d events, %d queued jobs", e.Pending(), s.QueueLen())
	}
}

// deferRig is the receiver for the sharded-window allocation pin: each
// firing defers a typed mutation and reschedules itself, keeping its
// shard busy across every lookahead window.
type deferRig struct {
	e *Engine
	c *counter
}

func deferAndReschedule(a, b any) {
	d := a.(*deferRig)
	d.e.Defer(bump, d.c, nil)
	d.e.AfterCall(Millisecond, deferAndReschedule, a, b)
}

// TestShardedWindowAllocFree pins the sharded steady state: once the
// heaps and deferred-op buffers have reached their high-water marks, a
// full window cycle — window sizing, per-shard dispatch, Defer capture,
// and the barrier's ApplyDeferred merge — allocates nothing. The pin
// runs the windows sequentially (parallel=false), which executes the
// identical per-window code path; parallel mode adds only a fixed
// per-Run worker startup cost, never per-window allocations.
func TestShardedWindowAllocFree(t *testing.T) {
	shards := []*Engine{NewEngine(), NewEngine()}
	global := NewEngine()
	var g *ShardGroup
	g = NewShardGroup(shards, global, Millisecond, false, func(now Time) {
		g.ApplyDeferred()
		global.RunUntil(now)
	})
	c := &counter{}
	for _, s := range shards {
		s.AfterCall(Millisecond, deferAndReschedule, &deferRig{e: s, c: c}, nil)
	}
	end := Time(0)
	step := 64 * Millisecond
	end += step
	g.Run(end) // warmup: grow heaps and gop buffers

	allocs := testing.AllocsPerRun(200, func() {
		end += step
		g.Run(end)
	})
	if allocs > 0 {
		t.Fatalf("sharded window cycle allocated %.2f times per %v of windows, want 0", allocs, step)
	}
	if c.n == 0 {
		t.Fatal("deferred mutations never applied")
	}
	if g.Windows == 0 {
		t.Fatal("no windows executed")
	}
}

// BenchmarkEngineSchedule measures pure scheduling cost: push b.N events
// without dispatching (drained once outside the timer).
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	c := &counter{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.AfterCall(Time(i%1000), bump, c, nil)
		if i%4096 == 4095 {
			b.StopTimer()
			e.Run()
			b.StartTimer()
		}
	}
	b.StopTimer()
	e.Run()
}

// BenchmarkEngineRun measures a full schedule+dispatch cycle with typed
// callbacks and reports end-to-end event throughput.
func BenchmarkEngineRun(b *testing.B) {
	e := NewEngine()
	c := &counter{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.AfterCall(Time(i%1000), bump, c, nil)
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
	b.ReportMetric(float64(e.Executed)/b.Elapsed().Seconds(), "events/sec")
}

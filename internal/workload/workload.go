// Package workload generates synthetic client metadata operation
// streams. Three families, matching the paper's evaluation (§5.2):
//
//   - General-purpose: op mix modelled on the trace study the paper
//     cites (stat-dominated; open/close pairs; readdir followed by
//     stats; occasional creates/unlinks; rare directory permission
//     changes and renames), with per-client locality of reference
//     inside a home-directory region and occasional excursions to
//     shared system files.
//
//   - Scientific: synchronized bursts in which every client of a job
//     opens the same file (N-to-1) or creates files in the same
//     directory (N-to-N), modelled on the LLNL trace analysis.
//
//   - Scenario wrappers: a workload shift for the dynamic-balancing
//     experiment (Figures 5/6) and a flash crowd for the
//     traffic-control experiment (Figure 7).
package workload

import (
	"strconv"

	"dynmds/internal/msg"
	"dynmds/internal/namespace"
	"dynmds/internal/sim"
)

// Op is one generated metadata operation.
type Op struct {
	Op      msg.Op
	Target  *namespace.Inode
	DstDir  *namespace.Inode
	NewName string
	// Size is the new file size for Write ops.
	Size int64
}

// Generator produces one client's operation stream.
type Generator interface {
	// Next returns the next operation. ok=false means the generator
	// has nothing right now (the client retries shortly).
	Next(now sim.Time, r *sim.RNG) (Op, bool)
	// Observe lets the generator see completed replies (e.g. to adopt
	// a directory it asked to create).
	Observe(rep *msg.Reply)
}

// Mix holds relative op-type weights for the general workload.
type Mix struct {
	Stat, Open, Readdir, Create, Unlink, Mkdir, Chmod, Rename float64
}

// DefaultMix approximates the metadata op mix of general-purpose trace
// studies; open is always followed by a close (issued as a separate op),
// and readdir is followed by a run of stats, so the effective mix is
// richer than the raw weights.
func DefaultMix() Mix {
	return Mix{
		Stat:    42,
		Open:    22,
		Readdir: 4,
		Create:  5,
		Unlink:  3,
		Mkdir:   0.7,
		Chmod:   0.8,
		Rename:  0.4,
	}
}

func (m Mix) total() float64 {
	return m.Stat + m.Open + m.Readdir + m.Create + m.Unlink + m.Mkdir + m.Chmod + m.Rename
}

// GeneralConfig parameterises the general-purpose generator.
type GeneralConfig struct {
	Mix Mix
	// PMove is the chance per op of moving the working directory one
	// step (descend into a child directory or ascend) — the locality
	// random walk.
	PMove float64
	// PJump is the chance of jumping to a random directory within the
	// client's region.
	PJump float64
	// PShared is the chance of targeting the shared system tree or a
	// project directory instead of the client's own region.
	PShared float64
	// PDirChmod is the fraction of chmods aimed at directories rather
	// than files (the Lazy Hybrid stress knob).
	PDirChmod float64
	// PDirRename likewise for renames.
	PDirRename float64
	// ReaddirStats bounds the run of stats issued after a readdir.
	ReaddirStats int
}

// DefaultGeneralConfig returns the configuration used by experiments.
func DefaultGeneralConfig() GeneralConfig {
	return GeneralConfig{
		Mix:          DefaultMix(),
		PMove:        0.08,
		PJump:        0.02,
		PShared:      0.08,
		PDirChmod:    0.05,
		PDirRename:   0.05,
		ReaddirStats: 8,
	}
}

// Region is the part of the namespace a client works in plus the shared
// areas it occasionally touches.
type Region struct {
	// Home is the client's private working subtree.
	Home *namespace.Inode
	// Shared lists directories (system tree, projects, other homes)
	// for non-local accesses.
	Shared []*namespace.Inode
}

// General is the general-purpose per-client generator.
type General struct {
	cfg    GeneralConfig
	region Region
	cur    *namespace.Inode
	queue  []Op
	seq    int
	client int
}

// NewGeneral creates a generator working in the given region.
func NewGeneral(client int, cfg GeneralConfig, region Region) *General {
	return &General{cfg: cfg, region: region, cur: region.Home, client: client}
}

// SetRegion moves the client's activity to a new home subtree.
func (g *General) SetRegion(home *namespace.Inode) {
	g.region.Home = home
	g.cur = home
}

// Observe implements Generator (no reply feedback needed).
func (g *General) Observe(rep *msg.Reply) {}

// Next implements Generator.
func (g *General) Next(now sim.Time, r *sim.RNG) (Op, bool) {
	if len(g.queue) > 0 {
		op := g.queue[0]
		copy(g.queue, g.queue[1:])
		g.queue = g.queue[:len(g.queue)-1]
		if valid(op) {
			return op, true
		}
		return g.Next(now, r)
	}
	g.wander(r)

	dir := g.cur
	if r.Float64() < g.cfg.PShared && len(g.region.Shared) > 0 {
		dir = g.region.Shared[r.Pick(len(g.region.Shared))]
		// Walk down to a random directory beneath the shared root.
		dir = descend(dir, r, 2)
	}
	if dir == nil || dir.Parent() == nil && dir.NumChildren() == 0 {
		return Op{}, false
	}

	m := g.cfg.Mix
	x := r.Float64() * m.total()
	switch {
	case x < m.Stat:
		if f := pickFile(dir, r); f != nil {
			return Op{Op: msg.Stat, Target: f}, true
		}
		return Op{Op: msg.Stat, Target: dir}, true
	case x < m.Stat+m.Open:
		f := pickFile(dir, r)
		if f == nil {
			return Op{Op: msg.Stat, Target: dir}, true
		}
		// The ubiquitous open-then-close pair.
		g.queue = append(g.queue, Op{Op: msg.Close, Target: f})
		return Op{Op: msg.Open, Target: f}, true
	case x < m.Stat+m.Open+m.Readdir:
		// readdir followed by a run of stats.
		n := dir.NumChildren()
		if n > g.cfg.ReaddirStats {
			n = g.cfg.ReaddirStats
		}
		for i := 0; i < n; i++ {
			g.queue = append(g.queue, Op{Op: msg.Stat, Target: dir.Child(r.Pick(dir.NumChildren()))})
		}
		return Op{Op: msg.Readdir, Target: dir}, true
	case x < m.Stat+m.Open+m.Readdir+m.Create:
		g.seq++
		return Op{Op: msg.Create, Target: dir, NewName: newName('c', g.client, g.seq)}, true
	case x < m.Stat+m.Open+m.Readdir+m.Create+m.Unlink:
		if f := pickFile(dir, r); f != nil {
			return Op{Op: msg.Unlink, Target: f}, true
		}
		return Op{Op: msg.Stat, Target: dir}, true
	case x < m.Stat+m.Open+m.Readdir+m.Create+m.Unlink+m.Mkdir:
		g.seq++
		return Op{Op: msg.Mkdir, Target: dir, NewName: newName('d', g.client, g.seq)}, true
	case x < m.Stat+m.Open+m.Readdir+m.Create+m.Unlink+m.Mkdir+m.Chmod:
		if r.Float64() < g.cfg.PDirChmod {
			return Op{Op: msg.Chmod, Target: dir}, true
		}
		if f := pickFile(dir, r); f != nil {
			return Op{Op: msg.Chmod, Target: f}, true
		}
		return Op{Op: msg.Chmod, Target: dir}, true
	default: // rename
		if r.Float64() < g.cfg.PDirRename {
			if d := pickDir(dir, r); d != nil {
				g.seq++
				return Op{Op: msg.Rename, Target: d, DstDir: dir, NewName: newName('r', g.client, g.seq)}, true
			}
		}
		if f := pickFile(dir, r); f != nil {
			g.seq++
			return Op{Op: msg.Rename, Target: f, DstDir: dir, NewName: newName('r', g.client, g.seq)}, true
		}
		return Op{Op: msg.Stat, Target: dir}, true
	}
}

// newName formats prefix<client>_<seq> ("c12_345") with strconv instead
// of fmt: the one retained string is the new entry's name; everything
// else stays on the stack.
func newName(prefix byte, client, seq int) string {
	var buf [24]byte
	b := append(buf[:0], prefix)
	b = strconv.AppendInt(b, int64(client), 10)
	b = append(b, '_')
	b = strconv.AppendInt(b, int64(seq), 10)
	return string(b)
}

// wander implements the locality random walk within the region.
func (g *General) wander(r *sim.RNG) {
	if g.cur == nil || g.cur.Parent() == nil && g.cur != g.region.Home {
		g.cur = g.region.Home // current dir was unlinked or moved away
	}
	if !inRegion(g.cur, g.region.Home) {
		g.cur = g.region.Home
	}
	if r.Float64() < g.cfg.PJump {
		if d := descend(g.region.Home, r, 8); d != nil {
			g.cur = d
		}
		return
	}
	if r.Float64() >= g.cfg.PMove {
		return
	}
	// One random-walk step: descend into a child dir or ascend.
	var dirs []*namespace.Inode
	for _, c := range g.cur.Children() {
		if c.IsDir() {
			dirs = append(dirs, c)
		}
	}
	up := g.cur != g.region.Home && g.cur.Parent() != nil
	n := len(dirs)
	if up {
		n++
	}
	if n == 0 {
		return
	}
	i := r.Pick(n)
	if i == len(dirs) {
		g.cur = g.cur.Parent()
	} else {
		g.cur = dirs[i]
	}
}

func inRegion(n, home *namespace.Inode) bool {
	if home == nil {
		return false
	}
	return n == home || home.IsAncestorOf(n)
}

// descend walks down from root through random directory children for up
// to maxSteps, returning the directory reached.
func descend(root *namespace.Inode, r *sim.RNG, maxSteps int) *namespace.Inode {
	cur := root
	for s := 0; s < maxSteps; s++ {
		var dirs []*namespace.Inode
		for _, c := range cur.Children() {
			if c.IsDir() {
				dirs = append(dirs, c)
			}
		}
		if len(dirs) == 0 || r.Float64() < 0.4 {
			break
		}
		cur = dirs[r.Pick(len(dirs))]
	}
	return cur
}

// pickFile selects a random file child, or nil.
func pickFile(dir *namespace.Inode, r *sim.RNG) *namespace.Inode {
	n := dir.NumChildren()
	if n == 0 {
		return nil
	}
	// A few probes rather than a filtered list: dirs are mostly files.
	for probe := 0; probe < 4; probe++ {
		c := dir.Child(r.Pick(n))
		if !c.IsDir() {
			return c
		}
	}
	return nil
}

// pickDir selects a random directory child, or nil.
func pickDir(dir *namespace.Inode, r *sim.RNG) *namespace.Inode {
	n := dir.NumChildren()
	if n == 0 {
		return nil
	}
	for probe := 0; probe < 4; probe++ {
		c := dir.Child(r.Pick(n))
		if c.IsDir() {
			return c
		}
	}
	return nil
}

// valid rejects queued ops whose target got unlinked in the meantime.
// Only the root legitimately has no parent (and, uniquely, no name).
func valid(op Op) bool {
	return op.Target != nil && (op.Target.Parent() != nil || op.Target.Name() == "")
}

// Flash crowd: thousands of clients suddenly hammer one directory — the
// pattern that motivates traffic control (§4.4) and the MIDAS-style
// create storm. The library plan drives it as a hotspot act: 80% of
// draws redirect to one home directory for eight simulated seconds,
// swept over the dynamic and hashed strategies.
//
//	go run ./examples/flashcrowd
package main

import (
	"fmt"
	"log"
	"os"

	"dynmds/internal/harness"
	"dynmds/internal/plan/library"
)

func main() {
	p, ok := library.ByName("midas-create-hotspot")
	if !ok {
		log.Fatal("library plan midas-create-hotspot not found (see mdsim -list-plans)")
	}
	runs, err := harness.RunPlan(p, harness.Options{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := harness.WritePlanReport(os.Stdout, p, runs); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Compare the storm act across strategies: file hashing spreads the")
	fmt.Println("created entries by construction, while the dynamic strategy has to")
	fmt.Println("rebalance the crowded subtree — the spread column shows the gap,")
	fmt.Println("and the calm/cool acts bracket the steady-state cost.")
}

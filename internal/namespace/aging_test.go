package namespace

import (
	"testing"

	"dynmds/internal/snap"
)

// agedOverlay builds an overlay over a generated frozen base and ages
// it: removes some base files, creates new entries (some in fresh
// directories), renames one base file across directories, and mutates
// one base inode in place.
func agedOverlay(t *testing.T) (*Tree, *Frozen, []InodeID) {
	t.Helper()
	base := genTree(t, 11, 12, 4)
	f, err := base.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	ov := NewOverlay(f)

	var files []*Inode
	var dirs []*Inode
	ov.Walk(func(n *Inode) bool {
		if n.IsDir() {
			dirs = append(dirs, n)
		} else {
			files = append(files, n)
		}
		return true
	})

	var dead []InodeID
	for i := 0; i < 5; i++ {
		dead = append(dead, files[i*3].ID)
		if err := ov.Remove(files[i*3]); err != nil {
			t.Fatal(err)
		}
	}
	nd, err := ov.Mkdir(dirs[1], "aged")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := ov.Create(nd, "n"+string(rune('a'+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ov.Rename(files[1], nd, "moved"); err != nil {
		t.Fatal(err)
	}
	ov.Chmod(files[2], 0o600)
	files[2].Size = 4096
	return ov, f, dead
}

// TestCompactTombstonesRepresentation: the map→bitset swap preserves
// the tombstone set, membership queries, iteration order, and
// accounting, and is idempotent.
func TestCompactTombstonesRepresentation(t *testing.T) {
	ov, _, dead := agedOverlay(t)
	if ov.TombstonesCompacted() {
		t.Fatal("fresh overlay already compacted")
	}
	before := ov.TombstoneCount()
	if before != len(dead) {
		t.Fatalf("TombstoneCount = %d, want %d", before, len(dead))
	}
	var mapOrder []InodeID
	ov.ForEachTombstone(func(id InodeID) { mapOrder = append(mapOrder, id) })

	if n := ov.CompactTombstones(); n != before {
		t.Fatalf("CompactTombstones migrated %d, want %d", n, before)
	}
	if !ov.TombstonesCompacted() {
		t.Fatal("bitset not installed")
	}
	if got := ov.TombstoneCount(); got != before {
		t.Fatalf("count after compaction = %d, want %d", got, before)
	}
	var bitOrder []InodeID
	ov.ForEachTombstone(func(id InodeID) { bitOrder = append(bitOrder, id) })
	if len(bitOrder) != len(mapOrder) {
		t.Fatalf("iteration sizes differ: %d vs %d", len(bitOrder), len(mapOrder))
	}
	for i := range bitOrder {
		if bitOrder[i] != mapOrder[i] {
			t.Fatalf("iteration order diverged at %d: %d vs %d", i, bitOrder[i], mapOrder[i])
		}
		if i > 0 && bitOrder[i] <= bitOrder[i-1] {
			t.Fatalf("bitset iteration not ascending at %d", i)
		}
	}
	for _, id := range dead {
		if !ov.Tombstoned(id) {
			t.Fatalf("inode %d lost its tombstone across compaction", id)
		}
		if _, ok := ov.ByID(id); ok {
			t.Fatalf("tombstoned inode %d resolves after compaction", id)
		}
	}
	if n := ov.CompactTombstones(); n != 0 {
		t.Fatalf("second compaction migrated %d, want 0", n)
	}
}

// TestOverlaySnapshotRoundTrip serializes an aged overlay and restores
// it onto a pristine overlay of the same base: shape, tombstones,
// accounting, ID watermark, and read-through counters must all match.
func TestOverlaySnapshotRoundTrip(t *testing.T) {
	for _, compact := range []bool{false, true} {
		ov, f, dead := agedOverlay(t)
		if compact {
			ov.CompactTombstones()
		}
		// Touch the lazy-index counters so the round trip covers them.
		if _, err := ov.Lookup("/d0"); err != nil {
			t.Fatal(err)
		}

		w := snap.NewWriter()
		w.Begin("tree")
		ov.SnapshotTo(w)
		w.End()
		r, err := snap.NewReader(w.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Section(); err != nil {
			t.Fatal(err)
		}
		got := NewOverlay(f)
		if err := got.RestoreFrom(r); err != nil {
			t.Fatalf("compact=%v: %v", compact, err)
		}

		requireSameShape(t, ov, got)
		if got.MaxID() != ov.MaxID() {
			t.Errorf("MaxID = %d, want %d", got.MaxID(), ov.MaxID())
		}
		if got.TombstoneCount() != ov.TombstoneCount() {
			t.Errorf("tombstones = %d, want %d", got.TombstoneCount(), ov.TombstoneCount())
		}
		if got.TombstonesCompacted() != compact {
			t.Errorf("compacted = %v, want %v", got.TombstonesCompacted(), compact)
		}
		if got.BaseDeletes != ov.BaseDeletes || got.Resurrected != ov.Resurrected {
			t.Errorf("accounting %d/%d, want %d/%d",
				got.BaseDeletes, got.Resurrected, ov.BaseDeletes, ov.Resurrected)
		}
		for _, id := range dead {
			if !got.Tombstoned(id) {
				t.Errorf("restored overlay lost tombstone %d", id)
			}
		}
		gl, gm := got.LazyStats()
		wl, wm := ov.LazyStats()
		if gl != wl || gm != wm {
			t.Errorf("lazy stats %d/%d, want %d/%d", gl, gm, wl, wm)
		}
		if err := got.CheckInvariants(); err != nil {
			t.Errorf("restored overlay invariants: %v", err)
		}
	}
}

// Package trace records and replays metadata operation traces. The
// paper's future work calls for trace-driven evaluation ("the use of
// actual workload traces with matching file system metadata snapshots");
// this package provides the mechanism: a Recorder wraps any workload
// generator and logs the operations it emits, and a Player replays a
// recorded stream against a (regenerated, matching) namespace.
//
// The format is JSON lines, one event per line, resolvable by path so a
// trace taken on one simulation run can be replayed on any tree built
// from the same fsgen configuration.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"dynmds/internal/metrics"
	"dynmds/internal/msg"
	"dynmds/internal/namespace"
	"dynmds/internal/sim"
	"dynmds/internal/workload"
)

// Event is one recorded operation.
type Event struct {
	T      int64  `json:"t"` // microseconds of virtual time
	Client int    `json:"c"`
	Op     string `json:"op"`
	Path   string `json:"path"`
	Name   string `json:"name,omitempty"` // create/mkdir/rename new name
	Dst    string `json:"dst,omitempty"`  // rename destination directory
}

var opByName = func() map[string]msg.Op {
	m := make(map[string]msg.Op, msg.NumOps)
	for i := 0; i < msg.NumOps; i++ {
		m[msg.Op(i).String()] = msg.Op(i)
	}
	return m
}()

// Recorder wraps a workload generator and writes every emitted op.
type Recorder struct {
	Inner  workload.Generator
	Client int

	enc *json.Encoder
	// Events counts recorded ops.
	Events uint64
}

// NewRecorder wraps inner, writing JSON lines to w.
func NewRecorder(client int, inner workload.Generator, w io.Writer) *Recorder {
	return &Recorder{Inner: inner, Client: client, enc: json.NewEncoder(w)}
}

// Next implements workload.Generator.
func (r *Recorder) Next(now sim.Time, rng *sim.RNG) (workload.Op, bool) {
	op, ok := r.Inner.Next(now, rng)
	if !ok {
		return op, ok
	}
	ev := Event{
		T:      int64(now),
		Client: r.Client,
		Op:     op.Op.String(),
		Path:   op.Target.Path(),
		Name:   op.NewName,
	}
	if op.DstDir != nil {
		ev.Dst = op.DstDir.Path()
	}
	if err := r.enc.Encode(ev); err == nil {
		r.Events++
	}
	return op, ok
}

// Observe implements workload.Generator.
func (r *Recorder) Observe(rep *msg.Reply) { r.Inner.Observe(rep) }

// Read parses a JSON-lines trace.
func Read(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if _, ok := opByName[ev.Op]; !ok {
			return nil, fmt.Errorf("trace: line %d: unknown op %q", line, ev.Op)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// Write serialises events as JSON lines.
func Write(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// Split partitions a trace by client ID.
func Split(events []Event) map[int][]Event {
	m := make(map[int][]Event)
	for _, ev := range events {
		m[ev.Client] = append(m[ev.Client], ev)
	}
	return m
}

// Stats summarises a trace: op mix, client count, span, and the most
// popular paths.
type Stats struct {
	Events    int
	Clients   int
	Span      sim.Time
	OpCounts  map[string]int
	TopPaths  []PathCount
	DirDepths *metrics.Welford
}

// PathCount pairs a path with its access count.
type PathCount struct {
	Path  string
	Count int
}

// Summarize computes trace statistics. topN bounds the popular-path
// list.
func Summarize(events []Event, topN int) Stats {
	s := Stats{OpCounts: make(map[string]int), DirDepths: &metrics.Welford{}}
	clients := map[int]bool{}
	paths := map[string]int{}
	var minT, maxT int64
	for i, ev := range events {
		s.Events++
		clients[ev.Client] = true
		s.OpCounts[ev.Op]++
		paths[ev.Path]++
		s.DirDepths.Add(float64(strings.Count(ev.Path, "/")))
		if i == 0 || ev.T < minT {
			minT = ev.T
		}
		if ev.T > maxT {
			maxT = ev.T
		}
	}
	s.Clients = len(clients)
	if s.Events > 0 {
		s.Span = sim.Time(maxT - minT)
	}
	for p, c := range paths {
		s.TopPaths = append(s.TopPaths, PathCount{p, c})
	}
	sort.Slice(s.TopPaths, func(i, j int) bool {
		if s.TopPaths[i].Count != s.TopPaths[j].Count {
			return s.TopPaths[i].Count > s.TopPaths[j].Count
		}
		return s.TopPaths[i].Path < s.TopPaths[j].Path
	})
	if len(s.TopPaths) > topN {
		s.TopPaths = s.TopPaths[:topN]
	}
	return s
}

// String renders the summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events=%d clients=%d span=%v mean_depth=%.1f\n",
		s.Events, s.Clients, s.Span, s.DirDepths.Mean())
	for _, op := range metrics.SortedKeys(toFloat(s.OpCounts)) {
		fmt.Fprintf(&b, "  %-8s %6d (%.1f%%)\n", op, s.OpCounts[op],
			100*float64(s.OpCounts[op])/float64(s.Events))
	}
	if len(s.TopPaths) > 0 {
		fmt.Fprintf(&b, "hottest paths:\n")
		for _, pc := range s.TopPaths {
			fmt.Fprintf(&b, "  %6d  %s\n", pc.Count, pc.Path)
		}
	}
	return b.String()
}

func toFloat(m map[string]int) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = float64(v)
	}
	return out
}

// Player replays one client's recorded events in order, resolving paths
// against the live tree. Events whose paths no longer resolve (the
// replayed mutations diverged) are skipped and counted.
type Player struct {
	Tree   *namespace.Tree
	Events []Event

	pos     int
	Played  uint64
	Skipped uint64
}

// NewPlayer builds a player over the client's event slice.
func NewPlayer(tree *namespace.Tree, events []Event) *Player {
	return &Player{Tree: tree, Events: events}
}

// Done reports whether the stream is exhausted.
func (p *Player) Done() bool { return p.pos >= len(p.Events) }

// Next implements workload.Generator.
func (p *Player) Next(now sim.Time, rng *sim.RNG) (workload.Op, bool) {
	for p.pos < len(p.Events) {
		ev := p.Events[p.pos]
		p.pos++
		target, err := p.Tree.Lookup(ev.Path)
		if err != nil {
			p.Skipped++
			continue
		}
		op := workload.Op{Op: opByName[ev.Op], Target: target, NewName: ev.Name}
		if ev.Dst != "" {
			dst, err := p.Tree.Lookup(ev.Dst)
			if err != nil {
				p.Skipped++
				continue
			}
			op.DstDir = dst
		}
		p.Played++
		return op, true
	}
	return workload.Op{}, false
}

// Observe implements workload.Generator.
func (p *Player) Observe(rep *msg.Reply) {}

package client

import (
	"dynmds/internal/metrics"
	"dynmds/internal/namespace"
	"dynmds/internal/sim"
)

// numMixOps is the op vocabulary size of the open-loop mix, in canonical
// draw order: stat, readdir, chmod, create, rename, unlink.
const numMixOps = 6

// Act retargets the population during [From, To): a rate multiplier, an
// op-mix override, and an optional hotspot that absorbs HotFrac of the
// act's target draws. Acts never overlap; between acts the population
// runs its base configuration. Boundaries are scheduled at exact
// virtual times on every shard engine, so a run with acts is
// bit-reproducible for a fixed (seed, clients, shard count).
//
// Open-loop semantics: each client's next inter-arrival is drawn at the
// previous arrival, so a rate change takes effect at the client's first
// draw after the boundary — one inter-arrival of lag, never a burst of
// rescheduling work at the boundary itself.
type Act struct {
	Name     string
	From, To sim.Time
	// RateMul scales the per-client arrival rate; 0 means unchanged.
	RateMul float64
	// Mix overrides the op-mix weights in canonical order (stat,
	// readdir, chmod, create, rename, unlink); an all-zero mix inherits
	// the base mix.
	Mix [numMixOps]float64
	// Hot, when non-nil, receives HotFrac of the act's draws as their
	// target (the directory of a create storm, the file of a stat
	// crowd). Resolved against the namespace by the cluster layer.
	Hot     *namespace.Inode
	HotFrac float64
}

// shardActStat is one shard's slice of an act's accounting: counter
// snapshots at the boundaries and a latency lane for completions that
// land inside the window.
type shardActStat struct {
	issued0, completed0 uint64
	issued1, completed1 uint64
	lat                 *metrics.LatHist
	open                bool
}

// ScheduleActs registers the acts and schedules their boundary events on
// every shard engine. Call once, before Start. The cluster layer
// validates ordering and non-overlap; boundary work (threshold rebuild,
// one histogram allocation per act per shard) runs off the hot path.
func (p *Population) ScheduleActs(acts []Act) {
	p.acts = acts
	churn := false
	for i := range acts {
		if acts[i].Mix[5] > 0 {
			churn = true
		}
	}
	for _, s := range p.shards {
		if churn {
			s.churnOn = true
		}
		s.actStats = make([]shardActStat, len(acts))
		sh := s
		for i := range acts {
			i := i
			sh.eng.At(acts[i].From, func() { sh.beginAct(i) })
			sh.eng.At(acts[i].To, func() { sh.endAct(i) })
		}
	}
}

// beginAct installs act i's phase state on this shard.
func (s *popShard) beginAct(i int) {
	a := &s.pop.acts[i]
	s.rateMul = 1
	if a.RateMul > 0 {
		s.rateMul = a.RateMul
	}
	if a.Mix[0]+a.Mix[1]+a.Mix[2]+a.Mix[3]+a.Mix[4]+a.Mix[5] > 0 {
		s.cum = cumMix(a.Mix[0], a.Mix[1], a.Mix[2], a.Mix[3], a.Mix[4], a.Mix[5])
	} else {
		s.cum = s.pop.baseCum
	}
	s.hot, s.hotFrac = a.Hot, a.HotFrac
	st := &s.actStats[i]
	st.issued0, st.completed0 = s.issued, s.completed
	st.lat = metrics.NewLatHist()
	st.open = true
	s.curLat = st.lat
}

// endAct snapshots act i's counters and reverts to the base phase.
func (s *popShard) endAct(i int) {
	st := &s.actStats[i]
	st.issued1, st.completed1 = s.issued, s.completed
	st.open = false
	s.curLat = nil
	s.rateMul = 1
	s.cum = s.pop.baseCum
	s.hot, s.hotFrac = nil, 0
}

// ActStat is one act's accounting merged across shards.
type ActStat struct {
	Name      string
	From, To  sim.Time
	Issued    uint64
	Completed uint64
	Lat       *metrics.LatHist
}

// ActStats merges the per-shard act accounting. An act whose end event
// has not fired (To at the run horizon) reads live counters instead.
func (p *Population) ActStats() []ActStat {
	if len(p.acts) == 0 {
		return nil
	}
	out := make([]ActStat, len(p.acts))
	for i, a := range p.acts {
		out[i] = ActStat{Name: a.Name, From: a.From, To: a.To, Lat: metrics.NewLatHist()}
		for _, s := range p.shards {
			st := &s.actStats[i]
			i1, c1 := st.issued1, st.completed1
			if st.open {
				i1, c1 = s.issued, s.completed
			}
			out[i].Issued += i1 - st.issued0
			out[i].Completed += c1 - st.completed0
			if st.lat != nil {
				out[i].Lat.Merge(st.lat)
			}
		}
	}
	return out
}
